# Empty compiler generated dependencies file for pcap_ipmi.
# This may be replaced when dependencies are built.
