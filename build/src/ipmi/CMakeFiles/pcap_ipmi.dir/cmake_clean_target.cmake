file(REMOVE_RECURSE
  "libpcap_ipmi.a"
)
