file(REMOVE_RECURSE
  "CMakeFiles/pcap_ipmi.dir/commands.cpp.o"
  "CMakeFiles/pcap_ipmi.dir/commands.cpp.o.d"
  "CMakeFiles/pcap_ipmi.dir/message.cpp.o"
  "CMakeFiles/pcap_ipmi.dir/message.cpp.o.d"
  "CMakeFiles/pcap_ipmi.dir/transport.cpp.o"
  "CMakeFiles/pcap_ipmi.dir/transport.cpp.o.d"
  "libpcap_ipmi.a"
  "libpcap_ipmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_ipmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
