
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipmi/commands.cpp" "src/ipmi/CMakeFiles/pcap_ipmi.dir/commands.cpp.o" "gcc" "src/ipmi/CMakeFiles/pcap_ipmi.dir/commands.cpp.o.d"
  "/root/repo/src/ipmi/message.cpp" "src/ipmi/CMakeFiles/pcap_ipmi.dir/message.cpp.o" "gcc" "src/ipmi/CMakeFiles/pcap_ipmi.dir/message.cpp.o.d"
  "/root/repo/src/ipmi/transport.cpp" "src/ipmi/CMakeFiles/pcap_ipmi.dir/transport.cpp.o" "gcc" "src/ipmi/CMakeFiles/pcap_ipmi.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
