file(REMOVE_RECURSE
  "CMakeFiles/pcap_sim.dir/core_model.cpp.o"
  "CMakeFiles/pcap_sim.dir/core_model.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/execution_context.cpp.o"
  "CMakeFiles/pcap_sim.dir/execution_context.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/hierarchy.cpp.o"
  "CMakeFiles/pcap_sim.dir/hierarchy.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/machine_config.cpp.o"
  "CMakeFiles/pcap_sim.dir/machine_config.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/node.cpp.o"
  "CMakeFiles/pcap_sim.dir/node.cpp.o.d"
  "CMakeFiles/pcap_sim.dir/smp_node.cpp.o"
  "CMakeFiles/pcap_sim.dir/smp_node.cpp.o.d"
  "libpcap_sim.a"
  "libpcap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
