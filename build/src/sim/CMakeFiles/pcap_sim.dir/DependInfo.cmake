
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/core_model.cpp" "src/sim/CMakeFiles/pcap_sim.dir/core_model.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/core_model.cpp.o.d"
  "/root/repo/src/sim/execution_context.cpp" "src/sim/CMakeFiles/pcap_sim.dir/execution_context.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/execution_context.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/sim/CMakeFiles/pcap_sim.dir/hierarchy.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/hierarchy.cpp.o.d"
  "/root/repo/src/sim/machine_config.cpp" "src/sim/CMakeFiles/pcap_sim.dir/machine_config.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/machine_config.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/pcap_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/smp_node.cpp" "src/sim/CMakeFiles/pcap_sim.dir/smp_node.cpp.o" "gcc" "src/sim/CMakeFiles/pcap_sim.dir/smp_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
