file(REMOVE_RECURSE
  "libpcap_apps.a"
)
