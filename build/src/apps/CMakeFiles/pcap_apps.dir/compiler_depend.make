# Empty compiler generated dependencies file for pcap_apps.
# This may be replaced when dependencies are built.
