file(REMOVE_RECURSE
  "CMakeFiles/pcap_apps.dir/kernels/kernels.cpp.o"
  "CMakeFiles/pcap_apps.dir/kernels/kernels.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/sar/radar.cpp.o"
  "CMakeFiles/pcap_apps.dir/sar/radar.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/sar/rsm.cpp.o"
  "CMakeFiles/pcap_apps.dir/sar/rsm.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/sar/scene.cpp.o"
  "CMakeFiles/pcap_apps.dir/sar/scene.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/sar/workload.cpp.o"
  "CMakeFiles/pcap_apps.dir/sar/workload.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/stereo/annealing.cpp.o"
  "CMakeFiles/pcap_apps.dir/stereo/annealing.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/stereo/scene.cpp.o"
  "CMakeFiles/pcap_apps.dir/stereo/scene.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/stereo/workload.cpp.o"
  "CMakeFiles/pcap_apps.dir/stereo/workload.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/stride/stride.cpp.o"
  "CMakeFiles/pcap_apps.dir/stride/stride.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/synthetic.cpp.o"
  "CMakeFiles/pcap_apps.dir/synthetic.cpp.o.d"
  "CMakeFiles/pcap_apps.dir/trace.cpp.o"
  "CMakeFiles/pcap_apps.dir/trace.cpp.o.d"
  "libpcap_apps.a"
  "libpcap_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
