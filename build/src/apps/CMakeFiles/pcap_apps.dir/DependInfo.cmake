
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/kernels/kernels.cpp" "src/apps/CMakeFiles/pcap_apps.dir/kernels/kernels.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/kernels/kernels.cpp.o.d"
  "/root/repo/src/apps/sar/radar.cpp" "src/apps/CMakeFiles/pcap_apps.dir/sar/radar.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/sar/radar.cpp.o.d"
  "/root/repo/src/apps/sar/rsm.cpp" "src/apps/CMakeFiles/pcap_apps.dir/sar/rsm.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/sar/rsm.cpp.o.d"
  "/root/repo/src/apps/sar/scene.cpp" "src/apps/CMakeFiles/pcap_apps.dir/sar/scene.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/sar/scene.cpp.o.d"
  "/root/repo/src/apps/sar/workload.cpp" "src/apps/CMakeFiles/pcap_apps.dir/sar/workload.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/sar/workload.cpp.o.d"
  "/root/repo/src/apps/stereo/annealing.cpp" "src/apps/CMakeFiles/pcap_apps.dir/stereo/annealing.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/stereo/annealing.cpp.o.d"
  "/root/repo/src/apps/stereo/scene.cpp" "src/apps/CMakeFiles/pcap_apps.dir/stereo/scene.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/stereo/scene.cpp.o.d"
  "/root/repo/src/apps/stereo/workload.cpp" "src/apps/CMakeFiles/pcap_apps.dir/stereo/workload.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/stereo/workload.cpp.o.d"
  "/root/repo/src/apps/stride/stride.cpp" "src/apps/CMakeFiles/pcap_apps.dir/stride/stride.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/stride/stride.cpp.o.d"
  "/root/repo/src/apps/synthetic.cpp" "src/apps/CMakeFiles/pcap_apps.dir/synthetic.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/synthetic.cpp.o.d"
  "/root/repo/src/apps/trace.cpp" "src/apps/CMakeFiles/pcap_apps.dir/trace.cpp.o" "gcc" "src/apps/CMakeFiles/pcap_apps.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
