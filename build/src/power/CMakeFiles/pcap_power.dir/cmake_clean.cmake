file(REMOVE_RECURSE
  "CMakeFiles/pcap_power.dir/model.cpp.o"
  "CMakeFiles/pcap_power.dir/model.cpp.o.d"
  "CMakeFiles/pcap_power.dir/pstate.cpp.o"
  "CMakeFiles/pcap_power.dir/pstate.cpp.o.d"
  "CMakeFiles/pcap_power.dir/thermal.cpp.o"
  "CMakeFiles/pcap_power.dir/thermal.cpp.o.d"
  "libpcap_power.a"
  "libpcap_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
