file(REMOVE_RECURSE
  "CMakeFiles/pcap_meter.dir/watts_up.cpp.o"
  "CMakeFiles/pcap_meter.dir/watts_up.cpp.o.d"
  "libpcap_meter.a"
  "libpcap_meter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_meter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
