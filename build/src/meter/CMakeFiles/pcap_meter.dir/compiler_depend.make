# Empty compiler generated dependencies file for pcap_meter.
# This may be replaced when dependencies are built.
