file(REMOVE_RECURSE
  "libpcap_meter.a"
)
