# Empty dependencies file for pcap_mem.
# This may be replaced when dependencies are built.
