file(REMOVE_RECURSE
  "libpcap_mem.a"
)
