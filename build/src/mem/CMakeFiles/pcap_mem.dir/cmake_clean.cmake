file(REMOVE_RECURSE
  "CMakeFiles/pcap_mem.dir/dram.cpp.o"
  "CMakeFiles/pcap_mem.dir/dram.cpp.o.d"
  "libpcap_mem.a"
  "libpcap_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
