file(REMOVE_RECURSE
  "CMakeFiles/pcap_cache.dir/cache.cpp.o"
  "CMakeFiles/pcap_cache.dir/cache.cpp.o.d"
  "CMakeFiles/pcap_cache.dir/tlb.cpp.o"
  "CMakeFiles/pcap_cache.dir/tlb.cpp.o.d"
  "libpcap_cache.a"
  "libpcap_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
