# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("pmu")
subdirs("power")
subdirs("meter")
subdirs("ipmi")
subdirs("cache")
subdirs("mem")
subdirs("sim")
subdirs("core")
subdirs("apps")
subdirs("harness")
