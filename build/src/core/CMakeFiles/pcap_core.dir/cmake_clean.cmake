file(REMOVE_RECURSE
  "CMakeFiles/pcap_core.dir/amenability.cpp.o"
  "CMakeFiles/pcap_core.dir/amenability.cpp.o.d"
  "CMakeFiles/pcap_core.dir/bmc.cpp.o"
  "CMakeFiles/pcap_core.dir/bmc.cpp.o.d"
  "CMakeFiles/pcap_core.dir/bmc_ipmi_server.cpp.o"
  "CMakeFiles/pcap_core.dir/bmc_ipmi_server.cpp.o.d"
  "CMakeFiles/pcap_core.dir/capped_runner.cpp.o"
  "CMakeFiles/pcap_core.dir/capped_runner.cpp.o.d"
  "CMakeFiles/pcap_core.dir/dcm.cpp.o"
  "CMakeFiles/pcap_core.dir/dcm.cpp.o.d"
  "CMakeFiles/pcap_core.dir/governor.cpp.o"
  "CMakeFiles/pcap_core.dir/governor.cpp.o.d"
  "libpcap_core.a"
  "libpcap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
