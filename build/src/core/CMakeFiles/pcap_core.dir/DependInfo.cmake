
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/amenability.cpp" "src/core/CMakeFiles/pcap_core.dir/amenability.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/amenability.cpp.o.d"
  "/root/repo/src/core/bmc.cpp" "src/core/CMakeFiles/pcap_core.dir/bmc.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/bmc.cpp.o.d"
  "/root/repo/src/core/bmc_ipmi_server.cpp" "src/core/CMakeFiles/pcap_core.dir/bmc_ipmi_server.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/bmc_ipmi_server.cpp.o.d"
  "/root/repo/src/core/capped_runner.cpp" "src/core/CMakeFiles/pcap_core.dir/capped_runner.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/capped_runner.cpp.o.d"
  "/root/repo/src/core/dcm.cpp" "src/core/CMakeFiles/pcap_core.dir/dcm.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/dcm.cpp.o.d"
  "/root/repo/src/core/governor.cpp" "src/core/CMakeFiles/pcap_core.dir/governor.cpp.o" "gcc" "src/core/CMakeFiles/pcap_core.dir/governor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ipmi/CMakeFiles/pcap_ipmi.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
