file(REMOVE_RECURSE
  "CMakeFiles/pcap_pmu.dir/counters.cpp.o"
  "CMakeFiles/pcap_pmu.dir/counters.cpp.o.d"
  "CMakeFiles/pcap_pmu.dir/events.cpp.o"
  "CMakeFiles/pcap_pmu.dir/events.cpp.o.d"
  "libpcap_pmu.a"
  "libpcap_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
