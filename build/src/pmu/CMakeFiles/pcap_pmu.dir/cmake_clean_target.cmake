file(REMOVE_RECURSE
  "libpcap_pmu.a"
)
