# Empty dependencies file for pcap_pmu.
# This may be replaced when dependencies are built.
