file(REMOVE_RECURSE
  "libpcap_harness.a"
)
