file(REMOVE_RECURSE
  "CMakeFiles/pcap_harness.dir/agreement.cpp.o"
  "CMakeFiles/pcap_harness.dir/agreement.cpp.o.d"
  "CMakeFiles/pcap_harness.dir/cli.cpp.o"
  "CMakeFiles/pcap_harness.dir/cli.cpp.o.d"
  "CMakeFiles/pcap_harness.dir/experiment.cpp.o"
  "CMakeFiles/pcap_harness.dir/experiment.cpp.o.d"
  "CMakeFiles/pcap_harness.dir/paper_reference.cpp.o"
  "CMakeFiles/pcap_harness.dir/paper_reference.cpp.o.d"
  "CMakeFiles/pcap_harness.dir/report.cpp.o"
  "CMakeFiles/pcap_harness.dir/report.cpp.o.d"
  "libpcap_harness.a"
  "libpcap_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
