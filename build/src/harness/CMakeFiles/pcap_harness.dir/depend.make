# Empty dependencies file for pcap_harness.
# This may be replaced when dependencies are built.
