
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/agreement.cpp" "src/harness/CMakeFiles/pcap_harness.dir/agreement.cpp.o" "gcc" "src/harness/CMakeFiles/pcap_harness.dir/agreement.cpp.o.d"
  "/root/repo/src/harness/cli.cpp" "src/harness/CMakeFiles/pcap_harness.dir/cli.cpp.o" "gcc" "src/harness/CMakeFiles/pcap_harness.dir/cli.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/harness/CMakeFiles/pcap_harness.dir/experiment.cpp.o" "gcc" "src/harness/CMakeFiles/pcap_harness.dir/experiment.cpp.o.d"
  "/root/repo/src/harness/paper_reference.cpp" "src/harness/CMakeFiles/pcap_harness.dir/paper_reference.cpp.o" "gcc" "src/harness/CMakeFiles/pcap_harness.dir/paper_reference.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/harness/CMakeFiles/pcap_harness.dir/report.cpp.o" "gcc" "src/harness/CMakeFiles/pcap_harness.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/pcap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/pcap_ipmi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
