# Empty compiler generated dependencies file for pcap_tests.
# This may be replaced when dependencies are built.
