
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_agreement.cpp" "tests/CMakeFiles/pcap_tests.dir/test_agreement.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_agreement.cpp.o.d"
  "/root/repo/tests/test_amenability.cpp" "tests/CMakeFiles/pcap_tests.dir/test_amenability.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_amenability.cpp.o.d"
  "/root/repo/tests/test_apps_sar.cpp" "tests/CMakeFiles/pcap_tests.dir/test_apps_sar.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_apps_sar.cpp.o.d"
  "/root/repo/tests/test_apps_stereo.cpp" "tests/CMakeFiles/pcap_tests.dir/test_apps_stereo.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_apps_stereo.cpp.o.d"
  "/root/repo/tests/test_apps_stride.cpp" "tests/CMakeFiles/pcap_tests.dir/test_apps_stride.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_apps_stride.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/pcap_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_core_bmc.cpp" "tests/CMakeFiles/pcap_tests.dir/test_core_bmc.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_core_bmc.cpp.o.d"
  "/root/repo/tests/test_core_dcm.cpp" "tests/CMakeFiles/pcap_tests.dir/test_core_dcm.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_core_dcm.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/pcap_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_governor.cpp" "tests/CMakeFiles/pcap_tests.dir/test_governor.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_governor.cpp.o.d"
  "/root/repo/tests/test_harness.cpp" "tests/CMakeFiles/pcap_tests.dir/test_harness.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_harness.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/pcap_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ipmi.cpp" "tests/CMakeFiles/pcap_tests.dir/test_ipmi.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_ipmi.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/pcap_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_log.cpp" "tests/CMakeFiles/pcap_tests.dir/test_log.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_log.cpp.o.d"
  "/root/repo/tests/test_meter.cpp" "tests/CMakeFiles/pcap_tests.dir/test_meter.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_meter.cpp.o.d"
  "/root/repo/tests/test_pmu.cpp" "tests/CMakeFiles/pcap_tests.dir/test_pmu.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_pmu.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/pcap_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/pcap_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/pcap_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_sim_more.cpp" "tests/CMakeFiles/pcap_tests.dir/test_sim_more.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_sim_more.cpp.o.d"
  "/root/repo/tests/test_smp.cpp" "tests/CMakeFiles/pcap_tests.dir/test_smp.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_smp.cpp.o.d"
  "/root/repo/tests/test_tlb.cpp" "tests/CMakeFiles/pcap_tests.dir/test_tlb.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_tlb.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/pcap_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/pcap_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/pcap_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pcap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pcap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/pcap_ipmi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
