file(REMOVE_RECURSE
  "CMakeFiles/fig3_stride_nocap.dir/fig3_stride_nocap.cpp.o"
  "CMakeFiles/fig3_stride_nocap.dir/fig3_stride_nocap.cpp.o.d"
  "fig3_stride_nocap"
  "fig3_stride_nocap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_stride_nocap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
