# Empty dependencies file for fig3_stride_nocap.
# This may be replaced when dependencies are built.
