file(REMOVE_RECURSE
  "CMakeFiles/table2_powercaps.dir/table2_powercaps.cpp.o"
  "CMakeFiles/table2_powercaps.dir/table2_powercaps.cpp.o.d"
  "table2_powercaps"
  "table2_powercaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_powercaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
