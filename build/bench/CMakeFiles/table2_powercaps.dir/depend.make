# Empty dependencies file for table2_powercaps.
# This may be replaced when dependencies are built.
