# Empty compiler generated dependencies file for ablate_race_to_idle.
# This may be replaced when dependencies are built.
