file(REMOVE_RECURSE
  "CMakeFiles/ablate_race_to_idle.dir/ablate_race_to_idle.cpp.o"
  "CMakeFiles/ablate_race_to_idle.dir/ablate_race_to_idle.cpp.o.d"
  "ablate_race_to_idle"
  "ablate_race_to_idle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_race_to_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
