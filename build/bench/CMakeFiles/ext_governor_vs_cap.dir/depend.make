# Empty dependencies file for ext_governor_vs_cap.
# This may be replaced when dependencies are built.
