file(REMOVE_RECURSE
  "CMakeFiles/ext_governor_vs_cap.dir/ext_governor_vs_cap.cpp.o"
  "CMakeFiles/ext_governor_vs_cap.dir/ext_governor_vs_cap.cpp.o.d"
  "ext_governor_vs_cap"
  "ext_governor_vs_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_governor_vs_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
