# Empty compiler generated dependencies file for validate_shapes.
# This may be replaced when dependencies are built.
