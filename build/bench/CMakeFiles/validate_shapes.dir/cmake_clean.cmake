file(REMOVE_RECURSE
  "CMakeFiles/validate_shapes.dir/validate_shapes.cpp.o"
  "CMakeFiles/validate_shapes.dir/validate_shapes.cpp.o.d"
  "validate_shapes"
  "validate_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validate_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
