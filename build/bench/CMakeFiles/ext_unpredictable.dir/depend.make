# Empty dependencies file for ext_unpredictable.
# This may be replaced when dependencies are built.
