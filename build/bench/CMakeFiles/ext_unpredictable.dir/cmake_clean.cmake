file(REMOVE_RECURSE
  "CMakeFiles/ext_unpredictable.dir/ext_unpredictable.cpp.o"
  "CMakeFiles/ext_unpredictable.dir/ext_unpredictable.cpp.o.d"
  "ext_unpredictable"
  "ext_unpredictable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_unpredictable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
