# Empty dependencies file for fig2_stereo_normalized.
# This may be replaced when dependencies are built.
