file(REMOVE_RECURSE
  "CMakeFiles/fig2_stereo_normalized.dir/fig2_stereo_normalized.cpp.o"
  "CMakeFiles/fig2_stereo_normalized.dir/fig2_stereo_normalized.cpp.o.d"
  "fig2_stereo_normalized"
  "fig2_stereo_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_stereo_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
