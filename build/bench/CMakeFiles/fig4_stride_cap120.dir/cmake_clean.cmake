file(REMOVE_RECURSE
  "CMakeFiles/fig4_stride_cap120.dir/fig4_stride_cap120.cpp.o"
  "CMakeFiles/fig4_stride_cap120.dir/fig4_stride_cap120.cpp.o.d"
  "fig4_stride_cap120"
  "fig4_stride_cap120.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_stride_cap120.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
