# Empty compiler generated dependencies file for fig4_stride_cap120.
# This may be replaced when dependencies are built.
