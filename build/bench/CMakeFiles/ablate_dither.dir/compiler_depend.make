# Empty compiler generated dependencies file for ablate_dither.
# This may be replaced when dependencies are built.
