file(REMOVE_RECURSE
  "CMakeFiles/ablate_dither.dir/ablate_dither.cpp.o"
  "CMakeFiles/ablate_dither.dir/ablate_dither.cpp.o.d"
  "ablate_dither"
  "ablate_dither.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dither.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
