# Empty compiler generated dependencies file for ablate_escalation.
# This may be replaced when dependencies are built.
