file(REMOVE_RECURSE
  "CMakeFiles/ablate_escalation.dir/ablate_escalation.cpp.o"
  "CMakeFiles/ablate_escalation.dir/ablate_escalation.cpp.o.d"
  "ablate_escalation"
  "ablate_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
