file(REMOVE_RECURSE
  "CMakeFiles/ext_multicore.dir/ext_multicore.cpp.o"
  "CMakeFiles/ext_multicore.dir/ext_multicore.cpp.o.d"
  "ext_multicore"
  "ext_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
