
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_multicore.cpp" "bench/CMakeFiles/ext_multicore.dir/ext_multicore.cpp.o" "gcc" "bench/CMakeFiles/ext_multicore.dir/ext_multicore.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pcap_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pcap_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pcap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/pcap_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/pcap_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/meter/CMakeFiles/pcap_meter.dir/DependInfo.cmake"
  "/root/repo/build/src/pmu/CMakeFiles/pcap_pmu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/pcap_power.dir/DependInfo.cmake"
  "/root/repo/build/src/ipmi/CMakeFiles/pcap_ipmi.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
