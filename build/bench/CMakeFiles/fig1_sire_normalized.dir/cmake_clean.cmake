file(REMOVE_RECURSE
  "CMakeFiles/fig1_sire_normalized.dir/fig1_sire_normalized.cpp.o"
  "CMakeFiles/fig1_sire_normalized.dir/fig1_sire_normalized.cpp.o.d"
  "fig1_sire_normalized"
  "fig1_sire_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sire_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
