# Empty compiler generated dependencies file for fig1_sire_normalized.
# This may be replaced when dependencies are built.
