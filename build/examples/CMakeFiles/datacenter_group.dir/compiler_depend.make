# Empty compiler generated dependencies file for datacenter_group.
# This may be replaced when dependencies are built.
