file(REMOVE_RECURSE
  "CMakeFiles/datacenter_group.dir/datacenter_group.cpp.o"
  "CMakeFiles/datacenter_group.dir/datacenter_group.cpp.o.d"
  "datacenter_group"
  "datacenter_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
