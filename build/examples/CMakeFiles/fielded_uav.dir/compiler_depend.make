# Empty compiler generated dependencies file for fielded_uav.
# This may be replaced when dependencies are built.
