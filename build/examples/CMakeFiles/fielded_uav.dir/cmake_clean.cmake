file(REMOVE_RECURSE
  "CMakeFiles/fielded_uav.dir/fielded_uav.cpp.o"
  "CMakeFiles/fielded_uav.dir/fielded_uav.cpp.o.d"
  "fielded_uav"
  "fielded_uav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fielded_uav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
