file(REMOVE_RECURSE
  "CMakeFiles/demand_response.dir/demand_response.cpp.o"
  "CMakeFiles/demand_response.dir/demand_response.cpp.o.d"
  "demand_response"
  "demand_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demand_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
