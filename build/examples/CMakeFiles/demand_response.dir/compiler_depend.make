# Empty compiler generated dependencies file for demand_response.
# This may be replaced when dependencies are built.
