file(REMOVE_RECURSE
  "CMakeFiles/amenability_screen.dir/amenability_screen.cpp.o"
  "CMakeFiles/amenability_screen.dir/amenability_screen.cpp.o.d"
  "amenability_screen"
  "amenability_screen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amenability_screen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
