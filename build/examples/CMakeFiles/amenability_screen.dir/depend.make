# Empty dependencies file for amenability_screen.
# This may be replaced when dependencies are built.
