// Tests for the telemetry subsystem: ring wraparound, windowed aggregates
// against a naive reference, reducer group math, Chrome-trace JSON validity
// (parsed back with util::parse_json), and the load-bearing guarantee that
// attaching telemetry leaves simulated study results bit-identical.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "apps/synthetic.hpp"
#include "harness/experiment.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/units.hpp"

namespace pcap::telemetry {
namespace {

// --- RingBuffer ---

TEST(RingBuffer, FillsThenWrapsOverwritingOldest) {
  RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 4u);
  for (int v = 1; v <= 3; ++v) ring.push(v);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_FALSE(ring.wrapped());
  EXPECT_EQ(ring.front(), 1);
  EXPECT_EQ(ring.back(), 3);

  for (int v = 4; v <= 10; ++v) ring.push(v);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.pushed(), 10u);
  EXPECT_TRUE(ring.wrapped());
  // Oldest-first iteration over the retained tail: 7, 8, 9, 10.
  for (std::size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring.at(i), static_cast<int>(7 + i));
  }
  EXPECT_EQ(ring.front(), 7);
  EXPECT_EQ(ring.back(), 10);

  ring.clear();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.pushed(), 0u);
  EXPECT_FALSE(ring.wrapped());
}

// --- Sampler ---

NodeSample watts_sample(util::Picoseconds t, double watts) {
  NodeSample s;
  s.time = t;
  s.watts = watts;
  return s;
}

TEST(Sampler, DueRespectsPeriodAndSkipsMissedBoundaries) {
  SamplerConfig config;
  config.period = util::microseconds(10);
  Sampler sampler(config);
  EXPECT_FALSE(sampler.due(util::microseconds(9)));
  EXPECT_TRUE(sampler.due(util::microseconds(10)));
  sampler.record(watts_sample(util::microseconds(10), 100.0));
  EXPECT_FALSE(sampler.due(util::microseconds(19)));
  // A long stall past several boundaries yields ONE sample, then the next
  // boundary is beyond the stall — no burst of stale duplicates.
  EXPECT_TRUE(sampler.due(util::microseconds(55)));
  sampler.record(watts_sample(util::microseconds(55), 101.0));
  EXPECT_FALSE(sampler.due(util::microseconds(59)));
  EXPECT_TRUE(sampler.due(util::microseconds(60)));
  EXPECT_EQ(sampler.size(), 2u);
}

// Naive reference for Aggregate: sort-and-scan over the last `window`.
Aggregate naive_aggregate(const std::vector<double>& all, std::size_t window) {
  Aggregate agg;
  const std::size_t count =
      (window == 0 || window > all.size()) ? all.size() : window;
  if (count == 0) return agg;
  std::vector<double> v(all.end() - static_cast<std::ptrdiff_t>(count),
                        all.end());
  std::sort(v.begin(), v.end());
  agg.count = count;
  agg.min = v.front();
  agg.max = v.back();
  double sum = 0.0;
  for (double x : v) sum += x;
  agg.mean = sum / static_cast<double>(count);
  const double rank = 0.95 * static_cast<double>(count - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, count - 1);
  agg.p95 = v[lo] + (v[hi] - v[lo]) * (rank - static_cast<double>(lo));
  return agg;
}

TEST(Sampler, WindowedAggregatesMatchNaiveReference) {
  SamplerConfig config;
  config.period = util::microseconds(1);
  config.capacity = 64;
  Sampler sampler(config);
  // Deterministic pseudo-random-ish series, enough to wrap the ring.
  std::vector<double> recorded;
  for (int i = 1; i <= 100; ++i) {
    const double w = 100.0 + 37.0 * std::sin(0.7 * i) + (i % 13);
    sampler.record(watts_sample(util::microseconds(i), w));
    recorded.push_back(w);
  }
  ASSERT_EQ(sampler.size(), 64u);
  ASSERT_EQ(sampler.taken(), 100u);
  // The ring retains the last 64; the naive reference sees the same tail.
  const std::vector<double> retained(recorded.end() - 64, recorded.end());
  const auto select = [](const NodeSample& s) { return s.watts; };
  for (std::size_t window : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                             std::size_t{17}, std::size_t{64},
                             std::size_t{999}}) {
    const Aggregate got = sampler.aggregate(select, window);
    const Aggregate want = naive_aggregate(retained, window);
    EXPECT_EQ(got.count, want.count) << "window " << window;
    EXPECT_DOUBLE_EQ(got.min, want.min) << "window " << window;
    EXPECT_DOUBLE_EQ(got.mean, want.mean) << "window " << window;
    EXPECT_DOUBLE_EQ(got.max, want.max) << "window " << window;
    EXPECT_DOUBLE_EQ(got.p95, want.p95) << "window " << window;
  }
  EXPECT_EQ(sampler.aggregate(select, 0).count, 64u);
}

// --- Registry ---

TEST(Registry, CountersAndGaugesRoundTrip) {
  Registry registry;
  const CounterHandle c = registry.counter("samples");
  const GaugeHandle g = registry.gauge("watts");
  registry.add(c);
  registry.add(c, 4);
  registry.set(g, 131.5);
  if constexpr (!kCompiledIn) {
    // cmake -DPCAP_TELEMETRY=OFF: mutators fold to nothing.
    EXPECT_EQ(registry.value(c), 0u);
    EXPECT_DOUBLE_EQ(registry.value(g), 0.0);
    return;
  }
  EXPECT_EQ(registry.value(c), 5u);
  EXPECT_DOUBLE_EQ(registry.value(g), 131.5);
  // Re-registering the same name returns the same slot.
  const CounterHandle c2 = registry.counter("samples");
  registry.add(c2, 5);
  EXPECT_EQ(registry.value(c), 10u);
  EXPECT_EQ(registry.counter_count(), 1u);

  registry.set_enabled(false);
  registry.add(c, 100);
  registry.set(g, 0.0);
  EXPECT_EQ(registry.value(c), 10u);
  EXPECT_DOUBLE_EQ(registry.value(g), 131.5);

  registry.set_enabled(true);
  registry.reset();
  EXPECT_EQ(registry.value(c), 0u);
  EXPECT_NE(registry.dump().find("samples 0"), std::string::npos);
}

// --- Reducer ---

Sampler make_sampler(util::Picoseconds period,
                     const std::vector<std::pair<double, double>>& points) {
  SamplerConfig config;
  config.period = period;
  Sampler sampler(config);
  for (const auto& [t_us, w] : points) {
    sampler.record(watts_sample(
        static_cast<util::Picoseconds>(util::microseconds(1) * t_us), w));
  }
  return sampler;
}

TEST(Reducer, AlignSnapsToGridWithZeroOrderHold) {
  // Samples at 3, 13, 23 us; grid period 10 us -> edges 10 and 20 covered
  // by zero-order hold of the last sample at-or-before each edge.
  const Sampler s = make_sampler(
      util::microseconds(10), {{3.0, 100.0}, {13.0, 110.0}, {23.0, 120.0}});
  Reducer reducer(util::microseconds(10));
  const GroupSeries series = reducer.align(s, "n");
  ASSERT_EQ(series.bins.size(), 2u);
  EXPECT_EQ(series.bins[0].time, util::microseconds(10));
  EXPECT_DOUBLE_EQ(series.bins[0].mean_w, 100.0);
  EXPECT_EQ(series.bins[1].time, util::microseconds(20));
  EXPECT_DOUBLE_EQ(series.bins[1].mean_w, 110.0);
  EXPECT_EQ(series.bins[0].nodes, 1u);
}

TEST(Reducer, MergeCombinesEqualBinsAndInterleavesOthers) {
  const Sampler a =
      make_sampler(util::microseconds(10), {{0.0, 100.0}, {10.0, 120.0}});
  const Sampler b = make_sampler(util::microseconds(10),
                                 {{0.0, 140.0}, {10.0, 160.0}, {20.0, 150.0}});
  Reducer reducer(util::microseconds(10));
  const GroupSeries merged =
      Reducer::merge(reducer.align(a, "a"), reducer.align(b, "b"));
  ASSERT_EQ(merged.bins.size(), 3u);
  // Bin at t=0: both nodes present.
  EXPECT_EQ(merged.bins[0].nodes, 2u);
  EXPECT_DOUBLE_EQ(merged.bins[0].min_w, 100.0);
  EXPECT_DOUBLE_EQ(merged.bins[0].max_w, 140.0);
  EXPECT_DOUBLE_EQ(merged.bins[0].sum_w, 240.0);
  EXPECT_DOUBLE_EQ(merged.bins[0].mean_w, 120.0);
  // Bin at t=20 us exists only in b and passes through untouched.
  EXPECT_EQ(merged.bins[2].nodes, 1u);
  EXPECT_DOUBLE_EQ(merged.bins[2].sum_w, 150.0);
}

TEST(Reducer, ReduceMatchesManualMergeFoldEitherAssociation) {
  const Sampler a =
      make_sampler(util::microseconds(10), {{0.0, 101.0}, {10.0, 102.0}});
  const Sampler b =
      make_sampler(util::microseconds(10), {{0.0, 111.0}, {10.0, 112.0}});
  const Sampler c = make_sampler(util::microseconds(10),
                                 {{0.0, 121.0}, {10.0, 122.0}, {20.0, 123.0}});
  Reducer reducer(util::microseconds(10));
  const std::vector<const Sampler*> samplers = {&a, &b, &c};
  const GroupSeries tree = reducer.reduce(samplers, "rack");
  const GroupSeries left = Reducer::merge(
      Reducer::merge(reducer.align(a, ""), reducer.align(b, "")),
      reducer.align(c, ""));
  const GroupSeries right = Reducer::merge(
      reducer.align(a, ""),
      Reducer::merge(reducer.align(b, ""), reducer.align(c, "")));
  EXPECT_EQ(tree.name, "rack");
  ASSERT_EQ(tree.bins.size(), 3u);
  for (const GroupSeries* other : {&left, &right}) {
    ASSERT_EQ(other->bins.size(), tree.bins.size());
    for (std::size_t i = 0; i < tree.bins.size(); ++i) {
      EXPECT_EQ(tree.bins[i].time, other->bins[i].time);
      EXPECT_EQ(tree.bins[i].nodes, other->bins[i].nodes);
      EXPECT_DOUBLE_EQ(tree.bins[i].min_w, other->bins[i].min_w);
      EXPECT_DOUBLE_EQ(tree.bins[i].mean_w, other->bins[i].mean_w);
      EXPECT_DOUBLE_EQ(tree.bins[i].max_w, other->bins[i].max_w);
      EXPECT_DOUBLE_EQ(tree.bins[i].sum_w, other->bins[i].sum_w);
    }
  }
  // Spot-check the combined bin at t=0: three nodes, sum 333.
  EXPECT_EQ(tree.bins[0].nodes, 3u);
  EXPECT_DOUBLE_EQ(tree.bins[0].sum_w, 333.0);
  EXPECT_DOUBLE_EQ(tree.bins[0].min_w, 101.0);
  EXPECT_DOUBLE_EQ(tree.bins[0].max_w, 121.0);
  EXPECT_NEAR(tree.bins[0].mean_w, 111.0, 1e-12);
}

// --- TraceWriter: serialized trace parses back as valid JSON ---

const util::JsonValue* find_event(const util::JsonValue& events,
                                  const std::string& name) {
  for (std::size_t i = 0; i < events.as_array().size(); ++i) {
    const util::JsonValue& e = events.as_array()[i];
    const util::JsonValue* n = e.find("name");
    if (n != nullptr && n->is_string() && n->as_string() == name) return &e;
  }
  return nullptr;
}

TEST(Reducer, FleetScaleFanInAssociativeAndCommutative) {
  // 1200 synthetic node series with staggered starts and irregular
  // cadences: the tree fan-in, the left fold, the reversed fold and a
  // rotated fold must agree bin-for-bin, bit-for-bit. Watt values are
  // small integers, so double summation is exact and the comparison is
  // genuinely bitwise.
  const util::Picoseconds period = util::microseconds(200);
  Reducer reducer(period);
  std::vector<std::unique_ptr<Sampler>> samplers;
  std::vector<const Sampler*> ptrs;
  for (int i = 0; i < 1200; ++i) {
    SamplerConfig config;
    config.period = period;
    auto sampler = std::make_unique<Sampler>(config);
    const util::Picoseconds start =
        util::microseconds(static_cast<std::uint64_t>(i % 7) * 130);
    const util::Picoseconds stride =
        util::microseconds(170 + static_cast<std::uint64_t>(i % 5) * 40);
    for (int k = 0; k < 18; ++k) {
      NodeSample sample;
      sample.time = start + static_cast<std::uint64_t>(k) * stride;
      sample.watts = static_cast<double>(1 + (i * 7 + k * 13) % 500);
      sampler->record(sample);
    }
    ptrs.push_back(sampler.get());
    samplers.push_back(std::move(sampler));
  }

  const GroupSeries tree = reducer.reduce(ptrs, "fleet");

  const auto fold = [&](const std::vector<const Sampler*>& order) {
    GroupSeries acc;
    for (const Sampler* sampler : order) {
      acc = Reducer::merge(acc, reducer.align(*sampler, "n"));
    }
    acc.name = "fleet";
    return acc;
  };
  std::vector<const Sampler*> reversed(ptrs.rbegin(), ptrs.rend());
  std::vector<const Sampler*> rotated(ptrs.begin() + 517, ptrs.end());
  rotated.insert(rotated.end(), ptrs.begin(), ptrs.begin() + 517);

  for (const GroupSeries& other : {fold(ptrs), fold(reversed), fold(rotated)}) {
    ASSERT_EQ(other.bins.size(), tree.bins.size());
    for (std::size_t b = 0; b < tree.bins.size(); ++b) {
      EXPECT_EQ(other.bins[b].time, tree.bins[b].time);
      EXPECT_EQ(other.bins[b].nodes, tree.bins[b].nodes);
      EXPECT_EQ(other.bins[b].min_w, tree.bins[b].min_w);
      EXPECT_EQ(other.bins[b].max_w, tree.bins[b].max_w);
      EXPECT_EQ(other.bins[b].sum_w, tree.bins[b].sum_w);
      EXPECT_EQ(other.bins[b].mean_w, tree.bins[b].mean_w);
    }
  }

  std::size_t max_nodes = 0;
  for (const GroupSample& bin : tree.bins) {
    max_nodes = std::max(max_nodes, bin.nodes);
  }
  EXPECT_EQ(max_nodes, 1200u);
}

TEST(Reducer, ZeroOrderHoldBridgesPartitionGaps) {
  // Node A goes quiet between 3P and 8P (a management-plane partition
  // stops its collector): the aligned series holds the last value across
  // the gap. Node B only starts at 5P: bins before its first sample get no
  // contribution from it.
  const util::Picoseconds period = util::microseconds(200);
  Reducer reducer(period);
  SamplerConfig config;
  config.period = period;
  Sampler a(config), b(config);
  for (const int k : {0, 1, 2, 3, 8, 9, 10}) {
    NodeSample sample;
    sample.time = static_cast<std::uint64_t>(k) * period;
    sample.watts = k < 8 ? 100.0 : 300.0;
    a.record(sample);
  }
  for (int k = 5; k <= 10; ++k) {
    NodeSample sample;
    sample.time = static_cast<std::uint64_t>(k) * period;
    sample.watts = 50.0;
    b.record(sample);
  }

  const GroupSeries merged =
      Reducer::merge(reducer.align(a, "a"), reducer.align(b, "b"));
  ASSERT_EQ(merged.bins.size(), 11u);
  for (std::size_t k = 0; k < merged.bins.size(); ++k) {
    const GroupSample& bin = merged.bins[k];
    EXPECT_EQ(bin.time, k * period);
    const double a_w = k < 8 ? 100.0 : 300.0;  // held at 100 through the gap
    if (k < 5) {
      EXPECT_EQ(bin.nodes, 1u) << k;
      EXPECT_EQ(bin.sum_w, a_w) << k;
    } else {
      EXPECT_EQ(bin.nodes, 2u) << k;
      EXPECT_EQ(bin.sum_w, a_w + 50.0) << k;
      EXPECT_EQ(bin.min_w, 50.0) << k;
      EXPECT_EQ(bin.max_w, a_w) << k;
    }
  }
}

TEST(TraceWriter, JsonParsesBackWithSpansInstantsAndMetadata) {
  TraceWriter trace;
  const std::uint32_t ipmi_track = trace.track("ipmi:node-0");
  const std::uint32_t dcm_track = trace.track("dcm");
  trace.span(ipmi_track, "ipmi", "SetPowerLimit", 100.0, 40.0,
             {TraceArg::num("attempts", 3), TraceArg::str("outcome", "ok")});
  trace.instant(dcm_track, "health", "node-0:degraded", 120.0,
                {TraceArg::num("failures", 2)});
  trace.counter(ipmi_track, "watts", 100.0, 131.5);
  EXPECT_EQ(trace.event_count(), 3u);
  EXPECT_EQ(trace.track_count(), 2u);

  const auto parsed = util::parse_json(trace.json());
  ASSERT_TRUE(parsed.has_value());
  const util::JsonValue* events = parsed->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // 3 real events + one thread_name metadata event per track.
  EXPECT_EQ(events->as_array().size(), 5u);

  const util::JsonValue* span = find_event(*events, "SetPowerLimit");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->find("ph")->as_string(), "X");
  EXPECT_DOUBLE_EQ(span->find("ts")->as_number(), 100.0);
  EXPECT_DOUBLE_EQ(span->find("dur")->as_number(), 40.0);
  EXPECT_EQ(span->find("cat")->as_string(), "ipmi");
  const util::JsonValue* span_args = span->find("args");
  ASSERT_NE(span_args, nullptr);
  EXPECT_DOUBLE_EQ(span_args->find("attempts")->as_number(), 3.0);
  EXPECT_EQ(span_args->find("outcome")->as_string(), "ok");

  const util::JsonValue* instant = find_event(*events, "node-0:degraded");
  ASSERT_NE(instant, nullptr);
  EXPECT_EQ(instant->find("ph")->as_string(), "i");
  EXPECT_EQ(instant->find("s")->as_string(), "t");

  const util::JsonValue* meta = find_event(*events, "thread_name");
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->find("ph")->as_string(), "M");

  // Counter event carries its value in args.
  const util::JsonValue* counter = find_event(*events, "watts");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->find("ph")->as_string(), "C");
}

TEST(TraceWriter, DisabledWriterRecordsNothing) {
  TraceWriter trace(false);
  const std::uint32_t t = trace.track("quiet");
  trace.span(t, "c", "n", 0.0, 1.0);
  trace.instant(t, "c", "n", 0.0);
  trace.counter(t, "n", 0.0, 1.0);
  EXPECT_EQ(trace.event_count(), 0u);
}

// --- NodeProbe annotations land in subsequent samples ---

TEST(NodeProbe, AnnotationsStampIntoSamples) {
  TelemetryConfig config;
  config.enabled = true;
  config.sample_period = util::microseconds(10);
  NodeProbe probe(config, nullptr, nullptr, "n0");
  ProbeInput in;
  in.now = util::microseconds(10);
  in.watts = 120.0;
  probe.on_tick(in);
  probe.note_cap(130.0);
  probe.note_throttle_level(2);
  probe.note_health(1);
  in.now = util::microseconds(20);
  probe.on_tick(in);
  ASSERT_EQ(probe.sampler().size(), 2u);
  const NodeSample& first = probe.sampler().series().at(0);
  const NodeSample& second = probe.sampler().series().at(1);
  EXPECT_DOUBLE_EQ(first.cap_w, 0.0);
  EXPECT_EQ(first.throttle_level, 0u);
  EXPECT_DOUBLE_EQ(second.cap_w, 130.0);
  EXPECT_EQ(second.throttle_level, 2u);
  EXPECT_EQ(second.health, 1);
}

TEST(NodeProbe, DisabledProbeNeverSamples) {
  NodeProbe probe;  // default config: disabled
  EXPECT_FALSE(probe.wants_sample(util::seconds(1)));
  ProbeInput in;
  in.now = util::seconds(1);
  probe.on_tick(in);
  EXPECT_EQ(probe.sampler().size(), 0u);
}

// --- The guarantee everything above rides on: telemetry is read-only ---

harness::WorkloadFactory phased_factory() {
  return [] {
    apps::PhasedParams p;
    p.phases = 3;
    p.mean_phase_uops = 120000;
    return std::make_unique<apps::PhasedWorkload>(p);
  };
}

TEST(Telemetry, StudyResultsBitIdenticalOnAndOff) {
  harness::StudyConfig off;
  off.caps_w = {150.0, 125.0};
  off.repetitions = 2;

  harness::StudyConfig on = off;
  on.telemetry.enabled = true;
  on.telemetry.sample_period = util::microseconds(50);
  std::vector<std::string> labels;
  std::size_t sampled = 0;
  on.telemetry_sink = [&](const std::string& label, const Sampler& sampler) {
    labels.push_back(label);
    sampled += sampler.size();
  };

  const harness::StudyResult a =
      run_power_cap_study("phased", phased_factory(), off);
  const harness::StudyResult b =
      run_power_cap_study("phased", phased_factory(), on);

  // The sink really ran and saw data (the probe is live, not a stub)...
  ASSERT_EQ(labels.size(), 3u);
  EXPECT_EQ(labels[0], "baseline");
  EXPECT_EQ(labels[1], "cap-150");
  EXPECT_EQ(labels[2], "cap-125");
  if constexpr (kCompiledIn) {
    EXPECT_GT(sampled, 0u);
  } else {
    EXPECT_EQ(sampled, 0u);  // node probe hook is compiled out
  }

  // ...and every measured quantity is bit-identical to the untelemetered
  // run: the probe only reads.
  const auto expect_identical = [](const harness::CellStats& x,
                                   const harness::CellStats& y) {
    EXPECT_EQ(x.time_s, y.time_s);
    EXPECT_EQ(x.time_stddev_s, y.time_stddev_s);
    EXPECT_EQ(x.avg_power_w, y.avg_power_w);
    EXPECT_EQ(x.power_stddev_w, y.power_stddev_w);
    EXPECT_EQ(x.energy_j, y.energy_j);
    EXPECT_EQ(x.avg_frequency, y.avg_frequency);
    EXPECT_EQ(x.avg_duty, y.avg_duty);
    for (std::size_t i = 0; i < x.counters.size(); ++i) {
      EXPECT_EQ(x.counters[i], y.counters[i]) << "counter " << i;
    }
  };
  expect_identical(a.baseline, b.baseline);
  ASSERT_EQ(a.capped.size(), b.capped.size());
  for (std::size_t i = 0; i < a.capped.size(); ++i) {
    expect_identical(a.capped[i], b.capped[i]);
  }
}

}  // namespace
}  // namespace pcap::telemetry
