// Unit tests for P-states, the thermal model and the calibrated node power
// model (the paper's operating points are encoded as expectations here).
#include <gtest/gtest.h>

#include "power/model.hpp"
#include "power/pstate.hpp"
#include "power/thermal.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::power {
namespace {

TEST(PStateTable, RomleyHasSixteenStates) {
  const PStateTable table = PStateTable::romley_e5_2680();
  EXPECT_EQ(table.size(), 16u);  // as the paper's platform (§III)
  EXPECT_EQ(table.fastest().frequency, 2701 * util::kMegaHertz);
  EXPECT_EQ(table.slowest().frequency, 1200 * util::kMegaHertz);
}

TEST(PStateTable, FrequenciesAndVoltagesDescend) {
  const PStateTable table = PStateTable::romley_e5_2680();
  for (std::uint32_t i = 1; i < table.size(); ++i) {
    EXPECT_LT(table.state(i).frequency, table.state(i - 1).frequency);
    EXPECT_LE(table.state(i).voltage, table.state(i - 1).voltage);
  }
}

TEST(PStateTable, TurboBinHasElevatedVoltage) {
  const PStateTable table = PStateTable::romley_e5_2680();
  // P0 -> P1 drops voltage far more than any later step: the first P-state
  // step buys disproportionate power (visible in the paper's 150 W rows).
  const double turbo_drop = table.state(0).voltage - table.state(1).voltage;
  const double typical_drop = table.state(1).voltage - table.state(2).voltage;
  EXPECT_GT(turbo_drop, 4.0 * typical_drop);
}

TEST(PStateTable, StateForMinFrequency) {
  const PStateTable table = PStateTable::romley_e5_2680();
  EXPECT_EQ(table.state_for_min_frequency(2000 * util::kMegaHertz).frequency,
            2000 * util::kMegaHertz);
  EXPECT_EQ(table.state_for_min_frequency(1950 * util::kMegaHertz).frequency,
            2000 * util::kMegaHertz);
  EXPECT_EQ(table.state_for_min_frequency(1 * util::kMegaHertz).frequency,
            1200 * util::kMegaHertz);
}

TEST(PStateTable, ValidatesInput) {
  EXPECT_THROW(PStateTable({}, 1.0, 0.8), std::invalid_argument);
  EXPECT_THROW(PStateTable({1000, 2000}, 1.0, 0.8), std::invalid_argument);
  EXPECT_THROW(PStateTable(std::vector<PState>{}), std::invalid_argument);
}

TEST(PStateTable, LinearCtorAssignsVoltages) {
  const PStateTable t({2000 * util::kMegaHertz, 1000 * util::kMegaHertz}, 1.0,
                      0.8);
  EXPECT_DOUBLE_EQ(t.state(0).voltage, 1.0);
  EXPECT_DOUBLE_EQ(t.state(1).voltage, 0.8);
  EXPECT_EQ(t.state(1).index, 1u);
}

TEST(Thermal, ConvergesToSteadyState) {
  ThermalModel model({.ambient_c = 35.0, .r_thermal_c_per_w = 0.35,
                      .tau = util::milliseconds(1.0)});
  for (int i = 0; i < 100; ++i) model.update(60.0, util::milliseconds(1.0));
  EXPECT_NEAR(model.temperature_c(), 35.0 + 0.35 * 60.0, 0.1);
}

TEST(Thermal, CoolsBackToAmbient) {
  ThermalModel model({});
  for (int i = 0; i < 100; ++i) model.update(80.0, util::milliseconds(1.0));
  for (int i = 0; i < 200; ++i) model.update(0.0, util::milliseconds(1.0));
  EXPECT_NEAR(model.temperature_c(), model.config().ambient_c, 0.5);
}

TEST(Thermal, ResetRestoresAmbient) {
  ThermalModel model({});
  model.update(100.0, util::milliseconds(5.0));
  model.reset();
  EXPECT_DOUBLE_EQ(model.temperature_c(), model.config().ambient_c);
}

// --- node power model: the paper's calibration points ---

PowerInputs idle_inputs() {
  PowerInputs in;
  in.workload_running = false;
  in.active_cores = 0;
  in.activity = 0.0;
  in.temperature_c = 40.0;
  return in;
}

PowerInputs loaded_inputs() {
  PowerInputs in;
  in.workload_running = true;
  in.active_cores = 1;
  in.frequency = 2701 * util::kMegaHertz;
  in.voltage = 1.10;
  in.duty = 1.0;
  in.activity = 0.85;
  in.l3_accesses_per_s = 50e6;
  in.dram_accesses_per_s = 5e6;
  in.temperature_c = 55.0;
  return in;
}

TEST(NodePower, IdleMatchesPaper) {
  const sim::CalibrationTargets cal;
  NodePowerModel model{NodePowerConfig{}};
  const double idle = model.total_watts(idle_inputs());
  EXPECT_GE(idle, cal.idle_min_w);  // paper: "between 100 and 103 W"
  EXPECT_LE(idle, cal.idle_max_w);
}

TEST(NodePower, LoadedBaselineInPaperBand) {
  const sim::CalibrationTargets cal;
  NodePowerModel model{NodePowerConfig{}};
  const double loaded = model.total_watts(loaded_inputs());
  EXPECT_GE(loaded, cal.loaded_min_w);  // paper baselines: 153-157 W
  EXPECT_LE(loaded, cal.loaded_max_w);
}

TEST(NodePower, SlowestPStateStillAbove135WUnderLoad) {
  // The paper's caps of 135 W and below force non-DVFS mechanisms; that
  // requires the min-P-state loaded draw to sit near/above ~130 W.
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs in = loaded_inputs();
  in.frequency = 1200 * util::kMegaHertz;
  in.voltage = 0.875;
  in.l3_accesses_per_s *= 0.45;
  in.dram_accesses_per_s *= 0.45;
  const double watts = model.total_watts(in);
  const sim::CalibrationTargets cal;
  EXPECT_GE(watts, cal.min_pstate_min_w);
  EXPECT_LE(watts, cal.min_pstate_max_w);
}

TEST(NodePower, ThrottlingFloorAboveOneTwenty) {
  // Everything engaged: min P-state, min duty, gated caches/DRAM. The node
  // must still draw more than 120 W (the paper's missed cap).
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs in = loaded_inputs();
  in.frequency = 1200 * util::kMegaHertz;
  in.voltage = 0.875;
  in.duty = 0.125;
  in.activity = 0.8;
  in.l3_active_ways = 4;
  in.dram_gated = true;
  in.l3_accesses_per_s = 1e6;
  in.dram_accesses_per_s = 1e6;
  const double floor = model.total_watts(in);
  const sim::CalibrationTargets cal;
  EXPECT_GT(floor, cal.floor_above_w);
  EXPECT_LT(floor, cal.floor_below_w);
}

TEST(NodePower, MonotoneInFrequency) {
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs in = loaded_inputs();
  double last = 1e9;
  for (util::Hertz f = 2701; f >= 1200; f -= 100) {
    in.frequency = f * util::kMegaHertz;
    const double watts = model.total_watts(in);
    EXPECT_LT(watts, last);
    last = watts;
  }
}

TEST(NodePower, MonotoneInDutyVoltageActivity) {
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs in = loaded_inputs();
  PowerInputs lo = in;
  lo.duty = 0.5;
  EXPECT_LT(model.total_watts(lo), model.total_watts(in));
  lo = in;
  lo.voltage = 0.95;
  EXPECT_LT(model.total_watts(lo), model.total_watts(in));
  lo = in;
  lo.activity = 0.5;
  EXPECT_LT(model.total_watts(lo), model.total_watts(in));
}

TEST(NodePower, GatingSavesPower) {
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs in = loaded_inputs();
  PowerInputs gated = in;
  gated.l3_active_ways = 4;
  gated.dram_gated = true;
  const double saved = model.total_watts(in) - model.total_watts(gated);
  EXPECT_GT(saved, 1.0);
  EXPECT_LT(saved, 8.0);  // "small decreases in power" (paper §V)
}

TEST(NodePower, LeakageRisesWithTemperature) {
  NodePowerModel model{NodePowerConfig{}};
  EXPECT_GT(model.core_leakage_watts(1.1, 80.0),
            model.core_leakage_watts(1.1, 50.0));
  EXPECT_GT(model.core_leakage_watts(1.1, 50.0),
            model.core_leakage_watts(0.9, 50.0));
}

TEST(NodePower, BreakdownSumsToTotal) {
  NodePowerModel model{NodePowerConfig{}};
  const PowerBreakdown b = model.compute(loaded_inputs());
  const double sum = b.platform + b.dram_background + b.dram_dynamic +
                     b.uncore_base + b.package_uplift + b.l3_leakage +
                     b.uncore_dynamic + b.cores;
  EXPECT_NEAR(sum, b.total, 1e-9);
}

TEST(NodePower, ExtraActiveCoresAddPower) {
  NodePowerModel model{NodePowerConfig{}};
  PowerInputs one = loaded_inputs();
  PowerInputs four = loaded_inputs();
  four.active_cores = 4;
  const double delta = model.total_watts(four) - model.total_watts(one);
  EXPECT_GT(delta, 3.0 * 20.0);  // three more active cores, >20 W each
}

TEST(NodePower, DutyOffWindowStillLeaks) {
  // C1 is clock gating, not power gating: at duty ~0 an "active" core must
  // still draw well above the parked C6 level.
  NodePowerModel model{NodePowerConfig{}};
  const double c1ish =
      model.active_core_watts(1200 * util::kMegaHertz, 0.875, 0.0, 1.0, 50.0);
  EXPECT_GT(c1ish, 5.0);
}

}  // namespace
}  // namespace pcap::power
