// Cross-cutting property tests:
//  - the stride probe's hierarchy inference must recover whatever geometry
//    the machine is configured with (it is a measurement, not a lookup);
//  - the BMC must regulate to reachable caps on machine variants it was
//    never calibrated for (the controller is feedback, not a table).
#include <gtest/gtest.h>

#include <optional>

#include "apps/stride/stride.hpp"
#include "apps/synthetic.hpp"
#include "core/capped_runner.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap {
namespace {

struct Geometry {
  std::uint64_t l1_bytes;
  std::uint64_t l2_bytes;
};

class StrideInferenceProperty : public ::testing::TestWithParam<Geometry> {};

TEST_P(StrideInferenceProperty, ProbeRecoversConfiguredGeometry) {
  const Geometry g = GetParam();
  sim::MachineConfig machine = sim::MachineConfig::romley();
  machine.hierarchy.l1d.size_bytes = g.l1_bytes;
  machine.hierarchy.l2.size_bytes = g.l2_bytes;

  apps::stride::StrideConfig config;
  config.min_array_bytes = 4 * 1024;
  config.max_array_bytes = 8ull * 1024 * 1024;  // enough to cross L2
  config.min_stride_bytes = 64;
  config.touches_per_cell = 1500;

  sim::Node node(machine);
  node.set_os_noise(false);
  apps::stride::StrideWorkload probe(config);
  node.run(probe);

  const auto inf = apps::stride::infer_hierarchy(probe.results());
  EXPECT_EQ(inf.l1_fits_bytes, g.l1_bytes) << "L1";
  EXPECT_EQ(inf.l2_fits_bytes, g.l2_bytes) << "L2";
  EXPECT_LT(inf.l1_ns, inf.l2_ns);
}

INSTANTIATE_TEST_SUITE_P(Geometries, StrideInferenceProperty,
                         ::testing::Values(Geometry{16 * 1024, 256 * 1024},
                                           Geometry{32 * 1024, 128 * 1024},
                                           Geometry{64 * 1024, 512 * 1024},
                                           Geometry{32 * 1024, 1024 * 1024}));

struct MachineVariant {
  std::uint64_t l3_bytes;
  int cores;          // power-model core count
  double cap_w;
};

class BmcVariantProperty : public ::testing::TestWithParam<MachineVariant> {};

TEST_P(BmcVariantProperty, RegulatesOnUncalibratedMachines) {
  const MachineVariant v = GetParam();
  sim::MachineConfig machine = sim::MachineConfig::romley();
  machine.hierarchy.l3.size_bytes = v.l3_bytes;
  machine.power.cores = v.cores;

  sim::Node node(machine);
  core::CappedRunner runner(node);
  apps::PhasedParams params;
  params.phases = 6;
  params.mean_phase_uops = 400000;
  apps::PhasedWorkload workload(params);

  const sim::RunReport base = runner.run(workload, std::nullopt);
  const sim::RunReport capped = runner.run(workload, v.cap_w);
  if (base.avg_power_w > v.cap_w + 2.0) {
    // Meaningful cap: regulated within tolerance and slower than baseline.
    EXPECT_LE(capped.avg_power_w, v.cap_w + 2.0);
    EXPECT_GE(capped.elapsed, base.elapsed);
  } else {
    // Cap above demand: must not over-throttle.
    EXPECT_NEAR(util::to_seconds(capped.elapsed), util::to_seconds(base.elapsed),
                util::to_seconds(base.elapsed) * 0.05);
  }
  // Actuators always within range afterwards.
  EXPECT_LE(node.pstate(), 15u);
  EXPECT_GE(node.l3_ways(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Variants, BmcVariantProperty,
    ::testing::Values(MachineVariant{20ull << 20, 16, 140.0},
                      MachineVariant{20ull << 20, 16, 165.0},
                      MachineVariant{4096ull * 20 * 64, 16, 135.0},
                      MachineVariant{40ull << 20, 16, 145.0},
                      MachineVariant{20ull << 20, 8, 130.0},
                      MachineVariant{20ull << 20, 4, 132.0}));

}  // namespace
}  // namespace pcap
