// Tests for the shape-agreement scorer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>
#include "harness/agreement.hpp"

namespace pcap::harness {
namespace {

TEST(Agreement, PearsonBasics) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> up{2, 4, 6, 8};
  const std::vector<double> down{8, 6, 4, 2};
  const std::vector<double> flat{5, 5, 5, 5};
  EXPECT_NEAR(pearson(x, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, down), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
  EXPECT_DOUBLE_EQ(pearson({}, {}), 0.0);
}

TEST(Agreement, SignedLog) {
  EXPECT_DOUBLE_EQ(signed_log(0.0), 0.0);
  EXPECT_NEAR(signed_log(100.0), std::log1p(100.0), 1e-12);
  EXPECT_NEAR(signed_log(-20.0), -std::log1p(20.0), 1e-12);
}

StudyResult synthetic_study(double time_scale) {
  StudyResult study;
  study.workload = "synthetic";
  study.baseline.time_s = 1.0;
  study.baseline.avg_power_w = 153.0;
  study.baseline.energy_j = 153.0;
  for (const PaperRow& row : paper_stereo_rows()) {
    if (!row.cap_w) continue;
    CellStats cell;
    cell.cap_w = row.cap_w;
    cell.time_s = 1.0 + time_scale * row.pct_time / 100.0;
    cell.avg_power_w = 153.0 * (1.0 + row.pct_power / 100.0);
    cell.energy_j = 153.0 * (1.0 + row.pct_energy / 100.0);
    study.capped.push_back(cell);
  }
  return study;
}

TEST(Agreement, PerfectCloneScoresOne) {
  const ShapeAgreement fit =
      shape_agreement(synthetic_study(1.0), paper_stereo_rows());
  EXPECT_EQ(fit.caps_compared, 9);
  EXPECT_NEAR(fit.time, 1.0, 1e-9);
  EXPECT_NEAR(fit.power, 1.0, 1e-9);
  EXPECT_NEAR(fit.energy, 1.0, 1e-9);
  EXPECT_NEAR(fit.overall, 1.0, 1e-9);
}

TEST(Agreement, ScaledCloneStillCorrelatesHighly) {
  // Halving every slowdown changes magnitudes, not ordering/shape.
  const ShapeAgreement fit =
      shape_agreement(synthetic_study(0.5), paper_stereo_rows());
  EXPECT_GT(fit.time, 0.98);
}

TEST(Agreement, SkipsCapsAbsentFromReference) {
  StudyResult study = synthetic_study(1.0);
  CellStats odd;
  odd.cap_w = 147.0;  // not a paper cap
  odd.time_s = 1.0;
  study.capped.push_back(odd);
  const ShapeAgreement fit = shape_agreement(study, paper_stereo_rows());
  EXPECT_EQ(fit.caps_compared, 9);
}

}  // namespace
}  // namespace pcap::harness
