// Equivalence tests for the batched access APIs: the fast paths may change
// how fast the simulator runs, never what it computes. Pairs of identically
// configured components are driven with the same logical operation stream —
// one through the batched entry points, one through the per-operation loop —
// and every observable (summed latency, PMU counters, structural cache/TLB
// stats, the picosecond clock) must match bit for bit. Also pins the
// jobs-invariance of the study runner: StudyConfig{jobs=8} returns a
// bit-identical StudyResult to jobs=1.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "apps/stride/stride.hpp"
#include "harness/experiment.hpp"
#include "pmu/counters.hpp"
#include "sim/execution_context.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace pcap {
namespace {

// --- hierarchy level --------------------------------------------------------

class HierarchyPair {
 public:
  explicit HierarchyPair(const sim::MachineConfig& config = sim::MachineConfig::romley())
      : batched_(config.hierarchy, batched_bank_),
        looped_(config.hierarchy, looped_bank_) {}

  void run_stream(sim::Address base, std::int64_t stride, std::uint64_t count,
                  sim::AccessType type) {
    const sim::StreamLatency got =
        batched_.access_stream(base, stride, count, type);
    sim::StreamLatency want;
    sim::Address addr = base;
    for (std::uint64_t i = 0; i < count; ++i) {
      want.add(looped_.access(addr, type));
      addr += static_cast<sim::Address>(stride);
    }
    ASSERT_EQ(got.cycles, want.cycles)
        << "base=" << base << " stride=" << stride << " count=" << count;
    ASSERT_EQ(got.fixed_ps, want.fixed_ps)
        << "base=" << base << " stride=" << stride << " count=" << count;
    expect_equal_state();
  }

  void expect_equal_state() {
    ASSERT_EQ(batched_bank_.snapshot(), looped_bank_.snapshot());
    expect_equal_cache(batched_.l1i(), looped_.l1i());
    expect_equal_cache(batched_.l1d(), looped_.l1d());
    expect_equal_cache(batched_.l2(), looped_.l2());
    expect_equal_cache(batched_.l3(), looped_.l3());
    expect_equal_tlb(batched_.itlb(), looped_.itlb());
    expect_equal_tlb(batched_.dtlb(), looped_.dtlb());
  }

  sim::MemoryHierarchy& batched() { return batched_; }
  sim::MemoryHierarchy& looped() { return looped_; }

 private:
  static void expect_equal_cache(const cache::Cache& a, const cache::Cache& b) {
    ASSERT_EQ(a.stats().accesses, b.stats().accesses) << a.config().name;
    ASSERT_EQ(a.stats().hits, b.stats().hits) << a.config().name;
    ASSERT_EQ(a.stats().misses, b.stats().misses) << a.config().name;
    ASSERT_EQ(a.stats().evictions, b.stats().evictions) << a.config().name;
    ASSERT_EQ(a.stats().invalidations, b.stats().invalidations)
        << a.config().name;
    ASSERT_EQ(a.valid_line_addresses(), b.valid_line_addresses())
        << a.config().name;
  }
  static void expect_equal_tlb(const cache::Tlb& a, const cache::Tlb& b) {
    ASSERT_EQ(a.stats().accesses, b.stats().accesses) << a.config().name;
    ASSERT_EQ(a.stats().misses, b.stats().misses) << a.config().name;
  }

  pmu::CounterBank batched_bank_;
  pmu::CounterBank looped_bank_;
  sim::MemoryHierarchy batched_;
  sim::MemoryHierarchy looped_;
};

TEST(BatchEquivalence, HierarchyStreamRandomGrid) {
  HierarchyPair pair;
  util::Rng rng(31);
  const std::int64_t strides[] = {0,  1,   -1,  8,    -8,   63,   64,
                                  65, 256, -256, 4096, -4096, 65536};
  const sim::AccessType types[] = {sim::AccessType::kLoad,
                                   sim::AccessType::kStore,
                                   sim::AccessType::kFetch};
  for (int trial = 0; trial < 300; ++trial) {
    const sim::Address base = rng.below(1ull << 24) + (1ull << 22);
    const std::int64_t stride = strides[rng.below(std::size(strides))];
    const std::uint64_t count = 1 + rng.below(400);
    const sim::AccessType type = types[rng.below(std::size(types))];
    pair.run_stream(base, stride, count, type);
  }
}

TEST(BatchEquivalence, HierarchyStreamHotLoop) {
  // Same small buffer revisited: maximally fast-path-friendly (every access
  // after warmup is an MRU/TLB hit), which is where a bug in the analytic
  // accounting would hide.
  HierarchyPair pair;
  for (int pass = 0; pass < 50; ++pass) {
    pair.run_stream(0x10000, 8, 512, sim::AccessType::kLoad);
    pair.run_stream(0x10000, 8, 512, sim::AccessType::kStore);
    pair.run_stream(0x10000, 0, 173, sim::AccessType::kLoad);
    pair.run_stream(0x11000, 4, 64, sim::AccessType::kFetch);
  }
}

TEST(BatchEquivalence, HierarchyStreamAcrossGatingChanges) {
  // Gating reconfigures capacity/associativity mid-stream-sequence exactly
  // as the BMC's escalation ladder does; the fast path must keep agreeing.
  HierarchyPair pair;
  util::Rng rng(32);
  for (int round = 0; round < 12; ++round) {
    for (int trial = 0; trial < 20; ++trial) {
      pair.run_stream(rng.below(1ull << 22), 8 * (1 + rng.below(8)),
                      1 + rng.below(300),
                      rng.chance(0.5) ? sim::AccessType::kLoad
                                      : sim::AccessType::kStore);
    }
    const std::uint32_t l3_ways = 4 + static_cast<std::uint32_t>(rng.below(17));
    const std::uint32_t itlb = 4 + static_cast<std::uint32_t>(rng.below(45));
    const std::uint32_t dtlb = 4 + static_cast<std::uint32_t>(rng.below(61));
    pair.batched().set_l3_ways(l3_ways);
    pair.looped().set_l3_ways(l3_ways);
    pair.batched().set_itlb_entries(itlb);
    pair.looped().set_itlb_entries(itlb);
    pair.batched().set_dtlb_entries(dtlb);
    pair.looped().set_dtlb_entries(dtlb);
    if (round == 6) {
      pair.batched().flush_tlbs();
      pair.looped().flush_tlbs();
    }
  }
  pair.expect_equal_state();
}

// --- execution-context level ------------------------------------------------

// Two identically seeded nodes; `streamed` narrates through the batch APIs,
// `looped` through the equivalent per-op calls. on_op()/op_horizon() tick
// elision, fetch accounting and the float time carry are all in play.
class NodePair : public ::testing::Test {
 protected:
  NodePair()
      : streamed_node_(sim::MachineConfig::romley()),
        looped_node_(sim::MachineConfig::romley()),
        streamed_(streamed_node_),
        looped_(looped_node_) {}

  sim::Address alloc_both(std::uint64_t bytes) {
    const sim::Address a = streamed_.alloc(bytes);
    const sim::Address b = looped_.alloc(bytes);
    EXPECT_EQ(a, b);
    return a;
  }

  void expect_equal_state() {
    ASSERT_EQ(streamed_.now(), looped_.now());
    ASSERT_EQ(streamed_node_.counters().snapshot(),
              looped_node_.counters().snapshot());
  }

  sim::Node streamed_node_;
  sim::Node looped_node_;
  sim::ExecutionContext streamed_;
  sim::ExecutionContext looped_;
};

TEST_F(NodePair, LoadAndStoreStreams) {
  const sim::Address base = alloc_both(4 * 1024 * 1024);
  util::Rng rng(41);
  for (int trial = 0; trial < 120; ++trial) {
    const sim::Address start = base + rng.below(2 * 1024 * 1024);
    const std::int64_t stride =
        static_cast<std::int64_t>(rng.below(129)) - 64;
    const std::uint64_t count = 1 + rng.below(1500);
    const bool is_store = rng.chance(0.4);
    if (is_store) {
      streamed_.store_stream(start, stride, count);
      for (std::uint64_t k = 0; k < count; ++k) {
        looped_.store(start + static_cast<sim::Address>(stride) * k);
      }
    } else {
      streamed_.load_stream(start, stride, count);
      for (std::uint64_t k = 0; k < count; ++k) {
        looped_.load(start + static_cast<sim::Address>(stride) * k);
      }
    }
    expect_equal_state();
  }
}

TEST_F(NodePair, RmwStream) {
  const sim::Address base = alloc_both(1 * 1024 * 1024);
  util::Rng rng(42);
  for (int trial = 0; trial < 80; ++trial) {
    const sim::Address start = base + rng.below(512 * 1024);
    const std::int64_t stride = static_cast<std::int64_t>(8 * rng.below(16));
    const std::uint64_t count = 1 + rng.below(800);
    const std::uint64_t uops = rng.below(5);
    streamed_.rmw_stream(start, stride, count, uops);
    for (std::uint64_t k = 0; k < count; ++k) {
      const sim::Address a = start + static_cast<sim::Address>(stride) * k;
      looped_.load(a);
      looped_.store(a);
      if (uops != 0) looped_.compute(uops);
    }
    expect_equal_state();
  }
}

TEST_F(NodePair, PatternStream) {
  using StreamOp = sim::ExecutionContext::StreamOp;
  const sim::Address a = alloc_both(256 * 1024);
  const sim::Address b = alloc_both(256 * 1024);
  const sim::Address c = alloc_both(256 * 1024);
  util::Rng rng(43);
  for (int trial = 0; trial < 60; ++trial) {
    const sim::Address off = rng.below(64 * 1024);
    const StreamOp ops[3] = {
        {.kind = StreamOp::Kind::kLoad, .base = a + off},
        {.kind = StreamOp::Kind::kLoad, .base = b + off},
        {.kind = StreamOp::Kind::kStore, .base = c + off},
    };
    const std::int64_t stride = static_cast<std::int64_t>(4 * rng.below(12));
    const std::uint64_t count = 1 + rng.below(600);
    const std::uint64_t uops = rng.below(9);
    streamed_.pattern_stream(ops, stride, count, uops);
    for (std::uint64_t k = 0; k < count; ++k) {
      const sim::Address o = static_cast<sim::Address>(stride) * k;
      looped_.load(a + off + o);
      looped_.load(b + off + o);
      looped_.store(c + off + o);
      if (uops != 0) looped_.compute(uops);
    }
    expect_equal_state();
  }
}

TEST_F(NodePair, StreamsInterleavedWithScalarOps) {
  // Mix batched and scalar narration so streams start from arbitrary fetch
  // accumulator positions and time-carry values.
  const sim::Address base = alloc_both(2 * 1024 * 1024);
  util::Rng rng(44);
  for (int trial = 0; trial < 100; ++trial) {
    const std::uint64_t warm = rng.below(7);
    for (std::uint64_t i = 0; i < warm; ++i) {
      const sim::Address addr = base + rng.below(1024 * 1024);
      streamed_.load(addr);
      looped_.load(addr);
    }
    const std::uint64_t uops = rng.below(4);
    if (uops != 0) {
      streamed_.compute(uops);
      looped_.compute(uops);
    }
    const sim::Address start = base + rng.below(1024 * 1024);
    const std::uint64_t count = 1 + rng.below(900);
    streamed_.load_stream(start, 8, count);
    for (std::uint64_t k = 0; k < count; ++k) looped_.load(start + 8 * k);
    expect_equal_state();
  }
}

// --- study runner -----------------------------------------------------------

TEST(BatchEquivalence, StudyJobsInvariant) {
  // Each cell owns a fresh identically-seeded node whether cells run inline
  // or on the pool, so the whole StudyResult must be bit-identical.
  apps::stride::StrideConfig stride_config;
  stride_config.min_array_bytes = 4 * 1024;
  stride_config.max_array_bytes = 32 * 1024;
  stride_config.touches_per_cell = 2000;
  const harness::WorkloadFactory factory = [stride_config] {
    return std::make_unique<apps::stride::StrideWorkload>(stride_config);
  };
  harness::StudyConfig serial;
  serial.caps_w = {150.0, 130.0};
  serial.repetitions = 1;
  harness::StudyConfig parallel = serial;
  parallel.jobs = 8;

  const harness::StudyResult a =
      harness::run_power_cap_study("stride", factory, serial);
  const harness::StudyResult b =
      harness::run_power_cap_study("stride", factory, parallel);

  auto expect_cells_equal = [](const harness::CellStats& x,
                               const harness::CellStats& y) {
    ASSERT_EQ(x.cap_w.has_value(), y.cap_w.has_value());
    if (x.cap_w) {
      ASSERT_EQ(*x.cap_w, *y.cap_w);
    }
    ASSERT_EQ(x.repetitions, y.repetitions);
    ASSERT_EQ(x.time_s, y.time_s);
    ASSERT_EQ(x.time_stddev_s, y.time_stddev_s);
    ASSERT_EQ(x.avg_power_w, y.avg_power_w);
    ASSERT_EQ(x.power_stddev_w, y.power_stddev_w);
    ASSERT_EQ(x.energy_j, y.energy_j);
    ASSERT_EQ(x.avg_frequency, y.avg_frequency);
    ASSERT_EQ(x.avg_duty, y.avg_duty);
    ASSERT_EQ(x.counters, y.counters);
  };
  expect_cells_equal(a.baseline, b.baseline);
  ASSERT_EQ(a.capped.size(), b.capped.size());
  for (std::size_t i = 0; i < a.capped.size(); ++i) {
    expect_cells_equal(a.capped[i], b.capped[i]);
  }
}

}  // namespace
}  // namespace pcap
