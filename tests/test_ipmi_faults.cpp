// Fault-tolerance tests for the management plane: deterministic fault
// injection (drop / duplicate / corrupt / latency / partition), sequence-
// number rejection of stale frames, retry backoff schedule bounds, and the
// DCM's node health state machine with group-budget redistribution.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/bmc.hpp"
#include "core/bmc_ipmi_server.hpp"
#include "core/dcm.hpp"
#include "ipmi/commands.hpp"
#include "ipmi/transport.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/backoff.hpp"

namespace pcap {
namespace {

using core::DataCenterManager;
using core::NodeHealth;

/// Echoes the request's sequence number around a fixed response body, the
/// way BmcIpmiServer does.
ipmi::LoopbackTransport::Handler ok_responder() {
  return [](std::span<const std::uint8_t> frame) -> std::vector<std::uint8_t> {
    ipmi::Request request;
    if (!ipmi::decode_request(frame, request)) return {};
    ipmi::Response response = ipmi::make_ok_response();
    response.seq = request.seq;
    return ipmi::encode_response(response);
  };
}

TEST(FaultyTransport, DeterministicUnderFixedSeed) {
  ipmi::FaultSpec spec;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.2;
  spec.corrupt_rate = 0.2;
  spec.latency_jitter_ms = 4.0;

  auto run = [&](std::uint64_t seed) {
    ipmi::LoopbackTransport inner(ok_responder());
    ipmi::FaultyTransport faulty(inner, spec, seed);
    ipmi::Session session(faulty);
    std::vector<int> outcomes;
    for (int i = 0; i < 80; ++i) {
      session.transact(ipmi::make_get_power_reading());
      outcomes.push_back(static_cast<int>(session.last_error()));
    }
    return std::make_tuple(outcomes, faulty.drops(), faulty.duplicates(),
                           faulty.corruptions());
  };

  EXPECT_EQ(run(42), run(42));  // bit-for-bit reproducible
  EXPECT_NE(std::get<0>(run(42)), std::get<0>(run(43)));
}

TEST(FaultyTransport, DropsEverythingAtRateOne) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultSpec spec;
  spec.drop_rate = 1.0;
  ipmi::FaultyTransport faulty(inner, spec, 1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(faulty.transact(std::vector<std::uint8_t>{1, 2, 3}).empty());
  }
  EXPECT_EQ(faulty.drops(), 10u);
}

TEST(FaultyTransport, PeriodicPartitionWindows) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultSpec spec;
  spec.partition_period = 10;
  spec.partition_length = 3;
  ipmi::FaultyTransport faulty(inner, spec, 1);
  ipmi::Session session(faulty);
  std::vector<bool> lost;
  for (int i = 0; i < 20; ++i) {
    session.transact(ipmi::make_get_power_reading());
    lost.push_back(session.last_error() == ipmi::Session::Error::kLost);
  }
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(lost[static_cast<std::size_t>(i)], i % 10 < 3) << "tx " << i;
  }
  EXPECT_EQ(faulty.partition_drops(), 6u);
}

TEST(FaultyTransport, ScriptedPartitionAndHeal) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultyTransport faulty(inner, ipmi::FaultSpec{}, 1);
  ipmi::Session session(faulty);
  EXPECT_TRUE(session.transact(ipmi::make_get_power_reading()).ok());

  faulty.partition_for(2);
  EXPECT_TRUE(faulty.partitioned());
  EXPECT_FALSE(session.transact(ipmi::make_get_power_reading()).ok());
  EXPECT_FALSE(session.transact(ipmi::make_get_power_reading()).ok());
  EXPECT_FALSE(faulty.partitioned());  // window exhausted
  EXPECT_TRUE(session.transact(ipmi::make_get_power_reading()).ok());

  faulty.partition_for(1000);
  EXPECT_FALSE(session.transact(ipmi::make_get_power_reading()).ok());
  faulty.heal();
  EXPECT_TRUE(session.transact(ipmi::make_get_power_reading()).ok());
  EXPECT_EQ(faulty.partition_drops(), 3u);
}

TEST(FaultyTransport, DuplicateReplayRejectedBySequenceNumber) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultSpec spec;
  spec.duplicate_rate = 1.0;
  ipmi::FaultyTransport faulty(inner, spec, 1);
  ipmi::Session session(faulty);

  // First exchange: nothing cached yet, passes through and succeeds.
  EXPECT_TRUE(session.transact(ipmi::make_get_power_reading()).ok());
  // Every further exchange gets the previous (seq-stale) frame replayed:
  // well-formed, checksum-valid, but rejected by the rqSeq check.
  for (int i = 0; i < 5; ++i) {
    const ipmi::Response r = session.transact(ipmi::make_get_power_reading());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(session.last_error(), ipmi::Session::Error::kStale);
  }
  EXPECT_EQ(session.stale_rejections(), 5u);
  EXPECT_EQ(faulty.duplicates(), 5u);
}

TEST(FaultyTransport, CorruptionCaughtByChecksum) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultSpec spec;
  spec.corrupt_rate = 1.0;
  ipmi::FaultyTransport faulty(inner, spec, 1);
  ipmi::Session session(faulty);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(session.transact(ipmi::make_get_power_reading()).ok());
    EXPECT_EQ(session.last_error(), ipmi::Session::Error::kCorrupt);
  }
  EXPECT_EQ(faulty.corruptions(), 5u);
}

TEST(FaultyTransport, LatencyBeyondTimeoutDiscarded) {
  ipmi::LoopbackTransport inner(ok_responder());
  ipmi::FaultSpec spec;
  spec.base_latency_ms = 10.0;
  ipmi::FaultyTransport faulty(inner, spec, 1);

  ipmi::Session patient(faulty, /*timeout_ms=*/50.0);
  EXPECT_TRUE(patient.transact(ipmi::make_get_power_reading()).ok());

  ipmi::Session impatient(faulty, /*timeout_ms=*/5.0);
  EXPECT_FALSE(impatient.transact(ipmi::make_get_power_reading()).ok());
  EXPECT_EQ(impatient.last_error(), ipmi::Session::Error::kTimeout);
  EXPECT_EQ(impatient.timeouts(), 1u);
}

TEST(Backoff, NominalScheduleGrowsAndSaturates) {
  util::BackoffPolicy policy;
  policy.base_ms = 1.0;
  policy.multiplier = 2.0;
  policy.max_ms = 8.0;
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 0), 1.0);
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 1), 2.0);
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 2), 4.0);
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 3), 8.0);
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 10), 8.0);   // saturated
  EXPECT_DOUBLE_EQ(util::backoff_nominal_ms(policy, 200), 8.0);  // no overflow
}

TEST(Backoff, JitterBoundedAndDeterministic) {
  util::BackoffPolicy policy;  // jitter 0.25
  util::Rng rng_a(9), rng_b(9);
  for (std::uint32_t retry = 0; retry < 12; ++retry) {
    const double nominal = util::backoff_nominal_ms(policy, retry);
    const double a = util::backoff_delay_ms(policy, retry, rng_a);
    const double b = util::backoff_delay_ms(policy, retry, rng_b);
    EXPECT_DOUBLE_EQ(a, b);  // same seed, same schedule
    EXPECT_GE(a, nominal * (1.0 - policy.jitter));
    EXPECT_LE(a, nominal * (1.0 + policy.jitter));
  }
}

// --- DCM health machine over a real BMC stack ---

struct Slot {
  std::unique_ptr<sim::Node> node;
  std::unique_ptr<core::Bmc> bmc;
  std::unique_ptr<core::BmcIpmiServer> server;
  std::unique_ptr<ipmi::LoopbackTransport> loopback;
  std::unique_ptr<ipmi::FaultyTransport> faulty;

  explicit Slot(std::uint64_t seed, const ipmi::FaultSpec& spec = {}) {
    node = std::make_unique<sim::Node>(sim::MachineConfig::romley(), seed);
    bmc = std::make_unique<core::Bmc>(*node);
    server = std::make_unique<core::BmcIpmiServer>(*bmc);
    node->set_control_hook(
        [b = bmc.get()](sim::PlatformControl&) { b->on_control_tick(); });
    loopback = std::make_unique<ipmi::LoopbackTransport>(
        [s = server.get()](std::span<const std::uint8_t> frame) {
          return s->handle_frame(frame);
        });
    faulty = std::make_unique<ipmi::FaultyTransport>(*loopback, spec,
                                                     seed * 101 + 7);
  }

  void load(int phases = 4) {
    apps::PhasedParams p;
    p.phases = phases;
    apps::PhasedWorkload w(p);
    node->run(w);
  }
};

class HealthTest : public ::testing::Test {
 protected:
  static constexpr double kBudgetW = 420.0;

  HealthTest() {
    for (int i = 0; i < 3; ++i) {
      slots_.push_back(
          std::make_unique<Slot>(static_cast<std::uint64_t>(i + 1)));
      EXPECT_TRUE(
          dcm_.add_node("node-" + std::to_string(i), *slots_.back()->faulty));
    }
    for (auto& s : slots_) s->load();
    dcm_.poll();
    EXPECT_EQ(dcm_.apply_group_cap(kBudgetW).size(), 3u);
  }

  /// Allocation invariant: caps held by reachable nodes plus conservative
  /// reservations for lost ones never exceed the group budget.
  double committed_budget_w() const {
    double total = 0.0;
    for (const auto& name : dcm_.node_names()) {
      const auto cap = dcm_.node_applied_cap(name);
      total += cap.value_or(0.0);
    }
    return total;
  }

  bool alert_mentions(const std::string& needle) const {
    for (const auto& a : dcm_.alerts()) {
      if (a.message.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  std::vector<std::unique_ptr<Slot>> slots_;
  DataCenterManager dcm_;
};

TEST_F(HealthTest, WalksDegradedToLostAndBack) {
  ASSERT_EQ(dcm_.node_health("node-0"), NodeHealth::kHealthy);
  EXPECT_FALSE(dcm_.node_health("missing").has_value());

  slots_[0]->faulty->partition_for(1'000'000);
  dcm_.poll();  // failure 1: still healthy
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kHealthy);
  dcm_.poll();  // failure 2: degraded
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kDegraded);
  EXPECT_TRUE(alert_mentions("degraded"));
  dcm_.poll();
  dcm_.poll();  // failure 4: lost
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kLost);
  EXPECT_TRUE(alert_mentions("lost"));
  EXPECT_EQ(dcm_.health_count(NodeHealth::kLost), 1u);

  slots_[0]->faulty->heal();
  dcm_.poll();  // success: recovered (budget share restored)
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kRecovered);
  EXPECT_TRUE(alert_mentions("recovered"));
  dcm_.poll();  // second success settles back to healthy
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kHealthy);
  EXPECT_EQ(dcm_.health_count(NodeHealth::kHealthy), 3u);
}

TEST_F(HealthTest, DegradedNodeRecoversWithoutRebalance) {
  slots_[0]->faulty->partition_for(1'000'000);
  dcm_.poll();
  dcm_.poll();
  ASSERT_EQ(dcm_.node_health("node-0"), NodeHealth::kDegraded);
  slots_[0]->faulty->heal();
  dcm_.poll();
  // Degraded -> healthy directly; kRecovered is only for lost nodes.
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kHealthy);
  EXPECT_FALSE(alert_mentions("recovered"));
}

TEST_F(HealthTest, LostNodeBudgetRedistributedConservatively) {
  const auto cap_before = dcm_.node_applied_cap("node-0");
  ASSERT_TRUE(cap_before.has_value());
  EXPECT_LE(committed_budget_w(), kBudgetW + 1e-6);

  slots_[0]->faulty->partition_for(1'000'000);
  for (int i = 0; i < 4; ++i) dcm_.poll();
  ASSERT_EQ(dcm_.node_health("node-0"), NodeHealth::kLost);

  // The lost node's reservation is exactly the cap its BMC still enforces;
  // the survivors were re-planned inside budget - reservation.
  EXPECT_EQ(dcm_.node_applied_cap("node-0"), cap_before);
  EXPECT_LE(committed_budget_w(), kBudgetW + 1e-6);
  double survivors = 0.0;
  for (const auto& name : {"node-1", "node-2"}) {
    const auto cap = dcm_.node_applied_cap(name);
    ASSERT_TRUE(cap.has_value());
    EXPECT_GE(*cap, 110.0);  // never below the enforceable floor
    survivors += *cap;
  }
  EXPECT_LE(survivors, kBudgetW - *cap_before + 1e-6);

  // Ground truth on the BMCs matches the DCM's book-keeping.
  ASSERT_TRUE(slots_[1]->bmc->cap().has_value());
  EXPECT_DOUBLE_EQ(*slots_[1]->bmc->cap(), *dcm_.node_applied_cap("node-1"));

  slots_[0]->faulty->heal();
  dcm_.poll();  // recovery rebalances across all three again
  EXPECT_EQ(dcm_.node_health("node-0"), NodeHealth::kRecovered);
  EXPECT_LE(committed_budget_w(), kBudgetW + 1e-6);
  // The recovered node is being capped again (restoration happened).
  ASSERT_TRUE(slots_[0]->bmc->cap().has_value());
  EXPECT_DOUBLE_EQ(*slots_[0]->bmc->cap(), *dcm_.node_applied_cap("node-0"));
}

TEST_F(HealthTest, GroupCapSkipsLostNodes) {
  slots_[0]->faulty->partition_for(1'000'000);
  for (int i = 0; i < 4; ++i) dcm_.poll();
  ASSERT_EQ(dcm_.node_health("node-0"), NodeHealth::kLost);

  // Re-issuing the group policy plans only the reachable nodes.
  const auto applied = dcm_.apply_group_cap(kBudgetW);
  ASSERT_EQ(applied.size(), 2u);
  for (const auto& [name, cap] : applied) {
    EXPECT_NE(name, "node-0");
    EXPECT_GE(cap, 110.0);
  }
  EXPECT_LE(committed_budget_w(), kBudgetW + 1e-6);
}

// --- Seeded message-layer fuzz: round-trips for every command, bit
// flips, truncations and random garbage. Parsing must never crash, and a
// frame with any single corrupted byte must never decode. ---

std::vector<ipmi::Request> fuzz_requests() {
  ipmi::PowerLimit limit;
  limit.enabled = true;
  limit.limit_w = 215.5;
  return {ipmi::make_get_device_id(),      ipmi::make_get_power_reading(),
          ipmi::make_set_power_limit(limit), ipmi::make_get_power_limit(),
          ipmi::make_get_capabilities(),   ipmi::make_get_throttle_status(),
          ipmi::make_set_rack_budget(35700.3), ipmi::make_get_rack_status(),
          ipmi::make_get_rack_telemetry()};
}

std::vector<ipmi::Response> fuzz_responses() {
  ipmi::PowerLimit limit;
  limit.enabled = true;
  limit.limit_w = 180.0;
  ipmi::RackStatus status;
  status.enforced_w = 123456.7;
  status.committed_w = 120000.2;
  status.reserved_w = 350.0;
  status.demand_w = 98765.4;
  status.floor_w = 110000.0;
  status.ceiling_w = 400000.0;
  status.nodes = 1000;
  status.lost_nodes = 31;
  status.busy_nodes = 600;
  status.free_lanes = 400;
  status.queued_jobs = 12;
  ipmi::RackTelemetry telemetry;
  telemetry.nodes = 1000;
  telemetry.min_w = 101.0;
  telemetry.mean_w = 140.5;
  telemetry.max_w = 399.9;
  telemetry.sum_w = 140500.0;
  return {ipmi::make_ok_response(),
          ipmi::encode_device_id(ipmi::DeviceId{}),
          ipmi::encode_power_reading(ipmi::PowerReading{}),
          ipmi::encode_power_limit(limit),
          ipmi::encode_capabilities(ipmi::Capabilities{}),
          ipmi::encode_throttle_status(ipmi::ThrottleStatus{}),
          ipmi::encode_rack_budget_grant(123456.7),
          ipmi::encode_rack_status(status),
          ipmi::encode_rack_telemetry(telemetry)};
}

/// Runs every typed decoder over a structurally valid message; none may
/// crash, whatever the payload happens to contain.
void poke_all_decoders(const ipmi::Request& request,
                       const ipmi::Response& response) {
  (void)ipmi::decode_set_power_limit(request);
  (void)ipmi::decode_set_rack_budget(request);
  (void)ipmi::decode_device_id(response);
  (void)ipmi::decode_power_reading(response);
  (void)ipmi::decode_power_limit(response);
  (void)ipmi::decode_capabilities(response);
  (void)ipmi::decode_throttle_status(response);
  (void)ipmi::decode_rack_budget_grant(response);
  (void)ipmi::decode_rack_status(response);
  (void)ipmi::decode_rack_telemetry(response);
}

TEST(IpmiFuzz, EveryCommandRoundTrips) {
  for (const ipmi::Request& request : fuzz_requests()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_request(request);
    ipmi::Request out;
    ASSERT_TRUE(ipmi::decode_request(frame, out));
    EXPECT_EQ(out.netfn, request.netfn);
    EXPECT_EQ(out.command, request.command);
    EXPECT_EQ(out.seq, request.seq);
    EXPECT_EQ(out.payload, request.payload);
  }
  for (const ipmi::Response& response : fuzz_responses()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_response(response);
    ipmi::Response out;
    ASSERT_TRUE(ipmi::decode_response(frame, out));
    EXPECT_EQ(out.code, response.code);
    EXPECT_EQ(out.payload, response.payload);
  }
  // Typed payloads survive the fixed-point wire format on the 0.1 W grid.
  const auto budget =
      ipmi::decode_set_rack_budget(ipmi::make_set_rack_budget(35700.3));
  ASSERT_TRUE(budget.has_value());
  EXPECT_NEAR(*budget, 35700.3, 1e-6);
  const auto grant = ipmi::decode_rack_budget_grant(
      ipmi::encode_rack_budget_grant(123456.7));
  ASSERT_TRUE(grant.has_value());
  EXPECT_NEAR(*grant, 123456.7, 1e-6);
}

TEST(IpmiFuzz, AnySingleByteFlipRejected) {
  // The frame checksum is a two's-complement byte sum, so no single-byte
  // change can go unnoticed (flipping the length bytes trips the length
  // check first).
  for (const ipmi::Request& request : fuzz_requests()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_request(request);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = frame;
        mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ (1u << bit));
        ipmi::Request out;
        EXPECT_FALSE(ipmi::decode_request(mutated, out))
            << "byte " << i << " bit " << bit;
      }
    }
  }
  for (const ipmi::Response& response : fuzz_responses()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_response(response);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> mutated = frame;
        mutated[i] = static_cast<std::uint8_t>(mutated[i] ^ (1u << bit));
        ipmi::Response out;
        EXPECT_FALSE(ipmi::decode_response(mutated, out))
            << "byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(IpmiFuzz, EveryTruncationRejected) {
  for (const ipmi::Request& request : fuzz_requests()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_request(request);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      ipmi::Request out;
      EXPECT_FALSE(ipmi::decode_request(
          std::span<const std::uint8_t>(frame.data(), len), out))
          << "prefix " << len;
    }
  }
  for (const ipmi::Response& response : fuzz_responses()) {
    const std::vector<std::uint8_t> frame = ipmi::encode_response(response);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      ipmi::Response out;
      EXPECT_FALSE(ipmi::decode_response(
          std::span<const std::uint8_t>(frame.data(), len), out))
          << "prefix " << len;
    }
  }
}

TEST(IpmiFuzz, SeededGarbageAndMultiFlipsNeverCrash) {
  util::Rng rng(0xF022);
  // Pure garbage frames: decode must reject or produce a message the typed
  // decoders handle without crashing.
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::uint8_t> frame(rng.below(64));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    ipmi::Request request;
    ipmi::Response response;
    const bool req_ok = ipmi::decode_request(frame, request);
    const bool resp_ok = ipmi::decode_response(frame, response);
    poke_all_decoders(req_ok ? request : ipmi::Request{},
                      resp_ok ? response : ipmi::Response{});
  }
  // Multi-byte mutations of valid frames: compensating flips can restore
  // the checksum, so a decode may succeed — the typed decoders must still
  // cope with whatever payload results.
  const std::vector<ipmi::Request> requests = fuzz_requests();
  const std::vector<ipmi::Response> responses = fuzz_responses();
  for (int trial = 0; trial < 4000; ++trial) {
    std::vector<std::uint8_t> frame =
        trial % 2 == 0
            ? ipmi::encode_request(requests[rng.below(requests.size())])
            : ipmi::encode_response(responses[rng.below(responses.size())]);
    const std::size_t flips = 2 + rng.below(3);
    for (std::size_t f = 0; f < flips; ++f) {
      frame[rng.below(frame.size())] =
          static_cast<std::uint8_t>(rng.below(256));
    }
    ipmi::Request request;
    ipmi::Response response;
    const bool req_ok = ipmi::decode_request(frame, request);
    const bool resp_ok = ipmi::decode_response(frame, response);
    poke_all_decoders(req_ok ? request : ipmi::Request{},
                      resp_ok ? response : ipmi::Response{});
  }
}

TEST(DcmRetry, ManagedNodeRetriesThroughHeavyLoss) {
  Slot slot(5);
  ipmi::FaultSpec spec;
  spec.drop_rate = 0.35;
  spec.duplicate_rate = 0.1;
  spec.corrupt_rate = 0.15;
  ipmi::FaultyTransport faulty(*slot.loopback, spec, 17);

  core::DcmConfig config;
  config.comms.backoff.max_attempts = 6;
  DataCenterManager dcm(config);
  bool added = false;
  for (int i = 0; i < 10 && !added; ++i) added = dcm.add_node("n", faulty);
  ASSERT_TRUE(added);
  for (int i = 0; i < 15; ++i) dcm.poll();
  ASSERT_NE(dcm.history("n"), nullptr);
  EXPECT_GT(dcm.history("n")->size(), 12u);  // retries hide ~50 % loss
  EXPECT_GT(dcm.node("n")->retries(), 0u);
  EXPECT_GT(dcm.node("n")->stale_rejections(), 0u);
  EXPECT_GT(dcm.node("n")->backoff_ms_total(), 0.0);
}

}  // namespace
}  // namespace pcap
