// Extended-tier fleet sweeps (ctest -L extended): a 10k-node smoke run of
// the budget tree and a fault-rate chaos sweep. Heavier than the tier-1
// suite by design — CI runs them in the dedicated extended step, not in
// the fast loop or the sanitizer matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "fleet/budget.hpp"
#include "fleet/datacenter.hpp"
#include "fleet/tenant.hpp"
#include "ipmi/transport.hpp"

namespace fleet = pcap::fleet;
namespace ipmi = pcap::ipmi;

namespace {

TEST(FleetExtended, TenThousandNodeSmoke) {
  // 100 racks x 100 nodes, budget control plane only (no tenants): a few
  // ticks must hold the conservation invariant and stay responsive.
  fleet::FleetConfig config;
  config.rack_nodes.assign(100, 100);
  config.seed = 11;
  config.cap_grid_w = 16.0;
  config.schedule = fleet::BudgetSchedule(10000 * 150.0);
  config.schedule.add_phase(3 * config.tick_s, 10000 * 120.0);

  fleet::DatacenterManager dc(config);
  ASSERT_EQ(dc.node_count(), 10000u);
  for (int tick = 0; tick < 8; ++tick) dc.step();
  const fleet::FleetResult result = dc.finish();
  EXPECT_EQ(result.dc_over_enforced_ticks, 0u);
  EXPECT_EQ(result.rack_over_enforced_ticks, 0u);
  EXPECT_EQ(result.actual_over_enforced_ticks, 0u);
  ASSERT_EQ(result.dc_ticks.size(), 8u);
  // The shrink landed: committed follows the schedule down.
  EXPECT_LE(result.dc_ticks.back().committed_w,
            result.dc_ticks.back().target_w + 1e-3);
}

TEST(FleetExtended, ChaosSweepHoldsInvariant) {
  // Sweep fault severity on both hops; the conservation counters must be
  // zero at every point, and every job must still finish.
  for (const double drop : {0.0, 0.05, 0.15}) {
    fleet::FleetConfig config;
    config.rack_nodes = {4, 3, 5};
    config.seed = 23 + static_cast<std::uint64_t>(drop * 100);
    config.schedule = fleet::BudgetSchedule(12 * 160.0);
    config.schedule.add_phase(2e-3, 12 * 124.0);
    config.schedule.add_phase(5e-3, 12 * 160.0);
    if (drop > 0.0) {
      ipmi::FaultSpec faults;
      faults.drop_rate = drop;
      faults.duplicate_rate = drop / 2;
      faults.corrupt_rate = drop / 2;
      config.node_faults = faults;
      config.rack_faults = faults;
    }
    fleet::TenantSpec tenant;
    tenant.name = "sweep";
    tenant.arrivals.job_count = 12;
    tenant.arrivals.min_chunks = 3;
    tenant.arrivals.max_chunks = 6;
    tenant.arrivals.class_weights = {1.0, 1.0, 0.5, 0.0};
    tenant.arrivals.seed = 5;
    config.tenants.push_back(tenant);

    fleet::DatacenterManager dc(config);
    const fleet::FleetResult result = dc.run();
    EXPECT_EQ(result.dc_over_enforced_ticks, 0u) << "drop " << drop;
    EXPECT_EQ(result.rack_over_enforced_ticks, 0u) << "drop " << drop;
    EXPECT_EQ(result.actual_over_enforced_ticks, 0u) << "drop " << drop;
    for (const auto& record : result.jobs) {
      EXPECT_TRUE(record.done()) << "drop " << drop;
    }
    if (drop > 0.0) EXPECT_GT(result.mgmt_retries, 0u) << "drop " << drop;
  }
}

}  // namespace
