// Tests for the stereo-matching application: wedding-cake scene synthesis,
// cost-volume correctness, and the simulated-annealing matcher's convergence
// and accuracy against ground truth.
#include <gtest/gtest.h>

#include <set>

#include "apps/machine.hpp"
#include "apps/stereo/annealing.hpp"
#include "apps/stereo/cost_volume.hpp"
#include "apps/stereo/scene.hpp"
#include "apps/stereo/workload.hpp"
#include "sim/node.hpp"

namespace pcap::apps::stereo {
namespace {

StereoSceneConfig small_scene() {
  StereoSceneConfig c;
  c.width = 96;
  c.height = 64;
  c.max_disparity = 12;
  c.layer_disparity_step = 3;
  return c;
}

TEST(Scene, WeddingCakeHasFourDisparityLevels) {
  const StereoPair pair = make_wedding_cake(small_scene());
  std::set<std::uint8_t> levels(pair.truth.begin(), pair.truth.end());
  EXPECT_EQ(levels.size(), 4u);  // background + 3 layers
  EXPECT_EQ(*levels.begin(), 2u);  // background disparity
  for (auto d : levels) EXPECT_LT(d, pair.max_disparity);
}

TEST(Scene, LayersAreNested) {
  const StereoSceneConfig config = small_scene();
  const StereoPair pair = make_wedding_cake(config);
  // The centre pixel carries the top (largest) disparity; the corner the
  // background.
  const auto center =
      pair.truth[static_cast<std::size_t>(config.height / 2) * config.width +
                 config.width / 2];
  EXPECT_EQ(center, 2 + 3 * config.layer_disparity_step);
  EXPECT_EQ(pair.truth[0], config.background_disparity);
}

TEST(Scene, RightImageIsWarpOfLeft) {
  const StereoPair pair = make_wedding_cake(small_scene());
  // For non-occluded pixels, right(x - d, y) == left(x, y). Check a sample
  // row in the background (no occlusion there away from layer edges).
  int matches = 0, checked = 0;
  const int y = 2;  // background row
  for (int x = 40; x < 90; ++x) {
    const std::size_t i = static_cast<std::size_t>(y) * pair.width + x;
    const int d = pair.truth[i];
    if (x - d < 0) continue;
    ++checked;
    const std::size_t j = static_cast<std::size_t>(y) * pair.width + (x - d);
    if (pair.right[j] == pair.left[i]) ++matches;
  }
  ASSERT_GT(checked, 0);
  EXPECT_GE(matches, checked * 9 / 10);
}

TEST(Scene, DeterministicForSeed) {
  const StereoPair a = make_wedding_cake(small_scene());
  const StereoPair b = make_wedding_cake(small_scene());
  EXPECT_EQ(a.left, b.left);
  EXPECT_EQ(a.truth, b.truth);
}

class CostVolumeTest : public ::testing::Test {
 protected:
  CostVolumeTest() : pair_(make_wedding_cake(small_scene())) {
    HostMachine m;
    vol_ = build_cost_volume(m, pair_, 5, 0, 0, 0);
  }
  StereoPair pair_;
  CostVolume vol_;
};

TEST_F(CostVolumeTest, DimensionsAndLayout) {
  EXPECT_EQ(vol_.width, pair_.width);
  EXPECT_EQ(vol_.height, pair_.height);
  EXPECT_EQ(vol_.disparities, pair_.max_disparity);
  EXPECT_EQ(vol_.cost.size(),
            pair_.pixels() * static_cast<std::size_t>(pair_.max_disparity));
  // Pixel-major: all disparities of one pixel are contiguous.
  EXPECT_EQ(vol_.index(3, 0, 0) + 1, vol_.index(3, 0, 1));
}

TEST_F(CostVolumeTest, TruthDisparityIsCheapest) {
  // For most interior non-occluded pixels, the matching cost at the true
  // disparity should be the (near-)minimum across the search range.
  int wins = 0, checked = 0;
  for (int y = 8; y < vol_.height - 8; y += 3) {
    for (int x = 20; x < vol_.width - 8; x += 3) {
      const std::size_t i = static_cast<std::size_t>(y) * vol_.width + x;
      const int truth = pair_.truth[i];
      std::uint16_t best = 65535;
      int best_d = -1;
      for (int d = 0; d < vol_.disparities; ++d) {
        if (vol_.at(x, y, d) < best) {
          best = vol_.at(x, y, d);
          best_d = d;
        }
      }
      ++checked;
      if (std::abs(best_d - truth) <= 1) ++wins;
    }
  }
  ASSERT_GT(checked, 100);
  EXPECT_GT(static_cast<double>(wins) / checked, 0.75);
}

TEST_F(CostVolumeTest, OutOfViewDisparityPenalised) {
  // x < d means the right-image pixel is out of view: large cost.
  EXPECT_GT(vol_.at(1, 10, 8), vol_.at(40, 10, pair_.truth[static_cast<std::size_t>(10) * vol_.width + 40]));
}

TEST(Annealing, WtaInitIsReasonable) {
  const StereoPair pair = make_wedding_cake(small_scene());
  HostMachine m;
  const CostVolume vol = build_cost_volume(m, pair, 5, 0, 0, 0);
  const auto wta = wta_init(m, vol, 0);
  EXPECT_GT(disparity_accuracy(wta, pair.truth, 1), 0.6);
}

class AnnealTest : public ::testing::Test {
 protected:
  AnnealTest() : pair_(make_wedding_cake(small_scene())) {
    HostMachine m;
    vol_ = build_cost_volume(m, pair_, 5, 0, 0, 0);
    result_ = anneal_disparity(m, vol_, AnnealParams::quick(), 0, 0);
  }
  StereoPair pair_;
  CostVolume vol_;
  AnnealResult result_;
};

TEST_F(AnnealTest, EnergyDecreasesOverall) {
  ASSERT_GE(result_.energy_trace.size(), 2u);
  EXPECT_LT(result_.energy_trace.back(), result_.energy_trace.front());
  EXPECT_DOUBLE_EQ(result_.final_energy, result_.energy_trace.back());
}

TEST_F(AnnealTest, FinalEnergyBeatsWta) {
  HostMachine m;
  const auto wta = wta_init(m, vol_, 0);
  const double wta_energy =
      disparity_energy(vol_, wta, AnnealParams::quick().lambda);
  EXPECT_LT(result_.final_energy, wta_energy);
}

TEST_F(AnnealTest, RecoversWeddingCake) {
  const double accuracy = disparity_accuracy(result_.disparity, pair_.truth, 1);
  EXPECT_GT(accuracy, 0.80);
}

TEST_F(AnnealTest, ProposalsAndAcceptancesCounted) {
  EXPECT_GT(result_.proposals, 0u);
  EXPECT_GT(result_.accepted, 0u);
  EXPECT_LE(result_.accepted, result_.proposals);
}

TEST(Annealing, DeterministicForSeed) {
  const StereoPair pair = make_wedding_cake(small_scene());
  HostMachine m;
  const CostVolume vol = build_cost_volume(m, pair, 5, 0, 0, 0);
  const AnnealResult a = anneal_disparity(m, vol, AnnealParams::quick(), 0, 0);
  const AnnealResult b = anneal_disparity(m, vol, AnnealParams::quick(), 0, 0);
  EXPECT_EQ(a.disparity, b.disparity);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Annealing, AccuracyHelper) {
  const std::vector<std::uint8_t> truth = {1, 2, 3, 4};
  const std::vector<std::uint8_t> close = {1, 3, 3, 6};
  EXPECT_DOUBLE_EQ(disparity_accuracy(close, truth, 1), 0.75);
  EXPECT_DOUBLE_EQ(disparity_accuracy(close, truth, 2), 1.0);
  EXPECT_EQ(disparity_accuracy({}, truth, 1), 0.0);
}

TEST(StereoWorkloadTest, SimulatedRunMatchesHostResult) {
  const StereoParams params = StereoParams::quick();
  StereoWorkload workload(params);
  sim::Node node(sim::MachineConfig::romley());
  node.run(workload);

  HostMachine m;
  const StereoPair pair = make_wedding_cake(params.scene);
  const CostVolume vol = build_cost_volume(m, pair, params.window, 0, 0, 0);
  const AnnealResult host = anneal_disparity(m, vol, params.anneal, 0, 0);
  EXPECT_EQ(workload.last_result().disparity, host.disparity);
}

TEST(StereoWorkloadTest, PaperVolumeIsL3ResidentButBeyondL2) {
  const StereoParams p = StereoParams::paper();
  const StereoPair pair = make_wedding_cake(p.scene);
  HostMachine m;
  const std::uint64_t volume_bytes =
      pair.pixels() * static_cast<std::uint64_t>(pair.max_disparity) * 2;
  EXPECT_GT(volume_bytes, 2ull * 1024 * 1024);    // far beyond L2
  EXPECT_LT(volume_bytes, 20ull * 1024 * 1024);   // resident in the L3
  EXPECT_GT(volume_bytes, 4ull * 1024 * 1024);    // NOT resident when gated
}

}  // namespace
}  // namespace pcap::apps::stereo
