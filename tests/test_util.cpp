// Unit tests for the util module: units, RNG, statistics, CSV, tables,
// charts, logging, thread pool.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace pcap::util {
namespace {

TEST(Units, CyclePeriodRoundTrip) {
  EXPECT_EQ(cycle_period(1 * kGigaHertz), 1000u);
  EXPECT_EQ(cycle_period(2 * kGigaHertz), 500u);
  // 2.701 GHz -> 370.23.. ps, rounded to 370.
  EXPECT_EQ(cycle_period(2701 * kMegaHertz), 370u);
}

TEST(Units, CyclesIn) {
  EXPECT_EQ(cycles_in(seconds(1.0), 2701 * kMegaHertz), 2701000000u);
  EXPECT_EQ(cycles_in(milliseconds(1.0), 1200 * kMegaHertz), 1200000u);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_seconds(seconds(2.5)), 2.5);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(60.0)), 60.0);
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(89.0)), "0:01:29.000");
  EXPECT_EQ(format_duration(seconds(3600.0 + 61.5)), "1:01:01.500");
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(64), "64B");
  EXPECT_EQ(format_bytes(32 * 1024), "32K");
  EXPECT_EQ(format_bytes(20 * 1024 * 1024), "20M");
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a() == b() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BelowBound) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, ForkIndependent) {
  Rng parent(3);
  Rng child = parent.fork();
  EXPECT_NE(parent(), child());
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(Stats, MergeMatchesCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.37 - 3.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs{5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, PercentDiffMatchesPaperConvention) {
  EXPECT_NEAR(percent_diff(124.0, 100.0), 24.0, 1e-12);
  EXPECT_NEAR(percent_diff(80.0, 100.0), -20.0, 1e-12);
  EXPECT_DOUBLE_EQ(percent_diff(5.0, 0.0), 0.0);
}

TEST(Stats, Geomean) {
  const std::vector<double> xs{1.0, 4.0, 16.0};
  EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Csv, QuotesAndRows) {
  CsvWriter csv;
  csv.row({"a", "b,c", "d\"e"});
  csv.field(1.5).field(std::uint64_t{7});
  csv.end_row();
  EXPECT_EQ(csv.str(), "a,\"b,c\",\"d\"\"e\"\n1.5,7\n");
}

TEST(Csv, ParseRoundTripsWriter) {
  CsvWriter csv;
  csv.row({"name", "watts", "note"});
  csv.field("stereo").field(152.1).field(std::string_view("a,\"b\""));
  csv.end_row();
  const CsvTable table = parse_csv(csv.str());
  ASSERT_EQ(table.header.size(), 3u);
  EXPECT_EQ(table.header[1], "watts");
  ASSERT_EQ(table.rows.size(), 1u);
  EXPECT_EQ(table.rows[0][0], "stereo");
  EXPECT_EQ(table.rows[0][2], "a,\"b\"");
  EXPECT_EQ(table.column("watts"), 1);
  EXPECT_EQ(table.column("missing"), -1);
  EXPECT_DOUBLE_EQ(table.number(0, 1), 152.1);
  EXPECT_DOUBLE_EQ(table.number(0, 0), 0.0);   // non-numeric
  EXPECT_DOUBLE_EQ(table.number(5, 1), 0.0);   // out of range
}

TEST(Csv, ParseSkipsBlankLinesAndHandlesNoTrailingNewline) {
  const CsvTable table = parse_csv("a,b\n\n1,2\n3,4");
  EXPECT_EQ(table.rows.size(), 2u);
  EXPECT_EQ(table.rows[1][1], "4");
}

TEST(Csv, ReadCsvFromDisk) {
  const std::string path = ::testing::TempDir() + "/read_test.csv";
  {
    CsvWriter csv(path);
    csv.row({"x", "y"});
    csv.field(std::uint64_t{1}).field(std::uint64_t{2});
    csv.end_row();
  }
  const CsvTable table = read_csv(path);
  EXPECT_EQ(table.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(table.number(0, table.column("y")), 2.0);
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST(Table, RendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("|    22 |"), std::string::npos);  // right-aligned
}

TEST(Table, GroupedThousands) {
  EXPECT_EQ(TextTable::grouped(1664150370ull), "1,664,150,370");
  EXPECT_EQ(TextTable::grouped(999), "999");
  EXPECT_EQ(TextTable::grouped(0), "0");
}

TEST(Table, PercentRounding) {
  EXPECT_EQ(TextTable::pct(24.5), "25");
  EXPECT_EQ(TextTable::pct(-20.4), "-20");
}

TEST(Chart, RendersSeriesAndLegend) {
  AsciiChart chart({"a", "b", "c"}, 30, 8);
  chart.add_series({"one", {1.0, 2.0, 3.0}});
  chart.add_series({"two", {3.0, 2.0, 1.0}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("one"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(Chart, LogScaleHandlesDecades) {
  AsciiChart chart({"x1", "x2"}, 30, 8);
  chart.set_log_y(true);
  chart.add_series({"s", {1.0, 1000.0}});
  EXPECT_FALSE(chart.render().empty());
}

TEST(TimeSeriesChart, PlacesPointsByTimestamp) {
  TimeSeriesChart chart(40, 10);
  // Two series with different cadences share the axis: the step lands in
  // the right half of the grid even though the series lengths differ.
  chart.add_series({"power", {0.0, 0.1, 0.2, 0.3, 0.4}, {150, 150, 150, 125, 125}});
  chart.add_series({"cap", {0.0, 0.4}, {160, 120}});
  const std::string out = chart.render();
  EXPECT_NE(out.find("x: time (s)"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("power"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
  // The time axis is labelled with the data's endpoints.
  EXPECT_NE(out.find("0.4"), std::string::npos);
}

TEST(TimeSeriesChart, FixedYRangeClampsOutliers) {
  TimeSeriesChart chart(20, 6);
  chart.set_y_range(100.0, 160.0);
  chart.add_series({"w", {0.0, 1.0, 2.0}, {90.0, 130.0, 500.0}});
  const std::string out = chart.render();
  // Range labels come from the override, not the data.
  EXPECT_NE(out.find("160"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_EQ(out.find("500"), std::string::npos);
}

TEST(TimeSeriesChart, EmptyRendersNothing) {
  TimeSeriesChart chart(20, 6);
  EXPECT_TRUE(chart.render().empty());
  chart.add_series({"s", {}, {}});
  EXPECT_TRUE(chart.render().empty());
}

TEST(Json, ParsesNestedDocument) {
  const auto doc = parse_json(
      R"({"traceEvents":[{"name":"set-cap","ph":"i","ts":1.5,)"
      R"("args":{"watts":150}}],"displayTimeUnit":"ms","ok":true,"n":null})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  const JsonValue* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 1u);
  const JsonValue& e = events->as_array()[0];
  EXPECT_EQ(e.find("name")->as_string(), "set-cap");
  EXPECT_DOUBLE_EQ(e.find("ts")->as_number(), 1.5);
  EXPECT_DOUBLE_EQ(e.find("args")->find("watts")->as_number(), 150.0);
  EXPECT_TRUE(doc->find("ok")->as_bool());
  EXPECT_TRUE(doc->find("n")->is_null());
  EXPECT_EQ(doc->find("missing"), nullptr);
}

TEST(Json, ParsesEscapesAndNumbers) {
  const auto doc = parse_json(R"(["a\"b\n\tA", -1.25e2, 0, []])");
  ASSERT_TRUE(doc.has_value());
  const JsonArray& a = doc->as_array();
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0].as_string(), "a\"b\n\tA");
  EXPECT_DOUBLE_EQ(a[1].as_number(), -125.0);
  EXPECT_TRUE(a[3].is_array());
  EXPECT_TRUE(a[3].as_array().empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{").has_value());
  EXPECT_FALSE(parse_json(R"({"a":1,})").has_value());
  EXPECT_FALSE(parse_json("[1 2]").has_value());
  EXPECT_FALSE(parse_json(R"("unterminated)").has_value());
  EXPECT_FALSE(parse_json("true false").has_value());  // trailing garbage
  EXPECT_FALSE(parse_json("").has_value());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { ++count; });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  std::vector<std::atomic<int>> hits(50);
  parallel_for(50, 4, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForSerialFallback) {
  std::vector<std::size_t> order;
  parallel_for(5, 1, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace pcap::util
