// Unit tests for the DRAM timing model.
#include <gtest/gtest.h>

#include "mem/dram.hpp"
#include "util/units.hpp"

namespace pcap::mem {
namespace {

DramConfig config() {
  DramConfig c;
  c.banks = 4;
  c.row_bytes = 1024;
  c.row_hit_ns = 48.0;
  c.row_miss_ns = 66.0;
  c.gated_extra_ns = 60.0;
  return c;
}

TEST(Dram, RejectsBadConfig) {
  DramConfig c = config();
  c.banks = 0;
  EXPECT_THROW(Dram{c}, std::invalid_argument);
  c = config();
  c.row_bytes = 0;
  EXPECT_THROW(Dram{c}, std::invalid_argument);
}

TEST(Dram, FirstAccessIsRowMiss) {
  Dram dram(config());
  EXPECT_EQ(dram.access(0), util::nanoseconds(66.0));
  EXPECT_EQ(dram.stats().row_misses, 1u);
}

TEST(Dram, SameRowHits) {
  Dram dram(config());
  dram.access(0);
  EXPECT_EQ(dram.access(64), util::nanoseconds(48.0));
  EXPECT_EQ(dram.access(960), util::nanoseconds(48.0));
  EXPECT_EQ(dram.stats().row_hits, 2u);
}

TEST(Dram, ConsecutiveRowsInterleaveAcrossBanks) {
  Dram dram(config());
  // Rows 0..3 land in banks 0..3; touching them in turn leaves all four
  // rows open, so a second pass is all row hits.
  for (int r = 0; r < 4; ++r) dram.access(static_cast<std::uint64_t>(r) * 1024);
  dram.reset_stats();
  for (int r = 0; r < 4; ++r) dram.access(static_cast<std::uint64_t>(r) * 1024);
  EXPECT_EQ(dram.stats().row_hits, 4u);
  EXPECT_EQ(dram.stats().row_misses, 0u);
}

TEST(Dram, ConflictingRowsInSameBankMiss) {
  Dram dram(config());
  const std::uint64_t bank_stride = 4ull * 1024;  // same bank, next row
  dram.access(0);
  dram.reset_stats();
  dram.access(bank_stride);
  dram.access(0);
  EXPECT_EQ(dram.stats().row_misses, 2u);
}

TEST(Dram, GatedModeAddsExitPenalty) {
  Dram dram(config());
  dram.access(0);
  dram.set_gated(true);
  EXPECT_TRUE(dram.gated());
  EXPECT_EQ(dram.access(64), util::nanoseconds(48.0 + 60.0));
  dram.set_gated(false);
  EXPECT_EQ(dram.access(128), util::nanoseconds(48.0));
}

TEST(Dram, CloseRowsForcesMisses) {
  Dram dram(config());
  dram.access(0);
  dram.close_rows();
  dram.reset_stats();
  dram.access(64);
  EXPECT_EQ(dram.stats().row_misses, 1u);
}

TEST(Dram, StatsHitRate) {
  Dram dram(config());
  dram.access(0);
  dram.access(64);
  dram.access(128);
  EXPECT_NEAR(dram.stats().row_hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Dram, SequentialStreamIsMostlyRowHits) {
  Dram dram(config());
  for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) dram.access(addr);
  // One miss per new row (1024/64 = 16 accesses per row).
  EXPECT_EQ(dram.stats().row_misses, 64u);
  EXPECT_EQ(dram.stats().row_hits, 1024u - 64u);
}

}  // namespace
}  // namespace pcap::mem
