// Tests for trace capture/replay: recorded streams, serialisation, and the
// exact-equivalence property (a replayed trace reproduces the live run's
// counters bit-for-bit).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "apps/machine.hpp"
#include "apps/stereo/workload.hpp"
#include "apps/trace.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap::apps {
namespace {

TEST(Trace, RecordsOperationsInOrder) {
  Trace trace;
  HostMachine host;
  RecordingMachine<HostMachine> rec(host, trace);
  const Address a = rec.alloc(128);
  rec.set_code_footprint(2, 5);
  rec.load(a);
  rec.store(a + 64);
  rec.compute(10);
  rec.compute(7);  // coalesced with the previous compute

  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.ops[0].kind, TraceOp::Kind::kAlloc);
  EXPECT_EQ(trace.ops[0].value, 128u);
  EXPECT_EQ(trace.ops[1].kind, TraceOp::Kind::kCodeFootprint);
  EXPECT_EQ(trace.ops[1].aux, 5u);
  EXPECT_EQ(trace.ops[2].kind, TraceOp::Kind::kLoad);
  EXPECT_EQ(trace.ops[2].value, a);
  EXPECT_EQ(trace.ops[3].kind, TraceOp::Kind::kStore);
  EXPECT_EQ(trace.ops[4].kind, TraceOp::Kind::kCompute);
  EXPECT_EQ(trace.ops[4].value, 17u);
}

TEST(Trace, SaveLoadRoundTrip) {
  Trace trace;
  trace.ops = {{TraceOp::Kind::kAlloc, 4096, 0},
               {TraceOp::Kind::kCodeFootprint, 3, 7},
               {TraceOp::Kind::kLoad, 0xDEADBEEF, 0},
               {TraceOp::Kind::kCompute, 123456789, 0}};
  const std::string path = ::testing::TempDir() + "/roundtrip.trc";
  trace.save(path);
  const Trace loaded = Trace::load(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(loaded.ops[i].kind, trace.ops[i].kind);
    EXPECT_EQ(loaded.ops[i].value, trace.ops[i].value);
    EXPECT_EQ(loaded.ops[i].aux, trace.ops[i].aux);
  }
}

TEST(Trace, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage.trc";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a trace file at all";
  }
  EXPECT_THROW(Trace::load(path), std::runtime_error);
  EXPECT_THROW(Trace::load("/nonexistent/path.trc"), std::runtime_error);
}

TEST(Trace, ReplayedStereoMatchesLiveCounters) {
  // Record a live simulated run of the stereo workload...
  const auto params = stereo::StereoParams::quick();
  stereo::StereoWorkload live(params);

  Trace trace;
  class RecordingStereoRun final : public sim::Workload {
   public:
    RecordingStereoRun(stereo::StereoWorkload& app, Trace& trace)
        : app_(&app), trace_(&trace) {}
    std::string name() const override { return "recording"; }
    void run(sim::ExecutionContext& ctx) override {
      SimMachine inner(ctx);
      RecordingMachine<SimMachine> rec(inner, *trace_);
      const stereo::StereoPair& pair = app_->pair();
      const Address left = rec.alloc(pair.pixels() * 4);
      const Address right = rec.alloc(pair.pixels() * 4);
      const Address volume = rec.alloc(
          pair.pixels() * static_cast<std::uint64_t>(pair.max_disparity) * 2);
      const Address disp = rec.alloc(pair.pixels());
      const auto vol = stereo::build_cost_volume(rec, pair,
                                                 app_->params().window, left,
                                                 right, volume);
      stereo::anneal_disparity(rec, vol, app_->params().anneal, volume, disp);
    }
   private:
    stereo::StereoWorkload* app_;
    Trace* trace_;
  };

  // OS noise fires on housekeeping ticks; trace compute-coalescing shifts
  // tick boundaries slightly, so disable it for exact stream comparison.
  sim::Node live_node(sim::MachineConfig::romley(), 3);
  live_node.set_os_noise(false);
  RecordingStereoRun recording(live, trace);
  const sim::RunReport live_report = live_node.run(recording);
  ASSERT_GT(trace.size(), 1000u);

  // ...then replay the trace on a fresh identical node: every counter
  // matches exactly, timing/energy to within rounding of tick boundaries.
  sim::Node replay_node(sim::MachineConfig::romley(), 3);
  replay_node.set_os_noise(false);
  TraceReplayWorkload replay(trace);
  const sim::RunReport replay_report = replay_node.run(replay);

  EXPECT_EQ(replay_report.counters, live_report.counters);
  EXPECT_NEAR(static_cast<double>(replay_report.elapsed),
              static_cast<double>(live_report.elapsed),
              static_cast<double>(live_report.elapsed) * 1e-4);
  EXPECT_NEAR(replay_report.energy_j, live_report.energy_j,
              live_report.energy_j * 1e-3);
}

}  // namespace
}  // namespace pcap::apps
