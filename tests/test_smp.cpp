// Tests for the SMP node: deterministic interleaving, shared-L3 contention,
// package-level actuation, BMC capping of a multi-core node, and report
// accounting.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/bmc.hpp"
#include "sim/smp_node.hpp"

namespace pcap::sim {
namespace {

using pmu::Event;

SmpConfig two_cores() {
  SmpConfig config;
  config.cores = 2;
  return config;
}

TEST(SmpNode, ValidatesConfiguration) {
  SmpConfig bad = two_cores();
  bad.cores = 0;
  EXPECT_THROW(SmpNode{bad}, std::invalid_argument);
  bad.cores = 17;  // more than the platform's 16
  EXPECT_THROW(SmpNode{bad}, std::invalid_argument);
}

TEST(SmpNode, ValidatesRunArguments) {
  SmpNode node(two_cores());
  apps::ComputeBoundWorkload w(1000);
  std::vector<Workload*> none;
  EXPECT_THROW(node.run(none), std::invalid_argument);
  std::vector<Workload*> too_many{&w, &w, &w};
  EXPECT_THROW(node.run(too_many), std::invalid_argument);
  std::vector<Workload*> with_null{&w, nullptr};
  EXPECT_THROW(node.run(with_null), std::invalid_argument);
}

TEST(SmpNode, SingleWorkloadMatchesCommittedWork) {
  SmpNode node(two_cores());
  apps::ComputeBoundWorkload w(300000);
  std::vector<Workload*> ws{&w};
  const SmpRunReport r = node.run(ws);
  ASSERT_EQ(r.cores.size(), 1u);
  EXPECT_EQ(r.counter(Event::kTotIns), 300000u);
  EXPECT_EQ(r.cores[0].counter(Event::kTotIns), 300000u);
  EXPECT_GT(r.elapsed, 0u);
  EXPECT_GT(r.avg_power_w, 100.0);
}

TEST(SmpNode, ParallelComputeDoublesThroughput) {
  // Two independent compute workloads should take roughly the time of one
  // (they do not contend), so SMP runs deliver ~2x throughput.
  apps::ComputeBoundWorkload a(400000), b(400000);

  SmpNode solo_node(two_cores(), 7);
  std::vector<Workload*> solo{&a};
  const SmpRunReport solo_run = solo_node.run(solo);

  SmpNode pair_node(two_cores(), 7);
  std::vector<Workload*> both{&a, &b};
  const SmpRunReport pair_run = pair_node.run(both);

  EXPECT_EQ(pair_run.counter(Event::kTotIns), 800000u);
  EXPECT_NEAR(static_cast<double>(pair_run.elapsed),
              static_cast<double>(solo_run.elapsed),
              static_cast<double>(solo_run.elapsed) * 0.05);
}

TEST(SmpNode, MoreActiveCoresDrawMorePower) {
  apps::ComputeBoundWorkload a(400000), b(400000);
  SmpNode node(two_cores(), 7);
  std::vector<Workload*> solo{&a};
  const SmpRunReport one = node.run(solo);
  std::vector<Workload*> both{&a, &b};
  const SmpRunReport two = node.run(both);
  EXPECT_GT(two.avg_power_w, one.avg_power_w + 12.0);
}

TEST(SmpNode, DeterministicForSeed) {
  auto run_once = [] {
    SmpNode node(two_cores(), 11);
    apps::PhasedWorkload a;
    apps::MemoryBoundWorkload b(8 << 20, 120000);
    std::vector<Workload*> ws{&a, &b};
    return node.run(ws);
  };
  const SmpRunReport x = run_once();
  const SmpRunReport y = run_once();
  EXPECT_EQ(x.elapsed, y.elapsed);
  EXPECT_EQ(x.counters, y.counters);
  ASSERT_EQ(x.cores.size(), y.cores.size());
  for (std::size_t i = 0; i < x.cores.size(); ++i) {
    EXPECT_EQ(x.cores[i].elapsed, y.cores[i].elapsed);
    EXPECT_EQ(x.cores[i].counters, y.cores[i].counters);
  }
}

TEST(SmpNode, SharedL3ContentionRaisesMisses) {
  // One workload streaming over 12 MB fits the 20 MB L3 alone; two of them
  // (24 MB combined) cannot both stay resident, so co-running them must
  // increase total L3 misses beyond 2x the solo count.
  const std::uint64_t kSet = 12ull << 20;
  const std::uint64_t kTouches = 600000;

  SmpNode solo_node(two_cores(), 5);
  apps::MemoryBoundWorkload solo_w(kSet, kTouches);
  std::vector<Workload*> solo{&solo_w};
  const SmpRunReport solo_run = solo_node.run(solo);

  SmpNode pair_node(two_cores(), 5);
  apps::MemoryBoundWorkload wa(kSet, kTouches), wb(kSet, kTouches);
  std::vector<Workload*> both{&wa, &wb};
  const SmpRunReport pair_run = pair_node.run(both);

  EXPECT_GT(pair_run.counter(Event::kL3Tcm),
            2 * solo_run.counter(Event::kL3Tcm) + 100000);
  // And the co-run is slower than the solo run (contention, not just
  // duplication).
  EXPECT_GT(pair_run.elapsed, solo_run.elapsed * 1.2);
}

TEST(SmpNode, PackageActuationAppliesToAllCores) {
  SmpNode node(two_cores());
  PlatformControl& control = node;
  control.set_pstate(15);
  control.set_duty(0.5);
  control.set_itlb_entries(6);
  control.set_l3_ways(4);
  EXPECT_EQ(control.pstate(), 15u);
  EXPECT_EQ(control.frequency(), 1200 * util::kMegaHertz);
  EXPECT_DOUBLE_EQ(control.duty(), 0.5);
  EXPECT_EQ(control.itlb_entries(), 6u);
  EXPECT_EQ(control.l3_ways(), 4u);
  EXPECT_EQ(node.shared_l3().active_ways(), 4u);
}

TEST(SmpNode, SlowerPStateSlowsBothCores) {
  apps::ComputeBoundWorkload a(300000), b(300000);
  SmpNode node(two_cores(), 3);
  std::vector<Workload*> ws{&a, &b};
  node.run(ws);  // warm the code footprints
  const SmpRunReport fast = node.run(ws);
  node.set_pstate(15);
  const SmpRunReport slow = node.run(ws);
  EXPECT_NEAR(static_cast<double>(slow.elapsed) /
                  static_cast<double>(fast.elapsed),
              2701.0 / 1200.0, 0.2);
}

TEST(SmpNode, BmcCapsTheWholePackage) {
  SmpConfig config;
  config.cores = 4;
  SmpNode node(config, 9);
  core::Bmc bmc(node);
  node.set_control_hook(
      [&bmc](PlatformControl&) { bmc.on_control_tick(); });

  apps::ComputeBoundWorkload w1(4000000), w2(4000000), w3(4000000),
      w4(4000000);
  std::vector<Workload*> ws{&w1, &w2, &w3, &w4};
  const SmpRunReport uncapped = node.run(ws);
  EXPECT_GT(uncapped.avg_power_w, 170.0);  // four hot cores

  bmc.set_cap(160.0);
  const SmpRunReport capped = node.run(ws);
  EXPECT_LE(capped.avg_power_w, 163.0);
  EXPECT_GT(capped.elapsed, uncapped.elapsed * 3 / 2);  // deep throttling
  bmc.set_cap(std::nullopt);
}

TEST(SmpNode, PerCoreReportsSeparateWorkloads) {
  SmpNode node(two_cores(), 13);
  apps::ComputeBoundWorkload cpu(500000);
  apps::MemoryBoundWorkload mem(16ull << 20, 150000);
  std::vector<Workload*> ws{&cpu, &mem};
  const SmpRunReport r = node.run(ws);
  ASSERT_EQ(r.cores.size(), 2u);
  EXPECT_EQ(r.cores[0].workload, "compute-bound");
  EXPECT_EQ(r.cores[1].workload, "memory-bound");
  EXPECT_EQ(r.cores[0].counter(Event::kL1Dca), 0u);
  EXPECT_GT(r.cores[1].counter(Event::kL1Dca), 100000u);
  // The aggregate equals the per-core sum.
  EXPECT_EQ(r.counter(Event::kTotIns), r.cores[0].counter(Event::kTotIns) +
                                           r.cores[1].counter(Event::kTotIns));
  // elapsed is the max of the two.
  EXPECT_EQ(r.elapsed, std::max(r.cores[0].elapsed, r.cores[1].elapsed));
}

// Property: the interleave quantum must not change what the cores compute,
// and the aggregate committed-instruction count is quantum-invariant; the
// timing may shift slightly (different interleavings over the shared L3)
// but stays within a tight band.
class SmpQuantum : public ::testing::TestWithParam<double> {};

TEST_P(SmpQuantum, CountsInvariantTimingStable) {
  SmpConfig config = two_cores();
  config.quantum = util::microseconds(GetParam());
  SmpNode node(config, 21);
  apps::MemoryBoundWorkload a(12ull << 20, 150000);
  apps::ComputeBoundWorkload b(500000);
  std::vector<Workload*> ws{&a, &b};
  const SmpRunReport r = node.run(ws);
  EXPECT_EQ(r.cores[1].counter(Event::kTotIns), 500000u);

  // Reference at the default 5 us quantum.
  SmpConfig ref_config = two_cores();
  SmpNode ref_node(ref_config, 21);
  const SmpRunReport ref = ref_node.run(ws);
  EXPECT_EQ(r.counter(Event::kTotIns), ref.counter(Event::kTotIns));
  EXPECT_NEAR(static_cast<double>(r.elapsed), static_cast<double>(ref.elapsed),
              static_cast<double>(ref.elapsed) * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Quanta, SmpQuantum,
                         ::testing::Values(1.0, 2.0, 10.0, 40.0));

TEST(SmpNode, FlushAllCachesColdStarts) {
  SmpNode node(two_cores(), 2);
  apps::MemoryBoundWorkload w(4ull << 20, 100000);
  std::vector<Workload*> ws{&w};
  const SmpRunReport cold = node.run(ws);
  const SmpRunReport warm = node.run(ws);
  node.flush_all_caches();
  const SmpRunReport recold = node.run(ws);
  EXPECT_LT(warm.counter(Event::kL3Tcm) * 2, cold.counter(Event::kL3Tcm));
  EXPECT_NEAR(static_cast<double>(recold.counter(Event::kL3Tcm)),
              static_cast<double>(cold.counter(Event::kL3Tcm)),
              static_cast<double>(cold.counter(Event::kL3Tcm)) * 0.05);
}

TEST(SmpNode, MeterSeesTheRun) {
  SmpNode node(two_cores());
  apps::ComputeBoundWorkload a(4000000), b(4000000);
  std::vector<Workload*> ws{&a, &b};
  const SmpRunReport r = node.run(ws);
  EXPECT_GT(node.meter().samples().size(), 3u);
  EXPECT_NEAR(node.meter().energy_joules(), r.energy_j, 1e-12);
  EXPECT_GE(r.peak_power_w, r.avg_power_w);
}

}  // namespace
}  // namespace pcap::sim
