// Unit and property tests for the BMC power-capping firmware: ladder
// construction, controller convergence, escalation order, dithering,
// throttling floor, telemetry and the IPMI server endpoint.
#include <gtest/gtest.h>

#include <optional>

#include "apps/synthetic.hpp"
#include "core/bmc.hpp"
#include "core/bmc_ipmi_server.hpp"
#include "core/capped_runner.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace pcap::core {
namespace {

sim::MachineConfig machine() { return sim::MachineConfig::romley(); }

apps::PhasedParams steady_params() {
  apps::PhasedParams p;
  p.phases = 6;
  p.mean_phase_uops = 400000;
  return p;
}

TEST(BmcLadder, StartsWithAllPStates) {
  sim::Node node(machine());
  Bmc bmc(node);
  const auto& ladder = bmc.ladder();
  ASSERT_GE(ladder.size(), 16u);
  for (std::uint32_t p = 0; p < 16; ++p) {
    EXPECT_EQ(ladder[p].pstate, p);
    EXPECT_DOUBLE_EQ(ladder[p].duty, 1.0);
    EXPECT_EQ(ladder[p].l3_ways, 20u);
    EXPECT_FALSE(ladder[p].dram_gated);
  }
}

TEST(BmcLadder, EscalatesDvfsThenMemoryThenCachesThenDuty) {
  sim::Node node(machine());
  Bmc bmc(node);
  const auto& ladder = bmc.ladder();
  ASSERT_GT(ladder.size(), 21u);
  // Rung 16: DRAM gating before any cache gating.
  EXPECT_TRUE(ladder[16].dram_gated);
  EXPECT_EQ(ladder[16].l3_ways, 20u);
  // Then L3 shrinks monotonically, then duty drops, never re-grows.
  std::uint32_t last_l3 = 20;
  double last_duty = 1.0;
  for (std::size_t i = 16; i < ladder.size(); ++i) {
    EXPECT_LE(ladder[i].l3_ways, last_l3);
    EXPECT_LE(ladder[i].duty, last_duty + 1e-12);
    last_l3 = ladder[i].l3_ways;
    last_duty = ladder[i].duty;
  }
  // Deepest rung: minimum duty.
  EXPECT_NEAR(ladder.back().duty, node.min_duty(), 1e-9);
}

TEST(BmcLadder, DvfsOnlyConfigTruncates) {
  sim::Node node(machine());
  BmcConfig config;
  config.dvfs_only = true;
  Bmc bmc(node, config);
  EXPECT_EQ(bmc.ladder().size(), 16u);
}

TEST(Bmc, UncappedAppliesTopLevel) {
  sim::Node node(machine());
  Bmc bmc(node);
  EXPECT_FALSE(bmc.cap().has_value());
  EXPECT_EQ(node.pstate(), 0u);
  EXPECT_DOUBLE_EQ(node.duty(), 1.0);
}

TEST(Bmc, ReachableCapIsEnforced) {
  sim::Node node(machine());
  CappedRunner runner(node);
  apps::PhasedWorkload workload(steady_params());
  const sim::RunReport r = runner.run(workload, 140.0);
  EXPECT_LE(r.avg_power_w, 141.5);
  EXPECT_GT(r.avg_power_w, 130.0);  // not over-throttled
}

TEST(Bmc, UnreachableCapHitsFloorAndSaturates) {
  sim::Node node(machine());
  Bmc bmc(node);
  node.set_control_hook([&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  bmc.set_cap(110.0);  // below the throttling floor
  apps::PhasedWorkload workload(steady_params());
  const sim::RunReport r = node.run(workload);
  EXPECT_GT(r.avg_power_w, 115.0);  // cap missed
  // Saturated at the deepest rung.
  EXPECT_EQ(bmc.max_level_reached(),
            static_cast<std::uint32_t>(bmc.ladder().size() - 1));
  EXPECT_EQ(node.pstate(), 15u);
  EXPECT_NEAR(node.duty(), node.min_duty(), 1e-9);
}

TEST(Bmc, CapAboveDemandLeavesPlatformAlone) {
  sim::Node node(machine());
  CappedRunner runner(node);
  apps::PhasedWorkload workload(steady_params());
  const sim::RunReport base = runner.run(workload, std::nullopt);
  const sim::RunReport capped = runner.run(workload, 170.0);
  EXPECT_NEAR(util::to_seconds(capped.elapsed), util::to_seconds(base.elapsed),
              util::to_seconds(base.elapsed) * 0.02);
}

TEST(Bmc, ReleasingCapRestoresOperatingPoint) {
  sim::Node node(machine());
  Bmc bmc(node);
  node.set_control_hook([&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  bmc.set_cap(120.0);
  apps::PhasedWorkload workload(steady_params());
  node.run(workload);
  EXPECT_GT(node.pstate(), 0u);
  bmc.set_cap(std::nullopt);
  EXPECT_EQ(node.pstate(), 0u);
  EXPECT_DOUBLE_EQ(node.duty(), 1.0);
  EXPECT_EQ(node.l3_ways(), 20u);
  EXPECT_EQ(node.l2_ways(), 8u);
  EXPECT_FALSE(node.dram_gated());
}

TEST(Bmc, DitheringYieldsBetweenPStateFrequencies) {
  sim::Node node(machine());
  CappedRunner runner(node);
  apps::PhasedWorkload workload(steady_params());
  const sim::RunReport r = runner.run(workload, 142.0);
  const auto mhz = r.avg_frequency / util::kMegaHertz;
  EXPECT_LT(mhz, 2701u);
  EXPECT_GT(mhz, 1200u);
}

TEST(Bmc, PowerReadingTracksMinMaxAvg) {
  sim::Node node(machine());
  Bmc bmc(node);
  node.set_control_hook([&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  bmc.set_cap(145.0);
  apps::PhasedWorkload workload(steady_params());
  node.run(workload);
  const ipmi::PowerReading reading = bmc.power_reading();
  EXPECT_GT(reading.maximum_w, reading.minimum_w);
  EXPECT_GE(reading.maximum_w, reading.average_w);
  EXPECT_LE(reading.minimum_w, reading.average_w);
  EXPECT_GT(bmc.control_ticks(), 10u);
}

TEST(Bmc, ThrottleStatusReflectsPlatform) {
  sim::Node node(machine());
  Bmc bmc(node);
  node.set_pstate(15);
  node.set_duty(0.25);
  node.set_l3_ways(8);
  node.set_dram_gated(true);
  const ipmi::ThrottleStatus s = bmc.throttle_status();
  EXPECT_EQ(s.pstate, 15);
  EXPECT_EQ(s.duty_eighths, 2);
  EXPECT_EQ(s.l3_ways, 8);
  EXPECT_TRUE(s.dram_gated);
  EXPECT_FALSE(s.capping_active);
}

// Property: for every reachable cap on the grid, the controller regulates
// within tolerance; for caps below the floor it saturates rather than
// oscillating.
class BmcCapGrid : public ::testing::TestWithParam<double> {};

TEST_P(BmcCapGrid, RegulatesOrSaturates) {
  const double cap = GetParam();
  sim::Node node(machine());
  CappedRunner runner(node);
  apps::PhasedWorkload workload(steady_params());
  const sim::RunReport r = runner.run(workload, cap);
  const double floor = sim::CalibrationTargets{}.floor_below_w;
  if (cap >= floor) {
    EXPECT_LE(r.avg_power_w, cap + 2.0) << "cap " << cap;
  } else {
    EXPECT_LE(r.avg_power_w, floor) << "floor exceeded at cap " << cap;
  }
  // The controller must never leave the actuators out of range.
  EXPECT_LE(node.pstate(), 15u);
  EXPECT_GE(node.duty(), node.min_duty() - 1e-9);
  EXPECT_GE(node.l3_ways(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Grid, BmcCapGrid,
                         ::testing::Values(160.0, 150.0, 145.0, 140.0, 135.0,
                                           130.0, 125.0, 120.0, 115.0));

// --- IPMI server endpoint ---

class BmcServerTest : public ::testing::Test {
 protected:
  BmcServerTest() : node_(machine()), bmc_(node_), server_(bmc_) {}
  sim::Node node_;
  Bmc bmc_;
  BmcIpmiServer server_;
};

TEST_F(BmcServerTest, DeviceIdProbe) {
  const auto response = server_.handle(ipmi::make_get_device_id());
  EXPECT_TRUE(ipmi::decode_device_id(response).has_value());
}

TEST_F(BmcServerTest, SetAndGetPowerLimit) {
  EXPECT_TRUE(server_.handle(ipmi::make_set_power_limit({true, 130.0})).ok());
  ASSERT_TRUE(bmc_.cap().has_value());
  EXPECT_DOUBLE_EQ(*bmc_.cap(), 130.0);
  const auto limit =
      ipmi::decode_power_limit(server_.handle(ipmi::make_get_power_limit()));
  ASSERT_TRUE(limit.has_value());
  EXPECT_TRUE(limit->enabled);
  EXPECT_DOUBLE_EQ(limit->limit_w, 130.0);

  EXPECT_TRUE(server_.handle(ipmi::make_set_power_limit({false, 0.0})).ok());
  EXPECT_FALSE(bmc_.cap().has_value());
}

TEST_F(BmcServerTest, RejectsOutOfRangeCap) {
  const auto response = server_.handle(ipmi::make_set_power_limit({true, 50.0}));
  EXPECT_EQ(response.code, ipmi::CompletionCode::kOutOfRange);
  EXPECT_FALSE(bmc_.cap().has_value());
}

TEST_F(BmcServerTest, RejectsMalformedPayload) {
  ipmi::Request request = ipmi::make_set_power_limit({true, 130.0});
  request.payload.pop_back();
  EXPECT_EQ(server_.handle(request).code,
            ipmi::CompletionCode::kRequestDataInvalid);
}

TEST_F(BmcServerTest, RejectsUnknownCommand) {
  ipmi::Request request;
  request.command = 0x77;
  EXPECT_EQ(server_.handle(request).code,
            ipmi::CompletionCode::kInvalidCommand);
}

TEST_F(BmcServerTest, FrameLevelBadInputGetsErrorFrame) {
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  const auto reply = server_.handle_frame(garbage);
  ipmi::Response response;
  ASSERT_TRUE(ipmi::decode_response(reply, response));
  EXPECT_EQ(response.code, ipmi::CompletionCode::kRequestDataInvalid);
}

// Robustness: arbitrary byte garbage on the management network must never
// crash the endpoint; every frame gets either a decoded handling or a
// well-formed error response.
class BmcServerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BmcServerFuzz, RandomFramesAlwaysAnswered) {
  sim::Node node(machine());
  Bmc bmc(node);
  BmcIpmiServer server(bmc);
  util::Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> frame(rng.below(24));
    for (auto& b : frame) b = static_cast<std::uint8_t>(rng.below(256));
    const auto reply = server.handle_frame(frame);
    ipmi::Response response;
    ASSERT_TRUE(ipmi::decode_response(reply, response));
  }
  // The platform must still be in a sane state afterwards.
  EXPECT_LE(node.pstate(), 15u);
  EXPECT_GE(node.l3_ways(), 1u);
  if (bmc.cap()) {
    EXPECT_GE(*bmc.cap(), bmc.capabilities().min_cap_w);
    EXPECT_LE(*bmc.cap(), bmc.capabilities().max_cap_w);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BmcServerFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u));

TEST_F(BmcServerTest, PowerReadingAndCapabilitiesServed) {
  EXPECT_TRUE(ipmi::decode_power_reading(
                  server_.handle(ipmi::make_get_power_reading()))
                  .has_value());
  const auto caps = ipmi::decode_capabilities(
      server_.handle(ipmi::make_get_capabilities()));
  ASSERT_TRUE(caps.has_value());
  EXPECT_GT(caps->max_cap_w, caps->min_cap_w);
}

}  // namespace
}  // namespace pcap::core
