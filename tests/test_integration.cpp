// End-to-end integration tests: a reduced Table II grid must exhibit every
// qualitative finding of the paper (DESIGN.md §1). Runs both applications at
// small scale through the full stack: workload -> simulator -> BMC -> meter.
#include <gtest/gtest.h>

#include <memory>

#include "apps/sar/workload.hpp"
#include "apps/stereo/workload.hpp"
#include "harness/experiment.hpp"

namespace pcap {
namespace {

using harness::CellStats;
using harness::StudyResult;

// Scaled-down app instances that keep the cache-residency relationships:
// SIRE streams more than the (gated) L3; stereo's volume fits the full L3
// but not the gated one.
apps::sar::SireParams sire_params() {
  apps::sar::SireParams p;
  p.radar.apertures = 32;
  p.coarse_width = 160;
  p.coarse_height = 96;
  p.upsample_factor = 7;  // ~4.1 MB per full buffer
  p.rsm_iterations = 2;
  return p;
}

apps::stereo::StereoParams stereo_params() {
  apps::stereo::StereoParams p;
  p.scene.width = 256;
  p.scene.height = 192;
  p.scene.max_disparity = 20;  // volume ~1.9 MB
  p.anneal.sweeps = 4;
  return p;
}

sim::MachineConfig small_machine() {
  // Shrink L3 so the scaled working sets keep the paper's relationships:
  // L3 5 MB = 4096 sets x 20 ways (stereo volume 1.9 MB resident; gated to
  // 4 ways = 1 MB it is not; SIRE's 2 x 3 MB buffers always stream).
  sim::MachineConfig m = sim::MachineConfig::romley();
  m.hierarchy.l3.size_bytes = 4096ull * 20 * 64;
  return m;
}

harness::StudyConfig study_config() {
  harness::StudyConfig config;
  config.caps_w = {160.0, 150.0, 135.0, 125.0, 120.0};
  config.repetitions = 1;
  config.machine = small_machine();
  return config;
}

class PaperFindings : public ::testing::Test {
 protected:
  static const StudyResult& stereo() {
    static const StudyResult cached = harness::run_power_cap_study(
        "stereo",
        [] {
          return std::make_unique<apps::stereo::StereoWorkload>(stereo_params());
        },
        study_config());
    return cached;
  }
  static const StudyResult& sire() {
    static const StudyResult cached = harness::run_power_cap_study(
        "sire",
        [] {
          return std::make_unique<apps::sar::SireWorkload>(sire_params());
        },
        study_config());
    return cached;
  }
  static double ratio(const CellStats& cell, const CellStats& base,
                      pmu::Event e) {
    return cell.counter(e) / base.counter(e);
  }
};

TEST_F(PaperFindings, Finding1_TimeAndEnergyGrowAsCapDrops) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    double last_time = study->baseline.time_s * 0.97;
    double last_energy = study->baseline.energy_j * 0.95;
    for (const auto& cell : study->capped) {
      EXPECT_GE(cell.time_s, last_time * 0.97)
          << study->workload << " cap " << *cell.cap_w;
      EXPECT_GE(cell.energy_j, last_energy * 0.95);
      last_time = cell.time_s;
      last_energy = cell.energy_j;
    }
  }
}

TEST_F(PaperFindings, Finding2_GrowthModestThenExplodes) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    const double at150 = study->cell(150.0)->time_s / study->baseline.time_s;
    const double at120 = study->cell(120.0)->time_s / study->baseline.time_s;
    EXPECT_LT(at150, 1.30) << study->workload;  // paper: <= 9% at 150 W
    EXPECT_GT(at120, 8.0) << study->workload;   // paper: x26-x36 at 120 W
  }
}

TEST_F(PaperFindings, Finding3_FrequencyPinnedAtMinForLowCaps) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    EXPECT_EQ(study->cell(120.0)->avg_frequency / util::kMegaHertz, 1200u)
        << study->workload;
    EXPECT_EQ(study->cell(125.0)->avg_frequency / util::kMegaHertz, 1200u);
    // ...yet power keeps falling below the min-P-state draw: non-DVFS
    // mechanisms are at work.
    EXPECT_LT(study->cell(120.0)->avg_power_w,
              study->cell(135.0)->avg_power_w);
  }
}

TEST_F(PaperFindings, Finding4_MidCapsDitherBetweenPStates) {
  bool saw_between = false;
  for (const StudyResult* study : {&stereo(), &sire()}) {
    for (double cap : {150.0, 135.0}) {
      const auto mhz = study->cell(cap)->avg_frequency / util::kMegaHertz;
      if (mhz < 2701 && mhz > 1200 && mhz % 100 != 0) saw_between = true;
    }
  }
  EXPECT_TRUE(saw_between);
}

TEST_F(PaperFindings, Finding5_CacheAsymmetryBetweenApplications) {
  // Stereo (cache-resident volume) suffers an L3 miss explosion at the
  // deepest caps; SIRE (streaming) does not.
  const double stereo_l3 =
      ratio(*stereo().cell(120.0), stereo().baseline, pmu::Event::kL3Tcm);
  const double sire_l3 =
      ratio(*sire().cell(120.0), sire().baseline, pmu::Event::kL3Tcm);
  EXPECT_GT(stereo_l3, 2.0);
  EXPECT_LT(sire_l3, 1.6);
  // Instruction-TLB misses explode for both.
  EXPECT_GT(ratio(*stereo().cell(120.0), stereo().baseline, pmu::Event::kTlbIm),
            8.0);
  EXPECT_GT(ratio(*sire().cell(120.0), sire().baseline, pmu::Event::kTlbIm),
            8.0);
  // Data-TLB misses stay comparatively flat (both thrash at baseline).
  EXPECT_LT(ratio(*stereo().cell(120.0), stereo().baseline, pmu::Event::kTlbDm),
            4.0);
}

TEST_F(PaperFindings, Finding6_CapMissedAtOneTwenty) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    EXPECT_GT(study->cell(120.0)->avg_power_w, 120.5) << study->workload;
    // Reachable caps are honoured.
    EXPECT_LE(study->cell(135.0)->avg_power_w, 136.5);
    EXPECT_LE(study->cell(150.0)->avg_power_w, 151.5);
  }
}

TEST_F(PaperFindings, Finding7_CommittedInstructionsIdentical) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    const double base_ins = study->baseline.counter(pmu::Event::kTotIns);
    for (const auto& cell : study->capped) {
      EXPECT_DOUBLE_EQ(cell.counter(pmu::Event::kTotIns), base_ins)
          << study->workload << " cap " << *cell.cap_w;
      // Executed instructions differ only slightly (speculation/OS noise).
      const double exec_gap =
          cell.counter(pmu::Event::kInsExec) /
              study->baseline.counter(pmu::Event::kInsExec) -
          1.0;
      EXPECT_LT(std::abs(exec_gap), 0.03);
    }
  }
}

TEST_F(PaperFindings, Finding8_EnergyMinimumNearBaselineCaps) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    const double e160 = study->cell(160.0)->energy_j;
    for (double cap : {135.0, 125.0, 120.0}) {
      EXPECT_GT(study->cell(cap)->energy_j, e160) << study->workload;
    }
    EXPECT_NEAR(e160, study->baseline.energy_j,
                study->baseline.energy_j * 0.05);
  }
}

}  // namespace
}  // namespace pcap
