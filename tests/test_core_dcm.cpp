// Tests for the Data Center Manager over the full management stack:
// DCM -> IPMI session/transport -> BMC server -> BMC -> node.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/bmc.hpp"
#include "core/bmc_ipmi_server.hpp"
#include "core/dcm.hpp"
#include "ipmi/transport.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap::core {
namespace {

struct Slot {
  std::unique_ptr<sim::Node> node;
  std::unique_ptr<Bmc> bmc;
  std::unique_ptr<BmcIpmiServer> server;
  std::unique_ptr<ipmi::LoopbackTransport> transport;

  explicit Slot(std::uint64_t seed) {
    node = std::make_unique<sim::Node>(sim::MachineConfig::romley(), seed);
    bmc = std::make_unique<Bmc>(*node);
    server = std::make_unique<BmcIpmiServer>(*bmc);
    node->set_control_hook(
        [b = bmc.get()](sim::PlatformControl&) { b->on_control_tick(); });
    transport = std::make_unique<ipmi::LoopbackTransport>(
        [s = server.get()](std::span<const std::uint8_t> frame) {
          return s->handle_frame(frame);
        });
  }

  void load(int phases = 4) {
    apps::PhasedParams p;
    p.phases = phases;
    apps::PhasedWorkload w(p);
    node->run(w);
  }
};

class DcmTest : public ::testing::Test {
 protected:
  DcmTest() {
    for (int i = 0; i < 3; ++i) {
      slots_.push_back(std::make_unique<Slot>(static_cast<std::uint64_t>(i + 1)));
      EXPECT_TRUE(
          dcm_.add_node("node-" + std::to_string(i), *slots_.back()->transport));
    }
  }
  std::vector<std::unique_ptr<Slot>> slots_;
  DataCenterManager dcm_;
};

TEST_F(DcmTest, DiscoveryAndNames) {
  EXPECT_EQ(dcm_.node_count(), 3u);
  EXPECT_EQ(dcm_.node_names(),
            (std::vector<std::string>{"node-0", "node-1", "node-2"}));
  EXPECT_NE(dcm_.node("node-1"), nullptr);
  EXPECT_EQ(dcm_.node("node-9"), nullptr);
}

TEST_F(DcmTest, RejectsDuplicateName) {
  EXPECT_FALSE(dcm_.add_node("node-0", *slots_[0]->transport));
  EXPECT_EQ(dcm_.node_count(), 3u);
}

TEST_F(DcmTest, RejectsDeadTransport) {
  ipmi::LoopbackTransport dead(
      [](std::span<const std::uint8_t>) { return std::vector<std::uint8_t>{}; });
  EXPECT_FALSE(dcm_.add_node("dead", dead));
}

TEST_F(DcmTest, NodeCapRoundTrips) {
  EXPECT_TRUE(dcm_.apply_node_cap("node-0", 135.0));
  ASSERT_TRUE(slots_[0]->bmc->cap().has_value());
  EXPECT_DOUBLE_EQ(*slots_[0]->bmc->cap(), 135.0);
  const auto limit = dcm_.node("node-0")->power_limit();
  ASSERT_TRUE(limit.has_value());
  EXPECT_TRUE(limit->enabled);
  EXPECT_FALSE(dcm_.apply_node_cap("missing", 135.0));
  EXPECT_TRUE(dcm_.apply_node_cap("node-0", std::nullopt));
  EXPECT_FALSE(slots_[0]->bmc->cap().has_value());
}

TEST_F(DcmTest, GroupCapRespectsBudgetAndFloors) {
  for (auto& s : slots_) s->load();
  dcm_.poll();
  const auto applied = dcm_.apply_group_cap(420.0);
  ASSERT_EQ(applied.size(), 3u);
  double total = 0.0;
  for (const auto& [name, cap] : applied) {
    EXPECT_GE(cap, 110.0);  // node floor
    total += cap;
  }
  EXPECT_LE(total, 420.0 + 1e-6);
  // Caps actually landed on the BMCs.
  for (auto& s : slots_) EXPECT_TRUE(s->bmc->cap().has_value());
}

TEST_F(DcmTest, GroupCapHonoursPriorities) {
  for (auto& s : slots_) s->load();
  dcm_.poll();
  EXPECT_FALSE(dcm_.set_node_priority("missing", 4));
  EXPECT_FALSE(dcm_.set_node_priority("node-0", 0));
  ASSERT_TRUE(dcm_.set_node_priority("node-0", 4));
  EXPECT_EQ(dcm_.node_priority("node-0"), 4);
  EXPECT_EQ(dcm_.node_priority("node-1"), 1);

  const auto applied = dcm_.apply_group_cap(420.0);
  ASSERT_EQ(applied.size(), 3u);
  double high = 0.0, low = 0.0;
  for (const auto& [name, cap] : applied) {
    if (name == "node-0") high = cap;
    if (name == "node-1") low = cap;
  }
  // The priority-4 node gets a distinctly larger share of the surplus
  // (all three nodes ran comparable workloads).
  EXPECT_GT(high, low + 15.0);
}

TEST_F(DcmTest, GroupCapBelowFloorsRefused) {
  const auto applied = dcm_.apply_group_cap(200.0);  // < 3 x 110 W
  EXPECT_TRUE(applied.empty());
}

TEST_F(DcmTest, ClearCapsUncapsEveryNode) {
  dcm_.apply_node_cap("node-0", 130.0);
  dcm_.apply_node_cap("node-1", 140.0);
  dcm_.clear_caps();
  for (auto& s : slots_) EXPECT_FALSE(s->bmc->cap().has_value());
}

TEST_F(DcmTest, PollBuildsHistory) {
  for (int i = 0; i < 5; ++i) dcm_.poll();
  const auto* history = dcm_.history("node-0");
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->size(), 5u);
  EXPECT_EQ(history->back().poll_seq, 5u);
  EXPECT_GT(dcm_.total_observed_power_w(), 3 * 90.0);
  EXPECT_EQ(dcm_.history("missing"), nullptr);
}

TEST_F(DcmTest, HistoryDepthBounded) {
  DcmConfig config;
  config.history_depth = 3;
  DataCenterManager dcm(config);
  dcm.add_node("n", *slots_[0]->transport);
  for (int i = 0; i < 10; ++i) dcm.poll();
  EXPECT_EQ(dcm.history("n")->size(), 3u);
}

TEST_F(DcmTest, AlertsOnThrottlingFloorViolation) {
  // Cap below the platform floor: the BMC saturates, power stays above the
  // cap, and after `violation_polls` consecutive over-cap polls the DCM
  // raises an alert naming the node.
  dcm_.apply_node_cap("node-0", 112.0);
  slots_[0]->load(6);
  for (int i = 0; i < 4; ++i) dcm_.poll();
  ASSERT_FALSE(dcm_.alerts().empty());
  EXPECT_EQ(dcm_.alerts().front().node, "node-0");
  EXPECT_NE(dcm_.alerts().front().message.find("cap missed"),
            std::string::npos);
}

TEST_F(DcmTest, NoAlertsWhenCapsAreMet) {
  dcm_.apply_node_cap("node-1", 150.0);
  slots_[1]->load();
  for (int i = 0; i < 4; ++i) dcm_.poll();
  EXPECT_TRUE(dcm_.alerts().empty());
}

TEST_F(DcmTest, ThrottleStatusVisibleOverIpmi) {
  dcm_.apply_node_cap("node-2", 120.0);
  slots_[2]->load(6);
  const auto status = dcm_.node("node-2")->throttle_status();
  ASSERT_TRUE(status.has_value());
  EXPECT_TRUE(status->capping_active);
  EXPECT_GT(status->pstate, 0);
}

TEST_F(DcmTest, CapScheduleFiresAtPolls) {
  using Sched = DataCenterManager::ScheduledCap;
  ASSERT_TRUE(dcm_.set_cap_schedule(
      "node-0", {Sched{2, 140.0}, Sched{4, 125.0}, Sched{6, std::nullopt}}));
  dcm_.poll();  // poll 1: nothing yet
  EXPECT_FALSE(slots_[0]->bmc->cap().has_value());
  dcm_.poll();  // poll 2: 140 W
  ASSERT_TRUE(slots_[0]->bmc->cap().has_value());
  EXPECT_DOUBLE_EQ(*slots_[0]->bmc->cap(), 140.0);
  dcm_.poll();
  dcm_.poll();  // poll 4: 125 W
  EXPECT_DOUBLE_EQ(*slots_[0]->bmc->cap(), 125.0);
  dcm_.poll();
  dcm_.poll();  // poll 6: uncapped
  EXPECT_FALSE(slots_[0]->bmc->cap().has_value());
}

TEST_F(DcmTest, CapScheduleValidation) {
  using Sched = DataCenterManager::ScheduledCap;
  EXPECT_FALSE(dcm_.set_cap_schedule("missing", {Sched{1, 130.0}}));
  // Out of order.
  EXPECT_FALSE(
      dcm_.set_cap_schedule("node-0", {Sched{5, 130.0}, Sched{2, 140.0}}));
  // Replacing a schedule works.
  EXPECT_TRUE(dcm_.set_cap_schedule("node-0", {Sched{1, 150.0}}));
  EXPECT_TRUE(dcm_.set_cap_schedule("node-0", {Sched{1, 130.0}}));
  dcm_.poll();
  EXPECT_DOUBLE_EQ(*slots_[0]->bmc->cap(), 130.0);
}

TEST(DcmFaulty, SurvivesLossyManagementNetwork) {
  Slot slot(7);
  ipmi::FaultyTransport faulty(*slot.transport, 0.3, 0.2, 11);
  DataCenterManager dcm;
  // Discovery may need a few tries over a lossy link.
  bool added = false;
  for (int i = 0; i < 10 && !added; ++i) added = dcm.add_node("n", faulty);
  ASSERT_TRUE(added);
  for (int i = 0; i < 20; ++i) dcm.poll();
  const auto* history = dcm.history("n");
  ASSERT_NE(history, nullptr);
  // Retries with backoff paper over ~44 % per-attempt loss: nearly every
  // poll lands even though individual frames keep failing underneath.
  EXPECT_GT(history->size(), 15u);
  EXPECT_GT(dcm.node("n")->transport_errors(), 0u);
  EXPECT_GT(dcm.node("n")->retries(), 0u);
  EXPECT_GT(dcm.node("n")->backoff_ms_total(), 0.0);
}

}  // namespace
}  // namespace pcap::core
