// Unit tests for the TLB model: LRU replacement, reach, entry gating.
#include <gtest/gtest.h>

#include "cache/tlb.hpp"
#include "util/rng.hpp"

namespace pcap::cache {
namespace {

TEST(Tlb, RejectsBadConfig) {
  EXPECT_THROW(Tlb({.name = "t", .entries = 0}), std::invalid_argument);
  EXPECT_THROW(Tlb({.name = "t", .entries = 4, .page_bytes = 3000}),
               std::invalid_argument);
}

TEST(Tlb, MissThenHitWithinPage) {
  Tlb tlb({.name = "t", .entries = 4});
  EXPECT_FALSE(tlb.lookup(0x1000));
  EXPECT_TRUE(tlb.lookup(0x1FFF));  // same 4K page
  EXPECT_FALSE(tlb.lookup(0x2000));
  EXPECT_EQ(tlb.stats().accesses, 3u);
  EXPECT_EQ(tlb.stats().misses, 2u);
}

TEST(Tlb, LruReplacement) {
  Tlb tlb({.name = "t", .entries = 2});
  tlb.lookup(0x0000);   // page 0
  tlb.lookup(0x1000);   // page 1
  tlb.lookup(0x0000);   // touch page 0 -> page 1 is LRU
  tlb.lookup(0x2000);   // page 2 evicts page 1
  EXPECT_TRUE(tlb.contains(0x0000));
  EXPECT_FALSE(tlb.contains(0x1000));
  EXPECT_TRUE(tlb.contains(0x2000));
}

TEST(Tlb, ReachMatchesActiveEntries) {
  Tlb tlb({.name = "t", .entries = 64});
  EXPECT_EQ(tlb.reach_bytes(), 64u * 4096);
  tlb.set_active_entries(8);
  EXPECT_EQ(tlb.reach_bytes(), 8u * 4096);
}

TEST(Tlb, WorkingSetWithinReachHitsAfterWarmup) {
  Tlb tlb({.name = "t", .entries = 16});
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t p = 0; p < 16; ++p) tlb.lookup(p * 4096);
  }
  tlb.reset_stats();
  for (std::uint64_t p = 0; p < 16; ++p) tlb.lookup(p * 4096);
  EXPECT_EQ(tlb.stats().misses, 0u);
}

TEST(Tlb, CyclicThrashBeyondReachMissesEverything) {
  Tlb tlb({.name = "t", .entries = 16});
  // 17 pages cycling through 16 entries with LRU: every lookup misses.
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t p = 0; p < 17; ++p) tlb.lookup(p * 4096);
  }
  tlb.reset_stats();
  for (std::uint64_t p = 0; p < 17; ++p) tlb.lookup(p * 4096);
  EXPECT_EQ(tlb.stats().misses, 17u);
}

TEST(Tlb, EntryGatingFlushesGatedEntriesAndThrashes) {
  Tlb tlb({.name = "t", .entries = 48});
  for (std::uint64_t p = 0; p < 12; ++p) tlb.lookup(p * 4096);
  tlb.reset_stats();
  for (std::uint64_t p = 0; p < 12; ++p) tlb.lookup(p * 4096);
  EXPECT_EQ(tlb.stats().misses, 0u);  // 12 pages fit 48 entries

  tlb.set_active_entries(6);
  EXPECT_EQ(tlb.active_entries(), 6u);
  tlb.reset_stats();
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t p = 0; p < 12; ++p) tlb.lookup(p * 4096);
  }
  // 12-page cyclic loop over 6 entries: every access misses.
  EXPECT_EQ(tlb.stats().misses, 48u);
}

TEST(Tlb, GatingClampsAndReenableWorks) {
  Tlb tlb({.name = "t", .entries = 8});
  tlb.set_active_entries(0);
  EXPECT_EQ(tlb.active_entries(), 1u);
  tlb.set_active_entries(100);
  EXPECT_EQ(tlb.active_entries(), 8u);
}

TEST(Tlb, FlushDropsAllTranslations) {
  Tlb tlb({.name = "t", .entries = 8});
  for (std::uint64_t p = 0; p < 8; ++p) tlb.lookup(p * 4096);
  tlb.flush();
  for (std::uint64_t p = 0; p < 8; ++p) EXPECT_FALSE(tlb.contains(p * 4096));
}

TEST(Tlb, RandomStreamMissRateBounded) {
  Tlb tlb({.name = "t", .entries = 64});
  util::Rng rng(9);
  // Uniform over 32 pages (half the reach): after warmup, no misses.
  for (int i = 0; i < 200; ++i) tlb.lookup(rng.below(32) * 4096);
  tlb.reset_stats();
  for (int i = 0; i < 2000; ++i) tlb.lookup(rng.below(32) * 4096);
  EXPECT_EQ(tlb.stats().misses, 0u);
}

}  // namespace
}  // namespace pcap::cache
