// Tests for the logging facility and remaining util corners.
#include <gtest/gtest.h>

#include "util/log.hpp"
#include "util/units.hpp"

namespace pcap::util {
namespace {

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("banana"), LogLevel::kOff);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Emitting below the threshold must be a no-op (and not crash).
  PCAP_LOG_DEBUG << "suppressed " << 42;
  PCAP_LOG_INFO << "suppressed too";
  set_log_level(before);
}

TEST(Log, EmitAboveThresholdDoesNotCrash) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  PCAP_LOG_ERROR << "expected test error message " << 3.14;
  set_log_level(before);
}

TEST(UnitsMore, CyclesToTime) {
  EXPECT_EQ(cycles_to_time(1000, 1 * kGigaHertz), 1000000u);
  // Round-trip at the Romley clock.
  const Hertz f = 2701 * kMegaHertz;
  const auto t = cycles_to_time(1000000, f);
  const auto cycles = cycles_in(t, f);
  EXPECT_NEAR(static_cast<double>(cycles), 1e6, 1e3);
}

TEST(UnitsMore, FormatHertz) {
  EXPECT_EQ(format_hertz(2701 * kMegaHertz), "2.70 GHz");
  EXPECT_EQ(format_hertz(1200 * kMegaHertz), "1.20 GHz");
  EXPECT_EQ(format_hertz(900 * kMegaHertz), "900 MHz");
  EXPECT_EQ(format_hertz(42), "42 Hz");
}

}  // namespace
}  // namespace pcap::util
