// Additional simulator-level tests: thermal coupling, report invariants,
// duty accounting, synthetic workload behaviours, and idle/load power
// transitions.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "sim/execution_context.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap::sim {
namespace {

using pmu::Event;

TEST(NodeThermal, TemperatureRisesUnderLoadAndRecovers) {
  Node node(MachineConfig::romley());
  const double cold = node.temperature_c();
  apps::ComputeBoundWorkload work(12000000);
  node.run(work);
  const double hot = node.temperature_c();
  EXPECT_GT(hot, cold + 8.0);
  // Idle long enough to converge to the idle steady state, which sits well
  // below the loaded temperature.
  node.idle_for(util::milliseconds(20.0));
  EXPECT_LT(node.temperature_c(), hot - 2.0);
}

TEST(NodeReport, PeakAtLeastAverage) {
  Node node(MachineConfig::romley());
  apps::PhasedWorkload work;
  const RunReport r = node.run(work);
  EXPECT_GE(r.peak_power_w, r.avg_power_w);
}

TEST(NodeReport, DutyAccountingUnderManualThrottle) {
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(500000);
  node.run(work);  // warm the code footprint so runs compare like-for-like
  const RunReport full = node.run(work);
  EXPECT_NEAR(full.avg_duty, 1.0, 0.01);
  node.set_duty(0.5);
  const RunReport half = node.run(work);
  EXPECT_NEAR(half.avg_duty, 0.5, 0.01);
  // Same committed work, roughly double the wall time at half duty.
  EXPECT_NEAR(static_cast<double>(half.elapsed) /
                  static_cast<double>(full.elapsed),
              2.0, 0.1);
}

TEST(NodeReport, LeakageMakesThrottledEnergyWorse) {
  // The §II-B argument: with a hot idle floor, slowing down raises energy.
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(2000000);
  const RunReport fast = node.run(work);
  node.set_pstate(15);
  const RunReport slow = node.run(work);
  EXPECT_GT(slow.energy_j, fast.energy_j);
}

TEST(SyntheticWorkloads, PhaseMarksMonotone) {
  Node node(MachineConfig::romley());
  apps::PhasedParams params;
  params.phases = 6;
  apps::PhasedWorkload work(params);
  node.run(work);
  ASSERT_EQ(work.phase_marks().size(), 6u);
  for (std::size_t i = 1; i < work.phase_marks().size(); ++i) {
    EXPECT_GT(work.phase_marks()[i], work.phase_marks()[i - 1]);
  }
}

TEST(SyntheticWorkloads, MemoryBoundMissesMoreThanComputeBound) {
  Node node(MachineConfig::romley());
  apps::MemoryBoundWorkload mem(32ull << 20, 100000);
  apps::ComputeBoundWorkload cpu(400000);
  const RunReport mem_run = node.run(mem);
  const RunReport cpu_run = node.run(cpu);
  EXPECT_GT(mem_run.counter(Event::kL3Tcm), 50000u);
  EXPECT_EQ(cpu_run.counter(Event::kL1Dca), 0u);
}

TEST(SyntheticWorkloads, MemoryBoundStrideControlsMissRate) {
  Node node(MachineConfig::romley());
  apps::MemoryBoundWorkload line_stride(32ull << 20, 100000, 64);
  apps::MemoryBoundWorkload dense(32ull << 20, 100000, 8);
  const RunReport sparse_run = node.run(line_stride);
  const RunReport dense_run = node.run(dense);
  // At 8 B stride only every 8th touch misses a line.
  EXPECT_GT(sparse_run.counter(Event::kL1Dcm),
            dense_run.counter(Event::kL1Dcm) * 4);
}

TEST(NodePowerTransitions, IdleThenLoadedThenIdle) {
  Node node(MachineConfig::romley());
  node.start_metering();
  node.idle_for(util::milliseconds(1.0));
  const double idle1 = node.meter().average_watts();

  apps::ComputeBoundWorkload work(1000000);
  const RunReport loaded = node.run(work);

  node.start_metering();
  node.idle_for(util::milliseconds(1.0));
  const double idle2 = node.meter().average_watts();

  EXPECT_GT(loaded.avg_power_w, idle1 + 30.0);
  EXPECT_NEAR(idle2, idle1, 3.0);  // back to idle (modulo warmer silicon)
}

TEST(ExecutionContextMore, DistinctCodeRegionsDoNotAlias) {
  Node node(MachineConfig::romley());
  node.set_os_noise(false);
  // Run region A, then region B; if regions did not alias, B's fetches are
  // compulsory misses again (different addresses).
  ExecutionContext ctx(node);
  ctx.set_code_footprint(1, 4);
  ctx.compute(8192);
  const auto icm_after_a = node.counters().get(Event::kL1Icm);
  ctx.set_code_footprint(2, 4);
  ctx.compute(8192);
  const auto icm_after_b = node.counters().get(Event::kL1Icm);
  EXPECT_GE(icm_after_b, icm_after_a + 100);
}

TEST(Prefetch, OffByDefault) {
  const MachineConfig m = MachineConfig::romley();
  EXPECT_FALSE(m.hierarchy.prefetch_enabled);
  pmu::CounterBank bank;
  MemoryHierarchy h(m.hierarchy, bank);
  for (Address a = 0; a < 1 << 20; a += 64) h.access(a, AccessType::kLoad);
  EXPECT_EQ(bank.get(Event::kL2Pf), 0u);
}

TEST(Prefetch, HidesSequentialStreamLatency) {
  MachineConfig m = MachineConfig::romley();
  m.hierarchy.prefetch_enabled = true;
  pmu::CounterBank bank;
  MemoryHierarchy h(m.hierarchy, bank);
  util::Picoseconds stalls = 0;
  for (Address a = 0; a < 4 << 20; a += 64) {
    stalls += h.access(a, AccessType::kLoad).fixed_ps;
  }
  EXPECT_GT(bank.get(Event::kL2Pf), 10000u);

  pmu::CounterBank base_bank;
  MemoryHierarchy base(MachineConfig::romley().hierarchy, base_bank);
  util::Picoseconds base_stalls = 0;
  for (Address a = 0; a < 4 << 20; a += 64) {
    base_stalls += base.access(a, AccessType::kLoad).fixed_ps;
  }
  // Most demand misses become L2/L3 hits: far less demand DRAM stall time.
  EXPECT_LT(stalls * 2, base_stalls);
}

TEST(Prefetch, InclusionStillHoldsWithPrefetchedLines) {
  MachineConfig m = MachineConfig::romley();
  m.hierarchy.prefetch_enabled = true;
  pmu::CounterBank bank;
  MemoryHierarchy h(m.hierarchy, bank);
  util::Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    h.access(rng.below(64ull << 20), AccessType::kLoad);
  }
  for (const Address line : h.l2().valid_line_addresses()) {
    ASSERT_TRUE(h.l3().contains(line)) << std::hex << line;
  }
}

TEST(MachineConfigTest, RomleyMatchesPaperPlatform) {
  const MachineConfig m = MachineConfig::romley();
  EXPECT_EQ(m.hierarchy.l1d.size_bytes, 32u * 1024);
  EXPECT_EQ(m.hierarchy.l1i.size_bytes, 32u * 1024);
  EXPECT_EQ(m.hierarchy.l2.size_bytes, 256u * 1024);
  EXPECT_EQ(m.hierarchy.l3.size_bytes, 20u * 1024 * 1024);
  EXPECT_EQ(m.hierarchy.l1d.ways, 8u);
  EXPECT_EQ(m.hierarchy.l2.ways, 8u);
  EXPECT_EQ(m.hierarchy.l3.ways, 20u);
  EXPECT_EQ(m.hierarchy.l3.line_bytes, 64u);
  EXPECT_EQ(m.power.cores, 16);
  EXPECT_EQ(m.power.sockets, 2);
}

}  // namespace
}  // namespace pcap::sim
