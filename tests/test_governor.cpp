// Tests for the memory-aware DVFS governor and its energy story vs capping.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/governor.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap::core {
namespace {

sim::RunReport run_with_governor(sim::Node& node, MemoryAwareGovernor& gov,
                                 sim::Workload& w) {
  node.set_control_hook(
      [&gov](sim::PlatformControl&) { gov.on_tick(); });
  const sim::RunReport r = node.run(w);
  node.set_control_hook(nullptr);
  gov.reset();
  return r;
}

TEST(Governor, StaysAtTopForComputeBoundWork) {
  sim::Node node(sim::MachineConfig::romley());
  MemoryAwareGovernor gov(node);
  apps::ComputeBoundWorkload work(3000000);
  const sim::RunReport r = run_with_governor(node, gov, work);
  EXPECT_EQ(r.avg_frequency / util::kMegaHertz, 2701u);
  EXPECT_EQ(gov.downshifts(), 0u);
  EXPECT_GT(gov.decisions(), 10u);
}

TEST(Governor, DownclocksMemoryBoundWork) {
  sim::Node node(sim::MachineConfig::romley());
  MemoryAwareGovernor gov(node);
  apps::MemoryBoundWorkload work(48ull << 20, 400000);
  const sim::RunReport r = run_with_governor(node, gov, work);
  EXPECT_LT(r.avg_frequency / util::kMegaHertz, 2200u);
  EXPECT_GT(gov.downshifts(), 5u);
}

TEST(Governor, CutsPowerWithBoundedSlowdownOnMemoryBoundWork) {
  apps::MemoryBoundWorkload work(48ull << 20, 400000);

  sim::Node plain_node(sim::MachineConfig::romley(), 3);
  const sim::RunReport base = plain_node.run(work);

  sim::Node gov_node(sim::MachineConfig::romley(), 3);
  MemoryAwareGovernor gov(gov_node);
  const sim::RunReport governed = run_with_governor(gov_node, gov, work);

  // Power drops sharply for a modest slowdown (the work is memory-latency
  // bound). Energy stays roughly flat: on a platform with ~101 W idle draw
  // even pure DVFS saves little energy — the "diminishing returns" result
  // of the paper's reference [2], reproduced.
  EXPECT_LT(governed.avg_power_w, base.avg_power_w - 12.0);
  EXPECT_LT(util::to_seconds(governed.elapsed),
            util::to_seconds(base.elapsed) * 1.35);
  EXPECT_NEAR(governed.energy_j, base.energy_j, base.energy_j * 0.12);
}

TEST(Governor, TracksPhaseChanges) {
  // A phased workload should see downshifts in memory phases and upshifts
  // back in compute phases.
  sim::Node node(sim::MachineConfig::romley());
  MemoryAwareGovernor gov(node);
  apps::PhasedParams params;
  params.phases = 8;
  params.mean_phase_uops = 600000;
  apps::PhasedWorkload work(params);
  run_with_governor(node, gov, work);
  EXPECT_GT(gov.downshifts(), 3u);
  EXPECT_GT(gov.upshifts(), 3u);
}

TEST(Governor, RespectsMaxPState) {
  // Fresh node (cold caches) so the streaming workload actually stalls on
  // DRAM; sample the P-state inside the decision hook.
  sim::Node node(sim::MachineConfig::romley());
  GovernorConfig config;
  config.max_pstate = 5;
  MemoryAwareGovernor gov(node, config);
  apps::MemoryBoundWorkload work(48ull << 20, 300000);
  std::uint32_t deepest = 0;
  node.set_control_hook([&](sim::PlatformControl& p) {
    gov.on_tick();
    deepest = std::max(deepest, p.pstate());
  });
  node.run(work);
  node.set_control_hook(nullptr);
  gov.reset();
  EXPECT_LE(deepest, 5u);
  EXPECT_GT(deepest, 0u);
  EXPECT_EQ(node.pstate(), 0u);  // reset restored P0
}

TEST(Governor, WarmCacheRemovesStallsAndDownshifts) {
  // Documented sensor behaviour: once the working set is L3-resident there
  // are no DRAM stalls, so the governor correctly stays at full speed.
  sim::Node node(sim::MachineConfig::romley());
  MemoryAwareGovernor gov(node);
  apps::MemoryBoundWorkload work(16ull << 20, 300000);  // fits the L3
  run_with_governor(node, gov, work);                   // cold: downshifts
  const auto cold_downshifts = gov.downshifts();
  EXPECT_GT(cold_downshifts, 0u);
  MemoryAwareGovernor gov2(node);
  run_with_governor(node, gov2, work);  // warm: stays up
  EXPECT_LT(gov2.downshifts(), cold_downshifts / 2 + 1);
}

TEST(Governor, StallSensorReadsZeroWhenIdle) {
  sim::Node node(sim::MachineConfig::romley());
  node.idle_for(util::milliseconds(1.0));
  EXPECT_DOUBLE_EQ(node.memory_stall_fraction(), 0.0);
}

}  // namespace
}  // namespace pcap::core
