// Golden-shape tier-1 tests: the headline qualitative shapes of the paper's
// results, promoted into ctest with a tiny-repetition configuration so any
// simulator change that bends a curve fails fast. These intentionally
// overlap test_integration.cpp's findings but run a denser cap grid around
// the knee (135/130/125 W) and pin the shapes — monotone growth, knee
// location, application asymmetry, frequency floor — rather than point
// values.
#include <gtest/gtest.h>

#include <memory>

#include "apps/sar/workload.hpp"
#include "apps/stereo/workload.hpp"
#include "harness/experiment.hpp"

namespace pcap {
namespace {

using harness::CellStats;
using harness::StudyResult;

// Scaled-down instances preserving the cache-residency relationships (same
// rationale as test_integration.cpp: stereo's volume is L3-resident until
// gating, SIRE always streams).
apps::sar::SireParams sire_params() {
  apps::sar::SireParams p;
  p.radar.apertures = 32;
  p.coarse_width = 160;
  p.coarse_height = 96;
  p.upsample_factor = 7;
  p.rsm_iterations = 2;
  return p;
}

apps::stereo::StereoParams stereo_params() {
  apps::stereo::StereoParams p;
  p.scene.width = 256;
  p.scene.height = 192;
  p.scene.max_disparity = 20;
  p.anneal.sweeps = 4;
  return p;
}

harness::StudyConfig study_config() {
  harness::StudyConfig config;
  // Dense grid around the knee; single repetition keeps this tier-1 fast.
  config.caps_w = {160.0, 150.0, 135.0, 130.0, 125.0, 120.0};
  config.repetitions = 1;
  config.machine = sim::MachineConfig::romley();
  config.machine.hierarchy.l3.size_bytes = 4096ull * 20 * 64;  // 5 MB L3
  return config;
}

class GoldenShapes : public ::testing::Test {
 protected:
  static const StudyResult& stereo() {
    static const StudyResult cached = harness::run_power_cap_study(
        "stereo",
        [] {
          return std::make_unique<apps::stereo::StereoWorkload>(stereo_params());
        },
        study_config());
    return cached;
  }
  static const StudyResult& sire() {
    static const StudyResult cached = harness::run_power_cap_study(
        "sire",
        [] {
          return std::make_unique<apps::sar::SireWorkload>(sire_params());
        },
        study_config());
    return cached;
  }
  static double slowdown(const StudyResult& study, double cap_w) {
    return study.cell(cap_w)->time_s / study.baseline.time_s;
  }
};

TEST_F(GoldenShapes, TimeGrowsMonotonicallyAsCapsDrop) {
  for (const StudyResult* study : {&stereo(), &sire()}) {
    double last = study->baseline.time_s;
    for (const auto& cell : study->capped) {
      // 3% slack absorbs measurement jitter between adjacent caps without
      // letting an inverted curve through.
      EXPECT_GE(cell.time_s, last * 0.97)
          << study->workload << " cap " << *cell.cap_w;
      last = std::max(last, cell.time_s);
    }
    EXPECT_GT(study->capped.back().time_s, study->baseline.time_s * 4.0)
        << study->workload;
  }
}

TEST_F(GoldenShapes, KneeSitsBelow135W) {
  // Down to 135 W the penalty is modest (DVFS range); the explosion happens
  // strictly below, once the cap forces non-DVFS mechanisms.
  for (const StudyResult* study : {&stereo(), &sire()}) {
    EXPECT_LT(slowdown(*study, 150.0), 1.30) << study->workload;
    EXPECT_LT(slowdown(*study, 135.0), 4.0) << study->workload;
    EXPECT_GT(slowdown(*study, 120.0), 8.0) << study->workload;
    EXPECT_GT(slowdown(*study, 120.0), 2.0 * slowdown(*study, 135.0))
        << study->workload;
  }
}

TEST_F(GoldenShapes, StereoCachePenaltyDwarfsSire) {
  // Stereo's L3-resident cost volume is evicted by cache gating at the
  // deepest cap; SIRE streams regardless, so its L3 misses barely move.
  const double stereo_l3 =
      stereo().cell(120.0)->counter(pmu::Event::kL3Tcm) /
      stereo().baseline.counter(pmu::Event::kL3Tcm);
  const double sire_l3 = sire().cell(120.0)->counter(pmu::Event::kL3Tcm) /
                         sire().baseline.counter(pmu::Event::kL3Tcm);
  EXPECT_GT(stereo_l3, 2.0);
  EXPECT_LT(sire_l3, 1.6);
  EXPECT_GT(stereo_l3, 2.0 * sire_l3);
  // ...and the miss explosion shows up in wall time: at the deepest cap the
  // cache-resident app slows down more than the streaming one.
  EXPECT_GT(slowdown(stereo(), 120.0), slowdown(sire(), 120.0));
}

TEST_F(GoldenShapes, FrequencyPinnedAtFloorForDeepCaps) {
  // At 130 W and below the governor has exhausted DVFS: the core sits at the
  // 1200 MHz floor while deeper mechanisms (duty, gating) carry the cap. At
  // exactly 130 W the run-average can sit a hair above the floor (the
  // governor dithers briefly before settling — measured 1202 MHz for SIRE),
  // so that cap gets a 1% band; 125/120 W pin exactly.
  for (const StudyResult* study : {&stereo(), &sire()}) {
    for (double cap : {125.0, 120.0}) {
      EXPECT_EQ(study->cell(cap)->avg_frequency / util::kMegaHertz, 1200u)
          << study->workload << " cap " << cap;
    }
    EXPECT_LE(study->cell(130.0)->avg_frequency / util::kMegaHertz, 1212u)
        << study->workload;
    EXPECT_GE(study->cell(130.0)->avg_frequency / util::kMegaHertz, 1200u)
        << study->workload;
    // Above the knee the average frequency stays well off the floor.
    EXPECT_GT(study->cell(150.0)->avg_frequency / util::kMegaHertz, 2000u)
        << study->workload;
  }
}

}  // namespace
}  // namespace pcap
