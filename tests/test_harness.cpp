// Tests for the experiment harness: the study runner, paper reference data,
// table/figure renderers, CSV emission and the bench CLI parser.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "apps/stride/stride.hpp"
#include "apps/synthetic.hpp"
#include "harness/cli.hpp"
#include "harness/experiment.hpp"
#include "harness/paper_reference.hpp"
#include "harness/report.hpp"

namespace pcap::harness {
namespace {

WorkloadFactory phased_factory() {
  return [] {
    apps::PhasedParams p;
    p.phases = 4;
    p.mean_phase_uops = 200000;
    return std::make_unique<apps::PhasedWorkload>(p);
  };
}

StudyConfig quick_config() {
  StudyConfig config;
  config.caps_w = {150.0, 125.0};
  config.repetitions = 2;
  return config;
}

TEST(Study, PopulatesBaselineAndCells) {
  const StudyResult result =
      run_power_cap_study("phased", phased_factory(), quick_config());
  EXPECT_EQ(result.workload, "phased");
  EXPECT_EQ(result.baseline.repetitions, 2);
  EXPECT_FALSE(result.baseline.cap_w.has_value());
  ASSERT_EQ(result.capped.size(), 2u);
  EXPECT_DOUBLE_EQ(*result.capped[0].cap_w, 150.0);
  EXPECT_GT(result.baseline.time_s, 0.0);
  EXPECT_GT(result.baseline.counter(pmu::Event::kTotIns), 0.0);
}

TEST(Study, CappedCellsAreSlowerAndCooler) {
  const StudyResult result =
      run_power_cap_study("phased", phased_factory(), quick_config());
  const CellStats* deep = result.cell(125.0);
  ASSERT_NE(deep, nullptr);
  EXPECT_GT(deep->time_s, result.baseline.time_s * 1.5);
  EXPECT_LT(deep->avg_power_w, result.baseline.avg_power_w - 10.0);
  EXPECT_EQ(result.cell(999.0), nullptr);
}

TEST(Study, ParallelMatchesSerial) {
  StudyConfig serial = quick_config();
  StudyConfig parallel = quick_config();
  parallel.jobs = 3;
  const StudyResult a =
      run_power_cap_study("phased", phased_factory(), serial);
  const StudyResult b =
      run_power_cap_study("phased", phased_factory(), parallel);
  // Every cell runs on a fresh identically-seeded node regardless of jobs,
  // so parallel results are bit-identical to serial ones.
  EXPECT_EQ(b.baseline.time_s, a.baseline.time_s);
  EXPECT_EQ(b.cell(125.0)->time_s, a.cell(125.0)->time_s);
  EXPECT_EQ(b.cell(125.0)->energy_j, a.cell(125.0)->energy_j);
}

TEST(Study, PctHelper) {
  EXPECT_DOUBLE_EQ(StudyResult::pct(150.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(StudyResult::pct(5.0, 0.0), 0.0);
}

TEST(PaperReference, TablesAreComplete) {
  EXPECT_EQ(paper_stereo_rows().size(), 10u);
  EXPECT_EQ(paper_sire_rows().size(), 10u);
  EXPECT_EQ(paper_table1().size(), 2u);
  // Baselines are uncapped; capped rows descend 160 -> 120.
  EXPECT_FALSE(paper_stereo_rows()[0].cap_w.has_value());
  EXPECT_DOUBLE_EQ(*paper_stereo_rows()[1].cap_w, 160.0);
  EXPECT_DOUBLE_EQ(*paper_stereo_rows()[9].cap_w, 120.0);
  // Table I and Table II baselines agree.
  EXPECT_NEAR(paper_sire_rows()[0].time_s, paper_table1()[0].time_s, 1.0);
}

TEST(PaperReference, HeadlineShapesPresent) {
  // Encode the key claims so a typo in the reference data is caught.
  const auto stereo = paper_stereo_rows();
  EXPECT_NEAR(stereo[9].pct_time, 3467, 1);   // x35.7 at 120 W
  EXPECT_NEAR(stereo[9].pct_l3, 350, 1);      // L3 explosion
  EXPECT_NEAR(stereo[9].freq_mhz, 1200, 1);   // pinned frequency
  const auto sire = paper_sire_rows();
  EXPECT_NEAR(sire[9].pct_time, 2583, 1);
  EXPECT_NEAR(sire[9].pct_l2, 0, 1);          // SIRE misses stay flat
  EXPECT_GT(sire[9].power_w, 120.0);          // missed cap
}

class ReportRendering : public ::testing::Test {
 protected:
  static const StudyResult& study() {
    static const StudyResult cached =
        run_power_cap_study("phased", phased_factory(), quick_config());
    return cached;
  }
};

TEST_F(ReportRendering, Table1ContainsWorkloads) {
  std::ostringstream os;
  render_table1(os, std::vector<StudyResult>{study()});
  EXPECT_NE(os.str().find("phased"), std::string::npos);
  EXPECT_NE(os.str().find("Table I"), std::string::npos);
}

TEST_F(ReportRendering, Table2HasPaperColumnsAndRows) {
  std::ostringstream os;
  render_table2(os, study(), paper_stereo_rows());
  const std::string out = os.str();
  EXPECT_NE(out.find("baseline"), std::string::npos);
  EXPECT_NE(out.find("150"), std::string::npos);
  EXPECT_NE(out.find("TLB-I Misses"), std::string::npos);
  EXPECT_NE(out.find("paper%Dt"), std::string::npos);
}

TEST_F(ReportRendering, NormalizedFigureHasSeries) {
  std::ostringstream os;
  render_normalized_figure(os, study(), "fig test", true);
  const std::string out = os.str();
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("Energy"), std::string::npos);
  EXPECT_NE(out.find("L2 miss rate"), std::string::npos);
}

TEST_F(ReportRendering, CsvFilesWritten) {
  const std::string dir = ::testing::TempDir() + "/pcap_csv";
  write_table2_csv(dir + "/t2.csv", study());
  write_figure_csv(dir + "/fig.csv", study(), false);
  EXPECT_TRUE(std::filesystem::exists(dir + "/t2.csv"));
  EXPECT_GT(std::filesystem::file_size(dir + "/t2.csv"), 100u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/fig.csv"));
}

TEST(ReportGnuplot, ScriptsEmitted) {
  const std::string dir = ::testing::TempDir() + "/pcap_gp";
  apps::stride::StrideResults results;
  results.cells = {{4096, 8, 1.5}, {4096, 64, 1.6}, {8192, 64, 2.0}};
  write_figure_gnuplot(dir + "/fig.gp", dir + "/fig.csv", "t", true);
  write_stride_gnuplot(dir + "/stride.gp", dir + "/stride.csv", "t", results);
  for (const char* name : {"/fig.gp", "/stride.gp"}) {
    std::ifstream in(dir + name);
    ASSERT_TRUE(in.good()) << name;
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("plot"), std::string::npos);
    EXPECT_NE(text.find("pngcairo"), std::string::npos);
  }
}

TEST(ReportStride, RenderAndCsv) {
  apps::stride::StrideResults results;
  results.cells = {{4096, 8, 1.5}, {4096, 64, 1.6}, {8192, 8, 1.5},
                   {8192, 64, 2.0}};
  std::ostringstream os;
  render_stride_figure(os, results, "stride test");
  EXPECT_NE(os.str().find("4K"), std::string::npos);
  EXPECT_NE(os.str().find("legend:"), std::string::npos);
  const std::string path = ::testing::TempDir() + "/stride.csv";
  write_stride_csv(path, results);
  EXPECT_TRUE(std::filesystem::exists(path));
}

TEST(Cli, ParsesKnownFlags) {
  const char* argv[] = {"bench",        "--full",     "--reps=7",
                        "--jobs=3",     "--seed=42",  "--csv-dir=/tmp/x",
                        "--bench-junk"};
  const CliOptions options = parse_cli(7, const_cast<char**>(argv));
  EXPECT_TRUE(options.full);
  EXPECT_EQ(options.reps, 7);
  EXPECT_EQ(options.jobs, 3u);
  EXPECT_EQ(options.seed, 42u);
  EXPECT_EQ(options.csv_dir, "/tmp/x");
}

TEST(Cli, RepetitionDefaults) {
  CliOptions options;
  EXPECT_EQ(options.repetitions(2), 2);
  options.full = true;
  EXPECT_EQ(options.repetitions(2), 5);
  options.reps = 9;
  EXPECT_EQ(options.repetitions(2), 9);
}

TEST(Cli, ZeroJobsClampedToOne) {
  const char* argv[] = {"bench", "--jobs=0"};
  const CliOptions options = parse_cli(2, const_cast<char**>(argv));
  EXPECT_EQ(options.jobs, 1u);
}

}  // namespace
}  // namespace pcap::harness
