// Unit tests for the IPMI message layer: framing, checksums, command
// codecs, transports and the client session's error handling.
#include <gtest/gtest.h>

#include "ipmi/commands.hpp"
#include "ipmi/message.hpp"
#include "ipmi/transport.hpp"

namespace pcap::ipmi {
namespace {

TEST(Message, RequestRoundTrip) {
  Request request;
  request.netfn = NetFn::kGroupExt;
  request.command = 0xC8;
  request.payload = {1, 2, 3, 250};
  const auto frame = encode_request(request);
  Request decoded;
  ASSERT_TRUE(decode_request(frame, decoded));
  EXPECT_EQ(decoded.netfn, request.netfn);
  EXPECT_EQ(decoded.command, request.command);
  EXPECT_EQ(decoded.payload, request.payload);
}

TEST(Message, ResponseRoundTrip) {
  Response response;
  response.code = CompletionCode::kOk;
  response.payload = {9, 8, 7};
  const auto frame = encode_response(response);
  Response decoded;
  ASSERT_TRUE(decode_response(frame, decoded));
  EXPECT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.payload, response.payload);
}

TEST(Message, EmptyPayloadRoundTrip) {
  const auto frame = encode_request(Request{NetFn::kApp, 0x01, 0, {}});
  Request decoded;
  ASSERT_TRUE(decode_request(frame, decoded));
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(Message, RejectsShortFrames) {
  Request r;
  EXPECT_FALSE(decode_request(std::vector<std::uint8_t>{1, 2}, r));
  Response resp;
  EXPECT_FALSE(decode_response(std::vector<std::uint8_t>{1}, resp));
}

TEST(Message, RejectsBadChecksum) {
  auto frame = encode_request(Request{NetFn::kApp, 0x01, 0, {5, 6}});
  frame.back() ^= 0xFF;
  Request decoded;
  EXPECT_FALSE(decode_request(frame, decoded));
}

TEST(Message, RejectsCorruptedBody) {
  auto frame = encode_request(Request{NetFn::kApp, 0x01, 0, {5, 6}});
  frame[4] ^= 0x10;  // payload byte; checksum now wrong
  Request decoded;
  EXPECT_FALSE(decode_request(frame, decoded));
}

TEST(Message, RejectsLengthMismatch) {
  auto frame = encode_request(Request{NetFn::kApp, 0x01, 0, {5, 6, 7}});
  frame.pop_back();  // drop checksum -> length no longer consistent
  Request decoded;
  EXPECT_FALSE(decode_request(frame, decoded));
}

TEST(Message, PayloadReaderBoundsChecked) {
  const std::vector<std::uint8_t> payload = {0x34, 0x12, 0xFF};
  PayloadReader reader(payload);
  std::uint16_t v16 = 0;
  EXPECT_TRUE(reader.read_u16(v16));
  EXPECT_EQ(v16, 0x1234);
  std::uint32_t v32 = 0;
  EXPECT_FALSE(reader.read_u32(v32));  // only 1 byte left
  std::uint8_t v8 = 0;
  EXPECT_TRUE(reader.read_u8(v8));
  EXPECT_EQ(v8, 0xFF);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Message, LittleEndianHelpers) {
  std::vector<std::uint8_t> out;
  put_u32(out, 0xAABBCCDD);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0xDD, 0xCC, 0xBB, 0xAA}));
  PayloadReader reader(out);
  std::uint32_t v = 0;
  EXPECT_TRUE(reader.read_u32(v));
  EXPECT_EQ(v, 0xAABBCCDDu);
}

TEST(Commands, WattsFixedPoint) {
  EXPECT_EQ(watts_to_wire(153.17), 1532u);
  EXPECT_DOUBLE_EQ(watts_from_wire(1532), 153.2);
  EXPECT_EQ(watts_to_wire(-5.0), 0u);        // clamped
  EXPECT_EQ(watts_to_wire(1e9), 65535u);     // clamped
}

TEST(Commands, PowerReadingRoundTrip) {
  const PowerReading reading{153.1, 152.8, 121.5, 158.3};
  const auto decoded = decode_power_reading(encode_power_reading(reading));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->current_w, 153.1);
  EXPECT_DOUBLE_EQ(decoded->average_w, 152.8);
  EXPECT_DOUBLE_EQ(decoded->minimum_w, 121.5);
  EXPECT_DOUBLE_EQ(decoded->maximum_w, 158.3);
}

TEST(Commands, SetPowerLimitRoundTrip) {
  const auto request = make_set_power_limit({true, 130.0});
  const auto decoded = decode_set_power_limit(request);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->enabled);
  EXPECT_DOUBLE_EQ(decoded->limit_w, 130.0);
}

TEST(Commands, PowerLimitResponseRoundTrip) {
  const auto decoded = decode_power_limit(encode_power_limit({false, 0.0}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->enabled);
}

TEST(Commands, CapabilitiesRoundTrip) {
  const auto decoded = decode_capabilities(encode_capabilities({110.0, 400.0}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->min_cap_w, 110.0);
  EXPECT_DOUBLE_EQ(decoded->max_cap_w, 400.0);
}

TEST(Commands, ThrottleStatusRoundTrip) {
  ThrottleStatus s;
  s.pstate = 15;
  s.duty_eighths = 1;
  s.l3_ways = 4;
  s.l2_ways = 2;
  s.itlb_entries = 6;
  s.dtlb_entries = 32;
  s.dram_gated = true;
  s.capping_active = true;
  const auto decoded = decode_throttle_status(encode_throttle_status(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->pstate, 15);
  EXPECT_EQ(decoded->duty_eighths, 1);
  EXPECT_EQ(decoded->l3_ways, 4);
  EXPECT_EQ(decoded->l2_ways, 2);
  EXPECT_EQ(decoded->itlb_entries, 6);
  EXPECT_EQ(decoded->dtlb_entries, 32);
  EXPECT_TRUE(decoded->dram_gated);
  EXPECT_TRUE(decoded->capping_active);
}

TEST(Commands, DeviceIdRoundTrip) {
  const auto decoded = decode_device_id(encode_device_id({0x20, 2, 5}));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->firmware_major, 2);
  EXPECT_EQ(decoded->firmware_minor, 5);
}

TEST(Commands, DecodersRejectErrorResponses) {
  const Response err = make_error_response(CompletionCode::kInvalidCommand);
  EXPECT_FALSE(decode_power_reading(err).has_value());
  EXPECT_FALSE(decode_capabilities(err).has_value());
  EXPECT_FALSE(decode_throttle_status(err).has_value());
}

TEST(Commands, DecodersRejectTruncatedPayloads) {
  Response r = encode_power_reading({1, 2, 3, 4});
  r.payload.pop_back();
  EXPECT_FALSE(decode_power_reading(r).has_value());
  r.payload.push_back(0);
  r.payload.push_back(0);  // now too long
  EXPECT_FALSE(decode_power_reading(r).has_value());
}

TEST(Commands, CompletionCodeNames) {
  EXPECT_EQ(completion_code_name(CompletionCode::kOk), "OK");
  EXPECT_EQ(completion_code_name(CompletionCode::kOutOfRange),
            "Parameter Out Of Range");
}

TEST(Transport, LoopbackDelivers) {
  LoopbackTransport transport([](std::span<const std::uint8_t> frame) {
    return std::vector<std::uint8_t>(frame.begin(), frame.end());  // echo
  });
  const std::vector<std::uint8_t> frame = {1, 2, 3};
  EXPECT_EQ(transport.transact(frame), frame);
}

namespace {

/// A well-behaved responder: decodes the request and echoes its sequence
/// number, the way BmcIpmiServer does.
std::vector<std::uint8_t> echo_seq(std::span<const std::uint8_t> frame,
                                   Response response) {
  Request request;
  if (!decode_request(frame, request)) return {};
  response.seq = request.seq;
  return encode_response(response);
}

}  // namespace

TEST(Transport, SessionDecodesResponses) {
  LoopbackTransport transport([](std::span<const std::uint8_t> f) {
    return echo_seq(f, encode_capabilities({110.0, 400.0}));
  });
  Session session(transport);
  const Response response = session.transact(make_get_capabilities());
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(session.last_error(), Session::Error::kNone);
  EXPECT_EQ(session.transport_errors(), 0u);
}

TEST(Transport, SessionSequenceNumbersWrapCleanly) {
  LoopbackTransport transport([](std::span<const std::uint8_t> f) {
    return echo_seq(f, make_ok_response());
  });
  Session session(transport);
  // Run past the uint8 wrap: every exchange must still match its seq.
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(session.transact(make_get_power_reading()).ok());
  }
  EXPECT_EQ(session.transport_errors(), 0u);
  EXPECT_EQ(session.stale_rejections(), 0u);
}

TEST(Transport, SessionSurvivesDropsAndCorruption) {
  LoopbackTransport inner([](std::span<const std::uint8_t> f) {
    return echo_seq(f, make_ok_response());
  });
  FaultyTransport faulty(inner, /*drop=*/0.4, /*corrupt=*/0.4, /*seed=*/3);
  Session session(faulty);
  int ok = 0, failed = 0;
  for (int i = 0; i < 200; ++i) {
    const Response r = session.transact(make_get_power_reading());
    (r.ok() ? ok : failed)++;
  }
  EXPECT_GT(ok, 20);
  EXPECT_GT(failed, 20);
  EXPECT_EQ(session.transport_errors(), static_cast<std::uint64_t>(failed));
}

}  // namespace
}  // namespace pcap::ipmi
