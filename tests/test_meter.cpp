// Unit and property tests for the Watts Up meter analog.
#include <gtest/gtest.h>

#include "meter/watts_up.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pcap::meter {
namespace {

using util::microseconds;
using util::milliseconds;

TEST(EnergyIntegrator, RectangleRule) {
  EnergyIntegrator e;
  e.add(100.0, util::seconds(2.0));
  e.add(50.0, util::seconds(1.0));
  EXPECT_DOUBLE_EQ(e.joules(), 250.0);
  EXPECT_DOUBLE_EQ(e.average_watts(), 250.0 / 3.0);
  e.reset();
  EXPECT_EQ(e.joules(), 0.0);
}

TEST(WattsUp, ConstantPowerEnergy) {
  WattsUp meter(microseconds(100));
  meter.start_session(0);
  meter.observe(milliseconds(1.0), 150.0);
  EXPECT_NEAR(meter.energy_joules(), 150.0 * 0.001, 1e-12);
  EXPECT_NEAR(meter.average_watts(), 150.0, 1e-12);
}

TEST(WattsUp, SampleLogCadence) {
  WattsUp meter(microseconds(100));
  meter.start_session(0);
  for (int i = 1; i <= 10; ++i) {
    meter.observe(microseconds(100.0 * i), 120.0 + i);
  }
  EXPECT_EQ(meter.samples().size(), 10u);
  EXPECT_EQ(meter.samples().front().time, microseconds(100));
  EXPECT_EQ(meter.samples().back().time, microseconds(1000));
}

TEST(WattsUp, StepChangeSplitsEnergy) {
  WattsUp meter(microseconds(50));
  meter.start_session(0);
  meter.observe(microseconds(100), 100.0);  // 100 W for 100 us
  meter.observe(microseconds(200), 200.0);  // 200 W for 100 us
  EXPECT_NEAR(meter.energy_joules(), (100.0 + 200.0) * 100e-6, 1e-12);
  EXPECT_NEAR(meter.average_watts(), 150.0, 1e-9);
}

TEST(WattsUp, SessionResetClearsState) {
  WattsUp meter(microseconds(100));
  meter.start_session(0);
  meter.observe(milliseconds(1.0), 130.0);
  meter.start_session(milliseconds(1.0));
  EXPECT_EQ(meter.energy_joules(), 0.0);
  EXPECT_TRUE(meter.samples().empty());
  meter.observe(milliseconds(2.0), 110.0);
  EXPECT_NEAR(meter.average_watts(), 110.0, 1e-12);
}

TEST(WattsUp, RecentAverage) {
  WattsUp meter(microseconds(100));
  meter.start_session(0);
  meter.observe(microseconds(100), 100.0);
  meter.observe(microseconds(200), 200.0);
  meter.observe(microseconds(300), 300.0);
  EXPECT_NEAR(meter.recent_average_watts(2), 250.0, 1e-12);
  EXPECT_NEAR(meter.recent_average_watts(100), 200.0, 1e-12);
  EXPECT_EQ(meter.recent_average_watts(0), 0.0);
}

TEST(WattsUp, BoundedLogTrimsOldest) {
  WattsUp meter(microseconds(10), /*max_log=*/5);
  meter.start_session(0);
  meter.observe(microseconds(200), 100.0);  // 20 sample boundaries
  EXPECT_EQ(meter.samples().size(), 5u);
  EXPECT_EQ(meter.samples().back().time, microseconds(200));
}

TEST(WattsUp, NonMonotonicObserveIsIgnored) {
  WattsUp meter(microseconds(100));
  meter.start_session(milliseconds(1.0));
  meter.observe(microseconds(500), 100.0);  // before session start
  EXPECT_EQ(meter.energy_joules(), 0.0);
}

// Property: integrated energy equals the sum of watts*dt for random traces.
class MeterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MeterProperty, EnergyMatchesPiecewiseSum) {
  util::Rng rng(GetParam());
  WattsUp meter(microseconds(100.0 * (1 + GetParam() % 7)));
  meter.start_session(0);
  util::Picoseconds now = 0;
  double expected = 0.0;
  for (int i = 0; i < 500; ++i) {
    const auto dt = microseconds(rng.uniform(1.0, 400.0));
    const double watts = rng.uniform(95.0, 180.0);
    now += dt;
    meter.observe(now, watts);
    expected += watts * util::to_seconds(dt);
  }
  EXPECT_NEAR(meter.energy_joules(), expected, expected * 1e-9);
  EXPECT_EQ(meter.session_elapsed(), now);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MeterProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace pcap::meter
