// Unit and property tests for the set-associative cache model, including a
// reference-model comparison (exact LRU semantics) and the regression test
// for the fill-aging bug (a fill must age every resident line).
#include <gtest/gtest.h>

#include <list>
#include <map>
#include <vector>

#include "cache/cache.hpp"
#include "util/rng.hpp"

namespace pcap::cache {
namespace {

CacheConfig small_config() {
  return {.name = "test", .size_bytes = 1024, .line_bytes = 64, .ways = 4};
  // 4 sets x 4 ways x 64 B.
}

TEST(Cache, GeometryDerivation) {
  Cache c(small_config());
  EXPECT_EQ(c.sets(), 4u);
  EXPECT_EQ(c.active_ways(), 4u);
  EXPECT_EQ(c.effective_size_bytes(), 1024u);
}

TEST(Cache, RomleyL3GeometryIsValid) {
  Cache l3({.name = "L3",
            .size_bytes = 20 * 1024 * 1024,
            .line_bytes = 64,
            .ways = 20});
  EXPECT_EQ(l3.sets(), 16384u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache({.size_bytes = 1000, .line_bytes = 48, .ways = 4}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 1000, .line_bytes = 64, .ways = 4}),
               std::invalid_argument);
  EXPECT_THROW(Cache({.size_bytes = 1024, .line_bytes = 64, .ways = 0}),
               std::invalid_argument);
  // 3 sets: not a power of two.
  EXPECT_THROW(Cache({.size_bytes = 64 * 4 * 3, .line_bytes = 64, .ways = 4}),
               std::invalid_argument);
}

TEST(Cache, MissThenHit) {
  Cache c(small_config());
  EXPECT_FALSE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x100, false).hit);
  EXPECT_TRUE(c.access(0x13F, false).hit);   // same line
  EXPECT_FALSE(c.access(0x140, false).hit);  // next line
  EXPECT_EQ(c.stats().accesses, 4u);
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(small_config());  // 4 ways, set stride = 256
  // Fill one set with 4 lines.
  for (int i = 0; i < 4; ++i) c.access(0x1000 + 256u * i, false);
  // Touch line 0 so line 1 becomes LRU.
  c.access(0x1000, false);
  const auto outcome = c.access(0x1000 + 256u * 4, false);
  EXPECT_FALSE(outcome.hit);
  ASSERT_TRUE(outcome.evicted_line.has_value());
  EXPECT_EQ(*outcome.evicted_line, 0x1000u + 256u);
}

// Regression: a fill must make the new line MRU relative to ALL residents.
// The original bug aged lines only relative to the (reset) victim age, which
// froze every age at zero and degraded replacement to "churn the last way".
TEST(Cache, FillAgingRegression) {
  Cache c(small_config());
  // Cyclic sweep of 5 lines through a 4-way set: true LRU must miss every
  // access after warmup (classic worst case), not settle into hits.
  const std::uint64_t kLines = 5;
  for (int warm = 0; warm < 2; ++warm) {
    for (std::uint64_t i = 0; i < kLines; ++i) c.access(0x2000 + 256 * i, false);
  }
  c.reset_stats();
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < kLines; ++i) c.access(0x2000 + 256 * i, false);
  }
  EXPECT_EQ(c.stats().misses, 50u);  // every access misses
}

TEST(Cache, CyclicWorkingSetThatFitsAlwaysHits) {
  Cache c(small_config());
  for (std::uint64_t i = 0; i < 4; ++i) c.access(0x2000 + 256 * i, false);
  c.reset_stats();
  for (int round = 0; round < 10; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) c.access(0x2000 + 256 * i, false);
  }
  EXPECT_EQ(c.stats().hits, 40u);
}

TEST(Cache, DirtyEvictionReported) {
  Cache c(small_config());
  c.access(0x3000, true);  // dirty line
  for (int i = 1; i <= 4; ++i) c.access(0x3000 + 256u * i, false);
  // 0x3000 was LRU and dirty.
  bool saw_dirty = false;
  Cache c2(small_config());
  c2.access(0x3000, true);
  for (int i = 1; i <= 3; ++i) c2.access(0x3000 + 256u * i, false);
  const auto outcome = c2.access(0x3000 + 256u * 4, false);
  ASSERT_TRUE(outcome.evicted_line.has_value());
  EXPECT_EQ(*outcome.evicted_line, 0x3000u);
  saw_dirty = outcome.evicted_dirty;
  EXPECT_TRUE(saw_dirty);
}

TEST(Cache, InvalidateAndContains) {
  Cache c(small_config());
  c.access(0x4000, true);
  EXPECT_TRUE(c.contains(0x4000));
  EXPECT_TRUE(c.contains(0x403F));
  bool was_dirty = false;
  EXPECT_TRUE(c.invalidate(0x4000, &was_dirty));
  EXPECT_TRUE(was_dirty);
  EXPECT_FALSE(c.contains(0x4000));
  EXPECT_FALSE(c.invalidate(0x4000));
}

TEST(Cache, FlushAllDropsEverything) {
  Cache c(small_config());
  for (int i = 0; i < 16; ++i) c.access(64u * i, false);
  EXPECT_GT(c.valid_lines(), 0u);
  c.flush_all();
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(Cache, WayGatingDropsGatedLinesAndShrinksCapacity) {
  Cache c(small_config());
  for (int i = 0; i < 16; ++i) c.access(64u * i, false);  // fill all 16 lines
  EXPECT_EQ(c.valid_lines(), 16u);
  const std::uint64_t dropped = c.set_active_ways(2);
  EXPECT_EQ(dropped, 8u);  // half the lines lived in gated ways
  EXPECT_EQ(c.active_ways(), 2u);
  EXPECT_EQ(c.effective_size_bytes(), 512u);
  EXPECT_EQ(c.valid_lines(), 8u);
}

TEST(Cache, GatedWaysNotUsedForAllocation) {
  Cache c(small_config());
  c.set_active_ways(1);
  // With 1 way per set, two conflicting lines always evict each other.
  c.access(0x0, false);
  c.access(0x400, false);  // same set (set stride 256, 4 sets -> 0x400 maps set 0)
  EXPECT_FALSE(c.contains(0x0));
  EXPECT_TRUE(c.contains(0x400));
  EXPECT_LE(c.valid_lines(), 4u);
}

TEST(Cache, ReenablingWaysKeepsSurvivors) {
  Cache c(small_config());
  for (int i = 0; i < 16; ++i) c.access(64u * i, false);
  c.set_active_ways(2);
  const auto survivors = c.valid_lines();
  c.set_active_ways(4);
  EXPECT_EQ(c.valid_lines(), survivors);  // re-enabling does not drop lines
  EXPECT_EQ(c.active_ways(), 4u);
}

TEST(Cache, WayGatingClamps) {
  Cache c(small_config());
  c.set_active_ways(0);
  EXPECT_EQ(c.active_ways(), 1u);
  c.set_active_ways(99);
  EXPECT_EQ(c.active_ways(), 4u);
}

TEST(Cache, ValidLineAddressesRoundTrip) {
  Cache c(small_config());
  c.access(0x12340, false);
  c.access(0x56780, false);
  const auto lines = c.valid_line_addresses();
  ASSERT_EQ(lines.size(), 2u);
  for (const auto a : lines) {
    EXPECT_TRUE(c.contains(a));
    EXPECT_EQ(a % 64, 0u);
  }
}

// ---------------------------------------------------------------------------
// Reference-model property test: exact LRU per set, compared against the
// Cache under random access streams, across several geometries.
// ---------------------------------------------------------------------------

class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t sets, std::uint32_t ways, std::uint32_t line)
      : sets_(sets), ways_(ways), line_(line), lru_(sets) {}

  bool access(Address addr) {
    const std::uint64_t line_addr = addr / line_;
    const std::uint64_t set = line_addr % sets_;
    auto& order = lru_[set];  // front == MRU
    for (auto it = order.begin(); it != order.end(); ++it) {
      if (*it == line_addr) {
        order.erase(it);
        order.push_front(line_addr);
        return true;
      }
    }
    order.push_front(line_addr);
    if (order.size() > ways_) order.pop_back();
    return false;
  }

 private:
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t line_;
  std::vector<std::list<std::uint64_t>> lru_;
};

struct Geometry {
  std::uint64_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheVsReference : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheVsReference, RandomStreamMatchesExactLru) {
  const Geometry g = GetParam();
  Cache cache({.name = "p", .size_bytes = g.size, .line_bytes = g.line,
               .ways = g.ways});
  ReferenceLru reference(cache.sets(), g.ways, g.line);
  util::Rng rng(g.size ^ g.ways);
  // Footprint ~4x the cache so hits and misses both occur.
  const std::uint64_t span = g.size * 4;
  for (int i = 0; i < 20000; ++i) {
    // Mix of random and sequential accesses.
    const Address addr = (i % 3 == 0) ? (static_cast<Address>(i) * g.line) % span
                                      : rng.below(span);
    const bool hit = cache.access(addr, rng.chance(0.3)).hit;
    const bool ref_hit = reference.access(addr);
    ASSERT_EQ(hit, ref_hit) << "divergence at access " << i << " addr " << addr;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheVsReference,
    ::testing::Values(Geometry{1024, 64, 4}, Geometry{4096, 64, 8},
                      Geometry{8192, 32, 2}, Geometry{32 * 1024, 64, 8},
                      Geometry{64 * 1024, 128, 16},
                      Geometry{20 * 1024, 64, 20} /* 16 sets x 20 ways */));

// Hit-after-access property across random gating.
class CacheGatingProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CacheGatingProperty, JustAccessedLineHitsUntilConflict) {
  Cache c({.name = "g", .size_bytes = 8192, .line_bytes = 64, .ways = 8});
  util::Rng rng(GetParam());
  for (int i = 0; i < 5000; ++i) {
    if (rng.chance(0.01)) {
      c.set_active_ways(1 + static_cast<std::uint32_t>(rng.below(8)));
    }
    const Address addr = rng.below(64 * 1024);
    c.access(addr, false);
    // Immediately re-accessing the same line must hit (it is MRU).
    EXPECT_TRUE(c.access(addr, false).hit);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheGatingProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace pcap::cache
