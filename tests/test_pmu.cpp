// Unit tests for the PAPI-like counter substrate.
#include <gtest/gtest.h>

#include <set>
#include <string_view>

#include "pmu/counters.hpp"
#include "pmu/events.hpp"

namespace pcap::pmu {
namespace {

TEST(Events, NamesRoundTrip) {
  for (Event e : all_events()) {
    EXPECT_EQ(event_from_name(event_name(e)), e);
  }
}

TEST(Events, UnknownNameMapsToCount) {
  EXPECT_EQ(event_from_name("PAPI_NOT_A_THING"), Event::kCount);
}

TEST(Events, NamesAreUniqueAndPrefixed) {
  std::set<std::string_view> names;
  for (Event e : all_events()) {
    const auto name = event_name(e);
    EXPECT_TRUE(name.starts_with("PCAP_")) << name;
    EXPECT_TRUE(names.insert(name).second) << "duplicate " << name;
  }
}

TEST(CounterBank, AccumulatesAndResets) {
  CounterBank bank;
  bank.add(Event::kTotCyc, 100);
  bank.add(Event::kTotCyc);
  bank.add(Event::kL2Tcm, 7);
  EXPECT_EQ(bank.get(Event::kTotCyc), 101u);
  EXPECT_EQ(bank.get(Event::kL2Tcm), 7u);
  EXPECT_EQ(bank.get(Event::kL3Tcm), 0u);
  bank.reset();
  EXPECT_EQ(bank.get(Event::kTotCyc), 0u);
}

TEST(EventSet, MeasuresDeltasBetweenStartAndStop) {
  CounterBank bank;
  bank.add(Event::kTotIns, 1000);
  EventSet es(bank);
  es.add(Event::kTotIns);
  es.add(Event::kL1Dcm);
  es.start();
  bank.add(Event::kTotIns, 250);
  bank.add(Event::kL1Dcm, 10);
  es.stop();
  bank.add(Event::kTotIns, 999);  // after stop: not measured
  EXPECT_EQ(es.read(Event::kTotIns), 250u);
  EXPECT_EQ(es.read(Event::kL1Dcm), 10u);
}

TEST(EventSet, LiveReadWhileRunning) {
  CounterBank bank;
  EventSet es(bank);
  es.add(Event::kLdIns);
  es.start();
  bank.add(Event::kLdIns, 5);
  EXPECT_EQ(es.read(Event::kLdIns), 5u);
  bank.add(Event::kLdIns, 5);
  EXPECT_EQ(es.read(Event::kLdIns), 10u);
  es.stop();
}

TEST(EventSet, PapiStateMachineErrors) {
  CounterBank bank;
  EventSet es(bank);
  es.add(Event::kTotCyc);
  EXPECT_THROW(es.stop(), std::logic_error);
  es.start();
  EXPECT_THROW(es.start(), std::logic_error);
  EXPECT_THROW(es.add(Event::kTotIns), std::logic_error);
  es.stop();
  EXPECT_THROW(es.read(Event::kTotIns), std::out_of_range);
}

TEST(EventSet, DuplicateAddIsIdempotent) {
  CounterBank bank;
  EventSet es(bank);
  es.add(Event::kTotCyc);
  es.add(Event::kTotCyc);
  EXPECT_EQ(es.size(), 1u);
}

TEST(EventSet, ReadAllPreservesInsertionOrder) {
  CounterBank bank;
  EventSet es(bank);
  es.add(Event::kL3Tcm);
  es.add(Event::kTotCyc);
  es.start();
  bank.add(Event::kL3Tcm, 3);
  bank.add(Event::kTotCyc, 8);
  es.stop();
  EXPECT_EQ(es.read_all(), (std::vector<std::uint64_t>{3, 8}));
}

TEST(Derived, RatesAndIpc) {
  CounterBank bank;
  bank.add(Event::kTotCyc, 1000);
  bank.add(Event::kTotIns, 1500);
  bank.add(Event::kL1Dca, 400);
  bank.add(Event::kL1Dcm, 100);
  bank.add(Event::kL2Tca, 100);
  bank.add(Event::kL2Tcm, 50);
  bank.add(Event::kL3Tca, 50);
  bank.add(Event::kL3Tcm, 10);
  const DerivedMetrics m = derive(bank);
  EXPECT_DOUBLE_EQ(m.ipc, 1.5);
  EXPECT_DOUBLE_EQ(m.l1d_miss_rate, 0.25);
  EXPECT_DOUBLE_EQ(m.l2_miss_rate, 0.5);
  EXPECT_DOUBLE_EQ(m.l3_miss_rate, 0.2);
  EXPECT_NEAR(m.mpki_l2, 50.0 * 1000 / 1500, 1e-9);
}

TEST(Derived, EmptyBankIsAllZero) {
  CounterBank bank;
  const DerivedMetrics m = derive(bank);
  EXPECT_EQ(m.ipc, 0.0);
  EXPECT_EQ(m.l1d_miss_rate, 0.0);
}

}  // namespace
}  // namespace pcap::pmu
