// Budget-tree invariant layer for the fleet (DESIGN.md §14).
//
// The load-bearing property, asserted at every level at every tick, clean
// or faulted: the budget a parent has committed to its children (grants
// plus reservations for unreachable children) never exceeds the budget the
// parent itself enforces, and once a level converges its committed power
// is within its target. The headline test runs a seeded 3-level,
// 1000-node fleet under FaultyTransport loss plus a scripted partition
// episode and checks the conservation counters stayed at zero; the
// randomized-topology test re-checks the same discipline on arbitrary
// 2–4-level trees built from the same endpoint pieces. Bit-identity of
// whole fleet schedules across --jobs values and memo on/off rides on the
// schedule digest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fleet/budget.hpp"
#include "fleet/coupler.hpp"
#include "fleet/datacenter.hpp"
#include "fleet/endpoint.hpp"
#include "fleet/rack.hpp"
#include "fleet/tenant.hpp"
#include "fleet/virtual_node.hpp"
#include "ipmi/transport.hpp"
#include "util/rng.hpp"

namespace fleet = pcap::fleet;
namespace ipmi = pcap::ipmi;
namespace sched = pcap::sched;
using pcap::util::Rng;

namespace {

constexpr double kTol = 1e-3;

// ---------------------------------------------------------------------------
// divide_budget properties
// ---------------------------------------------------------------------------

TEST(FleetBudget, DivideConservesAndRespectsBounds) {
  Rng rng(0xB07);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng.below(12);
    std::vector<double> floors(n), weights(n), ceilings(n);
    double floor_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      floors[i] = 50.0 + 10.0 * static_cast<double>(rng.below(10));
      ceilings[i] = floors[i] + rng.uniform(0.0, 300.0);
      weights[i] = rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.1, 4.0);
      floor_sum += floors[i];
    }
    const double budget = floor_sum + rng.uniform(0.0, 150.0 * n);
    const double grid = rng.uniform() < 0.5 ? 0.0 : 8.0;
    const std::vector<double> out =
        fleet::divide_budget(budget, floors, weights, ceilings, grid);
    ASSERT_EQ(out.size(), n);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_GE(out[i], floors[i] - kTol);
      EXPECT_LE(out[i], std::max(floors[i], ceilings[i]) + kTol);
      sum += out[i];
    }
    // Quantization always rounds down, so the division can never overspend.
    EXPECT_LE(sum, budget + kTol);
  }
}

TEST(FleetBudget, InfeasibleDivisionRejectedWhole) {
  const std::vector<double> floors{110.0, 110.0, 110.0};
  const std::vector<double> weights{1.0, 1.0, 1.0};
  const std::vector<double> ceilings{400.0, 400.0, 400.0};
  EXPECT_TRUE(fleet::divide_budget(329.0, floors, weights, ceilings).empty());
  const std::vector<double> ok =
      fleet::divide_budget(330.0, floors, weights, ceilings);
  ASSERT_EQ(ok.size(), 3u);
}

TEST(FleetBudget, DivisionLandsOnWireGrid) {
  // grid_w = 0 still quantizes onto the 0.1 W IPMI fixed-point grid, so a
  // budget round-trips the u16/u32 wire encoding unchanged.
  Rng rng(0x11E);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t n = 1 + rng.below(7);
    const std::vector<double> floors(n, 110.0);
    const std::vector<double> ceilings(n, 400.0);
    std::vector<double> weights(n);
    for (auto& w : weights) w = rng.uniform(0.0, 3.0);
    const double budget = 110.0 * n + rng.uniform(0.0, 290.0 * n);
    for (const double w :
         fleet::divide_budget(budget, floors, weights, ceilings, 0.0)) {
      EXPECT_NEAR(w * 10.0, std::round(w * 10.0), 1e-6) << w;
    }
  }
}

TEST(FleetBudget, ScheduleStepsPeriodAndEvents) {
  fleet::BudgetSchedule schedule(1000.0);
  schedule.add_phase(10.0, 800.0);
  schedule.add_phase(20.0, 1200.0);
  schedule.set_period(30.0);  // time-of-day wrap
  schedule.add_event(35.0, 40.0, 500.0);  // demand-response override

  EXPECT_DOUBLE_EQ(schedule.at(0.0), 1000.0);
  EXPECT_DOUBLE_EQ(schedule.at(15.0), 800.0);
  EXPECT_DOUBLE_EQ(schedule.at(25.0), 1200.0);
  EXPECT_DOUBLE_EQ(schedule.at(31.0), 1000.0);   // wrapped
  EXPECT_DOUBLE_EQ(schedule.at(44.0), 800.0);    // wrapped phase 1
  EXPECT_DOUBLE_EQ(schedule.at(37.0), 500.0);    // DR event trumps schedule
  EXPECT_DOUBLE_EQ(schedule.at(40.0), 800.0);    // event end is exclusive
}

// ---------------------------------------------------------------------------
// BudgetCoupler discipline (scripted links)
// ---------------------------------------------------------------------------

class ScriptedLink : public fleet::ChildLink {
 public:
  ScriptedLink(int id, std::vector<std::pair<int, double>>* log)
      : id_(id), log_(log) {}

  std::optional<double> push_budget(double watts) override {
    if (fail_pushes) return std::nullopt;
    log_->emplace_back(id_, watts);
    // A child still converging grants max(target, its commitments).
    actual_w = std::max(watts, sticky_floor_w);
    return actual_w;
  }
  std::optional<double> poll_demand() override {
    if (fail_polls) return std::nullopt;
    return actual_w;
  }
  double floor_w() const override { return 100.0; }
  double ceiling_w() const override { return 400.0; }

  double actual_w = 0.0;
  double sticky_floor_w = 0.0;  // >0: decreases stall at this level
  bool fail_pushes = false;
  bool fail_polls = false;

 private:
  int id_;
  std::vector<std::pair<int, double>>* log_;
};

TEST(FleetCoupler, DecreasesFirstAndIncreasesWithheld) {
  std::vector<std::pair<int, double>> log;
  ScriptedLink a(0, &log), b(1, &log);
  a.actual_w = 200.0;
  b.actual_w = 200.0;
  fleet::BudgetCoupler coupler;
  coupler.add_child(&a, 200.0);
  coupler.add_child(&b, 200.0);

  // Weights {0,1}: A must decrease to its floor, B may rise to 300.
  const std::vector<double> weights{0.0, 1.0};

  // Round 1: A's link is down — the decrease fails, so B's increase must
  // be withheld and its grant unchanged.
  a.fail_pushes = true;
  fleet::CouplerRound round = coupler.run_round(400.0, &weights);
  EXPECT_TRUE(round.increases_withheld);
  EXPECT_DOUBLE_EQ(coupler.granted_w(1), 200.0);
  EXPECT_NEAR(round.committed_w, 400.0, kTol);
  EXPECT_LE(round.committed_w, round.enforced_w + kTol);
  EXPECT_TRUE(log.empty());  // nothing actually landed

  // Round 2: A answers but converges only to 150 — a partial decrease
  // still defers the increase.
  a.fail_pushes = false;
  a.sticky_floor_w = 150.0;
  round = coupler.run_round(400.0, &weights);
  EXPECT_TRUE(round.increases_withheld);
  EXPECT_NEAR(coupler.granted_w(0), 150.0, kTol);
  EXPECT_DOUBLE_EQ(coupler.granted_w(1), 200.0);
  EXPECT_LE(round.committed_w, round.enforced_w + kTol);

  // Round 3: A finishes converging; the decrease lands before the
  // increase, and the level converges at the target.
  a.sticky_floor_w = 0.0;
  log.clear();
  round = coupler.run_round(400.0, &weights);
  EXPECT_FALSE(round.increases_withheld);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].first, 0);  // decrease pushed first
  EXPECT_EQ(log[1].first, 1);
  EXPECT_NEAR(coupler.granted_w(0), 100.0, kTol);
  EXPECT_NEAR(coupler.granted_w(1), 300.0, kTol);
  EXPECT_TRUE(round.converged);
  EXPECT_NEAR(round.committed_w, round.target_w, kTol);
}

TEST(FleetCoupler, LostChildHoldsReservation) {
  std::vector<std::pair<int, double>> log;
  ScriptedLink a(0, &log), c(1, &log);
  a.actual_w = 150.0;
  c.actual_w = 200.0;
  fleet::CouplerConfig config;
  config.lost_after_failures = 4;
  fleet::BudgetCoupler coupler(config);
  coupler.add_child(&a, 150.0);
  coupler.add_child(&c, 200.0);

  c.fail_pushes = true;
  c.fail_polls = true;
  fleet::CouplerRound round;
  for (int i = 0; i < 5; ++i) round = coupler.run_round(400.0);
  EXPECT_EQ(coupler.health(1), fleet::LinkHealth::kLost);
  EXPECT_EQ(round.lost_children, 1u);
  // The lost child's last grant is reserved, and the reachable child's
  // share comes out of what is left.
  EXPECT_NEAR(round.reserved_w, 200.0, kTol);
  EXPECT_NEAR(coupler.granted_w(0), 200.0, kTol);  // 400 - 200 reserved
  EXPECT_NEAR(round.committed_w, 400.0, kTol);
  EXPECT_LE(round.committed_w, round.enforced_w + kTol);

  // Heal: the child recovers and the level reconverges with everyone.
  c.fail_pushes = false;
  c.fail_polls = false;
  for (int i = 0; i < 3; ++i) round = coupler.run_round(400.0);
  EXPECT_EQ(coupler.health(1), fleet::LinkHealth::kHealthy);
  EXPECT_EQ(round.lost_children, 0u);
  EXPECT_TRUE(round.converged);
}

// ---------------------------------------------------------------------------
// Randomized 2–4-level budget trees over real IPMI hops
// ---------------------------------------------------------------------------

// A leaf that adopts any in-range budget immediately (a node whose BMC
// acks synchronously); its enforced budget is the tree's ground truth.
class LeafHolder : public fleet::BudgetHolder {
 public:
  LeafHolder() : budget_w_(110.0) {}

  double set_budget_target(double watts) override {
    budget_w_ = watts;
    return budget_w_;
  }
  ipmi::RackStatus status() override {
    ipmi::RackStatus s;
    s.enforced_w = budget_w_;
    s.committed_w = budget_w_;
    s.demand_w = budget_w_;
    s.floor_w = 110.0;
    s.ceiling_w = 400.0;
    s.nodes = 1;
    return s;
  }
  double budget_w() const { return budget_w_; }

 private:
  double budget_w_;
};

struct Tree {
  // groups[0] is the root; parents precede their subtrees (pre-order), so
  // iterating in order runs the control rounds top-down.
  std::vector<std::unique_ptr<fleet::BudgetGroup>> groups;
  std::vector<std::unique_ptr<LeafHolder>> leaves;
  std::vector<std::unique_ptr<fleet::BudgetEndpointServer>> servers;
  std::vector<std::unique_ptr<ipmi::LoopbackTransport>> loops;
  std::vector<std::unique_ptr<ipmi::FaultyTransport>> faulty;
  std::vector<std::unique_ptr<fleet::BudgetClient>> clients;

  double leaf_actual_sum() const {
    double sum = 0.0;
    for (const auto& leaf : leaves) sum += leaf->budget_w();
    return sum;
  }
};

fleet::BudgetHolder* build_tree(Tree& tree, Rng& rng, int levels) {
  if (levels == 0) {
    tree.leaves.push_back(std::make_unique<LeafHolder>());
    return tree.leaves.back().get();
  }
  tree.groups.push_back(std::make_unique<fleet::BudgetGroup>());
  fleet::BudgetGroup* group = tree.groups.back().get();
  const std::size_t fanout = 2 + rng.below(3);  // uneven 2..4
  for (std::size_t i = 0; i < fanout; ++i) {
    fleet::BudgetHolder* child = build_tree(tree, rng, levels - 1);
    tree.servers.push_back(std::make_unique<fleet::BudgetEndpointServer>(*child));
    fleet::BudgetEndpointServer* server = tree.servers.back().get();
    tree.loops.push_back(std::make_unique<ipmi::LoopbackTransport>(
        [server](std::span<const std::uint8_t> frame) {
          return server->handle_frame(frame);
        }));
    ipmi::Transport* link = tree.loops.back().get();
    if (rng.uniform() < 0.5) {  // half the hops are lossy
      ipmi::FaultSpec spec;
      spec.drop_rate = 0.05;
      spec.duplicate_rate = 0.02;
      spec.corrupt_rate = 0.02;
      tree.faulty.push_back(std::make_unique<ipmi::FaultyTransport>(
          *tree.loops.back(), spec, rng()));
      link = tree.faulty.back().get();
    }
    tree.clients.push_back(
        std::make_unique<fleet::BudgetClient>(*link, pcap::util::BackoffPolicy{},
                                              25.0, rng()));
    while (!tree.clients.back()->attach()) {
    }
    group->add_child(tree.clients.back().get());
  }
  return group;
}

TEST(FleetTree, RandomizedTopologyBudgetConservation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 0x9E3779B9u + 7);
    const int levels = 2 + static_cast<int>(rng.below(3));  // 2..4
    Tree tree;
    build_tree(tree, rng, levels);
    fleet::BudgetGroup& root = *tree.groups[0];
    const std::size_t leaf_count = tree.leaves.size();
    const double floor_sum = 110.0 * static_cast<double>(leaf_count);
    const double high = floor_sum + 150.0 * static_cast<double>(leaf_count);
    const double low = floor_sum + 30.0 * static_cast<double>(leaf_count);

    // One scripted partition on a random faulty hop, opened inside the
    // flat low-budget window.
    ipmi::FaultyTransport* cut =
        tree.faulty.empty()
            ? nullptr
            : tree.faulty[rng.below(tree.faulty.size())].get();

    bool saw_lost = false;
    for (int tick = 0; tick < 300; ++tick) {
      const double target = (tick >= 100 && tick < 200) ? low : high;
      if (tick == 120 && cut != nullptr) cut->partition_for(400);
      root.set_target(target);
      for (auto& group : tree.groups) {
        const fleet::CouplerRound round = group->run_round();
        // Conservation at this level, this tick, regardless of faults.
        EXPECT_LE(round.committed_w, round.enforced_w + kTol)
            << "seed " << seed << " tick " << tick;
        saw_lost = saw_lost || round.lost_children > 0;
      }
      // Ground truth: what the leaves actually enforce never exceeds the
      // budget the root guarantees.
      EXPECT_LE(tree.leaf_actual_sum(), root.enforced_w() + kTol)
          << "seed " << seed << " tick " << tick;
      // The partition opened during a flat window: committed stays within
      // the (unchanged) target throughout the episode.
      if (tick >= 130 && tick < 195) {
        EXPECT_LE(root.coupler().committed_w(), target + kTol)
            << "seed " << seed << " tick " << tick;
      }
    }
    if (cut != nullptr) EXPECT_TRUE(saw_lost) << "seed " << seed;

    // Fully healed and re-raised: every level reconverges at its target.
    for (auto& group : tree.groups) {
      const fleet::CouplerRound round = group->run_round();
      EXPECT_TRUE(round.converged) << "seed " << seed;
      EXPECT_NEAR(round.enforced_w, round.target_w, kTol) << "seed " << seed;
    }
    EXPECT_LE(tree.leaf_actual_sum(), root.enforced_w() + kTol);
  }
}

// ---------------------------------------------------------------------------
// Whole-fleet runs
// ---------------------------------------------------------------------------

fleet::FleetConfig small_fleet_config() {
  fleet::FleetConfig config;
  config.rack_nodes = {3, 2};
  config.seed = 42;
  config.cap_grid_w = 8.0;
  config.schedule = fleet::BudgetSchedule(5 * 160.0);
  config.schedule.add_phase(3e-3, 5 * 124.0);   // shrink
  config.schedule.add_phase(6e-3, 5 * 160.0);   // restore
  config.schedule.add_event(4e-3, 5e-3, 5 * 120.0);  // DR dip
  ipmi::FaultSpec faults;
  faults.drop_rate = 0.02;
  faults.duplicate_rate = 0.01;
  faults.corrupt_rate = 0.01;
  config.node_faults = faults;
  config.rack_faults = faults;
  fleet::FleetConfig::PartitionEpisode episode;
  episode.rack = 1;
  episode.start_s = 4.5e-3;
  episode.transactions = 120;
  config.partitions.push_back(episode);
  for (int t = 0; t < 2; ++t) {
    fleet::TenantSpec tenant;
    tenant.name = "t" + std::to_string(t);
    tenant.weight = t == 0 ? 2.0 : 1.0;
    tenant.arrivals.job_count = 8;
    tenant.arrivals.mean_interarrival_s = 200e-6;
    tenant.arrivals.min_chunks = 3;
    tenant.arrivals.max_chunks = 6;
    tenant.arrivals.class_weights = {1.0, 1.0, 0.5, 0.0};
    tenant.arrivals.seed = 100 + static_cast<std::uint64_t>(t);
    config.tenants.push_back(tenant);
  }
  return config;
}

TEST(Fleet, SmallRunCompletesAndConserves) {
  fleet::DatacenterManager dc(small_fleet_config());
  const fleet::FleetResult result = dc.run();

  EXPECT_EQ(result.dc_over_enforced_ticks, 0u);
  EXPECT_EQ(result.rack_over_enforced_ticks, 0u);
  EXPECT_EQ(result.actual_over_enforced_ticks, 0u);
  ASSERT_EQ(result.jobs.size(), 16u);
  for (const sched::JobRecord& record : result.jobs) {
    EXPECT_TRUE(record.done()) << "job " << record.spec.id;
    EXPECT_GE(record.finish_s, 0.0);
    EXPECT_GT(record.energy_j, 0.0);
  }
  EXPECT_EQ(result.admitted, 16u);
  EXPECT_GT(result.chunks, 0u);
  EXPECT_GT(result.ticks, 0u);
  // The shrink phase throttles admission for a while.
  EXPECT_GT(result.admission_deferrals, 0u);
  // Telemetry fan-in saw both racks.
  ASSERT_FALSE(result.fleet_series.bins.empty());
  std::size_t max_nodes = 0;
  for (const auto& bin : result.fleet_series.bins) {
    max_nodes = std::max(max_nodes, bin.nodes);
  }
  EXPECT_EQ(max_nodes, 5u);
  EXPECT_NE(result.schedule_digest(), 0u);
}

TEST(Fleet, ScheduleBitIdenticalAcrossJobsAndMemo) {
  std::optional<std::uint64_t> want;
  for (const std::size_t jobs : {1u, 3u, 7u}) {
    for (const bool memo : {true, false}) {
      if (!memo && jobs == 3) continue;  // redundant cell
      fleet::FleetConfig config = small_fleet_config();
      config.jobs = jobs;
      config.memo = memo;
      fleet::DatacenterManager dc(config);
      const std::uint64_t digest = dc.run().schedule_digest();
      if (!want.has_value()) {
        want = digest;
      } else {
        EXPECT_EQ(digest, *want) << "jobs=" << jobs << " memo=" << memo;
      }
    }
  }
}

TEST(Fleet, Headline1000NodeInvariantUnderFaultsAndPartition) {
  fleet::FleetConfig config;
  // 3-level tree (datacenter -> rack -> node), uneven fan-out, 1000 nodes.
  config.rack_nodes.clear();
  for (int i = 0; i < 24; ++i) config.rack_nodes.push_back(31);
  for (int i = 0; i < 8; ++i) config.rack_nodes.push_back(32);
  config.seed = 7;
  config.jobs = 4;
  config.cap_grid_w = 16.0;
  config.admission_min_node_w = 135.0;
  config.schedule = fleet::BudgetSchedule(1000 * 150.0);
  config.schedule.add_phase(2e-3, 1000 * 118.0);  // shrink: admission bites
  config.schedule.add_phase(5e-3, 1000 * 150.0);  // restore
  ipmi::FaultSpec node_faults;
  node_faults.drop_rate = 0.01;
  config.node_faults = node_faults;
  ipmi::FaultSpec rack_faults;
  rack_faults.drop_rate = 0.02;
  rack_faults.duplicate_rate = 0.01;
  rack_faults.corrupt_rate = 0.01;
  config.rack_faults = rack_faults;
  fleet::FleetConfig::PartitionEpisode episode;
  episode.rack = 2;
  episode.start_s = 2.5e-3;  // inside the flat shrink window
  episode.transactions = 400;
  config.partitions.push_back(episode);
  const double weights[3] = {2.0, 1.0, 1.0};
  for (int t = 0; t < 3; ++t) {
    fleet::TenantSpec tenant;
    tenant.name = "tenant" + std::to_string(t);
    tenant.weight = weights[t];
    tenant.arrivals.job_count = 24;
    tenant.arrivals.mean_interarrival_s = 100e-6;
    tenant.arrivals.min_chunks = 4;
    tenant.arrivals.max_chunks = 8;
    tenant.arrivals.class_weights = {1.0, 1.0, 0.5, 0.0};
    tenant.arrivals.seed = 1000 + static_cast<std::uint64_t>(t);
    config.tenants.push_back(tenant);
  }

  fleet::DatacenterManager dc(config);
  ASSERT_EQ(dc.node_count(), 1000u);
  const fleet::FleetResult result = dc.run();

  // The invariant: at every tree level, at every tick, committed budget
  // (child grants + reservations) never exceeded the enforced budget —
  // and the ground-truth node caps never exceeded the rack budgets.
  EXPECT_EQ(result.dc_over_enforced_ticks, 0u);
  EXPECT_EQ(result.rack_over_enforced_ticks, 0u);
  EXPECT_EQ(result.actual_over_enforced_ticks, 0u);
  // Transient committed > target (decrease converging / mid-partition) is
  // allowed but bounded: the tree must not be stuck above target.
  EXPECT_LT(result.dc_over_target_ticks, result.ticks / 2);

  // The partition episode was observed at the datacenter level and the
  // lost rack's budget was reserved, not reclaimed.
  bool saw_lost = false;
  for (const fleet::LevelTick& tick : result.dc_ticks) {
    if (tick.lost_children > 0) {
      saw_lost = true;
      EXPECT_GT(tick.reserved_w, 0.0);
    }
  }
  EXPECT_TRUE(saw_lost);

  // All 72 jobs from 3 tenants completed despite the chaos.
  ASSERT_EQ(result.jobs.size(), 72u);
  for (const sched::JobRecord& record : result.jobs) {
    EXPECT_TRUE(record.done()) << "job " << record.spec.id;
  }
  for (const fleet::TenantStats& tenant : result.tenants) {
    EXPECT_EQ(tenant.completed, tenant.jobs) << tenant.name;
    EXPECT_GT(tenant.chunks, 0u) << tenant.name;
  }

  // The coarse cap grid keeps the memo key set tiny at fleet scale.
  EXPECT_GT(result.memo_hits, result.memo_misses);

  // Telemetry fan-in covered the whole fleet.
  ASSERT_FALSE(result.fleet_series.bins.empty());
  std::size_t max_nodes = 0;
  for (const auto& bin : result.fleet_series.bins) {
    max_nodes = std::max(max_nodes, bin.nodes);
  }
  EXPECT_EQ(max_nodes, 1000u);
  ASSERT_EQ(result.rack_series.size(), 32u);
}

}  // namespace
