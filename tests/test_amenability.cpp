// Tests for the amenability analyzer (the paper's §V future-work
// methodology, implemented in core).
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "core/amenability.hpp"
#include "core/capped_runner.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"

namespace pcap::core {
namespace {

AmenabilityReport analyze(sim::Workload& workload,
                          std::initializer_list<double> caps,
                          double tolerance = 1.25) {
  sim::Node node(sim::MachineConfig::romley());
  CappedRunner runner(node);
  AmenabilityOptions options;
  options.slowdown_tolerance = tolerance;
  AmenabilityAnalyzer analyzer(options);
  const std::vector<double> grid(caps);
  return analyzer.analyze(runner, workload, grid);
}

TEST(Amenability, BaselineAndPointsPopulated) {
  apps::ComputeBoundWorkload work(800000);
  const AmenabilityReport report = analyze(work, {150.0, 135.0, 125.0});
  EXPECT_GT(report.baseline_power_w, 130.0);
  EXPECT_GT(report.baseline_time, 0u);
  EXPECT_GT(report.baseline_energy_j, 0.0);
  ASSERT_EQ(report.points.size(), 3u);
  EXPECT_DOUBLE_EQ(report.points[0].cap_w, 150.0);
}

TEST(Amenability, SlowdownGrowsAsCapDrops) {
  // Long enough that the controller's descent transient is amortised.
  apps::ComputeBoundWorkload work(6000000);
  const AmenabilityReport report =
      analyze(work, {150.0, 140.0, 130.0, 122.0});
  double last = 0.99;
  for (const auto& p : report.points) {
    EXPECT_GE(p.slowdown, last * 0.98) << "cap " << p.cap_w;
    last = p.slowdown;
  }
  EXPECT_GT(report.points.back().slowdown, 2.0);
}

TEST(Amenability, UsableFloorHonoursTolerance) {
  apps::ComputeBoundWorkload work(800000);
  const AmenabilityReport report =
      analyze(work, {150.0, 140.0, 130.0, 122.0}, /*tolerance=*/1.25);
  ASSERT_GT(report.usable_cap_floor_w, 0.0);
  // The floor cap itself must satisfy the tolerance...
  for (const auto& p : report.points) {
    if (p.cap_w == report.usable_cap_floor_w) {
      EXPECT_LE(p.slowdown, 1.25);
    }
    // ...and no admissible cap below it exists.
    if (p.cap_w < report.usable_cap_floor_w) {
      EXPECT_GT(p.slowdown, 1.25);
    }
  }
}

TEST(Amenability, DetectsMissedCaps) {
  apps::ComputeBoundWorkload work(600000);
  const AmenabilityReport report = analyze(work, {150.0, 112.0});
  EXPECT_TRUE(report.points[0].cap_met);
  EXPECT_FALSE(report.points[1].cap_met);  // below the throttling floor
}

TEST(Amenability, EnergyRatioTracksSlowdownDirection) {
  apps::ComputeBoundWorkload work(800000);
  const AmenabilityReport report = analyze(work, {130.0});
  EXPECT_GT(report.points[0].energy_ratio, 1.0);
  EXPECT_LT(report.points[0].energy_ratio, report.points[0].slowdown);
}

TEST(Amenability, RanksMemoryBoundAsMoreAmenable) {
  // The paper's central asymmetry: a memory-latency-bound code tolerates
  // capping better than a compute-bound one (DVFS hurts it less).
  apps::MemoryBoundWorkload streaming(48ull << 20, 250000);
  apps::ComputeBoundWorkload compute(2500000);
  const AmenabilityReport mem_report = analyze(streaming, {145.0, 135.0});
  const AmenabilityReport cpu_report = analyze(compute, {145.0, 135.0});
  EXPECT_LT(mem_report.sensitivity_index, cpu_report.sensitivity_index);
}

TEST(Amenability, EmptyGridYieldsEmptyReport) {
  apps::ComputeBoundWorkload work(200000);
  const AmenabilityReport report = analyze(work, {});
  EXPECT_TRUE(report.points.empty());
  EXPECT_EQ(report.usable_cap_floor_w, 0.0);
  EXPECT_EQ(report.sensitivity_index, 0.0);
}

}  // namespace
}  // namespace pcap::core
