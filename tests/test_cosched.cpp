// Per-lane co-scheduling on SMP nodes (DESIGN.md §13): the invariants the
// lane-aware scheduler adds on top of test_scheduler.cpp.
//  * lanes_per_node = 1 — and a two-lane rack with no queue pressure —
//    reproduce the classic one-job-per-node schedule;
//  * co-scheduled runs are bit-identical across the `jobs` parallelism
//    knob and the `memo` knob, and co-run cells genuinely replay;
//  * a co-run cell is a pure function of its key, and contention inside a
//    cell is emergent (a cache-resident chunk really runs slower next to a
//    streaming thrasher) — never assumed;
//  * the budget invariant holds with lossy links while lanes co-run;
//  * deadline semantics: feasible deadlines are met, impossible deadlines
//    miss deterministically, and the deadline policy degenerates to the
//    uniform baseline on a deadline-free stream;
//  * every shipped policy either consumes deadline_s
//    (consumes_deadlines() == true) or provably ignores it: its plan is
//    invariant under stripping every deadline from the input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "sched/amenability_table.hpp"
#include "sched/arrivals.hpp"
#include "sched/chunk_cache.hpp"
#include "sched/job.hpp"
#include "sched/policy.hpp"
#include "sched/power_model.hpp"
#include "sched/scheduler.hpp"
#include "util/units.hpp"

namespace pcap::sched {
namespace {

AmenabilityTable synthetic_table() {
  AmenabilityTable table;
  const double steep[] = {10.5, 11.4, 3.0, 16.7};
  for (int c = 0; c < kJobClassCount; ++c) {
    ClassCurve curve;
    curve.cls = static_cast<JobClass>(c);
    curve.baseline_power_w = 155.0;
    curve.baseline_time_s = 450e-6;
    curve.usable_floor_w = 135.0;
    for (const double cap : {115.0, 125.0, 135.0, 150.0}) {
      core::AmenabilityPoint p;
      p.cap_w = cap;
      p.measured_power_w = std::min(cap, 155.0);
      const double depth = std::max(0.0, 135.0 - cap) / 15.0;
      p.slowdown = 1.0 + (steep[c] - 1.0) * depth;
      p.energy_ratio = p.slowdown * p.measured_power_w / 155.0;
      curve.points.push_back(p);
    }
    table.set_curve(curve);
  }
  return table;
}

std::vector<JobSpec> mixed_stream(int jobs, double deadline_fraction = 0.0,
                                  double deadline_factor = 2.0) {
  ArrivalConfig config;
  config.job_count = jobs;
  config.min_chunks = 2;
  config.max_chunks = 4;
  config.class_weights = {1.0, 1.0, 0.0, 0.0};  // stereo + SIRE mix
  config.deadline_fraction = deadline_fraction;
  config.deadline_factor = deadline_factor;
  config.seed = 17;
  return generate_stream(config);
}

SchedulerConfig lane_config(const AmenabilityTable* table, double budget_w,
                            const std::string& policy,
                            std::size_t lanes_per_node) {
  SchedulerConfig config;
  config.node_count = 3;
  config.lanes_per_node = lanes_per_node;
  config.budget_w = budget_w;
  config.policy_name = policy;
  config.seed = 17;
  config.table = table;
  return config;
}

void expect_results_identical(const ScheduleResult& a,
                              const ScheduleResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].node, b.jobs[i].node) << "job " << i;
    EXPECT_EQ(a.jobs[i].lane, b.jobs[i].lane) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].start_s, b.jobs[i].start_s) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_s, b.jobs[i].finish_s) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].energy_j, b.jobs[i].energy_j) << "job " << i;
    EXPECT_EQ(a.jobs[i].corun_chunks, b.jobs[i].corun_chunks) << "job " << i;
    EXPECT_EQ(a.jobs[i].missed_deadline, b.jobs[i].missed_deadline);
  }
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (std::size_t i = 0; i < a.ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ticks[i].t_s, b.ticks[i].t_s) << "tick " << i;
    EXPECT_DOUBLE_EQ(a.ticks[i].cap_sum_w, b.ticks[i].cap_sum_w);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.chunks, b.chunks);
  EXPECT_EQ(a.corun_chunks, b.corun_chunks);
}

void expect_all_done(const ScheduleResult& result, std::size_t jobs) {
  ASSERT_EQ(result.jobs.size(), jobs);
  for (const JobRecord& job : result.jobs) {
    EXPECT_TRUE(job.done()) << "job " << job.spec.id;
    EXPECT_GE(job.node, 0);
  }
}

void expect_budget_invariant(const ScheduleResult& result) {
  EXPECT_EQ(result.budget_violations, 0u);
  ASSERT_FALSE(result.ticks.empty());
  for (const TickRecord& tick : result.ticks) {
    EXPECT_LE(tick.cap_sum_w, result.budget_w + 1e-3)
        << "tick at t=" << tick.t_s;
  }
}

// --- lane semantics -------------------------------------------------------

TEST(CoSchedTest, SecondLaneIsInertWithoutQueuePressure) {
  // Three jobs on three nodes: the lane-major fill never reaches lane 1,
  // so a two-lane rack must reproduce the one-lane schedule bit-exactly.
  const AmenabilityTable table = synthetic_table();
  const auto stream = mixed_stream(3);
  const ScheduleResult one =
      ClusterScheduler(lane_config(&table, 450.0, "amenability", 1))
          .run(stream);
  const ScheduleResult two =
      ClusterScheduler(lane_config(&table, 450.0, "amenability", 2))
          .run(stream);
  expect_all_done(one, stream.size());
  expect_results_identical(one, two);
  EXPECT_EQ(two.corun_chunks, 0u);
  EXPECT_EQ(two.corun_cells, 0u);
}

TEST(CoSchedTest, CoScheduledRunIsBitIdenticalAcrossJobsAndMemo) {
  // Nine jobs on three two-lane nodes: the queue forces co-residency.
  const AmenabilityTable table = synthetic_table();
  const auto stream = mixed_stream(9);

  SchedulerConfig base = lane_config(&table, 520.0, "contention", 2);
  base.jobs = 1;
  SchedulerConfig threaded = base;
  threaded.jobs = 4;
  SchedulerConfig no_memo = base;
  no_memo.memo = false;

  const ScheduleResult a = ClusterScheduler(base).run(stream);
  const ScheduleResult b = ClusterScheduler(threaded).run(stream);
  const ScheduleResult c = ClusterScheduler(no_memo).run(stream);
  expect_all_done(a, stream.size());
  expect_budget_invariant(a);
  expect_results_identical(a, b);
  expect_results_identical(a, c);

  // The schedule genuinely co-ran chunks, and the memo replayed cells.
  EXPECT_GT(a.corun_chunks, 0u);
  EXPECT_GT(a.corun_cells, 0u);
  EXPECT_GT(a.memo_hits, 0u);
  EXPECT_EQ(a.memo_hits + a.memo_misses, a.chunks);
  EXPECT_EQ(c.memo_hits, 0u);
  // Without the memo every distinct cell re-simulates, but within-round
  // deduplication keeps the schedule identical.
  EXPECT_GE(c.corun_cells, a.corun_cells);
}

TEST(CoSchedTest, BudgetInvariantHoldsUnderFaultsWhileCoRunning) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = mixed_stream(8);
  SchedulerConfig config = lane_config(&table, 480.0, "contention", 2);
  ipmi::FaultSpec faults;
  faults.drop_rate = 0.10;
  faults.duplicate_rate = 0.05;
  faults.corrupt_rate = 0.05;
  config.faults = faults;

  ClusterScheduler scheduler(config);
  ASSERT_NE(scheduler.fault_link(1), nullptr);
  scheduler.fault_link(1)->partition_for(60);

  const ScheduleResult result = scheduler.run(stream);
  expect_all_done(result, stream.size());
  expect_budget_invariant(result);
  EXPECT_GT(result.corun_chunks, 0u);
  EXPECT_GT(result.mgmt_retries + result.mgmt_failed_exchanges, 0u);
}

// --- the co-run cell ------------------------------------------------------

TEST(CoSchedTest, CoRunCellIsPureAndContentionIsEmergent) {
  const sim::MachineConfig machine = sim::MachineConfig::romley();
  const core::BmcConfig bmc;
  const util::Picoseconds quantum = util::microseconds(5);

  CoRunKey key;
  key.cap_bits = ChunkKey::encode_cap(std::nullopt);
  CoRunMember stereo;
  stereo.cls = JobClass::kStereoLike;
  stereo.identity = chunk_identity(JobClass::kStereoLike, 3, 0);
  stereo.seed = 3;
  CoRunMember sire;
  sire.cls = JobClass::kSireLike;
  sire.identity = chunk_identity(JobClass::kSireLike, 4, 0);
  sire.seed = 4;
  key.members = {sire, stereo};  // key_less order: kSireLike < kStereoLike
  ASSERT_TRUE(key_less(key.members[0], key.members[1]));

  // Pure function of the key: member rebuild material with the same
  // (cls, identity) must not matter, and repeats are bit-identical.
  const auto a = simulate_corun_cell(machine, bmc, key, 17, quantum);
  CoRunKey same = key;
  same.members[0].seed = 99;       // same identity, different seed
  same.members[0].chunk_index = 7;
  ASSERT_TRUE(key == same);
  const auto b = simulate_corun_cell(machine, bmc, same, 17, quantum);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].elapsed, b[i].elapsed);
    EXPECT_EQ(a[i].energy_j, b[i].energy_j);
  }

  // Emergent contention: the chunks are individually small enough that the
  // 20 MB shared L3 absorbs both footprints, so UNCAPPED co-residency is
  // nearly free — but under a package cap at the knee the BMC sees the
  // SUMMED draw of both residents and throttles the shared package deeper
  // than it would for either alone. Next to the streaming SIRE chunk the
  // stereo chunk must therefore run far slower than its own solo time at
  // the *same* enforced cap. No interference factor is applied anywhere:
  // the slowdown falls out of the modelled throttle ladder.
  constexpr double kKneeCapW = 135.0;
  CoRunKey knee = key;
  knee.cap_bits = ChunkKey::encode_cap(kKneeCapW);
  const auto k135 = simulate_corun_cell(machine, bmc, knee, 17, quantum);
  ChunkKey solo_stereo;
  solo_stereo.cls = JobClass::kStereoLike;
  solo_stereo.identity = stereo.identity;
  solo_stereo.cap_bits = knee.cap_bits;
  const ChunkResult solo =
      simulate_chunk(machine, bmc, solo_stereo, 3, 0, 17);
  EXPECT_GT(k135[1].elapsed, solo.elapsed + solo.elapsed / 2)
      << "co-run at the knee cap should cost the stereo chunk >1.5x solo";

  // Per-member energy shares are the busy-time attribution of one package
  // meter: positive, and their sum is the cell's package energy (checked
  // loosely — the report's total is not returned here, but shares must at
  // least exceed each member's share of nothing).
  EXPECT_GT(a[0].energy_j, 0.0);
  EXPECT_GT(a[1].energy_j, 0.0);

  // The cap is part of the key: a deep cap changes the cell.
  CoRunKey capped = key;
  capped.cap_bits = ChunkKey::encode_cap(120.0);
  EXPECT_FALSE(key == capped);
  const auto c = simulate_corun_cell(machine, bmc, capped, 17, quantum);
  EXPECT_GT(c[0].elapsed, a[0].elapsed);
  EXPECT_GT(c[1].elapsed, a[1].elapsed);
}

// --- deadline semantics ---------------------------------------------------

TEST(CoSchedTest, FeasibleDeadlinesAreMetByTheDeadlinePolicy) {
  const AmenabilityTable table = synthetic_table();
  // Every job carries a deadline 200x its uncapped duration: feasible even
  // while queueing, so the deadline policy must not miss any.
  const auto stream = mixed_stream(8, 1.0, 200.0);
  const ScheduleResult result =
      ClusterScheduler(lane_config(&table, 480.0, "deadline", 2))
          .run(stream);
  expect_all_done(result, stream.size());
  expect_budget_invariant(result);
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(CoSchedTest, ImpossibleDeadlinesMissDeterministically) {
  const AmenabilityTable table = synthetic_table();
  // Deadlines at 5% of an uncapped chunk's duration cannot be met by any
  // schedule; the misses must be total and reproducible.
  const auto stream = mixed_stream(6, 1.0, 0.05);
  const ScheduleResult a =
      ClusterScheduler(lane_config(&table, 480.0, "deadline", 2))
          .run(stream);
  const ScheduleResult b =
      ClusterScheduler(lane_config(&table, 480.0, "deadline", 2))
          .run(stream);
  expect_all_done(a, stream.size());
  EXPECT_EQ(a.deadline_misses, static_cast<int>(stream.size()));
  for (const JobRecord& job : a.jobs) {
    EXPECT_TRUE(job.missed_deadline);
  }
  expect_results_identical(a, b);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
}

TEST(CoSchedTest, DeadlinePolicyDegeneratesToUniformWithoutDeadlines) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = mixed_stream(8);  // no deadlines anywhere
  const ScheduleResult uniform =
      ClusterScheduler(lane_config(&table, 480.0, "uniform", 2))
          .run(stream);
  const ScheduleResult deadline =
      ClusterScheduler(lane_config(&table, 480.0, "deadline", 2))
          .run(stream);
  expect_all_done(uniform, stream.size());
  expect_results_identical(uniform, deadline);
}

// --- the deadline contract across every shipped policy --------------------

PlanInput deadline_rich_input(const AmenabilityTable* table,
                              const OnlinePowerModel* model) {
  PlanInput input;
  input.budget_w = 700.0;
  input.now_s = 2e-3;
  input.lanes_per_node = 2;
  input.table = table;
  input.model = model;
  for (std::size_t i = 0; i < 4; ++i) {
    NodeView view;
    view.index = i;
    view.applied_cap_w = 130.0;
    for (std::size_t l = 0; l < 2; ++l) {
      LaneView lane;
      lane.lane = l;
      lane.busy = (i + l) % 2 == 0;
      if (lane.busy) {
        lane.cls = static_cast<JobClass>((i + l) % kJobClassCount);
        lane.remaining_chunks = static_cast<int>(1 + i);
        lane.deadline_s = 1e-3 * static_cast<double>(i + 1);
        if (!view.busy) {
          view.busy = true;
          view.cls = lane.cls;
        }
        view.remaining_chunks =
            std::max(view.remaining_chunks, lane.remaining_chunks);
        if (!view.deadline_s || *lane.deadline_s < *view.deadline_s) {
          view.deadline_s = lane.deadline_s;
        }
      }
      view.lanes.push_back(lane);
    }
    input.nodes.push_back(view);
  }
  // Deliberately NOT earliest-deadline-first: the second queued job holds
  // the tightest (already-missed) deadline, so a deadline-aware planner
  // must reorder the queue while a deadline-blind one keeps FIFO.
  input.queued.push_back({JobClass::kStereoLike, 4, 4e-3});
  input.queued.push_back({JobClass::kSireLike, 3, 5e-4});
  input.queued.push_back({JobClass::kPhased, 2, std::nullopt});
  return input;
}

PlanInput strip_deadlines(PlanInput input) {
  for (NodeView& node : input.nodes) {
    node.deadline_s.reset();
    for (LaneView& lane : node.lanes) lane.deadline_s.reset();
  }
  for (PlanInput::QueuedJob& job : input.queued) job.deadline_s.reset();
  return input;
}

void expect_plans_equal(const Plan& a, const Plan& b,
                        const std::string& name) {
  ASSERT_EQ(a.cap_w.size(), b.cap_w.size()) << name;
  for (std::size_t i = 0; i < a.cap_w.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.cap_w[i], b.cap_w[i]) << name << " node " << i;
    EXPECT_EQ(a.admit[i], b.admit[i]) << name << " node " << i;
  }
  EXPECT_EQ(a.placement, b.placement) << name;
}

TEST(CoSchedTest, EveryPolicyConsumesDeadlinesOrProvablyIgnoresThem) {
  const AmenabilityTable table = synthetic_table();
  OnlinePowerModel model;
  model.set_table(&table);
  const PlanInput with = deadline_rich_input(&table, &model);
  const PlanInput without = strip_deadlines(with);

  bool any_consumer = false;
  for (const std::string& name : policy_names()) {
    auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    if (policy->consumes_deadlines()) {
      // The consumer must actually read them: documented as the deadline
      // policy's whole point, and pinned here so a future policy cannot
      // claim consumption while ignoring the field.
      any_consumer = true;
      EXPECT_EQ(name, "deadline");
      continue;
    }
    // Non-consumers must plan identically with and without deadlines —
    // "ignoring deadline_s" is a mechanical property, not a comment.
    auto fresh = make_policy(name);
    expect_plans_equal(policy->plan(with), fresh->plan(without), name);
  }
  EXPECT_TRUE(any_consumer);
}

TEST(CoSchedTest, DeadlinePolicyActuallyConsumesDeadlines) {
  const AmenabilityTable table = synthetic_table();
  OnlinePowerModel model;
  model.set_table(&table);
  auto policy = make_policy("deadline");
  ASSERT_TRUE(policy->consumes_deadlines());

  // With deadlines the urgency fill and/or EDF placement must deviate
  // somewhere across budgets; identical plans everywhere would mean the
  // field is dead weight.
  bool any_difference = false;
  for (const double budget : {560.0, 700.0, 900.0}) {
    PlanInput with = deadline_rich_input(&table, &model);
    with.budget_w = budget;
    const PlanInput without = strip_deadlines(with);
    const Plan a = make_policy("deadline")->plan(with);
    const Plan b = make_policy("deadline")->plan(without);
    if (a.cap_w != b.cap_w || a.placement != b.placement) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace pcap::sched
