// Correctness tests for the HPC kernel suite (host arithmetic verified
// against references; simulated runs must produce identical results).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/kernels/kernels.hpp"
#include "apps/machine.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace pcap::apps::kernels {
namespace {

TEST(Gemm, MatchesNaiveReference) {
  const int n = 48;  // not a multiple of the block size
  util::Rng rng(1);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size());
  for (auto& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> blocked(a.size(), 0.0f);
  HostMachine m;
  gemm_blocked(m, n, a.data(), b.data(), blocked.data(), 0, 0, 0, 16);

  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      float ref = 0.0f;
      for (int k = 0; k < n; ++k) {
        ref += a[static_cast<std::size_t>(i) * n + k] *
               b[static_cast<std::size_t>(k) * n + j];
      }
      ASSERT_NEAR(blocked[static_cast<std::size_t>(i) * n + j], ref, 1e-3)
          << i << "," << j;
    }
  }
}

TEST(Gemm, WorkloadRunsOnSimulator) {
  GemmWorkload w(64);
  sim::Node node(sim::MachineConfig::romley());
  const sim::RunReport r = node.run(w);
  EXPECT_GT(r.counter(pmu::Event::kTotIns), 100000u);
  EXPECT_EQ(w.result().size(), 64u * 64u);
  // Compute-bound profile: very few DRAM accesses relative to instructions.
  EXPECT_LT(r.counter(pmu::Event::kDramAcc) * 100,
            r.counter(pmu::Event::kTotIns));
}

TEST(Stencil, ConvergesTowardLaplaceSolution) {
  // With a hot top edge, repeated Jacobi sweeps diffuse heat downward; the
  // interior row below the edge must warm monotonically with iterations.
  std::vector<float> grid(32 * 32, 0.0f);
  for (int x = 0; x < 32; ++x) grid[static_cast<std::size_t>(x)] = 100.0f;
  HostMachine m;
  const auto after2 = jacobi_stencil(m, 32, 32, 2, grid, 0, 0);
  const auto after20 = jacobi_stencil(m, 32, 32, 20, grid, 0, 0);
  const std::size_t probe = 5 * 32 + 16;  // row 5, centre
  EXPECT_GT(after20[probe], after2[probe]);
  EXPECT_GT(after20[probe], 0.5f);
  // Boundary pinned.
  EXPECT_FLOAT_EQ(after20[16], 100.0f);
  // Maximum principle: interior never exceeds the boundary maximum.
  for (float v : after20) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LE(v, 100.0f);
  }
}

TEST(Stencil, WorkloadIsBandwidthHeavy) {
  StencilWorkload w(512, 512, 3);
  sim::Node node(sim::MachineConfig::romley());
  const sim::RunReport r = node.run(w);
  EXPECT_GT(r.counter(pmu::Event::kL1Dca), 300000u);
  EXPECT_EQ(w.result().size(), 512u * 512u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<float>> data(64, {0.0f, 0.0f});
  data[0] = {1.0f, 0.0f};
  HostMachine m;
  fft_radix2(m, data, 0);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0f, 1e-4);
    EXPECT_NEAR(x.imag(), 0.0f, 1e-4);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 128;
  std::vector<std::complex<float>> data(n);
  const double k = 5.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * 3.14159265358979 * k * i / n;
    data[i] = {static_cast<float>(std::cos(phase)),
               static_cast<float>(std::sin(phase))};
  }
  HostMachine m;
  fft_radix2(m, data, 0);
  for (std::size_t bin = 0; bin < n; ++bin) {
    const float mag = std::abs(data[bin]);
    if (bin == 5) EXPECT_NEAR(mag, static_cast<float>(n), 1e-2);
    else EXPECT_NEAR(mag, 0.0f, 1e-2);
  }
}

TEST(Fft, RoundTripRecoversInput) {
  util::Rng rng(4);
  std::vector<std::complex<float>> data(256);
  for (auto& x : data) {
    x = {static_cast<float>(rng.uniform(-1.0, 1.0)),
         static_cast<float>(rng.uniform(-1.0, 1.0))};
  }
  const auto original = data;
  HostMachine m;
  fft_radix2(m, data, 0, /*inverse=*/false);
  fft_radix2(m, data, 0, /*inverse=*/true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-3);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-3);
  }
}

TEST(Fft, SimulatedRunMatchesHost) {
  FftWorkload w(10, 9);
  sim::Node node(sim::MachineConfig::romley());
  node.run(w);
  // Host reference from the same inputs.
  FftWorkload reference(10, 9);
  std::vector<std::complex<float>> host(1 << 10);
  {
    util::Rng rng(9);
    for (auto& x : host) {
      x = {static_cast<float>(rng.uniform(-1.0, 1.0)),
           static_cast<float>(rng.uniform(-1.0, 1.0))};
    }
    HostMachine m;
    fft_radix2(m, host, 0);
  }
  ASSERT_EQ(w.result().size(), host.size());
  for (std::size_t i = 0; i < host.size(); ++i) {
    ASSERT_EQ(w.result()[i], host[i]) << i;
  }
}

TEST(KernelProfiles, DistinctMemoryCharacters) {
  sim::Node node(sim::MachineConfig::romley());
  GemmWorkload gemm(96);
  StencilWorkload stencil(512, 512, 2);
  FftWorkload fft(14);

  const sim::RunReport g = node.run(gemm);
  const sim::RunReport s = node.run(stencil);
  const sim::RunReport f = node.run(fft);

  auto mpki = [](const sim::RunReport& r) {
    return 1000.0 * static_cast<double>(r.counter(pmu::Event::kL1Dcm)) /
           static_cast<double>(r.counter(pmu::Event::kTotIns));
  };
  // The stencil streams (high miss density); blocked GEMM reuses (low).
  EXPECT_LT(mpki(g), mpki(s));
  EXPECT_GT(mpki(f), 0.0);
}

}  // namespace
}  // namespace pcap::apps::kernels
