// Differential test layer for the cache/TLB fast paths: naive,
// obviously-correct reference models (recency lists, modular arithmetic, no
// MRU hints, no bulk accounting) are driven in lockstep with cache::Cache
// and cache::Tlb over seeded random and adversarial streams, asserting
// identical hit/miss/eviction sequences. This is what licenses the MRU
// fast-hit path and the note_* bulk accounting.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "cache/cache.hpp"
#include "cache/tlb.hpp"
#include "util/rng.hpp"

namespace pcap {
namespace {

using cache::Address;

// --- reference models -------------------------------------------------------

/// Set-associative true-LRU cache, the slow obvious way: one recency list
/// per set, most recently used at the front, evict from the back.
class ReferenceCache {
 public:
  struct Outcome {
    bool hit = false;
    std::optional<Address> evicted_line;
    bool evicted_dirty = false;
  };

  ReferenceCache(std::uint64_t sets, std::uint32_t ways,
                 std::uint32_t line_bytes)
      : sets_(sets), ways_(ways), line_bytes_(line_bytes), table_(sets) {}

  Outcome access(Address addr, bool is_write) {
    const Address tag = addr / line_bytes_;
    auto& set = table_[tag % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->tag == tag) {
        Line line = *it;
        line.dirty = line.dirty || is_write;
        set.erase(it);
        set.push_front(line);
        return {.hit = true, .evicted_line = std::nullopt,
                .evicted_dirty = false};
      }
    }
    Outcome out;
    if (is_write && !write_allocate_) return out;
    if (set.size() == ways_) {
      out.evicted_line = set.back().tag * line_bytes_;
      out.evicted_dirty = set.back().dirty;
      set.pop_back();
    }
    set.push_front({tag, is_write});
    return out;
  }

  void set_write_allocate(bool wa) { write_allocate_ = wa; }

 private:
  struct Line {
    Address tag = 0;
    bool dirty = false;
  };
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t line_bytes_;
  bool write_allocate_ = true;
  std::vector<std::deque<Line>> table_;
};

/// Fully-associative true-LRU TLB: a recency list of pages.
class ReferenceTlb {
 public:
  ReferenceTlb(std::uint32_t entries, std::uint32_t page_bytes)
      : entries_(entries), page_bytes_(page_bytes) {}

  bool lookup(std::uint64_t vaddr) {
    const std::uint64_t page = vaddr / page_bytes_;
    for (auto it = pages_.begin(); it != pages_.end(); ++it) {
      if (*it == page) {
        pages_.erase(it);
        pages_.push_front(page);
        return true;
      }
    }
    if (pages_.size() == entries_) pages_.pop_back();
    pages_.push_front(page);
    return false;
  }

  void flush() { pages_.clear(); }

 private:
  std::uint32_t entries_;
  std::uint32_t page_bytes_;
  std::deque<std::uint64_t> pages_;
};

// --- stream drivers ---------------------------------------------------------

struct Access {
  Address addr = 0;
  bool is_write = false;
};

void drive_cache(const cache::CacheConfig& config,
                 const std::vector<Access>& stream) {
  cache::Cache dut(config);
  ReferenceCache ref(config.sets(), config.ways, config.line_bytes);
  ref.set_write_allocate(config.write_allocate);

  std::uint64_t hits = 0;
  std::uint64_t evictions = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const auto [addr, is_write] = stream[i];
    const bool mru_before = dut.is_mru_hit(addr);
    const auto got = dut.access(addr, is_write);
    const auto want = ref.access(addr, is_write);
    ASSERT_EQ(got.hit, want.hit) << config.name << " op " << i;
    ASSERT_EQ(got.evicted_line, want.evicted_line) << config.name << " op "
                                                   << i;
    ASSERT_EQ(got.evicted_dirty, want.evicted_dirty)
        << config.name << " op " << i;
    // An MRU fast hit must be a subset of plain hits, and after any access
    // the touched line is the set's MRU line (when it was allocated).
    if (mru_before) {
      ASSERT_TRUE(got.hit) << config.name << " op " << i;
    }
    if (got.hit || !(is_write && !config.write_allocate)) {
      ASSERT_TRUE(dut.is_mru_hit(addr)) << config.name << " op " << i;
    }
    hits += got.hit ? 1 : 0;
    evictions += got.evicted_line.has_value() ? 1 : 0;
  }
  EXPECT_EQ(dut.stats().accesses, stream.size());
  EXPECT_EQ(dut.stats().hits, hits);
  EXPECT_EQ(dut.stats().misses, stream.size() - hits);
  EXPECT_EQ(dut.stats().evictions, evictions);
}

void drive_tlb(const cache::TlbConfig& config,
               const std::vector<std::uint64_t>& stream,
               std::uint32_t flush_every = 0) {
  cache::Tlb dut(config);
  ReferenceTlb ref(config.entries, config.page_bytes);
  std::uint64_t misses = 0;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    if (flush_every != 0 && i != 0 && i % flush_every == 0) {
      dut.flush();
      ref.flush();
    }
    const bool got = dut.lookup(stream[i]);
    const bool want = ref.lookup(stream[i]);
    ASSERT_EQ(got, want) << config.name << " op " << i;
    misses += got ? 0 : 1;
  }
  EXPECT_EQ(dut.stats().accesses, stream.size());
  EXPECT_EQ(dut.stats().misses, misses);
}

std::vector<Access> random_stream(std::uint64_t seed, std::size_t n,
                                  Address space, double store_fraction) {
  util::Rng rng(seed);
  std::vector<Access> stream;
  stream.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    stream.push_back({rng.below(space), rng.chance(store_fraction)});
  }
  return stream;
}

// Repeated strided passes, like the stride microbenchmark's probe loop.
std::vector<Access> stride_stream(Address array, Address stride,
                                  std::size_t passes) {
  std::vector<Access> stream;
  for (std::size_t p = 0; p < passes; ++p) {
    for (Address a = 0; a < array; a += stride) {
      stream.push_back({a, false});
      stream.push_back({a, true});
    }
  }
  return stream;
}

// All addresses map to one set: maximal replacement pressure.
std::vector<Access> same_set_stream(const cache::CacheConfig& config,
                                    std::uint64_t seed, std::size_t n) {
  const Address set_stride =
      config.sets() * config.line_bytes;  // same set, new tag
  util::Rng rng(seed);
  std::vector<Access> stream;
  for (std::size_t i = 0; i < n; ++i) {
    // Cycle over ways+3 distinct tags: persistent thrash with reuse.
    const Address tag = rng.below(config.ways + 3);
    stream.push_back({tag * set_stride + rng.below(config.line_bytes),
                      rng.chance(0.3)});
  }
  return stream;
}

// --- cache differentials ----------------------------------------------------

TEST(CacheReference, RandomStreamSmallCache) {
  // 4 sets x 2 ways over a tiny space: constant conflict pressure.
  cache::CacheConfig config{.name = "tiny", .size_bytes = 512,
                            .line_bytes = 64, .ways = 2};
  drive_cache(config, random_stream(11, 20000, 4096, 0.3));
}

TEST(CacheReference, RandomStreamL1Geometry) {
  cache::CacheConfig config{.name = "L1D", .size_bytes = 32 * 1024,
                            .line_bytes = 64, .ways = 8};
  drive_cache(config, random_stream(12, 30000, 96 * 1024, 0.4));
}

TEST(CacheReference, RandomStreamNoWriteAllocate) {
  cache::CacheConfig config{.name = "L1I", .size_bytes = 8 * 1024,
                            .line_bytes = 64, .ways = 4,
                            .write_allocate = false};
  drive_cache(config, random_stream(13, 20000, 32 * 1024, 0.5));
}

TEST(CacheReference, StrideStreams) {
  cache::CacheConfig config{.name = "L1D", .size_bytes = 32 * 1024,
                            .line_bytes = 64, .ways = 8};
  for (Address stride : {8ull, 64ull, 256ull, 4096ull}) {
    drive_cache(config, stride_stream(64 * 1024, stride, 3));
  }
}

TEST(CacheReference, SameSetThrash) {
  cache::CacheConfig config{.name = "L1D", .size_bytes = 32 * 1024,
                            .line_bytes = 64, .ways = 8};
  drive_cache(config, same_set_stream(config, 14, 20000));
}

TEST(CacheReference, MruBulkAccountingMatchesRepeatedAccesses) {
  cache::CacheConfig config{.name = "L1D", .size_bytes = 32 * 1024,
                            .line_bytes = 64, .ways = 8};
  cache::Cache bulk(config);
  cache::Cache loop(config);
  util::Rng rng(15);
  for (int round = 0; round < 2000; ++round) {
    const Address addr = rng.below(64 * 1024);
    const bool is_write = rng.chance(0.4);
    const std::uint64_t n = 1 + rng.below(16);
    // Keep both instances in lockstep: same leading access...
    ASSERT_EQ(bulk.access(addr, is_write).hit, loop.access(addr, is_write).hit);
    // ...then n repeats, bulk-accounted on one and looped on the other.
    ASSERT_TRUE(bulk.is_mru_hit(addr));
    ASSERT_TRUE(bulk.note_mru_hits(addr, is_write, n));
    for (std::uint64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(loop.access(addr, is_write).hit);
    }
    ASSERT_EQ(bulk.stats().accesses, loop.stats().accesses);
    ASSERT_EQ(bulk.stats().hits, loop.stats().hits);
    ASSERT_EQ(bulk.stats().misses, loop.stats().misses);
    ASSERT_EQ(bulk.stats().evictions, loop.stats().evictions);
  }
}

TEST(CacheReference, NoteMruHitsRefusesNonMruLines) {
  cache::CacheConfig config{.name = "L1D", .size_bytes = 512,
                            .line_bytes = 64, .ways = 2};
  cache::Cache c(config);
  c.access(0x0, false);
  c.access(0x200, false);  // same set (4 sets x 64 B), different line: now MRU
  const auto before = c.stats();
  EXPECT_FALSE(c.is_mru_hit(0x0));
  EXPECT_FALSE(c.note_mru_hits(0x0, false, 5));  // not MRU: must account nothing
  EXPECT_FALSE(c.note_mru_hits(0x1000, false, 5));  // not resident at all
  EXPECT_EQ(c.stats().accesses, before.accesses);
  EXPECT_EQ(c.stats().hits, before.hits);
  EXPECT_TRUE(c.is_mru_hit(0x200));
  EXPECT_TRUE(c.note_mru_hits(0x200, false, 5));
  EXPECT_EQ(c.stats().hits, before.hits + 5);
}

TEST(CacheReference, GatedWidthBehavesLikeNarrowCache) {
  // A cache gated to n ways must produce the same hit/miss/eviction
  // sequence as a fresh n-way cache of the same set geometry.
  cache::CacheConfig full{.name = "L2", .size_bytes = 16 * 1024,
                          .line_bytes = 64, .ways = 8};
  cache::Cache gated(full);
  gated.set_active_ways(3);
  gated.flush_all();  // start both from cold
  ReferenceCache ref(full.sets(), 3, full.line_bytes);
  util::Rng rng(16);
  for (int i = 0; i < 20000; ++i) {
    const Address addr = rng.below(64 * 1024);
    const bool is_write = rng.chance(0.3);
    const auto got = gated.access(addr, is_write);
    const auto want = ref.access(addr, is_write);
    ASSERT_EQ(got.hit, want.hit) << "op " << i;
    ASSERT_EQ(got.evicted_line, want.evicted_line) << "op " << i;
    ASSERT_EQ(got.evicted_dirty, want.evicted_dirty) << "op " << i;
  }
}

// --- TLB differentials ------------------------------------------------------

TEST(TlbReference, RandomPages) {
  cache::TlbConfig config{.name = "DTLB", .entries = 64, .page_bytes = 4096};
  util::Rng rng(21);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 50000; ++i) {
    stream.push_back(rng.below(96ull << 12) << 4 | rng.below(16));
  }
  drive_tlb(config, stream);
}

TEST(TlbReference, HotPagesWithPeriodicFlush) {
  // Mostly MRU-slot hits (the fast path) with OS-noise-style flushes.
  cache::TlbConfig config{.name = "ITLB", .entries = 48, .page_bytes = 4096};
  util::Rng rng(22);
  std::vector<std::uint64_t> stream;
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t page =
        rng.chance(0.9) ? rng.below(3) : rng.below(4096);
    stream.push_back((page << 12) + rng.below(4096));
  }
  drive_tlb(config, stream, /*flush_every=*/1000);
}

TEST(TlbReference, SequentialPageWalk) {
  cache::TlbConfig config{.name = "DTLB", .entries = 64, .page_bytes = 4096};
  std::vector<std::uint64_t> stream;
  // Several passes over more pages than the TLB holds: every access a miss
  // after warmup (the classic LRU-antagonistic sequential sweep).
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t page = 0; page < 96; ++page) {
      for (int touch = 0; touch < 3; ++touch) {
        stream.push_back((page << 12) + static_cast<std::uint64_t>(touch) * 8);
      }
    }
  }
  drive_tlb(config, stream);
}

TEST(TlbReference, GatedEntriesBehaveLikeSmallTlb) {
  cache::TlbConfig config{.name = "DTLB", .entries = 64, .page_bytes = 4096};
  cache::Tlb gated(config);
  gated.set_active_entries(8);
  gated.flush();
  ReferenceTlb ref(8, 4096);
  util::Rng rng(23);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t vaddr = rng.below(24) << 12;
    ASSERT_EQ(gated.lookup(vaddr), ref.lookup(vaddr)) << "op " << i;
  }
}

TEST(TlbReference, NoteHitsMatchesRepeatedLookups) {
  cache::TlbConfig config{.name = "DTLB", .entries = 64, .page_bytes = 4096};
  cache::Tlb bulk(config);
  cache::Tlb loop(config);
  util::Rng rng(24);
  for (int round = 0; round < 2000; ++round) {
    const std::uint64_t vaddr = rng.below(16) << 12 | rng.below(4096);
    const std::uint64_t n = 1 + rng.below(16);
    ASSERT_EQ(bulk.lookup(vaddr), loop.lookup(vaddr));
    ASSERT_TRUE(bulk.note_hits(vaddr, n));  // just hit: must be in MRU slots
    for (std::uint64_t i = 0; i < n; ++i) ASSERT_TRUE(loop.lookup(vaddr));
    ASSERT_EQ(bulk.stats().accesses, loop.stats().accesses);
    ASSERT_EQ(bulk.stats().misses, loop.stats().misses);
  }
  // And the victim ordering must agree afterwards: sweep both with misses.
  for (std::uint64_t page = 100; page < 300; ++page) {
    ASSERT_EQ(bulk.lookup(page << 12), loop.lookup(page << 12));
  }
}

}  // namespace
}  // namespace pcap
