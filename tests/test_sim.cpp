// Unit tests for the simulator: memory hierarchy composition and counter
// identities, the core timing model, the execution context (including the
// instruction-fetch/code-footprint model), and the Node's power/metering/
// tick machinery.
#include <gtest/gtest.h>

#include "apps/synthetic.hpp"
#include "pmu/counters.hpp"
#include "sim/core_model.hpp"
#include "sim/execution_context.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/rng.hpp"

namespace pcap::sim {
namespace {

using pmu::Event;

// --- MemoryHierarchy ---

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : hierarchy_(MachineConfig::romley().hierarchy, bank_) {}
  pmu::CounterBank bank_;
  MemoryHierarchy hierarchy_;
};

TEST_F(HierarchyTest, ColdLoadReachesDram) {
  const AccessLatency lat = hierarchy_.access(0x100000, AccessType::kLoad);
  EXPECT_EQ(bank_.get(Event::kL1Dca), 1u);
  EXPECT_EQ(bank_.get(Event::kL1Dcm), 1u);
  EXPECT_EQ(bank_.get(Event::kL2Tcm), 1u);
  EXPECT_EQ(bank_.get(Event::kL3Tcm), 1u);
  EXPECT_EQ(bank_.get(Event::kDramAcc), 1u);
  EXPECT_EQ(bank_.get(Event::kTlbDm), 1u);
  // Cycles: walk + L1 + L2 + L3 extra latencies.
  const auto& h = hierarchy_.config();
  EXPECT_EQ(lat.cycles, h.tlb_walk_cycles + h.l1_hit_cycles +
                            h.l2_extra_cycles + h.l3_extra_cycles);
  EXPECT_GT(lat.fixed_ps, 0u);
}

TEST_F(HierarchyTest, WarmLoadHitsL1) {
  hierarchy_.access(0x100000, AccessType::kLoad);
  const AccessLatency lat = hierarchy_.access(0x100000, AccessType::kLoad);
  EXPECT_EQ(lat.cycles, hierarchy_.config().l1_hit_cycles);
  EXPECT_EQ(lat.fixed_ps, 0u);
}

TEST_F(HierarchyTest, CounterIdentities) {
  util::Rng rng(5);
  for (int i = 0; i < 50000; ++i) {
    const Address addr = rng.below(64ull << 20);
    const auto type = rng.chance(0.2) ? AccessType::kFetch
                      : rng.chance(0.4) ? AccessType::kStore
                                        : AccessType::kLoad;
    hierarchy_.access(addr, type);
  }
  // L2 accesses == L1D misses + L1I misses.
  EXPECT_EQ(bank_.get(Event::kL2Tca),
            bank_.get(Event::kL1Dcm) + bank_.get(Event::kL1Icm));
  // L3 accesses == L2 misses; DRAM accesses == L3 misses.
  EXPECT_EQ(bank_.get(Event::kL3Tca), bank_.get(Event::kL2Tcm));
  EXPECT_EQ(bank_.get(Event::kDramAcc), bank_.get(Event::kL3Tcm));
  // Hits cannot exceed accesses.
  EXPECT_LE(bank_.get(Event::kL1Dcm), bank_.get(Event::kL1Dca));
}

TEST_F(HierarchyTest, InclusionHoldsUnderRandomTrafficAndGating) {
  util::Rng rng(7);
  for (int i = 0; i < 30000; ++i) {
    if (i % 5000 == 2500) {
      hierarchy_.set_l3_ways(1 + static_cast<std::uint32_t>(rng.below(20)));
    }
    hierarchy_.access(rng.below(96ull << 20), AccessType::kLoad);
  }
  // Every line in L1D and L2 must be present in the inclusive L3.
  for (const Address line : hierarchy_.l1d().valid_line_addresses()) {
    EXPECT_TRUE(hierarchy_.l3().contains(line)) << std::hex << line;
  }
  for (const Address line : hierarchy_.l2().valid_line_addresses()) {
    EXPECT_TRUE(hierarchy_.l3().contains(line)) << std::hex << line;
  }
}

TEST_F(HierarchyTest, L3GatingFlushesInnerLevels) {
  hierarchy_.access(0x1000, AccessType::kLoad);
  EXPECT_TRUE(hierarchy_.l1d().contains(0x1000));
  hierarchy_.set_l3_ways(4);
  EXPECT_EQ(hierarchy_.l1d().valid_lines(), 0u);
  EXPECT_EQ(hierarchy_.l2().valid_lines(), 0u);
  EXPECT_EQ(hierarchy_.l3_ways(), 4u);
}

TEST_F(HierarchyTest, GatingActuatorsReflectState) {
  hierarchy_.set_l2_ways(2);
  hierarchy_.set_itlb_entries(6);
  hierarchy_.set_dtlb_entries(32);
  hierarchy_.set_dram_gated(true);
  EXPECT_EQ(hierarchy_.l2_ways(), 2u);
  EXPECT_EQ(hierarchy_.itlb_entries(), 6u);
  EXPECT_EQ(hierarchy_.dtlb_entries(), 32u);
  EXPECT_TRUE(hierarchy_.dram_gated());
}

TEST_F(HierarchyTest, FetchUsesItlbAndL1I) {
  hierarchy_.access(0x400000, AccessType::kFetch);
  EXPECT_EQ(bank_.get(Event::kL1Ica), 1u);
  EXPECT_EQ(bank_.get(Event::kTlbIm), 1u);
  EXPECT_EQ(bank_.get(Event::kTlbDm), 0u);
  EXPECT_EQ(bank_.get(Event::kL1Dca), 0u);
}

TEST_F(HierarchyTest, DramGatingSlowsMisses) {
  const AccessLatency normal = hierarchy_.access(0x500000, AccessType::kLoad);
  hierarchy_.set_dram_gated(true);
  const AccessLatency gated = hierarchy_.access(0x900000, AccessType::kLoad);
  EXPECT_GT(gated.fixed_ps, normal.fixed_ps);
}

// --- CoreModel ---

class CoreModelTest : public ::testing::Test {
 protected:
  CoreModelTest()
      : pstates_(power::PStateTable::romley_e5_2680()),
        core_(MachineConfig::romley().core, pstates_, bank_) {}
  pmu::CounterBank bank_;
  power::PStateTable pstates_;
  CoreModel core_;
};

TEST_F(CoreModelTest, ComputeAdvancesTimeAtIpc) {
  core_.compute(16000);
  // 16000 uops at base IPC 1.6 = 10000 cycles at 2701 MHz (370 ps/cycle),
  // plus a small mispredict penalty.
  const double expected_ps = 10000.0 * 370.0;
  EXPECT_GE(core_.now(), static_cast<util::Picoseconds>(expected_ps));
  EXPECT_LT(core_.now(), static_cast<util::Picoseconds>(expected_ps * 1.1));
  EXPECT_EQ(bank_.get(Event::kTotIns), 16000u);
}

TEST_F(CoreModelTest, SpeculationProducesExtraExecutedInstructions) {
  core_.compute(1000000);
  EXPECT_GT(bank_.get(Event::kInsExec), bank_.get(Event::kTotIns));
  // Paper: the committed-vs-executed gap is small (<= ~0.4%).
  const double gap =
      static_cast<double>(bank_.get(Event::kInsExec) -
                          bank_.get(Event::kTotIns)) /
      static_cast<double>(bank_.get(Event::kTotIns));
  EXPECT_LT(gap, 0.05);
  EXPECT_GT(bank_.get(Event::kBrIns), 0u);
  EXPECT_GT(bank_.get(Event::kBrMsp), 0u);
}

TEST_F(CoreModelTest, PStateChangesSlowRetire) {
  core_.compute(100000);
  const util::Picoseconds fast = core_.now();
  core_.set_pstate(15);
  EXPECT_EQ(core_.frequency(), 1200 * util::kMegaHertz);
  core_.compute(100000);
  const util::Picoseconds slow = core_.now() - fast;
  EXPECT_NEAR(static_cast<double>(slow) / static_cast<double>(fast),
              2701.0 / 1200.0, 0.05);
}

TEST_F(CoreModelTest, InvalidPStateThrows) {
  EXPECT_THROW(core_.set_pstate(16), std::out_of_range);
}

TEST_F(CoreModelTest, DutyCycleInflatesWallTime) {
  core_.compute(100000);
  const util::Picoseconds full = core_.now();
  core_.set_duty(0.5);
  core_.compute(100000);
  const util::Picoseconds half = core_.now() - full;
  EXPECT_NEAR(static_cast<double>(half) / static_cast<double>(full), 2.0, 0.02);
}

TEST_F(CoreModelTest, DutyClampedToPlatformMinimum) {
  core_.set_duty(0.01);
  EXPECT_DOUBLE_EQ(core_.duty(), CoreModel::kMinDuty);
  core_.set_duty(5.0);
  EXPECT_DOUBLE_EQ(core_.duty(), 1.0);
}

TEST_F(CoreModelTest, MemoryOpAccountsLoadsAndStores) {
  AccessLatency lat{.cycles = 10, .fixed_ps = 0};
  core_.memory_op(lat, false);
  core_.memory_op(lat, true);
  EXPECT_EQ(bank_.get(Event::kLdIns), 1u);
  EXPECT_EQ(bank_.get(Event::kSrIns), 1u);
  EXPECT_EQ(bank_.get(Event::kTotIns), 2u);
}

TEST_F(CoreModelTest, FixedLatencyCountsStallCycles) {
  AccessLatency lat{.cycles = 4, .fixed_ps = util::nanoseconds(60.0)};
  core_.memory_op(lat, false);
  EXPECT_GT(bank_.get(Event::kStallCyc), 0u);
  // 60 ns at 370 ps/cycle ~ 162 cycles.
  EXPECT_NEAR(static_cast<double>(bank_.get(Event::kStallCyc)), 162.0, 2.0);
}

TEST_F(CoreModelTest, FetchChargesOnlyBeyondL1Hit) {
  const util::Picoseconds before = core_.now();
  core_.fetch_op({.cycles = 4, .fixed_ps = 0}, 4);  // L1I hit: free
  EXPECT_EQ(core_.now(), before);
  core_.fetch_op({.cycles = 32, .fixed_ps = 0}, 4);  // miss: 28 cycles
  EXPECT_GT(core_.now(), before);
}

// --- ExecutionContext + Node ---

TEST(Node, IdlePowerMatchesPaper) {
  Node node(MachineConfig::romley());
  node.start_metering();
  node.idle_for(util::milliseconds(2.0));
  const double idle = node.meter().average_watts();
  const CalibrationTargets& cal = node.config().calibration;
  EXPECT_GE(idle, cal.idle_min_w);
  EXPECT_LE(idle, cal.idle_max_w);  // paper: 100-103 W
}

TEST(Node, RunReportBasics) {
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(500000);
  const RunReport report = node.run(work);
  EXPECT_EQ(report.workload, "compute-bound");
  EXPECT_GT(report.elapsed, 0u);
  EXPECT_GT(report.energy_j, 0.0);
  EXPECT_GT(report.avg_power_w, 100.0);
  EXPECT_EQ(report.counter(Event::kTotIns), 500000u);
  EXPECT_EQ(report.avg_frequency, 2701 * util::kMegaHertz);
  EXPECT_DOUBLE_EQ(report.avg_duty, 1.0);
}

TEST(Node, ReportCountersAreDeltas) {
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(200000);
  const RunReport first = node.run(work);
  const RunReport second = node.run(work);
  EXPECT_EQ(first.counter(Event::kTotIns), second.counter(Event::kTotIns));
}

TEST(Node, LoadedPowerAboveIdle) {
  Node node(MachineConfig::romley());
  apps::MemoryBoundWorkload work(8 << 20, 200000);
  const RunReport report = node.run(work);
  EXPECT_GT(report.avg_power_w, 130.0);
  EXPECT_LT(report.avg_power_w, 165.0);
}

TEST(Node, MeterSamplesAtConfiguredCadence) {
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(3000000);
  const RunReport report = node.run(work);
  const auto expected =
      report.elapsed / node.config().ticks.meter_period();
  EXPECT_NEAR(static_cast<double>(node.meter().samples().size()),
              static_cast<double>(expected), 2.0);
}

TEST(Node, ControlHookFiresAtBmcCadence) {
  Node node(MachineConfig::romley());
  int fired = 0;
  node.set_control_hook([&fired](PlatformControl&) { ++fired; });
  apps::ComputeBoundWorkload work(3000000);
  const RunReport report = node.run(work);
  const auto expected = report.elapsed / node.config().ticks.bmc_period;
  EXPECT_GT(fired, 0);
  EXPECT_NEAR(static_cast<double>(fired), static_cast<double>(expected),
              static_cast<double>(expected) * 0.2 + 2.0);
}

TEST(Node, OsNoiseCausesTlbMisses) {
  MachineConfig config = MachineConfig::romley();
  Node node(config);
  apps::ComputeBoundWorkload work(2000000, /*code_pages=*/4);
  const RunReport with_noise = node.run(work);
  node.set_os_noise(false);
  const RunReport without = node.run(work);
  // The 4-page loop fits the ITLB: every ITLB miss after warmup comes from
  // the OS-noise flushes.
  EXPECT_GT(with_noise.counter(Event::kTlbIm),
            without.counter(Event::kTlbIm) + 2);
  EXPECT_LE(without.counter(Event::kTlbIm), 4u);
}

TEST(Node, PlatformControlActuatorsWork) {
  Node node(MachineConfig::romley());
  PlatformControl& control = node;
  EXPECT_EQ(control.pstate_count(), 16u);
  control.set_pstate(15);
  EXPECT_EQ(control.frequency(), 1200 * util::kMegaHertz);
  control.set_duty(0.25);
  EXPECT_DOUBLE_EQ(control.duty(), 0.25);
  control.set_l3_ways(4);
  EXPECT_EQ(control.l3_ways(), 4u);
  EXPECT_EQ(control.l3_max_ways(), 20u);
  control.set_dram_gated(true);
  EXPECT_TRUE(control.dram_gated());
  EXPECT_GT(control.instantaneous_power_w(), 90.0);
}

TEST(Node, WindowAveragePowerResets) {
  Node node(MachineConfig::romley());
  node.idle_for(util::milliseconds(1.0));
  const double first = node.window_average_power_w();
  EXPECT_GT(first, 90.0);
  node.idle_for(util::milliseconds(1.0));
  const double second = node.window_average_power_w();
  EXPECT_NEAR(second, first, 5.0);
}

TEST(Node, BackgroundCoresRaisePower) {
  Node node(MachineConfig::romley());
  apps::ComputeBoundWorkload work(500000);
  const RunReport one = node.run(work);
  node.set_background_active_cores(7);
  const RunReport eight = node.run(work);
  EXPECT_GT(eight.avg_power_w, one.avg_power_w + 50.0);
}

TEST(Node, DeterministicForSeed) {
  apps::PhasedWorkload workload;
  Node a(MachineConfig::romley(), 42);
  Node b(MachineConfig::romley(), 42);
  const RunReport ra = a.run(workload);
  const RunReport rb = b.run(workload);
  EXPECT_EQ(ra.elapsed, rb.elapsed);
  EXPECT_EQ(ra.counters, rb.counters);
  EXPECT_DOUBLE_EQ(ra.energy_j, rb.energy_j);
}

TEST(ExecutionContext, AllocBumpsAligned) {
  Node node(MachineConfig::romley());
  ExecutionContext ctx(node);
  const Address a = ctx.alloc(100);
  const Address b = ctx.alloc(1);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
}

TEST(ExecutionContext, CodeFootprintDrivesItlb) {
  MachineConfig config = MachineConfig::romley();
  Node node(config);
  node.set_os_noise(false);

  // Footprint beyond the gated ITLB: the sequential fetch rotation misses
  // once per page entered (64 fetch lines per 4 KB page), every cycle.
  node.set_itlb_entries(6);
  apps::ComputeBoundWorkload big(400000, /*code_pages=*/12);
  const RunReport thrash = node.run(big);
  const double fetches = 400000.0 / config.core.ins_per_fetch;
  const double page_entries = fetches / 64.0;
  EXPECT_GT(static_cast<double>(thrash.counter(Event::kTlbIm)),
            page_entries * 0.8);

  // Footprint within the ITLB: negligible misses.
  node.set_itlb_entries(48);
  apps::ComputeBoundWorkload small(400000, /*code_pages=*/4);
  const RunReport fits = node.run(small);
  EXPECT_LT(fits.counter(Event::kTlbIm), 20u);
}

TEST(ExecutionContext, LoadStoreTouchHierarchy) {
  Node node(MachineConfig::romley());
  ExecutionContext ctx(node);
  const Address base = ctx.alloc(4096);
  ctx.load(base);
  ctx.store(base);
  EXPECT_EQ(node.counters().get(Event::kLdIns), 1u);
  EXPECT_EQ(node.counters().get(Event::kSrIns), 1u);
  EXPECT_EQ(node.counters().get(Event::kL1Dca), 2u);
}

}  // namespace
}  // namespace pcap::sim
