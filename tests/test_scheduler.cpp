// Cluster power scheduler (src/sched/): the invariants DESIGN.md §11 pins.
//  * amenability tables round-trip through JSON bit-faithfully;
//  * every policy's plan respects [min_cap, max_cap] and the group budget;
//  * a run is bit-identical for a given seed regardless of the `jobs`
//    parallelism knob;
//  * at/above the rack's uncapped draw every policy produces the identical
//    baseline schedule;
//  * the summed enforced/reserved caps never exceed the budget at any tick,
//    including under lossy links and a scripted partition;
//  * deadline accounting counts exactly the jobs that miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "sched/amenability_table.hpp"
#include "sched/arrivals.hpp"
#include "sched/job.hpp"
#include "sched/policy.hpp"
#include "sched/power_model.hpp"
#include "sched/scheduler.hpp"
#include "util/json.hpp"

namespace pcap::sched {
namespace {

// Small synthetic table: per-class knee curves, steep below 135 W. Tests
// that exercise real runs characterise nothing — the scheduler must work
// from any complete table.
AmenabilityTable synthetic_table() {
  AmenabilityTable table;
  const double steep[] = {10.5, 11.4, 3.0, 16.7};
  for (int c = 0; c < kJobClassCount; ++c) {
    ClassCurve curve;
    curve.cls = static_cast<JobClass>(c);
    curve.baseline_power_w = 155.0;
    curve.baseline_time_s = 450e-6;
    curve.usable_floor_w = 135.0;
    for (const double cap : {115.0, 125.0, 135.0, 150.0}) {
      core::AmenabilityPoint p;
      p.cap_w = cap;
      p.measured_power_w = std::min(cap, 155.0);
      const double depth = std::max(0.0, 135.0 - cap) / 15.0;
      p.slowdown = 1.0 + (steep[c] - 1.0) * depth;
      p.energy_ratio = p.slowdown * p.measured_power_w / 155.0;
      curve.points.push_back(p);
    }
    table.set_curve(curve);
  }
  return table;
}

void expect_tables_equal(const AmenabilityTable& a, const AmenabilityTable& b) {
  ASSERT_EQ(a.size(), b.size());
  for (int c = 0; c < kJobClassCount; ++c) {
    const ClassCurve* ca = a.curve(static_cast<JobClass>(c));
    const ClassCurve* cb = b.curve(static_cast<JobClass>(c));
    ASSERT_EQ(ca != nullptr, cb != nullptr);
    if (ca == nullptr) continue;
    EXPECT_DOUBLE_EQ(ca->baseline_power_w, cb->baseline_power_w);
    EXPECT_DOUBLE_EQ(ca->baseline_time_s, cb->baseline_time_s);
    EXPECT_DOUBLE_EQ(ca->usable_floor_w, cb->usable_floor_w);
    ASSERT_EQ(ca->points.size(), cb->points.size());
    for (std::size_t i = 0; i < ca->points.size(); ++i) {
      EXPECT_DOUBLE_EQ(ca->points[i].cap_w, cb->points[i].cap_w);
      EXPECT_DOUBLE_EQ(ca->points[i].slowdown, cb->points[i].slowdown);
      EXPECT_DOUBLE_EQ(ca->points[i].measured_power_w,
                       cb->points[i].measured_power_w);
      EXPECT_DOUBLE_EQ(ca->points[i].energy_ratio, cb->points[i].energy_ratio);
    }
  }
}

TEST(AmenabilityTableTest, JsonRoundTripPreservesEveryCurve) {
  const AmenabilityTable table = synthetic_table();
  ASSERT_TRUE(table.complete());

  // Through the in-memory JSON value and the printed text form.
  const std::string text = util::json_to_string(table.to_json(), 2);
  const auto parsed = util::parse_json(text);
  ASSERT_TRUE(parsed.has_value());
  const auto back = AmenabilityTable::from_json(*parsed);
  ASSERT_TRUE(back.has_value());
  expect_tables_equal(table, *back);

  // Through a file, as the example/bench save-and-load path does.
  const std::string path = ::testing::TempDir() + "/pcap_amenability.json";
  table.save(path);
  ASSERT_TRUE(std::filesystem::exists(path));
  const auto loaded = AmenabilityTable::load(path);
  ASSERT_TRUE(loaded.has_value());
  expect_tables_equal(table, *loaded);
  std::filesystem::remove(path);
}

TEST(AmenabilityTableTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(AmenabilityTable::from_json(*util::parse_json("42")));
  EXPECT_FALSE(
      AmenabilityTable::from_json(*util::parse_json("{\"schema\":\"nope\"}")));
  EXPECT_FALSE(AmenabilityTable::load("/nonexistent/amenability.json"));
}

TEST(AmenabilityTableTest, SlowdownInterpolatesAndExtrapolates) {
  const AmenabilityTable table = synthetic_table();
  const ClassCurve* curve = table.curve(JobClass::kStereoLike);
  ASSERT_NE(curve, nullptr);
  // Above the top measured cap the workload is effectively uncapped.
  EXPECT_DOUBLE_EQ(curve->slowdown_at(400.0), 1.0);
  // On a measured point.
  EXPECT_NEAR(curve->slowdown_at(135.0), 1.0, 1e-12);
  // Between points: piecewise linear.
  const double at120 = curve->slowdown_at(120.0);
  EXPECT_GT(at120, curve->slowdown_at(125.0));
  EXPECT_LT(at120, curve->slowdown_at(115.0));
  // Below the grid the lowest segment's slope extends the curve, so the
  // 110 W enforceable floor still shows marginal value to watt-filling.
  EXPECT_GT(curve->slowdown_at(110.0), curve->slowdown_at(115.0));
}

TEST(ArrivalsTest, StreamIsSeededSortedAndRespectsWeights) {
  ArrivalConfig config;
  config.job_count = 32;
  config.class_weights = {1.0, 1.0, 0.0, 0.5};  // stride-like removed
  config.deadline_fraction = 0.5;
  config.seed = 9;

  const auto a = generate_stream(config);
  const auto b = generate_stream(config);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  int with_deadline = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, static_cast<int>(i));
    EXPECT_EQ(a[i].cls, b[i].cls);
    EXPECT_DOUBLE_EQ(a[i].arrival_s, b[i].arrival_s);
    EXPECT_EQ(a[i].chunks, b[i].chunks);
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].deadline_s.has_value(), b[i].deadline_s.has_value());
    EXPECT_NE(a[i].cls, JobClass::kStrideLike);
    EXPECT_GE(a[i].chunks, config.min_chunks);
    EXPECT_LE(a[i].chunks, config.max_chunks);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_s, a[i - 1].arrival_s);
    }
    if (a[i].deadline_s) {
      ++with_deadline;
      EXPECT_GT(*a[i].deadline_s, a[i].arrival_s);
    }
  }
  EXPECT_GT(with_deadline, 0);
  EXPECT_LT(with_deadline, 32);

  // A different seed reshuffles the stream.
  config.seed = 10;
  const auto c = generate_stream(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    any_diff = any_diff || c[i].cls != a[i].cls ||
               c[i].arrival_s != a[i].arrival_s || c[i].chunks != a[i].chunks;
  }
  EXPECT_TRUE(any_diff);
}

// --- policy contract on a synthetic rack ----------------------------------

PlanInput synthetic_input(const AmenabilityTable* table,
                          const OnlinePowerModel* model, double budget_w) {
  PlanInput input;
  input.budget_w = budget_w;
  input.now_s = 1e-3;
  input.table = table;
  input.model = model;
  for (std::size_t i = 0; i < 6; ++i) {
    NodeView view;
    view.index = i;
    view.busy = i < 4;  // four busy, two idle
    view.cls = static_cast<JobClass>(i % kJobClassCount);
    view.remaining_chunks = static_cast<int>(1 + i);
    view.applied_cap_w = 130.0;
    input.nodes.push_back(view);
  }
  input.queued.push_back({JobClass::kPhased, 5, std::nullopt});
  return input;
}

TEST(PolicyTest, PlansStayWithinCapBoundsAndBudget) {
  const AmenabilityTable table = synthetic_table();
  OnlinePowerModel model;
  model.set_table(&table);
  for (const std::string& name : policy_names()) {
    auto policy = make_policy(name);
    ASSERT_NE(policy, nullptr) << name;
    EXPECT_EQ(policy->name(), name);
    for (const double budget : {670.0, 800.0, 1300.0}) {
      const PlanInput input = synthetic_input(&table, &model, budget);
      const Plan plan = policy->plan(input);
      ASSERT_EQ(plan.cap_w.size(), input.nodes.size()) << name;
      ASSERT_EQ(plan.admit.size(), input.nodes.size()) << name;
      double sum = 0.0;
      for (const double cap : plan.cap_w) {
        EXPECT_GE(cap, input.min_cap_w - 1e-9) << name;
        EXPECT_LE(cap, input.max_cap_w + 1e-9) << name;
        sum += cap;
      }
      EXPECT_LE(sum, budget + 1e-6) << name << " @ " << budget;
    }
  }
  EXPECT_EQ(make_policy("no-such-policy"), nullptr);
}

TEST(PolicyTest, UnreachableNodeReservationShrinksTheSpendableBudget) {
  const AmenabilityTable table = synthetic_table();
  OnlinePowerModel model;
  model.set_table(&table);
  PlanInput input = synthetic_input(&table, &model, 800.0);
  input.nodes[2].available = false;  // holds its applied cap as reservation
  auto policy = make_policy("amenability");
  const Plan plan = policy->plan(input);
  double reachable_sum = 0.0;
  for (std::size_t i = 0; i < plan.cap_w.size(); ++i) {
    if (i != 2) reachable_sum += plan.cap_w[i];
  }
  EXPECT_LE(reachable_sum + *input.nodes[2].applied_cap_w, 800.0 + 1e-6);
  EXPECT_FALSE(plan.admit[2]);
}

// --- whole-scheduler runs -------------------------------------------------

std::vector<JobSpec> small_stream(int jobs, double deadline_fraction = 0.0,
                                  double deadline_factor = 2.0) {
  ArrivalConfig config;
  config.job_count = jobs;
  config.min_chunks = 2;
  config.max_chunks = 4;
  config.deadline_fraction = deadline_fraction;
  config.deadline_factor = deadline_factor;
  config.seed = 5;
  return generate_stream(config);
}

SchedulerConfig small_config(const AmenabilityTable* table, double budget_w,
                             const std::string& policy) {
  SchedulerConfig config;
  config.node_count = 4;
  config.budget_w = budget_w;
  config.policy_name = policy;
  config.seed = 5;
  config.table = table;
  return config;
}

void expect_results_identical(const ScheduleResult& a,
                              const ScheduleResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].node, b.jobs[i].node) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].start_s, b.jobs[i].start_s) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].finish_s, b.jobs[i].finish_s) << "job " << i;
    EXPECT_DOUBLE_EQ(a.jobs[i].energy_j, b.jobs[i].energy_j) << "job " << i;
    EXPECT_EQ(a.jobs[i].chunks_done, b.jobs[i].chunks_done) << "job " << i;
    EXPECT_EQ(a.jobs[i].missed_deadline, b.jobs[i].missed_deadline);
  }
  ASSERT_EQ(a.ticks.size(), b.ticks.size());
  for (std::size_t i = 0; i < a.ticks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ticks[i].t_s, b.ticks[i].t_s) << "tick " << i;
    EXPECT_DOUBLE_EQ(a.ticks[i].cap_sum_w, b.ticks[i].cap_sum_w);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_DOUBLE_EQ(a.total_energy_j, b.total_energy_j);
  EXPECT_EQ(a.chunks, b.chunks);
}

void expect_all_done(const ScheduleResult& result, std::size_t jobs) {
  ASSERT_EQ(result.jobs.size(), jobs);
  for (const JobRecord& job : result.jobs) {
    EXPECT_TRUE(job.done()) << "job " << job.spec.id;
    EXPECT_GE(job.node, 0);
    EXPECT_GE(job.start_s, job.spec.arrival_s);
    EXPECT_GT(job.finish_s, job.start_s);
  }
}

void expect_budget_invariant(const ScheduleResult& result) {
  EXPECT_EQ(result.budget_violations, 0u);
  ASSERT_FALSE(result.ticks.empty());
  for (const TickRecord& tick : result.ticks) {
    EXPECT_LE(tick.cap_sum_w, result.budget_w + 1e-3)
        << "tick at t=" << tick.t_s;
  }
  EXPECT_LE(result.max_cap_sum_w, result.budget_w + 1e-3);
}

TEST(ClusterSchedulerTest, RunIsBitIdenticalAcrossJobsParallelism) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = small_stream(6);

  SchedulerConfig serial = small_config(&table, 500.0, "amenability");
  serial.jobs = 1;
  SchedulerConfig threaded = serial;
  threaded.jobs = 4;

  const ScheduleResult a = ClusterScheduler(serial).run(stream);
  const ScheduleResult b = ClusterScheduler(threaded).run(stream);
  expect_all_done(a, stream.size());
  expect_budget_invariant(a);
  expect_results_identical(a, b);
}

TEST(ChunkCacheTest, SimulateChunkIsAPureFunctionOfTheKey) {
  const sim::MachineConfig machine = sim::MachineConfig::romley();
  const core::BmcConfig bmc;

  ChunkKey key;
  key.cls = JobClass::kStereoLike;
  key.identity = chunk_identity(JobClass::kStereoLike, 7, 0);
  key.cap_bits = ChunkKey::encode_cap(125.0);

  // Same key, any (seed, chunk_index) that maps to it: identical result —
  // this is what makes a memo hit a bit-exact replay.
  const ChunkResult a = simulate_chunk(machine, bmc, key, 7, 0, 5);
  const ChunkResult b = simulate_chunk(machine, bmc, key, 7, 0, 5);
  const ChunkResult c = simulate_chunk(machine, bmc, key, 99, 3, 5);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.elapsed, c.elapsed);
  EXPECT_EQ(a.energy_j, c.energy_j);

  // Non-phased classes collapse every (seed, chunk_index) onto one key;
  // phased chunks keep their per-chunk identity.
  EXPECT_EQ(chunk_identity(JobClass::kSireLike, 1, 0),
            chunk_identity(JobClass::kSireLike, 42, 9));
  EXPECT_NE(chunk_identity(JobClass::kPhased, 1, 0),
            chunk_identity(JobClass::kPhased, 1, 1));

  // The cap is part of the key, and a deep cap really changes the result.
  ChunkKey deep = key;
  deep.cap_bits = ChunkKey::encode_cap(115.0);
  const ChunkResult d = simulate_chunk(machine, bmc, deep, 7, 0, 5);
  EXPECT_FALSE(key == deep);
  EXPECT_GT(d.elapsed, a.elapsed);
}

TEST(ClusterSchedulerTest, MemoCacheIsBitNeutralAndActuallyHits) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = small_stream(8);

  SchedulerConfig with_memo = small_config(&table, 500.0, "amenability");
  with_memo.jobs = 2;
  SchedulerConfig without = with_memo;
  without.memo = false;

  const ScheduleResult memo = ClusterScheduler(with_memo).run(stream);
  const ScheduleResult plain = ClusterScheduler(without).run(stream);
  expect_all_done(memo, stream.size());
  expect_budget_invariant(memo);
  // Cache-off equivalence: the memo is a pure performance knob.
  expect_results_identical(memo, plain);

  // The stream repeats (class, cap) cells, so the cache genuinely replayed
  // chunks — and every chunk was classified exactly once.
  EXPECT_GT(memo.memo_hits, 0u);
  EXPECT_EQ(memo.memo_hits + memo.memo_misses, memo.chunks);
  EXPECT_EQ(plain.memo_hits, 0u);
  EXPECT_EQ(plain.memo_misses, plain.chunks);
}

TEST(ClusterSchedulerTest, PoliciesDegenerateToBaselineAtGenerousBudget) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = small_stream(6);
  // 175 W per node clears every class's uncapped draw (~152-156 W) plus
  // headroom: no policy has a reason to throttle anyone.
  const double generous_w = 4 * 175.0;

  std::optional<ScheduleResult> baseline;
  for (const std::string& name : policy_names()) {
    const ScheduleResult result =
        ClusterScheduler(small_config(&table, generous_w, name)).run(stream);
    expect_all_done(result, stream.size());
    expect_budget_invariant(result);
    EXPECT_EQ(result.deadline_misses, 0) << name;
    if (!baseline) {
      baseline = result;
      continue;
    }
    // Identical placement and timing — not merely similar.
    ASSERT_EQ(result.jobs.size(), baseline->jobs.size()) << name;
    for (std::size_t i = 0; i < result.jobs.size(); ++i) {
      EXPECT_EQ(result.jobs[i].node, baseline->jobs[i].node)
          << name << " job " << i;
      EXPECT_DOUBLE_EQ(result.jobs[i].start_s, baseline->jobs[i].start_s)
          << name << " job " << i;
      EXPECT_DOUBLE_EQ(result.jobs[i].finish_s, baseline->jobs[i].finish_s)
          << name << " job " << i;
    }
    EXPECT_DOUBLE_EQ(result.makespan_s, baseline->makespan_s) << name;
  }
}

TEST(ClusterSchedulerTest, BudgetInvariantHoldsUnderFaultsAndPartition) {
  const AmenabilityTable table = synthetic_table();
  const auto stream = small_stream(6);

  SchedulerConfig config = small_config(&table, 500.0, "amenability");
  ipmi::FaultSpec faults;
  faults.drop_rate = 0.10;
  faults.duplicate_rate = 0.05;
  faults.corrupt_rate = 0.05;
  config.faults = faults;

  ClusterScheduler scheduler(config);
  ASSERT_NE(scheduler.fault_link(1), nullptr);
  // Black-hole one node's link for a stretch of exchanges: the scheduler
  // must treat its last applied cap as reserved and keep the rack under
  // budget around it.
  scheduler.fault_link(1)->partition_for(60);

  const ScheduleResult result = scheduler.run(stream);
  expect_all_done(result, stream.size());
  expect_budget_invariant(result);
  // The lossy links must actually have cost something, or the test proves
  // nothing about fault handling.
  EXPECT_GT(result.mgmt_retries + result.mgmt_failed_exchanges, 0u);
}

TEST(ClusterSchedulerTest, DeadlineAccountingCountsExactlyTheMisses) {
  const AmenabilityTable table = synthetic_table();

  // Impossible deadlines: a fraction of an uncapped chunk-time per chunk.
  const auto doomed = small_stream(4, 1.0, 0.05);
  const ScheduleResult missed =
      ClusterScheduler(small_config(&table, 700.0, "uniform")).run(doomed);
  expect_all_done(missed, doomed.size());
  EXPECT_EQ(missed.deadline_misses, 4);
  for (const JobRecord& job : missed.jobs) {
    EXPECT_TRUE(job.missed_deadline);
  }

  // Generous deadlines: none miss even at a tighter budget.
  const auto relaxed = small_stream(4, 1.0, 200.0);
  const ScheduleResult met =
      ClusterScheduler(small_config(&table, 500.0, "uniform")).run(relaxed);
  expect_all_done(met, relaxed.size());
  EXPECT_EQ(met.deadline_misses, 0);
  for (const JobRecord& job : met.jobs) {
    EXPECT_FALSE(job.missed_deadline);
  }
}

TEST(ClusterSchedulerTest, RefusesBudgetBelowTheEnforceableFloor) {
  const AmenabilityTable table = synthetic_table();
  SchedulerConfig config = small_config(&table, 0.0, "uniform");
  config.budget_w = config.bmc.min_cap_w * 4 - 1.0;
  const ScheduleResult result =
      ClusterScheduler(config).run(small_stream(2));
  EXPECT_EQ(result.infeasible_plans, 1u);
  EXPECT_EQ(result.chunks, 0u);
  for (const JobRecord& job : result.jobs) {
    EXPECT_FALSE(job.done());
  }
}

TEST(OnlinePowerModelTest, LearnsUncappedDrawAndIgnoresCappedSamples) {
  OnlinePowerModel model;
  const double prior = model.predict_uncapped_w(JobClass::kSireLike);
  EXPECT_GT(prior, 0.0);

  // Uncapped observations pull the estimate toward the measurement.
  for (int i = 0; i < 20; ++i) {
    model.observe(JobClass::kSireLike, std::nullopt, 150.0);
  }
  EXPECT_NEAR(model.predict_uncapped_w(JobClass::kSireLike), 150.0, 2.0);
  EXPECT_EQ(model.uncapped_samples(JobClass::kSireLike), 20u);

  // Deeply capped observations measure the cap, not the demand: they must
  // not drag the uncapped estimate down.
  for (int i = 0; i < 20; ++i) {
    model.observe(JobClass::kSireLike, 120.0, 119.0);
  }
  EXPECT_NEAR(model.predict_uncapped_w(JobClass::kSireLike), 150.0, 2.0);
  EXPECT_EQ(model.samples(JobClass::kSireLike), 40u);

  // With a table attached, an unobserved class predicts its measured
  // baseline rather than the default.
  const AmenabilityTable table = synthetic_table();
  model.set_table(&table);
  EXPECT_DOUBLE_EQ(model.predict_uncapped_w(JobClass::kPhased), 155.0);
  EXPECT_DOUBLE_EQ(model.predict_at_cap_w(JobClass::kPhased, 125.0), 125.0);
}

}  // namespace
}  // namespace pcap::sched
