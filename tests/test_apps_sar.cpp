// Tests for the SIRE/RSM application: radar forward model, backprojection
// correctness (point targets reconstruct at the right pixels), RSM noise
// suppression, and workload determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/machine.hpp"
#include "apps/sar/backprojection.hpp"
#include "apps/sar/radar.hpp"
#include "apps/sar/rsm.hpp"
#include "apps/sar/scene.hpp"
#include "apps/sar/workload.hpp"
#include "sim/node.hpp"

namespace pcap::apps::sar {
namespace {

TEST(Scene, DeterministicAndInBounds) {
  SceneConfig config;
  const auto a = make_scene(config);
  const auto b = make_scene(config);
  ASSERT_EQ(a.size(), static_cast<std::size_t>(config.targets));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].x_m, b[i].x_m);
    EXPECT_LE(std::fabs(a[i].x_m), config.extent_x_m / 2);
    EXPECT_GE(a[i].y_m, config.near_y_m);
    EXPECT_LE(a[i].y_m, config.far_y_m);
    EXPECT_GT(a[i].reflectivity, 0.0);
  }
}

TEST(Radar, RickerShape) {
  EXPECT_DOUBLE_EQ(ricker(0.0, 3.0), 1.0);          // peak at center
  EXPECT_LT(ricker(3.0, 3.0), 0.0);                 // negative lobe
  EXPECT_NEAR(ricker(12.0, 3.0), 0.0, 1e-4);        // decays
  EXPECT_DOUBLE_EQ(ricker(1.5, 3.0), ricker(-1.5, 3.0));  // symmetric
}

TEST(Radar, ReturnPeaksAtTargetRange) {
  SceneConfig scene_cfg;
  RadarConfig radar_cfg;
  radar_cfg.noise_sigma = 0.0;
  radar_cfg.apertures = 3;
  const std::vector<PointTarget> scene = {{0.0, 15.0, 1.0}};
  const RadarData data = simulate_returns(scene, radar_cfg);

  // Middle aperture sits at x = 0: range is exactly 15 m.
  const int a = 1;
  EXPECT_NEAR(data.aperture_x_m[a], 0.0, 1e-9);
  const int expected_bin = static_cast<int>(
      (15.0 - radar_cfg.range0_m) / radar_cfg.range_step_m + 0.5);
  // Find the strongest bin.
  int best_bin = 0;
  float best = -1e9f;
  for (int b = 0; b < data.samples(); ++b) {
    if (data.sample(a, b) > best) {
      best = data.sample(a, b);
      best_bin = b;
    }
  }
  EXPECT_NEAR(best_bin, expected_bin, 1);
  EXPECT_GT(best, 0.1f);
}

TEST(Radar, AmplitudeFallsWithRange) {
  RadarConfig cfg;
  cfg.noise_sigma = 0.0;
  cfg.apertures = 1;
  cfg.track_length_m = 0.0;
  const RadarData near_data = simulate_returns({{0.0, 10.0, 1.0}}, cfg);
  const RadarData far_data = simulate_returns({{0.0, 25.0, 1.0}}, cfg);
  auto peak = [](const RadarData& d) {
    float best = 0;
    for (int b = 0; b < d.samples(); ++b) best = std::max(best, d.sample(0, b));
    return best;
  };
  EXPECT_GT(peak(near_data), peak(far_data) * 1.5f);
}

TEST(Backprojection, PointTargetFocusesAtTruePixel) {
  SceneConfig scene_cfg;
  scene_cfg.targets = 1;
  RadarConfig radar_cfg;
  radar_cfg.noise_sigma = 0.0;
  const std::vector<PointTarget> scene = {{3.0, 17.0, 1.0}};
  const RadarData data = simulate_returns(scene, radar_cfg);

  const ImageGrid grid = ImageGrid::cover(scene_cfg, 160, 100);
  std::vector<float> image(grid.pixels(), 0.0f);
  std::vector<int> all(static_cast<std::size_t>(data.apertures()));
  for (int a = 0; a < data.apertures(); ++a) all[static_cast<std::size_t>(a)] = a;
  HostMachine m;
  backproject(m, data, all, grid, image, 0, 0);

  // Locate the image peak.
  std::size_t best = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    if (std::fabs(image[i]) > std::fabs(image[best])) best = i;
  }
  const int px = static_cast<int>(best) % grid.width;
  const int py = static_cast<int>(best) / grid.width;
  EXPECT_NEAR(grid.x_of(px), 3.0, 2.5 * grid.dx_m);
  EXPECT_NEAR(grid.y_of(py), 17.0, 2.5 * grid.dy_m);
}

TEST(Backprojection, UpsampleInterpolatesMagnitude) {
  const std::vector<float> coarse = {1.0f, -3.0f, 2.0f, 4.0f};  // 2x2
  std::vector<float> full(16, 0.0f);
  HostMachine m;
  upsample_magnitude(m, coarse, 2, 2, 2, full, 0, 0);
  EXPECT_FLOAT_EQ(full[0], 1.0f);        // node value, magnitude
  EXPECT_FLOAT_EQ(full[1], 1.0f);        // halfway between 1 and -3: |-1|
  EXPECT_GT(full[15], 0.0f);
  for (float v : full) EXPECT_GE(v, 0.0f);  // magnitudes
}

TEST(Backprojection, MinCombineTakesElementwiseMin) {
  std::vector<float> running = {5.0f, 1.0f, 3.0f};
  const std::vector<float> candidate = {4.0f, 2.0f, 3.0f};
  HostMachine m;
  min_combine(m, running, candidate, 0, 0);
  EXPECT_EQ(running, (std::vector<float>{4.0f, 1.0f, 3.0f}));
}

class SirePipelineTest : public ::testing::Test {
 protected:
  static SireParams params() {
    SireParams p = SireParams::quick();
    p.scene.targets = 3;
    return p;
  }
};

TEST_F(SirePipelineTest, RsmSuppressesBackgroundNoise) {
  const SireParams p = params();
  const RadarData data = simulate_returns(make_scene(p.scene), p.radar);
  const SireResult result = run_sire_pipeline_host(data, p);

  // Mask out neighbourhoods of true targets; compare background energy.
  const auto scene = make_scene(p.scene);
  const ImageGrid grid = ImageGrid::cover(p.scene, result.width, result.height);
  double base_bg = 0.0, rsm_bg = 0.0;
  std::size_t count = 0;
  for (int py = 0; py < result.height; ++py) {
    for (int px = 0; px < result.width; ++px) {
      bool near_target = false;
      for (const auto& t : scene) {
        if (std::fabs(grid.x_of(px) - t.x_m) < 1.5 &&
            std::fabs(grid.y_of(py) - t.y_m) < 1.5) {
          near_target = true;
        }
      }
      if (near_target) continue;
      const std::size_t i =
          static_cast<std::size_t>(py) * result.width + px;
      base_bg += result.base_image[i];
      rsm_bg += result.rsm_image[i];
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  // RSM (min over aperture subsets) must reduce background sidelobe energy.
  EXPECT_LT(rsm_bg, base_bg * 0.9);
}

TEST_F(SirePipelineTest, TargetsSurviveRsm) {
  const SireParams p = params();
  const auto scene = make_scene(p.scene);
  const RadarData data = simulate_returns(scene, p.radar);
  const SireResult result = run_sire_pipeline_host(data, p);
  const ImageGrid grid = ImageGrid::cover(p.scene, result.width, result.height);

  // Background statistics.
  double bg_mean = 0.0;
  for (float v : result.rsm_image) bg_mean += v;
  bg_mean /= static_cast<double>(result.rsm_image.size());

  // Each target pixel should stand well above the mean background. The
  // grid here is full resolution, so target coordinates map directly.
  for (const auto& t : scene) {
    const int px = static_cast<int>((t.x_m - grid.x0_m) / grid.dx_m + 0.5);
    const int py = static_cast<int>((t.y_m - grid.y0_m) / grid.dy_m + 0.5);
    float peak = 0.0f;
    const int r = 2 * p.upsample_factor;
    for (int dy = -r; dy <= r; ++dy) {
      for (int dx = -r; dx <= r; ++dx) {
        const int x = px + dx, y = py + dy;
        if (x < 0 || x >= result.width || y < 0 || y >= result.height) continue;
        peak = std::max(peak, result.at(x, y));
      }
    }
    EXPECT_GT(peak, 3.0 * bg_mean) << "target at " << t.x_m << "," << t.y_m;
  }
}

TEST_F(SirePipelineTest, PipelineDeterministic) {
  const SireParams p = params();
  const RadarData data = simulate_returns(make_scene(p.scene), p.radar);
  const SireResult a = run_sire_pipeline_host(data, p);
  const SireResult b = run_sire_pipeline_host(data, p);
  EXPECT_EQ(a.rsm_image, b.rsm_image);
}

TEST_F(SirePipelineTest, SimulatedRunMatchesHostResult) {
  // Narration must not change the arithmetic: the image computed while
  // running on the simulator equals the host-only result.
  SireWorkload workload(params());
  sim::Node node(sim::MachineConfig::romley());
  node.run(workload);
  const SireResult host =
      run_sire_pipeline_host(workload.data(), workload.params());
  EXPECT_EQ(workload.last_result().rsm_image, host.rsm_image);
}

TEST_F(SirePipelineTest, WorkloadIssuesIdenticalStreamsAcrossRuns) {
  SireWorkload workload(params());
  sim::Node node(sim::MachineConfig::romley());
  const sim::RunReport a = node.run(workload);
  const sim::RunReport b = node.run(workload);
  EXPECT_EQ(a.counter(pmu::Event::kTotIns), b.counter(pmu::Event::kTotIns));
  EXPECT_EQ(a.counter(pmu::Event::kLdIns), b.counter(pmu::Event::kLdIns));
}

TEST(SireParamsTest, PaperImageExceedsL3) {
  const SireParams p = SireParams::paper();
  const std::uint64_t buffer_bytes =
      static_cast<std::uint64_t>(p.full_width()) * p.full_height() * 4;
  EXPECT_GT(buffer_bytes, 20ull * 1024 * 1024);  // larger than any cache
}

}  // namespace
}  // namespace pcap::apps::sar
