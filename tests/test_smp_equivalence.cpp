// Differential tests for the cooperative single-threaded SMP engine
// (DESIGN.md §12): the engine rewrite may change how fast the simulator
// runs, never what it computes.
//
//  * Cooperative vs legacy thread-per-core token engine: bit-identical
//    reports for steppable, monolithic (fiber), and mixed workload sets,
//    with and without BMC capping (guarded by PCAP_SMP_LEGACY_ENGINE).
//  * Native stepping vs forced-fiber execution of the same workload:
//    identical resume points, identical reports.
//  * Quantum-boundary batching legality: the PR 2 stream fast paths
//    truncate bulk groups at the lane's quantum horizon, so a stream-API
//    workload co-running with an antagonist matches its per-op twin
//    bit for bit.
//  * `--jobs` invariance: independent SMP cells return bit-identical
//    reports whether run serially or on a worker pool.
//  * Exception safety: a throwing workload or control hook unwinds every
//    suspended co-runner (destructors run) and leaves the engine reusable.
//  * Telemetry neutrality: attaching package/per-core probes never
//    perturbs the run.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/bmc.hpp"
#include "sim/execution_context.hpp"
#include "sim/smp_node.hpp"
#include "telemetry/probe.hpp"
#include "util/thread_pool.hpp"

namespace pcap::sim {
namespace {

using pmu::Event;

void expect_identical(const SmpRunReport& a, const SmpRunReport& b) {
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.energy_j, b.energy_j);
  EXPECT_EQ(a.avg_power_w, b.avg_power_w);
  EXPECT_EQ(a.peak_power_w, b.peak_power_w);
  EXPECT_EQ(a.avg_frequency, b.avg_frequency);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.cores.size(), b.cores.size());
  for (std::size_t i = 0; i < a.cores.size(); ++i) {
    EXPECT_EQ(a.cores[i].workload, b.cores[i].workload) << "core " << i;
    EXPECT_EQ(a.cores[i].elapsed, b.cores[i].elapsed) << "core " << i;
    EXPECT_EQ(a.cores[i].counters, b.cores[i].counters) << "core " << i;
  }
}

SmpConfig make_config(int cores, SmpEngine engine) {
  SmpConfig config;
  config.cores = cores;
  config.engine = engine;
  return config;
}

/// Runs one capped cell on a fresh node: workloads are rebuilt per run so
/// neither engine sees state left behind by the other.
template <typename MakeWorkloads>
SmpRunReport run_cell(SmpEngine engine, MakeWorkloads make,
                      std::uint64_t seed, double cap_w = 0.0) {
  auto workloads = make();
  std::vector<Workload*> ptrs;
  for (auto& w : workloads) ptrs.push_back(w.get());
  SmpNode node(make_config(static_cast<int>(ptrs.size()), engine), seed);
  core::Bmc bmc(node);
  if (cap_w > 0.0) {
    node.set_control_hook([&bmc](PlatformControl&) { bmc.on_control_tick(); });
    bmc.set_cap(cap_w);
  }
  return node.run(ptrs);
}

std::vector<std::unique_ptr<Workload>> steppable_mix() {
  std::vector<std::unique_ptr<Workload>> ws;
  ws.push_back(std::make_unique<apps::MemoryBoundWorkload>(12ull << 20,
                                                           140000));
  ws.push_back(std::make_unique<apps::ComputeBoundWorkload>(400000));
  return ws;
}

std::vector<std::unique_ptr<Workload>> mixed_mix() {
  // A fiber-driven monolithic workload co-running with steppables.
  std::vector<std::unique_ptr<Workload>> ws;
  ws.push_back(std::make_unique<apps::PhasedWorkload>());
  ws.push_back(std::make_unique<apps::MemoryBoundWorkload>(8ull << 20,
                                                           120000));
  ws.push_back(std::make_unique<apps::ComputeBoundWorkload>(300000));
  return ws;
}

#if defined(PCAP_SMP_LEGACY_ENGINE)

TEST(SmpEquivalence, CooperativeMatchesLegacySteppable) {
  const SmpRunReport legacy =
      run_cell(SmpEngine::kThreadedLegacy, steppable_mix, 17);
  const SmpRunReport coop =
      run_cell(SmpEngine::kCooperative, steppable_mix, 17);
  expect_identical(coop, legacy);
}

TEST(SmpEquivalence, CooperativeMatchesLegacyMixedFiberSteppable) {
  const SmpRunReport legacy =
      run_cell(SmpEngine::kThreadedLegacy, mixed_mix, 23);
  const SmpRunReport coop = run_cell(SmpEngine::kCooperative, mixed_mix, 23);
  expect_identical(coop, legacy);
}

TEST(SmpEquivalence, CooperativeMatchesLegacyUnderBmcCap) {
  const SmpRunReport legacy =
      run_cell(SmpEngine::kThreadedLegacy, mixed_mix, 29, 150.0);
  const SmpRunReport coop =
      run_cell(SmpEngine::kCooperative, mixed_mix, 29, 150.0);
  expect_identical(coop, legacy);
  // The cap actually bit (this is a real capped cell, not a no-op).
  EXPECT_LE(coop.avg_power_w, 155.0);
}

#endif  // PCAP_SMP_LEGACY_ENGINE

// --- native stepping vs forced continuation ---------------------------------

/// Hides supports_step() so the engine must drive the same workload through
/// a fiber; run() and step() must induce the identical priced-op sequence.
class ForceMonolithic final : public Workload {
 public:
  explicit ForceMonolithic(std::unique_ptr<Workload> inner)
      : inner_(std::move(inner)) {}
  std::string name() const override { return inner_->name(); }
  void run(ExecutionContext& ctx) override { inner_->run(ctx); }

 private:
  std::unique_ptr<Workload> inner_;
};

TEST(SmpEquivalence, NativeStepMatchesForcedFiber) {
  auto forced = [] {
    std::vector<std::unique_ptr<Workload>> ws;
    for (auto& w : steppable_mix()) {
      ws.push_back(std::make_unique<ForceMonolithic>(std::move(w)));
    }
    return ws;
  };
  const SmpRunReport stepped =
      run_cell(SmpEngine::kCooperative, steppable_mix, 31);
  const SmpRunReport fibered = run_cell(SmpEngine::kCooperative, forced, 31);
  expect_identical(stepped, fibered);
}

// --- quantum-boundary batching legality -------------------------------------

constexpr std::uint64_t kSweepBytes = 1ull << 20;
constexpr std::int64_t kSweepStride = 64;
constexpr int kSweepReps = 24;

/// Sweeps a buffer with the batched stream API. Monolithic on purpose: the
/// lane suspends it mid-stream at quantum boundaries.
class StreamSweep final : public Workload {
 public:
  std::string name() const override { return "sweep"; }
  void run(ExecutionContext& ctx) override {
    const Address base = ctx.alloc(kSweepBytes);
    for (int rep = 0; rep < kSweepReps; ++rep) {
      ctx.load_stream(base, kSweepStride, kSweepBytes / kSweepStride);
      ctx.compute(64);
    }
  }
};

/// The per-op twin: the same logical access sequence, one load at a time.
class LoopSweep final : public Workload {
 public:
  std::string name() const override { return "sweep"; }
  void run(ExecutionContext& ctx) override {
    const Address base = ctx.alloc(kSweepBytes);
    for (int rep = 0; rep < kSweepReps; ++rep) {
      Address addr = base;
      for (std::uint64_t i = 0; i < kSweepBytes / kSweepStride; ++i) {
        ctx.load(addr);
        addr += static_cast<Address>(kSweepStride);
      }
      ctx.compute(64);
    }
  }
};

TEST(SmpEquivalence, StreamBatchingLegalUnderCoRunners) {
  // The antagonist thrashes the shared L3, so the sweep's access outcomes
  // depend on the exact interleaving: any illegal batching across a quantum
  // boundary (or across an op the co-runner should have interposed) would
  // shift misses and break bit-identity.
  auto streamed = [] {
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(std::make_unique<StreamSweep>());
    ws.push_back(std::make_unique<apps::MemoryBoundWorkload>(16ull << 20,
                                                             200000));
    return ws;
  };
  auto looped = [] {
    std::vector<std::unique_ptr<Workload>> ws;
    ws.push_back(std::make_unique<LoopSweep>());
    ws.push_back(std::make_unique<apps::MemoryBoundWorkload>(16ull << 20,
                                                             200000));
    return ws;
  };
  const SmpRunReport fast = run_cell(SmpEngine::kCooperative, streamed, 37);
  const SmpRunReport slow = run_cell(SmpEngine::kCooperative, looped, 37);
  expect_identical(fast, slow);
  // The cell is genuinely contended — the sweep saw shared-L3 misses.
  EXPECT_GT(fast.cores[0].counter(Event::kL3Tcm), 1000u);
}

// --- `--jobs` invariance for SMP cells --------------------------------------

TEST(SmpEquivalence, SmpCellsAreJobsInvariant) {
  const double kCaps[] = {170.0, 160.0, 150.0, 140.0};
  auto run_all = [&kCaps](std::size_t threads) {
    std::vector<SmpRunReport> reports(4);
    util::parallel_for(4, threads, [&](std::size_t i) {
      reports[i] = run_cell(SmpEngine::kCooperative, mixed_mix,
                            41 + i, kCaps[i]);
    });
    return reports;
  };
  const auto serial = run_all(1);
  const auto pooled = run_all(4);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], pooled[i]);
  }
}

// --- exception safety -------------------------------------------------------

/// Holds a stack sentinel whose destructor records the unwind; the workload
/// itself never finishes within the run.
class GuardedWorkload final : public Workload {
 public:
  explicit GuardedWorkload(bool* unwound) : unwound_(unwound) {}
  std::string name() const override { return "guarded"; }
  void run(ExecutionContext& ctx) override {
    struct Sentinel {
      bool* flag;
      ~Sentinel() { *flag = true; }
    } sentinel{unwound_};
    const Address base = ctx.alloc(1ull << 20);
    for (std::uint64_t i = 0; i < 50'000'000; ++i) {
      ctx.load(base + (i * 64) % (1ull << 20));
      ctx.compute(2);
    }
  }

 private:
  bool* unwound_;
};

class ThrowingWorkload final : public Workload {
 public:
  std::string name() const override { return "throwing"; }
  void run(ExecutionContext& ctx) override {
    ctx.compute(1000);
    throw std::runtime_error("workload boom");
  }
};

TEST(SmpEquivalence, ThrowingWorkloadUnwindsSuspendedCoRunner) {
  SmpNode node(make_config(2, SmpEngine::kCooperative), 43);
  bool unwound = false;
  GuardedWorkload guarded(&unwound);
  ThrowingWorkload throwing;
  std::vector<Workload*> ws{&guarded, &throwing};
  EXPECT_THROW(node.run(ws), std::runtime_error);
  // The co-runner was suspended mid-run; its stack must have unwound
  // through the sentinel's destructor before run() threw.
  EXPECT_TRUE(unwound);

  // The engine stays usable after the failed run.
  apps::ComputeBoundWorkload again(100000);
  std::vector<Workload*> retry{&again};
  const SmpRunReport r = node.run(retry);
  EXPECT_EQ(r.counter(Event::kTotIns), 100000u);
}

TEST(SmpEquivalence, ThrowingControlHookUnwindsRun) {
  SmpNode node(make_config(2, SmpEngine::kCooperative), 47);
  node.set_control_hook(
      [](PlatformControl&) { throw std::runtime_error("hook boom"); });
  bool unwound = false;
  GuardedWorkload guarded(&unwound);
  apps::ComputeBoundWorkload compute(4000000);
  std::vector<Workload*> ws{&guarded, &compute};
  EXPECT_THROW(node.run(ws), std::runtime_error);
  EXPECT_TRUE(unwound);

  node.set_control_hook({});
  apps::ComputeBoundWorkload again(100000);
  std::vector<Workload*> retry{&again};
  const SmpRunReport r = node.run(retry);
  EXPECT_EQ(r.counter(Event::kTotIns), 100000u);
}

#if defined(PCAP_SMP_LEGACY_ENGINE)

TEST(SmpEquivalence, LegacyEngineSurvivesThrowingWorkload) {
  // The pre-rewrite engine leaked joinable threads (std::terminate) here;
  // the repaired shutdown path must join every lane and rethrow.
  SmpNode node(make_config(2, SmpEngine::kThreadedLegacy), 53);
  bool unwound = false;
  GuardedWorkload guarded(&unwound);
  ThrowingWorkload throwing;
  std::vector<Workload*> ws{&guarded, &throwing};
  EXPECT_THROW(node.run(ws), std::runtime_error);
  EXPECT_TRUE(unwound);

  apps::ComputeBoundWorkload again(100000);
  std::vector<Workload*> retry{&again};
  const SmpRunReport r = node.run(retry);
  EXPECT_EQ(r.counter(Event::kTotIns), 100000u);
}

TEST(SmpEquivalence, LegacyEngineSurvivesThrowingControlHook) {
  SmpNode node(make_config(2, SmpEngine::kThreadedLegacy), 59);
  node.set_control_hook(
      [](PlatformControl&) { throw std::runtime_error("hook boom"); });
  bool unwound = false;
  GuardedWorkload guarded(&unwound);
  apps::ComputeBoundWorkload compute(4000000);
  std::vector<Workload*> ws{&guarded, &compute};
  EXPECT_THROW(node.run(ws), std::runtime_error);
  EXPECT_TRUE(unwound);

  node.set_control_hook({});
  apps::ComputeBoundWorkload again(100000);
  std::vector<Workload*> retry{&again};
  const SmpRunReport r = node.run(retry);
  EXPECT_EQ(r.counter(Event::kTotIns), 100000u);
}

#endif  // PCAP_SMP_LEGACY_ENGINE

// --- telemetry neutrality ---------------------------------------------------

TEST(SmpEquivalence, TelemetryProbesAreBitNeutral) {
  if constexpr (!telemetry::kCompiledIn) GTEST_SKIP();

  const SmpRunReport bare =
      run_cell(SmpEngine::kCooperative, steppable_mix, 61, 160.0);

  telemetry::TelemetryConfig tconfig;
  tconfig.enabled = true;
  tconfig.sample_period = util::microseconds(20);
  telemetry::NodeProbe package(tconfig, nullptr, nullptr, "package");
  telemetry::NodeProbe core0(tconfig, nullptr, nullptr, "core0");
  telemetry::NodeProbe core1(tconfig, nullptr, nullptr, "core1");

  auto workloads = steppable_mix();
  std::vector<Workload*> ptrs;
  for (auto& w : workloads) ptrs.push_back(w.get());
  SmpNode node(make_config(2, SmpEngine::kCooperative), 61);
  core::Bmc bmc(node);
  node.set_control_hook([&bmc](PlatformControl&) { bmc.on_control_tick(); });
  bmc.set_cap(160.0);
  node.set_telemetry(&package);
  std::vector<telemetry::NodeProbe*> cores{&core0, &core1};
  node.set_core_telemetry(cores);
  const SmpRunReport probed = node.run(ptrs);

  expect_identical(probed, bare);

  // The probes really sampled, and the per-core series are per-core: the
  // memory-bound lane misses L1 where the compute-bound lane cannot.
  EXPECT_GT(package.sampler().taken(), 2u);
  EXPECT_GT(core0.sampler().taken(), 2u);
  EXPECT_GT(core1.sampler().taken(), 2u);
  const auto l1_miss = [](const telemetry::NodeSample& s) {
    return s.l1_miss_rate;
  };
  EXPECT_GT(core0.sampler().aggregate(l1_miss).mean,
            core1.sampler().aggregate(l1_miss).mean);
}

}  // namespace
}  // namespace pcap::sim
