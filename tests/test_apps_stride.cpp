// Tests for the stride microbenchmark: the uncapped surface must expose the
// configured hierarchy (sizes, latencies, line size), as the paper reads
// from its Figure 3.
#include <gtest/gtest.h>

#include "apps/stride/stride.hpp"
#include "core/capped_runner.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "util/units.hpp"

namespace pcap::apps::stride {
namespace {

class StrideSurface : public ::testing::Test {
 protected:
  // Two runs merged: a coarse-stride sweep over the full size range (cheap
  // but covers every capacity knee at line stride) plus a fine-stride sweep
  // over a small range (line-size detection, amortisation behaviour).
  static const StrideResults& results() {
    static const StrideResults cached = [] {
      StrideConfig coarse;
      coarse.max_array_bytes = 64ull * 1024 * 1024;
      coarse.min_stride_bytes = 64;
      coarse.touches_per_cell = 2000;

      StrideConfig fine;
      fine.max_array_bytes = 1024 * 1024;
      fine.min_stride_bytes = 8;
      fine.touches_per_cell = 2000;

      sim::Node node(sim::MachineConfig::romley());
      node.set_os_noise(false);
      StrideWorkload coarse_run(coarse);
      node.run(coarse_run);
      StrideWorkload fine_run(fine);
      node.run(fine_run);

      StrideResults merged = coarse_run.results();
      for (const auto& cell : fine_run.results().cells) {
        if (merged.ns(cell.array_bytes, cell.stride_bytes) < 0.0) {
          merged.cells.push_back(cell);
        }
      }
      return merged;
    }();
    return cached;
  }
};

TEST_F(StrideSurface, GridCoversConfiguredRanges) {
  const auto sizes = results().array_sizes();
  EXPECT_EQ(sizes.front(), 4u * 1024);
  EXPECT_EQ(sizes.back(), 64ull * 1024 * 1024);
  const auto strides = results().strides();
  EXPECT_EQ(strides.front(), 8u);
  // Strides go up to half the largest array.
  EXPECT_EQ(strides.back(), 32ull * 1024 * 1024);
  EXPECT_EQ(results().ns(123, 456), -1.0);  // absent cell
}

TEST(StrideConfigTest, QuickAndPaperPresets) {
  EXPECT_LT(StrideConfig::quick().max_array_bytes,
            StrideConfig::paper().max_array_bytes);
  EXPECT_EQ(StrideConfig::paper().max_array_bytes, 64ull * 1024 * 1024);
}

TEST_F(StrideSurface, L1ResidentArrayIsFast) {
  // 4K array at line stride: pure L1 hits. L1 is 4 cycles at 2.701 GHz
  // (~1.48 ns) plus the loop's compute charge.
  const double ns = results().ns(4 * 1024, 64);
  EXPECT_GT(ns, 1.0);
  EXPECT_LT(ns, 2.5);  // paper reads ~1.5 ns
}

TEST_F(StrideSurface, PlateausAreOrdered) {
  // Latency at line stride must rise strictly across level boundaries.
  const double l1 = results().ns(16 * 1024, 64);        // fits L1
  const double l2 = results().ns(128 * 1024, 64);       // fits L2 only
  const double l3 = results().ns(8 * 1024 * 1024, 64);  // fits L3 only
  const double mem = results().ns(64 * 1024 * 1024, 64);
  EXPECT_LT(l1, l2);
  EXPECT_LT(l2, l3);
  EXPECT_LT(l3, mem);
  EXPECT_GT(mem, 20.0);  // DRAM-bound (paper: ~60 ns per access)
}

TEST_F(StrideSurface, InferenceRecoversMachineGeometry) {
  const HierarchyInference inf = infer_hierarchy(results());
  EXPECT_EQ(inf.l1_fits_bytes, 32u * 1024);   // "between 32K and 64K"
  EXPECT_EQ(inf.l2_fits_bytes, 256u * 1024);  // "between 256K and 512K"
  EXPECT_EQ(inf.l3_fits_bytes, 16ull * 1024 * 1024);  // "between 16M and 32M"
  EXPECT_EQ(inf.line_bytes, 64u);
  EXPECT_LT(inf.l1_ns, inf.l2_ns);
  EXPECT_LT(inf.l2_ns, inf.l3_ns);
  EXPECT_LT(inf.l3_ns, inf.mem_ns);
}

TEST_F(StrideSurface, SmallStridesAmortiseLineFills) {
  // At 8 B stride, 8 touches share each 64 B line: average cost for an
  // L2-resident array is much lower than at line stride.
  const double dense = results().ns(128 * 1024, 8);
  const double sparse = results().ns(128 * 1024, 64);
  EXPECT_LT(dense, sparse * 0.75);
}

TEST(StrideWorkloadTest, DeterministicAcrossFreshNodes) {
  const StrideConfig config = StrideConfig::quick();
  auto run_once = [&config] {
    sim::Node node(sim::MachineConfig::romley(), /*seed=*/5);
    node.set_os_noise(false);
    StrideWorkload workload(config);
    node.run(workload);
    return workload.results().cells;
  };
  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].ns_per_access, second[i].ns_per_access)
        << "cell " << i;
  }
}

TEST(StrideWorkloadTest, CapInflatesAccessTimes) {
  // Mirrors the Fig. 3 vs Fig. 4 comparison at one representative cell.
  StrideConfig config = StrideConfig::quick();
  config.touches_per_cell = 8000;

  sim::Node uncapped(sim::MachineConfig::romley());
  StrideWorkload base(config);
  uncapped.run(base);

  sim::Node capped_node(sim::MachineConfig::romley());
  core::CappedRunner runner(capped_node);
  StrideWorkload capped(config);
  runner.run(capped, 120.0);

  double base_sum = 0.0, capped_sum = 0.0;
  for (const auto& cell : base.results().cells) base_sum += cell.ns_per_access;
  for (const auto& cell : capped.results().cells) {
    capped_sum += cell.ns_per_access;
  }
  EXPECT_GT(capped_sum, base_sum * 3.0);
}

}  // namespace
}  // namespace pcap::apps::stride
