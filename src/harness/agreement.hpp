// Quantitative shape agreement between a measured study and the paper's
// published rows: Pearson correlation on signed-log-scaled percent-diff
// columns across the cap grid. 1.0 = identical shape; the log scaling keeps
// the 120 W explosions from dominating the mid-cap structure.
#pragma once

#include <span>

#include "harness/experiment.hpp"
#include "harness/paper_reference.hpp"

namespace pcap::harness {

struct ShapeAgreement {
  double time = 0.0;
  double power = 0.0;
  double energy = 0.0;
  double overall = 0.0;  // mean of the three
  int caps_compared = 0;
};

/// Correlates the study's capped cells against the matching paper rows
/// (cells whose cap has no paper row are skipped).
ShapeAgreement shape_agreement(const StudyResult& study,
                               std::span<const PaperRow> reference);

/// Pearson correlation of two equal-length samples (0 for n < 2 or zero
/// variance).
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Signed log scaling: sign(x) * log1p(|x|).
double signed_log(double x);

}  // namespace pcap::harness
