#include "harness/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pcap::harness {

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (arg == "--full") {
      options.full = true;
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.reps = std::atoi(std::string(value_of("--reps=")).c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<std::size_t>(
          std::atoi(std::string(value_of("--jobs=")).c_str()));
      if (options.jobs == 0) options.jobs = 1;
    } else if (arg.rfind("--csv-dir=", 0) == 0) {
      options.csv_dir = std::string(value_of("--csv-dir="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<std::uint64_t>(
          std::atoll(std::string(value_of("--seed=")).c_str()));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --full --reps=N --jobs=N --csv-dir=PATH --seed=N\n"
          "  --full uses paper-scale repetitions; default is a quick run.\n");
      std::exit(0);
    }
  }
  return options;
}

}  // namespace pcap::harness
