#include "harness/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pcap::harness {

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    auto value_of = [&](std::string_view prefix) -> std::string_view {
      return arg.substr(prefix.size());
    };
    if (arg == "--full") {
      options.full = true;
    } else if (arg.rfind("--reps=", 0) == 0) {
      options.reps = std::atoi(std::string(value_of("--reps=")).c_str());
    } else if (arg.rfind("--jobs=", 0) == 0) {
      options.jobs = static_cast<std::size_t>(
          std::atoi(std::string(value_of("--jobs=")).c_str()));
      if (options.jobs == 0) options.jobs = 1;
    } else if (arg.rfind("--csv-dir=", 0) == 0) {
      options.csv_dir = std::string(value_of("--csv-dir="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = static_cast<std::uint64_t>(
          std::atoll(std::string(value_of("--seed=")).c_str()));
    } else if (arg == "--telemetry") {
      options.telemetry = true;
    } else if (arg.rfind("--telemetry-period=", 0) == 0) {
      options.telemetry_period_us =
          std::atof(std::string(value_of("--telemetry-period=")).c_str());
      if (options.telemetry_period_us <= 0.0) {
        options.telemetry_period_us = 0.0;  // fall back to binary default
      }
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      options.trace_out = std::string(value_of("--trace-out="));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "flags: --full --reps=N --jobs=N --csv-dir=PATH --seed=N\n"
          "       --telemetry --telemetry-period=US --trace-out=PATH\n"
          "  --full uses paper-scale repetitions; default is a quick run.\n"
          "  --telemetry samples node power/frequency/counters; the period\n"
          "  is simulated microseconds. --trace-out writes a Chrome\n"
          "  trace-event JSON (open in ui.perfetto.dev).\n");
      std::exit(0);
    }
  }
  return options;
}

}  // namespace pcap::harness
