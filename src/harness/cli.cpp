#include "harness/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string_view>
#include <vector>

namespace pcap::harness {

namespace {

/// One row of the flag table. Flags with an empty `placeholder` are bare
/// booleans ("--full"); the rest take "=VALUE" and hand the value text to
/// their setter. The --help listing is generated from these same rows.
struct OptionSpec {
  std::string_view name;         // "--reps"
  std::string_view placeholder;  // "N", or "" for bare flags
  std::string_view help;
  std::function<void(CliOptions&, std::string_view)> apply;
};

int to_int(std::string_view text) {
  return std::atoi(std::string(text).c_str());
}
double to_double(std::string_view text) {
  return std::atof(std::string(text).c_str());
}

const std::vector<OptionSpec>& option_table() {
  static const std::vector<OptionSpec> table = {
      {"--full", "",
       "paper-scale repetitions/grids (default is a quick run)",
       [](CliOptions& o, std::string_view) { o.full = true; }},
      {"--reps", "N", "repetition override",
       [](CliOptions& o, std::string_view v) { o.reps = to_int(v); }},
      {"--jobs", "N", "worker threads for independent cells",
       [](CliOptions& o, std::string_view v) {
         o.jobs = static_cast<std::size_t>(to_int(v));
         if (o.jobs == 0) o.jobs = 1;
       }},
      {"--csv-dir", "PATH", "where result CSVs land (default \"results\")",
       [](CliOptions& o, std::string_view v) { o.csv_dir = std::string(v); }},
      {"--seed", "N", "base RNG seed",
       [](CliOptions& o, std::string_view v) {
         o.seed = static_cast<std::uint64_t>(
             std::atoll(std::string(v).c_str()));
       }},
      {"--telemetry", "", "enable per-node time-series sampling",
       [](CliOptions& o, std::string_view) { o.telemetry = true; }},
      {"--telemetry-period", "US",
       "sampling period in simulated microseconds",
       [](CliOptions& o, std::string_view v) {
         o.telemetry_period_us = to_double(v);
         if (o.telemetry_period_us <= 0.0) {
           o.telemetry_period_us = 0.0;  // fall back to binary default
         }
       }},
      {"--trace-out", "PATH",
       "write a Chrome trace-event JSON (open in ui.perfetto.dev)",
       [](CliOptions& o, std::string_view v) { o.trace_out = std::string(v); }},
      {"--policy", "NAME",
       "scheduler policy (uniform|greedy|amenability|race-to-idle; sched "
       "binaries, empty = sweep all)",
       [](CliOptions& o, std::string_view v) { o.policy = std::string(v); }},
      {"--budget", "W", "group power budget in watts (sched binaries)",
       [](CliOptions& o, std::string_view v) {
         o.budget_w = to_double(v);
         if (o.budget_w < 0.0) o.budget_w = 0.0;
       }},
      {"--arrivals", "N", "job-stream length (sched binaries)",
       [](CliOptions& o, std::string_view v) { o.arrivals = to_int(v); }},
      {"--lanes", "N",
       "schedulable lanes per node; >1 co-runs jobs on the shared "
       "hierarchy (sched binaries)",
       [](CliOptions& o, std::string_view v) {
         o.lanes = static_cast<std::size_t>(to_int(v));
       }},
      {"--racks", "N", "racks in the fleet (fleet binaries)",
       [](CliOptions& o, std::string_view v) {
         o.racks = static_cast<std::size_t>(to_int(v));
       }},
      {"--rack-nodes", "N", "nodes per rack (fleet binaries)",
       [](CliOptions& o, std::string_view v) {
         o.rack_nodes = static_cast<std::size_t>(to_int(v));
       }},
      {"--tenants", "N", "tenant arrival streams (fleet binaries)",
       [](CliOptions& o, std::string_view v) {
         o.tenants = static_cast<std::size_t>(to_int(v));
       }},
  };
  return table;
}

void print_usage() {
  std::printf("flags:\n");
  for (const OptionSpec& spec : option_table()) {
    std::string left(spec.name);
    if (!spec.placeholder.empty()) {
      left += "=";
      left += spec.placeholder;
    }
    std::printf("  %-22s %.*s\n", left.c_str(),
                static_cast<int>(spec.help.size()), spec.help.data());
  }
}

}  // namespace

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--help" || arg == "-h") {
      print_usage();
      std::exit(0);
    }
    for (const OptionSpec& spec : option_table()) {
      if (spec.placeholder.empty()) {
        if (arg == spec.name) {
          spec.apply(options, {});
          break;
        }
        continue;
      }
      if (arg.size() > spec.name.size() + 1 &&
          arg.rfind(spec.name, 0) == 0 && arg[spec.name.size()] == '=') {
        spec.apply(options, arg.substr(spec.name.size() + 1));
        break;
      }
    }
    // Unknown arguments are ignored (google-benchmark passes its own).
  }
  return options;
}

}  // namespace pcap::harness
