#include "harness/sched_study.hpp"

#include <algorithm>
#include <cstdio>
#include <map>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"

namespace pcap::harness {

std::vector<SchedStudyRow> run_sched_study(const SchedStudyConfig& config) {
  std::vector<std::string> policies = config.policies;
  if (policies.empty()) policies = sched::policy_names();

  sched::ArrivalConfig arrivals = config.arrivals;
  arrivals.seed = config.seed;
  const std::vector<sched::JobSpec> stream =
      sched::generate_stream(arrivals);

  std::vector<SchedStudyRow> rows;
  for (const double budget_w : config.budgets_w) {
    for (const std::string& policy : policies) {
      sched::SchedulerConfig sc;
      sc.node_count = config.node_count;
      sc.lanes_per_node = config.lanes_per_node;
      sc.budget_w = budget_w;
      sc.policy_name = policy;
      sc.seed = config.seed;
      sc.jobs = config.jobs;
      sc.faults = config.faults;
      sc.table = config.table;
      sched::ClusterScheduler scheduler(sc);
      SchedStudyRow row;
      row.policy = policy;
      row.budget_w = budget_w;
      row.result = scheduler.run(stream);
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

sched::AmenabilityTable load_or_characterize(
    const std::string& path, const sched::CharacterizeOptions& options) {
  if (auto loaded = sched::AmenabilityTable::load(path)) {
    if (loaded->complete()) return *loaded;
    std::printf("amenability table %s incomplete; re-characterising\n",
                path.c_str());
  }
  sched::AmenabilityTable table = sched::characterize_job_classes(options);
  table.save(path);
  return table;
}

void write_sched_csv(const std::string& path,
                     const std::vector<SchedStudyRow>& rows) {
  util::CsvWriter csv(path);
  csv.row({"policy", "budget_w", "makespan_s", "busy_energy_j",
           "idle_energy_j", "total_energy_j", "deadline_misses",
           "mean_turnaround_s", "replans", "cap_updates",
           "cap_update_failures", "infeasible_plans", "budget_violations",
           "max_cap_sum_w", "chunks", "corun_chunks", "corun_cells",
           "mgmt_retries", "mgmt_failed_exchanges"});
  for (const SchedStudyRow& row : rows) {
    const sched::ScheduleResult& r = row.result;
    csv.field(row.policy)
        .field(row.budget_w)
        .field(r.makespan_s)
        .field(r.busy_energy_j)
        .field(r.idle_energy_j)
        .field(r.total_energy_j)
        .field(static_cast<std::int64_t>(r.deadline_misses))
        .field(r.mean_turnaround_s)
        .field(r.replans)
        .field(r.cap_updates)
        .field(r.cap_update_failures)
        .field(r.infeasible_plans)
        .field(r.budget_violations)
        .field(r.max_cap_sum_w)
        .field(r.chunks)
        .field(r.corun_chunks)
        .field(r.corun_cells)
        .field(r.mgmt_retries)
        .field(r.mgmt_failed_exchanges);
    csv.end_row();
  }
}

std::string render_sched_chart(const std::vector<SchedStudyRow>& rows,
                               const std::string& metric) {
  // Collect the budget axis (sorted unique) and one series per policy.
  std::vector<double> budgets;
  for (const SchedStudyRow& row : rows) budgets.push_back(row.budget_w);
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  auto value_of = [&](const SchedStudyRow& row) {
    if (metric == "energy") return row.result.total_energy_j;
    if (metric == "turnaround") return row.result.mean_turnaround_s * 1e6;
    return row.result.makespan_s * 1e6;  // makespan, in simulated us
  };

  std::map<std::string, std::vector<double>> series;
  for (const SchedStudyRow& row : rows) {
    auto& values = series[row.policy];
    values.resize(budgets.size(), 0.0);
    const auto it = std::lower_bound(budgets.begin(), budgets.end(),
                                     row.budget_w);
    values[static_cast<std::size_t>(it - budgets.begin())] = value_of(row);
  }

  std::vector<std::string> labels;
  for (const double b : budgets) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", b);
    labels.emplace_back(buf);
  }
  util::AsciiChart chart(labels);
  chart.set_title(metric + " vs group budget (W)");
  chart.set_y_label(metric == "energy" ? "J" : "us");
  for (auto& [name, values] : series) {
    chart.add_series({name, std::move(values)});
  }
  return chart.render();
}

}  // namespace pcap::harness
