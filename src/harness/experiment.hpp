// Power-cap study runner: executes a workload at baseline and across a grid
// of power caps, N repetitions each, averaging the measurements exactly as
// the paper's methodology (§III) prescribes.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bmc.hpp"
#include "pmu/events.hpp"
#include "sim/machine_config.hpp"
#include "sim/workload.hpp"
#include "telemetry/probe.hpp"
#include "util/units.hpp"

namespace pcap::harness {

/// Creates a fresh workload instance (used when cells run on worker threads,
/// each with its own node).
using WorkloadFactory = std::function<std::unique_ptr<sim::Workload>()>;

struct StudyConfig {
  std::vector<double> caps_w = {160, 155, 150, 145, 140, 135, 130, 125, 120};
  int repetitions = 5;
  std::size_t jobs = 1;  // >1: one node per cell, cells run concurrently
  sim::MachineConfig machine = sim::MachineConfig::romley();
  core::BmcConfig bmc;
  std::uint64_t seed = 1;

  /// Per-cell node telemetry. When `telemetry.enabled`, every cell's node
  /// carries a probe (power / frequency / cap / miss-rate time series), and
  /// `telemetry_sink` — if set — is called once per cell with the cell's
  /// label ("baseline" or "cap-<w>") and its filled sampler. Sinks run on
  /// the calling thread after all cells finish, in deterministic cell
  /// order, so they need no locking even with jobs > 1. Attaching
  /// telemetry must not change any measurement
  /// (tests/test_telemetry.cpp holds the study bit-identical on/off).
  telemetry::TelemetryConfig telemetry;
  std::function<void(const std::string&, const telemetry::Sampler&)>
      telemetry_sink;
};

/// Averaged measurements for one (workload, cap) cell.
struct CellStats {
  std::optional<double> cap_w;  // nullopt == baseline (no cap)
  int repetitions = 0;
  double time_s = 0.0;
  double time_stddev_s = 0.0;
  double avg_power_w = 0.0;
  double power_stddev_w = 0.0;
  double energy_j = 0.0;
  util::Hertz avg_frequency = 0;
  double avg_duty = 1.0;
  std::array<double, pmu::kEventCount> counters{};  // averaged over reps

  double counter(pmu::Event e) const { return counters[pmu::index_of(e)]; }
};

struct StudyResult {
  std::string workload;
  CellStats baseline;
  std::vector<CellStats> capped;  // ordered as StudyConfig::caps_w

  /// Cell at exactly `cap_w`; nullptr if absent.
  const CellStats* cell(double cap_w) const;
  /// Baseline-relative percent difference helper.
  static double pct(double value, double base);
};

/// Runs the full study. With jobs == 1 everything runs on the calling
/// thread on a single node (deterministic order); with jobs > 1 each cell
/// gets its own node and workload instance.
StudyResult run_power_cap_study(const std::string& workload_name,
                                const WorkloadFactory& factory,
                                const StudyConfig& config);

struct CliOptions;

/// Wires the CLI telemetry flags into `config`: a no-op unless --telemetry
/// (or --trace-out) was given, in which case every cell's sample series is
/// written to `<csv_dir>/<prefix>_telemetry_<label>.csv` ("baseline",
/// "cap-150", ...).
void apply_cli_telemetry(StudyConfig& config, const CliOptions& cli,
                         const std::string& prefix);

}  // namespace pcap::harness
