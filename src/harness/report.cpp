#include "harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>

#include "util/ascii_chart.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace pcap::harness {

namespace {

using util::TextTable;

std::string cap_label(const std::optional<double>& cap) {
  if (!cap) return "baseline";
  return TextTable::num(static_cast<std::uint64_t>(std::llround(*cap)));
}

std::string time_hms(double seconds) {
  return util::format_duration(util::seconds(seconds));
}

const PaperRow* reference_row(std::span<const PaperRow> reference,
                              const std::optional<double>& cap) {
  for (const auto& r : reference) {
    if (r.cap_w == cap) return &r;
  }
  return nullptr;
}

/// All cells of a study in paper order: baseline first, then the cap grid.
std::vector<const CellStats*> ordered_cells(const StudyResult& study) {
  std::vector<const CellStats*> cells;
  cells.push_back(&study.baseline);
  for (const auto& c : study.capped) cells.push_back(&c);
  return cells;
}

}  // namespace

void render_table1(std::ostream& os, std::span<const StudyResult> studies) {
  os << "Table I: baseline power consumption and execution time "
        "(measured on the simulated node vs the paper)\n";
  TextTable t({"Code", "Avg Node Power (W)", "Paper (W)", "Execution Time",
               "Paper Time", "Time x vs paper scale"});
  for (const auto& study : studies) {
    const PaperBaseline* ref = nullptr;
    for (const auto& r : paper_table1()) {
      if (study.workload.find(r.code.substr(0, 4)) != std::string::npos) {
        ref = &r;
      }
    }
    std::vector<std::string> row;
    row.push_back(study.workload);
    row.push_back(TextTable::num(study.baseline.avg_power_w, 1));
    row.push_back(ref ? TextTable::num(ref->power_w, 0) : "-");
    row.push_back(time_hms(study.baseline.time_s));
    row.push_back(ref ? time_hms(ref->time_s) : "-");
    row.push_back(ref && study.baseline.time_s > 0
                      ? TextTable::num(ref->time_s / study.baseline.time_s, 0)
                      : "-");
    t.add_row(std::move(row));
  }
  t.render(os);
  os << "(The simulator compresses time; the paper-vs-measured *ratios* "
        "between the two applications are the comparable quantity.)\n";
}

void render_table2(std::ostream& os, const StudyResult& study,
                   std::span<const PaperRow> reference) {
  const auto cells = ordered_cells(study);
  const CellStats& base = study.baseline;

  os << "Table II (" << study.workload
     << "): performance data averaged over " << base.repetitions
     << " runs; %diff columns are relative to the uncapped baseline.\n";

  TextTable perf({"Expt", "Cap (W)", "Power (W)", "%Dp", "paper%Dp",
                  "Energy (J)", "%DE", "paper%DE", "Freq (MHz)", "Time",
                  "%Dt", "paper%Dt"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& c = *cells[i];
    const PaperRow* ref = reference_row(reference, c.cap_w);
    std::vector<std::string> row;
    row.push_back(ref ? std::string(ref->label)
                      : std::string("#") + std::to_string(i));
    row.push_back(cap_label(c.cap_w));
    row.push_back(TextTable::num(c.avg_power_w, 1));
    row.push_back(TextTable::pct(StudyResult::pct(c.avg_power_w, base.avg_power_w)));
    row.push_back(ref ? TextTable::pct(ref->pct_power) : "-");
    row.push_back(TextTable::num(c.energy_j, 1));
    row.push_back(TextTable::pct(StudyResult::pct(c.energy_j, base.energy_j)));
    row.push_back(ref ? TextTable::pct(ref->pct_energy) : "-");
    row.push_back(TextTable::num(
        static_cast<std::uint64_t>(c.avg_frequency / util::kMegaHertz)));
    row.push_back(time_hms(c.time_s));
    row.push_back(TextTable::pct(StudyResult::pct(c.time_s, base.time_s)));
    row.push_back(ref ? TextTable::pct(ref->pct_time) : "-");
    perf.add_row(std::move(row));
  }
  perf.render(os);

  os << '\n';
  TextTable miss({"Expt", "Cap (W)", "L1 Misses", "%D", "L2 Misses", "%D",
                  "paper%D", "L3 Misses", "%D", "paper%D", "TLB-D Misses",
                  "%D", "TLB-I Misses", "%D", "paper%D"});
  auto miss_cells = [&](const CellStats& c, pmu::Event e) {
    return static_cast<std::uint64_t>(c.counter(e));
  };
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellStats& c = *cells[i];
    const PaperRow* ref = reference_row(reference, c.cap_w);
    auto pct_of = [&](pmu::Event e) {
      return TextTable::pct(StudyResult::pct(c.counter(e), base.counter(e)));
    };
    std::vector<std::string> row;
    row.push_back(ref ? std::string(ref->label)
                      : std::string("#") + std::to_string(i));
    row.push_back(cap_label(c.cap_w));
    row.push_back(TextTable::grouped(miss_cells(c, pmu::Event::kL1Dcm)));
    row.push_back(pct_of(pmu::Event::kL1Dcm));
    row.push_back(TextTable::grouped(miss_cells(c, pmu::Event::kL2Tcm)));
    row.push_back(pct_of(pmu::Event::kL2Tcm));
    row.push_back(ref ? TextTable::pct(ref->pct_l2) : "-");
    row.push_back(TextTable::grouped(miss_cells(c, pmu::Event::kL3Tcm)));
    row.push_back(pct_of(pmu::Event::kL3Tcm));
    row.push_back(ref ? TextTable::pct(ref->pct_l3) : "-");
    row.push_back(TextTable::grouped(miss_cells(c, pmu::Event::kTlbDm)));
    row.push_back(pct_of(pmu::Event::kTlbDm));
    row.push_back(TextTable::grouped(miss_cells(c, pmu::Event::kTlbIm)));
    row.push_back(pct_of(pmu::Event::kTlbIm));
    row.push_back(ref ? TextTable::pct(ref->pct_tlb_i) : "-");
    miss.add_row(std::move(row));
  }
  miss.render(os);
}

void write_table2_csv(const std::string& path, const StudyResult& study) {
  util::CsvWriter csv(path);
  csv.row({"workload", "cap_w", "power_w", "energy_j", "freq_mhz", "time_s",
           "l1_misses", "l2_misses", "l3_misses", "tlb_d_misses",
           "tlb_i_misses", "instructions", "cycles"});
  for (const CellStats* c : ordered_cells(study)) {
    csv.field(study.workload);
    csv.field(c->cap_w ? *c->cap_w : 0.0);
    csv.field(c->avg_power_w);
    csv.field(c->energy_j);
    csv.field(static_cast<double>(c->avg_frequency) / 1e6);
    csv.field(c->time_s);
    csv.field(c->counter(pmu::Event::kL1Dcm));
    csv.field(c->counter(pmu::Event::kL2Tcm));
    csv.field(c->counter(pmu::Event::kL3Tcm));
    csv.field(c->counter(pmu::Event::kTlbDm));
    csv.field(c->counter(pmu::Event::kTlbIm));
    csv.field(c->counter(pmu::Event::kTotIns));
    csv.field(c->counter(pmu::Event::kTotCyc));
    csv.end_row();
  }
}

namespace {

struct FigureSeries {
  std::string name;
  std::vector<double> raw;
};

std::vector<FigureSeries> figure_series(const StudyResult& study,
                                        bool include_cache_rates) {
  const auto cells = ordered_cells(study);
  std::vector<FigureSeries> series;
  auto add = [&](std::string name, auto getter) {
    FigureSeries s;
    s.name = std::move(name);
    for (const CellStats* c : cells) s.raw.push_back(getter(*c));
    series.push_back(std::move(s));
  };
  if (include_cache_rates) {
    add("L2 miss rate", [](const CellStats& c) {
      const double a = c.counter(pmu::Event::kL2Tca);
      return a > 0 ? c.counter(pmu::Event::kL2Tcm) / a : 0.0;
    });
    add("L3 miss rate", [](const CellStats& c) {
      const double a = c.counter(pmu::Event::kL3Tca);
      return a > 0 ? c.counter(pmu::Event::kL3Tcm) / a : 0.0;
    });
  }
  add("TLB instr misses",
      [](const CellStats& c) { return c.counter(pmu::Event::kTlbIm); });
  add("Frequency",
      [](const CellStats& c) { return static_cast<double>(c.avg_frequency); });
  add("Time", [](const CellStats& c) { return c.time_s; });
  add("Power", [](const CellStats& c) { return c.avg_power_w; });
  add("Energy", [](const CellStats& c) { return c.energy_j; });
  return series;
}

std::vector<std::string> figure_labels(const StudyResult& study) {
  std::vector<std::string> labels{"baseline"};
  for (const auto& c : study.capped) labels.push_back(cap_label(c.cap_w));
  return labels;
}

}  // namespace

void render_normalized_figure(std::ostream& os, const StudyResult& study,
                              const std::string& title,
                              bool include_cache_rates) {
  util::AsciiChart chart(figure_labels(study));
  chart.set_title(title);
  chart.set_y_label("normalized to series maximum");
  for (auto& s : figure_series(study, include_cache_rates)) {
    const double peak = *std::max_element(s.raw.begin(), s.raw.end());
    std::vector<double> normalized;
    normalized.reserve(s.raw.size());
    for (double v : s.raw) normalized.push_back(peak > 0 ? v / peak : 0.0);
    chart.add_series({s.name, std::move(normalized)});
  }
  os << chart.render();
}

void write_figure_csv(const std::string& path, const StudyResult& study,
                      bool include_cache_rates) {
  util::CsvWriter csv(path);
  const auto series = figure_series(study, include_cache_rates);
  csv.field("cap");
  for (const auto& s : series) csv.field(s.name);
  csv.end_row();
  const auto labels = figure_labels(study);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    csv.field(labels[i]);
    for (const auto& s : series) {
      const double peak = *std::max_element(s.raw.begin(), s.raw.end());
      csv.field(peak > 0 ? s.raw[i] / peak : 0.0);
    }
    csv.end_row();
  }
}

void render_stride_figure(std::ostream& os,
                          const apps::stride::StrideResults& results,
                          const std::string& title) {
  const auto strides = results.strides();
  const auto sizes = results.array_sizes();
  std::vector<std::string> labels;
  for (auto s : strides) labels.push_back(util::format_bytes(s));

  util::AsciiChart chart(labels);
  chart.set_title(title);
  chart.set_log_y(true);
  chart.set_y_label("access time (ns)");
  for (auto size : sizes) {
    std::vector<double> ys;
    for (auto stride : strides) {
      const double v = results.ns(size, stride);
      ys.push_back(v >= 0 ? v : 0.0);
    }
    chart.add_series({util::format_bytes(size), std::move(ys)});
  }
  os << chart.render();

  // Numeric surface, one row per array size.
  TextTable t([&] {
    std::vector<std::string> header{"array\\stride"};
    for (const auto& l : labels) header.push_back(l);
    return header;
  }());
  for (auto size : sizes) {
    std::vector<std::string> row{util::format_bytes(size)};
    for (auto stride : strides) {
      const double v = results.ns(size, stride);
      row.push_back(v >= 0 ? TextTable::num(v, 2) : "");
    }
    t.add_row(std::move(row));
  }
  t.render(os);
}

namespace {

std::ofstream open_script(const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  return std::ofstream(path, std::ios::trunc);
}

}  // namespace

void write_figure_gnuplot(const std::string& script_path,
                          const std::string& csv_path,
                          const std::string& title,
                          bool include_cache_rates) {
  std::ofstream os = open_script(script_path);
  if (!os) return;
  const int series = include_cache_rates ? 7 : 5;
  os << "# gnuplot script generated by pcap; render with: gnuplot "
     << script_path << "\n"
     << "set datafile separator ','\n"
     << "set terminal pngcairo size 1000,600\n"
     << "set output '" << csv_path << ".png'\n"
     << "set title '" << title << "'\n"
     << "set ylabel 'normalized to series maximum'\n"
     << "set yrange [0:1.1]\n"
     << "set key outside right\n"
     << "set xtics rotate by -35\n"
     << "plot for [i=2:" << series + 1 << "] '" << csv_path
     << "' using i:xtic(1) with linespoints title columnheader(i)\n";
}

void write_stride_gnuplot(const std::string& script_path,
                          const std::string& csv_path,
                          const std::string& title,
                          const apps::stride::StrideResults& results) {
  std::ofstream os = open_script(script_path);
  if (!os) return;
  os << "# gnuplot script generated by pcap; render with: gnuplot "
     << script_path << "\n"
     << "set datafile separator ','\n"
     << "set terminal pngcairo size 1200,700\n"
     << "set output '" << csv_path << ".png'\n"
     << "set title '" << title << "'\n"
     << "set xlabel 'stride (bytes)'\n"
     << "set ylabel 'access time (ns)'\n"
     << "set logscale xy\n"
     << "set key outside right\n"
     << "sizes = '";
  for (auto size : results.array_sizes()) os << size << ' ';
  os << "'\n"
     << "plot for [i=1:words(sizes)] '" << csv_path
     << "' every ::1 using (column(1)==real(word(sizes,i)) ? column(2) : "
        "1/0):3 with linespoints title word(sizes,i).'B'\n";
}

void write_stride_csv(const std::string& path,
                      const apps::stride::StrideResults& results) {
  util::CsvWriter csv(path);
  csv.row({"array_bytes", "stride_bytes", "ns_per_access"});
  for (const auto& c : results.cells) {
    csv.field(c.array_bytes);
    csv.field(c.stride_bytes);
    csv.field(c.ns_per_access);
    csv.end_row();
  }
}

}  // namespace pcap::harness
