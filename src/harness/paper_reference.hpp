// The paper's published measurements (Tables I and II), embedded so every
// bench can print paper-vs-measured side by side and EXPERIMENTS.md can be
// regenerated. Percent columns are the paper's own rounded values.
#pragma once

#include <optional>
#include <span>
#include <string_view>

namespace pcap::harness {

struct PaperRow {
  std::string_view label;       // "A0".."A9" / "B0".."B9"
  std::optional<double> cap_w;  // nullopt == baseline
  double power_w;
  double pct_power;
  double energy_j;
  double pct_energy;
  double freq_mhz;
  double pct_freq;
  double time_s;
  double pct_time;
  double pct_l1;
  double pct_l2;
  double pct_l3;
  double pct_tlb_d;
  double pct_tlb_i;
};

/// Stereo Matching rows A0..A9 (baseline + caps 160..120 W).
std::span<const PaperRow> paper_stereo_rows();

/// SIRE/RSM rows B0..B9.
std::span<const PaperRow> paper_sire_rows();

struct PaperBaseline {
  std::string_view code;
  std::string_view input;
  double power_w;
  double time_s;
};

/// Table I.
std::span<const PaperBaseline> paper_table1();

}  // namespace pcap::harness
