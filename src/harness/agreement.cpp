#include "harness/agreement.hpp"

#include <cmath>
#include <vector>

namespace pcap::harness {

double signed_log(double x) {
  return x >= 0 ? std::log1p(x) : -std::log1p(-x);
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  if (n < 2) return 0.0;
  double mx = 0, my = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

ShapeAgreement shape_agreement(const StudyResult& study,
                               std::span<const PaperRow> reference) {
  ShapeAgreement agreement;
  std::vector<double> mt, pt, mp, pp, me, pe;
  const CellStats& base = study.baseline;
  for (const auto& cell : study.capped) {
    if (!cell.cap_w) continue;
    const PaperRow* row = nullptr;
    for (const auto& r : reference) {
      if (r.cap_w && *r.cap_w == *cell.cap_w) row = &r;
    }
    if (row == nullptr) continue;
    mt.push_back(signed_log(StudyResult::pct(cell.time_s, base.time_s)));
    pt.push_back(signed_log(row->pct_time));
    mp.push_back(signed_log(StudyResult::pct(cell.avg_power_w, base.avg_power_w)));
    pp.push_back(signed_log(row->pct_power));
    me.push_back(signed_log(StudyResult::pct(cell.energy_j, base.energy_j)));
    pe.push_back(signed_log(row->pct_energy));
    ++agreement.caps_compared;
  }
  agreement.time = pearson(mt, pt);
  agreement.power = pearson(mp, pp);
  agreement.energy = pearson(me, pe);
  agreement.overall = (agreement.time + agreement.power + agreement.energy) / 3.0;
  return agreement;
}

}  // namespace pcap::harness
