// Scheduler policy-sweep study shared by bench/ext_scheduler_policies and
// examples/cluster_schedule: characterise (or load) the per-class
// amenability table, run every requested policy x budget cell, and render
// the results as CSV rows and console charts.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ipmi/transport.hpp"
#include "sched/amenability_table.hpp"
#include "sched/arrivals.hpp"
#include "sched/scheduler.hpp"

namespace pcap::harness {

struct SchedStudyConfig {
  std::size_t node_count = 8;
  /// Schedulable lanes per node (SchedulerConfig::lanes_per_node); >1
  /// co-schedules jobs onto the shared hierarchy under one package cap.
  std::size_t lanes_per_node = 1;
  /// Policies to sweep; empty selects sched::policy_names().
  std::vector<std::string> policies;
  /// Group budgets (W) to sweep, one column per value.
  std::vector<double> budgets_w;
  sched::ArrivalConfig arrivals;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;
  std::optional<ipmi::FaultSpec> faults;
  /// Required: the measured slowdown curves (load_or_characterize()).
  const sched::AmenabilityTable* table = nullptr;
};

/// One policy x budget cell of the sweep.
struct SchedStudyRow {
  std::string policy;
  double budget_w = 0.0;
  sched::ScheduleResult result;
};

/// Runs the full sweep. Every cell replays the same seeded arrival stream
/// on a fresh rack, so cells differ only in policy and budget.
std::vector<SchedStudyRow> run_sched_study(const SchedStudyConfig& config);

/// Loads a previously exported amenability table from `path`, or — when the
/// file is missing, unreadable, or incomplete — characterises every job
/// class and saves the result to `path` for the next run.
sched::AmenabilityTable load_or_characterize(
    const std::string& path, const sched::CharacterizeOptions& options);

/// Writes the sweep as CSV: one row per cell with makespan, energy,
/// deadline misses, turnaround, and the management-plane accounting.
void write_sched_csv(const std::string& path,
                     const std::vector<SchedStudyRow>& rows);

/// Renders makespan-vs-budget (one series per policy) as an ASCII chart.
std::string render_sched_chart(const std::vector<SchedStudyRow>& rows,
                               const std::string& metric = "makespan");

}  // namespace pcap::harness
