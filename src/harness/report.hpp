// Renderers that turn study results into the paper's tables and figures
// (console tables, ASCII charts, CSV files under results/).
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "apps/stride/stride.hpp"
#include "harness/experiment.hpp"
#include "harness/paper_reference.hpp"

namespace pcap::harness {

/// Table I: baseline power and execution time per application.
void render_table1(std::ostream& os, std::span<const StudyResult> studies);

/// Table II (per application): power/energy/frequency/time block and the
/// cache/TLB miss block, with % diff columns and the paper's values
/// alongside.
void render_table2(std::ostream& os, const StudyResult& study,
                   std::span<const PaperRow> reference);

void write_table2_csv(const std::string& path, const StudyResult& study);

/// Figures 1 and 2: series normalised to each metric's maximum across the
/// cap grid, exactly as the paper plots them. include_cache_rates adds the
/// L2/L3 miss-rate series (Figure 2 only).
void render_normalized_figure(std::ostream& os, const StudyResult& study,
                              const std::string& title,
                              bool include_cache_rates);

void write_figure_csv(const std::string& path, const StudyResult& study,
                      bool include_cache_rates);

/// Figures 3 and 4: stride microbenchmark surface (one series per array
/// size, log-scale access time vs stride) plus the inferred hierarchy
/// parameters (cache size knees and per-level latencies).
void render_stride_figure(std::ostream& os,
                          const apps::stride::StrideResults& results,
                          const std::string& title);

void write_stride_csv(const std::string& path,
                      const apps::stride::StrideResults& results);

/// Emits a gnuplot script rendering a normalised-figure CSV (as written by
/// write_figure_csv, which must live at `csv_path`) to PNG.
void write_figure_gnuplot(const std::string& script_path,
                          const std::string& csv_path,
                          const std::string& title,
                          bool include_cache_rates);

/// Emits a gnuplot script rendering a stride CSV (write_stride_csv format):
/// one log-log series per array size, as the paper's Figures 3/4.
void write_stride_gnuplot(const std::string& script_path,
                          const std::string& csv_path,
                          const std::string& title,
                          const apps::stride::StrideResults& results);

}  // namespace pcap::harness
