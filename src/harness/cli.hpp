// Tiny flag parser shared by the bench binaries:
//   --full                 paper-scale repetitions/grids (benches default quick)
//   --reps=N               repetition override
//   --jobs=N               worker threads for independent cells
//   --csv-dir=PATH         where result CSVs land (default "results")
//   --seed=N
//   --telemetry            enable per-node time-series sampling
//   --telemetry-period=US  sampling period in simulated microseconds
//   --trace-out=PATH       write a Chrome trace-event JSON (implies sampling
//                          where the binary supports it)
//   --policy=NAME          scheduler policy (sched binaries; "" = sweep all)
//   --budget=W             group power budget in watts (sched binaries)
//   --arrivals=N           job-stream length (sched binaries)
//   --racks=N              racks in the fleet (fleet binaries)
//   --rack-nodes=N         nodes per rack (fleet binaries)
//   --tenants=N            tenant arrival streams (fleet binaries)
//
// Parsing is table-driven: each flag is one OptionSpec row (name, value
// placeholder, help, setter) and the --help text is generated from the same
// rows, so a new flag is a one-line addition that cannot drift from its
// documentation.
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/probe.hpp"
#include "util/units.hpp"

namespace pcap::harness {

struct CliOptions {
  bool full = false;
  int reps = -1;  // -1: bench default
  std::size_t jobs = 1;
  std::string csv_dir = "results";
  std::uint64_t seed = 1;
  bool telemetry = false;
  double telemetry_period_us = 0.0;  // 0: binary default (200 us)
  std::string trace_out;             // empty: no trace file
  std::string policy;                // empty: binary default / full sweep
  double budget_w = 0.0;             // 0: binary default
  int arrivals = 0;                  // 0: binary default
  std::size_t lanes = 0;             // 0: binary default (sched binaries)
  std::size_t racks = 0;             // 0: binary default (fleet binaries)
  std::size_t rack_nodes = 0;        // 0: binary default (fleet binaries)
  std::size_t tenants = 0;           // 0: binary default (fleet binaries)

  /// Effective repetitions: explicit --reps wins, else full ? 5 : quick_reps.
  int repetitions(int quick_reps) const {
    if (reps > 0) return reps;
    return full ? 5 : quick_reps;
  }

  /// Telemetry config reflecting the flags (enabled by --telemetry, or
  /// implicitly by --trace-out since a trace needs the probes running).
  /// `default_period_us` is used when --telemetry-period was not given.
  telemetry::TelemetryConfig telemetry_config(
      double default_period_us = 200.0) const {
    telemetry::TelemetryConfig config;
    config.enabled = telemetry || !trace_out.empty();
    config.sample_period = util::microseconds(
        telemetry_period_us > 0.0 ? telemetry_period_us : default_period_us);
    return config;
  }
};

/// Parses known flags; unknown arguments are ignored (google-benchmark
/// passes its own). Exits with a usage message on --help.
CliOptions parse_cli(int argc, char** argv);

}  // namespace pcap::harness
