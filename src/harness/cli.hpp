// Tiny flag parser shared by the bench binaries:
//   --full            paper-scale repetitions/grids (benches default quick)
//   --reps=N          repetition override
//   --jobs=N          worker threads for independent cells
//   --csv-dir=PATH    where result CSVs land (default "results")
//   --seed=N
#pragma once

#include <cstdint>
#include <string>

namespace pcap::harness {

struct CliOptions {
  bool full = false;
  int reps = -1;  // -1: bench default
  std::size_t jobs = 1;
  std::string csv_dir = "results";
  std::uint64_t seed = 1;

  /// Effective repetitions: explicit --reps wins, else full ? 5 : quick_reps.
  int repetitions(int quick_reps) const {
    if (reps > 0) return reps;
    return full ? 5 : quick_reps;
  }
};

/// Parses known flags; unknown arguments are ignored (google-benchmark
/// passes its own). Exits with a usage message on --help.
CliOptions parse_cli(int argc, char** argv);

}  // namespace pcap::harness
