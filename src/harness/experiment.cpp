#include "harness/experiment.hpp"

#include <cmath>
#include <cstdio>

#include "core/capped_runner.hpp"
#include "harness/cli.hpp"
#include "sim/node.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pcap::harness {

namespace {

CellStats run_cell(core::CappedRunner& runner, sim::Workload& workload,
                   std::optional<double> cap_w, int repetitions) {
  CellStats cell;
  cell.cap_w = cap_w;
  cell.repetitions = repetitions;
  util::RunningStats time_stats;
  util::RunningStats power_stats;
  double freq_sum = 0.0;
  for (int r = 0; r < repetitions; ++r) {
    const sim::RunReport report = runner.run(workload, cap_w);
    time_stats.add(util::to_seconds(report.elapsed));
    power_stats.add(report.avg_power_w);
    cell.energy_j += report.energy_j;
    freq_sum += static_cast<double>(report.avg_frequency);
    cell.avg_duty += report.avg_duty;
    for (std::size_t i = 0; i < pmu::kEventCount; ++i) {
      cell.counters[i] += static_cast<double>(report.counters[i]);
    }
  }
  const double n = repetitions > 0 ? repetitions : 1;
  cell.time_s = time_stats.mean();
  cell.time_stddev_s = time_stats.stddev();
  cell.avg_power_w = power_stats.mean();
  cell.power_stddev_w = power_stats.stddev();
  cell.energy_j /= n;
  cell.avg_frequency = static_cast<util::Hertz>(freq_sum / n);
  cell.avg_duty /= n;
  for (auto& c : cell.counters) c /= n;
  return cell;
}

std::string cell_label(std::optional<double> cap_w) {
  if (!cap_w) return "baseline";
  char buf[32];
  std::snprintf(buf, sizeof buf, "cap-%g", *cap_w);
  return buf;
}

}  // namespace

const CellStats* StudyResult::cell(double cap_w) const {
  for (const auto& c : capped) {
    if (c.cap_w && *c.cap_w == cap_w) return &c;
  }
  return nullptr;
}

double StudyResult::pct(double value, double base) {
  return base != 0.0 ? (value - base) / base * 100.0 : 0.0;
}

StudyResult run_power_cap_study(const std::string& workload_name,
                                const WorkloadFactory& factory,
                                const StudyConfig& config) {
  StudyResult result;
  result.workload = workload_name;
  result.capped.resize(config.caps_w.size());

  // Cell 0 is the baseline, cells 1.. are the caps. Every cell owns an
  // independent node + workload built from identical seeds, whether the
  // cells run inline (jobs <= 1) or on a pool — so a study's result is
  // bit-identical for any `jobs` value (tests/test_batch_equivalence.cpp).
  const std::size_t cells = config.caps_w.size() + 1;
  std::vector<CellStats> computed(cells);
  // Each cell owns its probe; sinks fire serially afterwards so callers
  // never need to synchronize against the worker pool.
  std::vector<std::unique_ptr<telemetry::NodeProbe>> probes(cells);
  util::parallel_for(cells, config.jobs, [&](std::size_t i) {
    sim::Node node(config.machine, config.seed);
    core::CappedRunner runner(node, config.bmc);
    const std::unique_ptr<sim::Workload> workload = factory();
    const std::optional<double> cap =
        i == 0 ? std::nullopt : std::optional<double>(config.caps_w[i - 1]);
    if (config.telemetry.enabled) {
      probes[i] = std::make_unique<telemetry::NodeProbe>(
          config.telemetry, nullptr, nullptr, cell_label(cap));
      node.set_telemetry(probes[i].get());
      runner.bmc().set_telemetry(nullptr, probes[i].get(), cell_label(cap));
    }
    computed[i] = run_cell(runner, *workload, cap, config.repetitions);
  });
  result.baseline = computed[0];
  for (std::size_t i = 0; i < config.caps_w.size(); ++i) {
    result.capped[i] = computed[i + 1];
  }
  if (config.telemetry.enabled && config.telemetry_sink) {
    for (const auto& probe : probes) {
      if (probe) config.telemetry_sink(probe->name(), probe->sampler());
    }
  }
  return result;
}

void apply_cli_telemetry(StudyConfig& config, const CliOptions& cli,
                         const std::string& prefix) {
  config.telemetry = cli.telemetry_config();
  if (!config.telemetry.enabled) return;
  config.telemetry_sink = [dir = cli.csv_dir, prefix](
                              const std::string& label,
                              const telemetry::Sampler& sampler) {
    sampler.write_csv_file(dir + "/" + prefix + "_telemetry_" + label +
                          ".csv");
  };
}

}  // namespace pcap::harness
