// DRAM timing model: per-bank open-row buffers, row hit/miss latencies and a
// low-power "gated" mode (partial self-refresh) that trades sharply higher
// access latency for lower background power — one of the non-DVFS throttling
// mechanisms the paper infers at low power caps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pcap::mem {

struct DramConfig {
  std::uint32_t banks = 16;              // power of two preferred
  std::uint32_t row_bytes = 8192;        // bytes per row per bank
  double row_hit_ns = 48.0;              // CAS-limited access
  double row_miss_ns = 66.0;             // precharge + activate + CAS
  double gated_extra_ns = 60.0;          // exit-from-powerdown penalty
  std::uint64_t capacity_bytes = 64ull << 30;  // 64 GB, as the platform
};

struct DramStats {
  std::uint64_t accesses = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;

  double row_hit_rate() const {
    return accesses ? static_cast<double>(row_hits) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class Dram {
 public:
  /// Throws std::invalid_argument for zero banks/rows.
  explicit Dram(const DramConfig& config);

  const DramConfig& config() const { return config_; }

  /// Performs one line-fill access; returns the access latency.
  util::Picoseconds access(std::uint64_t addr);

  /// Low-power mode: background power drops (modelled by the power module
  /// via gated()) and every access pays the self-refresh exit penalty.
  void set_gated(bool gated) { gated_ = gated; }
  bool gated() const { return gated_; }

  const DramStats& stats() const { return stats_; }
  void reset_stats() { stats_ = DramStats{}; }

  /// Closes all row buffers (e.g. after refresh).
  void close_rows();

 private:
  DramConfig config_;
  bool gated_ = false;
  std::vector<std::int64_t> open_row_;  // -1 == closed
  DramStats stats_;
};

}  // namespace pcap::mem
