#include "mem/dram.hpp"

#include <stdexcept>

namespace pcap::mem {

Dram::Dram(const DramConfig& config) : config_(config) {
  if (config.banks == 0) throw std::invalid_argument("Dram: need >= 1 bank");
  if (config.row_bytes == 0) throw std::invalid_argument("Dram: row_bytes == 0");
  open_row_.assign(config.banks, -1);
}

util::Picoseconds Dram::access(std::uint64_t addr) {
  ++stats_.accesses;
  // Interleave consecutive rows across banks: bank = (addr / row) % banks.
  const std::uint64_t row_global = addr / config_.row_bytes;
  const std::uint32_t bank =
      static_cast<std::uint32_t>(row_global % config_.banks);
  const auto row = static_cast<std::int64_t>(row_global / config_.banks);

  double ns;
  if (open_row_[bank] == row) {
    ++stats_.row_hits;
    ns = config_.row_hit_ns;
  } else {
    ++stats_.row_misses;
    open_row_[bank] = row;
    ns = config_.row_miss_ns;
  }
  if (gated_) ns += config_.gated_extra_ns;
  return util::nanoseconds(ns);
}

void Dram::close_rows() {
  for (auto& r : open_row_) r = -1;
}

}  // namespace pcap::mem
