#include "core/governor.hpp"

#include <algorithm>

namespace pcap::core {

MemoryAwareGovernor::MemoryAwareGovernor(sim::PlatformControl& platform,
                                         const GovernorConfig& config)
    : platform_(&platform), config_(config) {}

void MemoryAwareGovernor::set_telemetry(telemetry::TraceWriter* trace,
                                        const std::string& name) {
  trace_ = trace;
  if (trace_ != nullptr) trace_track_ = trace_->track(name);
}

void MemoryAwareGovernor::on_tick() {
  ++decisions_;
  const double stall = platform_->memory_stall_fraction();
  const std::uint32_t current = platform_->pstate();
  const std::uint32_t deepest =
      std::min(config_.max_pstate, platform_->pstate_count() - 1);

  if (stall > config_.high_stall && current < deepest) {
    platform_->set_pstate(std::min(current + config_.down_step, deepest));
    ++downshifts_;
    emit_decision("downshift", stall);
  } else if (stall < config_.low_stall && current > 0) {
    platform_->set_pstate(
        current > config_.up_step ? current - config_.up_step : 0);
    ++upshifts_;
    emit_decision("upshift", stall);
  }
}

void MemoryAwareGovernor::emit_decision(const char* what, double stall) {
  if (trace_ == nullptr) return;
  trace_->instant(trace_track_, "governor", what,
                  telemetry::TraceWriter::sim_us(platform_->now()),
                  {telemetry::TraceArg::num("stall", stall),
                   telemetry::TraceArg::num("pstate", platform_->pstate())});
}

void MemoryAwareGovernor::reset() { platform_->set_pstate(0); }

}  // namespace pcap::core
