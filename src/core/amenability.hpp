// Workload amenability characterisation — the methodology the paper's §V
// calls for as future work: "characterizing applications with regard to
// their amenability to power capped execution."
//
// The analyzer measures a workload's slowdown curve across a cap grid and
// summarises it with (a) the lowest cap that keeps slowdown within a
// tolerance (the usable cap range for a fielded system with soft deadlines)
// and (b) a scalar sensitivity index for ranking applications.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/capped_runner.hpp"
#include "sim/node.hpp"
#include "sim/workload.hpp"

namespace pcap::core {

struct AmenabilityPoint {
  double cap_w = 0.0;
  double measured_power_w = 0.0;
  double slowdown = 1.0;      // time / baseline time
  double energy_ratio = 1.0;  // energy / baseline energy
  bool cap_met = true;        // measured power <= cap + tolerance
};

struct AmenabilityReport {
  double baseline_power_w = 0.0;
  util::Picoseconds baseline_time = 0;
  double baseline_energy_j = 0.0;
  std::vector<AmenabilityPoint> points;  // ordered as the input grid

  /// Lowest cap whose slowdown stays within the tolerance (0 if none).
  double usable_cap_floor_w = 0.0;
  /// Mean slowdown across the grid minus 1; higher == less amenable.
  double sensitivity_index = 0.0;
};

struct AmenabilityOptions {
  double slowdown_tolerance = 1.25;  // the paper's "acceptable" band
  double cap_met_tolerance_w = 2.0;
  int repetitions = 1;
};

class AmenabilityAnalyzer {
 public:
  using Options = AmenabilityOptions;

  explicit AmenabilityAnalyzer(Options options = {}) : options_(options) {}

  /// Runs `workload` uncapped and at every cap in `caps_w` (descending or
  /// not — order is preserved) on `runner`'s node.
  AmenabilityReport analyze(CappedRunner& runner, sim::Workload& workload,
                            std::span<const double> caps_w) const;

 private:
  Options options_;
};

}  // namespace pcap::core
