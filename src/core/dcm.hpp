// Data Center Manager analog: a management server that discovers nodes'
// BMCs over IPMI, applies power-capping policies (per-node and group
// budgets), polls power telemetry into history, and raises alerts when an
// enforced cap is being missed (the throttling-floor condition the paper
// observed at 120 W).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ipmi/commands.hpp"
#include "ipmi/transport.hpp"

namespace pcap::core {

/// Client-side handle to one node's BMC.
class ManagedNode {
 public:
  ManagedNode(std::string name, ipmi::Transport& transport)
      : name_(std::move(name)), session_(transport) {}

  const std::string& name() const { return name_; }

  // Each call is one IPMI transaction; nullopt means the transaction failed.
  std::optional<ipmi::DeviceId> device_id();
  std::optional<ipmi::PowerReading> power_reading();
  std::optional<ipmi::Capabilities> capabilities();
  std::optional<ipmi::PowerLimit> power_limit();
  std::optional<ipmi::ThrottleStatus> throttle_status();
  bool set_cap(std::optional<double> watts);

  std::uint64_t transport_errors() const { return session_.transport_errors(); }

 private:
  std::string name_;
  ipmi::Session session_;
};

struct PowerSample {
  std::uint64_t poll_seq = 0;
  double current_w = 0.0;
  double average_w = 0.0;
};

struct Alert {
  std::uint64_t poll_seq = 0;
  std::string node;
  std::string message;
};

struct DcmConfig {
  std::size_t history_depth = 256;
  double cap_violation_tolerance_w = 2.0;
  /// Consecutive violating polls before an alert is raised.
  std::uint32_t violation_polls = 3;
};

class DataCenterManager {
 public:
  explicit DataCenterManager(const DcmConfig& config = {}) : config_(config) {}

  /// Registers a node reachable through `transport`. Returns false if the
  /// name is taken or the BMC does not answer a DeviceId probe.
  bool add_node(const std::string& name, ipmi::Transport& transport);

  std::size_t node_count() const { return nodes_.size(); }
  ManagedNode* node(const std::string& name);
  std::vector<std::string> node_names() const;

  // --- policies ---
  /// Caps one node; watts == nullopt uncaps. Returns false on unknown node
  /// or a failed transaction.
  bool apply_node_cap(const std::string& name, std::optional<double> watts);

  /// Distributes a total group budget across all nodes in proportion to
  /// their current demand (measured average power) weighted by priority,
  /// clamped to each node's enforceable range. Returns the per-node caps
  /// actually applied (empty on failure or if the budget is below the sum
  /// of the nodes' floors).
  std::vector<std::pair<std::string, double>> apply_group_cap(double total_w);

  /// Priority weight for group budgeting (default 1; higher = larger share
  /// of the surplus). Returns false for an unknown node or weight < 1.
  bool set_node_priority(const std::string& name, int priority);
  int node_priority(const std::string& name) const;

  /// Removes caps from every node.
  void clear_caps();

  /// Scheduled capping: each entry fires during the poll whose sequence
  /// number reaches `at_poll` (polls are the DCM's clock), setting or
  /// clearing the node's cap. Models duty-windows on a fielded generator or
  /// a data-center demand-response program. Replaces any prior schedule;
  /// entries must be sorted by at_poll (returns false otherwise or for an
  /// unknown node).
  struct ScheduledCap {
    std::uint64_t at_poll = 0;
    std::optional<double> cap_w;  // nullopt == uncap
  };
  bool set_cap_schedule(const std::string& name,
                        std::vector<ScheduledCap> schedule);

  // --- monitoring ---
  /// One monitoring sweep: reads every node's power, appends to history,
  /// evaluates alert conditions.
  void poll();

  const std::deque<PowerSample>* history(const std::string& name) const;
  const std::vector<Alert>& alerts() const { return alerts_; }
  std::uint64_t poll_count() const { return poll_seq_; }

  /// Sum of the latest current_w across nodes (0 if never polled).
  double total_observed_power_w() const;

 private:
  struct Entry {
    std::unique_ptr<ManagedNode> node;
    std::deque<PowerSample> history;
    std::uint32_t consecutive_violations = 0;
    std::vector<ScheduledCap> schedule;
    std::size_t schedule_next = 0;
    int priority = 1;
  };

  Entry* find(const std::string& name);
  const Entry* find(const std::string& name) const;

  DcmConfig config_;
  std::vector<Entry> nodes_;
  std::vector<Alert> alerts_;
  std::uint64_t poll_seq_ = 0;
};

}  // namespace pcap::core
