// Data Center Manager analog: a management server that discovers nodes'
// BMCs over IPMI, applies power-capping policies (per-node and group
// budgets), polls power telemetry into history, and raises alerts when an
// enforced cap is being missed (the throttling-floor condition the paper
// observed at 120 W).
//
// The management network is assumed lossy: every transaction retries with
// exponential backoff and deterministic jitter, and each node carries a
// health state machine (healthy -> degraded -> lost -> recovered) driven by
// consecutive failed exchanges. When a node under a group budget goes lost,
// its budget share is conservatively reserved (its BMC keeps enforcing the
// last cap autonomously) and the remainder is redistributed across the
// surviving nodes; recovery restores the full-group split. The allocation
// invariant — sum of caps held by reachable nodes plus reservations for
// unreachable ones never exceeds the budget — holds throughout.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ipmi/commands.hpp"
#include "ipmi/transport.hpp"
#include "telemetry/probe.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace pcap::core {

/// Retry/timeout behaviour for one node's IPMI session.
struct NodeCommsConfig {
  util::BackoffPolicy backoff;  // see util/backoff.hpp for defaults
  /// Per-transaction timeout handed to the ipmi::Session (0 = none).
  double request_timeout_ms = 25.0;
  /// Seeds the per-node jitter stream (mixed with the node name's length
  /// and the registration order by the DCM, so nodes don't march in step).
  std::uint64_t seed = 0x5EED;
};

/// Client-side handle to one node's BMC.
class ManagedNode {
 public:
  ManagedNode(std::string name, ipmi::Transport& transport,
              const NodeCommsConfig& comms = {})
      : name_(std::move(name)),
        session_(transport, comms.request_timeout_ms),
        backoff_(comms.backoff),
        rng_(comms.seed) {}

  const std::string& name() const { return name_; }

  // Each call is one logical exchange (transparently retried on transport
  // failures); nullopt / false means every attempt failed.
  std::optional<ipmi::DeviceId> device_id();
  std::optional<ipmi::PowerReading> power_reading();
  std::optional<ipmi::Capabilities> capabilities();
  std::optional<ipmi::PowerLimit> power_limit();
  std::optional<ipmi::ThrottleStatus> throttle_status();
  bool set_cap(std::optional<double> watts);

  /// Wires this handle into the telemetry subsystem: every exchange becomes
  /// a span on an `ipmi:<name>` track, with retry/timeout instants and
  /// backoff spans inside it. `mgmt_clock_ms` is the management-plane clock
  /// the spans are placed on (shared across the DCM's nodes so their
  /// timelines interleave); when null the node keeps a private clock.
  void set_telemetry(telemetry::TraceWriter* trace, double* mgmt_clock_ms);

  /// The management-plane clock: total modelled wire latency plus backoff
  /// delay this node has accumulated (or the shared clock, if attached).
  double clock_ms() const {
    return mgmt_clock_ms_ != nullptr ? *mgmt_clock_ms_ : own_clock_ms_;
  }

  // --- communication accounting ---
  std::uint64_t transport_errors() const { return session_.transport_errors(); }
  std::uint64_t timeouts() const { return session_.timeouts(); }
  std::uint64_t stale_rejections() const { return session_.stale_rejections(); }
  /// Retransmissions performed (attempts beyond the first).
  std::uint64_t retries() const { return retries_; }
  /// Exchanges that failed even after exhausting every attempt.
  std::uint64_t failed_exchanges() const { return failed_exchanges_; }
  /// Total modelled backoff delay spent waiting between retries.
  double backoff_ms_total() const { return backoff_ms_total_; }

 private:
  /// Issues the request, retrying transport-level failures per the backoff
  /// policy. Semantic (completion-code) errors are returned immediately.
  ipmi::Response transact_with_retry(const ipmi::Request& request);

  void advance_clock(double ms) {
    if (mgmt_clock_ms_ != nullptr) {
      *mgmt_clock_ms_ += ms;
    } else {
      own_clock_ms_ += ms;
    }
  }

  std::string name_;
  ipmi::Session session_;
  util::BackoffPolicy backoff_;
  util::Rng rng_;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_exchanges_ = 0;
  double backoff_ms_total_ = 0.0;
  telemetry::TraceWriter* trace_ = nullptr;
  double* mgmt_clock_ms_ = nullptr;
  double own_clock_ms_ = 0.0;
  std::uint32_t trace_track_ = 0;
};

struct PowerSample {
  std::uint64_t poll_seq = 0;
  double current_w = 0.0;
  double average_w = 0.0;
};

struct Alert {
  std::uint64_t poll_seq = 0;
  std::string node;
  std::string message;
};

/// Node reachability as seen by the DCM. `kRecovered` is the one-poll
/// transitional state after a lost node answers again (its budget share has
/// just been restored); the next successful poll settles it back to
/// `kHealthy`.
enum class NodeHealth { kHealthy, kDegraded, kLost, kRecovered };
std::string node_health_name(NodeHealth health);

struct DcmConfig {
  std::size_t history_depth = 256;
  double cap_violation_tolerance_w = 2.0;
  /// Consecutive violating polls before an alert is raised.
  std::uint32_t violation_polls = 3;
  /// Retry/timeout behaviour applied to every node session.
  NodeCommsConfig comms;
  /// Consecutive failed polls before a node is marked degraded / lost.
  std::uint32_t degraded_after_failures = 2;
  std::uint32_t lost_after_failures = 4;
};

class DataCenterManager {
 public:
  explicit DataCenterManager(const DcmConfig& config = {}) : config_(config) {}

  /// Registers a node reachable through `transport`. Returns false if the
  /// name is taken or the BMC does not answer the discovery probes
  /// (DeviceId + Capabilities) within the retry budget.
  bool add_node(const std::string& name, ipmi::Transport& transport);

  std::size_t node_count() const { return nodes_.size(); }
  ManagedNode* node(const std::string& name);
  std::vector<std::string> node_names() const;

  // --- policies ---
  /// Caps one node; watts == nullopt uncaps. Returns false on unknown node
  /// or a failed transaction.
  bool apply_node_cap(const std::string& name, std::optional<double> watts);

  /// Distributes a total group budget across all reachable nodes in
  /// proportion to their current demand (measured average power) weighted
  /// by priority, clamped to each node's enforceable range. Lost nodes are
  /// excluded: their last-applied caps stay reserved out of the budget.
  /// Returns the per-node caps actually applied (empty on failure or if
  /// the budget is below the sum of the reachable nodes' floors plus the
  /// reservations). On success the budget is remembered and automatically
  /// rebalanced when nodes are lost or recover.
  std::vector<std::pair<std::string, double>> apply_group_cap(double total_w);

  /// Priority weight for group budgeting (default 1; higher = larger share
  /// of the surplus). Returns false for an unknown node or weight < 1.
  bool set_node_priority(const std::string& name, int priority);
  int node_priority(const std::string& name) const;

  /// Removes caps from every node and forgets the group budget.
  void clear_caps();

  /// Scheduled capping: each entry fires during the poll whose sequence
  /// number reaches `at_poll` (polls are the DCM's clock), setting or
  /// clearing the node's cap. Models duty-windows on a fielded generator or
  /// a data-center demand-response program. Replaces any prior schedule;
  /// entries must be sorted by at_poll (returns false otherwise or for an
  /// unknown node).
  struct ScheduledCap {
    std::uint64_t at_poll = 0;
    std::optional<double> cap_w;  // nullopt == uncap
  };
  bool set_cap_schedule(const std::string& name,
                        std::vector<ScheduledCap> schedule);

  // --- telemetry ---
  /// Wires the manager (and every registered node handle) into the trace:
  /// exchanges become spans on per-node `ipmi:` tracks placed on a shared
  /// management-plane clock, health-state transitions become instants on a
  /// `dcm` track. Nodes added later are wired automatically.
  void set_telemetry(telemetry::TraceWriter* trace);
  /// Attaches a node's probe so DCM-observed health transitions are stamped
  /// into that node's samples. Returns false for an unknown node.
  bool attach_probe(const std::string& name, telemetry::NodeProbe* probe);
  /// Accumulated management-plane time: modelled wire latency plus backoff
  /// delay across every node session.
  double mgmt_clock_ms() const { return mgmt_clock_ms_; }

  // --- monitoring ---
  /// One monitoring sweep: reads every node's power, appends to history,
  /// updates node health (raising degraded/lost/recovered alerts and
  /// rebalancing any group budget), evaluates cap-violation alerts.
  void poll();

  const std::deque<PowerSample>* history(const std::string& name) const;
  const std::vector<Alert>& alerts() const { return alerts_; }
  std::uint64_t poll_count() const { return poll_seq_; }

  /// Sum of the latest current_w across nodes (0 if never polled).
  double total_observed_power_w() const;

  // --- health & budget introspection ---
  std::optional<NodeHealth> node_health(const std::string& name) const;
  /// Nodes currently in the given state.
  std::size_t health_count(NodeHealth health) const;
  /// The group budget being maintained, if apply_group_cap succeeded.
  std::optional<double> group_budget_w() const { return group_budget_w_; }
  /// The cap this DCM last successfully applied to the node (what its BMC
  /// is enforcing, reachable or not). nullopt = uncapped or unknown node.
  std::optional<double> node_applied_cap(const std::string& name) const;

 private:
  struct Entry {
    std::unique_ptr<ManagedNode> node;
    std::deque<PowerSample> history;
    std::uint32_t consecutive_violations = 0;
    std::vector<ScheduledCap> schedule;
    std::size_t schedule_next = 0;
    int priority = 1;
    NodeHealth health = NodeHealth::kHealthy;
    telemetry::NodeProbe* probe = nullptr;
    std::uint32_t consecutive_failures = 0;
    std::optional<double> applied_cap_w;  // last cap that landed on the BMC
    ipmi::Capabilities caps;              // cached at discovery / group apply
  };

  Entry* find(const std::string& name);
  const Entry* find(const std::string& name) const;

  /// Applies a cap through the node handle, recording it on success.
  bool set_cap_recorded(Entry& e, std::optional<double> watts);
  /// Advances the health machine after one poll exchange with `e`.
  void note_exchange(Entry& e, bool ok);
  /// Budget a lost node is assumed to hold: its enforced cap if it has
  /// one, else its last observed draw, else its full capability ceiling.
  double reserved_for(const Entry& e) const;
  /// Re-splits the remembered group budget across reachable nodes from
  /// cached demand/capabilities (no new telemetry reads).
  void rebalance_group_budget();
  /// Marks a health transition: trace instant + probe annotation.
  void note_health_change(Entry& e);

  DcmConfig config_;
  std::vector<Entry> nodes_;
  std::vector<Alert> alerts_;
  std::uint64_t poll_seq_ = 0;
  std::optional<double> group_budget_w_;
  telemetry::TraceWriter* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
  double mgmt_clock_ms_ = 0.0;
};

}  // namespace pcap::core
