// Baseboard Management Controller firmware: enforces a node power cap by
// walking a throttle ladder, sampling averaged node power each control
// period (out-of-band, via PlatformControl).
//
// Ladder structure (matches the paper's inferred mechanism ordering):
//   levels 0..15   : P-states (DVFS) — primary mechanism
//   level 16       : + DRAM low-power gating
//   levels 17..20  : + L3/L2 way gating and TLB entry gating
//                    (dynamic cache reconfiguration)
//   levels 21..27  : + clock-modulation duty cycling 7/8 .. 1/8 (T-states)
//
// The controller keeps a continuous throttle index; the fractional part
// time-dithers between two adjacent levels when they differ only in
// P-state/duty, reproducing the paper's between-P-state average frequencies
// (e.g. 2168 MHz). Structural (cache/TLB/DRAM) settings are rate-limited by
// a dwell so reconfiguration does not thrash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipmi/commands.hpp"
#include "sim/platform_control.hpp"
#include "telemetry/probe.hpp"
#include "telemetry/trace_writer.hpp"

namespace pcap::core {

struct BmcConfig {
  double guard_band_w = 0.5;    // regulate to cap - guard_band
  double hysteresis_w = 1.5;    // extra headroom required to de-escalate
  double step_gain = 0.12;      // throttle levels per watt of error
  double max_step = 2.0;        // max levels per control period
  double deescalate_step = 0.35;
  std::uint32_t structural_dwell_periods = 8;
  // Advertised capabilities (what a real NM exposes from its tables).
  double min_cap_w = 110.0;
  double max_cap_w = 400.0;
  // Ablation switches (benches): restrict the ladder to P-states only, or
  // disable between-rung time dithering.
  bool dvfs_only = false;
  bool enable_dither = true;
};

/// One fully-specified platform operating point.
struct ThrottleLevel {
  std::uint32_t pstate = 0;
  double duty = 1.0;
  std::uint32_t l3_ways = 0;
  std::uint32_t l2_ways = 0;
  std::uint32_t itlb_entries = 0;
  std::uint32_t dtlb_entries = 0;
  bool dram_gated = false;
  std::string label;

  /// True when the two levels differ only in P-state / duty (safe to
  /// dither between them every control period).
  bool same_structure(const ThrottleLevel& other) const {
    return l3_ways == other.l3_ways && l2_ways == other.l2_ways &&
           itlb_entries == other.itlb_entries &&
           dtlb_entries == other.dtlb_entries &&
           dram_gated == other.dram_gated;
  }
};

class Bmc {
 public:
  explicit Bmc(sim::PlatformControl& platform, const BmcConfig& config = {});

  /// Enables capping at `watts`; std::nullopt disables capping and restores
  /// the unthrottled operating point.
  void set_cap(std::optional<double> watts);
  std::optional<double> cap() const { return cap_w_; }

  /// The control-loop body; wire into Node::set_control_hook, e.g.
  ///   node.set_control_hook([&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  void on_control_tick();

  // --- telemetry (served over IPMI) ---
  ipmi::PowerReading power_reading() const;
  ipmi::Capabilities capabilities() const;
  ipmi::ThrottleStatus throttle_status() const;

  /// Wires this firmware into the telemetry subsystem: cap changes and
  /// structural reconfigurations become trace events on a `name` track, the
  /// throttle rung becomes a counter series, and the probe (if any) learns
  /// the cap setpoint / rung for its samples. Either pointer may be null.
  void set_telemetry(telemetry::TraceWriter* trace,
                     telemetry::NodeProbe* probe, const std::string& name);

  double throttle_index() const { return index_; }
  const std::vector<ThrottleLevel>& ladder() const { return ladder_; }
  std::uint32_t current_level() const { return applied_level_; }
  /// Deepest rung applied since the cap was last set.
  std::uint32_t max_level_reached() const { return max_level_reached_; }
  /// Rung transitions since the cap was last set (dither activity).
  std::uint64_t level_changes() const { return level_changes_; }
  std::uint64_t control_ticks() const { return ticks_; }

  const BmcConfig& config() const { return config_; }

 private:
  void build_ladder();
  void apply_level(std::uint32_t level);
  void apply_structural(const ThrottleLevel& level);

  sim::PlatformControl* platform_;
  BmcConfig config_;
  telemetry::TraceWriter* trace_ = nullptr;
  telemetry::NodeProbe* probe_ = nullptr;
  std::uint32_t trace_track_ = 0;
  std::vector<ThrottleLevel> ladder_;
  std::optional<double> cap_w_;
  double index_ = 0.0;
  double dither_acc_ = 0.0;
  std::uint32_t applied_level_ = 0;
  std::uint32_t max_level_reached_ = 0;
  std::uint64_t level_changes_ = 0;
  std::uint32_t applied_structural_level_ = 0;
  std::uint64_t last_structural_change_tick_ = 0;
  std::uint64_t ticks_ = 0;

  // Power telemetry since cap activation.
  double last_reading_w_ = 0.0;
  double min_w_ = 0.0;
  double max_w_ = 0.0;
  double energy_acc_w_ = 0.0;
  std::uint64_t reading_count_ = 0;
};

}  // namespace pcap::core
