// Memory-aware OS-side DVFS governor — the in-band counterpart to the BMC's
// out-of-band capping, for the "what saves energy?" comparison the paper's
// §II-B motivates.
//
// Policy: when the core is stalled on memory most of the time, frequency is
// wasted (the DRAM does not speed up with the core clock), so step the
// P-state down; when the workload turns compute-bound, race back up. Unlike
// the BMC it has no power target and no ladder below DVFS — it trades a
// small, bounded slowdown for genuine energy savings on memory-bound
// phases, where capping can only ever lose energy (race-to-idle ablation).
#pragma once

#include <cstdint>
#include <string>

#include "sim/platform_control.hpp"
#include "telemetry/trace_writer.hpp"

namespace pcap::core {

struct GovernorConfig {
  /// Stall fraction above which the clock steps down.
  double high_stall = 0.45;
  /// Stall fraction below which the clock races back toward P0.
  double low_stall = 0.25;
  /// P-state steps per decision in each direction.
  std::uint32_t down_step = 1;
  std::uint32_t up_step = 4;
  /// Deepest P-state the governor may select (it never duty-cycles or
  /// reconfigures caches — those are capping mechanisms).
  std::uint32_t max_pstate = 15;
};

class MemoryAwareGovernor {
 public:
  explicit MemoryAwareGovernor(sim::PlatformControl& platform,
                               const GovernorConfig& config = {});

  /// Decision step; wire into Node::set_control_hook.
  void on_tick();

  /// Re-enables P0 (e.g. when handing control back to a capping policy).
  void reset();

  /// Mirrors governor decisions (up/downshifts with the stall fraction
  /// that drove them) into a trace track named `name`. May be null.
  void set_telemetry(telemetry::TraceWriter* trace, const std::string& name);

  const GovernorConfig& config() const { return config_; }
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t downshifts() const { return downshifts_; }
  std::uint64_t upshifts() const { return upshifts_; }

 private:
  void emit_decision(const char* what, double stall);

  sim::PlatformControl* platform_;
  GovernorConfig config_;
  telemetry::TraceWriter* trace_ = nullptr;
  std::uint32_t trace_track_ = 0;
  std::uint64_t decisions_ = 0;
  std::uint64_t downshifts_ = 0;
  std::uint64_t upshifts_ = 0;
};

}  // namespace pcap::core
