// Server-side IPMI endpoint of a BMC: decodes request frames arriving from
// the management network, dispatches to the Bmc, and encodes responses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/bmc.hpp"
#include "ipmi/commands.hpp"

namespace pcap::core {

class BmcIpmiServer {
 public:
  explicit BmcIpmiServer(Bmc& bmc) : bmc_(&bmc) {}

  /// Frame-level entry point, bindable to ipmi::LoopbackTransport.
  std::vector<std::uint8_t> handle_frame(std::span<const std::uint8_t> frame);

  /// Request-level dispatch (used directly by tests).
  ipmi::Response handle(const ipmi::Request& request);

 private:
  Bmc* bmc_;
};

}  // namespace pcap::core
