#include "core/dcm.hpp"

#include <algorithm>
#include <numeric>

namespace pcap::core {

std::optional<ipmi::DeviceId> ManagedNode::device_id() {
  return ipmi::decode_device_id(session_.transact(ipmi::make_get_device_id()));
}

std::optional<ipmi::PowerReading> ManagedNode::power_reading() {
  return ipmi::decode_power_reading(
      session_.transact(ipmi::make_get_power_reading()));
}

std::optional<ipmi::Capabilities> ManagedNode::capabilities() {
  return ipmi::decode_capabilities(
      session_.transact(ipmi::make_get_capabilities()));
}

std::optional<ipmi::PowerLimit> ManagedNode::power_limit() {
  return ipmi::decode_power_limit(
      session_.transact(ipmi::make_get_power_limit()));
}

std::optional<ipmi::ThrottleStatus> ManagedNode::throttle_status() {
  return ipmi::decode_throttle_status(
      session_.transact(ipmi::make_get_throttle_status()));
}

bool ManagedNode::set_cap(std::optional<double> watts) {
  ipmi::PowerLimit limit;
  limit.enabled = watts.has_value();
  limit.limit_w = watts.value_or(0.0);
  return session_.transact(ipmi::make_set_power_limit(limit)).ok();
}

DataCenterManager::Entry* DataCenterManager::find(const std::string& name) {
  for (auto& e : nodes_) {
    if (e.node->name() == name) return &e;
  }
  return nullptr;
}

const DataCenterManager::Entry* DataCenterManager::find(
    const std::string& name) const {
  for (const auto& e : nodes_) {
    if (e.node->name() == name) return &e;
  }
  return nullptr;
}

bool DataCenterManager::add_node(const std::string& name,
                                 ipmi::Transport& transport) {
  if (find(name) != nullptr) return false;
  auto node = std::make_unique<ManagedNode>(name, transport);
  if (!node->device_id()) return false;  // discovery probe
  Entry e;
  e.node = std::move(node);
  nodes_.push_back(std::move(e));
  return true;
}

ManagedNode* DataCenterManager::node(const std::string& name) {
  Entry* e = find(name);
  return e ? e->node.get() : nullptr;
}

std::vector<std::string> DataCenterManager::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& e : nodes_) names.push_back(e.node->name());
  return names;
}

bool DataCenterManager::apply_node_cap(const std::string& name,
                                       std::optional<double> watts) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  return e->node->set_cap(watts);
}

std::vector<std::pair<std::string, double>> DataCenterManager::apply_group_cap(
    double total_w) {
  std::vector<std::pair<std::string, double>> applied;
  if (nodes_.empty()) return applied;

  struct NodePlan {
    Entry* entry;
    double demand_w;
    double floor_w;
    double ceiling_w;
  };
  std::vector<NodePlan> plans;
  double floor_sum = 0.0;
  double demand_sum = 0.0;
  for (auto& e : nodes_) {
    const auto reading = e.node->power_reading();
    const auto caps = e.node->capabilities();
    if (!reading || !caps) return applied;  // abort on telemetry failure
    NodePlan p{&e, std::max(reading->average_w, reading->current_w),
               caps->min_cap_w, caps->max_cap_w};
    if (p.demand_w <= 0.0) p.demand_w = p.floor_w;
    p.demand_w *= static_cast<double>(e.priority);
    floor_sum += p.floor_w;
    demand_sum += p.demand_w;
    plans.push_back(p);
  }
  if (total_w < floor_sum || demand_sum <= 0.0) return applied;

  // Every node gets its floor; the surplus is split by demand share and
  // clamped to the node ceiling (leftover from clamping is not re-spread —
  // the budget is a limit, not a quota).
  const double surplus = total_w - floor_sum;
  for (auto& p : plans) {
    const double share = p.demand_w / demand_sum;
    const double cap = std::min(p.floor_w + surplus * share, p.ceiling_w);
    if (!p.entry->node->set_cap(cap)) {
      applied.clear();
      return applied;
    }
    applied.emplace_back(p.entry->node->name(), cap);
  }
  return applied;
}

void DataCenterManager::clear_caps() {
  for (auto& e : nodes_) e.node->set_cap(std::nullopt);
}

bool DataCenterManager::set_node_priority(const std::string& name,
                                          int priority) {
  Entry* e = find(name);
  if (e == nullptr || priority < 1) return false;
  e->priority = priority;
  return true;
}

int DataCenterManager::node_priority(const std::string& name) const {
  const Entry* e = find(name);
  return e ? e->priority : 0;
}

bool DataCenterManager::set_cap_schedule(const std::string& name,
                                         std::vector<ScheduledCap> schedule) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].at_poll < schedule[i - 1].at_poll) return false;
  }
  e->schedule = std::move(schedule);
  e->schedule_next = 0;
  return true;
}

void DataCenterManager::poll() {
  ++poll_seq_;
  for (auto& e : nodes_) {
    // Fire any due scheduled cap changes first.
    while (e.schedule_next < e.schedule.size() &&
           e.schedule[e.schedule_next].at_poll <= poll_seq_) {
      e.node->set_cap(e.schedule[e.schedule_next].cap_w);
      ++e.schedule_next;
    }
  }
  for (auto& e : nodes_) {
    const auto reading = e.node->power_reading();
    if (!reading) continue;
    e.history.push_back({poll_seq_, reading->current_w, reading->average_w});
    while (e.history.size() > config_.history_depth) e.history.pop_front();

    const auto limit = e.node->power_limit();
    if (limit && limit->enabled &&
        reading->current_w >
            limit->limit_w + config_.cap_violation_tolerance_w) {
      if (++e.consecutive_violations >= config_.violation_polls) {
        alerts_.push_back(
            {poll_seq_, e.node->name(),
             "cap missed: drawing " + std::to_string(reading->current_w) +
                 " W against a " + std::to_string(limit->limit_w) +
                 " W limit (throttling floor reached)"});
        e.consecutive_violations = 0;
      }
    } else {
      e.consecutive_violations = 0;
    }
  }
}

const std::deque<PowerSample>* DataCenterManager::history(
    const std::string& name) const {
  const Entry* e = find(name);
  return e ? &e->history : nullptr;
}

double DataCenterManager::total_observed_power_w() const {
  double total = 0.0;
  for (const auto& e : nodes_) {
    if (!e.history.empty()) total += e.history.back().current_w;
  }
  return total;
}

}  // namespace pcap::core
