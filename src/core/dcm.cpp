#include "core/dcm.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>

namespace pcap::core {

namespace {

/// Floor + demand-proportional surplus, clamped to each ceiling. Empty when
/// the budget cannot cover the floors (leftover from clamping is not
/// re-spread — the budget is a limit, not a quota).
std::vector<double> split_budget(const std::vector<double>& demands,
                                 const std::vector<double>& floors,
                                 const std::vector<double>& ceilings,
                                 double budget) {
  const double floor_sum = std::accumulate(floors.begin(), floors.end(), 0.0);
  const double demand_sum =
      std::accumulate(demands.begin(), demands.end(), 0.0);
  if (budget < floor_sum || demand_sum <= 0.0) return {};
  const double surplus = budget - floor_sum;
  std::vector<double> caps(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i) {
    caps[i] =
        std::min(floors[i] + surplus * demands[i] / demand_sum, ceilings[i]);
  }
  return caps;
}

std::string watts_str(double w) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", w);
  return buf;
}

const char* session_error_name(ipmi::Session::Error error) {
  switch (error) {
    case ipmi::Session::Error::kNone: return "none";
    case ipmi::Session::Error::kLost: return "lost";
    case ipmi::Session::Error::kTimeout: return "timeout";
    case ipmi::Session::Error::kCorrupt: return "corrupt";
    case ipmi::Session::Error::kStale: return "stale";
  }
  return "unknown";
}

}  // namespace

void ManagedNode::set_telemetry(telemetry::TraceWriter* trace,
                                double* mgmt_clock_ms) {
  trace_ = trace;
  mgmt_clock_ms_ = mgmt_clock_ms;
  if (trace_ != nullptr) trace_track_ = trace_->track("ipmi:" + name_);
}

ipmi::Response ManagedNode::transact_with_retry(const ipmi::Request& request) {
  const std::uint32_t attempts = std::max(1u, backoff_.max_attempts);
  ipmi::Response response;
  const double start_ms = clock_ms();
  std::uint32_t attempt = 0;
  bool exhausted = false;
  for (;; ++attempt) {
    response = session_.transact(request);
    // The management clock advances by the modelled wire latency of every
    // attempt (lost frames still burn the client's timeout budget).
    advance_clock(session_.last_latency_ms());
    if (session_.last_error() == ipmi::Session::Error::kNone) break;
    if (trace_ != nullptr) {
      trace_->instant(trace_track_, "ipmi",
                      std::string("retry:") +
                          session_error_name(session_.last_error()),
                      telemetry::TraceWriter::ms_us(clock_ms()),
                      {telemetry::TraceArg::num("attempt", attempt + 1)});
    }
    if (attempt + 1 >= attempts) {
      exhausted = true;
      break;
    }
    ++retries_;
    const double delay_ms = util::backoff_delay_ms(backoff_, attempt, rng_);
    backoff_ms_total_ += delay_ms;
    if (trace_ != nullptr) {
      trace_->span(trace_track_, "ipmi", "backoff",
                   telemetry::TraceWriter::ms_us(clock_ms()),
                   telemetry::TraceWriter::ms_us(delay_ms),
                   {telemetry::TraceArg::num("attempt", attempt + 1)});
    }
    advance_clock(delay_ms);
  }
  if (exhausted) ++failed_exchanges_;
  if (trace_ != nullptr) {
    trace_->span(
        trace_track_, "ipmi", ipmi::command_name(request.command),
        telemetry::TraceWriter::ms_us(start_ms),
        telemetry::TraceWriter::ms_us(clock_ms() - start_ms),
        {telemetry::TraceArg::num("attempts", attempt + 1),
         telemetry::TraceArg::str(
             "outcome", exhausted ? session_error_name(session_.last_error())
                                  : "ok")});
  }
  return response;
}

std::optional<ipmi::DeviceId> ManagedNode::device_id() {
  return ipmi::decode_device_id(
      transact_with_retry(ipmi::make_get_device_id()));
}

std::optional<ipmi::PowerReading> ManagedNode::power_reading() {
  return ipmi::decode_power_reading(
      transact_with_retry(ipmi::make_get_power_reading()));
}

std::optional<ipmi::Capabilities> ManagedNode::capabilities() {
  return ipmi::decode_capabilities(
      transact_with_retry(ipmi::make_get_capabilities()));
}

std::optional<ipmi::PowerLimit> ManagedNode::power_limit() {
  return ipmi::decode_power_limit(
      transact_with_retry(ipmi::make_get_power_limit()));
}

std::optional<ipmi::ThrottleStatus> ManagedNode::throttle_status() {
  return ipmi::decode_throttle_status(
      transact_with_retry(ipmi::make_get_throttle_status()));
}

bool ManagedNode::set_cap(std::optional<double> watts) {
  ipmi::PowerLimit limit;
  limit.enabled = watts.has_value();
  limit.limit_w = watts.value_or(0.0);
  return transact_with_retry(ipmi::make_set_power_limit(limit)).ok();
}

std::string node_health_name(NodeHealth health) {
  switch (health) {
    case NodeHealth::kHealthy: return "healthy";
    case NodeHealth::kDegraded: return "degraded";
    case NodeHealth::kLost: return "lost";
    case NodeHealth::kRecovered: return "recovered";
  }
  return "unknown";
}

DataCenterManager::Entry* DataCenterManager::find(const std::string& name) {
  for (auto& e : nodes_) {
    if (e.node->name() == name) return &e;
  }
  return nullptr;
}

const DataCenterManager::Entry* DataCenterManager::find(
    const std::string& name) const {
  for (const auto& e : nodes_) {
    if (e.node->name() == name) return &e;
  }
  return nullptr;
}

void DataCenterManager::set_telemetry(telemetry::TraceWriter* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_track_ = trace_->track("dcm");
  for (auto& e : nodes_) e.node->set_telemetry(trace_, &mgmt_clock_ms_);
}

bool DataCenterManager::attach_probe(const std::string& name,
                                     telemetry::NodeProbe* probe) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  e->probe = probe;
  if (probe != nullptr) {
    probe->note_health(static_cast<std::int32_t>(e->health));
  }
  return true;
}

void DataCenterManager::note_health_change(Entry& e) {
  if (e.probe != nullptr) {
    e.probe->note_health(static_cast<std::int32_t>(e.health));
  }
  if (trace_ != nullptr) {
    trace_->instant(trace_track_, "health",
                    e.node->name() + ":" + node_health_name(e.health),
                    telemetry::TraceWriter::ms_us(mgmt_clock_ms_),
                    {telemetry::TraceArg::num(
                        "failures", e.consecutive_failures)});
  }
}

bool DataCenterManager::add_node(const std::string& name,
                                 ipmi::Transport& transport) {
  if (find(name) != nullptr) return false;
  // Derive a per-node jitter seed so retry schedules across the fleet are
  // decorrelated but still reproducible from the configured seed.
  NodeCommsConfig comms = config_.comms;
  std::uint64_t state =
      comms.seed ^ (0x9E3779B97F4A7C15ull * (nodes_.size() + 1));
  for (unsigned char c : name) state += c;
  comms.seed = util::splitmix64(state);

  auto node = std::make_unique<ManagedNode>(name, transport, comms);
  // All sessions share the manager's clock so their spans interleave on one
  // management timeline (and mgmt_clock_ms() totals the fleet's wire time).
  node->set_telemetry(trace_, &mgmt_clock_ms_);
  if (!node->device_id()) return false;  // discovery probe
  const auto caps = node->capabilities();
  if (!caps) return false;
  Entry e;
  e.node = std::move(node);
  e.caps = *caps;
  nodes_.push_back(std::move(e));
  return true;
}

ManagedNode* DataCenterManager::node(const std::string& name) {
  Entry* e = find(name);
  return e ? e->node.get() : nullptr;
}

std::vector<std::string> DataCenterManager::node_names() const {
  std::vector<std::string> names;
  names.reserve(nodes_.size());
  for (const auto& e : nodes_) names.push_back(e.node->name());
  return names;
}

bool DataCenterManager::set_cap_recorded(Entry& e,
                                         std::optional<double> watts) {
  if (!e.node->set_cap(watts)) return false;
  e.applied_cap_w = watts;
  return true;
}

bool DataCenterManager::apply_node_cap(const std::string& name,
                                       std::optional<double> watts) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  return set_cap_recorded(*e, watts);
}

std::vector<std::pair<std::string, double>> DataCenterManager::apply_group_cap(
    double total_w) {
  std::vector<std::pair<std::string, double>> applied;
  if (nodes_.empty()) return applied;

  // Lost nodes cannot be re-capped; whatever their BMCs are enforcing is
  // reserved out of the budget. Reachable nodes are planned from fresh
  // telemetry (a failure aborts — health bookkeeping belongs to poll()).
  std::vector<Entry*> live;
  std::vector<double> demands, floors, ceilings;
  double reserved = 0.0;
  for (auto& e : nodes_) {
    if (e.health == NodeHealth::kLost) {
      reserved += reserved_for(e);
      continue;
    }
    const auto reading = e.node->power_reading();
    const auto caps = e.node->capabilities();
    if (!reading || !caps) return applied;
    e.caps = *caps;
    double demand = std::max(reading->average_w, reading->current_w);
    if (demand <= 0.0) demand = caps->min_cap_w;
    demand *= static_cast<double>(e.priority);
    live.push_back(&e);
    demands.push_back(demand);
    floors.push_back(caps->min_cap_w);
    ceilings.push_back(caps->max_cap_w);
  }
  if (live.empty()) return applied;

  const auto caps_w = split_budget(demands, floors, ceilings,
                                   total_w - reserved);
  if (caps_w.empty()) return applied;
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!set_cap_recorded(*live[i], caps_w[i])) {
      applied.clear();
      return applied;
    }
    applied.emplace_back(live[i]->node->name(), caps_w[i]);
  }
  group_budget_w_ = total_w;
  return applied;
}

void DataCenterManager::clear_caps() {
  for (auto& e : nodes_) set_cap_recorded(e, std::nullopt);
  group_budget_w_.reset();
}

bool DataCenterManager::set_node_priority(const std::string& name,
                                          int priority) {
  Entry* e = find(name);
  if (e == nullptr || priority < 1) return false;
  e->priority = priority;
  return true;
}

int DataCenterManager::node_priority(const std::string& name) const {
  const Entry* e = find(name);
  return e ? e->priority : 0;
}

bool DataCenterManager::set_cap_schedule(const std::string& name,
                                         std::vector<ScheduledCap> schedule) {
  Entry* e = find(name);
  if (e == nullptr) return false;
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    if (schedule[i].at_poll < schedule[i - 1].at_poll) return false;
  }
  e->schedule = std::move(schedule);
  e->schedule_next = 0;
  return true;
}

double DataCenterManager::reserved_for(const Entry& e) const {
  // Conservative: an unreachable BMC keeps enforcing its last cap, so that
  // cap is the most it can draw. Without a cap, assume the last observed
  // draw; with no observation at all, its full capability ceiling.
  if (e.applied_cap_w) return *e.applied_cap_w;
  if (!e.history.empty()) {
    return std::max(e.history.back().average_w, e.history.back().current_w);
  }
  return e.caps.max_cap_w;
}

void DataCenterManager::rebalance_group_budget() {
  if (!group_budget_w_) return;

  std::vector<Entry*> live;
  std::vector<double> demands, floors, ceilings;
  double reserved = 0.0;
  for (auto& e : nodes_) {
    if (e.health == NodeHealth::kLost) {
      reserved += reserved_for(e);
      continue;
    }
    // Plan from cached demand and capabilities: rebalancing happens inside
    // poll(), and issuing fresh telemetry reads over an already-unreliable
    // wire would couple the rebalance to more failures.
    double demand = e.caps.min_cap_w;
    if (!e.history.empty()) {
      demand = std::max(e.history.back().average_w,
                        e.history.back().current_w);
      if (demand <= 0.0) demand = e.caps.min_cap_w;
    }
    demand *= static_cast<double>(e.priority);
    live.push_back(&e);
    demands.push_back(demand);
    floors.push_back(e.caps.min_cap_w);
    ceilings.push_back(e.caps.max_cap_w);
  }
  if (live.empty()) return;

  const double available = *group_budget_w_ - reserved;
  const auto caps_w = split_budget(demands, floors, ceilings, available);
  if (caps_w.empty()) {
    // The remaining budget no longer covers the reachable nodes' floors.
    // Degrade gracefully: pin every reachable node at its floor (the
    // deepest enforceable point) and flag the shortfall.
    alerts_.push_back(
        {poll_seq_, "group",
         "budget infeasible: " + watts_str(available) +
             " W left for reachable nodes after reserving " +
             watts_str(reserved) + " W; pinning floors"});
    for (std::size_t i = 0; i < live.size(); ++i) {
      set_cap_recorded(*live[i], floors[i]);
    }
    return;
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!set_cap_recorded(*live[i], caps_w[i])) {
      alerts_.push_back({poll_seq_, live[i]->node->name(),
                         "rebalance: failed to apply " +
                             watts_str(caps_w[i]) + " W cap"});
    }
  }
}

void DataCenterManager::note_exchange(Entry& e, bool ok) {
  if (ok) {
    e.consecutive_failures = 0;
    switch (e.health) {
      case NodeHealth::kLost:
        e.health = NodeHealth::kRecovered;
        alerts_.push_back({poll_seq_, e.node->name(),
                           "recovered: BMC reachable again; restoring group "
                           "budget share"});
        note_health_change(e);
        rebalance_group_budget();
        break;
      case NodeHealth::kDegraded:
      case NodeHealth::kRecovered:
        e.health = NodeHealth::kHealthy;
        note_health_change(e);
        break;
      case NodeHealth::kHealthy:
        break;
    }
    return;
  }
  ++e.consecutive_failures;
  if (e.health != NodeHealth::kLost &&
      e.consecutive_failures >= config_.lost_after_failures) {
    e.health = NodeHealth::kLost;
    alerts_.push_back(
        {poll_seq_, e.node->name(),
         "lost: unreachable for " + std::to_string(e.consecutive_failures) +
             " polls; reserving " + watts_str(reserved_for(e)) +
             " W of group budget"});
    note_health_change(e);
    rebalance_group_budget();
  } else if ((e.health == NodeHealth::kHealthy ||
              e.health == NodeHealth::kRecovered) &&
             e.consecutive_failures >= config_.degraded_after_failures) {
    e.health = NodeHealth::kDegraded;
    alerts_.push_back(
        {poll_seq_, e.node->name(),
         "degraded: " + std::to_string(e.consecutive_failures) +
             " consecutive failed exchanges"});
    note_health_change(e);
  }
}

void DataCenterManager::poll() {
  ++poll_seq_;
  for (auto& e : nodes_) {
    // Fire any due scheduled cap changes first.
    while (e.schedule_next < e.schedule.size() &&
           e.schedule[e.schedule_next].at_poll <= poll_seq_) {
      set_cap_recorded(e, e.schedule[e.schedule_next].cap_w);
      ++e.schedule_next;
    }
  }
  for (auto& e : nodes_) {
    const auto reading = e.node->power_reading();
    note_exchange(e, reading.has_value());
    if (!reading) continue;
    e.history.push_back({poll_seq_, reading->current_w, reading->average_w});
    while (e.history.size() > config_.history_depth) e.history.pop_front();

    const auto limit = e.node->power_limit();
    if (limit && limit->enabled &&
        reading->current_w >
            limit->limit_w + config_.cap_violation_tolerance_w) {
      if (++e.consecutive_violations >= config_.violation_polls) {
        alerts_.push_back(
            {poll_seq_, e.node->name(),
             "cap missed: drawing " + std::to_string(reading->current_w) +
                 " W against a " + std::to_string(limit->limit_w) +
                 " W limit (throttling floor reached)"});
        e.consecutive_violations = 0;
      }
    } else {
      e.consecutive_violations = 0;
    }
  }
}

const std::deque<PowerSample>* DataCenterManager::history(
    const std::string& name) const {
  const Entry* e = find(name);
  return e ? &e->history : nullptr;
}

double DataCenterManager::total_observed_power_w() const {
  double total = 0.0;
  for (const auto& e : nodes_) {
    if (!e.history.empty()) total += e.history.back().current_w;
  }
  return total;
}

std::optional<NodeHealth> DataCenterManager::node_health(
    const std::string& name) const {
  const Entry* e = find(name);
  if (e == nullptr) return std::nullopt;
  return e->health;
}

std::size_t DataCenterManager::health_count(NodeHealth health) const {
  std::size_t n = 0;
  for (const auto& e : nodes_) {
    if (e.health == health) ++n;
  }
  return n;
}

std::optional<double> DataCenterManager::node_applied_cap(
    const std::string& name) const {
  const Entry* e = find(name);
  return e ? e->applied_cap_w : std::nullopt;
}

}  // namespace pcap::core
