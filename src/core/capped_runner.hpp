// Convenience wiring used by the harness, the amenability analyzer and the
// examples: one node + one BMC, with per-run cold-start hygiene matching the
// paper's methodology (each measurement is an independent execution).
#pragma once

#include <optional>

#include "core/bmc.hpp"
#include "sim/node.hpp"

namespace pcap::core {

class CappedRunner {
 public:
  explicit CappedRunner(sim::Node& node, const BmcConfig& bmc_config = {});
  ~CappedRunner();

  CappedRunner(const CappedRunner&) = delete;
  CappedRunner& operator=(const CappedRunner&) = delete;

  Bmc& bmc() { return bmc_; }
  sim::Node& node() { return *node_; }

  /// Runs the workload under `cap_w` (std::nullopt == baseline, uncapped).
  /// Caches and TLBs start cold, the BMC starts at the unthrottled level,
  /// and capping is released after the run.
  sim::RunReport run(sim::Workload& workload, std::optional<double> cap_w);

 private:
  sim::Node* node_;
  Bmc bmc_;
};

}  // namespace pcap::core
