#include "core/amenability.hpp"

#include <algorithm>

namespace pcap::core {

namespace {

struct Averaged {
  double time_s = 0.0;
  double power_w = 0.0;
  double energy_j = 0.0;
};

Averaged run_averaged(CappedRunner& runner, sim::Workload& workload,
                      std::optional<double> cap, int reps) {
  Averaged avg;
  reps = std::max(reps, 1);
  for (int r = 0; r < reps; ++r) {
    const sim::RunReport report = runner.run(workload, cap);
    avg.time_s += util::to_seconds(report.elapsed);
    avg.power_w += report.avg_power_w;
    avg.energy_j += report.energy_j;
  }
  avg.time_s /= reps;
  avg.power_w /= reps;
  avg.energy_j /= reps;
  return avg;
}

}  // namespace

AmenabilityReport AmenabilityAnalyzer::analyze(
    CappedRunner& runner, sim::Workload& workload,
    std::span<const double> caps_w) const {
  AmenabilityReport report;

  const Averaged base =
      run_averaged(runner, workload, std::nullopt, options_.repetitions);
  report.baseline_power_w = base.power_w;
  report.baseline_time = util::seconds(base.time_s);
  report.baseline_energy_j = base.energy_j;

  double slowdown_sum = 0.0;
  for (double cap : caps_w) {
    const Averaged capped =
        run_averaged(runner, workload, cap, options_.repetitions);
    AmenabilityPoint p;
    p.cap_w = cap;
    p.measured_power_w = capped.power_w;
    p.slowdown = base.time_s > 0.0 ? capped.time_s / base.time_s : 1.0;
    p.energy_ratio =
        base.energy_j > 0.0 ? capped.energy_j / base.energy_j : 1.0;
    p.cap_met = capped.power_w <= cap + options_.cap_met_tolerance_w;
    report.points.push_back(p);
    slowdown_sum += p.slowdown;
  }

  if (!report.points.empty()) {
    report.sensitivity_index =
        slowdown_sum / static_cast<double>(report.points.size()) - 1.0;
    double floor = 0.0;
    for (const auto& p : report.points) {
      if (p.slowdown <= options_.slowdown_tolerance) {
        floor = floor == 0.0 ? p.cap_w : std::min(floor, p.cap_w);
      }
    }
    report.usable_cap_floor_w = floor;
  }
  return report;
}

}  // namespace pcap::core
