#include "core/capped_runner.hpp"

namespace pcap::core {

CappedRunner::CappedRunner(sim::Node& node, const BmcConfig& bmc_config)
    : node_(&node), bmc_(node, bmc_config) {
  node_->set_control_hook(
      [this](sim::PlatformControl&) { bmc_.on_control_tick(); });
}

CappedRunner::~CappedRunner() { node_->set_control_hook(nullptr); }

sim::RunReport CappedRunner::run(sim::Workload& workload,
                                 std::optional<double> cap_w) {
  node_->hierarchy().flush_caches();
  node_->hierarchy().flush_tlbs();
  bmc_.set_cap(std::nullopt);  // resets throttle state to the top
  bmc_.set_cap(cap_w);
  sim::RunReport report = node_->run(workload);
  bmc_.set_cap(std::nullopt);
  return report;
}

}  // namespace pcap::core
