#include "core/bmc_ipmi_server.hpp"

namespace pcap::core {

using ipmi::Command;
using ipmi::CompletionCode;

ipmi::Response BmcIpmiServer::handle(const ipmi::Request& request) {
  switch (static_cast<Command>(request.command)) {
    case Command::kGetDeviceId:
      return ipmi::encode_device_id(ipmi::DeviceId{});

    case Command::kGetPowerReading:
      return ipmi::encode_power_reading(bmc_->power_reading());

    case Command::kSetPowerLimit: {
      const auto limit = ipmi::decode_set_power_limit(request);
      if (!limit) {
        return ipmi::make_error_response(CompletionCode::kRequestDataInvalid);
      }
      if (limit->enabled) {
        const auto caps = bmc_->capabilities();
        if (limit->limit_w < caps.min_cap_w || limit->limit_w > caps.max_cap_w) {
          return ipmi::make_error_response(CompletionCode::kOutOfRange);
        }
        bmc_->set_cap(limit->limit_w);
      } else {
        bmc_->set_cap(std::nullopt);
      }
      return ipmi::make_ok_response();
    }

    case Command::kGetPowerLimit: {
      ipmi::PowerLimit limit;
      limit.enabled = bmc_->cap().has_value();
      limit.limit_w = bmc_->cap().value_or(0.0);
      return ipmi::encode_power_limit(limit);
    }

    case Command::kGetCapabilities:
      return ipmi::encode_capabilities(bmc_->capabilities());

    case Command::kGetThrottleStatus:
      return ipmi::encode_throttle_status(bmc_->throttle_status());

    // Budget-tree commands are served by BudgetEndpointServer, never by a
    // node BMC.
    case Command::kSetRackBudget:
    case Command::kGetRackStatus:
    case Command::kGetRackTelemetry:
      break;
  }
  return ipmi::make_error_response(CompletionCode::kInvalidCommand);
}

std::vector<std::uint8_t> BmcIpmiServer::handle_frame(
    std::span<const std::uint8_t> frame) {
  ipmi::Request request;
  if (!ipmi::decode_request(frame, request)) {
    return ipmi::encode_response(
        ipmi::make_error_response(CompletionCode::kRequestDataInvalid));
  }
  ipmi::Response response = handle(request);
  response.seq = request.seq;  // rqSeq echo — lets the client reject stale frames
  return ipmi::encode_response(response);
}

}  // namespace pcap::core
