#include "core/bmc.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::core {

Bmc::Bmc(sim::PlatformControl& platform, const BmcConfig& config)
    : platform_(&platform), config_(config) {
  build_ladder();
  apply_level(0);
}

void Bmc::build_ladder() {
  const std::uint32_t pstates = platform_->pstate_count();
  const std::uint32_t l3_max = platform_->l3_max_ways();
  const std::uint32_t l2_max = platform_->l2_max_ways();
  const std::uint32_t itlb_max = platform_->itlb_max_entries();
  const std::uint32_t dtlb_max = platform_->dtlb_max_entries();

  ThrottleLevel base;
  base.pstate = 0;
  base.duty = 1.0;
  base.l3_ways = l3_max;
  base.l2_ways = l2_max;
  base.itlb_entries = itlb_max;
  base.dtlb_entries = dtlb_max;
  base.dram_gated = false;

  // DVFS rungs.
  for (std::uint32_t p = 0; p < pstates; ++p) {
    ThrottleLevel level = base;
    level.pstate = p;
    level.label = "P" + std::to_string(p);
    ladder_.push_back(level);
  }

  if (config_.dvfs_only) return;

  // Memory gating.
  ThrottleLevel level = ladder_.back();
  level.dram_gated = true;
  level.label = "dram-gated";
  ladder_.push_back(level);

  // Dynamic cache/TLB reconfiguration rungs.
  level.l3_ways = std::max(1u, (l3_max * 3) / 5);  // 20 -> 12
  level.label = "l3-" + std::to_string(level.l3_ways) + "w";
  ladder_.push_back(level);

  level.l3_ways = std::max(1u, (l3_max * 2) / 5);  // 20 -> 8
  level.itlb_entries = std::max(1u, itlb_max * 2 / 3);
  level.label = "l3-" + std::to_string(level.l3_ways) + "w";
  ladder_.push_back(level);

  // Note: the data TLB is left alone — the paper's DTLB miss counts stay
  // nearly flat at every cap, so whatever the platform gates, it is not
  // the DTLB.
  level.l3_ways = std::max(1u, l3_max / 5);  // 20 -> 4
  level.l2_ways = std::max(1u, l2_max / 2);  // 8 -> 4
  level.itlb_entries = std::max(1u, itlb_max / 3);
  level.label = "l3-" + std::to_string(level.l3_ways) + "w+l2";
  ladder_.push_back(level);
  (void)dtlb_max;

  level.l2_ways = std::max(1u, l2_max / 4);  // 8 -> 2
  level.itlb_entries = std::max(1u, itlb_max / 8);
  level.label = "l2-" + std::to_string(level.l2_ways) + "w+tlb";
  ladder_.push_back(level);

  // Clock modulation (T-states), 7/8 down to the platform minimum.
  const double min_duty = platform_->min_duty();
  for (int eighths = 7; eighths >= 1; --eighths) {
    const double duty = static_cast<double>(eighths) / 8.0;
    if (duty < min_duty - 1e-9) break;
    ThrottleLevel t = level;
    t.duty = duty;
    t.label = "duty-" + std::to_string(eighths) + "/8";
    ladder_.push_back(t);
  }
}

void Bmc::set_telemetry(telemetry::TraceWriter* trace,
                        telemetry::NodeProbe* probe, const std::string& name) {
  trace_ = trace;
  probe_ = probe;
  if (trace_ != nullptr) trace_track_ = trace_->track(name);
}

void Bmc::apply_structural(const ThrottleLevel& level) {
  if (platform_->l3_ways() != level.l3_ways) {
    platform_->set_l3_ways(level.l3_ways);
  }
  if (platform_->l2_ways() != level.l2_ways) {
    platform_->set_l2_ways(level.l2_ways);
  }
  if (platform_->itlb_entries() != level.itlb_entries) {
    platform_->set_itlb_entries(level.itlb_entries);
  }
  if (platform_->dtlb_entries() != level.dtlb_entries) {
    platform_->set_dtlb_entries(level.dtlb_entries);
  }
  if (platform_->dram_gated() != level.dram_gated) {
    platform_->set_dram_gated(level.dram_gated);
  }
}

void Bmc::apply_level(std::uint32_t level_index) {
  level_index = std::min(
      level_index, static_cast<std::uint32_t>(ladder_.size() - 1));
  const ThrottleLevel& level = ladder_[level_index];
  platform_->set_pstate(level.pstate);
  platform_->set_duty(level.duty);

  // Structural settings are rate-limited: only adopt a new structure after
  // the dwell expires (reconfiguring caches costs flushes).
  if (level_index != applied_structural_level_) {
    const bool dwell_ok =
        ticks_ - last_structural_change_tick_ >= config_.structural_dwell_periods;
    const bool structure_differs =
        !ladder_[applied_structural_level_].same_structure(level);
    if (!structure_differs) {
      applied_structural_level_ = level_index;
    } else if (dwell_ok) {
      apply_structural(level);
      applied_structural_level_ = level_index;
      last_structural_change_tick_ = ticks_;
      if (trace_ != nullptr) {
        trace_->instant(trace_track_, "bmc", "reconfigure:" + level.label,
                        telemetry::TraceWriter::sim_us(platform_->now()),
                        {telemetry::TraceArg::num("level", level_index)});
      }
    }
    // else: keep the previous structure for now (P-state/duty still applied).
  }
  if (level_index != applied_level_) {
    ++level_changes_;
    if (trace_ != nullptr) {
      trace_->counter(trace_track_, "throttle-level",
                      telemetry::TraceWriter::sim_us(platform_->now()),
                      static_cast<double>(level_index));
    }
    if (probe_ != nullptr) probe_->note_throttle_level(level_index);
  }
  applied_level_ = level_index;
  max_level_reached_ = std::max(max_level_reached_, level_index);
}

void Bmc::set_cap(std::optional<double> watts) {
  cap_w_ = watts;
  if (trace_ != nullptr) {
    const double ts = telemetry::TraceWriter::sim_us(platform_->now());
    if (watts) {
      trace_->instant(trace_track_, "bmc", "set-cap", ts,
                      {telemetry::TraceArg::num("watts", *watts)});
    } else {
      trace_->instant(trace_track_, "bmc", "uncap", ts);
    }
  }
  if (probe_ != nullptr) {
    if (watts) {
      probe_->note_cap(*watts);
    } else {
      probe_->note_uncapped();
    }
    probe_->note_throttle_level(0);
  }
  min_w_ = 0.0;
  max_w_ = 0.0;
  energy_acc_w_ = 0.0;
  reading_count_ = 0;
  max_level_reached_ = 0;
  level_changes_ = 0;
  if (!cap_w_) {
    index_ = 0.0;
    dither_acc_ = 0.0;
    // Restore the unthrottled operating point immediately.
    apply_structural(ladder_.front());
    applied_structural_level_ = 0;
    apply_level(0);
  }
}

void Bmc::on_control_tick() {
  ++ticks_;
  const double reading = platform_->window_average_power_w();
  last_reading_w_ = reading;
  if (reading_count_ == 0) {
    min_w_ = reading;
    max_w_ = reading;
  }
  min_w_ = std::min(min_w_, reading);
  max_w_ = std::max(max_w_, reading);
  energy_acc_w_ += reading;
  ++reading_count_;

  if (!cap_w_) return;

  const double target = *cap_w_ - config_.guard_band_w;
  const double error = reading - target;
  if (error > 0.0) {
    index_ += std::min(config_.step_gain * error, config_.max_step);
  } else if (error < -config_.hysteresis_w) {
    index_ -= config_.deescalate_step;
  }
  index_ = std::clamp(index_, 0.0, static_cast<double>(ladder_.size() - 1));

  const auto floor_level = static_cast<std::uint32_t>(index_);
  const double frac = index_ - static_cast<double>(floor_level);
  std::uint32_t level = floor_level;
  if (config_.enable_dither && frac > 0.0 && floor_level + 1 < ladder_.size() &&
      ladder_[floor_level].same_structure(ladder_[floor_level + 1])) {
    // Time-dither between the two adjacent rungs in proportion to frac.
    dither_acc_ += frac;
    if (dither_acc_ >= 1.0) {
      dither_acc_ -= 1.0;
      level = floor_level + 1;
    }
  }
  apply_level(level);
}

ipmi::PowerReading Bmc::power_reading() const {
  ipmi::PowerReading r;
  if (reading_count_ == 0) {
    // No control-loop samples yet: serve the instantaneous sensor, as a
    // real BMC would between averaging windows.
    const double now_w = platform_->instantaneous_power_w();
    return ipmi::PowerReading{now_w, now_w, now_w, now_w};
  }
  r.current_w = last_reading_w_;
  r.average_w = energy_acc_w_ / static_cast<double>(reading_count_);
  r.minimum_w = min_w_;
  r.maximum_w = max_w_;
  return r;
}

ipmi::Capabilities Bmc::capabilities() const {
  return ipmi::Capabilities{config_.min_cap_w, config_.max_cap_w};
}

ipmi::ThrottleStatus Bmc::throttle_status() const {
  ipmi::ThrottleStatus s;
  s.pstate = static_cast<std::uint8_t>(platform_->pstate());
  s.duty_eighths =
      static_cast<std::uint8_t>(std::lround(platform_->duty() * 8.0));
  s.l3_ways = static_cast<std::uint8_t>(platform_->l3_ways());
  s.l2_ways = static_cast<std::uint8_t>(platform_->l2_ways());
  s.itlb_entries = static_cast<std::uint8_t>(platform_->itlb_entries());
  s.dtlb_entries = static_cast<std::uint8_t>(platform_->dtlb_entries());
  s.dram_gated = platform_->dram_gated();
  s.capping_active = cap_w_.has_value();
  return s;
}

}  // namespace pcap::core
