// Seeded job-stream generation: a deterministic arrival process over the
// four job classes, with exponential interarrival gaps, geometric-ish job
// sizes and optional soft deadlines derived from each job's uncapped
// service-time estimate. A given ArrivalConfig (including seed) always
// yields the identical stream, which is what makes whole scheduler runs
// reproducible end-to-end.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sched/job.hpp"

namespace pcap::sched {

struct ArrivalConfig {
  int job_count = 16;
  /// Mean gap between arrivals (simulated seconds). The default keeps an
  /// 8-node rack saturated early and draining late.
  double mean_interarrival_s = 150e-6;
  /// Relative class mix (need not sum to 1); zero removes a class.
  std::array<double, kJobClassCount> class_weights = {1.0, 1.0, 0.5, 0.5};
  int min_chunks = 4;
  int max_chunks = 10;
  /// Fraction of jobs carrying a deadline (0 disables deadlines).
  double deadline_fraction = 0.0;
  /// Deadline = arrival + deadline_factor * chunks * uncapped chunk-time
  /// estimate (`chunk_time_hint_s`; the default tracks the measured
  /// uncapped chunk times of the shipped classes, 240-540 us).
  double deadline_factor = 2.0;
  double chunk_time_hint_s = 450e-6;
  std::uint64_t seed = 1;
};

/// Generates the stream sorted by arrival time (ties broken by id; ids are
/// assigned in arrival order starting at 0).
std::vector<JobSpec> generate_stream(const ArrivalConfig& config);

}  // namespace pcap::sched
