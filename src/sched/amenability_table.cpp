#include "sched/amenability_table.hpp"

#include <algorithm>

#include "core/capped_runner.hpp"
#include "sim/node.hpp"
#include "util/units.hpp"

namespace pcap::sched {

namespace {

double interpolate(const std::vector<core::AmenabilityPoint>& points,
                   double cap_w, double (*value)(const core::AmenabilityPoint&),
                   double above_top) {
  if (points.empty()) return above_top;
  if (cap_w <= points.front().cap_w) {
    // Below the measured grid, extrapolate along the lowest segment: the
    // enforceable floor (110 W) sits under the lowest practical measurement
    // point, and a flat clamp there would hide the marginal value of the
    // first watts above the floor from the watt-filling policies.
    if (points.size() < 2) return value(points.front());
    const auto& lo = points[0];
    const auto& hi = points[1];
    const double span = hi.cap_w - lo.cap_w;
    if (span <= 0.0) return value(lo);
    const double slope = (value(hi) - value(lo)) / span;
    return value(lo) + slope * (cap_w - lo.cap_w);
  }
  if (cap_w >= points.back().cap_w) {
    // Above the measured grid the cap no longer binds.
    return above_top != 0.0 ? above_top : value(points.back());
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (cap_w <= points[i].cap_w) {
      const auto& lo = points[i - 1];
      const auto& hi = points[i];
      const double span = hi.cap_w - lo.cap_w;
      const double f = span > 0.0 ? (cap_w - lo.cap_w) / span : 0.0;
      return value(lo) + f * (value(hi) - value(lo));
    }
  }
  return value(points.back());
}

}  // namespace

double ClassCurve::slowdown_at(double cap_w) const {
  if (cap_w >= baseline_power_w) return 1.0;  // cap above demand: unthrottled
  return interpolate(
      points, cap_w, [](const core::AmenabilityPoint& p) { return p.slowdown; },
      1.0);
}

double ClassCurve::power_at(double cap_w) const {
  if (cap_w >= baseline_power_w) return baseline_power_w;
  return interpolate(
      points, cap_w,
      [](const core::AmenabilityPoint& p) { return p.measured_power_w; },
      baseline_power_w);
}

void AmenabilityTable::set_curve(ClassCurve curve) {
  std::sort(curve.points.begin(), curve.points.end(),
            [](const core::AmenabilityPoint& a, const core::AmenabilityPoint& b) {
              return a.cap_w < b.cap_w;
            });
  curves_[static_cast<std::size_t>(curve.cls)] = std::move(curve);
}

const ClassCurve* AmenabilityTable::curve(JobClass cls) const {
  const auto& slot = curves_[static_cast<std::size_t>(cls)];
  return slot ? &*slot : nullptr;
}

bool AmenabilityTable::complete() const {
  return std::all_of(curves_.begin(), curves_.end(),
                     [](const auto& c) { return c.has_value(); });
}

std::size_t AmenabilityTable::size() const {
  return static_cast<std::size_t>(
      std::count_if(curves_.begin(), curves_.end(),
                    [](const auto& c) { return c.has_value(); }));
}

ClassCurve AmenabilityTable::from_report(JobClass cls,
                                         const core::AmenabilityReport& report,
                                         double usable_floor_w) {
  ClassCurve curve;
  curve.cls = cls;
  curve.baseline_power_w = report.baseline_power_w;
  curve.baseline_time_s = util::to_seconds(report.baseline_time);
  curve.usable_floor_w = usable_floor_w;
  curve.points = report.points;
  std::sort(curve.points.begin(), curve.points.end(),
            [](const core::AmenabilityPoint& a, const core::AmenabilityPoint& b) {
              return a.cap_w < b.cap_w;
            });
  return curve;
}

util::JsonValue AmenabilityTable::to_json() const {
  util::JsonArray classes;
  for (const auto& slot : curves_) {
    if (!slot) continue;
    const ClassCurve& curve = *slot;
    util::JsonArray points;
    for (const auto& p : curve.points) {
      util::JsonObject point;
      point["cap_w"] = util::JsonValue(p.cap_w);
      point["power_w"] = util::JsonValue(p.measured_power_w);
      point["slowdown"] = util::JsonValue(p.slowdown);
      point["energy_ratio"] = util::JsonValue(p.energy_ratio);
      point["cap_met"] = util::JsonValue(p.cap_met);
      points.emplace_back(std::move(point));
    }
    util::JsonObject entry;
    entry["class"] = util::JsonValue(job_class_name(curve.cls));
    entry["baseline_power_w"] = util::JsonValue(curve.baseline_power_w);
    entry["baseline_time_s"] = util::JsonValue(curve.baseline_time_s);
    entry["usable_floor_w"] = util::JsonValue(curve.usable_floor_w);
    entry["points"] = util::JsonValue(std::move(points));
    classes.emplace_back(std::move(entry));
  }
  util::JsonObject root;
  root["schema"] = util::JsonValue(std::string("pcap-amenability-v1"));
  root["classes"] = util::JsonValue(std::move(classes));
  return util::JsonValue(std::move(root));
}

std::optional<AmenabilityTable> AmenabilityTable::from_json(
    const util::JsonValue& v) {
  const util::JsonValue* schema = v.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->as_string() != "pcap-amenability-v1") {
    return std::nullopt;
  }
  const util::JsonValue* classes = v.find("classes");
  if (classes == nullptr || !classes->is_array()) return std::nullopt;

  AmenabilityTable table;
  for (const util::JsonValue& entry : classes->as_array()) {
    const util::JsonValue* name = entry.find("class");
    if (name == nullptr || !name->is_string()) return std::nullopt;
    const auto cls = job_class_from_name(name->as_string());
    if (!cls) return std::nullopt;

    ClassCurve curve;
    curve.cls = *cls;
    auto number = [&](const char* key, double* out) {
      const util::JsonValue* field = entry.find(key);
      if (field == nullptr || !field->is_number()) return false;
      *out = field->as_number();
      return true;
    };
    if (!number("baseline_power_w", &curve.baseline_power_w) ||
        !number("baseline_time_s", &curve.baseline_time_s) ||
        !number("usable_floor_w", &curve.usable_floor_w)) {
      return std::nullopt;
    }
    const util::JsonValue* points = entry.find("points");
    if (points == nullptr || !points->is_array()) return std::nullopt;
    for (const util::JsonValue& pv : points->as_array()) {
      core::AmenabilityPoint p;
      auto pnumber = [&](const char* key, double* out) {
        const util::JsonValue* field = pv.find(key);
        if (field == nullptr || !field->is_number()) return false;
        *out = field->as_number();
        return true;
      };
      if (!pnumber("cap_w", &p.cap_w) ||
          !pnumber("power_w", &p.measured_power_w) ||
          !pnumber("slowdown", &p.slowdown) ||
          !pnumber("energy_ratio", &p.energy_ratio)) {
        return std::nullopt;
      }
      const util::JsonValue* met = pv.find("cap_met");
      p.cap_met = met != nullptr && met->is_bool() ? met->as_bool() : true;
      curve.points.push_back(p);
    }
    table.set_curve(std::move(curve));
  }
  return table;
}

void AmenabilityTable::save(const std::string& path) const {
  util::write_json_file(path, to_json());
}

std::optional<AmenabilityTable> AmenabilityTable::load(
    const std::string& path) {
  const auto doc = util::read_json_file(path);
  if (!doc) return std::nullopt;
  return from_json(*doc);
}

AmenabilityTable characterize_job_classes(const CharacterizeOptions& options) {
  AmenabilityTable table;
  core::AmenabilityOptions analyzer_options;
  analyzer_options.slowdown_tolerance = options.slowdown_tolerance;
  analyzer_options.repetitions = options.repetitions;
  const core::AmenabilityAnalyzer analyzer(analyzer_options);

  for (int c = 0; c < kJobClassCount; ++c) {
    const JobClass cls = static_cast<JobClass>(c);
    // Fresh node per class: the characterisation is an independent
    // measurement, exactly like the paper's per-cap cold runs.
    sim::Node node(options.machine, options.seed + static_cast<std::uint64_t>(c));
    core::CappedRunner runner(node);
    auto chunk = make_chunk_workload(cls, options.seed, 0);
    const core::AmenabilityReport report =
        analyzer.analyze(runner, *chunk, options.caps_w);
    table.set_curve(
        AmenabilityTable::from_report(cls, report, report.usable_cap_floor_w));
  }
  return table;
}

}  // namespace pcap::sched
