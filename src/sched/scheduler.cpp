#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace pcap::sched {

namespace {

constexpr double kTimeEps = 1e-12;   // event-time comparison slack (seconds)
constexpr double kCapEpsW = 1e-6;    // caps differing by less are "equal"
constexpr double kBudgetTolW = 1e-3; // invariant tolerance

}  // namespace

struct ClusterScheduler::Slot {
  std::string name;
  std::unique_ptr<sim::Node> node;
  std::unique_ptr<core::Bmc> bmc;
  std::unique_ptr<core::BmcIpmiServer> server;
  std::unique_ptr<ipmi::LoopbackTransport> loopback;
  std::unique_ptr<ipmi::FaultyTransport> faulty;

  double idle_power_w = 101.0;
  int job = -1;               // index into the run's JobRecord vector
  bool in_flight = false;     // a chunk is executing
  double chunk_end_s = 0.0;
  double idle_since_s = 0.0;  // when the slot last went idle
  std::optional<double> cap_at_chunk_start;
  ChunkResult last_chunk;
};

ClusterScheduler::ClusterScheduler(const SchedulerConfig& config)
    : config_(config),
      policy_(make_policy(config.policy_name)),
      model_(config.power_model),
      dcm_(config.dcm) {
  model_.set_table(config_.table);
  if (config_.trace != nullptr) {
    dcm_.set_telemetry(config_.trace);
    trace_track_ = config_.trace->track("sched");
  }
  if (config_.registry != nullptr) {
    ctr_replans_ = config_.registry->counter("sched.replans");
    ctr_chunks_ = config_.registry->counter("sched.chunks");
    ctr_completed_ = config_.registry->counter("sched.jobs_completed");
    ctr_misses_ = config_.registry->counter("sched.deadline_misses");
    ctr_cap_updates_ = config_.registry->counter("sched.cap_updates");
    gauge_cap_sum_ = config_.registry->gauge("sched.cap_sum_w");
    gauge_queue_ = config_.registry->gauge("sched.queue_depth");
  }

  slots_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->name = "node-" + std::to_string(i);
    slot->node = std::make_unique<sim::Node>(
        config_.machine, config_.seed + static_cast<std::uint64_t>(i) + 1);
    slot->bmc = std::make_unique<core::Bmc>(*slot->node, config_.bmc);
    slot->server = std::make_unique<core::BmcIpmiServer>(*slot->bmc);
    slot->node->set_control_hook([bmc = slot->bmc.get()](
                                     sim::PlatformControl&) {
      bmc->on_control_tick();
    });
    slot->loopback = std::make_unique<ipmi::LoopbackTransport>(
        [srv = slot->server.get()](std::span<const std::uint8_t> frame) {
          return srv->handle_frame(frame);
        });
    if (config_.faults) {
      slot->faulty = std::make_unique<ipmi::FaultyTransport>(
          *slot->loopback, *config_.faults,
          config_.seed * 131 + static_cast<std::uint64_t>(i) * 31 + 5);
    }

    // Calibrate the slot's idle draw once (used for idle-energy accounting
    // between jobs; simulated time spent here precedes the run's t = 0).
    slot->node->start_metering();
    slot->node->idle_for(util::microseconds(600));
    slot->idle_power_w = slot->node->meter().average_watts();

    ipmi::Transport& link =
        slot->faulty ? static_cast<ipmi::Transport&>(*slot->faulty)
                     : static_cast<ipmi::Transport&>(*slot->loopback);
    bool added = false;
    for (int attempt = 0; attempt < 20 && !added; ++attempt) {
      added = dcm_.add_node(slot->name, link);
    }
    if (config_.trace != nullptr) {
      node_tracks_.push_back(config_.trace->track("sched:" + slot->name));
    } else {
      node_tracks_.push_back(0);
    }
    slots_.push_back(std::move(slot));
  }
}

ClusterScheduler::~ClusterScheduler() = default;

ipmi::FaultyTransport* ClusterScheduler::fault_link(std::size_t i) {
  return i < slots_.size() ? slots_[i]->faulty.get() : nullptr;
}

double ClusterScheduler::idle_power_w(std::size_t i) const {
  return i < slots_.size() ? slots_[i]->idle_power_w : 0.0;
}

double ClusterScheduler::applied_cap_sum(double* reserved_w) const {
  double sum = 0.0;
  double reserved = 0.0;
  for (const auto& slot : slots_) {
    const auto cap = dcm_.node_applied_cap(slot->name);
    if (!cap) continue;
    sum += *cap;
    const auto health = dcm_.node_health(slot->name);
    if (health && *health == core::NodeHealth::kLost) reserved += *cap;
  }
  if (reserved_w != nullptr) *reserved_w = reserved;
  return sum;
}

bool ClusterScheduler::apply_caps(const std::vector<double>& target_w,
                                  const std::vector<bool>& available,
                                  ScheduleResult& result) {
  // Decreases first; increases are withheld until every decrease has
  // landed, so no interleaving of outcomes can push the enforced sum past
  // the plan's (already validated) total.
  bool decreases_ok = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!available[i]) continue;
    const auto old_cap = dcm_.node_applied_cap(slots_[i]->name);
    const bool is_decrease = !old_cap || target_w[i] < *old_cap - kCapEpsW;
    if (!is_decrease) continue;
    if (dcm_.apply_node_cap(slots_[i]->name, target_w[i])) {
      ++result.cap_updates;
      if (config_.registry != nullptr) config_.registry->add(ctr_cap_updates_);
    } else {
      ++result.cap_update_failures;
      decreases_ok = false;
    }
  }
  if (!decreases_ok) return false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!available[i]) continue;
    const auto old_cap = dcm_.node_applied_cap(slots_[i]->name);
    if (old_cap && target_w[i] > *old_cap + kCapEpsW) {
      if (dcm_.apply_node_cap(slots_[i]->name, target_w[i])) {
        ++result.cap_updates;
        if (config_.registry != nullptr) {
          config_.registry->add(ctr_cap_updates_);
        }
      } else {
        ++result.cap_update_failures;
      }
    }
  }
  return true;
}

ScheduleResult ClusterScheduler::run(const std::vector<JobSpec>& stream) {
  ScheduleResult result;
  result.policy = policy_ != nullptr ? policy_->name() : "<none>";
  result.budget_w = config_.budget_w;
  if (policy_ == nullptr || slots_.empty()) return result;
  // Below the enforceable floor no plan can be feasible; refuse the run.
  if (config_.budget_w <
      config_.bmc.min_cap_w * static_cast<double>(slots_.size())) {
    result.infeasible_plans = 1;
    return result;
  }

  std::vector<JobRecord> records(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) records[i].spec = stream[i];

  std::size_t next_arrival = 0;
  std::deque<int> ready;  // indices into records, FIFO
  std::size_t remaining = stream.size();
  double t = 0.0;
  int stalled_rounds = 0;

  while (remaining > 0) {
    // --- next event ---
    double t_next = std::numeric_limits<double>::infinity();
    for (const auto& slot : slots_) {
      if (slot->in_flight) t_next = std::min(t_next, slot->chunk_end_s);
    }
    if (next_arrival < stream.size()) {
      t_next = std::min(t_next, stream[next_arrival].arrival_s);
    }
    if (std::isinf(t_next)) {
      t_next = t;  // queue stalled on a fully parked rack: replan in place
    }
    t = t_next;

    // --- arrivals ---
    while (next_arrival < stream.size() &&
           stream[next_arrival].arrival_s <= t + kTimeEps) {
      ready.push_back(static_cast<int>(next_arrival));
      ++next_arrival;
    }

    // --- chunk completions (slot order: deterministic) ---
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      if (!slot.in_flight || slot.chunk_end_s > t + kTimeEps) continue;
      slot.in_flight = false;
      JobRecord& record = records[static_cast<std::size_t>(slot.job)];
      record.energy_j += slot.last_chunk.energy_j;
      ++record.chunks_done;
      ++result.chunks;
      if (config_.registry != nullptr) config_.registry->add(ctr_chunks_);
      model_.observe(record.spec.cls, slot.cap_at_chunk_start,
                     slot.last_chunk.avg_power_w);
      if (record.done()) {
        record.finish_s = slot.chunk_end_s;
        const double busy_s = record.finish_s - record.start_s;
        record.avg_power_w =
            busy_s > 0.0 ? record.energy_j / busy_s : 0.0;
        if (record.spec.deadline_s &&
            record.finish_s > *record.spec.deadline_s + kTimeEps) {
          record.missed_deadline = true;
          ++result.deadline_misses;
          if (config_.registry != nullptr) config_.registry->add(ctr_misses_);
        }
        if (config_.registry != nullptr) config_.registry->add(ctr_completed_);
        if (config_.trace != nullptr) {
          config_.trace->span(
              node_tracks_[i], "sched", job_class_name(record.spec.cls),
              record.start_s * 1e6, (record.finish_s - record.start_s) * 1e6,
              {telemetry::TraceArg::num("job", record.spec.id),
               telemetry::TraceArg::num("chunks", record.spec.chunks),
               telemetry::TraceArg::num("missed_deadline",
                                        record.missed_deadline ? 1 : 0)});
        }
        slot.job = -1;
        slot.idle_since_s = slot.chunk_end_s;
        --remaining;
      }
    }

    // --- monitoring sweep: health, power history, alerts ---
    dcm_.poll();

    // --- replan ---
    PlanInput input;
    input.budget_w = config_.budget_w;
    input.min_cap_w = config_.bmc.min_cap_w;
    input.max_cap_w = config_.bmc.max_cap_w;
    input.now_s = t;
    input.table = config_.table;
    input.model = &model_;
    std::vector<bool> available(slots_.size(), true);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = *slots_[i];
      NodeView view;
      view.index = i;
      const auto health = dcm_.node_health(slot.name);
      view.available = !health || *health != core::NodeHealth::kLost;
      available[i] = view.available;
      view.busy = slot.job >= 0;
      if (view.busy) {
        const JobRecord& record = records[static_cast<std::size_t>(slot.job)];
        view.cls = record.spec.cls;
        view.remaining_chunks = record.spec.chunks - record.chunks_done;
        view.deadline_s = record.spec.deadline_s;
      }
      view.applied_cap_w = dcm_.node_applied_cap(slot.name);
      input.nodes.push_back(view);
    }
    for (const int job : ready) {
      const JobSpec& spec = records[static_cast<std::size_t>(job)].spec;
      input.queued.push_back({spec.cls, spec.chunks, spec.deadline_s});
    }

    Plan plan = policy_->plan(input);
    plan.cap_w.resize(slots_.size(), config_.bmc.min_cap_w);
    plan.admit.resize(slots_.size(), false);
    double plan_sum = 0.0;
    double reserved = 0.0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!available[i]) {
        reserved +=
            dcm_.node_applied_cap(slots_[i]->name).value_or(config_.bmc.min_cap_w);
        continue;
      }
      plan.cap_w[i] = std::clamp(plan.cap_w[i], config_.bmc.min_cap_w,
                                 config_.bmc.max_cap_w);
      plan_sum += plan.cap_w[i];
    }
    const bool feasible = plan_sum + reserved <= config_.budget_w + kBudgetTolW;
    if (feasible) {
      apply_caps(plan.cap_w, available, result);
    } else {
      ++result.infeasible_plans;  // previous caps stay enforced
    }
    ++result.replans;
    if (config_.registry != nullptr) config_.registry->add(ctr_replans_);

    // --- budget-invariant tick ---
    TickRecord tick;
    tick.t_s = t;
    tick.cap_sum_w = applied_cap_sum(&tick.reserved_w);
    tick.budget_w = config_.budget_w;
    tick.queue_depth = ready.size();
    tick.feasible = feasible;
    if (tick.cap_sum_w > config_.budget_w + kBudgetTolW) {
      ++result.budget_violations;
    }
    result.max_cap_sum_w = std::max(result.max_cap_sum_w, tick.cap_sum_w);
    result.ticks.push_back(tick);
    if (config_.registry != nullptr) {
      config_.registry->set(gauge_cap_sum_, tick.cap_sum_w);
      config_.registry->set(gauge_queue_,
                           static_cast<double>(ready.size()));
    }
    if (config_.trace != nullptr) {
      config_.trace->instant(
          trace_track_, "sched", "replan", t * 1e6,
          {telemetry::TraceArg::str("policy", result.policy),
           telemetry::TraceArg::num("cap_sum_w", tick.cap_sum_w),
           telemetry::TraceArg::num("queue", static_cast<double>(ready.size())),
           telemetry::TraceArg::num("feasible", feasible ? 1 : 0)});
    }

    // --- placement: FIFO onto admitting idle nodes, slot order ---
    auto place = [&](std::size_t i) {
      Slot& slot = *slots_[i];
      const int job = ready.front();
      ready.pop_front();
      slot.job = job;
      JobRecord& record = records[static_cast<std::size_t>(job)];
      record.node = static_cast<int>(i);
      record.start_s = t;
      result.idle_energy_j +=
          slot.idle_power_w * std::max(0.0, t - slot.idle_since_s);
    };
    for (std::size_t i = 0; i < slots_.size() && !ready.empty(); ++i) {
      if (available[i] && slots_[i]->job < 0 && !slots_[i]->in_flight &&
          plan.admit[i]) {
        place(i);
      }
    }
    // A fully parked, fully idle rack must not deadlock the queue: force
    // the head job onto the first reachable idle node.
    const bool anything_running =
        std::any_of(slots_.begin(), slots_.end(), [](const auto& s) {
          return s->in_flight || s->job >= 0;
        });
    if (!anything_running && !ready.empty() && next_arrival >= stream.size()) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (available[i] && slots_[i]->job < 0) {
          place(i);
          ++result.forced_admissions;
          break;
        }
      }
    }

    // --- start chunks ---
    // A chunk is a pure function of its ChunkKey (fresh Node + BMC under
    // the enforced cap, DESIGN.md §12), so starts proceed in three
    // deterministic stages: a serial prepass in slot order classifies each
    // start as memo hit or miss, the misses fan out over the `jobs` pool
    // (the cache is not touched concurrently), and a serial epilogue in
    // slot order records the results. Hit/miss accounting and the schedule
    // are therefore invariant under both `jobs` and `memo`.
    std::vector<std::size_t> starters;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      if (slot.job >= 0 && !slot.in_flight) {
        slot.cap_at_chunk_start = dcm_.node_applied_cap(slot.name);
        starters.push_back(i);
      }
    }
    std::vector<ChunkKey> keys(starters.size());
    std::vector<const ChunkResult*> hits(starters.size(), nullptr);
    for (std::size_t k = 0; k < starters.size(); ++k) {
      const Slot& slot = *slots_[starters[k]];
      const JobRecord& record = records[static_cast<std::size_t>(slot.job)];
      keys[k].cls = record.spec.cls;
      keys[k].identity = chunk_identity(record.spec.cls, record.spec.seed,
                                        record.chunks_done);
      keys[k].cap_bits = ChunkKey::encode_cap(slot.cap_at_chunk_start);
      if (config_.memo) hits[k] = chunk_cache_.find(keys[k]);
      ++(hits[k] != nullptr ? result.memo_hits : result.memo_misses);
    }
    std::vector<ChunkResult> fresh(starters.size());
    util::parallel_for(
        starters.size(), config_.jobs, [&](std::size_t k) {
          if (hits[k] != nullptr) return;
          const Slot& slot = *slots_[starters[k]];
          const JobRecord& record =
              records[static_cast<std::size_t>(slot.job)];
          fresh[k] = simulate_chunk(config_.machine, config_.bmc, keys[k],
                                    record.spec.seed, record.chunks_done,
                                    config_.seed);
        });
    for (std::size_t k = 0; k < starters.size(); ++k) {
      Slot& slot = *slots_[starters[k]];
      slot.last_chunk = hits[k] != nullptr ? *hits[k] : fresh[k];
      if (config_.memo && hits[k] == nullptr) {
        chunk_cache_.insert(keys[k], fresh[k]);
      }
      slot.chunk_end_s = t + util::to_seconds(slot.last_chunk.elapsed);
      slot.in_flight = true;
    }

    // --- stall guard: a wedged rack (every node lost) must terminate ---
    const bool in_flight = !starters.empty() ||
                           std::any_of(slots_.begin(), slots_.end(),
                                       [](const auto& s) { return s->in_flight; });
    if (!in_flight && next_arrival >= stream.size()) {
      if (++stalled_rounds > 2) break;  // stranded jobs keep finish_s = -1
    } else {
      stalled_rounds = 0;
    }
  }

  // --- final accounting ---
  double makespan = 0.0;
  double turnaround = 0.0;
  std::size_t finished = 0;
  for (const JobRecord& record : records) {
    result.busy_energy_j += record.energy_j;
    if (record.finish_s >= 0.0) {
      makespan = std::max(makespan, record.finish_s);
      turnaround += record.finish_s - record.spec.arrival_s;
      ++finished;
    }
  }
  result.makespan_s = makespan;
  result.mean_turnaround_s =
      finished > 0 ? turnaround / static_cast<double>(finished) : 0.0;
  for (const auto& slot : slots_) {
    if (slot->job < 0) {
      result.idle_energy_j +=
          slot->idle_power_w * std::max(0.0, makespan - slot->idle_since_s);
    }
  }
  result.total_energy_j = result.busy_energy_j + result.idle_energy_j;
  for (const auto& slot : slots_) {
    if (const core::ManagedNode* node = dcm_.node(slot->name)) {
      result.mgmt_retries += node->retries();
      result.mgmt_failed_exchanges += node->failed_exchanges();
    }
  }
  result.jobs = std::move(records);
  return result;
}

}  // namespace pcap::sched
