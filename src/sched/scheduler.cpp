#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace pcap::sched {

namespace {

constexpr double kTimeEps = 1e-12;   // event-time comparison slack (seconds)
constexpr double kCapEpsW = 1e-6;    // caps differing by less are "equal"
constexpr double kBudgetTolW = 1e-3; // invariant tolerance

}  // namespace

struct ClusterScheduler::Slot {
  std::string name;
  std::unique_ptr<sim::Node> node;
  std::unique_ptr<core::Bmc> bmc;
  std::unique_ptr<core::BmcIpmiServer> server;
  std::unique_ptr<ipmi::LoopbackTransport> loopback;
  std::unique_ptr<ipmi::FaultyTransport> faulty;

  /// One schedulable lane (DESIGN.md §13). Lanes share the node's
  /// management plane and its package-level cap; execution state is per
  /// lane. A one-lane slot is exactly the pre-lane scheduler's slot.
  struct Lane {
    int job = -1;               // index into the run's JobRecord vector
    bool in_flight = false;     // a chunk is executing
    double chunk_end_s = 0.0;
    std::optional<double> cap_at_chunk_start;
    ChunkResult last_chunk;
    /// Classes co-resident when the in-flight chunk started (frozen
    /// interference context; empty == ran solo).
    std::vector<JobClass> corun_classes;
  };

  double idle_power_w = 101.0;
  std::vector<Lane> lanes;
  double idle_since_s = 0.0;  // when the slot last went fully idle

  bool occupied() const {
    return std::any_of(lanes.begin(), lanes.end(),
                       [](const Lane& l) { return l.job >= 0; });
  }
};

ClusterScheduler::ClusterScheduler(const SchedulerConfig& config)
    : config_(config),
      policy_(make_policy(config.policy_name)),
      model_(config.power_model),
      dcm_(config.dcm) {
  config_.lanes_per_node = std::max<std::size_t>(1, config_.lanes_per_node);
  model_.set_table(config_.table);
  if (config_.trace != nullptr) {
    dcm_.set_telemetry(config_.trace);
    trace_track_ = config_.trace->track("sched");
  }
  if (config_.registry != nullptr) {
    ctr_replans_ = config_.registry->counter("sched.replans");
    ctr_chunks_ = config_.registry->counter("sched.chunks");
    ctr_completed_ = config_.registry->counter("sched.jobs_completed");
    ctr_misses_ = config_.registry->counter("sched.deadline_misses");
    ctr_cap_updates_ = config_.registry->counter("sched.cap_updates");
    gauge_cap_sum_ = config_.registry->gauge("sched.cap_sum_w");
    gauge_queue_ = config_.registry->gauge("sched.queue_depth");
  }

  slots_.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->name = "node-" + std::to_string(i);
    slot->lanes.resize(config_.lanes_per_node);
    slot->node = std::make_unique<sim::Node>(
        config_.machine, config_.seed + static_cast<std::uint64_t>(i) + 1);
    slot->bmc = std::make_unique<core::Bmc>(*slot->node, config_.bmc);
    slot->server = std::make_unique<core::BmcIpmiServer>(*slot->bmc);
    slot->node->set_control_hook([bmc = slot->bmc.get()](
                                     sim::PlatformControl&) {
      bmc->on_control_tick();
    });
    slot->loopback = std::make_unique<ipmi::LoopbackTransport>(
        [srv = slot->server.get()](std::span<const std::uint8_t> frame) {
          return srv->handle_frame(frame);
        });
    if (config_.faults) {
      slot->faulty = std::make_unique<ipmi::FaultyTransport>(
          *slot->loopback, *config_.faults,
          config_.seed * 131 + static_cast<std::uint64_t>(i) * 31 + 5);
    }

    // Calibrate the slot's idle draw once (used for idle-energy accounting
    // between jobs; simulated time spent here precedes the run's t = 0).
    slot->node->start_metering();
    slot->node->idle_for(util::microseconds(600));
    slot->idle_power_w = slot->node->meter().average_watts();

    ipmi::Transport& link =
        slot->faulty ? static_cast<ipmi::Transport&>(*slot->faulty)
                     : static_cast<ipmi::Transport&>(*slot->loopback);
    bool added = false;
    for (int attempt = 0; attempt < 20 && !added; ++attempt) {
      added = dcm_.add_node(slot->name, link);
    }
    if (config_.trace != nullptr) {
      node_tracks_.push_back(config_.trace->track("sched:" + slot->name));
    } else {
      node_tracks_.push_back(0);
    }
    slots_.push_back(std::move(slot));
  }
}

ClusterScheduler::~ClusterScheduler() = default;

ipmi::FaultyTransport* ClusterScheduler::fault_link(std::size_t i) {
  return i < slots_.size() ? slots_[i]->faulty.get() : nullptr;
}

double ClusterScheduler::idle_power_w(std::size_t i) const {
  return i < slots_.size() ? slots_[i]->idle_power_w : 0.0;
}

double ClusterScheduler::applied_cap_sum(double* reserved_w) const {
  double sum = 0.0;
  double reserved = 0.0;
  for (const auto& slot : slots_) {
    const auto cap = dcm_.node_applied_cap(slot->name);
    if (!cap) continue;
    sum += *cap;
    const auto health = dcm_.node_health(slot->name);
    if (health && *health == core::NodeHealth::kLost) reserved += *cap;
  }
  if (reserved_w != nullptr) *reserved_w = reserved;
  return sum;
}

bool ClusterScheduler::apply_caps(const std::vector<double>& target_w,
                                  const std::vector<bool>& available,
                                  ScheduleResult& result) {
  // Decreases first; increases are withheld until every decrease has
  // landed, so no interleaving of outcomes can push the enforced sum past
  // the plan's (already validated) total.
  bool decreases_ok = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!available[i]) continue;
    const auto old_cap = dcm_.node_applied_cap(slots_[i]->name);
    const bool is_decrease = !old_cap || target_w[i] < *old_cap - kCapEpsW;
    if (!is_decrease) continue;
    if (dcm_.apply_node_cap(slots_[i]->name, target_w[i])) {
      ++result.cap_updates;
      if (config_.registry != nullptr) config_.registry->add(ctr_cap_updates_);
    } else {
      ++result.cap_update_failures;
      decreases_ok = false;
    }
  }
  if (!decreases_ok) return false;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!available[i]) continue;
    const auto old_cap = dcm_.node_applied_cap(slots_[i]->name);
    if (old_cap && target_w[i] > *old_cap + kCapEpsW) {
      if (dcm_.apply_node_cap(slots_[i]->name, target_w[i])) {
        ++result.cap_updates;
        if (config_.registry != nullptr) {
          config_.registry->add(ctr_cap_updates_);
        }
      } else {
        ++result.cap_update_failures;
      }
    }
  }
  return true;
}

ScheduleResult ClusterScheduler::run(const std::vector<JobSpec>& stream) {
  ScheduleResult result;
  result.policy = policy_ != nullptr ? policy_->name() : "<none>";
  result.budget_w = config_.budget_w;
  if (policy_ == nullptr || slots_.empty()) return result;
  // Below the enforceable floor no plan can be feasible; refuse the run.
  if (config_.budget_w <
      config_.bmc.min_cap_w * static_cast<double>(slots_.size())) {
    result.infeasible_plans = 1;
    return result;
  }

  std::vector<JobRecord> records(stream.size());
  for (std::size_t i = 0; i < stream.size(); ++i) records[i].spec = stream[i];

  const std::size_t lanes_per_node = config_.lanes_per_node;
  std::size_t next_arrival = 0;
  std::deque<int> ready;  // indices into records, FIFO
  std::size_t remaining = stream.size();
  double t = 0.0;
  int stalled_rounds = 0;

  // Predicted solo elapsed for one chunk of `cls` at `cap` — the
  // denominator of a CoRunObservation's slowdown sample (0 == no curve).
  auto predicted_solo_s = [&](JobClass cls, std::optional<double> cap_w) {
    const ClassCurve* curve =
        config_.table != nullptr ? config_.table->curve(cls) : nullptr;
    if (curve == nullptr || curve->baseline_time_s <= 0.0) return 0.0;
    const double slowdown =
        cap_w && *cap_w > 0.0 ? curve->slowdown_at(*cap_w) : 1.0;
    return curve->baseline_time_s * slowdown;
  };

  while (remaining > 0) {
    // --- next event ---
    double t_next = std::numeric_limits<double>::infinity();
    for (const auto& slot : slots_) {
      for (const Slot::Lane& lane : slot->lanes) {
        if (lane.in_flight) t_next = std::min(t_next, lane.chunk_end_s);
      }
    }
    if (next_arrival < stream.size()) {
      t_next = std::min(t_next, stream[next_arrival].arrival_s);
    }
    if (std::isinf(t_next)) {
      t_next = t;  // queue stalled on a fully parked rack: replan in place
    }
    t = t_next;

    // --- arrivals ---
    while (next_arrival < stream.size() &&
           stream[next_arrival].arrival_s <= t + kTimeEps) {
      ready.push_back(static_cast<int>(next_arrival));
      ++next_arrival;
    }

    // --- chunk completions ((slot, lane) order: deterministic) ---
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      for (std::size_t l = 0; l < slot.lanes.size(); ++l) {
        Slot::Lane& lane = slot.lanes[l];
        if (!lane.in_flight || lane.chunk_end_s > t + kTimeEps) continue;
        lane.in_flight = false;
        JobRecord& record = records[static_cast<std::size_t>(lane.job)];
        record.energy_j += lane.last_chunk.energy_j;
        ++record.chunks_done;
        ++result.chunks;
        if (config_.registry != nullptr) config_.registry->add(ctr_chunks_);
        if (lane.corun_classes.empty()) {
          // Only solo chunks feed the power model: a co-run share is an
          // attribution of the package draw, not a node draw.
          model_.observe(record.spec.cls, lane.cap_at_chunk_start,
                         lane.last_chunk.avg_power_w);
        } else {
          ++record.corun_chunks;
        }
        // Every completion feeds the policy's contention learning; solo
        // chunks arrive with an empty co_resident list.
        CoRunObservation obs;
        obs.cls = record.spec.cls;
        obs.co_resident = lane.corun_classes;
        obs.cap_w = lane.cap_at_chunk_start;
        obs.elapsed_s = util::to_seconds(lane.last_chunk.elapsed);
        obs.predicted_solo_s =
            predicted_solo_s(record.spec.cls, lane.cap_at_chunk_start);
        policy_->observe_corun(obs);
        if (record.done()) {
          record.finish_s = lane.chunk_end_s;
          const double busy_s = record.finish_s - record.start_s;
          record.avg_power_w =
              busy_s > 0.0 ? record.energy_j / busy_s : 0.0;
          if (record.spec.deadline_s &&
              record.finish_s > *record.spec.deadline_s + kTimeEps) {
            record.missed_deadline = true;
            ++result.deadline_misses;
            if (config_.registry != nullptr) {
              config_.registry->add(ctr_misses_);
            }
          }
          if (config_.registry != nullptr) {
            config_.registry->add(ctr_completed_);
          }
          if (config_.trace != nullptr) {
            config_.trace->span(
                node_tracks_[i], "sched", job_class_name(record.spec.cls),
                record.start_s * 1e6,
                (record.finish_s - record.start_s) * 1e6,
                {telemetry::TraceArg::num("job", record.spec.id),
                 telemetry::TraceArg::num("chunks", record.spec.chunks),
                 telemetry::TraceArg::num("lane",
                                          static_cast<double>(l)),
                 telemetry::TraceArg::num("corun_chunks",
                                          record.corun_chunks),
                 telemetry::TraceArg::num("missed_deadline",
                                          record.missed_deadline ? 1 : 0)});
          }
          lane.job = -1;
          if (!slot.occupied()) slot.idle_since_s = lane.chunk_end_s;
          --remaining;
        }
      }
    }

    // --- monitoring sweep: health, power history, alerts ---
    dcm_.poll();

    // --- replan ---
    PlanInput input;
    input.budget_w = config_.budget_w;
    input.min_cap_w = config_.bmc.min_cap_w;
    input.max_cap_w = config_.bmc.max_cap_w;
    input.now_s = t;
    input.lanes_per_node = lanes_per_node;
    input.table = config_.table;
    input.model = &model_;
    std::vector<bool> available(slots_.size(), true);
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const Slot& slot = *slots_[i];
      NodeView view;
      view.index = i;
      const auto health = dcm_.node_health(slot.name);
      view.available = !health || *health != core::NodeHealth::kLost;
      available[i] = view.available;
      view.lanes.reserve(slot.lanes.size());
      for (std::size_t l = 0; l < slot.lanes.size(); ++l) {
        const Slot::Lane& lane = slot.lanes[l];
        LaneView lane_view;
        lane_view.lane = l;
        lane_view.busy = lane.job >= 0;
        if (lane_view.busy) {
          const JobRecord& record =
              records[static_cast<std::size_t>(lane.job)];
          lane_view.cls = record.spec.cls;
          lane_view.remaining_chunks =
              record.spec.chunks - record.chunks_done;
          lane_view.deadline_s = record.spec.deadline_s;
          // Aggregates for lane-blind policies: first busy lane's class,
          // lane-max remaining work, earliest deadline.
          if (!view.busy) {
            view.busy = true;
            view.cls = lane_view.cls;
          }
          view.remaining_chunks =
              std::max(view.remaining_chunks, lane_view.remaining_chunks);
          if (lane_view.deadline_s &&
              (!view.deadline_s || *lane_view.deadline_s < *view.deadline_s)) {
            view.deadline_s = lane_view.deadline_s;
          }
        }
        view.lanes.push_back(std::move(lane_view));
      }
      view.applied_cap_w = dcm_.node_applied_cap(slot.name);
      input.nodes.push_back(std::move(view));
    }
    for (const int job : ready) {
      const JobSpec& spec = records[static_cast<std::size_t>(job)].spec;
      input.queued.push_back({spec.cls, spec.chunks, spec.deadline_s});
    }

    Plan plan = policy_->plan(input);
    plan.cap_w.resize(slots_.size(), config_.bmc.min_cap_w);
    plan.admit.resize(slots_.size(), false);
    double plan_sum = 0.0;
    double reserved = 0.0;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (!available[i]) {
        reserved +=
            dcm_.node_applied_cap(slots_[i]->name).value_or(config_.bmc.min_cap_w);
        continue;
      }
      plan.cap_w[i] = std::clamp(plan.cap_w[i], config_.bmc.min_cap_w,
                                 config_.bmc.max_cap_w);
      plan_sum += plan.cap_w[i];
    }
    const bool feasible = plan_sum + reserved <= config_.budget_w + kBudgetTolW;
    if (feasible) {
      apply_caps(plan.cap_w, available, result);
    } else {
      ++result.infeasible_plans;  // previous caps stay enforced
    }
    ++result.replans;
    if (config_.registry != nullptr) config_.registry->add(ctr_replans_);

    // --- budget-invariant tick ---
    TickRecord tick;
    tick.t_s = t;
    tick.cap_sum_w = applied_cap_sum(&tick.reserved_w);
    tick.budget_w = config_.budget_w;
    tick.queue_depth = ready.size();
    tick.feasible = feasible;
    if (tick.cap_sum_w > config_.budget_w + kBudgetTolW) {
      ++result.budget_violations;
    }
    result.max_cap_sum_w = std::max(result.max_cap_sum_w, tick.cap_sum_w);
    result.ticks.push_back(tick);
    if (config_.registry != nullptr) {
      config_.registry->set(gauge_cap_sum_, tick.cap_sum_w);
      config_.registry->set(gauge_queue_,
                           static_cast<double>(ready.size()));
    }
    if (config_.trace != nullptr) {
      config_.trace->instant(
          trace_track_, "sched", "replan", t * 1e6,
          {telemetry::TraceArg::str("policy", result.policy),
           telemetry::TraceArg::num("cap_sum_w", tick.cap_sum_w),
           telemetry::TraceArg::num("queue", static_cast<double>(ready.size())),
           telemetry::TraceArg::num("feasible", feasible ? 1 : 0)});
    }

    // --- placement ---
    // Policy placements first (entries naming a lane that is not idle,
    // admitted and reachable fall back to FIFO), then the default FIFO
    // fill in lane-major order: lane 0 of every node before lane 1 of any,
    // so co-runs only happen once every node is carrying work — and a
    // one-lane rack reduces to the classic slot-order fill.
    auto lane_free = [&](std::size_t i, std::size_t l) {
      return available[i] && plan.admit[i] &&
             slots_[i]->lanes[l].job < 0 && !slots_[i]->lanes[l].in_flight;
    };
    auto place = [&](std::size_t i, std::size_t l, int job) {
      Slot& slot = *slots_[i];
      JobRecord& record = records[static_cast<std::size_t>(job)];
      if (!slot.occupied()) {
        result.idle_energy_j +=
            slot.idle_power_w * std::max(0.0, t - slot.idle_since_s);
      }
      slot.lanes[l].job = job;
      record.node = static_cast<int>(i);
      record.lane = static_cast<int>(l);
      record.start_s = t;
    };
    {
      std::vector<int> queue(ready.begin(), ready.end());
      std::vector<bool> taken(queue.size(), false);
      for (std::size_t q = 0;
           q < plan.placement.size() && q < queue.size(); ++q) {
        const int flat = plan.placement[q];
        if (flat < 0) continue;
        const std::size_t i =
            static_cast<std::size_t>(flat) / lanes_per_node;
        const std::size_t l =
            static_cast<std::size_t>(flat) % lanes_per_node;
        if (i >= slots_.size() || !lane_free(i, l)) continue;
        place(i, l, queue[q]);
        taken[q] = true;
      }
      std::size_t next_q = 0;
      for (std::size_t l = 0; l < lanes_per_node; ++l) {
        for (std::size_t i = 0; i < slots_.size(); ++i) {
          while (next_q < queue.size() && taken[next_q]) ++next_q;
          if (next_q >= queue.size()) break;
          if (!lane_free(i, l)) continue;
          place(i, l, queue[next_q]);
          taken[next_q] = true;
        }
      }
      ready.clear();
      for (std::size_t q = 0; q < queue.size(); ++q) {
        if (!taken[q]) ready.push_back(queue[q]);
      }
    }
    // A fully parked, fully idle rack must not deadlock the queue: force
    // the head job onto the first reachable idle node.
    const bool anything_running =
        std::any_of(slots_.begin(), slots_.end(), [](const auto& s) {
          return s->occupied();
        });
    if (!anything_running && !ready.empty() && next_arrival >= stream.size()) {
      for (std::size_t i = 0; i < slots_.size(); ++i) {
        if (available[i] && slots_[i]->lanes[0].job < 0) {
          const int job = ready.front();
          ready.pop_front();
          place(i, 0, job);
          ++result.forced_admissions;
          break;
        }
      }
    }

    // --- start chunks ---
    // A solo chunk is a pure function of its ChunkKey and a co-resident
    // chunk of its co-run CellKey (fresh Node / SmpNode + BMC under the
    // enforced cap, DESIGN.md §12-§13), so starts proceed in three
    // deterministic stages: a serial prepass in (slot, lane) order
    // classifies each start as solo or co-run and as memo hit or miss
    // (identical cells within a round are deduplicated), the misses fan
    // out over the `jobs` pool (the cache is not touched concurrently),
    // and a serial epilogue in the same order records the results.
    // Hit/miss accounting and the schedule are therefore invariant under
    // both `jobs` and `memo`.
    struct Starter {
      std::size_t slot = 0;
      std::size_t lane = 0;
      bool corun = false;
      ChunkKey key;                 // solo
      const ChunkResult* hit = nullptr;
      std::size_t cell = 0;         // index into cells (corun)
      std::size_t member = 0;       // own position in the cell's members
    };
    struct CellWork {
      CoRunKey key;
      const std::vector<ChunkResult>* hit = nullptr;
      std::vector<ChunkResult> fresh;
    };
    std::vector<Starter> starters;
    std::vector<CellWork> cells;
    std::unordered_map<CoRunKey, std::size_t, CoRunKeyHash> cell_index;
    auto current_member = [&](const Slot::Lane& lane) {
      const JobRecord& record = records[static_cast<std::size_t>(lane.job)];
      CoRunMember member;
      member.cls = record.spec.cls;
      member.identity = chunk_identity(record.spec.cls, record.spec.seed,
                                       record.chunks_done);
      member.seed = record.spec.seed;
      member.chunk_index = record.chunks_done;
      return member;
    };
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = *slots_[i];
      for (std::size_t l = 0; l < slot.lanes.size(); ++l) {
        Slot::Lane& lane = slot.lanes[l];
        if (lane.job < 0 || lane.in_flight) continue;
        lane.cap_at_chunk_start = dcm_.node_applied_cap(slot.name);
        lane.corun_classes.clear();
        Starter starter;
        starter.slot = i;
        starter.lane = l;
        const CoRunMember self = current_member(lane);
        std::vector<CoRunMember> members{self};
        for (std::size_t o = 0; o < slot.lanes.size(); ++o) {
          if (o == l || slot.lanes[o].job < 0) continue;
          members.push_back(current_member(slot.lanes[o]));
          lane.corun_classes.push_back(members.back().cls);
        }
        if (members.size() == 1) {
          // Solo: the pre-lane path, bit-identical at lanes_per_node = 1.
          starter.key.cls = self.cls;
          starter.key.identity = self.identity;
          starter.key.cap_bits =
              ChunkKey::encode_cap(lane.cap_at_chunk_start);
          if (config_.memo) starter.hit = chunk_cache_.find(starter.key);
          ++(starter.hit != nullptr ? result.memo_hits
                                    : result.memo_misses);
        } else {
          starter.corun = true;
          std::sort(members.begin(), members.end(),
                    [](const CoRunMember& a, const CoRunMember& b) {
                      return key_less(a, b);
                    });
          CoRunKey key;
          key.cap_bits = ChunkKey::encode_cap(lane.cap_at_chunk_start);
          key.members = std::move(members);
          // Own result = first occurrence of own (cls, identity) in the
          // sorted member list (duplicates are interchangeable: the cell
          // is a pure function of the key).
          for (std::size_t m = 0; m < key.members.size(); ++m) {
            if (same_key(key.members[m], self)) {
              starter.member = m;
              break;
            }
          }
          const auto found = cell_index.find(key);
          if (found != cell_index.end()) {
            starter.cell = found->second;
          } else {
            starter.cell = cells.size();
            cell_index.emplace(key, cells.size());
            CellWork work;
            if (config_.memo) work.hit = chunk_cache_.find_cell(key);
            work.key = std::move(key);
            cells.push_back(std::move(work));
          }
          ++(cells[starter.cell].hit != nullptr ? result.memo_hits
                                                : result.memo_misses);
          ++result.corun_chunks;
        }
        starters.push_back(std::move(starter));
      }
    }
    std::vector<ChunkResult> fresh(starters.size());
    util::parallel_for(
        starters.size(), config_.jobs, [&](std::size_t k) {
          const Starter& starter = starters[k];
          if (starter.corun || starter.hit != nullptr) return;
          const Slot& slot = *slots_[starter.slot];
          const Slot::Lane& lane = slot.lanes[starter.lane];
          const JobRecord& record =
              records[static_cast<std::size_t>(lane.job)];
          fresh[k] = simulate_chunk(config_.machine, config_.bmc,
                                    starter.key, record.spec.seed,
                                    record.chunks_done, config_.seed);
        });
    util::parallel_for(
        cells.size(), config_.jobs, [&](std::size_t c) {
          if (cells[c].hit != nullptr) return;
          cells[c].fresh =
              simulate_corun_cell(config_.machine, config_.bmc,
                                  cells[c].key, config_.seed,
                                  config_.corun_quantum);
        });
    result.corun_cells += static_cast<std::uint64_t>(std::count_if(
        cells.begin(), cells.end(),
        [](const CellWork& c) { return c.hit == nullptr; }));
    for (std::size_t k = 0; k < starters.size(); ++k) {
      const Starter& starter = starters[k];
      Slot::Lane& lane = slots_[starter.slot]->lanes[starter.lane];
      if (!starter.corun) {
        lane.last_chunk = starter.hit != nullptr ? *starter.hit : fresh[k];
        if (config_.memo && starter.hit == nullptr) {
          chunk_cache_.insert(starter.key, fresh[k]);
        }
      } else {
        const CellWork& cell = cells[starter.cell];
        const std::vector<ChunkResult>& results =
            cell.hit != nullptr ? *cell.hit : cell.fresh;
        lane.last_chunk = results[starter.member];
      }
      lane.chunk_end_s = t + util::to_seconds(lane.last_chunk.elapsed);
      lane.in_flight = true;
    }
    if (config_.memo) {
      for (CellWork& cell : cells) {
        if (cell.hit == nullptr) {
          chunk_cache_.insert_cell(cell.key, std::move(cell.fresh));
        }
      }
    }

    // --- stall guard: a wedged rack (every node lost) must terminate ---
    const bool in_flight =
        !starters.empty() ||
        std::any_of(slots_.begin(), slots_.end(), [](const auto& s) {
          return std::any_of(
              s->lanes.begin(), s->lanes.end(),
              [](const Slot::Lane& l) { return l.in_flight; });
        });
    if (!in_flight && next_arrival >= stream.size()) {
      if (++stalled_rounds > 2) break;  // stranded jobs keep finish_s = -1
    } else {
      stalled_rounds = 0;
    }
  }

  // --- final accounting ---
  double makespan = 0.0;
  double turnaround = 0.0;
  std::size_t finished = 0;
  for (const JobRecord& record : records) {
    result.busy_energy_j += record.energy_j;
    if (record.finish_s >= 0.0) {
      makespan = std::max(makespan, record.finish_s);
      turnaround += record.finish_s - record.spec.arrival_s;
      ++finished;
    }
  }
  result.makespan_s = makespan;
  result.mean_turnaround_s =
      finished > 0 ? turnaround / static_cast<double>(finished) : 0.0;
  for (const auto& slot : slots_) {
    if (!slot->occupied()) {
      result.idle_energy_j +=
          slot->idle_power_w * std::max(0.0, makespan - slot->idle_since_s);
    }
  }
  result.total_energy_j = result.busy_energy_j + result.idle_energy_j;
  for (const auto& slot : slots_) {
    if (const core::ManagedNode* node = dcm_.node(slot->name)) {
      result.mgmt_retries += node->retries();
      result.mgmt_failed_exchanges += node->failed_exchanges();
    }
  }
  result.jobs = std::move(records);
  return result;
}

}  // namespace pcap::sched
