#include "sched/chunk_cache.hpp"

#include "sim/node.hpp"
#include "sim/smp_node.hpp"
#include "util/rng.hpp"

namespace pcap::sched {

std::uint64_t chunk_identity(JobClass cls, std::uint64_t seed,
                             int chunk_index) {
  // Mirror of make_chunk_workload: only the phased class consumes the
  // mixed chunk seed; every other class builds the same workload for any
  // (seed, chunk_index).
  if (cls != JobClass::kPhased) return 0;
  std::uint64_t sm = seed + 0x9E37u * static_cast<std::uint64_t>(chunk_index);
  return util::splitmix64(sm);
}

ChunkResult simulate_chunk(const sim::MachineConfig& machine,
                           const core::BmcConfig& bmc_config,
                           const ChunkKey& key, std::uint64_t seed,
                           int chunk_index,
                           std::uint64_t node_seed_material) {
  // The node seed depends on the scheduler's seed only — never the slot
  // (two slots running the same key must produce the same result, or a
  // memo hit would not be a replay) and never the key (a cap that does not
  // bite must leave the chunk bit-identical to an uncapped one, so e.g.
  // every policy degenerates to the same schedule at a generous budget).
  std::uint64_t sm = node_seed_material;
  const std::uint64_t node_seed = util::splitmix64(sm);
  sim::Node node(machine, node_seed);
  core::Bmc bmc(node, bmc_config);
  node.set_control_hook(
      [&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  const double cap_w = std::bit_cast<double>(key.cap_bits);
  if (cap_w > 0.0) bmc.set_cap(cap_w);

  // Deterministic warm start: a job keeps its slot between chunks, so
  // chunk i re-enters with the working set chunk i-1 left in the caches
  // and the BMC's control loop already settled on the cap. The pure chunk
  // is therefore the steady-state one — run the workload once untimed to
  // warm caches, TLBs and the control state, then measure.
  const auto workload = make_chunk_workload(key.cls, seed, chunk_index);
  (void)node.run(*workload);
  const sim::RunReport report = node.run(*workload);
  return ChunkResult{report.elapsed, report.energy_j, report.avg_power_w};
}

std::vector<ChunkResult> simulate_corun_cell(
    const sim::MachineConfig& machine, const core::BmcConfig& bmc_config,
    const CoRunKey& key, std::uint64_t node_seed_material,
    util::Picoseconds quantum) {
  // Same seeding contract as the solo path: the node seed depends on the
  // scheduler's seed only — never the slot, never the key — so identical
  // cells replay bit-exactly wherever they land and a cap that does not
  // bite leaves the cell identical to an uncapped one.
  std::uint64_t sm = node_seed_material;
  const std::uint64_t node_seed = util::splitmix64(sm);

  sim::SmpConfig config;
  config.machine = machine;
  config.cores = static_cast<int>(key.members.size());
  config.quantum = quantum;
  config.engine = sim::SmpEngine::kCooperative;
  sim::SmpNode node(config, node_seed);
  core::Bmc bmc(node, bmc_config);
  node.set_control_hook(
      [&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  const double cap_w = std::bit_cast<double>(key.cap_bits);
  if (cap_w > 0.0) bmc.set_cap(cap_w);

  // Each member gets its OWN workload instance (SmpNode rejects duplicate
  // pointers) even when two members share an identity. Warm start mirrors
  // the solo path: one untimed co-run settles caches, TLBs and the BMC
  // ladder, then the second co-run is the measured cell — so the cell is
  // the steady-state one, with the neighbours' interference baked into the
  // warm state too.
  std::vector<std::unique_ptr<sim::Workload>> workloads;
  std::vector<sim::Workload*> raw;
  workloads.reserve(key.members.size());
  raw.reserve(key.members.size());
  for (const CoRunMember& member : key.members) {
    workloads.push_back(
        make_chunk_workload(member.cls, member.seed, member.chunk_index));
    raw.push_back(workloads.back().get());
  }
  (void)node.run(raw);
  const sim::SmpRunReport report = node.run(raw);

  std::vector<ChunkResult> results(key.members.size());
  for (std::size_t i = 0; i < key.members.size(); ++i) {
    const sim::SmpCoreReport& core_report = report.cores[i];
    const double elapsed_s = util::to_seconds(core_report.elapsed);
    results[i].elapsed = core_report.elapsed;
    results[i].energy_j = core_report.energy_share_j;
    results[i].avg_power_w =
        elapsed_s > 0.0 ? core_report.energy_share_j / elapsed_s : 0.0;
  }
  return results;
}

}  // namespace pcap::sched
