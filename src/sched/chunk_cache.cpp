#include "sched/chunk_cache.hpp"

#include "sim/node.hpp"
#include "util/rng.hpp"

namespace pcap::sched {

std::uint64_t chunk_identity(JobClass cls, std::uint64_t seed,
                             int chunk_index) {
  // Mirror of make_chunk_workload: only the phased class consumes the
  // mixed chunk seed; every other class builds the same workload for any
  // (seed, chunk_index).
  if (cls != JobClass::kPhased) return 0;
  std::uint64_t sm = seed + 0x9E37u * static_cast<std::uint64_t>(chunk_index);
  return util::splitmix64(sm);
}

ChunkResult simulate_chunk(const sim::MachineConfig& machine,
                           const core::BmcConfig& bmc_config,
                           const ChunkKey& key, std::uint64_t seed,
                           int chunk_index,
                           std::uint64_t node_seed_material) {
  // The node seed depends on the scheduler's seed only — never the slot
  // (two slots running the same key must produce the same result, or a
  // memo hit would not be a replay) and never the key (a cap that does not
  // bite must leave the chunk bit-identical to an uncapped one, so e.g.
  // every policy degenerates to the same schedule at a generous budget).
  std::uint64_t sm = node_seed_material;
  const std::uint64_t node_seed = util::splitmix64(sm);
  sim::Node node(machine, node_seed);
  core::Bmc bmc(node, bmc_config);
  node.set_control_hook(
      [&bmc](sim::PlatformControl&) { bmc.on_control_tick(); });
  const double cap_w = std::bit_cast<double>(key.cap_bits);
  if (cap_w > 0.0) bmc.set_cap(cap_w);

  // Deterministic warm start: a job keeps its slot between chunks, so
  // chunk i re-enters with the working set chunk i-1 left in the caches
  // and the BMC's control loop already settled on the cap. The pure chunk
  // is therefore the steady-state one — run the workload once untimed to
  // warm caches, TLBs and the control state, then measure.
  const auto workload = make_chunk_workload(key.cls, seed, chunk_index);
  (void)node.run(*workload);
  const sim::RunReport report = node.run(*workload);
  return ChunkResult{report.elapsed, report.energy_j, report.avg_power_w};
}

}  // namespace pcap::sched
