// Online per-job-class power model.
//
// The scheduler cannot ask a job how many watts it will draw; it learns.
// Every completed chunk contributes one telemetry sample (the node's
// measured average power over the chunk, and the cap it ran under). Samples
// taken with comfortable cap headroom update an exponentially-weighted
// estimate of the class's *uncapped* draw; capped samples are ignored for
// that estimate (they measure the cap, not the demand) but still count as
// observations. Until a class has samples, predictions fall back to the
// amenability table's measured baseline, then to a conservative default —
// so admission control is safe from the first tick.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "sched/amenability_table.hpp"
#include "sched/job.hpp"

namespace pcap::sched {

class OnlinePowerModel {
 public:
  struct Config {
    /// EW-average smoothing factor for new uncapped samples.
    double alpha = 0.25;
    /// A sample counts as "uncapped" when the cap exceeded the observation
    /// by at least this headroom (the cap was not the binding constraint).
    double headroom_w = 4.0;
    /// Prediction when neither samples nor a table entry exist.
    double default_uncapped_w = 170.0;
  };

  OnlinePowerModel() = default;
  explicit OnlinePowerModel(const Config& config) : config_(config) {}

  /// Prior source for classes with no samples yet (may be null).
  void set_table(const AmenabilityTable* table) { table_ = table; }

  /// Feeds one chunk observation: measured average watts under `cap_w`
  /// (nullopt == the node ran uncapped).
  void observe(JobClass cls, std::optional<double> cap_w, double watts);

  /// Predicted uncapped draw for the class.
  double predict_uncapped_w(JobClass cls) const;
  /// Predicted draw under `cap_w`: the amenability curve's measured power
  /// when available, else min(uncapped prediction, cap).
  double predict_at_cap_w(JobClass cls, double cap_w) const;

  std::uint64_t samples(JobClass cls) const {
    return stats_[static_cast<std::size_t>(cls)].samples;
  }
  std::uint64_t uncapped_samples(JobClass cls) const {
    return stats_[static_cast<std::size_t>(cls)].uncapped_samples;
  }

 private:
  struct ClassStats {
    double uncapped_w = 0.0;
    std::uint64_t samples = 0;
    std::uint64_t uncapped_samples = 0;
  };

  Config config_{};
  const AmenabilityTable* table_ = nullptr;
  std::array<ClassStats, kJobClassCount> stats_{};
};

}  // namespace pcap::sched
