// Machine-readable amenability characterisation for the scheduler.
//
// The single-node reproduction measures slowdown-vs-cap curves with
// core::AmenabilityAnalyzer; this table is their exported, per-job-class
// form: a piecewise-linear slowdown curve, the measured wall power at each
// cap, and the derived usable-cap floor. Tables serialize to JSON (via
// util/json.hpp) so a site can characterise once, persist the result, and
// feed every subsequent scheduling run from the file — there are no
// hard-coded slowdown tables anywhere in src/sched/.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "core/amenability.hpp"
#include "sched/job.hpp"
#include "sim/machine_config.hpp"
#include "util/json.hpp"

namespace pcap::sched {

struct ClassCurve {
  JobClass cls = JobClass::kSireLike;
  double baseline_power_w = 0.0;  // uncapped draw while running this class
  double baseline_time_s = 0.0;   // uncapped time of one chunk
  double usable_floor_w = 0.0;    // lowest cap within the slowdown tolerance
  std::vector<core::AmenabilityPoint> points;  // sorted by cap_w ascending

  /// Piecewise-linear slowdown at `cap_w`, clamped at the curve's ends
  /// (above the top cap the workload is effectively uncapped: 1.0).
  double slowdown_at(double cap_w) const;
  /// Measured wall power at `cap_w` (same interpolation).
  double power_at(double cap_w) const;
};

class AmenabilityTable {
 public:
  void set_curve(ClassCurve curve);
  const ClassCurve* curve(JobClass cls) const;
  bool complete() const;  // every job class has a curve
  std::size_t size() const;

  /// Builds the curve list from a per-class analyzer report (points are
  /// re-sorted by ascending cap).
  static ClassCurve from_report(JobClass cls,
                                const core::AmenabilityReport& report,
                                double usable_floor_w);

  // --- JSON round-trip (schema "pcap-amenability-v1") ---
  util::JsonValue to_json() const;
  static std::optional<AmenabilityTable> from_json(const util::JsonValue& v);
  void save(const std::string& path) const;
  static std::optional<AmenabilityTable> load(const std::string& path);

 private:
  std::array<std::optional<ClassCurve>, kJobClassCount> curves_;
};

struct CharacterizeOptions {
  std::vector<double> caps_w = {160, 150, 140, 135, 130, 125, 120, 115};
  double slowdown_tolerance = 1.25;
  int repetitions = 1;
  std::uint64_t seed = 1;
  sim::MachineConfig machine = sim::MachineConfig::romley();
};

/// Measures one chunk of every job class across the cap grid on a fresh
/// node (the scheduler's own amenability screen) and returns the table.
AmenabilityTable characterize_job_classes(const CharacterizeOptions& options);

}  // namespace pcap::sched
