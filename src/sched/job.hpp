// Job model for the cluster power scheduler (DESIGN.md §11).
//
// A job is a stream of identical work chunks of one job class. Classes map
// onto the paper's workload taxonomy: SIRE-like streaming (DRAM-bound),
// Stereo-like cache-resident compute, the stride microbenchmark's
// TLB/cache-antagonistic pattern, and the phased/unpredictable synthetic
// mix. Each chunk is a real simulated workload (the same ExecutionContext
// machinery the single-node reproduction uses), so a capped node slows a
// job down through the genuine BMC throttle ladder — the scheduler never
// assumes a slowdown, it only *predicts* one from amenability curves.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "sim/workload.hpp"

namespace pcap::sched {

enum class JobClass : std::uint8_t {
  kSireLike = 0,   // streaming / DRAM-bandwidth bound (amenable to DVFS)
  kStereoLike,     // cache-resident compute (cap-sensitive below the knee)
  kStrideLike,     // strided, TLB/cache antagonistic
  kPhased,         // unpredictable compute/memory phase mix
};
inline constexpr int kJobClassCount = 4;

std::string job_class_name(JobClass cls);
/// Inverse of job_class_name; nullopt for an unknown name.
std::optional<JobClass> job_class_from_name(const std::string& name);

struct JobSpec {
  int id = 0;
  JobClass cls = JobClass::kSireLike;
  double arrival_s = 0.0;  // simulated seconds
  int chunks = 1;          // work units; each is one chunk workload run
  std::optional<double> deadline_s;  // absolute simulated deadline
  std::uint64_t seed = 1;
};

/// Outcome of one job, filled in by the scheduler as it runs.
struct JobRecord {
  JobSpec spec;
  int node = -1;           // rack slot the job ran on
  int lane = 0;            // lane within the slot (0 on one-lane racks)
  double start_s = -1.0;   // first chunk dispatch time
  double finish_s = -1.0;  // last chunk completion time
  double energy_j = 0.0;   // busy energy of the job's chunks
  double avg_power_w = 0.0;
  int chunks_done = 0;
  int corun_chunks = 0;    // chunks that ran with >=1 co-resident
  bool missed_deadline = false;

  bool done() const { return chunks_done >= spec.chunks; }
};

/// Builds the chunk workload for `cls`. Chunks are sized so one chunk spans
/// a few dozen BMC control periods (the cap visibly bites within a chunk)
/// while staying cheap enough that policy sweeps run in seconds. The seed
/// decorrelates stochastic chunk internals between jobs; a given
/// (class, seed, chunk_index) always builds a bit-identical workload.
std::unique_ptr<sim::Workload> make_chunk_workload(JobClass cls,
                                                   std::uint64_t seed,
                                                   int chunk_index);

}  // namespace pcap::sched
