#include "sched/power_model.hpp"

#include <algorithm>

namespace pcap::sched {

void OnlinePowerModel::observe(JobClass cls, std::optional<double> cap_w,
                               double watts) {
  ClassStats& stats = stats_[static_cast<std::size_t>(cls)];
  ++stats.samples;
  const bool unconstrained = !cap_w || *cap_w >= watts + config_.headroom_w;
  if (!unconstrained) return;
  if (stats.uncapped_samples == 0) {
    stats.uncapped_w = watts;
  } else {
    stats.uncapped_w += config_.alpha * (watts - stats.uncapped_w);
  }
  ++stats.uncapped_samples;
}

double OnlinePowerModel::predict_uncapped_w(JobClass cls) const {
  const ClassStats& stats = stats_[static_cast<std::size_t>(cls)];
  if (stats.uncapped_samples > 0) return stats.uncapped_w;
  if (table_ != nullptr) {
    if (const ClassCurve* curve = table_->curve(cls)) {
      if (curve->baseline_power_w > 0.0) return curve->baseline_power_w;
    }
  }
  return config_.default_uncapped_w;
}

double OnlinePowerModel::predict_at_cap_w(JobClass cls, double cap_w) const {
  const double uncapped = predict_uncapped_w(cls);
  if (table_ != nullptr) {
    if (const ClassCurve* curve = table_->curve(cls)) {
      return std::min(curve->power_at(cap_w), std::min(uncapped, cap_w));
    }
  }
  return std::min(uncapped, cap_w);
}

}  // namespace pcap::sched
