// Cap-allocation policy contract (DESIGN.md §11).
//
// At every replan the scheduler hands the policy a read-only cluster view
// and a group budget; the policy returns a per-node cap vector and an admit
// mask. The *scheduler* owns placement (FIFO onto the lowest-index
// admitting idle node) and budget enforcement — a policy that returns an
// over-budget plan is clamped and the event is counted — so policies only
// decide how to split watts and how wide to open the rack.
//
// Contract invariants every policy must satisfy (tests/test_scheduler.cpp):
//  * caps lie in [min_cap_w, max_cap_w] for every available node;
//  * sum(caps over available nodes) <= budget - sum(reservations of
//    unavailable nodes);
//  * with budget >= node_count * (max demand + margin), the plan leaves
//    every node unthrottled and admits everywhere, so all policies
//    degenerate to the identical baseline schedule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/amenability_table.hpp"
#include "sched/job.hpp"
#include "sched/power_model.hpp"

namespace pcap::sched {

struct NodeView {
  std::size_t index = 0;
  /// Reachable over the management plane; unavailable nodes keep their
  /// last-applied cap as a budget reservation and take no new work.
  bool available = true;
  bool busy = false;
  JobClass cls = JobClass::kSireLike;  // valid when busy
  int remaining_chunks = 0;            // valid when busy
  /// The cap currently enforced by the node's BMC (reservation when the
  /// node is unreachable). nullopt before the first plan lands.
  std::optional<double> applied_cap_w;
  /// Absolute deadline of the running job, if any.
  std::optional<double> deadline_s;
};

struct PlanInput {
  double budget_w = 0.0;
  double min_cap_w = 110.0;
  double max_cap_w = 400.0;
  double now_s = 0.0;
  std::vector<NodeView> nodes;
  /// Ready queue (arrived, unplaced) jobs in FIFO order.
  struct QueuedJob {
    JobClass cls = JobClass::kSireLike;
    int chunks = 0;
    std::optional<double> deadline_s;
  };
  std::vector<QueuedJob> queued;
  const AmenabilityTable* table = nullptr;   // may be null
  const OnlinePowerModel* model = nullptr;   // never null during a run
};

struct Plan {
  /// Requested cap per node, parallel to PlanInput::nodes. Values for
  /// unavailable nodes are ignored (their reservation stands).
  std::vector<double> cap_w;
  /// Whether each node may receive new jobs this round (consolidation
  /// policies park nodes by clearing this).
  std::vector<bool> admit;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual Plan plan(const PlanInput& input) = 0;
};

/// "uniform", "greedy", "amenability", "race-to-idle". Unknown names return
/// nullptr.
std::unique_ptr<Policy> make_policy(const std::string& name);
/// Every policy name make_policy accepts, in canonical sweep order.
std::vector<std::string> policy_names();

}  // namespace pcap::sched
