// Cap-allocation policy contract (DESIGN.md §11, §13).
//
// At every replan the scheduler hands the policy a read-only cluster view
// and a group budget; the policy returns a per-node cap vector, an admit
// mask, and (optionally) explicit lane placements for the queued jobs. The
// *scheduler* owns placement legality (an invalid placement entry falls
// back to FIFO onto the lowest lane-major admitting idle lane) and budget
// enforcement — a policy that returns an over-budget plan is clamped and
// the event is counted — so policies only decide how to split watts, how
// wide to open the rack, and which idle lane each queued job should share
// a node with.
//
// Contract invariants every policy must satisfy (tests/test_scheduler.cpp,
// tests/test_cosched.cpp):
//  * caps lie in [min_cap_w, max_cap_w] for every available node;
//  * sum(caps over available nodes) <= budget - sum(reservations of
//    unavailable nodes);
//  * with budget >= node_count * (max demand + margin), the plan leaves
//    every node unthrottled and admits everywhere, so all policies
//    degenerate to the identical baseline schedule;
//  * a policy either consumes deadlines (consumes_deadlines() == true) or
//    ignores them mechanically: its plan must be invariant under stripping
//    every deadline from the input.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/amenability_table.hpp"
#include "sched/job.hpp"
#include "sched/power_model.hpp"

namespace pcap::sched {

/// One schedulable SMP lane of a node (DESIGN.md §13). A classic
/// one-job-per-node rack has exactly one lane per node.
struct LaneView {
  std::size_t lane = 0;
  bool busy = false;
  JobClass cls = JobClass::kSireLike;  // valid when busy
  int remaining_chunks = 0;            // valid when busy
  /// Absolute deadline of the job on this lane, if any.
  std::optional<double> deadline_s;
};

struct NodeView {
  std::size_t index = 0;
  /// Reachable over the management plane; unavailable nodes keep their
  /// last-applied cap as a budget reservation and take no new work.
  bool available = true;
  /// Any lane occupied. The class/chunk fields below summarise the node
  /// for lane-blind policies: cls is the first busy lane's class,
  /// remaining_chunks the lane maximum, deadline_s the earliest deadline.
  bool busy = false;
  JobClass cls = JobClass::kSireLike;  // valid when busy
  int remaining_chunks = 0;            // valid when busy
  /// The cap currently enforced by the node's BMC (reservation when the
  /// node is unreachable). nullopt before the first plan lands.
  std::optional<double> applied_cap_w;
  /// Earliest absolute deadline among the node's running jobs, if any.
  std::optional<double> deadline_s;
  /// Per-lane occupancy, size == PlanInput::lanes_per_node. Lane-aware
  /// policies read these; lane-blind policies may ignore them.
  std::vector<LaneView> lanes;

  int busy_lanes() const {
    int n = 0;
    for (const LaneView& lane : lanes) n += lane.busy ? 1 : 0;
    return n;
  }
};

struct PlanInput {
  double budget_w = 0.0;
  double min_cap_w = 110.0;
  double max_cap_w = 400.0;
  double now_s = 0.0;
  /// Schedulable lanes per node (SmpNode cores); 1 = the classic rack.
  std::size_t lanes_per_node = 1;
  std::vector<NodeView> nodes;
  /// Ready queue (arrived, unplaced) jobs in FIFO order.
  struct QueuedJob {
    JobClass cls = JobClass::kSireLike;
    int chunks = 0;
    std::optional<double> deadline_s;
  };
  std::vector<QueuedJob> queued;
  const AmenabilityTable* table = nullptr;   // may be null
  const OnlinePowerModel* model = nullptr;   // never null during a run
};

struct Plan {
  /// Requested cap per node, parallel to PlanInput::nodes. Values for
  /// unavailable nodes are ignored (their reservation stands).
  std::vector<double> cap_w;
  /// Whether each node may receive new jobs this round (consolidation
  /// policies park nodes by clearing this).
  std::vector<bool> admit;
  /// Optional explicit placement, parallel to PlanInput::queued:
  /// placement[q] is the flat lane id (node * lanes_per_node + lane) the
  /// q-th queued job should take, or kNoPlacement to leave the job to the
  /// scheduler's default FIFO fill. Entries naming a lane that is not
  /// idle, admitted and reachable (or already claimed by an earlier entry)
  /// fall back to FIFO. Empty vector == all kNoPlacement.
  std::vector<int> placement;

  static constexpr int kNoPlacement = -1;
};

/// What one completed chunk looked like next to its neighbours — the
/// feedback lane-aware policies learn from (DESIGN.md §13). Slowdown is
/// emergent from the shared-hierarchy co-run simulation; the observation
/// merely compares it against the solo prediction for the same cap.
struct CoRunObservation {
  JobClass cls = JobClass::kSireLike;
  /// Classes sharing the node when this chunk started (empty == ran solo).
  std::vector<JobClass> co_resident;
  std::optional<double> cap_w;
  double elapsed_s = 0.0;
  /// Table-predicted solo time at the same cap (0 when no curve exists;
  /// observers must then skip the sample).
  double predicted_solo_s = 0.0;
};

class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual Plan plan(const PlanInput& input) = 0;
  /// Chunk-completion feedback, called serially in completion order.
  /// Stateless policies ignore it.
  virtual void observe_corun(const CoRunObservation&) {}
  /// True when the policy reads deadlines. Policies returning false must
  /// plan identically with and without deadlines in the input — pinned
  /// mechanically by tests/test_cosched.cpp.
  virtual bool consumes_deadlines() const { return false; }
};

/// "uniform", "greedy", "amenability", "race-to-idle", "deadline",
/// "contention". Unknown names return nullptr.
std::unique_ptr<Policy> make_policy(const std::string& name);
/// Every policy name make_policy accepts, in canonical sweep order.
std::vector<std::string> policy_names();

}  // namespace pcap::sched
