#include "sched/arrivals.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace pcap::sched {

std::vector<JobSpec> generate_stream(const ArrivalConfig& config) {
  util::Rng rng(config.seed);
  double weight_total = 0.0;
  for (const double w : config.class_weights) weight_total += std::max(w, 0.0);

  std::vector<JobSpec> stream;
  stream.reserve(static_cast<std::size_t>(std::max(config.job_count, 0)));
  double t = 0.0;
  for (int i = 0; i < config.job_count; ++i) {
    JobSpec job;
    job.id = i;

    // Exponential interarrival gap (inverse-CDF on one uniform draw).
    const double u = std::max(rng.uniform(), 1e-12);
    t += -config.mean_interarrival_s * std::log(u);
    job.arrival_s = t;

    // Weighted class pick.
    double pick = rng.uniform() * (weight_total > 0.0 ? weight_total : 1.0);
    job.cls = JobClass::kSireLike;
    for (int c = 0; c < kJobClassCount; ++c) {
      const double w = std::max(config.class_weights[static_cast<std::size_t>(c)], 0.0);
      if (pick < w) {
        job.cls = static_cast<JobClass>(c);
        break;
      }
      pick -= w;
    }

    job.chunks = static_cast<int>(
        rng.between(config.min_chunks, std::max(config.min_chunks, config.max_chunks)));
    if (config.deadline_fraction > 0.0 && rng.chance(config.deadline_fraction)) {
      job.deadline_s = job.arrival_s + config.deadline_factor *
                                           static_cast<double>(job.chunks) *
                                           config.chunk_time_hint_s;
    }
    job.seed = rng();
    stream.push_back(job);
  }
  // Arrival times are already non-decreasing by construction; keep the sort
  // as a guard for future arrival processes (stable on id ties).
  std::stable_sort(stream.begin(), stream.end(),
                   [](const JobSpec& a, const JobSpec& b) {
                     return a.arrival_s < b.arrival_s;
                   });
  return stream;
}

}  // namespace pcap::sched
