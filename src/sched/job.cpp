#include "sched/job.hpp"

#include "apps/synthetic.hpp"
#include "util/rng.hpp"

namespace pcap::sched {

std::string job_class_name(JobClass cls) {
  switch (cls) {
    case JobClass::kSireLike: return "sire-like";
    case JobClass::kStereoLike: return "stereo-like";
    case JobClass::kStrideLike: return "stride-like";
    case JobClass::kPhased: return "phased";
  }
  return "unknown";
}

std::optional<JobClass> job_class_from_name(const std::string& name) {
  for (int i = 0; i < kJobClassCount; ++i) {
    const JobClass cls = static_cast<JobClass>(i);
    if (job_class_name(cls) == name) return cls;
  }
  return std::nullopt;
}

std::unique_ptr<sim::Workload> make_chunk_workload(JobClass cls,
                                                   std::uint64_t seed,
                                                   int chunk_index) {
  // Mix the job seed with the chunk index so successive chunks of one job
  // are decorrelated but fully reproducible.
  std::uint64_t sm = seed + 0x9E37u * static_cast<std::uint64_t>(chunk_index);
  const std::uint64_t chunk_seed = util::splitmix64(sm);
  switch (cls) {
    case JobClass::kSireLike:
      // Page-stride stream over a set far beyond L3, like the SIRE
      // backprojection stage: always missing to DRAM, so deep-cap cache
      // gating changes little and the class rides caps comparatively well
      // (the paper's SIRE is the *less* cap-sensitive of the two apps).
      return std::make_unique<apps::MemoryBoundWorkload>(
          /*working_set_bytes=*/24ull << 20, /*touches=*/9000,
          /*stride_bytes=*/4160);
    case JobClass::kStereoLike:
      // Dense sweep over a hot set that is cache-resident uncapped, like
      // the stereo matcher's cost volume: the deep-cap gating rungs evict
      // it, so its slowdown at 120 W dwarfs the streaming class (the
      // repo's golden StereoCachePenaltyDwarfsSire shape).
      return std::make_unique<apps::MemoryBoundWorkload>(
          /*working_set_bytes=*/2ull << 20, /*touches=*/9000,
          /*stride_bytes=*/192);
    case JobClass::kStrideLike:
      // Page-sized stride over a modest array: the stride benchmark's
      // TLB-antagonistic corner.
      return std::make_unique<apps::MemoryBoundWorkload>(
          /*working_set_bytes=*/8ull << 20, /*touches=*/7000,
          /*stride_bytes=*/4160);
    case JobClass::kPhased: {
      apps::PhasedParams params;
      params.phases = 3;
      params.mean_phase_uops = 120000;
      params.working_set_bytes = 6ull << 20;
      params.seed = chunk_seed;
      return std::make_unique<apps::PhasedWorkload>(params);
    }
  }
  return nullptr;
}

}  // namespace pcap::sched
