// The six shipped cap-allocation policies.
//
// All of them share the same skeleton: compute the effective budget (group
// budget minus reservations held by unreachable nodes), give every
// available node the enforceable floor, spend the surplus according to the
// policy's idea of value, and finally spread any unspent watts evenly so a
// generous budget always degenerates to the unthrottled baseline schedule
// (leaving surplus on the table would be both wasteful and would break the
// policy-equivalence invariant the tests pin).
//
// Deadline stance (pinned by tests/test_cosched.cpp): "deadline" is the
// one policy that consumes NodeView/queued deadline_s; the other five
// ignore deadlines mechanically — their plans are invariant under
// stripping every deadline from the input.
#include "sched/policy.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <numeric>

namespace pcap::sched {

namespace {

/// Cap headroom granted over a node's predicted demand: enough that sensor
/// noise and phase peaks never engage the throttle ladder when the budget
/// can afford full speed.
constexpr double kDemandHeadroomW = 8.0;

/// Lane accessors tolerating a lane-blind NodeView (empty lanes vector ==
/// one implicit lane summarised by the aggregate fields), so hand-built
/// PlanInputs from benches and tests keep working.
std::size_t lane_count(const PlanInput& input, const NodeView& node) {
  return node.lanes.empty() ? std::max<std::size_t>(1, input.lanes_per_node)
                            : node.lanes.size();
}
bool lane_busy(const NodeView& node, std::size_t lane) {
  return node.lanes.empty() ? (node.busy && lane == 0)
                            : node.lanes[lane].busy;
}

struct Workspace {
  double effective_budget_w = 0.0;
  std::vector<std::size_t> available;  // indices into input.nodes
  /// Per-node predicted package demand: the sum of every resident lane's
  /// uncapped draw (a safe upper bound — co-runners share the uncore, so
  /// the true package draw is below the sum) plus headroom.
  std::vector<double> demand_w;
  // The queued job the scheduler's FIFO fill would start on each idle node
  // this round (lane-major order): class, size and deadline. Busy nodes
  // keep nullopt — their own fields describe the work.
  std::vector<std::optional<JobClass>> prospective;
  std::vector<double> prospective_chunks;
  std::vector<std::optional<double>> prospective_deadline;
};

/// Demand of the jobs a node is running, plus the queued jobs the
/// scheduler would place on its idle lanes this round (FIFO onto idle
/// lanes in lane-major order) — the same fill rule ClusterScheduler uses.
Workspace analyze(const PlanInput& input) {
  Workspace ws;
  ws.effective_budget_w = input.budget_w;
  ws.demand_w.assign(input.nodes.size(), 0.0);
  ws.prospective.assign(input.nodes.size(), std::nullopt);
  ws.prospective_chunks.assign(input.nodes.size(), 0.0);
  ws.prospective_deadline.assign(input.nodes.size(), std::nullopt);
  for (const NodeView& node : input.nodes) {
    if (!node.available) {
      ws.effective_budget_w -= node.applied_cap_w.value_or(input.min_cap_w);
      continue;
    }
    ws.available.push_back(node.index);
  }
  for (const std::size_t i : ws.available) {
    const NodeView& node = input.nodes[i];
    if (node.lanes.empty()) {
      if (node.busy) {
        ws.demand_w[i] += input.model->predict_uncapped_w(node.cls);
      }
      continue;
    }
    for (const LaneView& lane : node.lanes) {
      if (lane.busy) {
        ws.demand_w[i] += input.model->predict_uncapped_w(lane.cls);
      }
    }
  }
  std::size_t next_queued = 0;
  const std::size_t lanes = std::max<std::size_t>(1, input.lanes_per_node);
  for (std::size_t l = 0; l < lanes && next_queued < input.queued.size();
       ++l) {
    for (const std::size_t i : ws.available) {
      if (next_queued >= input.queued.size()) break;
      const NodeView& node = input.nodes[i];
      if (l >= lane_count(input, node) || lane_busy(node, l)) continue;
      const PlanInput::QueuedJob& job = input.queued[next_queued++];
      ws.demand_w[i] += input.model->predict_uncapped_w(job.cls);
      if (!node.busy && !ws.prospective[i]) {
        ws.prospective[i] = job.cls;
        ws.prospective_chunks[i] =
            static_cast<double>(std::max(1, job.chunks));
        ws.prospective_deadline[i] = job.deadline_s;
      }
    }
  }
  for (const std::size_t i : ws.available) {
    if (ws.demand_w[i] > 0.0) ws.demand_w[i] += kDemandHeadroomW;
  }
  return ws;
}

Plan floor_plan(const PlanInput& input) {
  Plan plan;
  plan.cap_w.assign(input.nodes.size(), input.min_cap_w);
  plan.admit.assign(input.nodes.size(), false);
  for (const NodeView& node : input.nodes) {
    plan.admit[node.index] = node.available;
  }
  return plan;
}

/// Splits `surplus` evenly over `targets`, respecting max_cap_w. Returns
/// the watts actually spent.
double spread_evenly(Plan& plan, const PlanInput& input,
                     const std::vector<std::size_t>& targets, double surplus) {
  double spent = 0.0;
  if (targets.empty() || surplus <= 0.0) return spent;
  const double share = surplus / static_cast<double>(targets.size());
  for (const std::size_t i : targets) {
    const double grant =
        std::min(share, input.max_cap_w - plan.cap_w[i]);
    if (grant <= 0.0) continue;
    plan.cap_w[i] += grant;
    spent += grant;
  }
  return spent;
}

double floor_total(const PlanInput& input, const Workspace& ws) {
  return input.min_cap_w * static_cast<double>(ws.available.size());
}

/// The uniform baseline as a free function so other policies can
/// degenerate to it exactly (deadline policy on a deadline-free stream).
Plan uniform_plan(const PlanInput& input) {
  const Workspace ws = analyze(input);
  Plan p = floor_plan(input);
  spread_evenly(p, input, ws.available,
                ws.effective_budget_w - floor_total(input, ws));
  return p;
}

/// Per-node remaining-work estimate shared by the curve-driven policies:
/// predicted uncapped seconds, the class curve converting a cap into a
/// slowdown, and the earliest deadline of the work the node would carry.
struct NodeEstimate {
  std::vector<double> work_s;
  std::vector<const ClassCurve*> curve;
  std::vector<std::optional<double>> deadline_s;
};

NodeEstimate estimate(const PlanInput& input, const Workspace& ws) {
  NodeEstimate est;
  est.work_s.assign(input.nodes.size(), 0.0);
  est.curve.assign(input.nodes.size(), nullptr);
  est.deadline_s.assign(input.nodes.size(), std::nullopt);
  for (const std::size_t i : ws.available) {
    const NodeView& node = input.nodes[i];
    std::optional<JobClass> cls;
    double chunks = 0.0;
    if (node.busy) {
      cls = node.cls;
      chunks = static_cast<double>(node.remaining_chunks);
      est.deadline_s[i] = node.deadline_s;
    } else if (ws.prospective[i]) {
      cls = *ws.prospective[i];
      chunks = ws.prospective_chunks[i];
      est.deadline_s[i] = ws.prospective_deadline[i];
    }
    if (!cls) continue;
    const ClassCurve* c =
        input.table != nullptr ? input.table->curve(*cls) : nullptr;
    est.curve[i] = c;
    const double chunk_s = c != nullptr && c->baseline_time_s > 0.0
                               ? c->baseline_time_s
                               : 1.0;
    est.work_s[i] = std::max(chunks, 1.0) * chunk_s;
  }
  return est;
}

/// Min-max watt-filling in kStepW increments: repeatedly fund the node
/// with the highest `priority` that can still improve. N is rack-sized and
/// budgets are O(kW), so the loop is cheap. `priority(i)` must be a strict
/// function of the current plan (it is re-evaluated as caps move).
constexpr double kStepW = 1.0;

template <typename Priority>
void min_max_fill(Plan& p, const PlanInput& input, const Workspace& ws,
                  const NodeEstimate& est, double& surplus,
                  Priority priority) {
  auto can_improve = [&](std::size_t i) {
    if (est.curve[i] == nullptr || est.work_s[i] <= 0.0) return false;
    const double limit = std::min(input.max_cap_w, ws.demand_w[i]);
    if (p.cap_w[i] + kStepW > limit) return false;
    return est.curve[i]->slowdown_at(p.cap_w[i]) -
               est.curve[i]->slowdown_at(p.cap_w[i] + kStepW) >
           0.0;
  };
  std::vector<std::size_t> candidates;
  for (const std::size_t i : ws.available) {
    if (can_improve(i)) candidates.push_back(i);
  }
  while (surplus >= kStepW && !candidates.empty()) {
    std::size_t best = candidates.front();
    for (const std::size_t i : candidates) {
      if (priority(i) > priority(best)) best = i;
    }
    p.cap_w[best] += kStepW;
    surplus -= kStepW;
    if (!can_improve(best)) {
      candidates.erase(
          std::find(candidates.begin(), candidates.end(), best));
    }
  }
}

/// The idle, admitting lanes the scheduler's default FIFO fill would use
/// this round, in lane-major order: (flat lane id, node index) pairs.
struct IdleLane {
  int flat = 0;
  std::size_t node = 0;
  std::size_t lane = 0;
};

std::vector<IdleLane> idle_lanes(const PlanInput& input, const Plan& p) {
  std::vector<IdleLane> lanes;
  const std::size_t per_node = std::max<std::size_t>(1, input.lanes_per_node);
  for (std::size_t l = 0; l < per_node; ++l) {
    for (const NodeView& node : input.nodes) {
      if (!node.available || !p.admit[node.index]) continue;
      if (l >= lane_count(input, node) || lane_busy(node, l)) continue;
      lanes.push_back(IdleLane{
          static_cast<int>(node.index * per_node + l), node.index, l});
    }
  }
  return lanes;
}

// --- uniform --------------------------------------------------------------

/// The baseline every DCM offers out of the box: the group budget split
/// evenly across reachable nodes, blind to what anyone is running.
class UniformCapPolicy final : public Policy {
 public:
  std::string name() const override { return "uniform"; }

  Plan plan(const PlanInput& input) override { return uniform_plan(input); }
};

// --- greedy power-first ---------------------------------------------------

/// Serves measured demand, hungriest node first: each node asks for its
/// predicted draw plus headroom; whatever remains is spread evenly. Good
/// when the budget roughly covers total demand, degrades to uniform-like
/// arbitrary squeezing below that (it knows watts, not slowdowns).
class GreedyPowerFirstPolicy final : public Policy {
 public:
  std::string name() const override { return "greedy"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);

    std::vector<std::size_t> order = ws.available;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ws.demand_w[a] > ws.demand_w[b];
                     });
    for (const std::size_t i : order) {
      if (surplus <= 0.0) break;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      const double grant =
          std::min({want, surplus, input.max_cap_w - p.cap_w[i]});
      p.cap_w[i] += grant;
      surplus -= grant;
    }
    spread_evenly(p, input, ws.available, surplus);
    return p;
  }
};

// --- amenability-model-driven ---------------------------------------------

/// Minimises the predicted makespan by watt-filling on the measured
/// slowdown-vs-cap curves: every candidate watt goes to the node whose
/// predicted completion (remaining baseline work x slowdown at its current
/// cap) is furthest out. Cap-sensitive jobs (steep below the ~135 W knee)
/// dominate the completion estimate at deep caps, so they are pulled above
/// their knee first, while cap-tolerant streaming jobs — whose curves stay
/// flat — are left to absorb the deep caps: the paper's §V scheduling
/// story, executed. (A plain "best marginal gain x remaining work" greedy
/// is tempting but wrong for makespan: it starves short low-weight jobs at
/// the floor, far below the knee, and any job left there defines the
/// makespan.)
class AmenabilityPolicy final : public Policy {
 public:
  std::string name() const override { return "amenability"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);
    const NodeEstimate est = estimate(input, ws);
    auto completion_s = [&](std::size_t i) {
      return est.work_s[i] * (est.curve[i] != nullptr
                                  ? est.curve[i]->slowdown_at(p.cap_w[i])
                                  : 1.0);
    };
    min_max_fill(p, input, ws, est, surplus, completion_s);
    spread_evenly(p, input, ws.available, surplus);
    return p;
  }
};

// --- race-to-idle / consolidation -----------------------------------------

/// Concentrates the budget on as few nodes as possible running at full
/// speed; the rest are parked at the floor and closed to new work. Running
/// a node deep under its knee wastes energy, so consolidation competes
/// well on makespan and energy — but parked nodes defer queued jobs, and
/// the sweep quantifies the turnaround cost (the paper's §II-B platform
/// keeps even parked nodes idling at ~100 W, so the energy win is smaller
/// than the cap arithmetic alone would suggest).
class RaceToIdlePolicy final : public Policy {
 public:
  std::string name() const override { return "race-to-idle"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);

    // Busy nodes must keep running: fund them first, index order.
    std::vector<std::size_t> funded;
    for (const std::size_t i : ws.available) {
      if (!input.nodes[i].busy) continue;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      const double grant =
          std::min({want, surplus, input.max_cap_w - p.cap_w[i]});
      p.cap_w[i] += grant;
      surplus -= grant;
      funded.push_back(i);
    }
    // Then open idle nodes one at a time, but only when the remaining
    // surplus covers the next queued job at full speed.
    for (const std::size_t i : ws.available) {
      const NodeView& node = input.nodes[i];
      if (node.busy) continue;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      if (!ws.prospective[i] || want > surplus + 1e-9) {
        p.admit[i] = false;  // parked
        continue;
      }
      const double grant = std::min(want, input.max_cap_w - p.cap_w[i]);
      p.cap_w[i] += grant;
      surplus -= grant;
      funded.push_back(i);
    }
    // Leftover watts accelerate nothing here — spend them on the active
    // set so a generous budget reproduces the baseline schedule exactly.
    std::sort(funded.begin(), funded.end());
    spread_evenly(p, input, funded.empty() ? ws.available : funded, surplus);
    return p;
  }
};

// --- deadline-aware (EDF when it matters) ---------------------------------

/// The one policy that consumes deadline_s. Watts go first to nodes whose
/// predicted completion overruns their deadline (largest overrun first),
/// then min-max on completion like amenability; the ready queue is
/// re-ordered earliest-deadline-first — but only when the plan predicts a
/// miss under the default FIFO fill. On a deadline-free stream the plan is
/// the uniform baseline exactly, and at a generous budget nothing is
/// predicted to miss, so the policy degenerates to the shared baseline
/// schedule (tests/test_cosched.cpp pins both).
class DeadlineEdfPolicy final : public Policy {
 public:
  std::string name() const override { return "deadline"; }
  bool consumes_deadlines() const override { return true; }

  Plan plan(const PlanInput& input) override {
    if (!any_deadline(input)) return uniform_plan(input);
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);
    const NodeEstimate est = estimate(input, ws);
    auto completion_s = [&](std::size_t i) {
      return est.work_s[i] * (est.curve[i] != nullptr
                                  ? est.curve[i]->slowdown_at(p.cap_w[i])
                                  : 1.0);
    };
    // Two-tier urgency: a predicted miss dominates any completion time;
    // among misses, fund the deepest overrun. Ties and the no-miss regime
    // reduce to amenability's min-max completion fill.
    constexpr double kMissTier = 1e12;
    auto urgency = [&](std::size_t i) {
      const double completion = completion_s(i);
      if (est.deadline_s[i]) {
        const double overrun =
            input.now_s + completion - *est.deadline_s[i];
        if (overrun > 0.0) return kMissTier + overrun;
      }
      return completion;
    };
    min_max_fill(p, input, ws, est, surplus, urgency);
    spread_evenly(p, input, ws.available, surplus);
    edf_placement_if_miss(p, input);
    return p;
  }

 private:
  static bool any_deadline(const PlanInput& input) {
    for (const NodeView& node : input.nodes) {
      if (node.deadline_s) return true;
      for (const LaneView& lane : node.lanes) {
        if (lane.deadline_s) return true;
      }
    }
    for (const PlanInput::QueuedJob& job : input.queued) {
      if (job.deadline_s) return true;
    }
    return false;
  }

  /// Predicts each queued job's finish under the default FIFO fill at the
  /// planned caps (waiting jobs optimistically start now at max cap — an
  /// underestimate, so EDF only engages on certain misses). When a miss is
  /// predicted and EDF actually reorders, emit the permutation.
  void edf_placement_if_miss(Plan& p, const PlanInput& input) const {
    if (input.queued.empty()) return;
    const std::vector<IdleLane> lanes = idle_lanes(input, p);
    bool miss = false;
    for (std::size_t q = 0; q < input.queued.size(); ++q) {
      const PlanInput::QueuedJob& job = input.queued[q];
      if (!job.deadline_s) continue;
      const double cap_w =
          q < lanes.size() ? p.cap_w[lanes[q].node] : input.max_cap_w;
      const ClassCurve* curve =
          input.table != nullptr ? input.table->curve(job.cls) : nullptr;
      const double chunk_s = curve != nullptr && curve->baseline_time_s > 0.0
                                 ? curve->baseline_time_s
                                 : 1.0;
      const double slowdown =
          curve != nullptr ? curve->slowdown_at(cap_w) : 1.0;
      const double finish_s =
          input.now_s +
          static_cast<double>(std::max(1, job.chunks)) * chunk_s * slowdown;
      if (finish_s > *job.deadline_s) {
        miss = true;
        break;
      }
    }
    if (!miss) return;
    std::vector<std::size_t> order(input.queued.size());
    std::iota(order.begin(), order.end(), 0);
    constexpr double kNoDeadline = std::numeric_limits<double>::infinity();
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return input.queued[a].deadline_s.value_or(kNoDeadline) <
                              input.queued[b].deadline_s.value_or(kNoDeadline);
                     });
    bool reordered = false;
    for (std::size_t k = 0; k < order.size(); ++k) {
      if (order[k] != k) reordered = true;
    }
    if (!reordered) return;
    p.placement.assign(input.queued.size(), Plan::kNoPlacement);
    for (std::size_t k = 0; k < order.size() && k < lanes.size(); ++k) {
      p.placement[order[k]] = lanes[k].flat;
    }
  }
};

// --- contention-aware co-scheduling ---------------------------------------

/// Learns, online, how job classes hurt each other when co-resident and
/// places queued jobs to avoid the expensive pairings. The penalty matrix
/// P[cls][co] starts at 1.0 (no prior: every pairing assumed free) and is
/// updated from CoRunObservations — the measured co-run elapsed over the
/// table-predicted solo elapsed at the same cap, exponentially weighted.
/// Slowdown is never assumed: the samples come from the emergent
/// shared-hierarchy co-run simulation, the matrix only remembers them.
/// Caps use the amenability fill (the matrix informs WHERE jobs go, the
/// curves inform how watts split). With one lane per node co-residency
/// never occurs, every pairing cost is zero and placement reduces to FIFO,
/// so the policy degenerates to amenability exactly.
class ContentionAwarePolicy final : public Policy {
 public:
  ContentionAwarePolicy() {
    for (auto& row : penalty_) row.fill(1.0);
  }

  std::string name() const override { return "contention"; }

  void observe_corun(const CoRunObservation& obs) override {
    if (obs.co_resident.empty() || obs.predicted_solo_s <= 0.0 ||
        obs.elapsed_s <= 0.0) {
      return;
    }
    // Co-residency never speeds a chunk up in this model, so a ratio
    // below 1.0 is table-interpolation noise in the solo prediction, not
    // a real discount; clamping keeps an interference-free rack's matrix
    // flat (and its placement FIFO) instead of learning phantom affinity.
    const double sample = std::max(1.0, obs.elapsed_s / obs.predicted_solo_s);
    for (const JobClass co : obs.co_resident) {
      double& cell = penalty_[index(obs.cls)][index(co)];
      cell += kAlpha * (sample - cell);
    }
  }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);
    const NodeEstimate est = estimate(input, ws);
    auto completion_s = [&](std::size_t i) {
      return est.work_s[i] * (est.curve[i] != nullptr
                                  ? est.curve[i]->slowdown_at(p.cap_w[i])
                                  : 1.0);
    };
    min_max_fill(p, input, ws, est, surplus, completion_s);
    spread_evenly(p, input, ws.available, surplus);
    place(p, input);
    return p;
  }

 private:
  static std::size_t index(JobClass cls) {
    return static_cast<std::size_t>(cls);
  }

  /// Symmetrised marginal cost of adding `cls` next to `residents`.
  double pairing_cost(JobClass cls,
                      const std::vector<JobClass>& residents) const {
    double cost = 0.0;
    for (const JobClass r : residents) {
      cost += (penalty_[index(cls)][index(r)] - 1.0) +
              (penalty_[index(r)][index(cls)] - 1.0);
    }
    return cost;
  }

  /// Greedy assignment, FIFO over the queue: each job takes the first idle
  /// lane (lane-major order) whose pairing cost is within kIndifference of
  /// the cheapest remaining lane. The threshold keeps the policy from
  /// churning placements on noise, and makes an unlearned matrix (all
  /// costs zero) reproduce the default FIFO fill exactly.
  void place(Plan& p, const PlanInput& input) const {
    if (input.lanes_per_node <= 1 || input.queued.empty()) return;
    const std::vector<IdleLane> lanes = idle_lanes(input, p);
    if (lanes.empty()) return;
    std::vector<std::vector<JobClass>> residents(input.nodes.size());
    for (const NodeView& node : input.nodes) {
      for (const LaneView& lane : node.lanes) {
        if (lane.busy) residents[node.index].push_back(lane.cls);
      }
    }
    std::vector<bool> taken(lanes.size(), false);
    std::vector<int> placement(input.queued.size(), Plan::kNoPlacement);
    bool deviates = false;
    for (std::size_t q = 0; q < input.queued.size(); ++q) {
      const JobClass cls = input.queued[q].cls;
      double best_cost = std::numeric_limits<double>::infinity();
      for (std::size_t j = 0; j < lanes.size(); ++j) {
        if (taken[j]) continue;
        best_cost = std::min(
            best_cost, pairing_cost(cls, residents[lanes[j].node]));
      }
      std::size_t chosen = lanes.size();
      std::size_t first_free = lanes.size();
      for (std::size_t j = 0; j < lanes.size(); ++j) {
        if (taken[j]) continue;
        if (first_free == lanes.size()) first_free = j;
        if (pairing_cost(cls, residents[lanes[j].node]) <=
            best_cost + kIndifference) {
          chosen = j;
          break;
        }
      }
      if (chosen == lanes.size()) break;  // no idle lane left
      taken[chosen] = true;
      placement[q] = lanes[chosen].flat;
      residents[lanes[chosen].node].push_back(cls);
      if (chosen != first_free) deviates = true;
    }
    // A pure FIFO outcome is left implicit so the schedule stays
    // bit-identical to the lane-blind policies when the matrix is flat.
    if (deviates) p.placement = std::move(placement);
  }

  static constexpr double kAlpha = 0.2;
  static constexpr double kIndifference = 0.02;
  std::array<std::array<double, kJobClassCount>, kJobClassCount> penalty_{};
};

}  // namespace

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "uniform") return std::make_unique<UniformCapPolicy>();
  if (name == "greedy") return std::make_unique<GreedyPowerFirstPolicy>();
  if (name == "amenability") return std::make_unique<AmenabilityPolicy>();
  if (name == "race-to-idle") return std::make_unique<RaceToIdlePolicy>();
  if (name == "deadline") return std::make_unique<DeadlineEdfPolicy>();
  if (name == "contention") return std::make_unique<ContentionAwarePolicy>();
  return nullptr;
}

std::vector<std::string> policy_names() {
  return {"uniform",      "greedy",   "amenability",
          "race-to-idle", "deadline", "contention"};
}

}  // namespace pcap::sched
