// The four shipped cap-allocation policies.
//
// All of them share the same skeleton: compute the effective budget (group
// budget minus reservations held by unreachable nodes), give every
// available node the enforceable floor, spend the surplus according to the
// policy's idea of value, and finally spread any unspent watts evenly so a
// generous budget always degenerates to the unthrottled baseline schedule
// (leaving surplus on the table would be both wasteful and would break the
// policy-equivalence invariant the tests pin).
#include "sched/policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pcap::sched {

namespace {

/// Cap headroom granted over a node's predicted demand: enough that sensor
/// noise and phase peaks never engage the throttle ladder when the budget
/// can afford full speed.
constexpr double kDemandHeadroomW = 8.0;

struct Workspace {
  double effective_budget_w = 0.0;
  std::vector<std::size_t> available;       // indices into input.nodes
  std::vector<double> demand_w;             // per node (0 for parked idle)
  std::vector<std::optional<JobClass>> prospective;  // queued job per idle node
};

/// Demand of the job a node is running, or of the queued job the scheduler
/// would place on it this round (FIFO onto idle nodes in index order) —
/// the same rule ClusterScheduler::place_jobs uses.
Workspace analyze(const PlanInput& input) {
  Workspace ws;
  ws.effective_budget_w = input.budget_w;
  ws.demand_w.assign(input.nodes.size(), 0.0);
  ws.prospective.assign(input.nodes.size(), std::nullopt);
  for (const NodeView& node : input.nodes) {
    if (!node.available) {
      ws.effective_budget_w -= node.applied_cap_w.value_or(input.min_cap_w);
      continue;
    }
    ws.available.push_back(node.index);
  }
  std::size_t next_queued = 0;
  for (const std::size_t i : ws.available) {
    const NodeView& node = input.nodes[i];
    if (node.busy) {
      ws.demand_w[i] =
          input.model->predict_uncapped_w(node.cls) + kDemandHeadroomW;
    } else if (next_queued < input.queued.size()) {
      const JobClass cls = input.queued[next_queued++].cls;
      ws.prospective[i] = cls;
      ws.demand_w[i] = input.model->predict_uncapped_w(cls) + kDemandHeadroomW;
    }
  }
  return ws;
}

Plan floor_plan(const PlanInput& input) {
  Plan plan;
  plan.cap_w.assign(input.nodes.size(), input.min_cap_w);
  plan.admit.assign(input.nodes.size(), false);
  for (const NodeView& node : input.nodes) {
    plan.admit[node.index] = node.available;
  }
  return plan;
}

/// Splits `surplus` evenly over `targets`, respecting max_cap_w. Returns
/// the watts actually spent.
double spread_evenly(Plan& plan, const PlanInput& input,
                     const std::vector<std::size_t>& targets, double surplus) {
  double spent = 0.0;
  if (targets.empty() || surplus <= 0.0) return spent;
  const double share = surplus / static_cast<double>(targets.size());
  for (const std::size_t i : targets) {
    const double grant =
        std::min(share, input.max_cap_w - plan.cap_w[i]);
    if (grant <= 0.0) continue;
    plan.cap_w[i] += grant;
    spent += grant;
  }
  return spent;
}

double floor_total(const PlanInput& input, const Workspace& ws) {
  return input.min_cap_w * static_cast<double>(ws.available.size());
}

// --- uniform --------------------------------------------------------------

/// The baseline every DCM offers out of the box: the group budget split
/// evenly across reachable nodes, blind to what anyone is running.
class UniformCapPolicy final : public Policy {
 public:
  std::string name() const override { return "uniform"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    spread_evenly(p, input, ws.available,
                  ws.effective_budget_w - floor_total(input, ws));
    return p;
  }
};

// --- greedy power-first ---------------------------------------------------

/// Serves measured demand, hungriest node first: each node asks for its
/// predicted draw plus headroom; whatever remains is spread evenly. Good
/// when the budget roughly covers total demand, degrades to uniform-like
/// arbitrary squeezing below that (it knows watts, not slowdowns).
class GreedyPowerFirstPolicy final : public Policy {
 public:
  std::string name() const override { return "greedy"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);

    std::vector<std::size_t> order = ws.available;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return ws.demand_w[a] > ws.demand_w[b];
                     });
    for (const std::size_t i : order) {
      if (surplus <= 0.0) break;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      const double grant =
          std::min({want, surplus, input.max_cap_w - p.cap_w[i]});
      p.cap_w[i] += grant;
      surplus -= grant;
    }
    spread_evenly(p, input, ws.available, surplus);
    return p;
  }
};

// --- amenability-model-driven ---------------------------------------------

/// Minimises the predicted makespan by watt-filling on the measured
/// slowdown-vs-cap curves: every candidate watt goes to the node whose
/// predicted completion (remaining baseline work x slowdown at its current
/// cap) is furthest out. Cap-sensitive jobs (steep below the ~135 W knee)
/// dominate the completion estimate at deep caps, so they are pulled above
/// their knee first, while cap-tolerant streaming jobs — whose curves stay
/// flat — are left to absorb the deep caps: the paper's §V scheduling
/// story, executed. (A plain "best marginal gain x remaining work" greedy
/// is tempting but wrong for makespan: it starves short low-weight jobs at
/// the floor, far below the knee, and any job left there defines the
/// makespan.)
class AmenabilityPolicy final : public Policy {
 public:
  std::string name() const override { return "amenability"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);

    // Predicted remaining baseline work per node (seconds uncapped), and
    // the class curve converting a cap into a predicted slowdown.
    std::vector<double> work_s(input.nodes.size(), 0.0);
    std::vector<const ClassCurve*> curve(input.nodes.size(), nullptr);
    // Walks the ready queue in the same FIFO order analyze() used to fill
    // `prospective`, so each idle node sees its own queued job's size.
    std::size_t next_queued = 0;
    for (const std::size_t i : ws.available) {
      const NodeView& node = input.nodes[i];
      std::optional<JobClass> cls;
      double chunks = 0.0;
      if (node.busy) {
        cls = node.cls;
        chunks = static_cast<double>(node.remaining_chunks);
      } else if (ws.prospective[i]) {
        cls = *ws.prospective[i];
        chunks = static_cast<double>(
            std::max(1, input.queued[next_queued++].chunks));
      }
      if (!cls) continue;
      const ClassCurve* c =
          input.table != nullptr ? input.table->curve(*cls) : nullptr;
      curve[i] = c;
      const double chunk_s = c != nullptr && c->baseline_time_s > 0.0
                                 ? c->baseline_time_s
                                 : 1.0;
      work_s[i] = std::max(chunks, 1.0) * chunk_s;
    }

    // Min-max watt-filling in kStepW increments: repeatedly fund the node
    // with the latest predicted completion that can still improve. N is
    // rack-sized and budgets are O(kW), so the loop is cheap.
    constexpr double kStepW = 1.0;
    auto completion_s = [&](std::size_t i) {
      return work_s[i] * (curve[i] != nullptr
                              ? curve[i]->slowdown_at(p.cap_w[i])
                              : 1.0);
    };
    auto can_improve = [&](std::size_t i) {
      if (curve[i] == nullptr || work_s[i] <= 0.0) return false;
      const double limit = std::min(input.max_cap_w, ws.demand_w[i]);
      if (p.cap_w[i] + kStepW > limit) return false;
      return curve[i]->slowdown_at(p.cap_w[i]) -
                 curve[i]->slowdown_at(p.cap_w[i] + kStepW) >
             0.0;
    };
    std::vector<std::size_t> candidates;
    for (const std::size_t i : ws.available) {
      if (can_improve(i)) candidates.push_back(i);
    }
    while (surplus >= kStepW && !candidates.empty()) {
      std::size_t best = candidates.front();
      for (const std::size_t i : candidates) {
        if (completion_s(i) > completion_s(best)) best = i;
      }
      p.cap_w[best] += kStepW;
      surplus -= kStepW;
      if (!can_improve(best)) {
        candidates.erase(
            std::find(candidates.begin(), candidates.end(), best));
      }
    }
    spread_evenly(p, input, ws.available, surplus);
    return p;
  }
};

// --- race-to-idle / consolidation -----------------------------------------

/// Concentrates the budget on as few nodes as possible running at full
/// speed; the rest are parked at the floor and closed to new work. Running
/// a node deep under its knee wastes energy, so consolidation competes
/// well on makespan and energy — but parked nodes defer queued jobs, and
/// the sweep quantifies the turnaround cost (the paper's §II-B platform
/// keeps even parked nodes idling at ~100 W, so the energy win is smaller
/// than the cap arithmetic alone would suggest).
class RaceToIdlePolicy final : public Policy {
 public:
  std::string name() const override { return "race-to-idle"; }

  Plan plan(const PlanInput& input) override {
    const Workspace ws = analyze(input);
    Plan p = floor_plan(input);
    double surplus = ws.effective_budget_w - floor_total(input, ws);

    // Busy nodes must keep running: fund them first, index order.
    std::vector<std::size_t> funded;
    for (const std::size_t i : ws.available) {
      if (!input.nodes[i].busy) continue;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      const double grant =
          std::min({want, surplus, input.max_cap_w - p.cap_w[i]});
      p.cap_w[i] += grant;
      surplus -= grant;
      funded.push_back(i);
    }
    // Then open idle nodes one at a time, but only when the remaining
    // surplus covers the next queued job at full speed.
    for (const std::size_t i : ws.available) {
      const NodeView& node = input.nodes[i];
      if (node.busy) continue;
      const double want = std::max(0.0, ws.demand_w[i] - p.cap_w[i]);
      if (!ws.prospective[i] || want > surplus + 1e-9) {
        p.admit[i] = false;  // parked
        continue;
      }
      const double grant = std::min(want, input.max_cap_w - p.cap_w[i]);
      p.cap_w[i] += grant;
      surplus -= grant;
      funded.push_back(i);
    }
    // Leftover watts accelerate nothing here — spend them on the active
    // set so a generous budget reproduces the baseline schedule exactly.
    std::sort(funded.begin(), funded.end());
    spread_evenly(p, input, funded.empty() ? ws.available : funded, surplus);
    return p;
  }
};

}  // namespace

std::unique_ptr<Policy> make_policy(const std::string& name) {
  if (name == "uniform") return std::make_unique<UniformCapPolicy>();
  if (name == "greedy") return std::make_unique<GreedyPowerFirstPolicy>();
  if (name == "amenability") return std::make_unique<AmenabilityPolicy>();
  if (name == "race-to-idle") return std::make_unique<RaceToIdlePolicy>();
  return nullptr;
}

std::vector<std::string> policy_names() {
  return {"uniform", "greedy", "amenability", "race-to-idle"};
}

}  // namespace pcap::sched
