// Chunk memoization for the cluster power scheduler (DESIGN.md §12, §13).
//
// A solo chunk is simulated on a FRESH Node + BMC pair, so its result is a
// pure function of (job class, workload identity, enforced cap) — the
// machine and BMC configurations are fixed per scheduler instance and the
// chunk duration is determined by the class, so they are factored out of
// the key by scoping one cache to one ClusterScheduler. Arrival streams
// with repeated (class, cap) cells then replay recorded results bit-exactly
// instead of re-simulating: a hit returns the identical ChunkResult the
// miss recorded, and the schedule it produces is bit-identical to the
// cache-off run (tests/test_scheduler.cpp).
//
// Under co-residency (lanes_per_node > 1) the solo key is NOT sound: the
// same (class, identity, cap) chunk runs slower next to an L3 thrasher
// than next to a streaming neighbour, and that slowdown is emergent from
// the shared-hierarchy SmpNode simulation, so no per-chunk key can ignore
// the neighbours. Co-resident chunks therefore key on the whole co-run
// CELL — the enforced cap plus the sorted (class, identity) multiset of
// every resident — and the cell cache memoizes the per-member results of
// one cell simulation together (DESIGN.md §13 derives why the key must
// grow exactly this way).
//
// The slot's long-lived node stays on the management plane (DCM/IPMI caps,
// health, idle calibration); only chunk execution moved to pure simulation.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/bmc.hpp"
#include "sched/job.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::sched {

/// Everything the scheduler consumes from one chunk execution.
struct ChunkResult {
  util::Picoseconds elapsed = 0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
};

/// Full memo key for one SOLO chunk simulation within one scheduler
/// instance.
struct ChunkKey {
  JobClass cls = JobClass::kSireLike;
  /// Workload identity: everything make_chunk_workload's output depends on
  /// beyond the class (chunk_identity()).
  std::uint64_t identity = 0;
  /// Bit pattern of the enforced cap in watts; uncapped chunks use the
  /// pattern of -1.0 (caps are strictly positive).
  std::uint64_t cap_bits = std::bit_cast<std::uint64_t>(-1.0);

  static std::uint64_t encode_cap(std::optional<double> cap_w) {
    return std::bit_cast<std::uint64_t>(cap_w.value_or(-1.0));
  }

  bool operator==(const ChunkKey&) const = default;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& key) const {
    std::uint64_t h = key.identity;
    h ^= key.cap_bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(key.cls) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// One resident of a co-run cell. Ordering and equality consider only
/// (cls, identity) — seed/chunk_index are rebuild material for
/// make_chunk_workload and, by the identity contract, any (seed, chunk)
/// pair mapping to the same identity builds the bit-identical workload.
struct CoRunMember {
  JobClass cls = JobClass::kSireLike;
  std::uint64_t identity = 0;
  std::uint64_t seed = 0;
  int chunk_index = 0;

  friend bool same_key(const CoRunMember& a, const CoRunMember& b) {
    return a.cls == b.cls && a.identity == b.identity;
  }
  friend bool key_less(const CoRunMember& a, const CoRunMember& b) {
    if (a.cls != b.cls) return a.cls < b.cls;
    return a.identity < b.identity;
  }
};

/// Memo key for one co-run cell: the enforced cap plus the key-sorted
/// resident multiset. Everything the cell simulation depends on.
struct CoRunKey {
  std::uint64_t cap_bits = std::bit_cast<std::uint64_t>(-1.0);
  std::vector<CoRunMember> members;  // sorted with key_less

  bool operator==(const CoRunKey& other) const {
    if (cap_bits != other.cap_bits ||
        members.size() != other.members.size()) {
      return false;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (!same_key(members[i], other.members[i])) return false;
    }
    return true;
  }
};

struct CoRunKeyHash {
  std::size_t operator()(const CoRunKey& key) const {
    std::uint64_t h = key.cap_bits;
    for (const CoRunMember& m : key.members) {
      h ^= m.identity + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= static_cast<std::uint64_t>(m.cls) + 0x9E3779B97F4A7C15ull +
           (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// The part of make_chunk_workload's input its output actually depends on:
/// only kPhased chunks consume the (seed, chunk_index) mixture, so repeated
/// cells of the other classes collapse onto one key per (class, cap).
std::uint64_t chunk_identity(JobClass cls, std::uint64_t seed,
                             int chunk_index);

/// Simulates one SOLO chunk as a pure function of the key: a fresh Node
/// (seeded deterministically from `node_seed_material` and the key) with
/// its own BMC enforcing `cap_w` directly — the genuine throttle ladder,
/// minus the IPMI plane the slot's management node already modelled when
/// the cap was applied. Thread-safe by construction (no shared state), so
/// the `--jobs` pool may call it concurrently.
ChunkResult simulate_chunk(const sim::MachineConfig& machine,
                           const core::BmcConfig& bmc_config,
                           const ChunkKey& key, std::uint64_t seed,
                           int chunk_index,
                           std::uint64_t node_seed_material);

/// Simulates one co-run CELL as a pure function of its key: a fresh
/// key.members.size()-core SmpNode (cooperative engine, `quantum`
/// interleave) with its own BMC enforcing the cap package-wide, every
/// member workload co-running over the shared L3/DRAM — contention and
/// capped-co-run slowdown are emergent, never assumed. Returns one
/// ChunkResult per member, parallel to key.members; per-member energy is
/// the package energy attributed by busy time (SmpCoreReport). Like
/// simulate_chunk, shares no state and is safe to fan out over `jobs`.
std::vector<ChunkResult> simulate_corun_cell(
    const sim::MachineConfig& machine, const core::BmcConfig& bmc_config,
    const CoRunKey& key, std::uint64_t node_seed_material,
    util::Picoseconds quantum);

/// Unbounded per-scheduler maps (solo chunks and co-run cells). Not
/// thread-safe: the scheduler classifies hits and inserts results serially
/// in lane-major order (jobs-invariance), only the miss simulations fan
/// out.
class ChunkCache {
 public:
  const ChunkResult* find(const ChunkKey& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  void insert(const ChunkKey& key, const ChunkResult& result) {
    map_.emplace(key, result);
  }

  /// Per-member results of a recorded cell (parallel to key.members), or
  /// nullptr when the cell has not been simulated yet.
  const std::vector<ChunkResult>* find_cell(const CoRunKey& key) const {
    const auto it = cells_.find(key);
    return it == cells_.end() ? nullptr : &it->second;
  }
  void insert_cell(const CoRunKey& key, std::vector<ChunkResult> results) {
    cells_.emplace(key, std::move(results));
  }

  std::size_t size() const { return map_.size(); }
  std::size_t cell_count() const { return cells_.size(); }

 private:
  std::unordered_map<ChunkKey, ChunkResult, ChunkKeyHash> map_;
  std::unordered_map<CoRunKey, std::vector<ChunkResult>, CoRunKeyHash> cells_;
};

}  // namespace pcap::sched
