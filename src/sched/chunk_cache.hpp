// Chunk memoization for the cluster power scheduler (DESIGN.md §12).
//
// A chunk is simulated on a FRESH Node + BMC pair, so its result is a pure
// function of (job class, workload identity, enforced cap) — the machine
// and BMC configurations are fixed per scheduler instance and the chunk
// duration is determined by the class, so they are factored out of the key
// by scoping one cache to one ClusterScheduler. Arrival streams with
// repeated (class, cap) cells then replay recorded results bit-exactly
// instead of re-simulating: a hit returns the identical ChunkResult the
// miss recorded, and the schedule it produces is bit-identical to the
// cache-off run (tests/test_scheduler.cpp).
//
// The slot's long-lived node stays on the management plane (DCM/IPMI caps,
// health, idle calibration); only chunk execution moved to pure simulation.
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/bmc.hpp"
#include "sched/job.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::sched {

/// Everything the scheduler consumes from one chunk execution.
struct ChunkResult {
  util::Picoseconds elapsed = 0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
};

/// Full memo key for one chunk simulation within one scheduler instance.
struct ChunkKey {
  JobClass cls = JobClass::kSireLike;
  /// Workload identity: everything make_chunk_workload's output depends on
  /// beyond the class (chunk_identity()).
  std::uint64_t identity = 0;
  /// Bit pattern of the enforced cap in watts; uncapped chunks use the
  /// pattern of -1.0 (caps are strictly positive).
  std::uint64_t cap_bits = std::bit_cast<std::uint64_t>(-1.0);

  static std::uint64_t encode_cap(std::optional<double> cap_w) {
    return std::bit_cast<std::uint64_t>(cap_w.value_or(-1.0));
  }

  bool operator==(const ChunkKey&) const = default;
};

struct ChunkKeyHash {
  std::size_t operator()(const ChunkKey& key) const {
    std::uint64_t h = key.identity;
    h ^= key.cap_bits + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h ^= static_cast<std::uint64_t>(key.cls) + 0x9E3779B97F4A7C15ull +
         (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

/// The part of make_chunk_workload's input its output actually depends on:
/// only kPhased chunks consume the (seed, chunk_index) mixture, so repeated
/// cells of the other classes collapse onto one key per (class, cap).
std::uint64_t chunk_identity(JobClass cls, std::uint64_t seed,
                             int chunk_index);

/// Simulates one chunk as a pure function of the key: a fresh Node (seeded
/// deterministically from `node_seed_material` and the key) with its own
/// BMC enforcing `cap_w` directly — the genuine throttle ladder, minus the
/// IPMI plane the slot's management node already modelled when the cap was
/// applied. Thread-safe by construction (no shared state), so the `--jobs`
/// pool may call it concurrently.
ChunkResult simulate_chunk(const sim::MachineConfig& machine,
                           const core::BmcConfig& bmc_config,
                           const ChunkKey& key, std::uint64_t seed,
                           int chunk_index,
                           std::uint64_t node_seed_material);

/// Unbounded per-scheduler map. Not thread-safe: the scheduler classifies
/// hits and inserts results serially in slot order (jobs-invariance), only
/// the miss simulations fan out.
class ChunkCache {
 public:
  const ChunkResult* find(const ChunkKey& key) const {
    const auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }
  void insert(const ChunkKey& key, const ChunkResult& result) {
    map_.emplace(key, result);
  }
  std::size_t size() const { return map_.size(); }

 private:
  std::unordered_map<ChunkKey, ChunkResult, ChunkKeyHash> map_;
};

}  // namespace pcap::sched
