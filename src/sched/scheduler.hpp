// Amenability-aware cluster power scheduler (DESIGN.md §11, §13).
//
// A rack of simulated nodes — each a full Node + BMC + IPMI endpoint,
// optionally behind a lossy FaultyTransport — is managed by the existing
// DataCenterManager. The scheduler admits a seeded job stream, places jobs
// FIFO onto admitting idle LANES (lane-major: lane 0 of every node before
// lane 1 of any, so one-lane racks reduce to the classic node-order fill),
// and at every event (arrival, chunk completion) asks its Policy how to
// split one group power budget into per-node caps — and, optionally, where
// each queued job should go — which it pushes through the DCM/IPMI plane.
// Job execution is real simulation: a solo chunk runs on a fresh Node
// under whatever cap the BMC is enforcing, and co-resident chunks co-run
// on a fresh SmpNode sharing L3/DRAM under the package-level cap, so
// slowdown under deep caps AND under contention emerges from the modelled
// hierarchy, never from an assumed interference model (DESIGN.md §13).
//
// Invariants (tests/test_scheduler.cpp, tests/test_cosched.cpp):
//  * at every scheduler tick, the summed enforced/reserved node caps never
//    exceed the group budget — including while links drop, duplicate and
//    partition (caps are applied decreases-first, and increases are
//    withheld until every decrease has landed);
//  * a run is bit-identical for a given seed regardless of the `jobs`
//    parallelism knob (worker threads only simulate independent cells)
//    and of the `memo` knob — at any lanes_per_node;
//  * with the budget at/above the rack's uncapped draw, every policy
//    degenerates to the identical unthrottled baseline schedule;
//  * lanes_per_node = 1 reproduces the classic one-job-per-node scheduler
//    bit-exactly.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bmc.hpp"
#include "core/bmc_ipmi_server.hpp"
#include "core/dcm.hpp"
#include "ipmi/transport.hpp"
#include "sched/amenability_table.hpp"
#include "sched/chunk_cache.hpp"
#include "sched/job.hpp"
#include "sched/policy.hpp"
#include "sched/power_model.hpp"
#include "sim/machine_config.hpp"
#include "sim/node.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace_writer.hpp"

namespace pcap::sched {

struct SchedulerConfig {
  std::size_t node_count = 8;
  /// Schedulable lanes (SmpNode cores) per node. 1 = the classic
  /// one-job-per-node rack, bit-identical to the pre-lane scheduler.
  /// Lanes share the node's L3/DRAM and its package-level cap.
  std::size_t lanes_per_node = 1;
  /// Simulated-time interleave quantum for co-run cells (SmpNode).
  util::Picoseconds corun_quantum = util::microseconds(5);
  /// Group power budget (W). Must cover node_count * bmc.min_cap_w.
  double budget_w = 1360.0;
  /// One of policy_names(); ignored when `policy` is set explicitly.
  std::string policy_name = "amenability";
  std::uint64_t seed = 1;
  /// Worker threads for chunk simulation (pure performance knob: results
  /// are bit-identical for any value).
  std::size_t jobs = 1;
  /// Chunk memoization (DESIGN.md §12): chunks are pure functions of
  /// (class, workload identity, enforced cap), so repeated cells replay
  /// recorded results bit-exactly. Pure performance knob — OFF produces a
  /// bit-identical schedule, slower.
  bool memo = true;
  sim::MachineConfig machine = sim::MachineConfig::romley();
  core::BmcConfig bmc;
  core::DcmConfig dcm;
  /// When set, every DCM<->BMC link goes through a FaultyTransport with
  /// this spec (seeded per node from `seed`).
  std::optional<ipmi::FaultSpec> faults;
  /// Measured slowdown curves consumed by model-driven policies; may be
  /// null (policies then fall back to power-only predictions).
  const AmenabilityTable* table = nullptr;
  OnlinePowerModel::Config power_model;
  /// Optional telemetry: decision instants + per-node job spans land in
  /// `trace`; counters/gauges in `registry`. Attaching either must not
  /// change scheduling results.
  telemetry::TraceWriter* trace = nullptr;
  telemetry::Registry* registry = nullptr;
};

/// One replan record: the budget invariant, sampled at every tick.
struct TickRecord {
  double t_s = 0.0;
  double cap_sum_w = 0.0;       // enforced caps + reservations, all nodes
  double reserved_w = 0.0;      // held by unreachable nodes
  double budget_w = 0.0;
  std::size_t queue_depth = 0;
  bool feasible = true;         // policy plan fit the budget
};

struct ScheduleResult {
  std::string policy;
  double budget_w = 0.0;
  std::vector<JobRecord> jobs;     // indexed by JobSpec::id
  std::vector<TickRecord> ticks;

  double makespan_s = 0.0;         // last job finish (from t = 0)
  double busy_energy_j = 0.0;      // chunk execution energy
  double idle_energy_j = 0.0;      // idle/parked node energy to makespan
  double total_energy_j = 0.0;
  int deadline_misses = 0;
  double mean_turnaround_s = 0.0;  // finish - arrival, averaged

  std::uint64_t replans = 0;
  std::uint64_t cap_updates = 0;       // IPMI set-cap exchanges that landed
  std::uint64_t cap_update_failures = 0;
  std::uint64_t infeasible_plans = 0;  // plan rejected, previous caps kept
  std::uint64_t forced_admissions = 0;
  std::uint64_t budget_violations = 0;  // ticks with cap_sum > budget (0!)
  std::uint64_t chunks = 0;
  std::uint64_t memo_hits = 0;    // chunks replayed from the memo cache
  std::uint64_t memo_misses = 0;  // chunks simulated (and recorded)
  std::uint64_t corun_chunks = 0;  // chunks that ran with >=1 co-resident
  std::uint64_t corun_cells = 0;   // distinct co-run cells simulated
  double max_cap_sum_w = 0.0;

  // Management-plane cost (summed over nodes).
  std::uint64_t mgmt_retries = 0;
  std::uint64_t mgmt_failed_exchanges = 0;
};

class ClusterScheduler {
 public:
  explicit ClusterScheduler(const SchedulerConfig& config);
  ~ClusterScheduler();

  ClusterScheduler(const ClusterScheduler&) = delete;
  ClusterScheduler& operator=(const ClusterScheduler&) = delete;

  /// Runs the stream to completion and returns the schedule. May be called
  /// once per scheduler instance (nodes are consumed by the run).
  ScheduleResult run(const std::vector<JobSpec>& stream);

  /// The management plane (for fault injection / health inspection).
  core::DataCenterManager& dcm() { return dcm_; }
  /// Fault decorator for slot `i` (nullptr when faults are off).
  ipmi::FaultyTransport* fault_link(std::size_t i);
  /// Per-node measured idle draw (used for idle-energy accounting).
  double idle_power_w(std::size_t i) const;

 private:
  struct Slot;

  bool apply_caps(const std::vector<double>& target_w,
                  const std::vector<bool>& available, ScheduleResult& result);
  double applied_cap_sum(double* reserved_w) const;

  SchedulerConfig config_;
  ChunkCache chunk_cache_;
  std::unique_ptr<Policy> policy_;
  OnlinePowerModel model_;
  core::DataCenterManager dcm_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::uint32_t trace_track_ = 0;
  std::vector<std::uint32_t> node_tracks_;
  telemetry::CounterHandle ctr_replans_{}, ctr_chunks_{}, ctr_completed_{},
      ctr_misses_{}, ctr_cap_updates_{};
  telemetry::GaugeHandle gauge_cap_sum_{}, gauge_queue_{};
};

}  // namespace pcap::sched
