// Workload interface: applications perform their real computation on host
// memory while narrating loads/stores/compute to the simulator through an
// ExecutionContext, which prices every operation on the simulated machine.
//
// Workloads come in two flavours for the cooperative SMP engine:
//  * steppable workloads override supports_step()/begin_steps()/step() and
//    advance in bounded simulated-time budgets, letting the engine resume
//    them as plain function calls;
//  * monolithic workloads only implement run(); the engine suspends them at
//    quantum boundaries via a stackful continuation (util::Fiber) instead.
// Both drive the identical priced-op sequence, so the interleaving a
// quantum budget induces is bit-identical either way
// (tests/test_smp_equivalence.cpp).
#pragma once

#include <stdexcept>
#include <string>

#include "util/units.hpp"

namespace pcap::sim {

class ExecutionContext;

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  virtual void run(ExecutionContext& ctx) = 0;

  /// True when this workload can be driven through begin_steps()/step()
  /// instead of a single monolithic run() call.
  virtual bool supports_step() const { return false; }

  /// Resets stepping state; called once before the first step() of a run.
  virtual void begin_steps() {}

  /// Advances the workload until ctx.now() reaches `budget` or the work is
  /// complete, whichever comes first (the op that crosses the budget
  /// completes — budgets bound resume points, they never split an op).
  /// Returns true when the workload has finished.
  virtual bool step(ExecutionContext& ctx, util::Picoseconds budget) {
    (void)ctx;
    (void)budget;
    throw std::logic_error(name() + ": step() called without supports_step()");
  }
};

}  // namespace pcap::sim
