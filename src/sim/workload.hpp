// Workload interface: applications perform their real computation on host
// memory while narrating loads/stores/compute to the simulator through an
// ExecutionContext, which prices every operation on the simulated machine.
#pragma once

#include <string>

namespace pcap::sim {

class ExecutionContext;

class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  virtual void run(ExecutionContext& ctx) = 0;
};

}  // namespace pcap::sim
