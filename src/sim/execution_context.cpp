#include "sim/execution_context.hpp"

#include "sim/node.hpp"

namespace pcap::sim {

namespace {
constexpr Address kDataBase = 0x1'0000'0000ull;  // simulated heap
constexpr Address kCodeBase = 0x0040'0000ull;    // simulated text segment
constexpr Address kCodeRegionStride = 0x0100'0000ull;  // 16 MB per region
constexpr Address kSpaceStride = 0x100'0000'0000ull;   // 1 TB per core
}  // namespace

ExecutionContext::ExecutionContext(MemoryHierarchy& hierarchy, CoreModel& core,
                                   TickSink& sink, const MachineConfig& config,
                                   std::uint32_t address_space)
    : hierarchy_(&hierarchy),
      core_(&core),
      sink_(&sink),
      space_offset_(static_cast<Address>(address_space) * kSpaceStride),
      data_break_(kDataBase + space_offset_),
      code_base_(kCodeBase + space_offset_),
      fetch_ptr_(code_base_),
      ins_per_fetch_(config.core.ins_per_fetch),
      line_bytes_(config.hierarchy.l1i.line_bytes),
      l1_hit_cycles_(config.hierarchy.l1_hit_cycles) {}

ExecutionContext::ExecutionContext(Node& node)
    : ExecutionContext(node.hierarchy(), node.core(), node, node.config()) {}

Address ExecutionContext::alloc(std::uint64_t bytes, std::string_view label) {
  (void)label;
  const Address base = data_break_;
  const std::uint64_t aligned = (bytes + 63) & ~63ull;
  data_break_ += aligned;
  return base;
}

void ExecutionContext::set_code_footprint(std::uint32_t region,
                                          std::uint32_t pages) {
  if (pages == 0) pages = 1;
  code_pages_ = pages;
  code_base_ = kCodeBase + space_offset_ +
               static_cast<Address>(region) * kCodeRegionStride;
  fetch_ptr_ = code_base_;
}

void ExecutionContext::retire_fetches(std::uint64_t committed) {
  fetch_accum_ += committed;
  const std::uint64_t fetches = fetch_accum_ / ins_per_fetch_;
  if (fetches == 0) return;
  fetch_accum_ %= ins_per_fetch_;
  const Address span = static_cast<Address>(code_pages_) * 4096ull;
  for (std::uint64_t i = 0; i < fetches; ++i) {
    const AccessLatency lat =
        hierarchy_->access(fetch_ptr_, AccessType::kFetch);
    core_->fetch_op(lat, l1_hit_cycles_);
    fetch_ptr_ += line_bytes_;
    if (fetch_ptr_ >= code_base_ + span) fetch_ptr_ = code_base_;
  }
}

void ExecutionContext::load(Address addr) {
  const AccessLatency lat = hierarchy_->access(addr, AccessType::kLoad);
  core_->memory_op(lat, /*is_store=*/false);
  retire_fetches(1);
  sink_->on_op();
}

void ExecutionContext::store(Address addr) {
  const AccessLatency lat = hierarchy_->access(addr, AccessType::kStore);
  core_->memory_op(lat, /*is_store=*/true);
  retire_fetches(1);
  sink_->on_op();
}

void ExecutionContext::compute(std::uint64_t uops) {
  core_->compute(uops);
  retire_fetches(uops);
  sink_->on_op();
}

}  // namespace pcap::sim
