#include "sim/execution_context.hpp"

#include "sim/node.hpp"

namespace pcap::sim {

namespace {
constexpr Address kDataBase = 0x1'0000'0000ull;  // simulated heap
constexpr Address kCodeBase = 0x0040'0000ull;    // simulated text segment
constexpr Address kCodeRegionStride = 0x0100'0000ull;  // 16 MB per region
constexpr Address kSpaceStride = 0x100'0000'0000ull;   // 1 TB per core
}  // namespace

ExecutionContext::ExecutionContext(MemoryHierarchy& hierarchy, CoreModel& core,
                                   TickSink& sink, const MachineConfig& config,
                                   std::uint32_t address_space)
    : hierarchy_(&hierarchy),
      core_(&core),
      sink_(&sink),
      space_offset_(static_cast<Address>(address_space) * kSpaceStride),
      data_break_(kDataBase + space_offset_),
      code_base_(kCodeBase + space_offset_),
      fetch_ptr_(code_base_),
      ins_per_fetch_(config.core.ins_per_fetch),
      line_bytes_(config.hierarchy.l1i.line_bytes),
      data_line_bytes_(config.hierarchy.l1d.line_bytes),
      l1_hit_cycles_(config.hierarchy.l1_hit_cycles),
      mispredict_penalty_cycles_(config.core.mispredict_penalty_cycles) {}

ExecutionContext::ExecutionContext(Node& node)
    : ExecutionContext(node.hierarchy(), node.core(), node, node.config()) {}

Address ExecutionContext::alloc(std::uint64_t bytes, std::string_view label) {
  (void)label;
  const Address base = data_break_;
  const std::uint64_t aligned = (bytes + 63) & ~63ull;
  data_break_ += aligned;
  return base;
}

void ExecutionContext::set_code_footprint(std::uint32_t region,
                                          std::uint32_t pages) {
  if (pages == 0) pages = 1;
  code_pages_ = pages;
  code_base_ = kCodeBase + space_offset_ +
               static_cast<Address>(region) * kCodeRegionStride;
  fetch_ptr_ = code_base_;
}

void ExecutionContext::retire_fetches(std::uint64_t committed) {
  fetch_accum_ += committed;
  const std::uint64_t fetches = fetch_accum_ / ins_per_fetch_;
  if (fetches == 0) return;
  fetch_accum_ %= ins_per_fetch_;
  const Address span = static_cast<Address>(code_pages_) * 4096ull;
  for (std::uint64_t i = 0; i < fetches; ++i) {
    const AccessLatency lat =
        hierarchy_->access(fetch_ptr_, AccessType::kFetch);
    core_->fetch_op(lat, l1_hit_cycles_);
    fetch_ptr_ += line_bytes_;
    if (fetch_ptr_ >= code_base_ + span) fetch_ptr_ = code_base_;
  }
}

void ExecutionContext::load(Address addr) {
  const AccessLatency lat = hierarchy_->access(addr, AccessType::kLoad);
  core_->memory_op(lat, /*is_store=*/false);
  retire_fetches(1);
  sink_->on_op();
}

void ExecutionContext::store(Address addr) {
  const AccessLatency lat = hierarchy_->access(addr, AccessType::kStore);
  core_->memory_op(lat, /*is_store=*/true);
  retire_fetches(1);
  sink_->on_op();
}

void ExecutionContext::compute(std::uint64_t uops) {
  core_->compute(uops);
  retire_fetches(uops);
  sink_->on_op();
}

namespace {
// How many of addr+stride, addr+2*stride, ... (at most `remaining`) stay on
// the cache line holding addr.
std::uint64_t same_line_run(Address addr, std::int64_t stride,
                            std::uint64_t remaining,
                            std::uint32_t line_bytes) {
  if (remaining == 0) return 0;
  if (stride == 0) return remaining;
  const Address offset = addr & (line_bytes - 1);
  std::uint64_t room;
  if (stride > 0) {
    room = (line_bytes - 1 - offset) / static_cast<std::uint64_t>(stride);
  } else {
    room = offset / static_cast<std::uint64_t>(-stride);
  }
  return room < remaining ? room : remaining;
}
}  // namespace

void ExecutionContext::unit_stream(Address base, std::int64_t stride,
                                   std::uint64_t count, bool is_store) {
  const AccessType type = is_store ? AccessType::kStore : AccessType::kLoad;
  Address addr = base;
  std::uint64_t i = 0;
  while (i < count) {
    // Lead op of each line: the full-fidelity path (may miss anywhere).
    if (is_store) {
      store(addr);
    } else {
      load(addr);
    }
    ++i;
    std::uint64_t run = same_line_run(addr, stride, count - i,
                                      data_line_bytes_);
    addr += static_cast<Address>(stride);
    while (run > 0) {
      // A bulk sub-run may elide per-op sink calls only while every op is
      // guaranteed to finish before the sink's horizon, and must stop at
      // the next I-fetch boundary so fetches fire in their exact slots.
      const util::Picoseconds horizon = sink_->op_horizon();
      const util::Picoseconds now = core_->now();
      std::uint64_t n = 0;
      if (horizon > now) {
        // Conservative per-op time bound: an L1 hit plus a possible
        // mispredict penalty, duty-inflated, rounded up.
        const util::Picoseconds period =
            util::cycle_period(core_->frequency());
        const auto ub_ps =
            static_cast<util::Picoseconds>(
                static_cast<double>(
                    (l1_hit_cycles_ + mispredict_penalty_cycles_) * period) /
                core_->duty()) +
            3;
        n = (horizon - now) / ub_ps;
      }
      const std::uint64_t to_fetch = ins_per_fetch_ - fetch_accum_;
      if (n > to_fetch) n = to_fetch;
      if (n > run) n = run;
      AccessLatency rep;
      if (n < 2 || !hierarchy_->try_fast_repeat(addr, type, n, rep)) {
        // Horizon too close, fetch due, or no provable hit: one op at full
        // fidelity, then retry the remainder of the run.
        if (is_store) {
          store(addr);
        } else {
          load(addr);
        }
        ++i;
        --run;
        addr += static_cast<Address>(stride);
        continue;
      }
      core_->memory_op_repeat(rep, is_store, n);
      retire_fetches(n);
      sink_->on_op();
      i += n;
      run -= n;
      addr += static_cast<Address>(stride) * n;
    }
  }
}

void ExecutionContext::load_stream(Address base, std::int64_t stride,
                                   std::uint64_t count) {
  unit_stream(base, stride, count, /*is_store=*/false);
}

void ExecutionContext::store_stream(Address base, std::int64_t stride,
                                    std::uint64_t count) {
  unit_stream(base, stride, count, /*is_store=*/true);
}

void ExecutionContext::pattern_stream(std::span<const StreamOp> ops,
                                      std::int64_t stride, std::uint64_t count,
                                      std::uint64_t uops) {
  if (ops.size() == 1 && uops == 0) {
    unit_stream(ops[0].base, stride, count,
                ops[0].kind == StreamOp::Kind::kStore);
    return;
  }
  Address offset = 0;
  for (std::uint64_t k = 0; k < count;
       ++k, offset += static_cast<Address>(stride)) {
    // The sink call is elided while the clock provably stays below the
    // horizon (on_op() would be a no-op there); once an op reaches it, the
    // call happens in exactly the per-op slot it would have originally.
    util::Picoseconds horizon = sink_->op_horizon();
    for (const StreamOp& op : ops) {
      const bool is_store = op.kind == StreamOp::Kind::kStore;
      const AccessLatency lat = hierarchy_->access(
          op.base + offset, is_store ? AccessType::kStore : AccessType::kLoad);
      core_->memory_op(lat, is_store);
      retire_fetches(1);
      if (core_->now() >= horizon) {
        sink_->on_op();
        horizon = 0;  // a tick may have moved it; stay exact for the rest
      }
    }
    if (uops != 0) {
      core_->compute(uops);
      retire_fetches(uops);
      if (core_->now() >= horizon) sink_->on_op();
    }
  }
}

void ExecutionContext::rmw_stream(Address base, std::int64_t stride,
                                  std::uint64_t count, std::uint64_t uops) {
  // Per element: load(addr); store(addr); compute(uops) when uops != 0.
  // Elements whose address stays on one line bulk through rmw_repeat under
  // the same constraints as unit_stream: no I-fetch may fire inside a bulk
  // group (so groups span at most ins_per_fetch_ committed instructions)
  // and every elided sink call must provably be a no-op (horizon bound).
  const std::uint64_t ins_per_elem = 2 + uops;
  Address addr = base;
  std::uint64_t k = 0;
  while (k < count) {
    load(addr);
    store(addr);
    if (uops != 0) compute(uops);
    ++k;
    std::uint64_t run = same_line_run(addr, stride, count - k,
                                      data_line_bytes_);
    addr += static_cast<Address>(stride);
    while (run > 0) {
      const util::Picoseconds horizon = sink_->op_horizon();
      const util::Picoseconds now = core_->now();
      std::uint64_t n = 0;
      if (horizon > now) {
        // Conservative per-element bound: two L1 hits, the compute cycles,
        // and a mispredict penalty for every committed instruction.
        const util::Picoseconds period =
            util::cycle_period(core_->frequency());
        const double cycles_ub =
            2.0 * l1_hit_cycles_ +
            static_cast<double>(uops) / core_->config().base_ipc + 1.0 +
            static_cast<double>((2 + uops) * mispredict_penalty_cycles_);
        const auto ub_ps = static_cast<util::Picoseconds>(
                               cycles_ub * static_cast<double>(period) /
                               core_->duty()) +
                           8;
        n = (horizon - now) / ub_ps;
      }
      const std::uint64_t fit =
          (ins_per_fetch_ - fetch_accum_) / ins_per_elem;
      if (n > fit) n = fit;
      if (n > run) n = run;
      AccessLatency load_lat;
      if (n < 2 ||
          !hierarchy_->try_fast_repeat(addr, AccessType::kLoad, n, load_lat)) {
        load(addr);
        store(addr);
        if (uops != 0) compute(uops);
        ++k;
        --run;
        addr += static_cast<Address>(stride);
        continue;
      }
      // The stores target the line the loads just proved MRU-resident, so
      // this cannot fail and the pair accounts exactly like the interleaved
      // per-op sequence (all hierarchy-level accounting is commutative
      // integer arithmetic).
      AccessLatency store_lat;
      const bool ok =
          hierarchy_->try_fast_repeat(addr, AccessType::kStore, n, store_lat);
      (void)ok;
      core_->rmw_repeat(load_lat, store_lat, uops, n);
      retire_fetches(n * ins_per_elem);
      sink_->on_op();
      k += n;
      run -= n;
      addr += static_cast<Address>(stride) * n;
    }
  }
}

}  // namespace pcap::sim
