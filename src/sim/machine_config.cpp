#include "sim/machine_config.hpp"

namespace pcap::sim {

MachineConfig MachineConfig::romley() {
  MachineConfig m;

  m.hierarchy.l1i = {.name = "L1I",
                     .size_bytes = 32 * 1024,
                     .line_bytes = 64,
                     .ways = 8,
                     .write_allocate = false};
  m.hierarchy.l1d = {.name = "L1D",
                     .size_bytes = 32 * 1024,
                     .line_bytes = 64,
                     .ways = 8,
                     .write_allocate = true};
  m.hierarchy.l2 = {.name = "L2",
                    .size_bytes = 256 * 1024,
                    .line_bytes = 64,
                    .ways = 8,
                    .write_allocate = true};
  m.hierarchy.l3 = {.name = "L3",
                    .size_bytes = 20 * 1024 * 1024,
                    .line_bytes = 64,
                    .ways = 20,
                    .write_allocate = true};
  m.hierarchy.itlb = {.name = "ITLB", .entries = 48, .page_bytes = 4096};
  m.hierarchy.dtlb = {.name = "DTLB", .entries = 64, .page_bytes = 4096};
  m.hierarchy.dram = mem::DramConfig{};

  // NodePowerConfig / ThermalConfig / CoreTimingConfig defaults are already
  // calibrated against the paper's operating points (see power/model.hpp).
  return m;
}

}  // namespace pcap::sim
