#include "sim/core_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcap::sim {

using pmu::Event;

CoreModel::CoreModel(const CoreTimingConfig& config,
                     const power::PStateTable& pstates,
                     pmu::CounterBank& bank)
    : config_(config), pstates_(&pstates), bank_(&bank) {}

void CoreModel::set_pstate(std::uint32_t index) {
  if (index >= pstates_->size()) {
    throw std::out_of_range("CoreModel::set_pstate: bad index");
  }
  pstate_ = index;
}

const power::PState& CoreModel::pstate_info() const {
  return pstates_->state(pstate_);
}

void CoreModel::set_duty(double duty) {
  duty_ = std::clamp(duty, kMinDuty, 1.0);
}

void CoreModel::charge(std::uint64_t cycles, util::Picoseconds fixed_ps) {
  const util::Picoseconds period = util::cycle_period(frequency());
  const double raw_ps =
      static_cast<double>(cycles) * static_cast<double>(period) +
      static_cast<double>(fixed_ps);
  // Clock modulation: retire progresses only during the duty-on fraction.
  const double scaled = raw_ps / duty_ + time_carry_ps_;
  const auto whole = static_cast<util::Picoseconds>(scaled);
  time_carry_ps_ = scaled - static_cast<double>(whole);
  now_ += whole;
  // TOT_CYC counts the cycles the work occupied (stall cycles included, as
  // "cycle count * clock speed = execution time" in the paper's method).
  bank_->add(Event::kTotCyc, cycles + fixed_ps / period);
  if (fixed_ps != 0) bank_->add(Event::kStallCyc, fixed_ps / period);
}

void CoreModel::speculate(std::uint64_t uops) {
  branch_carry_ += static_cast<double>(uops) * config_.branch_fraction;
  const auto branches = static_cast<std::uint64_t>(branch_carry_);
  branch_carry_ -= static_cast<double>(branches);
  if (branches == 0) return;
  bank_->add(Event::kBrIns, branches);

  mispredict_carry_ +=
      static_cast<double>(branches) * config_.mispredict_rate;
  const auto mispredicts = static_cast<std::uint64_t>(mispredict_carry_);
  mispredict_carry_ -= static_cast<double>(mispredicts);
  if (mispredicts == 0) return;
  bank_->add(Event::kBrMsp, mispredicts);
  bank_->add(Event::kInsExec, mispredicts * config_.mispredict_replay_uops);
  charge(mispredicts * config_.mispredict_penalty_cycles, 0);
}

void CoreModel::compute(std::uint64_t uops) {
  bank_->add(Event::kTotIns, uops);
  bank_->add(Event::kInsExec, uops);
  const double cycles_f =
      static_cast<double>(uops) / config_.base_ipc + cycle_carry_;
  const auto cycles = static_cast<std::uint64_t>(cycles_f);
  cycle_carry_ = cycles_f - static_cast<double>(cycles);
  charge(cycles, 0);
  speculate(uops);
}

void CoreModel::memory_op(const AccessLatency& lat, bool is_store) {
  bank_->add(Event::kTotIns);
  bank_->add(Event::kInsExec);
  bank_->add(is_store ? Event::kSrIns : Event::kLdIns);
  charge(lat.cycles, lat.fixed_ps);
  speculate(1);
}

void CoreModel::memory_op_repeat(const AccessLatency& lat, bool is_store,
                                 std::uint64_t n) {
  if (n == 0) return;
  bank_->add(Event::kTotIns, n);
  bank_->add(Event::kInsExec, n);
  bank_->add(is_store ? Event::kSrIns : Event::kLdIns, n);
  const util::Picoseconds period = util::cycle_period(frequency());
  const double raw_ps =
      static_cast<double>(lat.cycles) * static_cast<double>(period) +
      static_cast<double>(lat.fixed_ps);
  // charge() computes fl(fl(raw_ps / duty) + carry); raw_ps and duty are
  // constant across the repeats, so hoisting the division preserves the
  // exact floating-point sequence.
  const double per = raw_ps / duty_;
  bank_->add(Event::kTotCyc, n * (lat.cycles + lat.fixed_ps / period));
  if (lat.fixed_ps != 0) {
    bank_->add(Event::kStallCyc, n * (lat.fixed_ps / period));
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    advance_scaled(per);
    speculate(1);
  }
}

void CoreModel::rmw_repeat(const AccessLatency& load_lat,
                           const AccessLatency& store_lat, std::uint64_t uops,
                           std::uint64_t n) {
  if (n == 0) return;
  bank_->add(Event::kTotIns, n * (2 + uops));
  bank_->add(Event::kInsExec, n * (2 + uops));
  bank_->add(Event::kLdIns, n);
  bank_->add(Event::kSrIns, n);
  const util::Picoseconds period = util::cycle_period(frequency());
  // Hoisting the duty division out of the loop preserves charge()'s exact
  // float sequence because the inputs are constant (see memory_op_repeat).
  const double per_load =
      (static_cast<double>(load_lat.cycles) * static_cast<double>(period) +
       static_cast<double>(load_lat.fixed_ps)) /
      duty_;
  const double per_store =
      (static_cast<double>(store_lat.cycles) * static_cast<double>(period) +
       static_cast<double>(store_lat.fixed_ps)) /
      duty_;
  // Integer cycle counters commute, so the memory ops' contributions bulk;
  // compute cycles vary per element (cycle_carry_) and accrue in the loop.
  bank_->add(Event::kTotCyc,
             n * (load_lat.cycles + load_lat.fixed_ps / period +
                  store_lat.cycles + store_lat.fixed_ps / period));
  const std::uint64_t stall_cycles =
      load_lat.fixed_ps / period + store_lat.fixed_ps / period;
  if (stall_cycles != 0) bank_->add(Event::kStallCyc, n * stall_cycles);
  for (std::uint64_t i = 0; i < n; ++i) {
    advance_scaled(per_load);
    speculate(1);
    advance_scaled(per_store);
    speculate(1);
    if (uops != 0) {
      // compute(uops) replayed: identical cycle-carry and charge() math,
      // only the (bulked) counter adds pulled out.
      const double cycles_f =
          static_cast<double>(uops) / config_.base_ipc + cycle_carry_;
      const auto cycles = static_cast<std::uint64_t>(cycles_f);
      cycle_carry_ = cycles_f - static_cast<double>(cycles);
      advance_scaled(static_cast<double>(cycles) *
                     static_cast<double>(period) / duty_);
      bank_->add(Event::kTotCyc, cycles);
      speculate(uops);
    }
  }
}

void CoreModel::fetch_op(const AccessLatency& lat, std::uint32_t l1_hit_cycles) {
  // An L1I hit overlaps with decode; only the excess stalls the front end.
  const std::uint64_t stall =
      lat.cycles > l1_hit_cycles ? lat.cycles - l1_hit_cycles : 0;
  if (stall != 0 || lat.fixed_ps != 0) charge(stall, lat.fixed_ps);
}

void CoreModel::external_drain() {
  bank_->add(Event::kInsExec, config_.noise_replay_uops);
  charge(config_.noise_replay_uops, 0);
}

}  // namespace pcap::sim
