#include "sim/hierarchy.hpp"

namespace pcap::sim {

using pmu::Event;

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config,
                                 pmu::CounterBank& bank)
    : config_(config),
      bank_(bank),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      owned_l3_(std::make_unique<cache::Cache>(config.l3)),
      owned_dram_(std::make_unique<mem::Dram>(config.dram)),
      l3_(owned_l3_.get()),
      dram_(owned_dram_.get()) {}

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig& config,
                                 pmu::CounterBank& bank,
                                 cache::Cache& shared_l3,
                                 mem::Dram& shared_dram)
    : config_(config),
      bank_(bank),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      itlb_(config.itlb),
      dtlb_(config.dtlb),
      l3_(&shared_l3),
      dram_(&shared_dram) {}

void MemoryHierarchy::back_invalidate(Address line) {
  l2_.invalidate(line);
  l1d_.invalidate(line);
  l1i_.invalidate(line);
}

bool MemoryHierarchy::try_fast_repeat(Address addr, AccessType type,
                                      std::uint64_t n, AccessLatency& lat) {
  const bool is_fetch = type == AccessType::kFetch;
  cache::Cache& l1 = is_fetch ? l1i_ : l1d_;
  if (!l1.is_mru_hit(addr)) return false;
  cache::Tlb& tlb = is_fetch ? itlb_ : dtlb_;
  if (!tlb.note_hits(addr, n)) return false;
  const bool is_store = type == AccessType::kStore;
  l1.note_mru_hits(addr, is_store, n);
  bank_.add(is_fetch ? Event::kL1Ica : Event::kL1Dca, n);
  lat.cycles = is_store ? 1 : config_.l1_hit_cycles;
  lat.fixed_ps = 0;
  return true;
}

std::uint64_t MemoryHierarchy::same_line_run(Address addr, std::int64_t stride,
                                             std::uint64_t remaining,
                                             std::uint32_t line_bytes) {
  if (remaining == 0) return 0;
  if (stride == 0) return remaining;
  const Address offset = addr & (line_bytes - 1);
  std::uint64_t room;
  if (stride > 0) {
    room = (line_bytes - 1 - offset) / static_cast<std::uint64_t>(stride);
  } else {
    room = offset / static_cast<std::uint64_t>(-stride);
  }
  return room < remaining ? room : remaining;
}

StreamLatency MemoryHierarchy::access_stream(Address base, std::int64_t stride,
                                             std::uint64_t count,
                                             AccessType type) {
  StreamLatency total;
  const std::uint32_t line_bytes = (type == AccessType::kFetch)
                                       ? l1i_.config().line_bytes
                                       : l1d_.config().line_bytes;

  Address addr = base;
  std::uint64_t i = 0;
  while (i < count) {
    // Leading access on each line takes the full path (it may miss, fill,
    // evict, prefetch, ...). The rest of the line's run is then a provable
    // MRU repeat unless the lead did not allocate (no-write-allocate miss).
    total.add(access(addr, type));
    ++i;
    std::uint64_t run = same_line_run(addr, stride, count - i, line_bytes);
    addr += static_cast<Address>(stride);
    while (run > 0) {
      AccessLatency rep;
      if (try_fast_repeat(addr, type, run, rep)) {
        total.cycles += run * rep.cycles;  // rep.fixed_ps is always 0
        i += run;
        addr += static_cast<Address>(stride) * run;
        run = 0;
      } else {
        total.add(access(addr, type));
        ++i;
        --run;
        addr += static_cast<Address>(stride);
      }
    }
  }
  return total;
}

AccessLatency MemoryHierarchy::access(Address addr, AccessType type) {
  AccessLatency lat;
  if (try_fast_access(addr, type, lat)) return lat;
  const bool is_fetch = type == AccessType::kFetch;
  const bool is_store = type == AccessType::kStore;

  // Address translation.
  if (is_fetch) {
    if (!itlb_.lookup(addr)) {
      bank_.add(Event::kTlbIm);
      lat.cycles += config_.tlb_walk_cycles;
    }
  } else {
    if (!dtlb_.lookup(addr)) {
      bank_.add(Event::kTlbDm);
      lat.cycles += config_.tlb_walk_cycles;
    }
  }

  // First level.
  cache::Cache& l1 = is_fetch ? l1i_ : l1d_;
  bank_.add(is_fetch ? Event::kL1Ica : Event::kL1Dca);
  const std::uint64_t walk_cycles = lat.cycles;
  lat.cycles += config_.l1_hit_cycles;
  if (l1.access(addr, is_store).hit) {
    // Stores to resident lines drain through the store buffer off the
    // critical path: retire costs a single cycle (plus any walk).
    if (is_store) lat.cycles = walk_cycles + 1;
    return lat;
  }
  bank_.add(is_fetch ? Event::kL1Icm : Event::kL1Dcm);

  // Unified L2.
  bank_.add(Event::kL2Tca);
  lat.cycles += config_.l2_extra_cycles;
  if (l2_.access(addr, is_store).hit) return lat;
  bank_.add(Event::kL2Tcm);

  // Shared inclusive L3.
  bank_.add(Event::kL3Tca);
  lat.cycles += config_.l3_extra_cycles;
  const auto l3_outcome = l3_->access(addr, is_store);
  if (l3_outcome.evicted_line) back_invalidate(*l3_outcome.evicted_line);
  if (l3_outcome.hit) return lat;
  bank_.add(Event::kL3Tcm);

  // Memory.
  bank_.add(Event::kDramAcc);
  lat.fixed_ps += dram_->access(l3_->line_base(addr));

  // Next-line prefetch: pulled in off the critical path (no latency charge
  // to the triggering access), but the fills are architecturally real --
  // they occupy L2/L3 ways and their DRAM traffic is power-visible.
  if (config_.prefetch_enabled && !is_fetch) {
    const Address line = l3_->line_base(addr);
    for (std::uint32_t i = 1; i <= config_.prefetch_depth; ++i) {
      const Address next =
          line + static_cast<Address>(i) * config_.l3.line_bytes;
      if (l2_.contains(next)) continue;
      bank_.add(Event::kL2Pf);
      if (!l3_->contains(next)) {
        bank_.add(Event::kDramAcc);
        dram_->access(next);  // row-buffer state advances; latency hidden
        const auto outcome = l3_->access(next, false);
        if (outcome.evicted_line) back_invalidate(*outcome.evicted_line);
      }
      l2_.access(next, false);
    }
  }
  return lat;
}

void MemoryHierarchy::set_l3_ways(std::uint32_t n) {
  if (n < l3_->active_ways()) {
    // The reconfiguration drops inclusive lines; conservatively flush the
    // inner levels so inclusion holds (models the reconfig disruption).
    l3_->set_active_ways(n);
    l2_.flush_all();
    l1d_.flush_all();
    l1i_.flush_all();
  } else {
    l3_->set_active_ways(n);
  }
}

void MemoryHierarchy::set_l2_ways(std::uint32_t n) { l2_.set_active_ways(n); }

void MemoryHierarchy::flush_tlbs() {
  itlb_.flush();
  dtlb_.flush();
}

void MemoryHierarchy::flush_private() {
  l1i_.flush_all();
  l1d_.flush_all();
  l2_.flush_all();
}

void MemoryHierarchy::flush_caches() {
  l1i_.flush_all();
  l1d_.flush_all();
  l2_.flush_all();
  l3_->flush_all();
}

}  // namespace pcap::sim
