// Composed memory hierarchy: ITLB/DTLB -> L1I/L1D -> unified L2 -> inclusive
// shared L3 -> DRAM, with PMU accounting and the gating hooks the BMC's
// escalation ladder drives.
#pragma once

#include <cstdint>
#include <memory>

#include "cache/cache.hpp"
#include "cache/tlb.hpp"
#include "mem/dram.hpp"
#include "pmu/counters.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::sim {

using Address = cache::Address;

enum class AccessType { kLoad, kStore, kFetch };

/// Cost of one access: core cycles (scale with the core clock) plus a
/// wall-clock component (DRAM, which does not scale with DVFS).
struct AccessLatency {
  std::uint64_t cycles = 0;
  util::Picoseconds fixed_ps = 0;
};

/// Summed cost of a batched access stream. Cycles and wall-clock picoseconds
/// are both integers, so the batched sum is exactly the per-access sum.
struct StreamLatency {
  std::uint64_t cycles = 0;
  util::Picoseconds fixed_ps = 0;
  void add(const AccessLatency& lat) {
    cycles += lat.cycles;
    fixed_ps += lat.fixed_ps;
  }
};

class MemoryHierarchy {
 public:
  /// Full node hierarchy: owns every level including L3 and DRAM.
  MemoryHierarchy(const HierarchyConfig& config, pmu::CounterBank& bank);

  /// Per-core hierarchy for SMP composition: owns the core-private levels
  /// (L1I/L1D/L2/TLBs) but shares `l3` and `dram` with sibling cores. The
  /// shared structures must outlive this object.
  MemoryHierarchy(const HierarchyConfig& config, pmu::CounterBank& bank,
                  cache::Cache& shared_l3, mem::Dram& shared_dram);

  /// Performs one access, updating caches/TLBs and the counter bank.
  AccessLatency access(Address addr, AccessType type);

  /// Exactly equivalent to `count` calls of `access(base + i*stride, type)`
  /// for i in [0, count): identical PMU counts, identical structural stats,
  /// identical summed latency. Consecutive accesses that provably hit the
  /// L1's MRU line (and the matching TLB entry) are accounted analytically
  /// instead of being replayed one by one.
  ///
  /// Single-owner form: the whole stream is priced as one uninterrupted
  /// burst, so only callers that own the hierarchy for the stream's full
  /// duration (single-core Node, benchmarks) may use it. SMP lanes instead
  /// batch through ExecutionContext's streams, whose bulk groups truncate
  /// at the lane's quantum horizon (DESIGN.md §12).
  StreamLatency access_stream(Address base, std::int64_t stride,
                              std::uint64_t count, AccessType type);

  /// Single-access fast path: when `addr` is a provable TLB hit plus L1 MRU
  /// hit, accounts the access fully (PMU and structural stats) and returns
  /// true with `lat` filled; otherwise accounts nothing and returns false,
  /// and the caller must take the full access() path.
  bool try_fast_access(Address addr, AccessType type, AccessLatency& lat) {
    return try_fast_repeat(addr, type, 1, lat);
  }

  /// Bulk form: accounts `n` back-to-back accesses to `addr`'s line under
  /// the same provable-hit precondition, with `lat` the (identical)
  /// per-access latency. Accounts nothing and returns false otherwise.
  ///
  /// SMP legality: the provable-hit precondition and the accounting touch
  /// only core-private state (L1 MRU way, the matching TLB entry, this
  /// core's counter bank) — never the shared L3 or a DRAM row buffer. A
  /// bulk group can therefore never elide an interference point a
  /// co-runner could observe: any access that would reach the shared
  /// levels fails the precondition and takes the full access() path.
  bool try_fast_repeat(Address addr, AccessType type, std::uint64_t n,
                       AccessLatency& lat);

  // --- gating actuators (BMC escalation ladder) ---
  void set_l3_ways(std::uint32_t n);
  void set_l2_ways(std::uint32_t n);
  void set_itlb_entries(std::uint32_t n) { itlb_.set_active_entries(n); }
  void set_dtlb_entries(std::uint32_t n) { dtlb_.set_active_entries(n); }
  void set_dram_gated(bool gated) { dram_->set_gated(gated); }

  std::uint32_t l3_ways() const { return l3_->active_ways(); }
  std::uint32_t l2_ways() const { return l2_.active_ways(); }
  std::uint32_t itlb_entries() const { return itlb_.active_entries(); }
  std::uint32_t dtlb_entries() const { return dtlb_.active_entries(); }
  bool dram_gated() const { return dram_->gated(); }

  /// OS-noise hook: a context switch evicts translations.
  void flush_tlbs();
  void flush_caches();
  /// Flushes only the core-private levels (SMP L3 reconfiguration).
  void flush_private();

  // --- component access for tests and stats ---
  const cache::Cache& l1i() const { return l1i_; }
  const cache::Cache& l1d() const { return l1d_; }
  const cache::Cache& l2() const { return l2_; }
  const cache::Cache& l3() const { return *l3_; }
  const cache::Tlb& itlb() const { return itlb_; }
  const cache::Tlb& dtlb() const { return dtlb_; }
  const mem::Dram& dram() const { return *dram_; }

  const HierarchyConfig& config() const { return config_; }

 private:
  /// Invalidate an L3-evicted line from the inner levels (inclusive L3).
  void back_invalidate(Address line);

  /// How many of the addresses addr+stride, addr+2*stride, ... (at most
  /// `remaining` of them) stay within the cache line holding `addr`.
  static std::uint64_t same_line_run(Address addr, std::int64_t stride,
                                     std::uint64_t remaining,
                                     std::uint32_t line_bytes);

  HierarchyConfig config_;
  pmu::CounterBank& bank_;
  cache::Cache l1i_;
  cache::Cache l1d_;
  cache::Cache l2_;
  cache::Tlb itlb_;
  cache::Tlb dtlb_;
  // Shared levels: owned for a single-core node, external for SMP cores.
  std::unique_ptr<cache::Cache> owned_l3_;
  std::unique_ptr<mem::Dram> owned_dram_;
  cache::Cache* l3_;
  mem::Dram* dram_;
};

}  // namespace pcap::sim
