// Aggregate configuration describing the simulated platform: the paper's
// dual-socket Sandy Bridge "Romley" node (E5-2680) plus the simulator's
// timing-compression constants.
#pragma once

#include "cache/cache.hpp"
#include "cache/tlb.hpp"
#include "mem/dram.hpp"
#include "power/model.hpp"
#include "power/pstate.hpp"
#include "power/thermal.hpp"
#include "util/units.hpp"

namespace pcap::sim {

/// In-order core timing parameters.
struct CoreTimingConfig {
  double base_ipc = 1.6;               // micro-ops per cycle absent stalls
  double branch_fraction = 0.08;       // of committed instructions
  double mispredict_rate = 0.012;      // of branches
  std::uint32_t mispredict_penalty_cycles = 14;
  std::uint32_t mispredict_replay_uops = 20;  // speculative work discarded
  std::uint32_t ins_per_fetch = 8;     // committed instructions per I-fetch
  std::uint32_t noise_replay_uops = 48;  // pipeline drain on an OS tick
};

/// Memory hierarchy geometry and latencies. Cache latencies are in core
/// cycles (they scale with DVFS); DRAM latency is wall-clock (it does not).
struct HierarchyConfig {
  cache::CacheConfig l1i;
  cache::CacheConfig l1d;
  cache::CacheConfig l2;
  cache::CacheConfig l3;
  cache::TlbConfig itlb;
  cache::TlbConfig dtlb;
  mem::DramConfig dram;

  std::uint32_t l1_hit_cycles = 4;
  std::uint32_t l2_extra_cycles = 6;
  std::uint32_t l3_extra_cycles = 14;
  std::uint32_t tlb_walk_cycles = 28;

  /// Optional next-line hardware prefetcher at the L2: on a demand L2 miss
  /// (data side), the following `prefetch_depth` lines are pulled into
  /// L2/L3 off the critical path. Off by default — the calibration against
  /// the paper's operating points was done without it; enable for the
  /// prefetch ablation.
  bool prefetch_enabled = false;
  std::uint32_t prefetch_depth = 2;
};

/// Simulated-time housekeeping periods.
///
/// The simulator compresses wall-clock time: a paper-scale run of minutes
/// becomes tens of simulated milliseconds, and every management-plane period
/// shrinks by the same `time_compression` factor. What the dynamics depend
/// on — control periods per run and the ratios between time constants — is
/// preserved (see DESIGN.md).
struct TickConfig {
  double time_compression = 5000.0;
  util::Picoseconds node_tick = util::microseconds(5);
  util::Picoseconds bmc_period = util::microseconds(20);      // 100 ms real
  util::Picoseconds os_noise_period = util::microseconds(250);

  /// Wall-meter sampling period in *real* seconds (the paper's Watts Up
  /// logs at ~1 Hz). The simulated period is derived through the
  /// compression factor; the defaults land exactly on 200 µs simulated.
  double meter_real_period_s = 1.0;
  util::Picoseconds meter_period() const {
    return static_cast<util::Picoseconds>(
        static_cast<double>(util::seconds(meter_real_period_s)) /
        time_compression);
  }
};

/// The paper's measured operating points, as acceptance bands. Tests and
/// benches reference this single set instead of re-encoding the literals
/// (they drifted apart when duplicated).
struct CalibrationTargets {
  /// "idle power was between 100 and 103 W" (±1 W model tolerance).
  double idle_min_w = 99.0;
  double idle_max_w = 104.0;
  /// Uncapped single-job baselines: Stereo ~153 W, SIRE ~157 W.
  double loaded_min_w = 148.0;
  double loaded_max_w = 160.0;
  /// Loaded draw at the slowest P-state — caps below this band force the
  /// non-DVFS mechanisms (paper: ~137 W at 1200 MHz).
  double min_pstate_min_w = 126.0;
  double min_pstate_max_w = 136.0;
  /// All-mechanisms throttling floor: above 120 W (the missed cap), below
  /// the min-P-state band (paper: ~123-125 W).
  double floor_above_w = 120.0;
  double floor_below_w = 126.0;
};

struct MachineConfig {
  CoreTimingConfig core;
  HierarchyConfig hierarchy;
  power::NodePowerConfig power;
  power::ThermalConfig thermal;
  TickConfig ticks;
  CalibrationTargets calibration;

  /// The paper's experimental platform.
  static MachineConfig romley();
};

}  // namespace pcap::sim
