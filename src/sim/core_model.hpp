// In-order core timing model: converts micro-ops and memory latencies into
// simulated time under the current P-state (frequency/voltage) and T-state
// (clock-modulation duty cycle), and accounts PMU events including a
// mis-speculation replay model.
#pragma once

#include <cstdint>

#include "pmu/counters.hpp"
#include "power/pstate.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::sim {

class CoreModel {
 public:
  CoreModel(const CoreTimingConfig& config, const power::PStateTable& pstates,
            pmu::CounterBank& bank);

  // --- actuators ---
  /// Throws std::out_of_range for an invalid index.
  void set_pstate(std::uint32_t index);
  std::uint32_t pstate() const { return pstate_; }
  const power::PState& pstate_info() const;
  util::Hertz frequency() const { return pstate_info().frequency; }
  double voltage() const { return pstate_info().voltage; }

  /// Clock-modulation duty in (0, 1]; clamped to [min_duty, 1].
  void set_duty(double duty);
  double duty() const { return duty_; }
  static constexpr double kMinDuty = 0.125;

  // --- execution ---
  /// Retires `uops` arithmetic micro-ops (committed instructions).
  void compute(std::uint64_t uops);

  /// Accounts one committed load/store whose hierarchy cost is `lat`.
  void memory_op(const AccessLatency& lat, bool is_store);

  /// Bit-identical to `n` memory_op(lat, is_store) calls: integer counters
  /// are added in bulk, while the per-op floating-point sequence (duty
  /// carry, branch/mispredict carries) is replayed exactly so the
  /// picosecond clock matches the per-op path to the last bit.
  void memory_op_repeat(const AccessLatency& lat, bool is_store,
                        std::uint64_t n);

  /// Bit-identical to `n` repetitions of the element sequence
  /// memory_op(load_lat, false); memory_op(store_lat, true);
  /// compute(uops) [when uops != 0] — the read-modify-write inner loop.
  /// Integer counters are added in bulk; the per-op floating-point state
  /// (duty, cycle, branch, mispredict carries) is replayed in order.
  void rmw_repeat(const AccessLatency& load_lat, const AccessLatency& store_lat,
                  std::uint64_t uops, std::uint64_t n);

  /// Accounts one instruction fetch (not a committed instruction); only the
  /// portion of the latency beyond an L1I hit stalls the front end.
  void fetch_op(const AccessLatency& lat, std::uint32_t l1_hit_cycles);

  /// Pipeline drain caused by an external event (OS tick): costs cycles and
  /// re-executed speculative work.
  void external_drain();

  /// Advances time without retiring work (halted / idle core).
  void idle_advance(util::Picoseconds dt) { now_ += dt; }

  util::Picoseconds now() const { return now_; }
  const CoreTimingConfig& config() const { return config_; }

 private:
  /// Charges `cycles` at the current clock plus a fixed wall-clock part,
  /// both inflated by the duty cycle (the clock-off windows stall retire).
  void charge(std::uint64_t cycles, util::Picoseconds fixed_ps);

  /// Branch/mispredict accounting for `uops` of committed work.
  void speculate(std::uint64_t uops);

  /// Advances the clock by a pre-divided duty-scaled cost, reproducing
  /// charge()'s exact float sequence fl(fl(per) + carry).
  void advance_scaled(double per_ps) {
    const double scaled = per_ps + time_carry_ps_;
    const auto whole = static_cast<util::Picoseconds>(scaled);
    time_carry_ps_ = scaled - static_cast<double>(whole);
    now_ += whole;
  }

  CoreTimingConfig config_;
  const power::PStateTable* pstates_;
  pmu::CounterBank* bank_;
  std::uint32_t pstate_ = 0;
  double duty_ = 1.0;
  util::Picoseconds now_ = 0;
  double cycle_carry_ = 0.0;   // fractional compute cycles
  double branch_carry_ = 0.0;  // fractional branches
  double mispredict_carry_ = 0.0;
  double time_carry_ps_ = 0.0;  // fractional picoseconds from duty scaling
};

}  // namespace pcap::sim
