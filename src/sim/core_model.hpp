// In-order core timing model: converts micro-ops and memory latencies into
// simulated time under the current P-state (frequency/voltage) and T-state
// (clock-modulation duty cycle), and accounts PMU events including a
// mis-speculation replay model.
#pragma once

#include <cstdint>

#include "pmu/counters.hpp"
#include "power/pstate.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "util/units.hpp"

namespace pcap::sim {

class CoreModel {
 public:
  CoreModel(const CoreTimingConfig& config, const power::PStateTable& pstates,
            pmu::CounterBank& bank);

  // --- actuators ---
  /// Throws std::out_of_range for an invalid index.
  void set_pstate(std::uint32_t index);
  std::uint32_t pstate() const { return pstate_; }
  const power::PState& pstate_info() const;
  util::Hertz frequency() const { return pstate_info().frequency; }
  double voltage() const { return pstate_info().voltage; }

  /// Clock-modulation duty in (0, 1]; clamped to [min_duty, 1].
  void set_duty(double duty);
  double duty() const { return duty_; }
  static constexpr double kMinDuty = 0.125;

  // --- execution ---
  /// Retires `uops` arithmetic micro-ops (committed instructions).
  void compute(std::uint64_t uops);

  /// Accounts one committed load/store whose hierarchy cost is `lat`.
  void memory_op(const AccessLatency& lat, bool is_store);

  /// Accounts one instruction fetch (not a committed instruction); only the
  /// portion of the latency beyond an L1I hit stalls the front end.
  void fetch_op(const AccessLatency& lat, std::uint32_t l1_hit_cycles);

  /// Pipeline drain caused by an external event (OS tick): costs cycles and
  /// re-executed speculative work.
  void external_drain();

  /// Advances time without retiring work (halted / idle core).
  void idle_advance(util::Picoseconds dt) { now_ += dt; }

  util::Picoseconds now() const { return now_; }
  const CoreTimingConfig& config() const { return config_; }

 private:
  /// Charges `cycles` at the current clock plus a fixed wall-clock part,
  /// both inflated by the duty cycle (the clock-off windows stall retire).
  void charge(std::uint64_t cycles, util::Picoseconds fixed_ps);

  /// Branch/mispredict accounting for `uops` of committed work.
  void speculate(std::uint64_t uops);

  CoreTimingConfig config_;
  const power::PStateTable* pstates_;
  pmu::CounterBank* bank_;
  std::uint32_t pstate_ = 0;
  double duty_ = 1.0;
  util::Picoseconds now_ = 0;
  double cycle_carry_ = 0.0;   // fractional compute cycles
  double branch_carry_ = 0.0;  // fractional branches
  double mispredict_carry_ = 0.0;
  double time_carry_ps_ = 0.0;  // fractional picoseconds from duty scaling
};

}  // namespace pcap::sim
