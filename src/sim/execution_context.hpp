// The API workloads program against. Applications run their real algorithm
// on host memory and narrate the induced instruction stream — loads, stores,
// arithmetic, and implicitly instruction fetches — to the simulated machine,
// which prices each operation and advances simulated time.
//
// A context binds one core's pipeline (CoreModel) and cache hierarchy to a
// TickSink that runs node-level housekeeping (power/metering/management)
// whenever simulated time crosses a boundary — the single-core Node
// implements it directly; the SMP node's per-core lanes implement it with a
// quantum check so cores interleave deterministically.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "sim/core_model.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"

namespace pcap::sim {

class Node;

/// Receives control after every priced operation.
class TickSink {
 public:
  virtual ~TickSink() = default;
  virtual void on_op() = 0;

  /// Simulated time strictly before which on_op() is guaranteed to be a
  /// no-op. Batched streams may elide the per-op sink call for operations
  /// that complete before this horizon, calling on_op() only once the clock
  /// reaches or passes it. 0 (the default) promises nothing: every
  /// operation then gets its on_op() call.
  virtual util::Picoseconds op_horizon() const { return 0; }
};

class ExecutionContext {
 public:
  /// Binds to an explicit core lane (SMP composition). `address_space`
  /// disjoins this context's simulated data/code addresses from other
  /// cores' (separate processes do not share physical pages).
  ExecutionContext(MemoryHierarchy& hierarchy, CoreModel& core,
                   TickSink& sink, const MachineConfig& config,
                   std::uint32_t address_space = 0);

  /// Convenience: binds to a single-core Node.
  explicit ExecutionContext(Node& node);

  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Reserves `bytes` of simulated address space (64-byte aligned bump
  /// allocator). Returns the simulated base address. The workload keeps its
  /// real data in host memory; these addresses exist to exercise the
  /// hierarchy with the same layout/stride structure.
  Address alloc(std::uint64_t bytes, std::string_view label = {});

  /// One committed load/store touching the line containing `addr`.
  void load(Address addr);
  void store(Address addr);

  /// `uops` committed arithmetic micro-ops.
  void compute(std::uint64_t uops);

  /// One memory reference of a batched access pattern (pattern_stream).
  struct StreamOp {
    enum class Kind : std::uint8_t { kLoad, kStore };
    Kind kind = Kind::kLoad;
    Address base = 0;
  };

  // --- batched streams ---
  // Each call is bit-identical — PMU counters, structural cache/TLB state,
  // and the picosecond clock — to the equivalent per-operation loop; only
  // simulator wall time changes (tests/test_batch_equivalence.cpp). Regular
  // same-line runs are accounted analytically instead of being replayed.

  /// `count` loads at base, base+stride, base+2*stride, ...
  void load_stream(Address base, std::int64_t stride, std::uint64_t count);
  /// `count` stores at base, base+stride, base+2*stride, ...
  void store_stream(Address base, std::int64_t stride, std::uint64_t count);
  /// Per element k in [0, count): load then store of base + k*stride,
  /// then compute(uops) when uops != 0.
  void rmw_stream(Address base, std::int64_t stride, std::uint64_t count,
                  std::uint64_t uops);
  /// Per element k in [0, count): each op in `ops` (at op.base + k*stride,
  /// in order), then compute(uops) when uops != 0.
  void pattern_stream(std::span<const StreamOp> ops, std::int64_t stride,
                      std::uint64_t count, std::uint64_t uops);

  /// Declares the instruction footprint of the current kernel: fetches
  /// rotate over `pages` 4 KB code pages. Distinct `region` values model
  /// distinct functions (disjoint code addresses).
  void set_code_footprint(std::uint32_t region, std::uint32_t pages);

  util::Picoseconds now() const { return core_->now(); }
  CoreModel& core() { return *core_; }
  MemoryHierarchy& hierarchy() { return *hierarchy_; }

 private:
  void retire_fetches(std::uint64_t committed);
  /// Single-reference stream with bulk accounting of same-line runs.
  void unit_stream(Address base, std::int64_t stride, std::uint64_t count,
                   bool is_store);

  MemoryHierarchy* hierarchy_;
  CoreModel* core_;
  TickSink* sink_;
  Address space_offset_;
  Address data_break_;
  std::uint32_t code_pages_ = 8;
  Address code_base_;
  Address fetch_ptr_;
  std::uint64_t fetch_accum_ = 0;
  std::uint32_t ins_per_fetch_;
  std::uint32_t line_bytes_;
  std::uint32_t data_line_bytes_;
  std::uint32_t l1_hit_cycles_;
  std::uint32_t mispredict_penalty_cycles_;
};

}  // namespace pcap::sim
