// The simulated compute node: one active core driving the memory hierarchy,
// the node power/thermal model, a wall power meter, and the housekeeping tick
// loop that the management plane (BMC) hooks into.
//
// The Node implements PlatformControl, so BMC firmware written against that
// interface manages this node exactly as Intel Node Manager manages a real
// one: sampling averaged power and actuating P-states, T-states, cache/TLB
// gating and memory gating, all out-of-band from the workload.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "meter/watts_up.hpp"
#include "pmu/counters.hpp"
#include "power/model.hpp"
#include "power/pstate.hpp"
#include "power/thermal.hpp"
#include "sim/core_model.hpp"
#include "sim/execution_context.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "sim/platform_control.hpp"
#include "sim/workload.hpp"
#include "telemetry/probe.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pcap::sim {

/// Everything the paper measures for one application run.
struct RunReport {
  std::string workload;
  util::Picoseconds elapsed = 0;
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  util::Hertz avg_frequency = 0;
  double avg_duty = 1.0;
  double final_temperature_c = 0.0;
  /// Per-event deltas over the run, indexable by pmu::index_of(event).
  std::array<std::uint64_t, pmu::kEventCount> counters{};

  std::uint64_t counter(pmu::Event e) const { return counters[pmu::index_of(e)]; }
};

class Node final : public PlatformControl, public TickSink {
 public:
  explicit Node(const MachineConfig& config, std::uint64_t seed = 1);

  // Non-copyable (the ExecutionContext and hooks hold references).
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Runs a workload to completion under the current management policy and
  /// returns the measured report.
  RunReport run(Workload& workload);

  /// Advances simulated time with no workload (for idle-power measurement).
  void idle_for(util::Picoseconds duration);

  /// Resets the meter session (used with idle_for to measure idle power).
  void start_metering() { meter_.start_session(core_.now()); }

  /// Installs the management hook called every BMC control period with this
  /// node's PlatformControl face (pass nullptr to uninstall).
  using ControlHook = std::function<void(PlatformControl&)>;
  void set_control_hook(ControlHook hook) { control_hook_ = std::move(hook); }

  /// Enables/disables the OS-noise model (periodic TLB flush + pipeline
  /// drain from timer interrupts). On by default.
  void set_os_noise(bool enabled) { os_noise_enabled_ = enabled; }

  /// Attaches a telemetry probe fed every housekeeping tick (nullptr
  /// detaches). The probe only reads state: simulated results are
  /// bit-identical with or without one (tests/test_telemetry.cpp).
  void set_telemetry(telemetry::NodeProbe* probe) { probe_ = probe; }
  telemetry::NodeProbe* telemetry_probe() { return probe_; }

  /// Extension (paper §V future work): additional cores kept active while a
  /// workload runs. They contribute core power (raising the demand the BMC
  /// must throttle) but their instruction streams are not simulated.
  void set_background_active_cores(int n) { background_cores_ = n; }
  int background_active_cores() const { return background_cores_; }

  // --- component access ---
  const MachineConfig& config() const { return config_; }
  pmu::CounterBank& counters() { return bank_; }
  const pmu::CounterBank& counters() const { return bank_; }
  MemoryHierarchy& hierarchy() { return hierarchy_; }
  const MemoryHierarchy& hierarchy() const { return hierarchy_; }
  CoreModel& core() { return core_; }
  const meter::WattsUp& meter() const { return meter_; }
  const power::PStateTable& pstates() const { return pstates_; }
  double temperature_c() const { return thermal_.temperature_c(); }
  bool workload_running() const { return running_; }

  // --- PlatformControl (the BMC-facing surface) ---
  std::uint32_t pstate_count() const override {
    return static_cast<std::uint32_t>(pstates_.size());
  }
  std::uint32_t pstate() const override { return core_.pstate(); }
  void set_pstate(std::uint32_t index) override { core_.set_pstate(index); }
  util::Hertz frequency() const override { return core_.frequency(); }
  double duty() const override { return core_.duty(); }
  void set_duty(double duty) override { core_.set_duty(duty); }
  double min_duty() const override { return CoreModel::kMinDuty; }
  std::uint32_t l3_ways() const override { return hierarchy_.l3_ways(); }
  std::uint32_t l3_max_ways() const override {
    return config_.hierarchy.l3.ways;
  }
  void set_l3_ways(std::uint32_t n) override { hierarchy_.set_l3_ways(n); }
  std::uint32_t l2_ways() const override { return hierarchy_.l2_ways(); }
  std::uint32_t l2_max_ways() const override {
    return config_.hierarchy.l2.ways;
  }
  void set_l2_ways(std::uint32_t n) override { hierarchy_.set_l2_ways(n); }
  std::uint32_t itlb_entries() const override { return hierarchy_.itlb_entries(); }
  std::uint32_t itlb_max_entries() const override {
    return config_.hierarchy.itlb.entries;
  }
  void set_itlb_entries(std::uint32_t n) override {
    hierarchy_.set_itlb_entries(n);
  }
  std::uint32_t dtlb_entries() const override { return hierarchy_.dtlb_entries(); }
  std::uint32_t dtlb_max_entries() const override {
    return config_.hierarchy.dtlb.entries;
  }
  void set_dtlb_entries(std::uint32_t n) override {
    hierarchy_.set_dtlb_entries(n);
  }
  bool dram_gated() const override { return hierarchy_.dram_gated(); }
  void set_dram_gated(bool gated) override { hierarchy_.set_dram_gated(gated); }
  double window_average_power_w() override;
  double instantaneous_power_w() const override { return watts_; }
  double memory_stall_fraction() const override { return stall_fraction_; }
  util::Picoseconds now() const override { return core_.now(); }

  /// Called by the ExecutionContext after every priced operation; runs the
  /// housekeeping tick when due.
  void maybe_tick() {
    if (core_.now() >= next_tick_) tick();
  }
  void on_op() override { maybe_tick(); }
  /// maybe_tick() is a no-op until the next housekeeping boundary.
  util::Picoseconds op_horizon() const override { return next_tick_; }

 private:
  void tick();
  power::PowerInputs assemble_inputs() const;
  void feed_probe(util::Picoseconds now);

  MachineConfig config_;
  power::PStateTable pstates_;
  pmu::CounterBank bank_;
  MemoryHierarchy hierarchy_;
  CoreModel core_;
  power::NodePowerModel power_model_;
  power::ThermalModel thermal_;
  meter::WattsUp meter_;
  util::Rng rng_;
  ControlHook control_hook_;
  telemetry::NodeProbe* probe_ = nullptr;

  bool running_ = false;
  bool os_noise_enabled_ = true;
  int background_cores_ = 0;
  double watts_ = 0.0;
  double peak_watts_ = 0.0;

  util::Picoseconds last_tick_ = 0;
  util::Picoseconds next_tick_ = 0;
  util::Picoseconds next_control_ = 0;
  util::Picoseconds next_noise_ = 0;

  // Sensor window for the BMC.
  double window_energy_j_ = 0.0;
  util::Picoseconds window_start_ = 0;

  // Run-level integrals.
  double freq_time_integral_ = 0.0;  // Hz * seconds
  double duty_time_integral_ = 0.0;  // seconds

  // Rate computation between ticks.
  std::uint64_t last_l3_acc_ = 0;
  std::uint64_t last_dram_acc_ = 0;
  std::uint64_t last_ins_ = 0;
  std::uint64_t last_cyc_ = 0;
  double activity_ = 0.9;
  double stall_fraction_ = 0.0;
  std::uint64_t last_stall_ = 0;
  double l3_rate_hz_ = 0.0;
  double dram_rate_hz_ = 0.0;
};

}  // namespace pcap::sim
