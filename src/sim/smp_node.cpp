#include "sim/smp_node.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace pcap::sim {

using pmu::Event;

SmpNode::SmpNode(const SmpConfig& config, std::uint64_t seed)
    : config_(config),
      pstates_(power::PStateTable::romley_e5_2680()),
      l3_(config.machine.hierarchy.l3),
      dram_(config.machine.hierarchy.dram),
      power_model_(config.machine.power),
      thermal_(config.machine.thermal),
      meter_(config.machine.ticks.meter_period()),
      rng_(seed) {
  if (config.cores < 1) throw std::invalid_argument("SmpNode: cores < 1");
  if (config.cores > config.machine.power.cores) {
    throw std::invalid_argument("SmpNode: more cores than the platform has");
  }
#if !defined(PCAP_SMP_LEGACY_ENGINE)
  if (config.engine == SmpEngine::kThreadedLegacy) {
    throw std::invalid_argument(
        "SmpNode: legacy token engine compiled out (PCAP_SMP_LEGACY_ENGINE)");
  }
#endif
  lanes_.reserve(static_cast<std::size_t>(config.cores));
  for (int i = 0; i < config.cores; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->owner = this;
    lane->index = i;
    lane->hierarchy = std::make_unique<MemoryHierarchy>(
        config.machine.hierarchy, lane->bank, l3_, dram_);
    lane->core = std::make_unique<CoreModel>(config.machine.core, pstates_,
                                             lane->bank);
    lanes_.push_back(std::move(lane));
  }
  watts_ = power_model_.total_watts(assemble_inputs());
  meter_.start_session(0);
}

SmpNode::~SmpNode() { teardown_lanes(); }

// --- PlatformControl: package-level actuation ---

std::uint32_t SmpNode::pstate() const { return lanes_.front()->core->pstate(); }

void SmpNode::set_pstate(std::uint32_t index) {
  for (auto& lane : lanes_) lane->core->set_pstate(index);
}

util::Hertz SmpNode::frequency() const {
  return lanes_.front()->core->frequency();
}

double SmpNode::duty() const { return lanes_.front()->core->duty(); }

void SmpNode::set_duty(double duty) {
  for (auto& lane : lanes_) lane->core->set_duty(duty);
}

void SmpNode::set_l3_ways(std::uint32_t n) {
  const bool shrinking = n < l3_.active_ways();
  l3_.set_active_ways(n);
  if (shrinking) {
    // Inclusive-L3 reconfiguration disrupts every core's private levels.
    for (auto& lane : lanes_) lane->hierarchy->flush_private();
  }
}

std::uint32_t SmpNode::l2_ways() const {
  return lanes_.front()->hierarchy->l2_ways();
}

void SmpNode::set_l2_ways(std::uint32_t n) {
  for (auto& lane : lanes_) lane->hierarchy->set_l2_ways(n);
}

std::uint32_t SmpNode::itlb_entries() const {
  return lanes_.front()->hierarchy->itlb_entries();
}

void SmpNode::set_itlb_entries(std::uint32_t n) {
  for (auto& lane : lanes_) lane->hierarchy->set_itlb_entries(n);
}

std::uint32_t SmpNode::dtlb_entries() const {
  return lanes_.front()->hierarchy->dtlb_entries();
}

void SmpNode::set_dtlb_entries(std::uint32_t n) {
  for (auto& lane : lanes_) lane->hierarchy->set_dtlb_entries(n);
}

void SmpNode::flush_all_caches() {
  for (auto& lane : lanes_) {
    lane->hierarchy->flush_private();
    lane->hierarchy->flush_tlbs();
  }
  l3_.flush_all();
  dram_.close_rows();
}

double SmpNode::window_average_power_w() {
  const util::Picoseconds dt =
      node_now_ > window_start_ ? node_now_ - window_start_ : 0;
  double avg = watts_;
  if (dt != 0 && window_energy_j_ > 0.0) {
    avg = window_energy_j_ / util::to_seconds(dt);
  }
  window_start_ = node_now_;
  window_energy_j_ = 0.0;
  return avg;
}

// --- power assembly ---

int SmpNode::running_lanes() const {
  int count = 0;
  for (const auto& lane : lanes_) count += lane->finished ? 0 : 1;
  return count;
}

power::PowerInputs SmpNode::assemble_inputs() const {
  power::PowerInputs in;
  const int active = running_lanes();
  in.workload_running = running_ && active > 0;
  in.active_cores = in.workload_running ? active : 0;
  in.frequency = frequency();
  in.voltage = lanes_.front()->core->voltage();
  in.duty = duty();
  in.activity = in.workload_running ? activity_ : 0.0;
  in.l3_accesses_per_s = l3_rate_hz_;
  in.dram_accesses_per_s = dram_rate_hz_;
  in.l3_active_ways = static_cast<int>(l3_.active_ways());
  in.dram_gated = dram_.gated();
  in.temperature_c = thermal_.temperature_c();
  return in;
}

void SmpNode::housekeeping(util::Picoseconds upto) {
  if (upto <= last_tick_) return;
  const util::Picoseconds dt = upto - last_tick_;
  const double dt_s = util::to_seconds(dt);

  // Aggregate counter rates across lanes.
  std::uint64_t l3_acc = 0, dram_acc = 0, ins = 0, cyc = 0, stall = 0;
  for (const auto& lane : lanes_) {
    l3_acc += lane->bank.get(Event::kL3Tca);
    dram_acc += lane->bank.get(Event::kDramAcc);
    ins += lane->bank.get(Event::kTotIns);
    cyc += lane->bank.get(Event::kTotCyc);
    stall += lane->bank.get(Event::kStallCyc);
  }
  l3_rate_hz_ = static_cast<double>(l3_acc - last_l3_acc_) / dt_s;
  dram_rate_hz_ = static_cast<double>(dram_acc - last_dram_acc_) / dt_s;
  const std::uint64_t d_cyc = cyc - last_cyc_;
  if (d_cyc != 0) {
    const double ipc =
        static_cast<double>(ins - last_ins_) / static_cast<double>(d_cyc);
    activity_ = 0.70 + 0.30 * std::min(ipc / config_.machine.core.base_ipc, 1.0);
    stall_fraction_ = std::min(
        static_cast<double>(stall - last_stall_) / static_cast<double>(d_cyc),
        1.0);
  } else if (!running_) {
    stall_fraction_ = 0.0;
  }
  last_l3_acc_ = l3_acc;
  last_dram_acc_ = dram_acc;
  last_ins_ = ins;
  last_cyc_ = cyc;
  last_stall_ = stall;

  watts_ = power_model_.total_watts(assemble_inputs());
  peak_watts_ = std::max(peak_watts_, watts_);
  const double silicon = watts_ - config_.machine.power.platform_base_w -
                         config_.machine.power.dram_background_w;
  thermal_.update(std::max(silicon, 0.0), dt);
  meter_.observe(upto, watts_);
  window_energy_j_ += watts_ * dt_s;
  freq_time_integral_ += static_cast<double>(frequency()) * dt_s;

  node_now_ = upto;

  if constexpr (telemetry::kCompiledIn) feed_probes(upto);

  if (os_noise_enabled_ && running_ && upto >= next_noise_) {
    for (auto& lane : lanes_) {
      lane->hierarchy->flush_tlbs();
      if (!lane->finished) lane->core->external_drain();
    }
    const double jitter = 0.8 + 0.4 * rng_.uniform();
    next_noise_ = upto + static_cast<util::Picoseconds>(
                             static_cast<double>(
                                 config_.machine.ticks.os_noise_period) *
                             jitter);
  }
  if (control_hook_ && upto >= next_control_) {
    control_hook_(*this);
    next_control_ = upto + config_.machine.ticks.bmc_period;
  }
  last_tick_ = upto;
}

void SmpNode::feed_probes(util::Picoseconds now) {
  // Probes only read simulator state; feeding them cannot perturb the run.
  const auto package_due =
      probe_ != nullptr && probe_->wants_sample(now);
  bool any_core_due = false;
  for (std::size_t i = 0; i < core_probes_.size() && i < lanes_.size(); ++i) {
    if (core_probes_[i] != nullptr && core_probes_[i]->wants_sample(now)) {
      any_core_due = true;
      break;
    }
  }
  if (!package_due && !any_core_due) return;

  telemetry::ProbeInput in;
  in.now = now;
  in.watts = watts_;
  in.frequency_mhz = static_cast<double>(frequency()) /
                     static_cast<double>(util::kMegaHertz);
  in.pstate = pstate();
  in.duty = duty();
  in.temperature_c = thermal_.temperature_c();

  if (package_due) {
    telemetry::ProbeInput agg = in;
    for (const auto& lane : lanes_) {
      agg.tot_ins += lane->bank.get(Event::kTotIns);
      agg.tot_cyc += lane->bank.get(Event::kTotCyc);
      agg.l1_acc += lane->bank.get(Event::kL1Dca);
      agg.l1_miss += lane->bank.get(Event::kL1Dcm);
      agg.l2_acc += lane->bank.get(Event::kL2Tca);
      agg.l2_miss += lane->bank.get(Event::kL2Tcm);
      agg.l3_acc += lane->bank.get(Event::kL3Tca);
      agg.l3_miss += lane->bank.get(Event::kL3Tcm);
    }
    probe_->on_tick(agg);
  }
  for (std::size_t i = 0; i < core_probes_.size() && i < lanes_.size(); ++i) {
    telemetry::NodeProbe* probe = core_probes_[i];
    if (probe == nullptr || !probe->wants_sample(now)) continue;
    const Lane& lane = *lanes_[i];
    telemetry::ProbeInput per = in;  // package operating point ...
    per.tot_ins = lane.bank.get(Event::kTotIns);  // ... per-core counters
    per.tot_cyc = lane.bank.get(Event::kTotCyc);
    per.l1_acc = lane.bank.get(Event::kL1Dca);
    per.l1_miss = lane.bank.get(Event::kL1Dcm);
    per.l2_acc = lane.bank.get(Event::kL2Tca);
    per.l2_miss = lane.bank.get(Event::kL2Tcm);
    per.l3_acc = lane.bank.get(Event::kL3Tca);
    per.l3_miss = lane.bank.get(Event::kL3Tcm);
    probe->on_tick(per);
  }
}

// --- quantum scheduling (shared by both engines) ---

void SmpNode::Lane::on_op() {
  if (core->now() < quantum_end) return;
  owner->yield_from(*this);
}

void SmpNode::yield_from(Lane& lane) {
  if (lane.fiber != nullptr) {
    // Cooperative: suspend the continuation back to the run queue.
    util::Fiber::yield();
    return;
  }
#if defined(PCAP_SMP_LEGACY_ENGINE)
  if (config_.engine == SmpEngine::kThreadedLegacy) {
    std::unique_lock<std::mutex> lock(mutex_);
    token_ = -1;
    cv_.notify_all();
    cv_.wait(lock, [this, &lane] { return token_ == lane.index || abort_; });
    if (abort_) throw EngineAbort{};
    return;
  }
#endif
  // Steppable lane: step() observes the clock and returns on its own; the
  // sink has nothing to do.
}

int SmpNode::pick_next_lane() const {
  int best = -1;
  for (const auto& lane : lanes_) {
    if (lane->finished) continue;
    if (best < 0 || lane->core->now() < lanes_[static_cast<std::size_t>(best)]
                                            ->core->now()) {
      best = lane->index;
    }
  }
  return best;
}

void SmpNode::settle_quantum() {
  // Housekeeping runs up to the slowest unfinished core (everything before
  // that point is final).
  util::Picoseconds horizon = 0;
  bool any_unfinished = false;
  for (const auto& lane : lanes_) {
    if (!lane->finished) {
      horizon = any_unfinished ? std::min(horizon, lane->core->now())
                               : lane->core->now();
      any_unfinished = true;
    }
  }
  if (any_unfinished) housekeeping(horizon);
}

// --- run prologue / epilogue (engine-independent) ---

util::Picoseconds SmpNode::prepare_run(std::span<Workload* const> workloads) {
  if (workloads.empty() ||
      workloads.size() > static_cast<std::size_t>(core_count())) {
    throw std::invalid_argument("SmpNode::run: bad workload count");
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    if (workloads[i] == nullptr) {
      throw std::invalid_argument("SmpNode::run: null workload");
    }
    for (std::size_t j = i + 1; j < workloads.size(); ++j) {
      if (workloads[i] == workloads[j]) {
        // One workload object carries one instruction-stream state; two
        // lanes advancing it would interleave that state incoherently.
        throw std::invalid_argument("SmpNode::run: duplicate workload");
      }
    }
  }

  // Align every core to a common start time.
  util::Picoseconds start = node_now_;
  for (const auto& lane : lanes_) start = std::max(start, lane->core->now());
  for (const auto& lane : lanes_) {
    if (lane->core->now() < start) {
      lane->core->idle_advance(start - lane->core->now());
    }
  }

  running_ = true;
  meter_.start_session(start);
  peak_watts_ = watts_;
  freq_time_integral_ = 0.0;
  node_now_ = start;
  last_tick_ = start;
  next_control_ = start + config_.machine.ticks.bmc_period;
  next_noise_ = start + config_.machine.ticks.os_noise_period;
  window_start_ = start;
  window_energy_j_ = 0.0;

  for (auto& lane : lanes_) {
    lane->workload = nullptr;
    lane->finished = true;
    lane->start_time = start;
    lane->start_counters = lane->bank.snapshot();
  }
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    lanes_[i]->workload = workloads[i];
    lanes_[i]->finished = false;
  }

  // Seed the aggregate-rate baselines.
  last_l3_acc_ = last_dram_acc_ = last_ins_ = last_cyc_ = 0;
  for (const auto& lane : lanes_) {
    last_l3_acc_ += lane->bank.get(Event::kL3Tca);
    last_dram_acc_ += lane->bank.get(Event::kDramAcc);
    last_ins_ += lane->bank.get(Event::kTotIns);
    last_cyc_ += lane->bank.get(Event::kTotCyc);
  }
  return start;
}

SmpRunReport SmpNode::finish_run(std::span<Workload* const> workloads,
                                 util::Picoseconds start) {
  // Close out the run at the slowest core's finish time.
  util::Picoseconds end = start;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    end = std::max(end, lanes_[i]->core->now());
  }
  housekeeping(end);
  running_ = false;

  SmpRunReport report;
  report.elapsed = end - start;
  report.energy_j = meter_.energy_joules();
  report.avg_power_w = meter_.average_watts();
  report.peak_power_w = peak_watts_;
  const double elapsed_s = util::to_seconds(report.elapsed);
  if (elapsed_s > 0.0) {
    report.avg_frequency =
        static_cast<util::Hertz>(freq_time_integral_ / elapsed_s);
  }
  double busy_s_total = 0.0;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Lane& lane = *lanes_[i];
    SmpCoreReport core_report;
    core_report.workload = workloads[i]->name();
    core_report.elapsed = lane.core->now() - lane.start_time;
    busy_s_total += util::to_seconds(core_report.elapsed);
    const auto after = lane.bank.snapshot();
    for (std::size_t e = 0; e < pmu::kEventCount; ++e) {
      core_report.counters[e] = after[e] - lane.start_counters[e];
      report.counters[e] += core_report.counters[e];
    }
    report.cores.push_back(std::move(core_report));
  }
  // Package energy attributed per core by busy time (there is no per-core
  // meter on this platform); shares sum to the metered total.
  for (SmpCoreReport& core_report : report.cores) {
    core_report.energy_share_j =
        busy_s_total > 0.0
            ? report.energy_j *
                  (util::to_seconds(core_report.elapsed) / busy_s_total)
            : 0.0;
  }
  return report;
}

void SmpNode::teardown_lanes() noexcept {
  for (auto& lane : lanes_) {
    if (lane->fiber != nullptr && !lane->fiber->done()) {
      // Unwind the suspended workload stack through its destructors.
      lane->fiber->cancel();
    }
    lane->fiber.reset();
    lane->ctx.reset();
  }
}

// --- cooperative engine ---

SmpRunReport SmpNode::run(std::span<Workload* const> workloads) {
#if defined(PCAP_SMP_LEGACY_ENGINE)
  if (config_.engine == SmpEngine::kThreadedLegacy) {
    return run_threaded(workloads);
  }
#endif
  return run_cooperative(workloads);
}

SmpRunReport SmpNode::run_cooperative(std::span<Workload* const> workloads) {
  const util::Picoseconds start = prepare_run(workloads);

  // Per-core stream contexts: each lane gets its own ExecutionContext whose
  // sink horizon is that lane's quantum end, so the PR 2 batched streams
  // (load/store/rmw/pattern) elide per-op sink calls inside a quantum and
  // truncate bulk groups exactly at the quantum boundary.
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Lane* lane = lanes_[i].get();
    lane->ctx = std::make_unique<ExecutionContext>(
        *lane->hierarchy, *lane->core, *lane, config_.machine,
        static_cast<std::uint32_t>(lane->index));
    if (lane->workload->supports_step()) {
      lane->workload->begin_steps();
      lane->fiber = nullptr;
    } else {
      lane->fiber = std::make_unique<util::Fiber>(
          [lane] { lane->workload->run(*lane->ctx); });
    }
  }

  try {
    // Min-local-time run queue: always resume the laggard core for one
    // quantum, then settle node housekeeping behind the pack.
    for (;;) {
      const int next = pick_next_lane();
      if (next < 0) break;
      Lane& lane = *lanes_[static_cast<std::size_t>(next)];
      lane.quantum_end = lane.core->now() + config_.quantum;
      if (lane.fiber != nullptr) {
        lane.fiber->resume();
        if (lane.fiber->done()) {
          lane.finished = true;
          if (auto error = lane.fiber->exception()) {
            std::rethrow_exception(error);
          }
        }
      } else {
        if (lane.workload->step(*lane.ctx, lane.quantum_end)) {
          lane.finished = true;
        }
      }
      settle_quantum();
    }
  } catch (...) {
    // A workload or control hook threw: unwind every suspended co-runner
    // before the exception escapes so no continuation outlives the run.
    teardown_lanes();
    running_ = false;
    throw;
  }

  teardown_lanes();
  return finish_run(workloads, start);
}

// --- legacy thread-per-core token engine (differential baseline) ---

#if defined(PCAP_SMP_LEGACY_ENGINE)

void SmpNode::finish_from(Lane& lane) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lane.finished = true;
  token_ = -1;
  cv_.notify_all();
}

SmpRunReport SmpNode::run_threaded(std::span<Workload* const> workloads) {
  const util::Picoseconds start = prepare_run(workloads);
  abort_ = false;

  // Launch one host thread per active lane; each waits for the token. A
  // workload exception is captured on the lane (never escapes the thread),
  // and an engine abort wakes every parked lane to unwind via EngineAbort —
  // either way the thread reaches finish_from and stays joinable exactly
  // until the join loop below (the old engine leaked joinable threads when
  // e.g. a control hook threw in the master loop).
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    Lane* lane = lanes_[i].get();
    lane->error = nullptr;
    lane->thread = std::thread([this, lane] {
      try {
        {
          std::unique_lock<std::mutex> lock(mutex_);
          cv_.wait(lock,
                   [this, lane] { return token_ == lane->index || abort_; });
          if (abort_) throw EngineAbort{};
        }
        ExecutionContext ctx(*lane->hierarchy, *lane->core, *lane,
                             config_.machine,
                             static_cast<std::uint32_t>(lane->index));
        lane->workload->run(ctx);
      } catch (const EngineAbort&) {
        // Aborted run: nothing to record, just park the lane.
      } catch (...) {
        lane->error = std::current_exception();
      }
      finish_from(*lane);
    });
  }

  // Master scheduling loop: always advance the laggard core.
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    try {
      for (;;) {
        const int next = pick_next_lane();
        if (next < 0) break;
        Lane& lane = *lanes_[static_cast<std::size_t>(next)];
        lane.quantum_end = lane.core->now() + config_.quantum;
        token_ = next;
        cv_.notify_all();
        cv_.wait(lock, [this] { return token_ == -1; });
        if (lane.error != nullptr) {
          error = lane.error;
          lane.error = nullptr;
          break;
        }
        settle_quantum();
      }
    } catch (...) {
      error = std::current_exception();
    }
    if (error != nullptr) {
      abort_ = true;
      cv_.notify_all();
    }
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
  abort_ = false;
  if (error != nullptr) {
    running_ = false;
    std::rethrow_exception(error);
  }

  return finish_run(workloads, start);
}

#endif  // PCAP_SMP_LEGACY_ENGINE

}  // namespace pcap::sim
