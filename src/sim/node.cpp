#include "sim/node.hpp"

#include <algorithm>

#include "sim/execution_context.hpp"

namespace pcap::sim {

using pmu::Event;

Node::Node(const MachineConfig& config, std::uint64_t seed)
    : config_(config),
      pstates_(power::PStateTable::romley_e5_2680()),
      hierarchy_(config.hierarchy, bank_),
      core_(config.core, pstates_, bank_),
      power_model_(config.power),
      thermal_(config.thermal),
      meter_(config.ticks.meter_period()),
      rng_(seed) {
  watts_ = power_model_.total_watts(assemble_inputs());
  meter_.start_session(0);
  next_tick_ = config_.ticks.node_tick;
  next_control_ = config_.ticks.bmc_period;
  next_noise_ = config_.ticks.os_noise_period;
}

power::PowerInputs Node::assemble_inputs() const {
  power::PowerInputs in;
  in.workload_running = running_;
  in.active_cores = running_ ? 1 + background_cores_ : 0;
  in.frequency = core_.frequency();
  in.voltage = core_.voltage();
  in.duty = core_.duty();
  in.activity = running_ ? activity_ : 0.0;
  in.l3_accesses_per_s = l3_rate_hz_;
  in.dram_accesses_per_s = dram_rate_hz_;
  in.l3_active_ways = static_cast<int>(hierarchy_.l3_ways());
  in.dram_gated = hierarchy_.dram_gated();
  in.temperature_c = thermal_.temperature_c();
  return in;
}

void Node::tick() {
  const util::Picoseconds now = core_.now();
  const util::Picoseconds dt = now > last_tick_ ? now - last_tick_ : 0;
  if (dt == 0) {
    next_tick_ = now + config_.ticks.node_tick;
    return;
  }
  const double dt_s = util::to_seconds(dt);

  // Activity and transaction rates from counter deltas over the tick.
  const std::uint64_t l3_acc = bank_.get(Event::kL3Tca);
  const std::uint64_t dram_acc = bank_.get(Event::kDramAcc);
  const std::uint64_t ins = bank_.get(Event::kTotIns);
  const std::uint64_t cyc = bank_.get(Event::kTotCyc);
  l3_rate_hz_ = static_cast<double>(l3_acc - last_l3_acc_) / dt_s;
  dram_rate_hz_ = static_cast<double>(dram_acc - last_dram_acc_) / dt_s;
  const std::uint64_t stall = bank_.get(Event::kStallCyc);
  const std::uint64_t d_cyc = cyc - last_cyc_;
  if (d_cyc != 0) {
    const double ipc = static_cast<double>(ins - last_ins_) /
                       static_cast<double>(d_cyc);
    const double norm = std::min(ipc / config_.core.base_ipc, 1.0);
    activity_ = 0.70 + 0.30 * norm;
    stall_fraction_ = std::min(
        static_cast<double>(stall - last_stall_) / static_cast<double>(d_cyc),
        1.0);
  } else if (!running_) {
    stall_fraction_ = 0.0;
  }
  last_l3_acc_ = l3_acc;
  last_dram_acc_ = dram_acc;
  last_ins_ = ins;
  last_cyc_ = cyc;
  last_stall_ = stall;

  // Power, heat, metering.
  watts_ = power_model_.total_watts(assemble_inputs());
  peak_watts_ = std::max(peak_watts_, watts_);
  const double silicon_watts =
      watts_ - config_.power.platform_base_w - config_.power.dram_background_w;
  thermal_.update(std::max(silicon_watts, 0.0), dt);
  meter_.observe(now, watts_);
  window_energy_j_ += watts_ * dt_s;

  // Run-level integrals for the reported average frequency / duty.
  freq_time_integral_ += static_cast<double>(core_.frequency()) * dt_s;
  duty_time_integral_ += core_.duty() * dt_s;

  // OS noise: timer interrupts flush translations and drain the pipeline.
  // Fires per unit of *time*, so heavily throttled (longer) runs absorb more
  // of it — one source of the paper's counter noise at low caps.
  if (os_noise_enabled_ && running_ && now >= next_noise_) {
    hierarchy_.flush_tlbs();
    core_.external_drain();
    // Jitter the period a little so noise does not alias with control.
    const double jitter = 0.8 + 0.4 * rng_.uniform();
    next_noise_ =
        now + static_cast<util::Picoseconds>(
                  static_cast<double>(config_.ticks.os_noise_period) * jitter);
  }

  // Management plane.
  if (control_hook_ && now >= next_control_) {
    control_hook_(*this);
    next_control_ = now + config_.ticks.bmc_period;
  }

  // Telemetry (read-only: must not perturb any state the sim depends on).
  if constexpr (telemetry::kCompiledIn) {
    if (probe_ != nullptr && probe_->wants_sample(now)) feed_probe(now);
  }

  last_tick_ = now;
  next_tick_ = now + config_.ticks.node_tick;
}

void Node::feed_probe(util::Picoseconds now) {
  telemetry::ProbeInput in;
  in.now = now;
  in.watts = watts_;
  in.frequency_mhz =
      static_cast<double>(core_.frequency()) / static_cast<double>(util::kMegaHertz);
  in.pstate = core_.pstate();
  in.duty = core_.duty();
  in.temperature_c = thermal_.temperature_c();
  in.tot_ins = bank_.get(Event::kTotIns);
  in.tot_cyc = bank_.get(Event::kTotCyc);
  in.l1_acc = bank_.get(Event::kL1Dca);
  in.l1_miss = bank_.get(Event::kL1Dcm);
  in.l2_acc = bank_.get(Event::kL2Tca);
  in.l2_miss = bank_.get(Event::kL2Tcm);
  in.l3_acc = bank_.get(Event::kL3Tca);
  in.l3_miss = bank_.get(Event::kL3Tcm);
  probe_->on_tick(in);
}

double Node::window_average_power_w() {
  const util::Picoseconds now = core_.now();
  const util::Picoseconds dt = now > window_start_ ? now - window_start_ : 0;
  double avg = watts_;
  if (dt != 0 && window_energy_j_ > 0.0) {
    avg = window_energy_j_ / util::to_seconds(dt);
  }
  window_start_ = now;
  window_energy_j_ = 0.0;
  return avg;
}

RunReport Node::run(Workload& workload) {
  const util::Picoseconds start = core_.now();
  const auto before = bank_.snapshot();

  running_ = true;
  meter_.start_session(start);
  peak_watts_ = watts_;
  freq_time_integral_ = 0.0;
  duty_time_integral_ = 0.0;
  window_start_ = start;
  window_energy_j_ = 0.0;
  last_tick_ = start;
  next_tick_ = start + config_.ticks.node_tick;
  next_control_ = start + config_.ticks.bmc_period;
  next_noise_ = start + config_.ticks.os_noise_period;

  ExecutionContext ctx(*this);
  workload.run(ctx);
  tick();  // capture the tail of the run
  running_ = false;

  RunReport report;
  report.workload = workload.name();
  report.elapsed = core_.now() - start;
  report.energy_j = meter_.energy_joules();
  report.avg_power_w = meter_.average_watts();
  report.peak_power_w = peak_watts_;
  const double elapsed_s = util::to_seconds(report.elapsed);
  if (elapsed_s > 0.0) {
    report.avg_frequency =
        static_cast<util::Hertz>(freq_time_integral_ / elapsed_s);
    report.avg_duty = duty_time_integral_ / elapsed_s;
  }
  report.final_temperature_c = thermal_.temperature_c();
  const auto after = bank_.snapshot();
  for (std::size_t i = 0; i < pmu::kEventCount; ++i) {
    report.counters[i] = after[i] - before[i];
  }
  return report;
}

void Node::idle_for(util::Picoseconds duration) {
  const util::Picoseconds end = core_.now() + duration;
  while (core_.now() < end) {
    const util::Picoseconds step =
        std::min(config_.ticks.node_tick, end - core_.now());
    core_.idle_advance(step);
    tick();
  }
}

}  // namespace pcap::sim
