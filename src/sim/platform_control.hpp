// Abstract actuator/sensor interface the BMC firmware drives. The Node
// implements it; keeping it abstract means the management plane (src/core)
// never depends on simulator internals — mirroring the real architecture,
// where the BMC reaches the platform through management firmware rather than
// the OS.
#pragma once

#include <cstdint>

#include "util/units.hpp"

namespace pcap::sim {

class PlatformControl {
 public:
  virtual ~PlatformControl() = default;

  // P-states (DVFS).
  virtual std::uint32_t pstate_count() const = 0;
  virtual std::uint32_t pstate() const = 0;
  virtual void set_pstate(std::uint32_t index) = 0;
  virtual util::Hertz frequency() const = 0;

  // T-states (clock modulation).
  virtual double duty() const = 0;
  virtual void set_duty(double duty) = 0;
  virtual double min_duty() const = 0;

  // Cache/TLB reconfiguration.
  virtual std::uint32_t l3_ways() const = 0;
  virtual std::uint32_t l3_max_ways() const = 0;
  virtual void set_l3_ways(std::uint32_t n) = 0;
  virtual std::uint32_t l2_ways() const = 0;
  virtual std::uint32_t l2_max_ways() const = 0;
  virtual void set_l2_ways(std::uint32_t n) = 0;
  virtual std::uint32_t itlb_entries() const = 0;
  virtual std::uint32_t itlb_max_entries() const = 0;
  virtual void set_itlb_entries(std::uint32_t n) = 0;
  virtual std::uint32_t dtlb_entries() const = 0;
  virtual std::uint32_t dtlb_max_entries() const = 0;
  virtual void set_dtlb_entries(std::uint32_t n) = 0;

  // Memory gating.
  virtual bool dram_gated() const = 0;
  virtual void set_dram_gated(bool gated) = 0;

  // Sensors.
  /// Average node power since the previous call (the BMC's sampling window);
  /// resets the window. Returns the instantaneous power if the window is
  /// empty.
  virtual double window_average_power_w() = 0;
  virtual double instantaneous_power_w() const = 0;
  /// Fraction of recent cycles stalled on memory (0 when idle) — what an
  /// OS governor reads from the PMU to judge memory-boundedness.
  virtual double memory_stall_fraction() const = 0;
  virtual util::Picoseconds now() const = 0;
};

}  // namespace pcap::sim
