// Symmetric multiprocessing node: N cores, each with its own pipeline,
// private L1I/L1D/L2 and TLBs, sharing the L3 and DRAM — the substrate for
// the paper's first future-work question ("how are multi-core applications
// affected by power capping?").
//
// Each workload runs on its own core; execution is strictly serialised in
// fixed simulated-time quanta, and the core with the smallest local time
// always runs next. The interleaving over the shared L3/DRAM is therefore
// deterministic (identical seeds reproduce runs bit-for-bit), while
// contention between cores is modelled for real: co-running workloads evict
// each other's L3 lines and disturb each other's DRAM row buffers.
//
// The default engine is a SINGLE-THREADED COOPERATIVE scheduler: a
// min-local-time run queue resumes each core's workload either through the
// Workload step() interface (steppable workloads) or as a stackful
// continuation (util::Fiber) for monolithic run() bodies. No host threads,
// mutexes, or condvars are involved, so an N-core quantum switch costs a
// function call or a user-space stack switch instead of two scheduler
// round-trips — the engine is also trivially safe to run inside the
// harness's `--jobs` worker pool (one engine per cell, zero shared state).
//
// The pre-existing thread-per-core token engine is retained behind the
// PCAP_SMP_LEGACY_ENGINE build flag (ON by default) purely as the
// differential baseline: tests/test_smp_equivalence.cpp proves the
// cooperative engine reproduces its reports bit-for-bit, and
// bench/micro_simspeed measures the speedup against it.
//
// The SmpNode exposes the same PlatformControl face as the single-core
// Node, so the unmodified BMC firmware caps it; P-state/duty/gating
// actuations apply to every core (package-level control, as on the real
// platform).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#if defined(PCAP_SMP_LEGACY_ENGINE)
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#endif

#include "cache/cache.hpp"
#include "mem/dram.hpp"
#include "meter/watts_up.hpp"
#include "pmu/counters.hpp"
#include "power/model.hpp"
#include "power/pstate.hpp"
#include "power/thermal.hpp"
#include "sim/core_model.hpp"
#include "sim/execution_context.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "sim/platform_control.hpp"
#include "sim/workload.hpp"
#include "telemetry/probe.hpp"
#include "util/fiber.hpp"
#include "util/rng.hpp"

namespace pcap::sim {

enum class SmpEngine : std::uint8_t {
  /// Single-threaded cooperative run queue (default).
  kCooperative,
  /// Thread-per-core mutex/condvar token engine — differential baseline,
  /// available only when built with PCAP_SMP_LEGACY_ENGINE.
  kThreadedLegacy,
};

struct SmpConfig {
  MachineConfig machine = MachineConfig::romley();
  int cores = 2;
  /// Scheduling quantum in simulated time: a core runs at most this long
  /// before the engine resumes the laggard core.
  util::Picoseconds quantum = util::microseconds(5);
  SmpEngine engine = SmpEngine::kCooperative;
};

struct SmpCoreReport {
  std::string workload;
  util::Picoseconds elapsed = 0;
  /// This core's slice of the package energy, attributed by busy time
  /// (power metering is package-level, so an exact per-core split does not
  /// exist on this platform — same limitation as the paper's wall meter).
  /// The shares of all cores sum to SmpRunReport::energy_j.
  double energy_share_j = 0.0;
  std::array<std::uint64_t, pmu::kEventCount> counters{};

  std::uint64_t counter(pmu::Event e) const {
    return counters[pmu::index_of(e)];
  }
};

struct SmpRunReport {
  util::Picoseconds elapsed = 0;  // slowest core's finish time
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  util::Hertz avg_frequency = 0;
  std::vector<SmpCoreReport> cores;
  /// Aggregate counter deltas across all cores.
  std::array<std::uint64_t, pmu::kEventCount> counters{};

  std::uint64_t counter(pmu::Event e) const {
    return counters[pmu::index_of(e)];
  }
};

class SmpNode final : public PlatformControl {
 public:
  explicit SmpNode(const SmpConfig& config, std::uint64_t seed = 1);
  ~SmpNode() override;

  SmpNode(const SmpNode&) = delete;
  SmpNode& operator=(const SmpNode&) = delete;

  int core_count() const { return static_cast<int>(lanes_.size()); }
  const SmpConfig& config() const { return config_; }

  /// Runs one workload per core (workloads.size() <= core_count();
  /// remaining cores stay parked). Throws std::invalid_argument on size
  /// mismatch, null or duplicate entries. Exception-safe: a throwing
  /// workload (or control hook) unwinds every suspended co-runner before
  /// the exception escapes, and the engine never leaks a joinable thread
  /// or a live continuation.
  SmpRunReport run(std::span<Workload* const> workloads);

  using ControlHook = std::function<void(PlatformControl&)>;
  void set_control_hook(ControlHook hook) { control_hook_ = std::move(hook); }
  void set_os_noise(bool enabled) { os_noise_enabled_ = enabled; }

  /// Attaches a package-level telemetry probe fed every housekeeping tick
  /// (aggregate counters across cores; nullptr detaches). Read-only:
  /// results are bit-identical with or without it.
  void set_telemetry(telemetry::NodeProbe* probe) { probe_ = probe; }
  /// Attaches per-core probes (probes[i] follows core i; shorter spans
  /// leave the remaining cores unprobed, null entries skip a core). Each
  /// probe sees the package operating point (frequency/P-state/duty are
  /// package-wide) with that core's private counters, so per-core
  /// frequency and IPC series can be charted side by side.
  void set_core_telemetry(std::span<telemetry::NodeProbe* const> probes) {
    core_probes_.assign(probes.begin(), probes.end());
  }

  /// Cold-start hygiene between measured runs (the single-core
  /// CappedRunner's equivalent): drops every cache/TLB on every core plus
  /// the shared levels.
  void flush_all_caches();

  const meter::WattsUp& meter() const { return meter_; }
  const cache::Cache& shared_l3() const { return l3_; }
  const mem::Dram& shared_dram() const { return dram_; }
  double temperature_c() const { return thermal_.temperature_c(); }

  // --- PlatformControl (package-level: applies to every core) ---
  std::uint32_t pstate_count() const override {
    return static_cast<std::uint32_t>(pstates_.size());
  }
  std::uint32_t pstate() const override;
  void set_pstate(std::uint32_t index) override;
  util::Hertz frequency() const override;
  double duty() const override;
  void set_duty(double duty) override;
  double min_duty() const override { return CoreModel::kMinDuty; }
  std::uint32_t l3_ways() const override { return l3_.active_ways(); }
  std::uint32_t l3_max_ways() const override {
    return config_.machine.hierarchy.l3.ways;
  }
  void set_l3_ways(std::uint32_t n) override;
  std::uint32_t l2_ways() const override;
  std::uint32_t l2_max_ways() const override {
    return config_.machine.hierarchy.l2.ways;
  }
  void set_l2_ways(std::uint32_t n) override;
  std::uint32_t itlb_entries() const override;
  std::uint32_t itlb_max_entries() const override {
    return config_.machine.hierarchy.itlb.entries;
  }
  void set_itlb_entries(std::uint32_t n) override;
  std::uint32_t dtlb_entries() const override;
  std::uint32_t dtlb_max_entries() const override {
    return config_.machine.hierarchy.dtlb.entries;
  }
  void set_dtlb_entries(std::uint32_t n) override;
  bool dram_gated() const override { return dram_.gated(); }
  void set_dram_gated(bool gated) override { dram_.set_gated(gated); }
  double window_average_power_w() override;
  double instantaneous_power_w() const override { return watts_; }
  double memory_stall_fraction() const override { return stall_fraction_; }
  util::Picoseconds now() const override { return node_now_; }

 private:
  /// One core's execution lane; implements the per-op quantum check. The
  /// lane doubles as the per-core stream context holder: its
  /// ExecutionContext carries the fast-path stream machinery (PR 2), whose
  /// bulk groups truncate at this lane's quantum horizon, so batching
  /// stays legal under co-runners (DESIGN.md §12).
  struct Lane final : TickSink {
    SmpNode* owner = nullptr;
    int index = 0;
    pmu::CounterBank bank;
    std::unique_ptr<MemoryHierarchy> hierarchy;
    std::unique_ptr<CoreModel> core;
    Workload* workload = nullptr;
    bool finished = true;  // no workload assigned yet
    util::Picoseconds quantum_end = 0;
    std::array<std::uint64_t, pmu::kEventCount> start_counters{};
    util::Picoseconds start_time = 0;

    // Cooperative-engine state (per run).
    std::unique_ptr<ExecutionContext> ctx;
    std::unique_ptr<util::Fiber> fiber;  // null for steppable workloads

#if defined(PCAP_SMP_LEGACY_ENGINE)
    std::thread thread;
    std::exception_ptr error;
#endif

    void on_op() override;
    /// A lane keeps running without yielding until its quantum expires.
    util::Picoseconds op_horizon() const override { return quantum_end; }
  };

  void yield_from(Lane& lane);
  int pick_next_lane() const;  // -1 when all finished

  /// Shared run() prologue/epilogue (identical for both engines).
  util::Picoseconds prepare_run(std::span<Workload* const> workloads);
  SmpRunReport finish_run(std::span<Workload* const> workloads,
                          util::Picoseconds start);
  /// Housekeeping after one lane's quantum: advance node time to the
  /// slowest unfinished core (everything before that point is final).
  void settle_quantum();

  SmpRunReport run_cooperative(std::span<Workload* const> workloads);
  /// Unwinds every suspended continuation and clears per-run lane state.
  void teardown_lanes() noexcept;

#if defined(PCAP_SMP_LEGACY_ENGINE)
  struct EngineAbort {};  // thrown into lanes to unwind an aborted run
  SmpRunReport run_threaded(std::span<Workload* const> workloads);
  void finish_from(Lane& lane);
#endif

  void housekeeping(util::Picoseconds upto);
  void feed_probes(util::Picoseconds now);
  power::PowerInputs assemble_inputs() const;
  int running_lanes() const;

  SmpConfig config_;
  power::PStateTable pstates_;
  cache::Cache l3_;
  mem::Dram dram_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  power::NodePowerModel power_model_;
  power::ThermalModel thermal_;
  meter::WattsUp meter_;
  util::Rng rng_;
  ControlHook control_hook_;
  telemetry::NodeProbe* probe_ = nullptr;
  std::vector<telemetry::NodeProbe*> core_probes_;
  bool os_noise_enabled_ = true;
  bool running_ = false;

#if defined(PCAP_SMP_LEGACY_ENGINE)
  std::mutex mutex_;
  std::condition_variable cv_;
  int token_ = -1;  // lane index holding the token; -1 == master
  bool abort_ = false;
#endif

  util::Picoseconds node_now_ = 0;
  util::Picoseconds last_tick_ = 0;
  util::Picoseconds next_control_ = 0;
  util::Picoseconds next_noise_ = 0;
  double watts_ = 0.0;
  double peak_watts_ = 0.0;
  double window_energy_j_ = 0.0;
  util::Picoseconds window_start_ = 0;
  double freq_time_integral_ = 0.0;

  // Rate computation between housekeeping ticks (aggregate).
  std::uint64_t last_l3_acc_ = 0;
  std::uint64_t last_dram_acc_ = 0;
  std::uint64_t last_ins_ = 0;
  std::uint64_t last_cyc_ = 0;
  std::uint64_t last_stall_ = 0;
  double activity_ = 0.9;
  double stall_fraction_ = 0.0;
  double l3_rate_hz_ = 0.0;
  double dram_rate_hz_ = 0.0;
};

}  // namespace pcap::sim
