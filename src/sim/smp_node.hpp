// Symmetric multiprocessing node: N cores, each with its own pipeline,
// private L1I/L1D/L2 and TLBs, sharing the L3 and DRAM — the substrate for
// the paper's first future-work question ("how are multi-core applications
// affected by power capping?").
//
// Each workload runs on its own core, on its own host thread, but execution
// is strictly serialised by a scheduler token: exactly one core advances at
// a time, in fixed simulated-time quanta, and the core with the smallest
// local time always runs next. The interleaving over the shared L3/DRAM is
// therefore deterministic (identical seeds reproduce runs bit-for-bit) and
// free of data races, while contention between cores is modelled for real:
// co-running workloads evict each other's L3 lines and disturb each other's
// DRAM row buffers.
//
// The SmpNode exposes the same PlatformControl face as the single-core
// Node, so the unmodified BMC firmware caps it; P-state/duty/gating
// actuations apply to every core (package-level control, as on the real
// platform).
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.hpp"
#include "mem/dram.hpp"
#include "meter/watts_up.hpp"
#include "pmu/counters.hpp"
#include "power/model.hpp"
#include "power/pstate.hpp"
#include "power/thermal.hpp"
#include "sim/core_model.hpp"
#include "sim/execution_context.hpp"
#include "sim/hierarchy.hpp"
#include "sim/machine_config.hpp"
#include "sim/platform_control.hpp"
#include "sim/workload.hpp"
#include "util/rng.hpp"

namespace pcap::sim {

struct SmpConfig {
  MachineConfig machine = MachineConfig::romley();
  int cores = 2;
  /// Scheduling quantum in simulated time: a core runs at most this long
  /// before the token moves to the laggard core.
  util::Picoseconds quantum = util::microseconds(5);
};

struct SmpCoreReport {
  std::string workload;
  util::Picoseconds elapsed = 0;
  std::array<std::uint64_t, pmu::kEventCount> counters{};

  std::uint64_t counter(pmu::Event e) const {
    return counters[pmu::index_of(e)];
  }
};

struct SmpRunReport {
  util::Picoseconds elapsed = 0;  // slowest core's finish time
  double energy_j = 0.0;
  double avg_power_w = 0.0;
  double peak_power_w = 0.0;
  util::Hertz avg_frequency = 0;
  std::vector<SmpCoreReport> cores;
  /// Aggregate counter deltas across all cores.
  std::array<std::uint64_t, pmu::kEventCount> counters{};

  std::uint64_t counter(pmu::Event e) const {
    return counters[pmu::index_of(e)];
  }
};

class SmpNode final : public PlatformControl {
 public:
  explicit SmpNode(const SmpConfig& config, std::uint64_t seed = 1);
  ~SmpNode() override;

  SmpNode(const SmpNode&) = delete;
  SmpNode& operator=(const SmpNode&) = delete;

  int core_count() const { return static_cast<int>(lanes_.size()); }
  const SmpConfig& config() const { return config_; }

  /// Runs one workload per core (workloads.size() <= core_count();
  /// remaining cores stay parked). Throws std::invalid_argument on
  /// size mismatch or null entries.
  SmpRunReport run(std::span<Workload* const> workloads);

  using ControlHook = std::function<void(PlatformControl&)>;
  void set_control_hook(ControlHook hook) { control_hook_ = std::move(hook); }
  void set_os_noise(bool enabled) { os_noise_enabled_ = enabled; }

  /// Cold-start hygiene between measured runs (the single-core
  /// CappedRunner's equivalent): drops every cache/TLB on every core plus
  /// the shared levels.
  void flush_all_caches();

  const meter::WattsUp& meter() const { return meter_; }
  const cache::Cache& shared_l3() const { return l3_; }
  const mem::Dram& shared_dram() const { return dram_; }
  double temperature_c() const { return thermal_.temperature_c(); }

  // --- PlatformControl (package-level: applies to every core) ---
  std::uint32_t pstate_count() const override {
    return static_cast<std::uint32_t>(pstates_.size());
  }
  std::uint32_t pstate() const override;
  void set_pstate(std::uint32_t index) override;
  util::Hertz frequency() const override;
  double duty() const override;
  void set_duty(double duty) override;
  double min_duty() const override { return CoreModel::kMinDuty; }
  std::uint32_t l3_ways() const override { return l3_.active_ways(); }
  std::uint32_t l3_max_ways() const override {
    return config_.machine.hierarchy.l3.ways;
  }
  void set_l3_ways(std::uint32_t n) override;
  std::uint32_t l2_ways() const override;
  std::uint32_t l2_max_ways() const override {
    return config_.machine.hierarchy.l2.ways;
  }
  void set_l2_ways(std::uint32_t n) override;
  std::uint32_t itlb_entries() const override;
  std::uint32_t itlb_max_entries() const override {
    return config_.machine.hierarchy.itlb.entries;
  }
  void set_itlb_entries(std::uint32_t n) override;
  std::uint32_t dtlb_entries() const override;
  std::uint32_t dtlb_max_entries() const override {
    return config_.machine.hierarchy.dtlb.entries;
  }
  void set_dtlb_entries(std::uint32_t n) override;
  bool dram_gated() const override { return dram_.gated(); }
  void set_dram_gated(bool gated) override { dram_.set_gated(gated); }
  double window_average_power_w() override;
  double instantaneous_power_w() const override { return watts_; }
  double memory_stall_fraction() const override { return stall_fraction_; }
  util::Picoseconds now() const override { return node_now_; }

 private:
  /// One core's execution lane; implements the per-op quantum check.
  struct Lane final : TickSink {
    SmpNode* owner = nullptr;
    int index = 0;
    pmu::CounterBank bank;
    std::unique_ptr<MemoryHierarchy> hierarchy;
    std::unique_ptr<CoreModel> core;
    std::thread thread;
    Workload* workload = nullptr;
    bool finished = true;  // no workload assigned yet
    util::Picoseconds quantum_end = 0;
    std::array<std::uint64_t, pmu::kEventCount> start_counters{};
    util::Picoseconds start_time = 0;

    void on_op() override;
    /// A lane keeps running without yielding until its quantum expires.
    util::Picoseconds op_horizon() const override { return quantum_end; }
  };

  // Scheduler token protocol (one mutex, one condvar; -1 == master holds).
  void grant(int lane_index);
  void yield_from(Lane& lane);
  void finish_from(Lane& lane);
  int pick_next_lane() const;  // -1 when all finished

  void housekeeping(util::Picoseconds upto);
  power::PowerInputs assemble_inputs() const;
  int running_lanes() const;

  SmpConfig config_;
  power::PStateTable pstates_;
  cache::Cache l3_;
  mem::Dram dram_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  power::NodePowerModel power_model_;
  power::ThermalModel thermal_;
  meter::WattsUp meter_;
  util::Rng rng_;
  ControlHook control_hook_;
  bool os_noise_enabled_ = true;
  bool running_ = false;

  std::mutex mutex_;
  std::condition_variable cv_;
  int token_ = -1;  // lane index holding the token; -1 == master

  util::Picoseconds node_now_ = 0;
  util::Picoseconds last_tick_ = 0;
  util::Picoseconds next_control_ = 0;
  util::Picoseconds next_noise_ = 0;
  double watts_ = 0.0;
  double peak_watts_ = 0.0;
  double window_energy_j_ = 0.0;
  util::Picoseconds window_start_ = 0;
  double freq_time_integral_ = 0.0;

  // Rate computation between housekeeping ticks (aggregate).
  std::uint64_t last_l3_acc_ = 0;
  std::uint64_t last_dram_acc_ = 0;
  std::uint64_t last_ins_ = 0;
  std::uint64_t last_cyc_ = 0;
  std::uint64_t last_stall_ = 0;
  double activity_ = 0.9;
  double stall_fraction_ = 0.0;
  double l3_rate_hz_ = 0.0;
  double dram_rate_hz_ = 0.0;
};

}  // namespace pcap::sim
