#include "cache/cache.hpp"

#include <bit>
#include <stdexcept>

namespace pcap::cache {

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (config.line_bytes == 0 || !std::has_single_bit(config.line_bytes)) {
    throw std::invalid_argument("Cache: line size must be a power of two");
  }
  if (config.ways == 0) {
    throw std::invalid_argument("Cache: need at least one way");
  }
  const std::uint64_t line_way = static_cast<std::uint64_t>(config.line_bytes) * config.ways;
  if (config.size_bytes == 0 || config.size_bytes % line_way != 0) {
    throw std::invalid_argument("Cache: size must be a multiple of line*ways");
  }
  sets_ = config.size_bytes / line_way;
  if (!std::has_single_bit(sets_)) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  set_mask_ = sets_ - 1;
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  line_mask_ = config.line_bytes - 1;
  active_ways_ = config.ways;
  lines_.resize(sets_ * config.ways);
  mru_way_.assign(sets_, 0);
}

bool Cache::is_mru_hit(Address addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint32_t w = mru_way_[set];
  if (w >= active_ways_) return false;
  const Line& line = lines_[set * config_.ways + w];
  return line.valid && line.age == 0 && line.tag == tag_of(addr);
}

bool Cache::note_mru_hits(Address addr, bool is_write, std::uint64_t n) {
  const std::uint64_t set = set_index(addr);
  const std::uint32_t w = mru_way_[set];
  if (w >= active_ways_) return false;
  Line& line = lines_[set * config_.ways + w];
  if (!line.valid || line.age != 0 || line.tag != tag_of(addr)) return false;
  stats_.accesses += n;
  stats_.hits += n;
  if (is_write && n != 0) line.dirty = true;
  return true;
}

Cache::Line* Cache::find(Address addr) {
  const std::uint64_t set = set_index(addr);
  const Address tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];
  for (std::uint32_t w = 0; w < active_ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) return &base[w];
  }
  return nullptr;
}

const Cache::Line* Cache::find(Address addr) const {
  return const_cast<Cache*>(this)->find(addr);
}

void Cache::touch(std::uint64_t set, std::uint32_t way) {
  Line* base = &lines_[set * config_.ways];
  const std::uint8_t old_age = base[way].age;
  for (std::uint32_t w = 0; w < active_ways_; ++w) {
    if (base[w].valid && base[w].age < old_age) ++base[w].age;
  }
  base[way].age = 0;
}

AccessOutcome Cache::access(Address addr, bool is_write) {
  ++stats_.accesses;
  const std::uint64_t set = set_index(addr);
  const Address tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];

  // Fast path: repeat hit on the set's MRU line. touch() would be a no-op
  // (every other line is already older), so skip the scan and aging walk.
  const std::uint32_t hint = mru_way_[set];
  if (hint < active_ways_ && base[hint].valid && base[hint].age == 0 &&
      base[hint].tag == tag) {
    if (is_write) base[hint].dirty = true;
    ++stats_.hits;
    return {.hit = true, .evicted_line = std::nullopt, .evicted_dirty = false};
  }

  for (std::uint32_t w = 0; w < active_ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      touch(set, w);
      mru_way_[set] = w;
      if (is_write) base[w].dirty = true;
      ++stats_.hits;
      return {.hit = true, .evicted_line = std::nullopt, .evicted_dirty = false};
    }
  }

  ++stats_.misses;
  AccessOutcome outcome;
  outcome.hit = false;

  if (is_write && !config_.write_allocate) return outcome;

  // Victim: an invalid active way if any, else the LRU (max age) active way.
  std::uint32_t victim = 0;
  bool found_invalid = false;
  std::uint8_t worst_age = 0;
  for (std::uint32_t w = 0; w < active_ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      found_invalid = true;
      break;
    }
    if (base[w].age >= worst_age) {
      worst_age = base[w].age;
      victim = w;
    }
  }
  if (!found_invalid && base[victim].valid) {
    outcome.evicted_line = addr_of(base[victim].tag);
    outcome.evicted_dirty = base[victim].dirty;
    ++stats_.evictions;
  }
  // A fill makes the new line MRU: every resident line ages by one step.
  for (std::uint32_t w = 0; w < active_ways_; ++w) {
    if (base[w].valid && base[w].age < 254) ++base[w].age;
  }
  base[victim].tag = tag;
  base[victim].valid = true;
  base[victim].dirty = is_write;
  base[victim].age = 0;
  mru_way_[set] = victim;
  return outcome;
}

bool Cache::contains(Address addr) const { return find(addr) != nullptr; }

bool Cache::invalidate(Address addr, bool* was_dirty) {
  Line* line = find(addr);
  if (line == nullptr) return false;
  if (was_dirty != nullptr) *was_dirty = line->dirty;
  line->valid = false;
  line->dirty = false;
  ++stats_.invalidations;
  return true;
}

void Cache::flush_all() {
  for (auto& line : lines_) {
    if (line.valid) ++stats_.invalidations;
    line.valid = false;
    line.dirty = false;
    line.age = 0;
  }
}

std::uint64_t Cache::set_active_ways(std::uint32_t n) {
  if (n < 1) n = 1;
  if (n > config_.ways) n = config_.ways;
  std::uint64_t dropped = 0;
  if (n < active_ways_) {
    // Invalidate lines living in the ways being gated.
    for (std::uint64_t set = 0; set < sets_; ++set) {
      Line* base = &lines_[set * config_.ways];
      for (std::uint32_t w = n; w < active_ways_; ++w) {
        if (base[w].valid) {
          base[w].valid = false;
          base[w].dirty = false;
          ++dropped;
          ++stats_.invalidations;
        }
      }
      // Re-normalise ages so surviving lines keep a consistent LRU order.
      for (std::uint32_t w = 0; w < n; ++w) {
        if (base[w].age >= n) base[w].age = static_cast<std::uint8_t>(n - 1);
      }
    }
  }
  active_ways_ = n;
  return dropped;
}

std::uint64_t Cache::valid_lines() const {
  std::uint64_t count = 0;
  for (const auto& line : lines_) count += line.valid ? 1 : 0;
  return count;
}

std::vector<Address> Cache::valid_line_addresses() const {
  std::vector<Address> addresses;
  for (std::uint64_t set = 0; set < sets_; ++set) {
    const Line* base = &lines_[set * config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      if (base[w].valid) {
        addresses.push_back((base[w].tag << line_shift_));
      }
    }
  }
  return addresses;
}

}  // namespace pcap::cache
