// Set-associative cache model with true-LRU replacement and way gating.
//
// The model is purely structural: it answers hit/miss and reports evictions;
// latency and power are composed by the memory hierarchy and power model.
// Way gating (set_active_ways) implements the dynamic cache reconfiguration
// mechanism the paper hypothesises is engaged at low power caps: gated ways
// are invalidated and excluded from allocation, shrinking effective capacity
// and associativity while saving leakage power.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace pcap::cache {

using Address = std::uint64_t;

struct CacheConfig {
  std::string name = "cache";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;   // power of two
  std::uint32_t ways = 8;          // associativity
  bool write_allocate = true;

  std::uint64_t sets() const { return size_bytes / (line_bytes * ways); }
};

/// Result of one cache access.
struct AccessOutcome {
  bool hit = false;
  /// When a fill evicted a valid line, its base address.
  std::optional<Address> evicted_line;
  bool evicted_dirty = false;
};

/// Structural statistics (separate from the PMU, which the hierarchy feeds).
struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t invalidations = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class Cache {
 public:
  /// Throws std::invalid_argument if the geometry is inconsistent
  /// (non-power-of-two line size, size not divisible by line*ways, ...).
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }
  std::uint64_t sets() const { return sets_; }
  std::uint32_t active_ways() const { return active_ways_; }

  /// Looks up `addr`; on miss, allocates (for reads always; for writes only
  /// if write_allocate). Returns the outcome including any eviction.
  AccessOutcome access(Address addr, bool is_write);

  /// True when the line holding `addr` is resident in an active way and is
  /// its set's most-recently-used line, i.e. another access would be a pure
  /// hit whose LRU touch is a no-op. No state or statistics change.
  bool is_mru_hit(Address addr) const;

  /// Accounts `n` repeat hits on the MRU line holding `addr` without
  /// re-walking the set: by definition the LRU state cannot change, so only
  /// statistics (and the dirty bit for writes) move. Verifies the MRU
  /// precondition itself and returns false having accounted nothing if it
  /// does not hold — callers then fall back to access().
  bool note_mru_hits(Address addr, bool is_write, std::uint64_t n);

  /// True if the line containing addr is present (no LRU update).
  bool contains(Address addr) const;

  /// Invalidates the line containing addr if present. Returns true if a
  /// valid line was dropped; sets `was_dirty` accordingly when non-null.
  bool invalidate(Address addr, bool* was_dirty = nullptr);

  /// Drops every valid line.
  void flush_all();

  /// Gates ways [n, ways): their lines are invalidated and they are excluded
  /// from hits and allocation until re-enabled. n is clamped to [1, ways].
  /// Returns the number of valid lines dropped.
  std::uint64_t set_active_ways(std::uint32_t n);

  /// Number of currently valid lines (for capacity assertions in tests).
  std::uint64_t valid_lines() const;

  /// Base addresses of every valid line (tests: inclusion invariants).
  std::vector<Address> valid_line_addresses() const;

  /// Effective capacity with the current gating, in bytes.
  std::uint64_t effective_size_bytes() const {
    return sets_ * active_ways_ * config_.line_bytes;
  }

  const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

  Address line_base(Address addr) const { return addr & ~line_mask_; }

 private:
  struct Line {
    Address tag = 0;
    std::uint8_t age = 0;  // 0 == most recently used within the set
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t set_index(Address addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  Address tag_of(Address addr) const { return addr >> line_shift_; }
  Address addr_of(Address tag) const { return tag << line_shift_; }
  Line* find(Address addr);
  const Line* find(Address addr) const;
  void touch(std::uint64_t set, std::uint32_t way);

  CacheConfig config_;
  std::uint64_t sets_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t line_mask_ = 0;
  std::uint32_t active_ways_ = 0;
  std::vector<Line> lines_;  // sets_ * ways, row-major by set
  // Per-set hint: the way of the last hit or fill. Purely an accelerator —
  // a stale hint is caught by the validity/tag/age checks, never trusted.
  std::vector<std::uint32_t> mru_way_;
  CacheStats stats_;
};

}  // namespace pcap::cache
