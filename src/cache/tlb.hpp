// Fully-associative translation lookaside buffer with LRU replacement and
// entry gating (the power-saving mechanism that produces the paper's
// instruction-TLB miss explosions at low power caps).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace pcap::cache {

struct TlbConfig {
  std::string name = "tlb";
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;  // power of two
};

struct TlbStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;

  double miss_rate() const {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses)
                    : 0.0;
  }
};

class Tlb {
 public:
  /// Throws std::invalid_argument on a non-power-of-two page size or zero
  /// entry count.
  explicit Tlb(const TlbConfig& config);

  const TlbConfig& config() const { return config_; }
  std::uint32_t active_entries() const { return active_entries_; }

  /// Translates the page of `vaddr`. Returns true on a TLB hit; on a miss
  /// the translation is installed (evicting the LRU entry if full).
  bool lookup(std::uint64_t vaddr);

  /// Fast-path bulk hit: when the page of `vaddr` is mapped by one of the
  /// recently-used entries, accounts `n` back-to-back hits (statistics,
  /// logical clock, entry recency) exactly as `n` lookup() calls would and
  /// returns true. Otherwise accounts nothing and returns false — the
  /// caller falls back to lookup().
  bool note_hits(std::uint64_t vaddr, std::uint64_t n = 1);

  /// True if the page is currently cached (no LRU update).
  bool contains(std::uint64_t vaddr) const;

  /// Gates entries [n, entries): flushed and excluded until re-enabled.
  /// n is clamped to [1, entries].
  void set_active_entries(std::uint32_t n);

  void flush();

  /// Pages the TLB can map with current gating.
  std::uint64_t reach_bytes() const {
    return static_cast<std::uint64_t>(active_entries_) * config_.page_bytes;
  }

  const TlbStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TlbStats{}; }

 private:
  struct Entry {
    std::uint64_t page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::uint64_t page_of(std::uint64_t vaddr) const {
    return vaddr >> page_shift_;
  }
  void promote(std::uint32_t idx);

  TlbConfig config_;
  std::uint32_t page_shift_ = 12;
  std::uint32_t active_entries_ = 0;
  std::uint64_t tick_ = 0;
  std::vector<Entry> entries_;
  // Indices of the most recently hit/installed entries, most recent first.
  // Purely an accelerator: stale indices are re-validated before use.
  std::array<std::uint32_t, 4> mru_{};
  TlbStats stats_;
};

}  // namespace pcap::cache
