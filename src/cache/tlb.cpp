#include "cache/tlb.hpp"

#include <bit>
#include <stdexcept>

namespace pcap::cache {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  if (config.page_bytes == 0 || !std::has_single_bit(config.page_bytes)) {
    throw std::invalid_argument("Tlb: page size must be a power of two");
  }
  if (config.entries == 0) {
    throw std::invalid_argument("Tlb: need at least one entry");
  }
  page_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.page_bytes));
  active_entries_ = config.entries;
  entries_.resize(config.entries);
}

bool Tlb::lookup(std::uint64_t vaddr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t page = page_of(vaddr);

  Entry* lru = &entries_[0];
  for (std::uint32_t i = 0; i < active_entries_; ++i) {
    Entry& e = entries_[i];
    if (e.valid && e.page == page) {
      e.last_use = tick_;
      return true;
    }
    if (!e.valid) {
      lru = &e;  // prefer an empty slot
    } else if (lru->valid && e.last_use < lru->last_use) {
      lru = &e;
    }
  }

  ++stats_.misses;
  lru->page = page;
  lru->valid = true;
  lru->last_use = tick_;
  return false;
}

bool Tlb::contains(std::uint64_t vaddr) const {
  const std::uint64_t page = page_of(vaddr);
  for (std::uint32_t i = 0; i < active_entries_; ++i) {
    if (entries_[i].valid && entries_[i].page == page) return true;
  }
  return false;
}

void Tlb::set_active_entries(std::uint32_t n) {
  if (n < 1) n = 1;
  if (n > config_.entries) n = config_.entries;
  for (std::uint32_t i = n; i < active_entries_; ++i) entries_[i].valid = false;
  active_entries_ = n;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
}

}  // namespace pcap::cache
