#include "cache/tlb.hpp"

#include <bit>
#include <stdexcept>

namespace pcap::cache {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  if (config.page_bytes == 0 || !std::has_single_bit(config.page_bytes)) {
    throw std::invalid_argument("Tlb: page size must be a power of two");
  }
  if (config.entries == 0) {
    throw std::invalid_argument("Tlb: need at least one entry");
  }
  page_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.page_bytes));
  active_entries_ = config.entries;
  entries_.resize(config.entries);
}

void Tlb::promote(std::uint32_t idx) {
  if (mru_[0] == idx) return;
  std::uint32_t prev = mru_[0];
  mru_[0] = idx;
  for (std::size_t s = 1; s < mru_.size(); ++s) {
    const std::uint32_t cur = mru_[s];
    mru_[s] = prev;
    if (cur == idx) break;
    prev = cur;
  }
}

bool Tlb::note_hits(std::uint64_t vaddr, std::uint64_t n) {
  if (n == 0) return false;
  const std::uint64_t page = page_of(vaddr);
  for (std::size_t s = 0; s < mru_.size(); ++s) {
    const std::uint32_t idx = mru_[s];
    if (idx >= active_entries_) continue;
    Entry& e = entries_[idx];
    if (!e.valid || e.page != page) continue;
    // n consecutive hits: each bumps the clock and stamps this entry; only
    // the final stamp survives, so the bulk form is exact.
    stats_.accesses += n;
    tick_ += n;
    e.last_use = tick_;
    if (s != 0) promote(idx);
    return true;
  }
  return false;
}

bool Tlb::lookup(std::uint64_t vaddr) {
  if (note_hits(vaddr, 1)) return true;

  ++stats_.accesses;
  ++tick_;
  const std::uint64_t page = page_of(vaddr);

  Entry* lru = &entries_[0];
  for (std::uint32_t i = 0; i < active_entries_; ++i) {
    Entry& e = entries_[i];
    if (e.valid && e.page == page) {
      e.last_use = tick_;
      promote(i);
      return true;
    }
    if (!e.valid) {
      lru = &e;  // prefer an empty slot
    } else if (lru->valid && e.last_use < lru->last_use) {
      lru = &e;
    }
  }

  ++stats_.misses;
  lru->page = page;
  lru->valid = true;
  lru->last_use = tick_;
  promote(static_cast<std::uint32_t>(lru - entries_.data()));
  return false;
}

bool Tlb::contains(std::uint64_t vaddr) const {
  const std::uint64_t page = page_of(vaddr);
  for (std::uint32_t i = 0; i < active_entries_; ++i) {
    if (entries_[i].valid && entries_[i].page == page) return true;
  }
  return false;
}

void Tlb::set_active_entries(std::uint32_t n) {
  if (n < 1) n = 1;
  if (n > config_.entries) n = config_.entries;
  for (std::uint32_t i = n; i < active_entries_; ++i) entries_[i].valid = false;
  active_entries_ = n;
}

void Tlb::flush() {
  for (auto& e : entries_) e.valid = false;
}

}  // namespace pcap::cache
