// Counter storage and a PAPI-like EventSet facade.
//
// The simulator increments a CounterBank as it executes; measurement code
// builds an EventSet over the bank, starts it, runs a region of interest and
// reads the per-event deltas — exactly the PAPI_start/PAPI_stop workflow the
// paper used.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pmu/events.hpp"

namespace pcap::pmu {

/// Monotonic free-running counters, one per Event.
class CounterBank {
 public:
  void add(Event e, std::uint64_t n = 1) { values_[index_of(e)] += n; }
  std::uint64_t get(Event e) const { return values_[index_of(e)]; }
  void reset() { values_.fill(0); }

  /// Snapshot of every counter (indexable by index_of(event)).
  std::array<std::uint64_t, kEventCount> snapshot() const { return values_; }

 private:
  std::array<std::uint64_t, kEventCount> values_{};
};

/// A measured region: deltas of selected events between start() and stop().
class EventSet {
 public:
  explicit EventSet(const CounterBank& bank) : bank_(&bank) {}

  /// Adds an event to the set. Throws std::logic_error if running.
  void add(Event e);
  bool contains(Event e) const;
  std::size_t size() const { return events_.size(); }

  /// Begins a measurement. Throws std::logic_error if already running.
  void start();
  /// Ends the measurement, latching deltas. Throws if not running.
  void stop();
  bool running() const { return running_; }

  /// Delta for one event over the last start/stop window (live value while
  /// running). Throws std::out_of_range if the event is not in the set.
  std::uint64_t read(Event e) const;

  /// Deltas for every event in the set, in insertion order.
  std::vector<std::uint64_t> read_all() const;
  const std::vector<Event>& events() const { return events_; }

 private:
  const CounterBank* bank_;
  std::vector<Event> events_;
  std::array<std::uint64_t, kEventCount> start_snapshot_{};
  std::array<std::uint64_t, kEventCount> stop_snapshot_{};
  bool running_ = false;
  bool measured_ = false;
};

/// Derived metrics used throughout the evaluation.
struct DerivedMetrics {
  double ipc = 0.0;          // committed instructions per cycle
  double l1d_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;
  double mpki_l2 = 0.0;      // L2 misses per kilo committed instruction
  double mpki_l3 = 0.0;
};

DerivedMetrics derive(const CounterBank& bank);

}  // namespace pcap::pmu
