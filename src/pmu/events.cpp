#include "pmu/events.hpp"

namespace pcap::pmu {

namespace {

constexpr std::array<std::string_view, kEventCount> kNames = {
    "PCAP_TOT_CYC",  "PCAP_TOT_INS", "PCAP_INS_EXEC", "PCAP_LD_INS",
    "PCAP_SR_INS",   "PCAP_BR_INS",  "PCAP_BR_MSP",   "PCAP_L1_DCA",
    "PCAP_L1_DCM",   "PCAP_L1_ICA",  "PCAP_L1_ICM",   "PCAP_L2_TCA",
    "PCAP_L2_TCM",   "PCAP_L3_TCA",  "PCAP_L3_TCM",   "PCAP_TLB_DM",
    "PCAP_TLB_IM",   "PCAP_DRAM_ACC", "PCAP_L2_PF",    "PCAP_STALL_CYC",
};

}  // namespace

std::string_view event_name(Event e) {
  const auto i = index_of(e);
  return i < kNames.size() ? kNames[i] : std::string_view("PCAP_UNKNOWN");
}

Event event_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNames.size(); ++i) {
    if (kNames[i] == name) return static_cast<Event>(i);
  }
  return Event::kCount;
}

}  // namespace pcap::pmu
