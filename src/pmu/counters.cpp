#include "pmu/counters.hpp"

#include <algorithm>

namespace pcap::pmu {

void EventSet::add(Event e) {
  if (running_) throw std::logic_error("EventSet::add while running");
  if (!contains(e)) events_.push_back(e);
}

bool EventSet::contains(Event e) const {
  return std::find(events_.begin(), events_.end(), e) != events_.end();
}

void EventSet::start() {
  if (running_) throw std::logic_error("EventSet::start while running");
  start_snapshot_ = bank_->snapshot();
  running_ = true;
}

void EventSet::stop() {
  if (!running_) throw std::logic_error("EventSet::stop while not running");
  stop_snapshot_ = bank_->snapshot();
  running_ = false;
  measured_ = true;
}

std::uint64_t EventSet::read(Event e) const {
  if (!contains(e)) throw std::out_of_range("EventSet::read: event not in set");
  const auto i = index_of(e);
  if (running_) return bank_->snapshot()[i] - start_snapshot_[i];
  if (!measured_) return 0;
  return stop_snapshot_[i] - start_snapshot_[i];
}

std::vector<std::uint64_t> EventSet::read_all() const {
  std::vector<std::uint64_t> out;
  out.reserve(events_.size());
  for (Event e : events_) out.push_back(read(e));
  return out;
}

DerivedMetrics derive(const CounterBank& bank) {
  DerivedMetrics m;
  const auto cyc = bank.get(Event::kTotCyc);
  const auto ins = bank.get(Event::kTotIns);
  const auto l1a = bank.get(Event::kL1Dca);
  const auto l1m = bank.get(Event::kL1Dcm);
  const auto l2a = bank.get(Event::kL2Tca);
  const auto l2m = bank.get(Event::kL2Tcm);
  const auto l3a = bank.get(Event::kL3Tca);
  const auto l3m = bank.get(Event::kL3Tcm);
  auto rate = [](std::uint64_t misses, std::uint64_t accesses) {
    return accesses ? static_cast<double>(misses) / static_cast<double>(accesses)
                    : 0.0;
  };
  m.ipc = cyc ? static_cast<double>(ins) / static_cast<double>(cyc) : 0.0;
  m.l1d_miss_rate = rate(l1m, l1a);
  m.l2_miss_rate = rate(l2m, l2a);
  m.l3_miss_rate = rate(l3m, l3a);
  if (ins) {
    m.mpki_l2 = static_cast<double>(l2m) * 1000.0 / static_cast<double>(ins);
    m.mpki_l3 = static_cast<double>(l3m) * 1000.0 / static_cast<double>(ins);
  }
  return m;
}

}  // namespace pcap::pmu
