// Hardware performance event identifiers, mirroring the PAPI preset events
// the paper collected on the Romley platform (PAPI_TOT_CYC, PAPI_L2_TCM,
// PAPI_TLB_IM, ...).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace pcap::pmu {

enum class Event : std::uint32_t {
  kTotCyc = 0,   // total core cycles (including duty-gated stall cycles)
  kTotIns,       // instructions committed (architecturally retired)
  kInsExec,      // instructions executed, incl. mis-speculated work
  kLdIns,        // load instructions executed
  kSrIns,        // store instructions executed
  kBrIns,        // branch instructions committed
  kBrMsp,        // branches mispredicted
  kL1Dca,        // L1 data cache accesses
  kL1Dcm,        // L1 data cache misses
  kL1Ica,        // L1 instruction cache accesses
  kL1Icm,        // L1 instruction cache misses
  kL2Tca,        // L2 total accesses
  kL2Tcm,        // L2 total misses
  kL3Tca,        // L3 total accesses
  kL3Tcm,        // L3 total misses
  kTlbDm,        // data TLB misses
  kTlbIm,        // instruction TLB misses
  kDramAcc,      // DRAM accesses (L3 misses reaching memory)
  kL2Pf,         // prefetches issued into the L2
  kStallCyc,     // cycles lost to memory stalls
  kCount,
};

inline constexpr std::size_t kEventCount = static_cast<std::size_t>(Event::kCount);

/// PAPI-style symbolic name ("PCAP_TOT_CYC").
std::string_view event_name(Event e);

/// Reverse lookup; returns Event::kCount for unknown names.
Event event_from_name(std::string_view name);

constexpr std::size_t index_of(Event e) { return static_cast<std::size_t>(e); }

inline constexpr std::array<Event, kEventCount> all_events() {
  std::array<Event, kEventCount> events{};
  for (std::size_t i = 0; i < kEventCount; ++i) {
    events[i] = static_cast<Event>(i);
  }
  return events;
}

}  // namespace pcap::pmu
