// Watts Up!–style wall power meter analog.
//
// The node pushes instantaneous node power into the meter at a fixed sample
// interval; the meter integrates energy and keeps the sample log, exactly
// the observables the paper reports (average node power, computed energy).
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace pcap::meter {

/// Rectangle-rule power-to-energy integrator.
class EnergyIntegrator {
 public:
  /// Accounts `watts` held constant over `dt`.
  void add(double watts, util::Picoseconds dt) {
    joules_ += watts * util::to_seconds(dt);
    elapsed_ += dt;
  }

  double joules() const { return joules_; }
  util::Picoseconds elapsed() const { return elapsed_; }
  double average_watts() const {
    return elapsed_ ? joules_ / util::to_seconds(elapsed_) : 0.0;
  }
  void reset() { *this = EnergyIntegrator{}; }

 private:
  double joules_ = 0.0;
  util::Picoseconds elapsed_ = 0;
};

struct MeterSample {
  util::Picoseconds time = 0;
  double watts = 0.0;
};

class WattsUp {
 public:
  /// `sample_period` is in simulated time (the simulator compresses the
  /// meter's real 1 Hz sampling by the global time-scale factor).
  /// `keep_log` bounds memory for long runs; 0 keeps everything.
  explicit WattsUp(util::Picoseconds sample_period = util::microseconds(200),
                   std::size_t max_log = 0);

  util::Picoseconds sample_period() const { return period_; }

  /// Called by the node with the power level that has held since the last
  /// call; `now` is current simulated time. Integrates energy continuously
  /// and logs a sample whenever a sample boundary is crossed.
  void observe(util::Picoseconds now, double watts);

  /// Clears the session (sample log + energy), e.g. at run start.
  void start_session(util::Picoseconds now);

  double energy_joules() const { return integrator_.joules(); }
  double average_watts() const { return integrator_.average_watts(); }
  util::Picoseconds session_elapsed() const { return integrator_.elapsed(); }

  const std::vector<MeterSample>& samples() const { return samples_; }

  /// Average over the most recent `n` logged samples (the BMC's sensor view).
  double recent_average_watts(std::size_t n) const;

 private:
  util::Picoseconds period_;
  std::size_t max_log_;
  util::Picoseconds last_observe_ = 0;
  util::Picoseconds next_sample_ = 0;
  EnergyIntegrator integrator_;
  std::vector<MeterSample> samples_;
};

}  // namespace pcap::meter
