#include "meter/watts_up.hpp"

namespace pcap::meter {

WattsUp::WattsUp(util::Picoseconds sample_period, std::size_t max_log)
    : period_(sample_period ? sample_period : 1), max_log_(max_log) {}

void WattsUp::start_session(util::Picoseconds now) {
  integrator_.reset();
  samples_.clear();
  last_observe_ = now;
  next_sample_ = now + period_;
}

void WattsUp::observe(util::Picoseconds now, double watts) {
  if (now <= last_observe_) {
    last_observe_ = now;
    return;
  }
  integrator_.add(watts, now - last_observe_);
  last_observe_ = now;
  while (next_sample_ <= now) {
    samples_.push_back({next_sample_, watts});
    if (max_log_ != 0 && samples_.size() > max_log_) {
      samples_.erase(samples_.begin(),
                     samples_.begin() +
                         static_cast<std::ptrdiff_t>(samples_.size() - max_log_));
    }
    next_sample_ += period_;
  }
}

double WattsUp::recent_average_watts(std::size_t n) const {
  if (samples_.empty() || n == 0) return 0.0;
  const std::size_t count = n < samples_.size() ? n : samples_.size();
  double sum = 0.0;
  for (std::size_t i = samples_.size() - count; i < samples_.size(); ++i) {
    sum += samples_[i].watts;
  }
  return sum / static_cast<double>(count);
}

}  // namespace pcap::meter
