#include "ipmi/commands.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::ipmi {

std::uint16_t watts_to_wire(double watts) {
  const double clamped = std::clamp(watts, 0.0, 6553.5);
  return static_cast<std::uint16_t>(std::lround(clamped * 10.0));
}

double watts_from_wire(std::uint16_t wire) {
  return static_cast<double>(wire) / 10.0;
}

std::uint32_t watts32_to_wire(double watts) {
  const double clamped = std::clamp(watts, 0.0, 429496729.5);
  return static_cast<std::uint32_t>(std::llround(clamped * 10.0));
}

double watts32_from_wire(std::uint32_t wire) {
  return static_cast<double>(wire) / 10.0;
}

namespace {

Request make_plain(Command c) {
  Request r;
  r.netfn = c == Command::kGetDeviceId ? NetFn::kApp : NetFn::kGroupExt;
  r.command = static_cast<std::uint8_t>(c);
  return r;
}

}  // namespace

Request make_get_device_id() { return make_plain(Command::kGetDeviceId); }
Request make_get_power_reading() { return make_plain(Command::kGetPowerReading); }
Request make_get_power_limit() { return make_plain(Command::kGetPowerLimit); }
Request make_get_capabilities() { return make_plain(Command::kGetCapabilities); }
Request make_get_throttle_status() {
  return make_plain(Command::kGetThrottleStatus);
}

Request make_set_power_limit(const PowerLimit& limit) {
  Request r = make_plain(Command::kSetPowerLimit);
  put_u8(r.payload, limit.enabled ? 1 : 0);
  put_u16(r.payload, watts_to_wire(limit.limit_w));
  return r;
}

Response make_ok_response() { return Response{CompletionCode::kOk, {}}; }

Response make_error_response(CompletionCode code) { return Response{code, {}}; }

Response encode_device_id(const DeviceId& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.device_id);
  put_u8(r.payload, v.firmware_major);
  put_u8(r.payload, v.firmware_minor);
  return r;
}

std::optional<DeviceId> decode_device_id(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  DeviceId v;
  if (!reader.read_u8(v.device_id) || !reader.read_u8(v.firmware_major) ||
      !reader.read_u8(v.firmware_minor) || !reader.exhausted()) {
    return std::nullopt;
  }
  return v;
}

Response encode_power_reading(const PowerReading& v) {
  Response r = make_ok_response();
  put_u16(r.payload, watts_to_wire(v.current_w));
  put_u16(r.payload, watts_to_wire(v.average_w));
  put_u16(r.payload, watts_to_wire(v.minimum_w));
  put_u16(r.payload, watts_to_wire(v.maximum_w));
  return r;
}

std::optional<PowerReading> decode_power_reading(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint16_t cur = 0, avg = 0, mn = 0, mx = 0;
  if (!reader.read_u16(cur) || !reader.read_u16(avg) || !reader.read_u16(mn) ||
      !reader.read_u16(mx) || !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerReading{watts_from_wire(cur), watts_from_wire(avg),
                      watts_from_wire(mn), watts_from_wire(mx)};
}

std::optional<PowerLimit> decode_set_power_limit(const Request& r) {
  PayloadReader reader(r.payload);
  std::uint8_t enabled = 0;
  std::uint16_t watts = 0;
  if (!reader.read_u8(enabled) || !reader.read_u16(watts) ||
      !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerLimit{enabled != 0, watts_from_wire(watts)};
}

Response encode_power_limit(const PowerLimit& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.enabled ? 1 : 0);
  put_u16(r.payload, watts_to_wire(v.limit_w));
  return r;
}

std::optional<PowerLimit> decode_power_limit(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint8_t enabled = 0;
  std::uint16_t watts = 0;
  if (!reader.read_u8(enabled) || !reader.read_u16(watts) ||
      !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerLimit{enabled != 0, watts_from_wire(watts)};
}

Response encode_capabilities(const Capabilities& v) {
  Response r = make_ok_response();
  put_u16(r.payload, watts_to_wire(v.min_cap_w));
  put_u16(r.payload, watts_to_wire(v.max_cap_w));
  return r;
}

std::optional<Capabilities> decode_capabilities(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint16_t mn = 0, mx = 0;
  if (!reader.read_u16(mn) || !reader.read_u16(mx) || !reader.exhausted()) {
    return std::nullopt;
  }
  return Capabilities{watts_from_wire(mn), watts_from_wire(mx)};
}

Response encode_throttle_status(const ThrottleStatus& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.pstate);
  put_u8(r.payload, v.duty_eighths);
  put_u8(r.payload, v.l3_ways);
  put_u8(r.payload, v.l2_ways);
  put_u8(r.payload, v.itlb_entries);
  put_u8(r.payload, v.dtlb_entries);
  put_u8(r.payload, static_cast<std::uint8_t>((v.dram_gated ? 1 : 0) |
                                              (v.capping_active ? 2 : 0)));
  return r;
}

Request make_set_rack_budget(double target_w) {
  Request r = make_plain(Command::kSetRackBudget);
  put_u32(r.payload, watts32_to_wire(target_w));
  return r;
}

std::optional<double> decode_set_rack_budget(const Request& r) {
  PayloadReader reader(r.payload);
  std::uint32_t watts = 0;
  if (!reader.read_u32(watts) || !reader.exhausted()) return std::nullopt;
  return watts32_from_wire(watts);
}

Response encode_rack_budget_grant(double grant_w) {
  Response r = make_ok_response();
  put_u32(r.payload, watts32_to_wire(grant_w));
  return r;
}

std::optional<double> decode_rack_budget_grant(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint32_t watts = 0;
  if (!reader.read_u32(watts) || !reader.exhausted()) return std::nullopt;
  return watts32_from_wire(watts);
}

Request make_get_rack_status() { return make_plain(Command::kGetRackStatus); }

Response encode_rack_status(const RackStatus& v) {
  Response r = make_ok_response();
  put_u32(r.payload, watts32_to_wire(v.enforced_w));
  put_u32(r.payload, watts32_to_wire(v.committed_w));
  put_u32(r.payload, watts32_to_wire(v.reserved_w));
  put_u32(r.payload, watts32_to_wire(v.demand_w));
  put_u32(r.payload, watts32_to_wire(v.floor_w));
  put_u32(r.payload, watts32_to_wire(v.ceiling_w));
  put_u16(r.payload, v.nodes);
  put_u16(r.payload, v.lost_nodes);
  put_u16(r.payload, v.busy_nodes);
  put_u16(r.payload, v.free_lanes);
  put_u16(r.payload, v.queued_jobs);
  return r;
}

std::optional<RackStatus> decode_rack_status(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint32_t enforced = 0, committed = 0, reserved = 0, demand = 0;
  std::uint32_t floor = 0, ceiling = 0;
  RackStatus v;
  if (!reader.read_u32(enforced) || !reader.read_u32(committed) ||
      !reader.read_u32(reserved) || !reader.read_u32(demand) ||
      !reader.read_u32(floor) || !reader.read_u32(ceiling) ||
      !reader.read_u16(v.nodes) || !reader.read_u16(v.lost_nodes) ||
      !reader.read_u16(v.busy_nodes) || !reader.read_u16(v.free_lanes) ||
      !reader.read_u16(v.queued_jobs) || !reader.exhausted()) {
    return std::nullopt;
  }
  v.enforced_w = watts32_from_wire(enforced);
  v.committed_w = watts32_from_wire(committed);
  v.reserved_w = watts32_from_wire(reserved);
  v.demand_w = watts32_from_wire(demand);
  v.floor_w = watts32_from_wire(floor);
  v.ceiling_w = watts32_from_wire(ceiling);
  return v;
}

Request make_get_rack_telemetry() {
  return make_plain(Command::kGetRackTelemetry);
}

Response encode_rack_telemetry(const RackTelemetry& v) {
  Response r = make_ok_response();
  put_u16(r.payload, v.nodes);
  put_u32(r.payload, watts32_to_wire(v.min_w));
  put_u32(r.payload, watts32_to_wire(v.mean_w));
  put_u32(r.payload, watts32_to_wire(v.max_w));
  put_u32(r.payload, watts32_to_wire(v.sum_w));
  return r;
}

std::optional<RackTelemetry> decode_rack_telemetry(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  RackTelemetry v;
  std::uint32_t mn = 0, mean = 0, mx = 0, sum = 0;
  if (!reader.read_u16(v.nodes) || !reader.read_u32(mn) ||
      !reader.read_u32(mean) || !reader.read_u32(mx) || !reader.read_u32(sum) ||
      !reader.exhausted()) {
    return std::nullopt;
  }
  v.min_w = watts32_from_wire(mn);
  v.mean_w = watts32_from_wire(mean);
  v.max_w = watts32_from_wire(mx);
  v.sum_w = watts32_from_wire(sum);
  return v;
}

std::optional<ThrottleStatus> decode_throttle_status(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  ThrottleStatus v;
  std::uint8_t flags = 0;
  if (!reader.read_u8(v.pstate) || !reader.read_u8(v.duty_eighths) ||
      !reader.read_u8(v.l3_ways) || !reader.read_u8(v.l2_ways) ||
      !reader.read_u8(v.itlb_entries) || !reader.read_u8(v.dtlb_entries) ||
      !reader.read_u8(flags) || !reader.exhausted()) {
    return std::nullopt;
  }
  v.dram_gated = (flags & 1) != 0;
  v.capping_active = (flags & 2) != 0;
  return v;
}

}  // namespace pcap::ipmi
