#include "ipmi/commands.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::ipmi {

std::uint16_t watts_to_wire(double watts) {
  const double clamped = std::clamp(watts, 0.0, 6553.5);
  return static_cast<std::uint16_t>(std::lround(clamped * 10.0));
}

double watts_from_wire(std::uint16_t wire) {
  return static_cast<double>(wire) / 10.0;
}

namespace {

Request make_plain(Command c) {
  Request r;
  r.netfn = c == Command::kGetDeviceId ? NetFn::kApp : NetFn::kGroupExt;
  r.command = static_cast<std::uint8_t>(c);
  return r;
}

}  // namespace

Request make_get_device_id() { return make_plain(Command::kGetDeviceId); }
Request make_get_power_reading() { return make_plain(Command::kGetPowerReading); }
Request make_get_power_limit() { return make_plain(Command::kGetPowerLimit); }
Request make_get_capabilities() { return make_plain(Command::kGetCapabilities); }
Request make_get_throttle_status() {
  return make_plain(Command::kGetThrottleStatus);
}

Request make_set_power_limit(const PowerLimit& limit) {
  Request r = make_plain(Command::kSetPowerLimit);
  put_u8(r.payload, limit.enabled ? 1 : 0);
  put_u16(r.payload, watts_to_wire(limit.limit_w));
  return r;
}

Response make_ok_response() { return Response{CompletionCode::kOk, {}}; }

Response make_error_response(CompletionCode code) { return Response{code, {}}; }

Response encode_device_id(const DeviceId& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.device_id);
  put_u8(r.payload, v.firmware_major);
  put_u8(r.payload, v.firmware_minor);
  return r;
}

std::optional<DeviceId> decode_device_id(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  DeviceId v;
  if (!reader.read_u8(v.device_id) || !reader.read_u8(v.firmware_major) ||
      !reader.read_u8(v.firmware_minor) || !reader.exhausted()) {
    return std::nullopt;
  }
  return v;
}

Response encode_power_reading(const PowerReading& v) {
  Response r = make_ok_response();
  put_u16(r.payload, watts_to_wire(v.current_w));
  put_u16(r.payload, watts_to_wire(v.average_w));
  put_u16(r.payload, watts_to_wire(v.minimum_w));
  put_u16(r.payload, watts_to_wire(v.maximum_w));
  return r;
}

std::optional<PowerReading> decode_power_reading(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint16_t cur = 0, avg = 0, mn = 0, mx = 0;
  if (!reader.read_u16(cur) || !reader.read_u16(avg) || !reader.read_u16(mn) ||
      !reader.read_u16(mx) || !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerReading{watts_from_wire(cur), watts_from_wire(avg),
                      watts_from_wire(mn), watts_from_wire(mx)};
}

std::optional<PowerLimit> decode_set_power_limit(const Request& r) {
  PayloadReader reader(r.payload);
  std::uint8_t enabled = 0;
  std::uint16_t watts = 0;
  if (!reader.read_u8(enabled) || !reader.read_u16(watts) ||
      !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerLimit{enabled != 0, watts_from_wire(watts)};
}

Response encode_power_limit(const PowerLimit& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.enabled ? 1 : 0);
  put_u16(r.payload, watts_to_wire(v.limit_w));
  return r;
}

std::optional<PowerLimit> decode_power_limit(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint8_t enabled = 0;
  std::uint16_t watts = 0;
  if (!reader.read_u8(enabled) || !reader.read_u16(watts) ||
      !reader.exhausted()) {
    return std::nullopt;
  }
  return PowerLimit{enabled != 0, watts_from_wire(watts)};
}

Response encode_capabilities(const Capabilities& v) {
  Response r = make_ok_response();
  put_u16(r.payload, watts_to_wire(v.min_cap_w));
  put_u16(r.payload, watts_to_wire(v.max_cap_w));
  return r;
}

std::optional<Capabilities> decode_capabilities(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  std::uint16_t mn = 0, mx = 0;
  if (!reader.read_u16(mn) || !reader.read_u16(mx) || !reader.exhausted()) {
    return std::nullopt;
  }
  return Capabilities{watts_from_wire(mn), watts_from_wire(mx)};
}

Response encode_throttle_status(const ThrottleStatus& v) {
  Response r = make_ok_response();
  put_u8(r.payload, v.pstate);
  put_u8(r.payload, v.duty_eighths);
  put_u8(r.payload, v.l3_ways);
  put_u8(r.payload, v.l2_ways);
  put_u8(r.payload, v.itlb_entries);
  put_u8(r.payload, v.dtlb_entries);
  put_u8(r.payload, static_cast<std::uint8_t>((v.dram_gated ? 1 : 0) |
                                              (v.capping_active ? 2 : 0)));
  return r;
}

std::optional<ThrottleStatus> decode_throttle_status(const Response& r) {
  if (!r.ok()) return std::nullopt;
  PayloadReader reader(r.payload);
  ThrottleStatus v;
  std::uint8_t flags = 0;
  if (!reader.read_u8(v.pstate) || !reader.read_u8(v.duty_eighths) ||
      !reader.read_u8(v.l3_ways) || !reader.read_u8(v.l2_ways) ||
      !reader.read_u8(v.itlb_entries) || !reader.read_u8(v.dtlb_entries) ||
      !reader.read_u8(flags) || !reader.exhausted()) {
    return std::nullopt;
  }
  v.dram_gated = (flags & 1) != 0;
  v.capping_active = (flags & 2) != 0;
  return v;
}

}  // namespace pcap::ipmi
