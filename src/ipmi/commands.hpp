// Typed power-management commands carried over the IPMI message layer
// (Node Manager-style), with pack/unpack to request/response payloads.
// Watts travel as 0.1 W fixed point in a u16 (so caps up to 6553.5 W).
#pragma once

#include <cstdint>
#include <optional>

#include "ipmi/message.hpp"

namespace pcap::ipmi {

enum class Command : std::uint8_t {
  kGetDeviceId = 0x01,
  kGetPowerReading = 0xC8,
  kSetPowerLimit = 0xC9,
  kGetPowerLimit = 0xCA,
  kGetCapabilities = 0xCB,
  kGetThrottleStatus = 0xCC,  // vendor extension: escalation diagnostics
  // Fleet extension: budget-tree commands spoken between a parent power
  // manager and an aggregate child (rack manager, pod manager). Watts at
  // this level exceed the u16 6553.5 W ceiling, so they travel as u32
  // 0.1 W fixed point.
  kSetRackBudget = 0xD0,
  kGetRackStatus = 0xD1,
  kGetRackTelemetry = 0xD2,
};

/// Human-readable command name for diagnostics and trace spans.
inline const char* command_name(std::uint8_t command) {
  switch (static_cast<Command>(command)) {
    case Command::kGetDeviceId: return "GetDeviceId";
    case Command::kGetPowerReading: return "GetPowerReading";
    case Command::kSetPowerLimit: return "SetPowerLimit";
    case Command::kGetPowerLimit: return "GetPowerLimit";
    case Command::kGetCapabilities: return "GetCapabilities";
    case Command::kGetThrottleStatus: return "GetThrottleStatus";
    case Command::kSetRackBudget: return "SetRackBudget";
    case Command::kGetRackStatus: return "GetRackStatus";
    case Command::kGetRackTelemetry: return "GetRackTelemetry";
  }
  return "Unknown";
}

struct DeviceId {
  std::uint8_t device_id = 0x20;
  std::uint8_t firmware_major = 1;
  std::uint8_t firmware_minor = 0;
};

struct PowerReading {
  double current_w = 0.0;
  double average_w = 0.0;   // over the BMC's rolling window
  double minimum_w = 0.0;   // since cap activation
  double maximum_w = 0.0;
};

struct PowerLimit {
  bool enabled = false;
  double limit_w = 0.0;
};

struct Capabilities {
  double min_cap_w = 0.0;   // lowest enforceable cap (throttling floor)
  double max_cap_w = 0.0;
};

struct ThrottleStatus {
  std::uint8_t pstate = 0;
  std::uint8_t duty_eighths = 8;  // clock modulation in 1/8 steps
  std::uint8_t l3_ways = 20;
  std::uint8_t l2_ways = 8;
  std::uint8_t itlb_entries = 48;
  std::uint8_t dtlb_entries = 64;
  bool dram_gated = false;
  bool capping_active = false;
};

/// One aggregate child of the budget tree as its parent sees it over the
/// wire (response to kGetRackStatus). `enforced_w` is the budget the child
/// currently guarantees its commitments stay within: on a decrease it stays
/// at the old value until the child's own decreases-first rounds converge,
/// then snaps to the target; increases are adopted immediately.
struct RackStatus {
  double enforced_w = 0.0;   // budget the child guarantees right now
  double committed_w = 0.0;  // sum of grandchild grants incl. reservations
  double reserved_w = 0.0;   // held for unreachable grandchildren
  double demand_w = 0.0;     // current aggregate draw (division weight)
  double floor_w = 0.0;      // lowest enforceable aggregate budget
  double ceiling_w = 0.0;    // sum of grandchild cap ceilings
  std::uint16_t nodes = 0;
  std::uint16_t lost_nodes = 0;
  std::uint16_t busy_nodes = 0;
  std::uint16_t free_lanes = 0;
  std::uint16_t queued_jobs = 0;
};

/// Windowed power summary for one aggregate child (kGetRackTelemetry):
/// the Reducer fan-in's min/mean/max/sum shape, collapsed to "now".
struct RackTelemetry {
  std::uint16_t nodes = 0;
  double min_w = 0.0;
  double mean_w = 0.0;
  double max_w = 0.0;
  double sum_w = 0.0;
};

// --- fixed-point helpers ---
std::uint16_t watts_to_wire(double watts);
double watts_from_wire(std::uint16_t wire);
// Wide variant for aggregate (rack/datacenter) budgets.
std::uint32_t watts32_to_wire(double watts);
double watts32_from_wire(std::uint32_t wire);

// --- request builders (client side) ---
Request make_get_device_id();
Request make_get_power_reading();
Request make_set_power_limit(const PowerLimit& limit);
Request make_get_power_limit();
Request make_get_capabilities();
Request make_get_throttle_status();

// --- payload codecs (both sides) ---
Response make_ok_response();
Response make_error_response(CompletionCode code);

Response encode_device_id(const DeviceId& v);
std::optional<DeviceId> decode_device_id(const Response& r);

Response encode_power_reading(const PowerReading& v);
std::optional<PowerReading> decode_power_reading(const Response& r);

std::optional<PowerLimit> decode_set_power_limit(const Request& r);
Response encode_power_limit(const PowerLimit& v);
std::optional<PowerLimit> decode_power_limit(const Response& r);

Response encode_capabilities(const Capabilities& v);
std::optional<Capabilities> decode_capabilities(const Response& r);

Response encode_throttle_status(const ThrottleStatus& v);
std::optional<ThrottleStatus> decode_throttle_status(const Response& r);

// Budget-tree commands. SetRackBudget carries the target; the response
// carries the *grant* — the budget the child actually guarantees after its
// synchronous decreases-first round (== target once converged).
Request make_set_rack_budget(double target_w);
std::optional<double> decode_set_rack_budget(const Request& r);
Response encode_rack_budget_grant(double grant_w);
std::optional<double> decode_rack_budget_grant(const Response& r);

Request make_get_rack_status();
Response encode_rack_status(const RackStatus& v);
std::optional<RackStatus> decode_rack_status(const Response& r);

Request make_get_rack_telemetry();
Response encode_rack_telemetry(const RackTelemetry& v);
std::optional<RackTelemetry> decode_rack_telemetry(const Response& r);

}  // namespace pcap::ipmi
