// Typed power-management commands carried over the IPMI message layer
// (Node Manager-style), with pack/unpack to request/response payloads.
// Watts travel as 0.1 W fixed point in a u16 (so caps up to 6553.5 W).
#pragma once

#include <cstdint>
#include <optional>

#include "ipmi/message.hpp"

namespace pcap::ipmi {

enum class Command : std::uint8_t {
  kGetDeviceId = 0x01,
  kGetPowerReading = 0xC8,
  kSetPowerLimit = 0xC9,
  kGetPowerLimit = 0xCA,
  kGetCapabilities = 0xCB,
  kGetThrottleStatus = 0xCC,  // vendor extension: escalation diagnostics
};

/// Human-readable command name for diagnostics and trace spans.
inline const char* command_name(std::uint8_t command) {
  switch (static_cast<Command>(command)) {
    case Command::kGetDeviceId: return "GetDeviceId";
    case Command::kGetPowerReading: return "GetPowerReading";
    case Command::kSetPowerLimit: return "SetPowerLimit";
    case Command::kGetPowerLimit: return "GetPowerLimit";
    case Command::kGetCapabilities: return "GetCapabilities";
    case Command::kGetThrottleStatus: return "GetThrottleStatus";
  }
  return "Unknown";
}

struct DeviceId {
  std::uint8_t device_id = 0x20;
  std::uint8_t firmware_major = 1;
  std::uint8_t firmware_minor = 0;
};

struct PowerReading {
  double current_w = 0.0;
  double average_w = 0.0;   // over the BMC's rolling window
  double minimum_w = 0.0;   // since cap activation
  double maximum_w = 0.0;
};

struct PowerLimit {
  bool enabled = false;
  double limit_w = 0.0;
};

struct Capabilities {
  double min_cap_w = 0.0;   // lowest enforceable cap (throttling floor)
  double max_cap_w = 0.0;
};

struct ThrottleStatus {
  std::uint8_t pstate = 0;
  std::uint8_t duty_eighths = 8;  // clock modulation in 1/8 steps
  std::uint8_t l3_ways = 20;
  std::uint8_t l2_ways = 8;
  std::uint8_t itlb_entries = 48;
  std::uint8_t dtlb_entries = 64;
  bool dram_gated = false;
  bool capping_active = false;
};

// --- fixed-point helpers ---
std::uint16_t watts_to_wire(double watts);
double watts_from_wire(std::uint16_t wire);

// --- request builders (client side) ---
Request make_get_device_id();
Request make_get_power_reading();
Request make_set_power_limit(const PowerLimit& limit);
Request make_get_power_limit();
Request make_get_capabilities();
Request make_get_throttle_status();

// --- payload codecs (both sides) ---
Response make_ok_response();
Response make_error_response(CompletionCode code);

Response encode_device_id(const DeviceId& v);
std::optional<DeviceId> decode_device_id(const Response& r);

Response encode_power_reading(const PowerReading& v);
std::optional<PowerReading> decode_power_reading(const Response& r);

std::optional<PowerLimit> decode_set_power_limit(const Request& r);
Response encode_power_limit(const PowerLimit& v);
std::optional<PowerLimit> decode_power_limit(const Response& r);

Response encode_capabilities(const Capabilities& v);
std::optional<Capabilities> decode_capabilities(const Response& r);

Response encode_throttle_status(const ThrottleStatus& v);
std::optional<ThrottleStatus> decode_throttle_status(const Response& r);

}  // namespace pcap::ipmi
