#include "ipmi/message.hpp"

namespace pcap::ipmi {

namespace {

std::uint8_t checksum(std::span<const std::uint8_t> bytes) {
  std::uint8_t sum = 0;
  for (auto b : bytes) sum = static_cast<std::uint8_t>(sum + b);
  return static_cast<std::uint8_t>(-sum);
}

}  // namespace

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> frame;
  frame.reserve(request.payload.size() + 6);
  frame.push_back(static_cast<std::uint8_t>(request.netfn));
  frame.push_back(request.command);
  frame.push_back(request.seq);
  const auto len = static_cast<std::uint16_t>(request.payload.size());
  frame.push_back(static_cast<std::uint8_t>(len & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.insert(frame.end(), request.payload.begin(), request.payload.end());
  frame.push_back(checksum(frame));
  return frame;
}

bool decode_request(std::span<const std::uint8_t> frame, Request& out) {
  if (frame.size() < 6) return false;
  const std::uint16_t len =
      static_cast<std::uint16_t>(frame[3]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(frame[4]) << 8);
  if (frame.size() != static_cast<std::size_t>(len) + 6) return false;
  if (checksum(frame.first(frame.size() - 1)) != frame.back()) return false;
  out.netfn = static_cast<NetFn>(frame[0]);
  out.command = frame[1];
  out.seq = frame[2];
  out.payload.assign(frame.begin() + 5, frame.end() - 1);
  return true;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> frame;
  frame.reserve(response.payload.size() + 5);
  frame.push_back(static_cast<std::uint8_t>(response.code));
  frame.push_back(response.seq);
  const auto len = static_cast<std::uint16_t>(response.payload.size());
  frame.push_back(static_cast<std::uint8_t>(len & 0xFF));
  frame.push_back(static_cast<std::uint8_t>(len >> 8));
  frame.insert(frame.end(), response.payload.begin(), response.payload.end());
  frame.push_back(checksum(frame));
  return frame;
}

bool decode_response(std::span<const std::uint8_t> frame, Response& out) {
  if (frame.size() < 5) return false;
  const std::uint16_t len =
      static_cast<std::uint16_t>(frame[2]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(frame[3]) << 8);
  if (frame.size() != static_cast<std::size_t>(len) + 5) return false;
  if (checksum(frame.first(frame.size() - 1)) != frame.back()) return false;
  out.code = static_cast<CompletionCode>(frame[0]);
  out.seq = frame[1];
  out.payload.assign(frame.begin() + 4, frame.end() - 1);
  return true;
}

std::string completion_code_name(CompletionCode code) {
  switch (code) {
    case CompletionCode::kOk: return "OK";
    case CompletionCode::kInvalidCommand: return "Invalid Command";
    case CompletionCode::kRequestDataInvalid: return "Request Data Invalid";
    case CompletionCode::kOutOfRange: return "Parameter Out Of Range";
    case CompletionCode::kUnspecified: return "Unspecified Error";
  }
  return "Unknown";
}

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
  }
}

bool PayloadReader::read_u8(std::uint8_t& v) {
  if (pos_ + 1 > payload_.size()) return false;
  v = payload_[pos_++];
  return true;
}

bool PayloadReader::read_u16(std::uint16_t& v) {
  if (pos_ + 2 > payload_.size()) return false;
  v = static_cast<std::uint16_t>(
      payload_[pos_] |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(payload_[pos_ + 1]) << 8));
  pos_ += 2;
  return true;
}

bool PayloadReader::read_u32(std::uint32_t& v) {
  if (pos_ + 4 > payload_.size()) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | payload_[pos_ + static_cast<std::size_t>(i)];
  }
  pos_ += 4;
  return true;
}

}  // namespace pcap::ipmi
