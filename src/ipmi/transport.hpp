// Transports carry encoded IPMI frames between the management server and a
// BMC. The loopback transport binds a client to an in-process BMC (the BMC's
// dedicated NIC of the real platform); a fault-injecting decorator exercises
// the error paths.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ipmi/message.hpp"
#include "util/rng.hpp"

namespace pcap::ipmi {

class Transport {
 public:
  virtual ~Transport() = default;
  /// Sends an encoded request frame, returns the encoded response frame.
  /// An empty vector means the transaction was lost.
  virtual std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) = 0;
};

/// Binds directly to a server-side frame handler.
class LoopbackTransport final : public Transport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;
  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) override {
    return handler_(frame);
  }

 private:
  Handler handler_;
};

/// Decorator that drops or corrupts a configurable fraction of transactions.
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, double drop_rate, double corrupt_rate,
                  std::uint64_t seed = 7)
      : inner_(&inner), drop_rate_(drop_rate), corrupt_rate_(corrupt_rate),
        rng_(seed) {}

  std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) override;

 private:
  Transport* inner_;
  double drop_rate_;
  double corrupt_rate_;
  util::Rng rng_;
};

/// Client-side session: encodes requests, decodes responses, counts errors.
class Session {
 public:
  explicit Session(Transport& transport) : transport_(&transport) {}

  /// Returns the decoded response; a transport loss or undecodable frame
  /// surfaces as CompletionCode::kUnspecified.
  Response transact(const Request& request);

  std::uint64_t transport_errors() const { return transport_errors_; }

 private:
  Transport* transport_;
  std::uint64_t transport_errors_ = 0;
};

}  // namespace pcap::ipmi
