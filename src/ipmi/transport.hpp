// Transports carry encoded IPMI frames between the management server and a
// BMC. The loopback transport binds a client to an in-process BMC (the BMC's
// dedicated NIC of the real platform); a fault-injecting decorator models
// the lossy management network of a real datacenter deployment.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ipmi/message.hpp"
#include "util/rng.hpp"

namespace pcap::ipmi {

class Transport {
 public:
  virtual ~Transport() = default;
  /// Sends an encoded request frame, returns the encoded response frame.
  /// An empty vector means the transaction was lost.
  virtual std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) = 0;

  /// Modelled one-way+return latency of the most recent transact() in
  /// simulated milliseconds. A client session compares this against its
  /// request timeout; the base transport is instantaneous.
  virtual double last_latency_ms() const { return 0.0; }
};

/// Binds directly to a server-side frame handler.
class LoopbackTransport final : public Transport {
 public:
  using Handler =
      std::function<std::vector<std::uint8_t>(std::span<const std::uint8_t>)>;
  explicit LoopbackTransport(Handler handler) : handler_(std::move(handler)) {}

  std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) override {
    return handler_(frame);
  }

 private:
  Handler handler_;
};

/// Fault model for one management-network link. Every stochastic draw comes
/// from a single seeded stream, so a given (spec, seed) reproduces the
/// identical fault sequence bit-for-bit.
struct FaultSpec {
  double drop_rate = 0.0;       // transaction lost outright (either direction)
  double duplicate_rate = 0.0;  // previous response replayed (stale frame)
  double corrupt_rate = 0.0;    // one response byte flipped (checksum-visible)
  double base_latency_ms = 0.0;       // fixed per-transaction latency
  double latency_jitter_ms = 0.0;     // extra uniform latency in [0, jitter)
  double spike_rate = 0.0;            // chance of a latency spike
  double spike_latency_ms = 0.0;      // spike magnitude (added on top)
  /// Periodic partitions: every `partition_period` transactions, the first
  /// `partition_length` of them are black-holed (0 = no periodic windows).
  std::uint64_t partition_period = 0;
  std::uint64_t partition_length = 0;
};

/// Decorator that injects seeded, deterministic faults into any transport:
/// frame drop, stale-duplicate replay, corruption, latency, and partitions
/// (periodic windows from the spec, or scripted via partition_for/heal).
class FaultyTransport final : public Transport {
 public:
  FaultyTransport(Transport& inner, const FaultSpec& spec,
                  std::uint64_t seed = 7)
      : inner_(&inner), spec_(spec), rng_(seed) {}
  /// Legacy drop/corrupt-only construction.
  FaultyTransport(Transport& inner, double drop_rate, double corrupt_rate,
                  std::uint64_t seed = 7)
      : inner_(&inner), rng_(seed) {
    spec_.drop_rate = drop_rate;
    spec_.corrupt_rate = corrupt_rate;
  }

  std::vector<std::uint8_t> transact(
      std::span<const std::uint8_t> frame) override;
  double last_latency_ms() const override { return last_latency_ms_; }

  /// Scripted partition: black-holes the next `transactions` transactions
  /// (on top of any periodic windows in the spec).
  void partition_for(std::uint64_t transactions) {
    manual_partition_left_ = transactions;
  }
  /// Ends a scripted partition immediately.
  void heal() { manual_partition_left_ = 0; }
  bool partitioned() const { return manual_partition_left_ > 0; }

  const FaultSpec& spec() const { return spec_; }

  // --- fault accounting ---
  std::uint64_t transactions() const { return transactions_; }
  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t corruptions() const { return corruptions_; }
  std::uint64_t partition_drops() const { return partition_drops_; }

 private:
  Transport* inner_;
  FaultSpec spec_;
  util::Rng rng_;
  std::vector<std::uint8_t> previous_response_;
  double last_latency_ms_ = 0.0;
  std::uint64_t manual_partition_left_ = 0;
  std::uint64_t transactions_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t corruptions_ = 0;
  std::uint64_t partition_drops_ = 0;
};

/// Client-side session: encodes requests, assigns sequence numbers, decodes
/// responses, and rejects stale/duplicate or late replies.
class Session {
 public:
  /// `timeout_ms` > 0 discards any response whose transport latency exceeds
  /// it (the client gave up waiting); 0 disables the timeout.
  explicit Session(Transport& transport, double timeout_ms = 0.0)
      : transport_(&transport), timeout_ms_(timeout_ms) {}

  /// Why the last transact() failed (kNone on success).
  enum class Error { kNone, kLost, kTimeout, kCorrupt, kStale };

  /// Returns the decoded response. Any transport-level failure (loss,
  /// timeout, undecodable frame, stale sequence number) surfaces as
  /// CompletionCode::kUnspecified with last_error() identifying the cause;
  /// semantic errors from the responder pass through with last_error() ==
  /// kNone (retrying them cannot help).
  Response transact(const Request& request);

  Error last_error() const { return last_error_; }
  /// Modelled latency of the most recent exchange (from the transport).
  double last_latency_ms() const { return transport_->last_latency_ms(); }
  std::uint64_t transport_errors() const { return transport_errors_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t stale_rejections() const { return stale_rejections_; }

 private:
  Transport* transport_;
  double timeout_ms_;
  std::uint8_t next_seq_ = 0;
  Error last_error_ = Error::kNone;
  std::uint64_t transport_errors_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t stale_rejections_ = 0;
};

}  // namespace pcap::ipmi
