#include "ipmi/transport.hpp"

#include "ipmi/commands.hpp"

namespace pcap::ipmi {

std::vector<std::uint8_t> FaultyTransport::transact(
    std::span<const std::uint8_t> frame) {
  ++transactions_;

  // Latency is drawn first so the stream position is independent of which
  // fault (if any) fires afterwards.
  double latency = spec_.base_latency_ms;
  if (spec_.latency_jitter_ms > 0.0) {
    latency += rng_.uniform(0.0, spec_.latency_jitter_ms);
  }
  if (spec_.spike_rate > 0.0 && rng_.chance(spec_.spike_rate)) {
    latency += spec_.spike_latency_ms;
  }
  last_latency_ms_ = latency;

  bool in_partition = manual_partition_left_ > 0;
  if (manual_partition_left_ > 0) --manual_partition_left_;
  if (!in_partition && spec_.partition_period > 0 &&
      spec_.partition_length > 0) {
    in_partition =
        (transactions_ - 1) % spec_.partition_period < spec_.partition_length;
  }
  if (in_partition) {
    ++partition_drops_;
    return {};
  }

  if (spec_.drop_rate > 0.0 && rng_.chance(spec_.drop_rate)) {
    ++drops_;
    return {};
  }
  if (spec_.duplicate_rate > 0.0 && rng_.chance(spec_.duplicate_rate) &&
      !previous_response_.empty()) {
    // The network delivers a copy of an earlier response instead of this
    // transaction's: a well-formed frame with a stale sequence number.
    ++duplicates_;
    return previous_response_;
  }

  std::vector<std::uint8_t> response = inner_->transact(frame);
  if (!response.empty()) previous_response_ = response;
  if (!response.empty() && spec_.corrupt_rate > 0.0 &&
      rng_.chance(spec_.corrupt_rate)) {
    ++corruptions_;
    const std::size_t i = rng_.below(response.size());
    response[i] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
  }
  return response;
}

Response Session::transact(const Request& request) {
  Request tagged = request;
  tagged.seq = next_seq_++;  // uint8 wrap is the IPMI rqSeq modulus
  const std::vector<std::uint8_t> frame = encode_request(tagged);
  const std::vector<std::uint8_t> reply = transport_->transact(frame);
  last_error_ = Error::kNone;
  if (reply.empty()) {
    last_error_ = Error::kLost;
    ++transport_errors_;
    return make_error_response(CompletionCode::kUnspecified);
  }
  if (timeout_ms_ > 0.0 && transport_->last_latency_ms() > timeout_ms_) {
    // The reply arrived after the client stopped waiting; discard it even
    // if well-formed.
    last_error_ = Error::kTimeout;
    ++timeouts_;
    ++transport_errors_;
    return make_error_response(CompletionCode::kUnspecified);
  }
  Response response;
  if (!decode_response(reply, response)) {
    last_error_ = Error::kCorrupt;
    ++transport_errors_;
    return make_error_response(CompletionCode::kUnspecified);
  }
  if (response.seq != tagged.seq) {
    last_error_ = Error::kStale;
    ++stale_rejections_;
    ++transport_errors_;
    return make_error_response(CompletionCode::kUnspecified);
  }
  return response;
}

}  // namespace pcap::ipmi
