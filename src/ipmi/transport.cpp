#include "ipmi/transport.hpp"

#include "ipmi/commands.hpp"

namespace pcap::ipmi {

std::vector<std::uint8_t> FaultyTransport::transact(
    std::span<const std::uint8_t> frame) {
  if (rng_.chance(drop_rate_)) return {};
  std::vector<std::uint8_t> response = inner_->transact(frame);
  if (!response.empty() && rng_.chance(corrupt_rate_)) {
    const std::size_t i = rng_.below(response.size());
    response[i] ^= static_cast<std::uint8_t>(1 + rng_.below(255));
  }
  return response;
}

Response Session::transact(const Request& request) {
  const std::vector<std::uint8_t> frame = encode_request(request);
  const std::vector<std::uint8_t> reply = transport_->transact(frame);
  Response response;
  if (reply.empty() || !decode_response(reply, response)) {
    ++transport_errors_;
    return make_error_response(CompletionCode::kUnspecified);
  }
  return response;
}

}  // namespace pcap::ipmi
