// Minimal IPMI-flavoured message layer: framed request/response pairs with
// network function, command id, payload and a checksum. This is the wire
// format the Data Center Manager uses to reach each node's BMC out-of-band,
// mirroring the DCM -> IPMI -> BMC path described in the paper's §II-A.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pcap::ipmi {

/// Network function codes (subset).
enum class NetFn : std::uint8_t {
  kApp = 0x06,
  kGroupExt = 0x2C,  // power-management extension (Node Manager style)
};

/// Completion codes (subset of the IPMI table).
enum class CompletionCode : std::uint8_t {
  kOk = 0x00,
  kInvalidCommand = 0xC1,
  kRequestDataInvalid = 0xCC,
  kOutOfRange = 0xC9,
  kUnspecified = 0xFF,
};

struct Request {
  NetFn netfn = NetFn::kGroupExt;
  std::uint8_t command = 0;
  /// Sequence number (IPMI rqSeq): assigned by the client session, echoed
  /// by the responder, and checked on receipt so that a duplicated or
  /// delayed frame from an earlier transaction is rejected as stale.
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;
};

struct Response {
  CompletionCode code = CompletionCode::kUnspecified;
  /// Echo of the request's sequence number.
  std::uint8_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool ok() const { return code == CompletionCode::kOk; }
};

/// Frame layout: [netfn, cmd, seq, len_lo, len_hi, payload..., checksum]
/// where checksum is the two's complement of the byte sum (IPMI style).
std::vector<std::uint8_t> encode_request(const Request& request);

/// Decodes a frame; returns false (and leaves `out` untouched) on a short
/// frame, a length mismatch or a bad checksum.
bool decode_request(std::span<const std::uint8_t> frame, Request& out);

/// Frame layout: [code, seq, len_lo, len_hi, payload..., checksum].
std::vector<std::uint8_t> encode_response(const Response& response);
bool decode_response(std::span<const std::uint8_t> frame, Response& out);

std::string completion_code_name(CompletionCode code);

// --- little-endian payload packing helpers ---
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);

/// Cursor-based reads; return false when the payload is exhausted.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}
  bool read_u8(std::uint8_t& v);
  bool read_u16(std::uint16_t& v);
  bool read_u32(std::uint32_t& v);
  bool exhausted() const { return pos_ == payload_.size(); }

 private:
  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

}  // namespace pcap::ipmi
