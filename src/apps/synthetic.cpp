#include "apps/synthetic.hpp"

#include "sim/execution_context.hpp"

namespace pcap::apps {

void ComputeBoundWorkload::run(sim::ExecutionContext& ctx) {
  ctx.set_code_footprint(/*region=*/8, code_pages_);
  constexpr std::uint64_t kChunk = 512;
  std::uint64_t remaining = total_uops_;
  while (remaining > 0) {
    const std::uint64_t n = remaining < kChunk ? remaining : kChunk;
    ctx.compute(n);
    remaining -= n;
  }
}

void ComputeBoundWorkload::begin_steps() {
  step_primed_ = false;
  step_remaining_ = total_uops_;
}

bool ComputeBoundWorkload::step(sim::ExecutionContext& ctx,
                                util::Picoseconds budget) {
  if (!step_primed_) {
    ctx.set_code_footprint(/*region=*/8, code_pages_);
    step_primed_ = true;
  }
  constexpr std::uint64_t kChunk = 512;
  while (step_remaining_ > 0) {
    const std::uint64_t n = step_remaining_ < kChunk ? step_remaining_ : kChunk;
    ctx.compute(n);
    step_remaining_ -= n;
    if (ctx.now() >= budget) return step_remaining_ == 0;
  }
  return true;
}

void MemoryBoundWorkload::run(sim::ExecutionContext& ctx) {
  ctx.set_code_footprint(/*region=*/9, 3);
  const sim::Address base = ctx.alloc(working_set_);
  std::uint64_t offset = 0;
  for (std::uint64_t t = 0; t < touches_; ++t) {
    ctx.load(base + offset);
    ctx.compute(2);
    offset += stride_;
    if (offset >= working_set_) offset = 0;
  }
}

void MemoryBoundWorkload::begin_steps() {
  step_primed_ = false;
  step_offset_ = 0;
  step_touch_ = 0;
  step_phase_ = 0;
}

bool MemoryBoundWorkload::step(sim::ExecutionContext& ctx,
                               util::Picoseconds budget) {
  if (!step_primed_) {
    ctx.set_code_footprint(/*region=*/9, 3);
    step_base_ = ctx.alloc(working_set_);
    step_primed_ = true;
  }
  while (step_touch_ < touches_) {
    if (step_phase_ == 0) {
      ctx.load(step_base_ + step_offset_);
      step_phase_ = 1;
      if (ctx.now() >= budget) return false;
    }
    ctx.compute(2);
    step_phase_ = 0;
    step_offset_ += stride_;
    if (step_offset_ >= working_set_) step_offset_ = 0;
    ++step_touch_;
    if (ctx.now() >= budget) return step_touch_ >= touches_;
  }
  return true;
}

void PhasedWorkload::run(sim::ExecutionContext& ctx) {
  phase_marks_.clear();
  util::Rng rng(params_.seed);
  const sim::Address base = ctx.alloc(params_.working_set_bytes);

  for (int phase = 0; phase < params_.phases; ++phase) {
    const bool memory_phase = phase % 2 == 1;
    const auto length = static_cast<std::uint64_t>(
        static_cast<double>(params_.mean_phase_uops) * rng.uniform(0.4, 1.6));
    if (memory_phase) {
      ctx.set_code_footprint(/*region=*/9, 3);
      std::uint64_t offset = 0;
      for (std::uint64_t t = 0; t < length / 4; ++t) {
        ctx.load(base + offset);
        ctx.compute(2);
        offset += 64;
        if (offset >= params_.working_set_bytes) offset = 0;
      }
    } else {
      ctx.set_code_footprint(/*region=*/8, 5);
      std::uint64_t remaining = length;
      while (remaining > 0) {
        const std::uint64_t n = remaining < 512 ? remaining : 512;
        ctx.compute(n);
        remaining -= n;
      }
    }
    phase_marks_.push_back(ctx.now());
  }
}

}  // namespace pcap::apps
