#include "apps/synthetic.hpp"

#include "sim/execution_context.hpp"

namespace pcap::apps {

void ComputeBoundWorkload::run(sim::ExecutionContext& ctx) {
  ctx.set_code_footprint(/*region=*/8, code_pages_);
  constexpr std::uint64_t kChunk = 512;
  std::uint64_t remaining = total_uops_;
  while (remaining > 0) {
    const std::uint64_t n = remaining < kChunk ? remaining : kChunk;
    ctx.compute(n);
    remaining -= n;
  }
}

void MemoryBoundWorkload::run(sim::ExecutionContext& ctx) {
  ctx.set_code_footprint(/*region=*/9, 3);
  const sim::Address base = ctx.alloc(working_set_);
  std::uint64_t offset = 0;
  for (std::uint64_t t = 0; t < touches_; ++t) {
    ctx.load(base + offset);
    ctx.compute(2);
    offset += stride_;
    if (offset >= working_set_) offset = 0;
  }
}

void PhasedWorkload::run(sim::ExecutionContext& ctx) {
  phase_marks_.clear();
  util::Rng rng(params_.seed);
  const sim::Address base = ctx.alloc(params_.working_set_bytes);

  for (int phase = 0; phase < params_.phases; ++phase) {
    const bool memory_phase = phase % 2 == 1;
    const auto length = static_cast<std::uint64_t>(
        static_cast<double>(params_.mean_phase_uops) * rng.uniform(0.4, 1.6));
    if (memory_phase) {
      ctx.set_code_footprint(/*region=*/9, 3);
      std::uint64_t offset = 0;
      for (std::uint64_t t = 0; t < length / 4; ++t) {
        ctx.load(base + offset);
        ctx.compute(2);
        offset += 64;
        if (offset >= params_.working_set_bytes) offset = 0;
      }
    } else {
      ctx.set_code_footprint(/*region=*/8, 5);
      std::uint64_t remaining = length;
      while (remaining > 0) {
        const std::uint64_t n = remaining < 512 ? remaining : 512;
        ctx.compute(n);
        remaining -= n;
      }
    }
    phase_marks_.push_back(ctx.now());
  }
}

}  // namespace pcap::apps
