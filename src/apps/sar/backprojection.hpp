// Time-domain backprojection image formation, templated on the machine
// narration policy (see apps/machine.hpp). For every pixel, the matching
// range bin of every (selected) aperture's return is summed.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "apps/machine.hpp"
#include "apps/sar/radar.hpp"

namespace pcap::apps::sar {

/// Pixel grid over the imaged ground area.
struct ImageGrid {
  int width = 0;    // cross-range pixels (x)
  int height = 0;   // down-range pixels (y)
  double x0_m = 0.0;
  double y0_m = 0.0;
  double dx_m = 0.0;
  double dy_m = 0.0;

  std::size_t pixels() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
  double x_of(int px) const { return x0_m + px * dx_m; }
  double y_of(int py) const { return y0_m + py * dy_m; }

  /// Grid covering [−extent_x/2, extent_x/2] × [near_y, far_y].
  static ImageGrid cover(const SceneConfig& scene, int width, int height) {
    ImageGrid g;
    g.width = width;
    g.height = height;
    g.x0_m = -scene.extent_x_m / 2.0;
    g.y0_m = scene.near_y_m;
    g.dx_m = scene.extent_x_m / (width > 1 ? width - 1 : 1);
    g.dy_m = (scene.far_y_m - scene.near_y_m) / (height > 1 ? height - 1 : 1);
    return g;
  }
};

/// Code-region ids used for instruction-footprint narration.
inline constexpr std::uint32_t kBpCodeRegion = 1;
inline constexpr std::uint32_t kUpsampleCodeRegion = 2;
inline constexpr std::uint32_t kMinCodeRegion = 3;

/// Backprojects `apertures` (indices into data) onto `grid`, writing the
/// signed sum image into `out` (size grid.pixels()). `returns_addr` and
/// `out_addr` are the simulated base addresses of the two arrays.
template <typename Machine>
void backproject(Machine& m, const RadarData& data,
                 std::span<const int> apertures, const ImageGrid& grid,
                 std::span<float> out, Address returns_addr,
                 Address out_addr) {
  m.set_code_footprint(kBpCodeRegion, 7);
  const auto& cfg = data.config;
  const int samples = data.samples();
  const double inv_step = 1.0 / cfg.range_step_m;

  std::size_t p = 0;
  for (int py = 0; py < grid.height; ++py) {
    const double y = grid.y_of(py);
    const double y2 = y * y;
    for (int px = 0; px < grid.width; ++px, ++p) {
      const double x = grid.x_of(px);
      double acc = 0.0;
      for (int a : apertures) {
        const double dx = x - data.aperture_x_m[static_cast<std::size_t>(a)];
        const double range = std::sqrt(dx * dx + y2);
        const int bin =
            static_cast<int>((range - cfg.range0_m) * inv_step + 0.5);
        if (bin < 0 || bin >= samples) continue;
        const std::size_t idx = static_cast<std::size_t>(a) *
                                    static_cast<std::size_t>(samples) +
                                static_cast<std::size_t>(bin);
        m.load(returns_addr + idx * sizeof(float));
        acc += data.returns[idx];
      }
      // ~8 uops per aperture: address math, sqrt pipeline slice, accumulate.
      m.compute(8 * apertures.size());
      out[p] = static_cast<float>(acc);
      m.store(out_addr + p * sizeof(float));
    }
  }
}

/// Bilinear upsampling of a coarse magnitude image to `factor` times the
/// resolution in both axes; writes |value| so the result is a magnitude
/// image. Narrated at 4-element (16 B) vector granularity.
template <typename Machine>
void upsample_magnitude(Machine& m, std::span<const float> coarse,
                        int cw, int ch, int factor, std::span<float> full,
                        Address coarse_addr, Address full_addr) {
  m.set_code_footprint(kUpsampleCodeRegion, 5);
  const int fw = cw * factor;
  const int fh = ch * factor;
  const double inv = 1.0 / factor;
  std::size_t p = 0;
  for (int fy = 0; fy < fh; ++fy) {
    const double sy = fy * inv;
    const int y0 = std::min(static_cast<int>(sy), ch - 1);
    const int y1 = std::min(y0 + 1, ch - 1);
    const double wy = sy - y0;
    for (int fx = 0; fx < fw; ++fx, ++p) {
      const double sx = fx * inv;
      const int x0 = std::min(static_cast<int>(sx), cw - 1);
      const int x1 = std::min(x0 + 1, cw - 1);
      const double wx = sx - x0;
      const std::size_t i00 = static_cast<std::size_t>(y0) * cw + x0;
      const std::size_t i01 = static_cast<std::size_t>(y0) * cw + x1;
      const std::size_t i10 = static_cast<std::size_t>(y1) * cw + x0;
      const std::size_t i11 = static_cast<std::size_t>(y1) * cw + x1;
      const double v0 = coarse[i00] * (1 - wx) + coarse[i01] * wx;
      const double v1 = coarse[i10] * (1 - wx) + coarse[i11] * wx;
      full[p] = static_cast<float>(std::fabs(v0 * (1 - wy) + v1 * wy));
      if (p % 4 == 0) {
        m.load(coarse_addr + i00 * sizeof(float));
        m.store(full_addr + p * sizeof(float));
        m.compute(10);
      }
    }
  }
}

/// Streaming element-wise minimum: running = min(running, candidate).
/// This is the RSM combining pass — the paper's "iteratively loops through
/// the array elements to remove noise". Narrated at vector granularity.
template <typename Machine>
void min_combine(Machine& m, std::span<float> running,
                 std::span<const float> candidate, Address running_addr,
                 Address candidate_addr) {
  m.set_code_footprint(kMinCodeRegion, 4);
  const std::size_t n = running.size();
  for (std::size_t p = 0; p < n; ++p) {
    if (candidate[p] < running[p]) running[p] = candidate[p];
  }
  // Narration: one {load running, load candidate, store running, 3 uops}
  // vector op per 4 elements, a regular 16 B-stride stream.
  const StreamOp ops[3] = {
      {.kind = StreamOp::Kind::kLoad, .base = running_addr},
      {.kind = StreamOp::Kind::kLoad, .base = candidate_addr},
      {.kind = StreamOp::Kind::kStore, .base = running_addr},
  };
  m.pattern_stream(ops, /*stride=*/4 * sizeof(float), (n + 3) / 4,
                   /*uops=*/3);
}

}  // namespace pcap::apps::sar
