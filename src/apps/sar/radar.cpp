#include "apps/sar/radar.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace pcap::apps::sar {

double ricker(double t_bins, double width_bins) {
  const double s = t_bins / width_bins;
  const double s2 = s * s;
  return (1.0 - 2.0 * s2) * std::exp(-s2);
}

RadarData simulate_returns(const std::vector<PointTarget>& scene,
                           const RadarConfig& config) {
  RadarData data;
  data.config = config;
  data.aperture_x_m.resize(static_cast<std::size_t>(config.apertures));
  data.returns.assign(static_cast<std::size_t>(config.apertures) *
                          static_cast<std::size_t>(config.samples_per_return),
                      0.0f);

  util::Rng rng(config.seed);
  const double half = config.track_length_m / 2.0;
  for (int a = 0; a < config.apertures; ++a) {
    const double t = config.apertures > 1
                         ? static_cast<double>(a) / (config.apertures - 1)
                         : 0.5;
    data.aperture_x_m[static_cast<std::size_t>(a)] = -half + t * config.track_length_m;
  }

  // Support of the Ricker wavelet, in bins.
  const int support = static_cast<int>(std::ceil(config.pulse_width_bins * 4.0));

  for (int a = 0; a < config.apertures; ++a) {
    const double ax = data.aperture_x_m[static_cast<std::size_t>(a)];
    float* row = &data.returns[static_cast<std::size_t>(a) *
                               static_cast<std::size_t>(config.samples_per_return)];
    for (const auto& target : scene) {
      const double dx = target.x_m - ax;
      const double range = std::sqrt(dx * dx + target.y_m * target.y_m);
      const double bin_center = (range - config.range0_m) / config.range_step_m;
      const int lo = static_cast<int>(std::floor(bin_center)) - support;
      const int hi = static_cast<int>(std::ceil(bin_center)) + support;
      // 1/R amplitude falloff (two-way spreading collapsed into one factor).
      const double amp = target.reflectivity * (config.range0_m / range);
      for (int b = lo; b <= hi; ++b) {
        if (b < 0 || b >= config.samples_per_return) continue;
        row[b] += static_cast<float>(
            amp * ricker(static_cast<double>(b) - bin_center,
                         config.pulse_width_bins));
      }
    }
    if (config.noise_sigma > 0.0) {
      for (int b = 0; b < config.samples_per_return; ++b) {
        row[b] += static_cast<float>(rng.gaussian(0.0, config.noise_sigma));
      }
    }
  }
  return data;
}

}  // namespace pcap::apps::sar
