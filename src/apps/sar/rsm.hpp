// SIRE/RSM image formation pipeline: full-aperture backprojection, bilinear
// upsampling to the display grid, then Recursive Sidelobe Minimisation —
// repeated backprojection over random aperture subsets combined by
// element-wise minimum, which suppresses sidelobes/noise that move between
// subsets while true scatterers persist.
//
// Memory profile (the paper's characterisation): the full-resolution
// running and candidate images together exceed the 20 MB L3, so each RSM
// pass streams through memory — compulsory misses followed by conflict
// misses, insensitive to cache way gating.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/machine.hpp"
#include "apps/sar/backprojection.hpp"
#include "apps/sar/radar.hpp"
#include "util/rng.hpp"

namespace pcap::apps::sar {

struct SireParams {
  SceneConfig scene;
  RadarConfig radar;
  int coarse_width = 320;
  int coarse_height = 144;
  // Full image 3840 x 1728: ~26.5 MB per buffer, so a single image exceeds
  // the 20 MB L3 ("too large to fit in any one of the caches", §IV-B).
  int upsample_factor = 12;
  int rsm_iterations = 3;
  double subset_fraction = 0.75;
  std::uint64_t seed = 11;

  /// Paper-scale workload ("large image": streaming set ~24 MB > L3).
  static SireParams paper();
  /// Small instance for unit tests.
  static SireParams quick();

  int full_width() const { return coarse_width * upsample_factor; }
  int full_height() const { return coarse_height * upsample_factor; }
};

struct SireResult {
  int width = 0;
  int height = 0;
  std::vector<float> base_image;  // full-aperture magnitude (pre-RSM)
  std::vector<float> rsm_image;   // after min-combining
  ImageGrid coarse_grid;

  float at(int x, int y) const {
    return rsm_image[static_cast<std::size_t>(y) * width +
                     static_cast<std::size_t>(x)];
  }
};

/// Runs the pipeline, narrating to `m`. Deterministic given params.
template <typename Machine>
SireResult run_sire_pipeline(Machine& m, const RadarData& data,
                             const SireParams& p) {
  SireResult result;
  result.width = p.full_width();
  result.height = p.full_height();
  result.coarse_grid = ImageGrid::cover(p.scene, p.coarse_width, p.coarse_height);
  const std::size_t coarse_px = result.coarse_grid.pixels();
  const std::size_t full_px =
      static_cast<std::size_t>(result.width) * result.height;

  const Address returns_addr = m.alloc(data.size_bytes());
  const Address coarse_addr = m.alloc(coarse_px * sizeof(float));
  const Address running_addr = m.alloc(full_px * sizeof(float));
  const Address candidate_addr = m.alloc(full_px * sizeof(float));

  std::vector<float> coarse(coarse_px, 0.0f);
  std::vector<float> running(full_px, 0.0f);
  std::vector<float> candidate(full_px, 0.0f);

  std::vector<int> all(static_cast<std::size_t>(data.apertures()));
  for (int a = 0; a < data.apertures(); ++a) all[static_cast<std::size_t>(a)] = a;

  // Base image from the full aperture set.
  backproject(m, data, all, result.coarse_grid, coarse, returns_addr,
              coarse_addr);
  upsample_magnitude(m, coarse, p.coarse_width, p.coarse_height,
                     p.upsample_factor, running, coarse_addr, running_addr);
  result.base_image = running;

  // RSM iterations over random aperture subsets.
  util::Rng rng(p.seed);
  const auto subset_size = static_cast<std::size_t>(
      static_cast<double>(all.size()) * p.subset_fraction);
  std::vector<int> subset(all);
  for (int iter = 0; iter < p.rsm_iterations; ++iter) {
    // Partial Fisher-Yates: the first subset_size entries are the draw.
    for (std::size_t i = 0; i < subset_size && i + 1 < subset.size(); ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(rng.below(subset.size() - i));
      std::swap(subset[i], subset[j]);
    }
    const std::span<const int> chosen(subset.data(), subset_size);
    backproject(m, data, chosen, result.coarse_grid, coarse, returns_addr,
                coarse_addr);
    // Subsets sum fewer apertures; rescale to keep magnitudes comparable.
    const float scale = static_cast<float>(all.size()) /
                        static_cast<float>(subset_size ? subset_size : 1);
    for (auto& v : coarse) v *= scale;
    upsample_magnitude(m, coarse, p.coarse_width, p.coarse_height,
                       p.upsample_factor, candidate, coarse_addr,
                       candidate_addr);
    min_combine(m, running, candidate, running_addr, candidate_addr);
  }

  result.rsm_image = std::move(running);
  return result;
}

/// Host-only convenience (tests, validation).
SireResult run_sire_pipeline_host(const RadarData& data, const SireParams& p);

}  // namespace pcap::apps::sar
