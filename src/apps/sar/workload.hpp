// sim::Workload wrapper for the SIRE/RSM application. Radar data generation
// (the input dataset) happens at construction; run() times image formation
// only, as the paper does. Every run() performs an identical instruction
// stream, so committed-instruction counts match across power caps.
#pragma once

#include <string>

#include "apps/sar/rsm.hpp"
#include "sim/workload.hpp"

namespace pcap::apps::sar {

class SireWorkload final : public sim::Workload {
 public:
  explicit SireWorkload(const SireParams& params = SireParams::paper());

  std::string name() const override { return "SIRE/RSM"; }
  void run(sim::ExecutionContext& ctx) override;

  const SireParams& params() const { return params_; }
  const RadarData& data() const { return data_; }
  /// Result of the most recent run (empty images before the first run).
  const SireResult& last_result() const { return result_; }

 private:
  SireParams params_;
  RadarData data_;
  SireResult result_;
};

}  // namespace pcap::apps::sar
