// Forward model of the ARL SIRE ultra-wideband impulse radar: the platform
// advances along a track, transmitting an impulse at each aperture position
// and recording the time-domain return. Returns are what the paper's
// SIRE/RSM application consumes; generating them is offline data prep (the
// paper's input dataset), not part of the timed image-formation workload.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/sar/scene.hpp"

namespace pcap::apps::sar {

struct RadarConfig {
  int apertures = 64;
  int samples_per_return = 2048;
  double track_length_m = 16.0;  // along x, at y = 0
  double range0_m = 6.0;         // range of sample bin 0
  double range_step_m = 0.02;    // range per sample bin
  double pulse_width_bins = 3.0; // Ricker wavelet width
  double noise_sigma = 0.01;
  std::uint64_t seed = 7;
};

struct RadarData {
  RadarConfig config;
  std::vector<double> aperture_x_m;  // one per aperture (y == 0)
  std::vector<float> returns;        // apertures x samples, row-major

  int apertures() const { return config.apertures; }
  int samples() const { return config.samples_per_return; }
  float sample(int aperture, int bin) const {
    return returns[static_cast<std::size_t>(aperture) *
                       static_cast<std::size_t>(samples()) +
                   static_cast<std::size_t>(bin)];
  }
  std::size_t size_bytes() const { return returns.size() * sizeof(float); }
};

/// Ricker (Mexican-hat) wavelet, the canonical UWB impulse shape.
double ricker(double t_bins, double width_bins);

/// Simulates the radar pass over the scene.
RadarData simulate_returns(const std::vector<PointTarget>& scene,
                           const RadarConfig& config);

}  // namespace pcap::apps::sar
