#include "apps/sar/scene.hpp"

#include "util/rng.hpp"

namespace pcap::apps::sar {

std::vector<PointTarget> make_scene(const SceneConfig& config) {
  util::Rng rng(config.seed);
  std::vector<PointTarget> targets;
  targets.reserve(static_cast<std::size_t>(config.targets));
  for (int i = 0; i < config.targets; ++i) {
    PointTarget t;
    t.x_m = rng.uniform(-config.extent_x_m / 2 * 0.9, config.extent_x_m / 2 * 0.9);
    t.y_m = rng.uniform(config.near_y_m * 1.1, config.far_y_m * 0.95);
    t.reflectivity = rng.uniform(0.6, 1.0);
    targets.push_back(t);
  }
  return targets;
}

}  // namespace pcap::apps::sar
