// Synthetic ground scene for the SIRE radar: a handful of point reflectors
// in the imaged area (stand-in for the paper's "Lam dataset" field data,
// which is not publicly available).
#pragma once

#include <cstdint>
#include <vector>

namespace pcap::apps::sar {

struct PointTarget {
  double x_m = 0.0;          // cross-range position
  double y_m = 0.0;          // down-range position
  double reflectivity = 1.0;
};

struct SceneConfig {
  double extent_x_m = 32.0;  // imaged swath, cross-range
  double near_y_m = 8.0;     // nearest imaged down-range
  double far_y_m = 28.0;
  int targets = 6;
  std::uint64_t seed = 42;
};

/// Deterministically places `targets` reflectors inside the imaged area.
std::vector<PointTarget> make_scene(const SceneConfig& config);

}  // namespace pcap::apps::sar
