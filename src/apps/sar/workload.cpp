#include "apps/sar/workload.hpp"

#include "apps/machine.hpp"

namespace pcap::apps::sar {

SireWorkload::SireWorkload(const SireParams& params)
    : params_(params),
      data_(simulate_returns(make_scene(params.scene), params.radar)) {}

void SireWorkload::run(sim::ExecutionContext& ctx) {
  SimMachine m(ctx);
  result_ = run_sire_pipeline(m, data_, params_);
}

}  // namespace pcap::apps::sar
