#include "apps/sar/rsm.hpp"

namespace pcap::apps::sar {

SireParams SireParams::paper() { return SireParams{}; }

SireParams SireParams::quick() {
  SireParams p;
  p.radar.apertures = 24;
  // Enough range bins to cover the whole scene (range0 + bins*step must
  // exceed the farthest target's range).
  p.radar.samples_per_return = 1600;
  p.coarse_width = 96;
  p.coarse_height = 64;
  p.upsample_factor = 2;
  p.rsm_iterations = 2;
  return p;
}

SireResult run_sire_pipeline_host(const RadarData& data, const SireParams& p) {
  HostMachine m;
  return run_sire_pipeline(m, data, p);
}

}  // namespace pcap::apps::sar
