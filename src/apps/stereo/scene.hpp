// Synthetic "three-layer wedding cake" stereo scene: a textured ground
// plane with three nested raised rectangular layers, each at its own
// disparity — the input the paper's stereo-matching experiments used.
#pragma once

#include <cstdint>
#include <vector>

namespace pcap::apps::stereo {

struct StereoSceneConfig {
  int width = 512;
  int height = 384;
  int layers = 3;
  int background_disparity = 2;
  int layer_disparity_step = 6;  // layer k sits at bg + (k+1)*step
  int max_disparity = 24;        // exclusive upper bound of the search range
  std::uint64_t seed = 5;
};

struct StereoPair {
  int width = 0;
  int height = 0;
  int max_disparity = 0;
  std::vector<float> left;          // width*height luminance
  std::vector<float> right;
  std::vector<std::uint8_t> truth;  // ground-truth disparity per left pixel

  std::size_t pixels() const {
    return static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  }
};

/// Builds the pair. The right image is the left image warped by the truth
/// disparity (right(x - d, y) = left(x, y)) with occlusion holes filled from
/// the background.
StereoPair make_wedding_cake(const StereoSceneConfig& config);

}  // namespace pcap::apps::stereo
