#include "apps/stereo/workload.hpp"

#include "apps/machine.hpp"

namespace pcap::apps::stereo {

StereoWorkload::StereoWorkload(const StereoParams& params)
    : params_(params), pair_(make_wedding_cake(params.scene)) {}

void StereoWorkload::run(sim::ExecutionContext& ctx) {
  SimMachine m(ctx);
  const Address left_addr = m.alloc(pair_.pixels() * sizeof(float));
  const Address right_addr = m.alloc(pair_.pixels() * sizeof(float));
  const Address volume_addr = m.alloc(static_cast<std::uint64_t>(
      pair_.max_disparity * pair_.pixels() * sizeof(std::uint16_t)));
  const Address disparity_addr = m.alloc(pair_.pixels());

  const CostVolume vol = build_cost_volume(m, pair_, params_.window, left_addr,
                                           right_addr, volume_addr);
  result_ =
      anneal_disparity(m, vol, params_.anneal, volume_addr, disparity_addr);
}

}  // namespace pcap::apps::stereo
