#include "apps/stereo/scene.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pcap::apps::stereo {

namespace {

/// 3x3 box blur, one pass (edges clamped).
void blur(std::vector<float>& img, int w, int h) {
  std::vector<float> out(img.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      float sum = 0.0f;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const int sy = std::clamp(y + dy, 0, h - 1);
          const int sx = std::clamp(x + dx, 0, w - 1);
          sum += img[static_cast<std::size_t>(sy) * w + sx];
        }
      }
      out[static_cast<std::size_t>(y) * w + x] = sum / 9.0f;
    }
  }
  img = std::move(out);
}

}  // namespace

StereoPair make_wedding_cake(const StereoSceneConfig& config) {
  StereoPair pair;
  pair.width = config.width;
  pair.height = config.height;
  pair.max_disparity = config.max_disparity;
  const std::size_t n = pair.pixels();
  pair.left.assign(n, 0.0f);
  pair.right.assign(n, 0.0f);
  pair.truth.assign(n, static_cast<std::uint8_t>(config.background_disparity));

  // Ground-truth disparity: nested centred rectangles, higher layers closer
  // (larger disparity).
  for (int layer = 0; layer < config.layers; ++layer) {
    const double shrink = 0.72 - 0.22 * layer;
    const int lw = static_cast<int>(config.width * shrink);
    const int lh = static_cast<int>(config.height * shrink);
    const int x0 = (config.width - lw) / 2;
    const int y0 = (config.height - lh) / 2;
    const int d = std::min(
        config.background_disparity + (layer + 1) * config.layer_disparity_step,
        config.max_disparity - 1);
    for (int y = y0; y < y0 + lh; ++y) {
      for (int x = x0; x < x0 + lw; ++x) {
        pair.truth[static_cast<std::size_t>(y) * config.width + x] =
            static_cast<std::uint8_t>(d);
      }
    }
  }

  // Left image: band-limited random texture (so window SSD is informative).
  util::Rng rng(config.seed);
  for (auto& v : pair.left) v = static_cast<float>(rng.uniform(0.0, 1.0));
  blur(pair.left, config.width, config.height);
  // Boost contrast after smoothing.
  for (auto& v : pair.left) v = (v - 0.5f) * 3.0f;

  // Right image by forward warp; remember which pixels were written.
  std::vector<std::uint8_t> filled(n, 0);
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * config.width + x;
      const int xr = x - pair.truth[i];
      if (xr < 0) continue;
      const std::size_t j = static_cast<std::size_t>(y) * config.width + xr;
      // Nearer surfaces (larger disparity) win occlusions.
      if (!filled[j] || pair.truth[i] > filled[j]) {
        pair.right[j] = pair.left[i];
        filled[j] = pair.truth[i];
      }
    }
  }
  // Fill never-written right pixels from the nearest filled left neighbour.
  for (int y = 0; y < config.height; ++y) {
    float last = 0.0f;
    for (int x = 0; x < config.width; ++x) {
      const std::size_t j = static_cast<std::size_t>(y) * config.width + x;
      if (filled[j]) last = pair.right[j];
      else pair.right[j] = last;
    }
  }
  return pair;
}

}  // namespace pcap::apps::stereo
