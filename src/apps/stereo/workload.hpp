// sim::Workload wrapper for stereo matching with simulated annealing.
// Scene/pair generation is offline prep; run() times cost-volume
// construction plus the annealing optimisation, exactly once per run, with
// a deterministic instruction stream.
#pragma once

#include <string>

#include "apps/stereo/annealing.hpp"
#include "apps/stereo/cost_volume.hpp"
#include "apps/stereo/scene.hpp"
#include "sim/workload.hpp"

namespace pcap::apps::stereo {

struct StereoParams {
  StereoSceneConfig scene;
  int window = 5;
  AnnealParams anneal;

  /// Paper-scale workload (512x384, 24 disparities: ~9.4 MB cost volume).
  static StereoParams paper() { return StereoParams{}; }
  static StereoParams quick() {
    StereoParams p;
    p.scene.width = 96;
    p.scene.height = 64;
    p.scene.max_disparity = 12;
    p.anneal = AnnealParams::quick();
    return p;
  }
};

class StereoWorkload final : public sim::Workload {
 public:
  explicit StereoWorkload(const StereoParams& params = StereoParams::paper());

  std::string name() const override { return "Stereo Matching"; }
  void run(sim::ExecutionContext& ctx) override;

  const StereoParams& params() const { return params_; }
  const StereoPair& pair() const { return pair_; }
  const AnnealResult& last_result() const { return result_; }

 private:
  StereoParams params_;
  StereoPair pair_;
  AnnealResult result_;
};

}  // namespace pcap::apps::stereo
