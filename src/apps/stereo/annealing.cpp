#include "apps/stereo/annealing.hpp"

namespace pcap::apps::stereo {

double disparity_energy(const CostVolume& vol,
                        const std::vector<std::uint8_t>& disparity,
                        double lambda) {
  double energy = 0.0;
  for (int y = 0; y < vol.height; ++y) {
    for (int x = 0; x < vol.width; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * vol.width + x;
      energy += vol.at(x, y, disparity[i]);
      if (x + 1 < vol.width) {
        energy += lambda * std::abs(static_cast<int>(disparity[i]) -
                                    static_cast<int>(disparity[i + 1]));
      }
      if (y + 1 < vol.height) {
        energy += lambda *
                  std::abs(static_cast<int>(disparity[i]) -
                           static_cast<int>(
                               disparity[i + static_cast<std::size_t>(vol.width)]));
      }
    }
  }
  return energy;
}

double disparity_accuracy(const std::vector<std::uint8_t>& disparity,
                          const std::vector<std::uint8_t>& truth,
                          int tolerance) {
  if (disparity.empty() || disparity.size() != truth.size()) return 0.0;
  std::size_t good = 0;
  for (std::size_t i = 0; i < disparity.size(); ++i) {
    if (std::abs(static_cast<int>(disparity[i]) - static_cast<int>(truth[i])) <=
        tolerance) {
      ++good;
    }
  }
  return static_cast<double>(good) / static_cast<double>(disparity.size());
}

}  // namespace pcap::apps::stereo
