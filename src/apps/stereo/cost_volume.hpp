// Window-SSD matching cost volume: cost[d][y][x] = sum over a square window
// of (left - right shifted by d)^2, quantised to uint16. At the paper-scale
// scene (512x384x24) the volume is ~9.4 MB — resident in the 20 MB L3 but
// far beyond L2, which is exactly what makes the stereo application
// sensitive to L3 way gating at low power caps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "apps/machine.hpp"
#include "apps/stereo/scene.hpp"

namespace pcap::apps::stereo {

inline constexpr std::uint32_t kCostCodeRegion = 5;

struct CostVolume {
  int width = 0;
  int height = 0;
  int disparities = 0;
  /// Pixel-major layout [y][x][d]: all disparities of one pixel are
  /// contiguous (the layout stereo codes use for per-pixel cost scans), so
  /// the Monte-Carlo matcher touches the whole volume uniformly — the
  /// working set is the full ~9.4 MB, resident in a 20 MB L3 but not in a
  /// way-gated one.
  std::vector<std::uint16_t> cost;

  std::uint16_t at(int x, int y, int d) const { return cost[index(x, y, d)]; }
  std::size_t index(int x, int y, int d) const {
    return (static_cast<std::size_t>(y) * width + static_cast<std::size_t>(x)) *
               disparities +
           static_cast<std::size_t>(d);
  }
  std::size_t size_bytes() const { return cost.size() * sizeof(std::uint16_t); }
};

/// Builds the volume, narrating image reads and volume writes to `m`.
/// `window` must be odd.
template <typename Machine>
CostVolume build_cost_volume(Machine& m, const StereoPair& pair, int window,
                             Address left_addr, Address right_addr,
                             Address volume_addr) {
  m.set_code_footprint(kCostCodeRegion, 6);
  CostVolume vol;
  vol.width = pair.width;
  vol.height = pair.height;
  vol.disparities = pair.max_disparity;
  vol.cost.assign(static_cast<std::size_t>(pair.max_disparity) * pair.pixels(),
                  std::numeric_limits<std::uint16_t>::max());

  const int r = window / 2;
  const int w = pair.width;
  const int h = pair.height;
  std::vector<float> diff(pair.pixels());
  std::vector<float> rowsum(pair.pixels());

  for (int d = 0; d < pair.max_disparity; ++d) {
    // Squared difference plane at disparity d.
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        const std::size_t i = static_cast<std::size_t>(y) * w + x;
        const int xr = x - d;
        float v;
        if (xr < 0) {
          v = 4.0f;  // out of view: large, finite penalty
        } else {
          const float e = pair.left[i] -
                          pair.right[static_cast<std::size_t>(y) * w + xr];
          v = e * e;
        }
        diff[i] = v;
      }
    }
    // Narration: one {load left, load right, 8 uops} vector op per 4
    // pixels — `i` walks the plane linearly, a regular 16 B-stride stream.
    const StreamOp diff_ops[2] = {
        {.kind = StreamOp::Kind::kLoad, .base = left_addr},
        {.kind = StreamOp::Kind::kLoad, .base = right_addr},
    };
    m.pattern_stream(diff_ops, /*stride=*/4 * sizeof(float),
                     (pair.pixels() + 3) / 4, /*uops=*/8);
    // Separable box sum: horizontal then vertical (host arithmetic; the
    // streaming passes are narrated as compute per row).
    for (int y = 0; y < h; ++y) {
      float acc = 0.0f;
      const std::size_t row = static_cast<std::size_t>(y) * w;
      for (int x = 0; x <= std::min(r, w - 1); ++x) acc += diff[row + x];
      for (int x = 0; x < w; ++x) {
        rowsum[row + x] = acc;
        const int add = x + r + 1;
        const int sub = x - r;
        if (add < w) acc += diff[row + add];
        if (sub >= 0) acc -= diff[row + sub];
      }
      m.compute(static_cast<std::uint64_t>(w) / 2);
    }
    for (int x = 0; x < w; ++x) {
      float acc = 0.0f;
      for (int y = 0; y <= std::min(r, h - 1); ++y) {
        acc += rowsum[static_cast<std::size_t>(y) * w + x];
      }
      for (int y = 0; y < h; ++y) {
        const std::size_t i = static_cast<std::size_t>(y) * w + x;
        const float scaled = acc * 1024.0f;
        vol.cost[vol.index(x, y, d)] = static_cast<std::uint16_t>(
            std::min(scaled, 65535.0f));
        const int add = y + r + 1;
        const int sub = y - r;
        if (add < h) acc += rowsum[static_cast<std::size_t>(add) * w + x];
        if (sub >= 0) acc -= rowsum[static_cast<std::size_t>(sub) * w + x];
        if (i % 4 == 0) {
          m.store(volume_addr + vol.index(x, y, d) * sizeof(std::uint16_t));
          m.compute(6);
        }
      }
    }
  }
  return vol;
}

}  // namespace pcap::apps::stereo
