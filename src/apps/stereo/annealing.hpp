// Monte-Carlo stereo matching by simulated annealing (after Shires,
// ARL-TR-667): minimise E(D) = sum of matching cost(x, y, D(x,y)) plus a
// smoothness term over 4-neighbour disparity differences, with Metropolis
// acceptance under a geometric cooling schedule.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "apps/machine.hpp"
#include "apps/stereo/cost_volume.hpp"
#include "util/rng.hpp"

namespace pcap::apps::stereo {

inline constexpr std::uint32_t kAnnealCodeRegion = 6;

struct AnnealParams {
  int sweeps = 6;
  double t0 = 400.0;          // initial temperature (cost-volume units)
  double t_decay = 0.5;       // geometric cooling per sweep
  double lambda = 220.0;      // smoothness weight (cost-volume units)
  int max_proposal_step = 4;  // disparity proposals within +/- this
  std::uint64_t seed = 9;

  static AnnealParams paper() { return AnnealParams{}; }
  static AnnealParams quick() {
    AnnealParams p;
    p.sweeps = 4;
    return p;
  }
};

struct AnnealResult {
  std::vector<std::uint8_t> disparity;
  double final_energy = 0.0;
  std::vector<double> energy_trace;  // total energy after each sweep
  std::uint64_t proposals = 0;
  std::uint64_t accepted = 0;
};

/// Full-image energy under the current disparity field (host arithmetic).
double disparity_energy(const CostVolume& vol,
                        const std::vector<std::uint8_t>& disparity,
                        double lambda);

/// Winner-take-all initialisation: argmin_d cost(x, y, d) per pixel.
template <typename Machine>
std::vector<std::uint8_t> wta_init(Machine& m, const CostVolume& vol,
                                   Address volume_addr) {
  std::vector<std::uint8_t> disparity(
      static_cast<std::size_t>(vol.width) * vol.height, 0);
  // Narration per pixel: the cost scan is one load per 4 disparities — a
  // contiguous 8 B-stride stream over the pixel's cost row — then the
  // comparison arithmetic.
  const std::uint64_t scan_loads =
      vol.disparities > 0
          ? static_cast<std::uint64_t>(vol.disparities - 1) / 4
          : 0;
  for (int y = 0; y < vol.height; ++y) {
    for (int x = 0; x < vol.width; ++x) {
      std::uint16_t best = vol.at(x, y, 0);
      int best_d = 0;
      for (int d = 1; d < vol.disparities; ++d) {
        const std::uint16_t c = vol.at(x, y, d);
        if (c < best) {
          best = c;
          best_d = d;
        }
      }
      disparity[static_cast<std::size_t>(y) * vol.width + x] =
          static_cast<std::uint8_t>(best_d);
      if (scan_loads != 0) {
        m.load_stream(volume_addr + vol.index(x, y, 4) * 2, /*stride=*/8,
                      scan_loads);
      }
      m.compute(static_cast<std::uint64_t>(vol.disparities) * 2);
    }
  }
  return disparity;
}

/// One full annealing optimisation, narrated to `m`.
template <typename Machine>
AnnealResult anneal_disparity(Machine& m, const CostVolume& vol,
                              const AnnealParams& params, Address volume_addr,
                              Address disparity_addr) {
  m.set_code_footprint(kAnnealCodeRegion, 7);
  AnnealResult result;
  result.disparity = wta_init(m, vol, volume_addr);
  auto& disp = result.disparity;

  util::Rng rng(params.seed);
  const int w = vol.width;
  const int h = vol.height;
  double temperature = params.t0;

  const std::size_t sites =
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  for (int sweep = 0; sweep < params.sweeps; ++sweep) {
    // Monte-Carlo site visitation: one proposal per pixel per sweep, at
    // uniformly random sites (this is also what makes the cost volume's
    // residency in the L3 — and its eviction under way gating — matter).
    for (std::size_t visit = 0; visit < sites; ++visit) {
      {
        const std::size_t i = rng.below(sites);
        const int x = static_cast<int>(i % static_cast<std::size_t>(w));
        const int y = static_cast<int>(i / static_cast<std::size_t>(w));
        const int d_old = disp[i];
        int step = 1 + static_cast<int>(
                           rng.below(static_cast<std::uint64_t>(
                               params.max_proposal_step)));
        if (rng.chance(0.5)) step = -step;
        int d_new = d_old + step;
        if (d_new < 0 || d_new >= vol.disparities) continue;
        ++result.proposals;

        // Data term.
        m.load(volume_addr + vol.index(x, y, d_old) * 2);
        m.load(volume_addr + vol.index(x, y, d_new) * 2);
        double delta = static_cast<double>(vol.at(x, y, d_new)) -
                       static_cast<double>(vol.at(x, y, d_old));
        // Smoothness term over the 4-neighbourhood.
        const int nx[4] = {x - 1, x + 1, x, x};
        const int ny[4] = {y, y, y - 1, y + 1};
        for (int k = 0; k < 4; ++k) {
          if (nx[k] < 0 || nx[k] >= w || ny[k] < 0 || ny[k] >= h) continue;
          const std::size_t j = static_cast<std::size_t>(ny[k]) * w + nx[k];
          m.load(disparity_addr + j);
          const int dn = disp[j];
          delta += params.lambda *
                   (std::abs(d_new - dn) - std::abs(d_old - dn));
        }
        m.compute(26);

        const bool accept =
            delta <= 0.0 ||
            rng.uniform() < std::exp(-delta / std::max(temperature, 1e-9));
        if (accept) {
          disp[i] = static_cast<std::uint8_t>(d_new);
          m.store(disparity_addr + i);
          ++result.accepted;
        }
      }
    }
    result.energy_trace.push_back(
        disparity_energy(vol, disp, params.lambda));
    temperature *= params.t_decay;
  }
  result.final_energy =
      result.energy_trace.empty() ? 0.0 : result.energy_trace.back();
  return result;
}

/// Fraction of pixels whose disparity is within `tolerance` of truth.
double disparity_accuracy(const std::vector<std::uint8_t>& disparity,
                          const std::vector<std::uint8_t>& truth,
                          int tolerance);

}  // namespace pcap::apps::stereo
