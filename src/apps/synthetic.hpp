// Synthetic workloads: controllable compute-bound, memory-bound and phased
// (unpredictable) instruction streams. Used by unit tests, the controller
// benches and the paper's future-work experiment on unpredictable workloads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace pcap::apps {

/// Pure arithmetic: `total_uops` committed micro-ops, no data traffic.
/// Steppable: the cooperative SMP engine resumes it as a plain call, with
/// budget checks after every priced op — the same suspension points the
/// per-op TickSink yield would produce.
class ComputeBoundWorkload final : public sim::Workload {
 public:
  explicit ComputeBoundWorkload(std::uint64_t total_uops,
                                std::uint32_t code_pages = 4)
      : total_uops_(total_uops), code_pages_(code_pages) {}

  std::string name() const override { return "compute-bound"; }
  void run(sim::ExecutionContext& ctx) override;

  bool supports_step() const override { return true; }
  void begin_steps() override;
  bool step(sim::ExecutionContext& ctx, util::Picoseconds budget) override;

 private:
  std::uint64_t total_uops_;
  std::uint32_t code_pages_;

  // Stepping state (valid between begin_steps() and the final step()).
  bool step_primed_ = false;
  std::uint64_t step_remaining_ = 0;
};

/// Streams through a working set repeatedly. Steppable (see above).
class MemoryBoundWorkload final : public sim::Workload {
 public:
  MemoryBoundWorkload(std::uint64_t working_set_bytes, std::uint64_t touches,
                      std::uint64_t stride_bytes = 64)
      : working_set_(working_set_bytes), touches_(touches),
        stride_(stride_bytes) {}

  std::string name() const override { return "memory-bound"; }
  void run(sim::ExecutionContext& ctx) override;

  bool supports_step() const override { return true; }
  void begin_steps() override;
  bool step(sim::ExecutionContext& ctx, util::Picoseconds budget) override;

 private:
  std::uint64_t working_set_;
  std::uint64_t touches_;
  std::uint64_t stride_;

  // Stepping state: position in the touch loop, plus the phase within one
  // touch (0 = load pending, 1 = compute pending) so a budget can land
  // between the load and its compute exactly like a per-op sink yield.
  bool step_primed_ = false;
  std::uint64_t step_base_ = 0;  // sim::Address
  std::uint64_t step_offset_ = 0;
  std::uint64_t step_touch_ = 0;
  int step_phase_ = 0;
};

/// Alternates compute-heavy and memory-heavy phases of random length: power
/// demand jumps unpredictably between roughly the two pure profiles.
struct PhasedParams {
  int phases = 10;
  std::uint64_t mean_phase_uops = 300000;
  std::uint64_t working_set_bytes = 8ull * 1024 * 1024;
  std::uint64_t seed = 17;
};

class PhasedWorkload final : public sim::Workload {
 public:
  using Params = PhasedParams;

  explicit PhasedWorkload(const Params& params = {}) : params_(params) {}

  std::string name() const override { return "phased-unpredictable"; }
  void run(sim::ExecutionContext& ctx) override;

  /// Phase boundaries (sim time) observed during the last run.
  const std::vector<util::Picoseconds>& phase_marks() const {
    return phase_marks_;
  }

 private:
  Params params_;
  std::vector<util::Picoseconds> phase_marks_;
};

}  // namespace pcap::apps
