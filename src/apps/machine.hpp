// Machine-narration policy for the applications.
//
// Application kernels are written once, templated on a Machine policy:
//  - HostMachine: no-op narration. The kernel is pure host computation —
//    used by unit tests to verify algorithmic correctness cheaply.
//  - SimMachine: forwards loads/stores/compute to a sim::ExecutionContext,
//    pricing the kernel on the simulated node. The arithmetic results are
//    identical; only the cost accounting differs.
#pragma once

#include <cstdint>

#include "sim/execution_context.hpp"

namespace pcap::apps {

using Address = sim::Address;
using StreamOp = sim::ExecutionContext::StreamOp;

/// No-cost narration: kernels run as plain host code.
class HostMachine {
 public:
  static constexpr bool kSimulated = false;
  void load(Address) {}
  void store(Address) {}
  void compute(std::uint64_t) {}
  void load_stream(Address, std::int64_t, std::uint64_t) {}
  void store_stream(Address, std::int64_t, std::uint64_t) {}
  void rmw_stream(Address, std::int64_t, std::uint64_t, std::uint64_t) {}
  void pattern_stream(std::span<const StreamOp>, std::int64_t, std::uint64_t,
                      std::uint64_t) {}
  void set_code_footprint(std::uint32_t, std::uint32_t) {}
  Address alloc(std::uint64_t bytes) {
    const Address base = brk_;
    brk_ += (bytes + 63) & ~63ull;
    return base;
  }

 private:
  Address brk_ = 0x1000;
};

/// Narrates to the simulator.
class SimMachine {
 public:
  static constexpr bool kSimulated = true;
  explicit SimMachine(sim::ExecutionContext& ctx) : ctx_(&ctx) {}
  void load(Address a) { ctx_->load(a); }
  void store(Address a) { ctx_->store(a); }
  void compute(std::uint64_t uops) { ctx_->compute(uops); }
  void load_stream(Address base, std::int64_t stride, std::uint64_t count) {
    ctx_->load_stream(base, stride, count);
  }
  void store_stream(Address base, std::int64_t stride, std::uint64_t count) {
    ctx_->store_stream(base, stride, count);
  }
  void rmw_stream(Address base, std::int64_t stride, std::uint64_t count,
                  std::uint64_t uops) {
    ctx_->rmw_stream(base, stride, count, uops);
  }
  void pattern_stream(std::span<const StreamOp> ops, std::int64_t stride,
                      std::uint64_t count, std::uint64_t uops) {
    ctx_->pattern_stream(ops, stride, count, uops);
  }
  void set_code_footprint(std::uint32_t region, std::uint32_t pages) {
    ctx_->set_code_footprint(region, pages);
  }
  Address alloc(std::uint64_t bytes) { return ctx_->alloc(bytes); }

 private:
  sim::ExecutionContext* ctx_;
};

}  // namespace pcap::apps
