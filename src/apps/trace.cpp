#include "apps/trace.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "sim/execution_context.hpp"

namespace pcap::apps {

namespace {
constexpr char kMagic[8] = {'p', 'c', 'a', 'p', 't', 'r', 'c', '1'};
}

void Trace::save(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("Trace::save: cannot open " + path);
  out.write(kMagic, sizeof kMagic);
  const std::uint64_t count = ops.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof count);
  for (const auto& op : ops) {
    const std::uint8_t kind = static_cast<std::uint8_t>(op.kind);
    out.write(reinterpret_cast<const char*>(&kind), sizeof kind);
    out.write(reinterpret_cast<const char*>(&op.value), sizeof op.value);
    out.write(reinterpret_cast<const char*>(&op.aux), sizeof op.aux);
  }
  if (!out) throw std::runtime_error("Trace::save: write failed: " + path);
}

Trace Trace::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Trace::load: cannot open " + path);
  char magic[8];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("Trace::load: bad header in " + path);
  }
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof count);
  Trace trace;
  trace.ops.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint8_t kind = 0;
    TraceOp op;
    in.read(reinterpret_cast<char*>(&kind), sizeof kind);
    in.read(reinterpret_cast<char*>(&op.value), sizeof op.value);
    in.read(reinterpret_cast<char*>(&op.aux), sizeof op.aux);
    if (!in) throw std::runtime_error("Trace::load: truncated " + path);
    if (kind > static_cast<std::uint8_t>(TraceOp::Kind::kAlloc)) {
      throw std::runtime_error("Trace::load: bad op kind in " + path);
    }
    op.kind = static_cast<TraceOp::Kind>(kind);
    trace.ops.push_back(op);
  }
  return trace;
}

void TraceReplayWorkload::run(sim::ExecutionContext& ctx) {
  for (const auto& op : trace_.ops) {
    switch (op.kind) {
      case TraceOp::Kind::kLoad:
        ctx.load(op.value);
        break;
      case TraceOp::Kind::kStore:
        ctx.store(op.value);
        break;
      case TraceOp::Kind::kCompute:
        ctx.compute(op.value);
        break;
      case TraceOp::Kind::kCodeFootprint:
        ctx.set_code_footprint(static_cast<std::uint32_t>(op.value), op.aux);
        break;
      case TraceOp::Kind::kAlloc:
        ctx.alloc(op.value);
        break;
    }
  }
}

}  // namespace pcap::apps
