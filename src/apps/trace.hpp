// Trace capture and replay.
//
// RecordingMachine is a narration policy (apps/machine.hpp) that tees every
// operation into a Trace while forwarding to an inner machine. A captured
// trace replays through TraceReplayWorkload, reproducing the exact
// load/store/compute/code-footprint stream on the simulator without
// re-running the application's host arithmetic — convenient for repeated
// power-cap studies of expensive workloads, and the basis of an exact
// equivalence test (replayed counters match the live run bit-for-bit).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/machine.hpp"
#include "sim/workload.hpp"

namespace pcap::apps {

struct TraceOp {
  enum class Kind : std::uint8_t {
    kLoad = 0,
    kStore = 1,
    kCompute = 2,
    kCodeFootprint = 3,
    kAlloc = 4,
  };
  Kind kind = Kind::kLoad;
  std::uint64_t value = 0;  // address | uop count | bytes
  std::uint32_t aux = 0;    // code region / pages
};

struct Trace {
  std::vector<TraceOp> ops;

  std::size_t size() const { return ops.size(); }
  bool empty() const { return ops.empty(); }

  /// Binary serialisation (little-endian, fixed-width). Throws
  /// std::runtime_error on I/O failure; load throws on a bad header.
  void save(const std::string& path) const;
  static Trace load(const std::string& path);
};

/// Tees narrated operations into a trace while forwarding to Inner.
template <typename Inner>
class RecordingMachine {
 public:
  static constexpr bool kSimulated = Inner::kSimulated;

  RecordingMachine(Inner& inner, Trace& trace)
      : inner_(&inner), trace_(&trace) {}

  void load(Address a) {
    trace_->ops.push_back({TraceOp::Kind::kLoad, a, 0});
    inner_->load(a);
  }
  void store(Address a) {
    trace_->ops.push_back({TraceOp::Kind::kStore, a, 0});
    inner_->store(a);
  }
  void compute(std::uint64_t uops) {
    // Coalesce adjacent compute ops to keep traces compact.
    if (!trace_->ops.empty() &&
        trace_->ops.back().kind == TraceOp::Kind::kCompute) {
      trace_->ops.back().value += uops;
    } else {
      trace_->ops.push_back({TraceOp::Kind::kCompute, uops, 0});
    }
    inner_->compute(uops);
  }
  // Streams are recorded expanded, one op per element: the trace format
  // stays per-op, and replaying a stream-built trace through the per-op
  // path doubles as an end-to-end batch-vs-per-op equivalence check.
  void load_stream(Address base, std::int64_t stride, std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) {
      trace_->ops.push_back(
          {TraceOp::Kind::kLoad, base + static_cast<Address>(stride) * k, 0});
    }
    inner_->load_stream(base, stride, count);
  }
  void store_stream(Address base, std::int64_t stride, std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) {
      trace_->ops.push_back(
          {TraceOp::Kind::kStore, base + static_cast<Address>(stride) * k, 0});
    }
    inner_->store_stream(base, stride, count);
  }
  void rmw_stream(Address base, std::int64_t stride, std::uint64_t count,
                  std::uint64_t uops) {
    const StreamOp ops[2] = {
        {.kind = StreamOp::Kind::kLoad, .base = base},
        {.kind = StreamOp::Kind::kStore, .base = base},
    };
    record_pattern(ops, stride, count, uops);
    inner_->rmw_stream(base, stride, count, uops);
  }
  void pattern_stream(std::span<const StreamOp> ops, std::int64_t stride,
                      std::uint64_t count, std::uint64_t uops) {
    record_pattern(ops, stride, count, uops);
    inner_->pattern_stream(ops, stride, count, uops);
  }
  void set_code_footprint(std::uint32_t region, std::uint32_t pages) {
    trace_->ops.push_back({TraceOp::Kind::kCodeFootprint, region, pages});
    inner_->set_code_footprint(region, pages);
  }
  Address alloc(std::uint64_t bytes) {
    trace_->ops.push_back({TraceOp::Kind::kAlloc, bytes, 0});
    return inner_->alloc(bytes);
  }

 private:
  void record_compute(std::uint64_t uops) {
    if (!trace_->ops.empty() &&
        trace_->ops.back().kind == TraceOp::Kind::kCompute) {
      trace_->ops.back().value += uops;
    } else {
      trace_->ops.push_back({TraceOp::Kind::kCompute, uops, 0});
    }
  }
  void record_pattern(std::span<const StreamOp> ops, std::int64_t stride,
                      std::uint64_t count, std::uint64_t uops) {
    Address offset = 0;
    for (std::uint64_t k = 0; k < count;
         ++k, offset += static_cast<Address>(stride)) {
      for (const StreamOp& op : ops) {
        trace_->ops.push_back({op.kind == StreamOp::Kind::kStore
                                   ? TraceOp::Kind::kStore
                                   : TraceOp::Kind::kLoad,
                               op.base + offset, 0});
      }
      if (uops != 0) record_compute(uops);
    }
  }

  Inner* inner_;
  Trace* trace_;
};

/// Replays a captured trace as a workload. Addresses recorded relative to
/// the recording run's allocations are reproduced by replaying the same
/// alloc sequence (the context's bump allocator is deterministic).
class TraceReplayWorkload final : public sim::Workload {
 public:
  explicit TraceReplayWorkload(Trace trace, std::string name = "trace-replay")
      : trace_(std::move(trace)), name_(std::move(name)) {}

  std::string name() const override { return name_; }
  void run(sim::ExecutionContext& ctx) override;

  const Trace& trace() const { return trace_; }

 private:
  Trace trace_;
  std::string name_;
};

}  // namespace pcap::apps
