// The Hennessy & Patterson memory-stride microbenchmark (the paper's [6]):
// for each array size and stride, repeatedly read-modify-write elements at
// that stride and report the average access time. The resulting surface
// exposes the sizes, latencies, line size and associativity of every level
// of the hierarchy (paper Fig. 3), and how they degrade under a power cap
// (paper Fig. 4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/workload.hpp"
#include "util/units.hpp"

namespace pcap::apps::stride {

struct StrideConfig {
  std::uint64_t min_array_bytes = 4 * 1024;
  std::uint64_t max_array_bytes = 64ull * 1024 * 1024;
  std::uint64_t min_stride_bytes = 8;
  /// Read-modify-write touches per (array, stride) cell.
  std::uint64_t touches_per_cell = 30000;

  static StrideConfig paper() { return StrideConfig{}; }
  static StrideConfig quick() {
    StrideConfig c;
    c.max_array_bytes = 1024 * 1024;
    c.touches_per_cell = 4000;
    return c;
  }
};

struct StrideCell {
  std::uint64_t array_bytes = 0;
  std::uint64_t stride_bytes = 0;
  double ns_per_access = 0.0;
};

struct StrideResults {
  std::vector<StrideCell> cells;

  /// Distinct array sizes / strides present, ascending.
  std::vector<std::uint64_t> array_sizes() const;
  std::vector<std::uint64_t> strides() const;
  /// ns for an exact (array, stride) pair; -1 if absent.
  double ns(std::uint64_t array_bytes, std::uint64_t stride_bytes) const;
};

/// What the stride surface reveals about the machine (paper §IV-B infers
/// exactly these from Figure 3). Capacities are reported as the largest
/// array that still fits the level ("between X and 2X" in the paper's
/// wording); latencies are plateau averages at line stride.
struct HierarchyInference {
  std::uint64_t l1_fits_bytes = 0;
  std::uint64_t l2_fits_bytes = 0;
  std::uint64_t l3_fits_bytes = 0;
  double l1_ns = 0.0;
  double l2_ns = 0.0;
  double l3_ns = 0.0;
  double mem_ns = 0.0;
  std::uint32_t line_bytes = 0;  // stride at which latency stops growing
};

/// Infers hierarchy structure from a stride surface (uses the 64 B-stride
/// column for capacities and large-stride plateaus for latencies).
HierarchyInference infer_hierarchy(const StrideResults& results);

class StrideWorkload final : public sim::Workload {
 public:
  explicit StrideWorkload(const StrideConfig& config = StrideConfig::paper());

  std::string name() const override { return "stride-microbench"; }
  void run(sim::ExecutionContext& ctx) override;

  const StrideResults& results() const { return results_; }

 private:
  StrideConfig config_;
  StrideResults results_;
};

}  // namespace pcap::apps::stride
