#include "apps/stride/stride.hpp"

#include <algorithm>

#include "sim/execution_context.hpp"

namespace pcap::apps::stride {

std::vector<std::uint64_t> StrideResults::array_sizes() const {
  std::vector<std::uint64_t> sizes;
  for (const auto& c : cells) sizes.push_back(c.array_bytes);
  std::sort(sizes.begin(), sizes.end());
  sizes.erase(std::unique(sizes.begin(), sizes.end()), sizes.end());
  return sizes;
}

std::vector<std::uint64_t> StrideResults::strides() const {
  std::vector<std::uint64_t> strides;
  for (const auto& c : cells) strides.push_back(c.stride_bytes);
  std::sort(strides.begin(), strides.end());
  strides.erase(std::unique(strides.begin(), strides.end()), strides.end());
  return strides;
}

double StrideResults::ns(std::uint64_t array_bytes,
                         std::uint64_t stride_bytes) const {
  for (const auto& c : cells) {
    if (c.array_bytes == array_bytes && c.stride_bytes == stride_bytes) {
      return c.ns_per_access;
    }
  }
  return -1.0;
}

HierarchyInference infer_hierarchy(const StrideResults& results) {
  HierarchyInference inf;
  const auto sizes = results.array_sizes();
  if (sizes.empty()) return inf;

  // Capacities and level latencies from the 64 B-stride column: each level
  // boundary appears as a >=1.45x latency jump between consecutive sizes,
  // and the last size of each plateau gives that level's clean latency.
  constexpr std::uint64_t kLineStride = 64;
  std::vector<std::pair<std::uint64_t, double>> column;
  for (auto size : sizes) {
    const double ns = results.ns(size, kLineStride);
    if (ns >= 0.0) column.emplace_back(size, ns);
  }
  if (column.empty()) return inf;

  std::vector<std::size_t> jumps;  // index of the first size past a level
  for (std::size_t i = 1; i < column.size(); ++i) {
    if (column[i].second > column[i - 1].second * 1.45) jumps.push_back(i);
  }
  inf.l1_ns = column.front().second;
  if (jumps.size() > 0) {
    inf.l1_fits_bytes = column[jumps[0] - 1].first;
    const std::size_t plateau_end = jumps.size() > 1 ? jumps[1] - 1 : column.size() - 1;
    inf.l2_ns = column[plateau_end].second;
  }
  if (jumps.size() > 1) {
    inf.l2_fits_bytes = column[jumps[1] - 1].first;
    const std::size_t plateau_end = jumps.size() > 2 ? jumps[2] - 1 : column.size() - 1;
    inf.l3_ns = column[plateau_end].second;
  }
  if (jumps.size() > 2) {
    inf.l3_fits_bytes = column[jumps[2] - 1].first;
    inf.mem_ns = column.back().second;
  }

  // Line size from a stride profile: latency grows with stride until one
  // access per line, then levels off. Use the largest array that carries
  // fine-grained stride data.
  std::uint64_t big = 0;
  for (auto size : sizes) {
    if (results.ns(size, 8) >= 0.0) big = size;
  }
  for (std::uint64_t stride = 8; stride * 2 <= 1024; stride *= 2) {
    const double now = results.ns(big, stride);
    const double next = results.ns(big, stride * 2);
    if (now > 0.0 && next > 0.0 && next / now < 1.2) {
      inf.line_bytes = static_cast<std::uint32_t>(stride);
      break;
    }
  }
  return inf;
}

StrideWorkload::StrideWorkload(const StrideConfig& config) : config_(config) {}

void StrideWorkload::run(sim::ExecutionContext& ctx) {
  results_.cells.clear();
  // The probe loop is a few instructions: a single code page. Prime the
  // instruction cache so small cells measure data access time only.
  ctx.set_code_footprint(/*region=*/7, /*pages=*/1);
  ctx.compute(2048);
  const sim::Address base = ctx.alloc(config_.max_array_bytes);

  for (std::uint64_t array = config_.min_array_bytes;
       array <= config_.max_array_bytes; array *= 2) {
    for (std::uint64_t stride = config_.min_stride_bytes; stride <= array / 2;
         stride *= 2) {
      // The paper's loop: for (i = 0; i < size; i += stride) x[i]++,
      // repeated. Whole passes over the array (never a cached prefix);
      // enough repeats to reach the per-cell touch budget.
      const std::uint64_t walk = array / stride;
      const std::uint64_t reps =
          std::max<std::uint64_t>(1, config_.touches_per_cell / walk);
      // Untimed warmup pass so the timed passes measure the steady state
      // (the published curves are steady-state plateaus). Each element is
      // x[i]++ — one load and one store of the element plus the increment —
      // batched through the stream API.
      ctx.rmw_stream(base, static_cast<std::int64_t>(stride), walk,
                     /*uops=*/2);
      const util::Picoseconds start = ctx.now();
      for (std::uint64_t r = 0; r < reps; ++r) {
        ctx.rmw_stream(base, static_cast<std::int64_t>(stride), walk,
                       /*uops=*/2);
      }
      const util::Picoseconds elapsed = ctx.now() - start;
      StrideCell cell;
      cell.array_bytes = array;
      cell.stride_bytes = stride;
      // Per element touched, as the paper's figures report (the store
      // retires through the store buffer, off the critical path).
      cell.ns_per_access =
          util::to_nanoseconds(elapsed) / static_cast<double>(walk * reps);
      results_.cells.push_back(cell);
    }
  }
}

}  // namespace pcap::apps::stride
