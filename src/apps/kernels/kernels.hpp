// HPC kernel suite: blocked GEMM, 5-point Jacobi stencil, iterative
// radix-2 FFT — three canonical kernels with distinct memory profiles
// (compute-bound / bandwidth-bound / stride-pattern-bound), used as
// additional candidates for the amenability-screening methodology and the
// governor/capping comparisons. All are real algorithms (results verified
// by tests), templated on the machine-narration policy.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdint>
#include <string>
#include <vector>

#include "apps/machine.hpp"
#include "sim/workload.hpp"

namespace pcap::apps::kernels {

inline constexpr std::uint32_t kGemmCodeRegion = 10;
inline constexpr std::uint32_t kStencilCodeRegion = 11;
inline constexpr std::uint32_t kFftCodeRegion = 12;

// --- GEMM -----------------------------------------------------------------

/// C += A * B for n x n row-major floats, blocked for the L1. Narrated at
/// 4-element vector granularity. Compute-bound: ~2n^3 flops over 3n^2 data.
template <typename Machine>
void gemm_blocked(Machine& m, int n, const float* a, const float* b, float* c,
                  Address a_addr, Address b_addr, Address c_addr,
                  int block = 32) {
  m.set_code_footprint(kGemmCodeRegion, 5);
  for (int ii = 0; ii < n; ii += block) {
    for (int kk = 0; kk < n; kk += block) {
      for (int jj = 0; jj < n; jj += block) {
        const int i_end = std::min(ii + block, n);
        const int k_end = std::min(kk + block, n);
        const int j_end = std::min(jj + block, n);
        for (int i = ii; i < i_end; ++i) {
          for (int k = kk; k < k_end; ++k) {
            const float aik = a[static_cast<std::size_t>(i) * n + k];
            m.load(a_addr + (static_cast<std::size_t>(i) * n + k) * 4);
            for (int j = jj; j < j_end; j += 4) {
              const int lanes = std::min(4, j_end - j);
              for (int l = 0; l < lanes; ++l) {
                c[static_cast<std::size_t>(i) * n + j + l] +=
                    aik * b[static_cast<std::size_t>(k) * n + j + l];
              }
            }
            // Narration: per 4-wide vector step, {load B row slice, store C
            // row slice, 4 FMAs + address math} — a 16 B-stride stream.
            const StreamOp ops[2] = {
                {.kind = StreamOp::Kind::kLoad,
                 .base = b_addr + (static_cast<std::size_t>(k) * n + jj) * 4},
                {.kind = StreamOp::Kind::kStore,
                 .base = c_addr + (static_cast<std::size_t>(i) * n + jj) * 4},
            };
            m.pattern_stream(ops, /*stride=*/16,
                             static_cast<std::uint64_t>(j_end - jj + 3) / 4,
                             /*uops=*/8);
          }
        }
      }
    }
  }
}

class GemmWorkload final : public sim::Workload {
 public:
  explicit GemmWorkload(int n = 256, std::uint64_t seed = 21);
  std::string name() const override { return "gemm"; }
  void run(sim::ExecutionContext& ctx) override;

  int n() const { return n_; }
  const std::vector<float>& result() const { return c_; }

 private:
  int n_;
  std::vector<float> a_, b_, c_;
};

// --- Jacobi stencil ---------------------------------------------------------

/// `iters` Jacobi sweeps of the 5-point Laplace stencil over a width x
/// height grid with fixed boundary; returns the final grid. Bandwidth-bound:
/// streams two grids per sweep.
template <typename Machine>
std::vector<float> jacobi_stencil(Machine& m, int width, int height, int iters,
                                  std::vector<float> grid, Address a_addr,
                                  Address b_addr) {
  m.set_code_footprint(kStencilCodeRegion, 4);
  std::vector<float> next(grid.size());
  Address src_addr = a_addr;
  Address dst_addr = b_addr;
  const std::size_t cells =
      static_cast<std::size_t>(width) * static_cast<std::size_t>(height);
  for (int it = 0; it < iters; ++it) {
    for (int y = 0; y < height; ++y) {
      for (int x = 0; x < width; ++x) {
        const std::size_t i = static_cast<std::size_t>(y) * width + x;
        if (x == 0 || y == 0 || x == width - 1 || y == height - 1) {
          next[i] = grid[i];  // fixed boundary
        } else {
          next[i] = 0.25f * (grid[i - 1] + grid[i + 1] +
                             grid[i - static_cast<std::size_t>(width)] +
                             grid[i + static_cast<std::size_t>(width)]);
        }
      }
    }
    // Narration per sweep: one {load row, load row below, store dst, 6
    // uops} vector op per 4 cells, streaming both grids at 16 B stride.
    const StreamOp ops[3] = {
        {.kind = StreamOp::Kind::kLoad, .base = src_addr},
        {.kind = StreamOp::Kind::kLoad,
         .base = src_addr + static_cast<Address>(width) * 4},
        {.kind = StreamOp::Kind::kStore, .base = dst_addr},
    };
    m.pattern_stream(ops, /*stride=*/16, (cells + 3) / 4, /*uops=*/6);
    grid.swap(next);
    std::swap(src_addr, dst_addr);
  }
  return grid;
}

class StencilWorkload final : public sim::Workload {
 public:
  StencilWorkload(int width = 1024, int height = 1024, int iters = 5);
  std::string name() const override { return "jacobi-stencil"; }
  void run(sim::ExecutionContext& ctx) override;

  const std::vector<float>& result() const { return result_; }

 private:
  int width_, height_, iters_;
  std::vector<float> initial_;
  std::vector<float> result_;
};

// --- FFT --------------------------------------------------------------------

/// In-place iterative radix-2 Cooley-Tukey FFT (size must be a power of
/// two). The log2(n) passes touch the array at strides 1, 2, 4, ... n/2 —
/// the classic cache/TLB-antagonistic pattern.
template <typename Machine>
void fft_radix2(Machine& m, std::vector<std::complex<float>>& data,
                Address addr, bool inverse = false) {
  m.set_code_footprint(kFftCodeRegion, 6);
  const std::size_t n = data.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      std::swap(data[i], data[j]);
      if (i % 4 == 0) {
        m.load(addr + i * sizeof(std::complex<float>));
        m.store(addr + j * sizeof(std::complex<float>));
        m.compute(4);
      }
    }
  }
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = sign * 2.0 * 3.14159265358979323846 /
                         static_cast<double>(len);
    const std::complex<float> wl(static_cast<float>(std::cos(angle)),
                                 static_cast<float>(std::sin(angle)));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<float> w(1.0f, 0.0f);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::size_t u_i = i + k;
        const std::size_t v_i = i + k + len / 2;
        const std::complex<float> u = data[u_i];
        const std::complex<float> v = data[v_i] * w;
        data[u_i] = u + v;
        data[v_i] = u - v;
        w *= wl;
      }
      // Narration: one {load u, load v, store v, 14 uops} butterfly vector
      // op per 4 k's — two interleaved 32 B-stride streams len/2 apart.
      const StreamOp ops[3] = {
          {.kind = StreamOp::Kind::kLoad,
           .base = addr + i * sizeof(std::complex<float>)},
          {.kind = StreamOp::Kind::kLoad,
           .base = addr + (i + len / 2) * sizeof(std::complex<float>)},
          {.kind = StreamOp::Kind::kStore,
           .base = addr + (i + len / 2) * sizeof(std::complex<float>)},
      };
      m.pattern_stream(ops, /*stride=*/4 * sizeof(std::complex<float>),
                       (len / 2 + 3) / 4, /*uops=*/14);
    }
  }
  if (inverse) {
    const float inv = 1.0f / static_cast<float>(n);
    for (auto& x : data) x *= inv;
  }
}

class FftWorkload final : public sim::Workload {
 public:
  explicit FftWorkload(std::size_t log2_size = 18, std::uint64_t seed = 23);
  std::string name() const override { return "fft-radix2"; }
  void run(sim::ExecutionContext& ctx) override;

  const std::vector<std::complex<float>>& result() const { return result_; }

 private:
  std::size_t size_;
  std::vector<std::complex<float>> input_;
  std::vector<std::complex<float>> result_;
};

}  // namespace pcap::apps::kernels
