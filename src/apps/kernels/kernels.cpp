#include "apps/kernels/kernels.hpp"

#include "sim/execution_context.hpp"
#include "util/rng.hpp"

namespace pcap::apps::kernels {

GemmWorkload::GemmWorkload(int n, std::uint64_t seed) : n_(n) {
  util::Rng rng(seed);
  const auto count = static_cast<std::size_t>(n) * static_cast<std::size_t>(n);
  a_.resize(count);
  b_.resize(count);
  for (auto& v : a_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (auto& v : b_) v = static_cast<float>(rng.uniform(-1.0, 1.0));
}

void GemmWorkload::run(sim::ExecutionContext& ctx) {
  SimMachine m(ctx);
  const auto count = a_.size();
  c_.assign(count, 0.0f);
  const Address a_addr = m.alloc(count * 4);
  const Address b_addr = m.alloc(count * 4);
  const Address c_addr = m.alloc(count * 4);
  gemm_blocked(m, n_, a_.data(), b_.data(), c_.data(), a_addr, b_addr, c_addr);
}

StencilWorkload::StencilWorkload(int width, int height, int iters)
    : width_(width), height_(height), iters_(iters) {
  initial_.assign(static_cast<std::size_t>(width) * height, 0.0f);
  // Hot top edge, cold elsewhere: heat diffuses downward.
  for (int x = 0; x < width; ++x) initial_[static_cast<std::size_t>(x)] = 100.0f;
}

void StencilWorkload::run(sim::ExecutionContext& ctx) {
  SimMachine m(ctx);
  const std::size_t bytes = initial_.size() * 4;
  const Address a_addr = m.alloc(bytes);
  const Address b_addr = m.alloc(bytes);
  result_ = jacobi_stencil(m, width_, height_, iters_, initial_, a_addr, b_addr);
}

FftWorkload::FftWorkload(std::size_t log2_size, std::uint64_t seed)
    : size_(1ull << log2_size) {
  util::Rng rng(seed);
  input_.resize(size_);
  for (auto& x : input_) {
    x = {static_cast<float>(rng.uniform(-1.0, 1.0)),
         static_cast<float>(rng.uniform(-1.0, 1.0))};
  }
}

void FftWorkload::run(sim::ExecutionContext& ctx) {
  SimMachine m(ctx);
  result_ = input_;
  const Address addr = m.alloc(result_.size() * sizeof(std::complex<float>));
  fft_radix2(m, result_, addr);
}

}  // namespace pcap::apps::kernels
