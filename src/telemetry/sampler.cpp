#include "telemetry/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <vector>

namespace pcap::telemetry {

Sampler::Sampler(const SamplerConfig& config)
    : config_(config), ring_(config.capacity) {
  if (config_.period == 0) config_.period = 1;
  next_sample_ = config_.period;
}

void Sampler::record(const NodeSample& sample) {
  ring_.push(sample);
  // Skip boundaries the clock has already passed (long stalls between
  // ticks): one sample per record(), never a burst of stale duplicates.
  while (next_sample_ <= sample.time) next_sample_ += config_.period;
}

Aggregate Sampler::aggregate(const Selector& select,
                             std::size_t window) const {
  Aggregate agg;
  const std::size_t n = ring_.size();
  if (n == 0) return agg;
  const std::size_t count = (window == 0 || window > n) ? n : window;
  std::vector<double> values;
  values.reserve(count);
  double sum = 0.0;
  for (std::size_t i = n - count; i < n; ++i) {
    const double v = select(ring_.at(i));
    values.push_back(v);
    sum += v;
  }
  std::sort(values.begin(), values.end());
  agg.count = count;
  agg.min = values.front();
  agg.max = values.back();
  agg.mean = sum / static_cast<double>(count);
  // Linear-interpolated p95, matching util::percentile's convention.
  const double rank = 0.95 * static_cast<double>(count - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, count - 1);
  const double frac = rank - static_cast<double>(lo);
  agg.p95 = values[lo] + (values[hi] - values[lo]) * frac;
  return agg;
}

void Sampler::write_csv(std::ostream& os) const {
  os << "time_s,watts,freq_mhz,pstate,duty,cap_w,ipc,l1_miss_rate,"
        "l2_miss_rate,l3_miss_rate,temp_c,throttle_level,health\n";
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const NodeSample& s = ring_.at(i);
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "%.9f,%.3f,%.1f,%u,%.4f,%.1f,%.4f,%.6f,%.6f,%.6f,%.2f,%u,"
                  "%d\n",
                  util::to_seconds(s.time), s.watts, s.frequency_mhz, s.pstate,
                  s.duty, s.cap_w, s.ipc, s.l1_miss_rate, s.l2_miss_rate,
                  s.l3_miss_rate, s.temperature_c, s.throttle_level, s.health);
    os << buf;
  }
}

void Sampler::write_csv_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("Sampler: cannot open " + path);
  write_csv(out);
}

void Sampler::write_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const NodeSample& s = ring_.at(i);
    char buf[448];
    std::snprintf(
        buf, sizeof buf,
        "{\"time_s\":%.9f,\"watts\":%.3f,\"freq_mhz\":%.1f,\"pstate\":%u,"
        "\"duty\":%.4f,\"cap_w\":%.1f,\"ipc\":%.4f,\"l1_miss_rate\":%.6f,"
        "\"l2_miss_rate\":%.6f,\"l3_miss_rate\":%.6f,\"temp_c\":%.2f,"
        "\"throttle_level\":%u,\"health\":%d}\n",
        util::to_seconds(s.time), s.watts, s.frequency_mhz, s.pstate, s.duty,
        s.cap_w, s.ipc, s.l1_miss_rate, s.l2_miss_rate, s.l3_miss_rate,
        s.temperature_c, s.throttle_level, s.health);
    os << buf;
  }
}

void Sampler::reset(util::Picoseconds now) {
  ring_.clear();
  next_sample_ = now + config_.period;
}

}  // namespace pcap::telemetry
