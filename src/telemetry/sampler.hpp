// Tick-driven time-series sampling of a node's operating point.
//
// The node's housekeeping tick offers the probe a chance to sample; the
// sampler records into a fixed-capacity ring whenever its period elapses.
// Each sample is the full operating point the paper's analysis wants to see
// time-resolved: wall power, core frequency / P-state / duty, the cap
// setpoint in force, IPC and cache/TLB miss rates over the sampling window,
// thermal state, throttle-ladder depth and DCM-visible health.
//
// Windowed aggregates (min/mean/max/p95 over the most recent N samples) are
// computed on demand — the push path stores and moves on.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

#include "telemetry/ring_buffer.hpp"
#include "util/units.hpp"

namespace pcap::telemetry {

/// One time-resolved observation of a node.
struct NodeSample {
  util::Picoseconds time = 0;
  double watts = 0.0;
  double frequency_mhz = 0.0;
  std::uint32_t pstate = 0;
  double duty = 1.0;
  /// Cap setpoint in force (<= 0: uncapped).
  double cap_w = 0.0;
  /// Committed instructions per cycle over the sampling window.
  double ipc = 0.0;
  /// Misses per access over the sampling window, per level.
  double l1_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;
  double temperature_c = 0.0;
  /// BMC throttle-ladder rung in force (0 = unthrottled).
  std::uint32_t throttle_level = 0;
  /// DCM health FSM state (core::NodeHealth cast to int; 0 = healthy).
  std::int32_t health = 0;
};

/// min/mean/max/p95 over a window of samples.
struct Aggregate {
  std::size_t count = 0;
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p95 = 0.0;
};

struct SamplerConfig {
  /// Simulated time between retained samples.
  util::Picoseconds period = util::microseconds(200);
  /// Ring capacity; memory stays bounded for arbitrarily long runs.
  std::size_t capacity = 4096;
};

class Sampler {
 public:
  explicit Sampler(const SamplerConfig& config = {});

  const SamplerConfig& config() const { return config_; }

  /// True when `now` has crossed the next sample boundary (cheap check the
  /// probe makes every tick).
  bool due(util::Picoseconds now) const { return now >= next_sample_; }

  /// Records `sample` and advances the boundary. The caller checks due().
  void record(const NodeSample& sample);

  const RingBuffer<NodeSample>& series() const { return ring_; }
  std::size_t size() const { return ring_.size(); }
  /// Total samples taken, including ones the ring has since evicted.
  std::size_t taken() const { return ring_.pushed(); }

  using Selector = std::function<double(const NodeSample&)>;

  /// Aggregate of `select(sample)` over the most recent `window` retained
  /// samples (0 = all retained).
  Aggregate aggregate(const Selector& select, std::size_t window = 0) const;

  /// CSV with one row per retained sample (header included).
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;
  /// JSON-lines: one object per retained sample.
  void write_jsonl(std::ostream& os) const;

  void reset(util::Picoseconds now = 0);

 private:
  SamplerConfig config_;
  RingBuffer<NodeSample> ring_;
  util::Picoseconds next_sample_ = 0;
};

}  // namespace pcap::telemetry
