#include "telemetry/probe.hpp"

namespace pcap::telemetry {

namespace {

double rate(std::uint64_t miss_now, std::uint64_t miss_then,
            std::uint64_t acc_now, std::uint64_t acc_then) {
  const std::uint64_t d_acc = acc_now - acc_then;
  if (d_acc == 0) return 0.0;
  return static_cast<double>(miss_now - miss_then) /
         static_cast<double>(d_acc);
}

}  // namespace

NodeProbe::NodeProbe(const TelemetryConfig& config, Registry* registry,
                     TraceWriter* trace, const std::string& name)
    : config_(config),
      registry_(registry),
      trace_(trace),
      name_(name),
      sampler_({config.sample_period, config.ring_capacity}) {
  if (registry_ != nullptr) {
    samples_taken_ = registry_->counter(name_ + ".samples");
    last_watts_ = registry_->gauge(name_ + ".watts");
  }
  if (trace_ != nullptr) track_ = trace_->track(name_);
}

void NodeProbe::take_sample(const ProbeInput& in) {
  NodeSample s;
  s.time = in.now;
  s.watts = in.watts;
  s.frequency_mhz = in.frequency_mhz;
  s.pstate = in.pstate;
  s.duty = in.duty;
  s.cap_w = cap_w_;
  s.temperature_c = in.temperature_c;
  s.throttle_level = throttle_level_;
  s.health = health_;
  if (has_last_) {
    const std::uint64_t d_cyc = in.tot_cyc - last_.tot_cyc;
    if (d_cyc != 0) {
      s.ipc = static_cast<double>(in.tot_ins - last_.tot_ins) /
              static_cast<double>(d_cyc);
    }
    s.l1_miss_rate = rate(in.l1_miss, last_.l1_miss, in.l1_acc, last_.l1_acc);
    s.l2_miss_rate = rate(in.l2_miss, last_.l2_miss, in.l2_acc, last_.l2_acc);
    s.l3_miss_rate = rate(in.l3_miss, last_.l3_miss, in.l3_acc, last_.l3_acc);
  }
  last_ = in;
  has_last_ = true;
  sampler_.record(s);

  if (registry_ != nullptr) {
    registry_->add(samples_taken_);
    registry_->set(last_watts_, in.watts);
  }
  if (trace_ != nullptr && config_.trace_counters) {
    const double ts = TraceWriter::sim_us(in.now);
    trace_->counter(track_, name_ + ".watts", ts, in.watts);
    trace_->counter(track_, name_ + ".freq_mhz", ts, in.frequency_mhz);
  }
}

void NodeProbe::reset(util::Picoseconds now) {
  sampler_.reset(now);
  has_last_ = false;
  cap_w_ = 0.0;
  throttle_level_ = 0;
  health_ = 0;
}

}  // namespace pcap::telemetry
