// Named counters and gauges with cheap integer handles.
//
// Hot-path discipline: names are resolved to handles once, at registration
// time; every subsequent add()/set() is an array index guarded by a single
// branch on `enabled_` — no map lookups, no allocation, no formatting. With
// PCAP_TELEMETRY compiled out (cmake -DPCAP_TELEMETRY=OFF) the mutating
// calls fold to nothing via `kCompiledIn`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pcap::telemetry {

#ifdef PCAP_NO_TELEMETRY
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

struct CounterHandle {
  std::uint32_t index = 0;
};
struct GaugeHandle {
  std::uint32_t index = 0;
};

class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}

  /// Runtime switch: a disabled registry accepts add()/set() as no-ops.
  void set_enabled(bool enabled) { enabled_ = enabled && kCompiledIn; }
  bool enabled() const { return enabled_; }

  /// Registers (or re-finds) a monotonically increasing counter. Name
  /// resolution is linear — registration happens at setup, not on the hot
  /// path.
  CounterHandle counter(const std::string& name);
  /// Registers (or re-finds) a last-value-wins gauge.
  GaugeHandle gauge(const std::string& name);

  void add(CounterHandle h, std::uint64_t n = 1) {
    if constexpr (!kCompiledIn) return;
    if (!enabled_) return;
    counters_[h.index] += n;
  }
  void set(GaugeHandle h, double value) {
    if constexpr (!kCompiledIn) return;
    if (!enabled_) return;
    gauges_[h.index] = value;
  }

  std::uint64_t value(CounterHandle h) const { return counters_[h.index]; }
  double value(GaugeHandle h) const { return gauges_[h.index]; }

  std::size_t counter_count() const { return counters_.size(); }
  std::size_t gauge_count() const { return gauges_.size(); }
  const std::string& counter_name(std::uint32_t i) const {
    return counter_names_[i];
  }
  const std::string& gauge_name(std::uint32_t i) const {
    return gauge_names_[i];
  }

  /// Zeroes every counter and gauge (names and handles stay valid).
  void reset();

  /// "name value" lines, counters then gauges, for logs and tests.
  std::string dump() const;

 private:
  bool enabled_;
  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counters_;
  std::vector<std::string> gauge_names_;
  std::vector<double> gauges_;
};

}  // namespace pcap::telemetry
