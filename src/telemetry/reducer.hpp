// Hierarchical aggregation of per-node time series into group series, the
// shape flux-power-monitor uses for cluster power: leaves sample, interior
// nodes combine (min/mean/max/sum), the root holds the rack-level series.
//
// Per-node samplers run on independent tick clocks, so series are first
// aligned onto a shared time grid (bin = the reducer period, value = last
// sample at-or-before the bin edge), then merged pairwise up a binary tree.
// The merge is associative, so any tree shape gives identical results; the
// tree matters for scale (a 10k-node fan-in becomes log-depth) and is
// exercised explicitly by the tests.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "telemetry/sampler.hpp"
#include "util/units.hpp"

namespace pcap::telemetry {

/// One bin of a group-level series.
struct GroupSample {
  util::Picoseconds time = 0;
  std::size_t nodes = 0;  // nodes contributing to this bin
  double min_w = 0.0;
  double mean_w = 0.0;
  double max_w = 0.0;
  double sum_w = 0.0;
};

struct GroupSeries {
  std::string name;
  std::vector<GroupSample> bins;
};

class Reducer {
 public:
  /// `period`: width of the shared time grid the node series are aligned to.
  explicit Reducer(util::Picoseconds period) : period_(period ? period : 1) {}

  util::Picoseconds period() const { return period_; }

  /// Aligns one node's retained series onto the grid. Bins before the
  /// node's first sample are absent (nodes == 0 contribution).
  GroupSeries align(const Sampler& sampler, const std::string& name) const;

  /// Pairwise merge of two aligned/reduced series: per-bin min of mins,
  /// max of maxes, sum of sums, node-weighted mean.
  static GroupSeries merge(const GroupSeries& a, const GroupSeries& b);

  /// Full hierarchical reduction: aligns every sampler and merges up a
  /// binary tree. Equivalent to folding merge() left-to-right.
  GroupSeries reduce(std::span<const Sampler* const> samplers,
                     const std::string& name) const;

  /// CSV: time_s,nodes,min_w,mean_w,max_w,sum_w.
  static void write_csv(const GroupSeries& series, std::ostream& os);
  static void write_csv_file(const GroupSeries& series,
                             const std::string& path);

 private:
  util::Picoseconds period_;
};

}  // namespace pcap::telemetry
