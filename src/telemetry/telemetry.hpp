// Umbrella header for the telemetry subsystem (DESIGN.md §10):
//
//   Registry     named counters/gauges behind integer handles
//   Sampler      tick-driven ring-buffered time series + window aggregates
//   NodeProbe    per-node glue the simulator layers feed
//   TraceWriter  Chrome trace-event JSON of management-plane activity
//   Reducer      hierarchical per-node -> group series aggregation
//
// Everything is runtime-disableable (a branch on a bool on the hot path)
// and compiles out entirely under cmake -DPCAP_TELEMETRY=OFF.
#pragma once

#include "telemetry/probe.hpp"
#include "telemetry/reducer.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/ring_buffer.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"
