#include "telemetry/trace_writer.hpp"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pcap::telemetry {

namespace {

void write_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << '0';
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  os << buf;
}

void write_args(std::ostream& os, const std::vector<TraceArg>& args) {
  os << "{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i) os << ',';
    write_escaped(os, args[i].key);
    os << ':';
    if (args[i].is_number) {
      write_number(os, args[i].number);
    } else {
      write_escaped(os, args[i].text);
    }
  }
  os << "}";
}

}  // namespace

std::uint32_t TraceWriter::track(const std::string& name) {
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (track_names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  track_names_.push_back(name);
  return static_cast<std::uint32_t>(track_names_.size() - 1);
}

void TraceWriter::span(std::uint32_t track, const std::string& category,
                       const std::string& name, double ts_us, double dur_us,
                       std::vector<TraceArg> args) {
  if (!enabled_) return;
  events_.push_back(
      {name, category, 'X', ts_us, dur_us, track, std::move(args)});
}

void TraceWriter::instant(std::uint32_t track, const std::string& category,
                          const std::string& name, double ts_us,
                          std::vector<TraceArg> args) {
  if (!enabled_) return;
  events_.push_back({name, category, 'i', ts_us, 0.0, track, std::move(args)});
}

void TraceWriter::counter(std::uint32_t track, const std::string& name,
                          double ts_us, double value) {
  if (!enabled_) return;
  events_.push_back({name, "counter", 'C', ts_us, 0.0, track,
                     {TraceArg::num("value", value)}});
}

void TraceWriter::write_json(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  // Thread-name metadata first, so viewers label every track.
  for (std::size_t i = 0; i < track_names_.size(); ++i) {
    if (!first) os << ',';
    first = false;
    os << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":" << i
       << ",\"args\":{\"name\":";
    write_escaped(os, track_names_[i]);
    os << "}}";
  }
  for (const TraceEvent& e : events_) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    write_escaped(os, e.name);
    os << ",\"cat\":";
    write_escaped(os, e.category.empty() ? std::string("pcap") : e.category);
    os << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.track
       << ",\"ts\":";
    write_number(os, e.ts_us);
    if (e.phase == 'X') {
      os << ",\"dur\":";
      write_number(os, e.dur_us);
    }
    if (e.phase == 'i') {
      os << ",\"s\":\"t\"";  // instant scoped to its thread row
    }
    if (!e.args.empty()) {
      os << ",\"args\":";
      write_args(os, e.args);
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

std::string TraceWriter::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void TraceWriter::write_file(const std::string& path) const {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("TraceWriter: cannot open " + path);
  write_json(out);
  out << '\n';
}

}  // namespace pcap::telemetry
