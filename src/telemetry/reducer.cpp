#include "telemetry/reducer.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace pcap::telemetry {

GroupSeries Reducer::align(const Sampler& sampler,
                           const std::string& name) const {
  GroupSeries out;
  out.name = name;
  const auto& ring = sampler.series();
  if (ring.empty()) return out;

  const util::Picoseconds first = ring.front().time;
  const util::Picoseconds last = ring.back().time;
  // Grid edges at integer multiples of the period, covering [first, last].
  util::Picoseconds edge = (first / period_) * period_;
  if (edge < first) edge += period_;
  std::size_t i = 0;
  for (; edge <= last; edge += period_) {
    // Last sample at-or-before the bin edge (zero-order hold).
    while (i + 1 < ring.size() && ring.at(i + 1).time <= edge) ++i;
    if (ring.at(i).time > edge) continue;  // node not yet sampling
    const double w = ring.at(i).watts;
    out.bins.push_back({edge, 1, w, w, w, w});
  }
  return out;
}

GroupSeries Reducer::merge(const GroupSeries& a, const GroupSeries& b) {
  GroupSeries out;
  out.name = a.name.empty() ? b.name : a.name;
  std::size_t ia = 0, ib = 0;
  out.bins.reserve(std::max(a.bins.size(), b.bins.size()));
  while (ia < a.bins.size() || ib < b.bins.size()) {
    const bool take_a =
        ib >= b.bins.size() ||
        (ia < a.bins.size() && a.bins[ia].time < b.bins[ib].time);
    const bool take_b =
        ia >= a.bins.size() ||
        (ib < b.bins.size() && b.bins[ib].time < a.bins[ia].time);
    if (take_a) {
      out.bins.push_back(a.bins[ia++]);
    } else if (take_b) {
      out.bins.push_back(b.bins[ib++]);
    } else {  // same bin edge: combine
      const GroupSample& x = a.bins[ia++];
      const GroupSample& y = b.bins[ib++];
      GroupSample m;
      m.time = x.time;
      m.nodes = x.nodes + y.nodes;
      m.min_w = std::min(x.min_w, y.min_w);
      m.max_w = std::max(x.max_w, y.max_w);
      m.sum_w = x.sum_w + y.sum_w;
      m.mean_w = m.sum_w / static_cast<double>(m.nodes);
      out.bins.push_back(m);
    }
  }
  return out;
}

GroupSeries Reducer::reduce(std::span<const Sampler* const> samplers,
                            const std::string& name) const {
  std::vector<GroupSeries> level;
  level.reserve(samplers.size());
  for (std::size_t i = 0; i < samplers.size(); ++i) {
    level.push_back(align(*samplers[i], name));
  }
  if (level.empty()) {
    GroupSeries empty;
    empty.name = name;
    return empty;
  }
  // Binary-tree fan-in: pair up, merge, repeat until one series remains.
  while (level.size() > 1) {
    std::vector<GroupSeries> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(merge(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
    level = std::move(next);
  }
  level.front().name = name;
  return level.front();
}

void Reducer::write_csv(const GroupSeries& series, std::ostream& os) {
  os << "time_s,nodes,min_w,mean_w,max_w,sum_w\n";
  for (const GroupSample& b : series.bins) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%.9f,%zu,%.3f,%.3f,%.3f,%.3f\n",
                  util::to_seconds(b.time), b.nodes, b.min_w, b.mean_w,
                  b.max_w, b.sum_w);
    os << buf;
  }
}

void Reducer::write_csv_file(const GroupSeries& series,
                             const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path());
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("Reducer: cannot open " + path);
  write_csv(series, out);
}

}  // namespace pcap::telemetry
