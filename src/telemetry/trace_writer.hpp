// Chrome trace-event JSON writer for management-plane activity.
//
// Spans (ph "X"), instants (ph "i") and counter series (ph "C") accumulate
// in memory and serialize as the JSON-object trace format, so a whole run —
// cap changes, IPMI retries, backoff sleeps, health transitions, governor
// decisions — opens directly in about:tracing or https://ui.perfetto.dev.
//
// Tracks: each instrumented component registers a named track (rendered as
// a thread row); the writer emits the matching thread_name metadata events.
// Timestamps are microseconds, the trace format's native unit. Simulated
// node time (integer picoseconds) and the management plane's modelled
// milliseconds both map onto the same timeline via the *_us helpers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace pcap::telemetry {

/// One "key":value argument attached to an event. Numeric when `is_number`,
/// else a JSON string.
struct TraceArg {
  std::string key;
  std::string text;
  double number = 0.0;
  bool is_number = false;

  static TraceArg num(std::string key, double value) {
    return {std::move(key), {}, value, true};
  }
  static TraceArg str(std::string key, std::string value) {
    return {std::move(key), std::move(value), 0.0, false};
  }
};

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'i';     // 'X' span, 'i' instant, 'C' counter
  double ts_us = 0.0;
  double dur_us = 0.0;  // spans only
  std::uint32_t track = 0;
  std::vector<TraceArg> args;
};

class TraceWriter {
 public:
  explicit TraceWriter(bool enabled = true) : enabled_(enabled) {}

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Registers a named track (a thread row in the viewer); returns its id.
  std::uint32_t track(const std::string& name);

  void span(std::uint32_t track, const std::string& category,
            const std::string& name, double ts_us, double dur_us,
            std::vector<TraceArg> args = {});
  void instant(std::uint32_t track, const std::string& category,
               const std::string& name, double ts_us,
               std::vector<TraceArg> args = {});
  /// Counter sample; renders as a stacked area series named `name`.
  void counter(std::uint32_t track, const std::string& name, double ts_us,
               double value);

  std::size_t event_count() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t track_count() const { return track_names_.size(); }

  /// Serializes {"traceEvents": [...], "displayTimeUnit": "ms"}.
  void write_json(std::ostream& os) const;
  std::string json() const;
  /// Writes to `path`, creating parent directories. Throws on failure.
  void write_file(const std::string& path) const;

  void clear() { events_.clear(); }

  // --- timestamp helpers ---
  static double sim_us(util::Picoseconds t) {
    return static_cast<double>(t) / 1e6;
  }
  static double ms_us(double ms) { return ms * 1000.0; }

 private:
  bool enabled_;
  std::vector<std::string> track_names_;
  std::vector<TraceEvent> events_;
};

}  // namespace pcap::telemetry
