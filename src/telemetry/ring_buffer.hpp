// Fixed-capacity ring buffer for telemetry series: bounded memory for
// arbitrarily long runs, O(1) push, oldest-first iteration. Once full, each
// push overwrites the oldest element (the tail of the time series is what
// observability cares about; the aggregate view keeps the totals).
#pragma once

#include <cstddef>
#include <vector>

namespace pcap::telemetry {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {
    data_.reserve(capacity_);
  }

  void push(const T& value) {
    if (data_.size() < capacity_) {
      data_.push_back(value);
    } else {
      data_[head_] = value;
      head_ = (head_ + 1) % capacity_;
    }
    ++pushed_;
  }

  std::size_t size() const { return data_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return data_.empty(); }
  /// Total elements ever pushed (>= size() once the buffer has wrapped).
  std::size_t pushed() const { return pushed_; }
  bool wrapped() const { return pushed_ > capacity_; }

  /// i-th element in time order: 0 is the oldest retained, size()-1 the
  /// most recent.
  const T& at(std::size_t i) const {
    return data_[(head_ + i) % data_.size()];
  }
  const T& back() const { return at(size() - 1); }
  const T& front() const { return at(0); }

  void clear() {
    data_.clear();
    head_ = 0;
    pushed_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<T> data_;
  std::size_t head_ = 0;  // index of the oldest element once full
  std::size_t pushed_ = 0;
};

}  // namespace pcap::telemetry
