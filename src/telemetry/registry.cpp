#include "telemetry/registry.hpp"

#include <algorithm>
#include <sstream>

namespace pcap::telemetry {

CounterHandle Registry::counter(const std::string& name) {
  const auto it =
      std::find(counter_names_.begin(), counter_names_.end(), name);
  if (it != counter_names_.end()) {
    return {static_cast<std::uint32_t>(it - counter_names_.begin())};
  }
  counter_names_.push_back(name);
  counters_.push_back(0);
  return {static_cast<std::uint32_t>(counters_.size() - 1)};
}

GaugeHandle Registry::gauge(const std::string& name) {
  const auto it = std::find(gauge_names_.begin(), gauge_names_.end(), name);
  if (it != gauge_names_.end()) {
    return {static_cast<std::uint32_t>(it - gauge_names_.begin())};
  }
  gauge_names_.push_back(name);
  gauges_.push_back(0.0);
  return {static_cast<std::uint32_t>(gauges_.size() - 1)};
}

void Registry::reset() {
  std::fill(counters_.begin(), counters_.end(), 0);
  std::fill(gauges_.begin(), gauges_.end(), 0.0);
}

std::string Registry::dump() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    os << counter_names_[i] << ' ' << counters_[i] << '\n';
  }
  for (std::size_t i = 0; i < gauges_.size(); ++i) {
    os << gauge_names_[i] << ' ' << gauges_[i] << '\n';
  }
  return os.str();
}

}  // namespace pcap::telemetry
