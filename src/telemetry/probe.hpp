// Per-node telemetry probe: the glue the simulator layers talk to.
//
// The Node offers its operating point every housekeeping tick (a raw
// ProbeInput of cumulative counters and instantaneous state); the probe
// derives windowed rates (IPC, per-level miss rates), stamps on the
// management-plane annotations it has been told about (cap setpoint,
// throttle rung, DCM health), and records into its Sampler when the period
// elapses. Optionally mirrors power/frequency into a TraceWriter as counter
// series so the waveform shows up alongside the management spans in
// Perfetto, and counts probe activity in a Registry.
//
// The probe only ever *reads* simulator state — attaching one must leave
// simulated results bit-identical (tests/test_telemetry.cpp enforces this).
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/trace_writer.hpp"
#include "util/units.hpp"

namespace pcap::telemetry {

struct TelemetryConfig {
  bool enabled = false;
  /// Sampling period in simulated time.
  util::Picoseconds sample_period = util::microseconds(200);
  std::size_t ring_capacity = 4096;
  /// Mirror watts/frequency into the trace as counter series.
  bool trace_counters = true;
};

/// Raw per-tick view a Node hands its probe. Counters are cumulative; the
/// probe differences them between samples.
struct ProbeInput {
  util::Picoseconds now = 0;
  double watts = 0.0;
  double frequency_mhz = 0.0;
  std::uint32_t pstate = 0;
  double duty = 1.0;
  double temperature_c = 0.0;
  std::uint64_t tot_ins = 0;
  std::uint64_t tot_cyc = 0;
  std::uint64_t l1_acc = 0;
  std::uint64_t l1_miss = 0;
  std::uint64_t l2_acc = 0;
  std::uint64_t l2_miss = 0;
  std::uint64_t l3_acc = 0;
  std::uint64_t l3_miss = 0;
};

class NodeProbe {
 public:
  explicit NodeProbe(const TelemetryConfig& config = {},
                     Registry* registry = nullptr,
                     TraceWriter* trace = nullptr,
                     const std::string& name = "node");

  const TelemetryConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

  /// True when a sample is due at `now` — the caller can skip assembling a
  /// ProbeInput entirely (the common case: two comparisons per tick).
  bool wants_sample(util::Picoseconds now) const {
    return config_.enabled && sampler_.due(now);
  }

  /// Called by the Node every housekeeping tick. Cheap when no sample is
  /// due: one comparison.
  void on_tick(const ProbeInput& in) {
    if (!config_.enabled || !sampler_.due(in.now)) return;
    take_sample(in);
  }

  // --- management-plane annotations (stamped into subsequent samples) ---
  void note_cap(double cap_w) { cap_w_ = cap_w; }
  void note_uncapped() { cap_w_ = 0.0; }
  void note_throttle_level(std::uint32_t level) { throttle_level_ = level; }
  void note_health(std::int32_t health) { health_ = health; }

  const Sampler& sampler() const { return sampler_; }
  Sampler& sampler() { return sampler_; }
  TraceWriter* trace() { return trace_; }

  void reset(util::Picoseconds now = 0);

 private:
  void take_sample(const ProbeInput& in);

  TelemetryConfig config_;
  Registry* registry_;
  TraceWriter* trace_;
  std::string name_;
  Sampler sampler_;

  double cap_w_ = 0.0;
  std::uint32_t throttle_level_ = 0;
  std::int32_t health_ = 0;

  ProbeInput last_{};
  bool has_last_ = false;

  CounterHandle samples_taken_{};
  GaugeHandle last_watts_{};
  std::uint32_t track_ = 0;
};

}  // namespace pcap::telemetry
