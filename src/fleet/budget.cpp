#include "fleet/budget.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::fleet {

double quantize_watts(double watts, double grid_w) {
  const double grid = grid_w > 0.0 ? grid_w : 0.1;
  return std::floor(watts / grid + 1e-9) * grid;
}

void BudgetSchedule::add_phase(double start_s, double budget_w) {
  phases_.push_back({start_s, budget_w});
}

void BudgetSchedule::add_event(double start_s, double end_s, double budget_w) {
  events_.push_back({start_s, end_s, budget_w});
}

double BudgetSchedule::at(double t_s) const {
  double budget = base_w_;
  double phase_t = t_s;
  if (period_s_ > 0.0 && !phases_.empty()) {
    phase_t = std::fmod(t_s, period_s_);
    if (phase_t < 0.0) phase_t += period_s_;
  }
  for (const Phase& p : phases_) {
    if (phase_t >= p.start_s) budget = p.budget_w;
  }
  // Demand-response events sit on absolute time and trump the schedule.
  for (const Event& e : events_) {
    if (t_s >= e.start_s && t_s < e.end_s) budget = e.budget_w;
  }
  return budget;
}

std::vector<double> divide_budget(double budget_w,
                                  const std::vector<double>& floors,
                                  const std::vector<double>& weights,
                                  const std::vector<double>& ceilings,
                                  double grid_w) {
  const std::size_t n = floors.size();
  std::vector<double> out;
  if (n == 0) return out;

  double floor_sum = 0.0;
  for (double f : floors) floor_sum += f;
  if (budget_w + 1e-9 < floor_sum) return out;  // infeasible: reject whole

  double weight_sum = 0.0;
  for (double w : weights) weight_sum += std::max(w, 0.0);

  const double surplus = budget_w - floor_sum;
  out.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    double share = floors[i];
    if (weight_sum > 0.0) {
      share += surplus * std::max(weights[i], 0.0) / weight_sum;
    }
    share = std::min(share, ceilings[i]);
    // Quantize the whole cap onto the grid (at least the 0.1 W wire grid,
    // so a budget survives the fixed-point encoding unchanged) so equal
    // shares land on the same bit pattern fleet-wide, but never dip below
    // the floor.
    out[i] = std::max(floors[i], quantize_watts(share, grid_w));
  }
  return out;
}

}  // namespace pcap::fleet
