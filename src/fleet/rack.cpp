#include "fleet/rack.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace pcap::fleet {

namespace {
constexpr double kTimeEps = 1e-12;
}  // namespace

RackManager::NodeSlot::NodeSlot(const RackConfig& config)
    : vnode(config.bmc.min_cap_w, config.bmc.max_cap_w, config.idle_node_w),
      server(vnode),
      loopback([this](std::span<const std::uint8_t> frame) {
        return server.handle_frame(frame);
      }),
      sampler(config.sampler) {
  lanes.resize(config.lanes_per_node);
}

RackManager::RackManager(const RackConfig& config)
    : config_(config), coupler_(config.coupler) {
  for (std::size_t i = 0; i < config_.node_count; ++i) {
    auto slot = std::make_unique<NodeSlot>(config_);
    if (config_.node_faults) {
      slot->faulty = std::make_unique<ipmi::FaultyTransport>(
          slot->loopback, *config_.node_faults,
          config_.seed * 131 + static_cast<std::uint64_t>(i) * 31 + 5);
    }
    ipmi::Transport& link =
        slot->faulty ? static_cast<ipmi::Transport&>(*slot->faulty)
                     : static_cast<ipmi::Transport&>(slot->loopback);
    core::NodeCommsConfig comms = config_.comms;
    comms.seed = config_.seed * 977 + static_cast<std::uint64_t>(i) * 131 + 7;
    slot->client = std::make_unique<core::ManagedNode>(
        config_.name + "/n" + std::to_string(i), link, comms);
    slots_.push_back(std::move(slot));
  }
  // Every node boots capped at its floor (the BMC's safe state), which is
  // exactly the initial grant the coupler books for it.
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    links_.push_back(
        std::make_unique<NodeLink>(*slots_[i]->client, config_.bmc));
    coupler_.add_child(links_.back().get(), config_.bmc.min_cap_w);
  }
  target_w_ = floor_w();
}

double RackManager::floor_w() const {
  return static_cast<double>(slots_.size()) * config_.bmc.min_cap_w;
}

double RackManager::ceiling_w() const {
  return static_cast<double>(slots_.size()) * config_.bmc.max_cap_w;
}

double RackManager::enforced_w() const {
  return std::max(target_w_, coupler_.committed_w());
}

std::vector<double> RackManager::division_weights() const {
  std::vector<double> weights(slots_.size(), 1.0);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const NodeSlot& slot = *slots_[i];
    const bool busy = std::any_of(slot.lanes.begin(), slot.lanes.end(),
                                  [](const Lane& l) { return l.busy(); });
    switch (config_.division) {
      case RackDivision::kTwoTier:
        weights[i] = busy ? 1.0 : 0.0;
        break;
      case RackDivision::kUniform:
        weights[i] = 1.0;
        break;
      case RackDivision::kDemand:
        weights[i] = slot.vnode.draw_w();
        break;
    }
  }
  return weights;
}

double RackManager::set_budget_target(double watts) {
  target_w_ = watts;
  const std::vector<double> weights = division_weights();
  coupler_.converge_down(target_w_, &weights, config_.cap_grid_w);
  return enforced_w();
}

CouplerRound RackManager::rebalance() {
  const std::vector<double> weights = division_weights();
  return coupler_.run_round(target_w_, &weights, config_.cap_grid_w);
}

ipmi::RackStatus RackManager::status() {
  ipmi::RackStatus s;
  s.enforced_w = enforced_w();
  s.committed_w = coupler_.committed_w();
  s.reserved_w = coupler_.reserved_w();
  s.demand_w = demand_w();
  s.floor_w = floor_w();
  s.ceiling_w = ceiling_w();
  s.nodes = static_cast<std::uint16_t>(slots_.size());
  s.lost_nodes = static_cast<std::uint16_t>(coupler_.lost_children());
  s.busy_nodes = static_cast<std::uint16_t>(busy_nodes());
  s.free_lanes = static_cast<std::uint16_t>(free_lanes());
  s.queued_jobs = static_cast<std::uint16_t>(
      std::min<std::size_t>(queue_.size(), 0xFFFF));
  return s;
}

ipmi::RackTelemetry RackManager::telemetry_summary() {
  ipmi::RackTelemetry t;
  t.nodes = static_cast<std::uint16_t>(slots_.size());
  if (slots_.empty()) return t;
  t.min_w = slots_.front()->vnode.draw_w();
  for (const auto& slot : slots_) {
    const double w = slot->vnode.draw_w();
    t.min_w = std::min(t.min_w, w);
    t.max_w = std::max(t.max_w, w);
    t.sum_w += w;
  }
  t.mean_w = t.sum_w / static_cast<double>(slots_.size());
  return t;
}

double RackManager::demand_w() const {
  double sum = 0.0;
  for (const auto& slot : slots_) sum += slot->vnode.draw_w();
  return sum;
}

void RackManager::refresh_draw(std::size_t node) {
  NodeSlot& slot = *slots_[node];
  double draw = 0.0;
  bool any = false;
  for (const Lane& lane : slot.lanes) {
    if (lane.in_flight) {
      draw += lane.last_chunk.avg_power_w;
      any = true;
    }
  }
  slot.vnode.set_draw_w(any ? draw : config_.idle_node_w);
}

void RackManager::begin_tick(double t, std::vector<ChunkEvent>& completions) {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    NodeSlot& slot = *slots_[i];
    bool changed = false;
    for (std::size_t l = 0; l < slot.lanes.size(); ++l) {
      Lane& lane = slot.lanes[l];
      if (!lane.in_flight || lane.chunk_end_s > t + kTimeEps) continue;
      lane.in_flight = false;
      ++lane.chunks_done;
      changed = true;
      ChunkEvent event;
      event.job_id = lane.job.job_id;
      event.tenant = lane.job.tenant;
      event.node = i;
      event.lane = l;
      event.result = lane.last_chunk;
      event.finish_s = lane.chunk_end_s;
      event.chunks_done = lane.chunks_done;
      event.job_done = lane.chunks_done >= lane.job.chunks;
      completions.push_back(event);
      if (event.job_done) {
        lane.job = LaneJob{};
        lane.chunks_done = 0;
        lane.placed_s = -1.0;
      }
    }
    if (changed) refresh_draw(i);
  }
}

std::size_t RackManager::place(double t) {
  std::size_t placed = 0;
  for (std::size_t l = 0; l < config_.lanes_per_node && !queue_.empty(); ++l) {
    for (std::size_t i = 0; i < slots_.size() && !queue_.empty(); ++i) {
      Lane& lane = slots_[i]->lanes[l];
      if (lane.busy()) continue;
      lane.job = queue_.front();
      queue_.pop_front();
      lane.chunks_done = 0;
      lane.in_flight = false;
      lane.placed_s = t;
      ++placed;
    }
  }
  return placed;
}

void RackManager::pending_starts(std::vector<StartRef>& out) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const NodeSlot& slot = *slots_[i];
    for (std::size_t l = 0; l < slot.lanes.size(); ++l) {
      const Lane& lane = slot.lanes[l];
      if (lane.busy() && !lane.in_flight) out.push_back({i, l});
    }
  }
}

void RackManager::begin_chunk(std::size_t node, std::size_t l,
                              const sched::ChunkResult& result, double t) {
  NodeSlot& slot = *slots_[node];
  Lane& lane = slot.lanes[l];
  lane.last_chunk = result;
  lane.chunk_end_s = t + util::to_seconds(result.elapsed);
  lane.in_flight = true;
  // Incremental busy-interval union (starts arrive in tick order).
  if (t >= slot.busy_until_s) {
    slot.busy_union_s += lane.chunk_end_s - t;
    slot.busy_until_s = lane.chunk_end_s;
  } else if (lane.chunk_end_s > slot.busy_until_s) {
    slot.busy_union_s += lane.chunk_end_s - slot.busy_until_s;
    slot.busy_until_s = lane.chunk_end_s;
  }
  refresh_draw(node);
}

std::size_t RackManager::free_lanes() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    for (const Lane& lane : slot->lanes) {
      if (!lane.busy()) ++n;
    }
  }
  return n;
}

std::size_t RackManager::busy_nodes() const {
  std::size_t n = 0;
  for (const auto& slot : slots_) {
    if (std::any_of(slot->lanes.begin(), slot->lanes.end(),
                    [](const Lane& l) { return l.busy(); })) {
      ++n;
    }
  }
  return n;
}

bool RackManager::anything_in_flight() const {
  for (const auto& slot : slots_) {
    for (const Lane& lane : slot->lanes) {
      if (lane.in_flight) return true;
    }
  }
  return false;
}

void RackManager::sample(double t) {
  const util::Picoseconds now = util::seconds(t);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    NodeSlot& slot = *slots_[i];
    if (!slot.sampler.due(now)) continue;
    telemetry::NodeSample sample;
    sample.time = now;
    sample.watts = slot.vnode.draw_w();
    sample.cap_w = coupler_.granted_w(i);
    sample.health = static_cast<std::int32_t>(coupler_.health(i));
    slot.sampler.record(sample);
  }
}

telemetry::GroupSeries RackManager::series(
    const telemetry::Reducer& reducer) const {
  std::vector<const telemetry::Sampler*> samplers;
  samplers.reserve(slots_.size());
  for (const auto& slot : slots_) samplers.push_back(&slot->sampler);
  return reducer.reduce(samplers, config_.name);
}

double RackManager::actual_cap_sum_w() const {
  double sum = 0.0;
  for (const auto& slot : slots_) {
    const std::optional<double> cap = slot->vnode.cap_w();
    sum += cap.value_or(config_.bmc.max_cap_w);
  }
  return sum;
}

std::uint64_t RackManager::mgmt_retries() const {
  std::uint64_t n = 0;
  for (const auto& slot : slots_) n += slot->client->retries();
  return n;
}

std::uint64_t RackManager::mgmt_failed_exchanges() const {
  std::uint64_t n = 0;
  for (const auto& slot : slots_) n += slot->client->failed_exchanges();
  return n;
}

}  // namespace pcap::fleet
