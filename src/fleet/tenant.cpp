#include "fleet/tenant.hpp"

#include <algorithm>

namespace pcap::fleet {

std::vector<FleetJob> generate_tenant_streams(
    const std::vector<TenantSpec>& tenants) {
  std::vector<FleetJob> merged;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const std::vector<sched::JobSpec> stream =
        sched::generate_stream(tenants[t].arrivals);
    merged.reserve(merged.size() + stream.size());
    for (const sched::JobSpec& spec : stream) {
      FleetJob job;
      job.tenant = static_cast<int>(t);
      job.spec = spec;
      merged.push_back(job);
    }
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const FleetJob& a, const FleetJob& b) {
                     if (a.spec.arrival_s != b.spec.arrival_s) {
                       return a.spec.arrival_s < b.spec.arrival_s;
                     }
                     if (a.tenant != b.tenant) return a.tenant < b.tenant;
                     return a.spec.id < b.spec.id;
                   });
  for (std::size_t i = 0; i < merged.size(); ++i) {
    merged[i].id = static_cast<int>(i);
  }
  return merged;
}

}  // namespace pcap::fleet
