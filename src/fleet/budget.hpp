// Budget arithmetic for the fleet tree: time-of-day / demand-response
// budget schedules and the deterministic floor+weighted-surplus division a
// parent applies to its children (DESIGN.md §14).
#pragma once

#include <cstddef>
#include <vector>

namespace pcap::fleet {

/// Floors a watt value onto an `grid_w` grid (0 → the 0.1 W IPMI wire
/// grid). Division results always round *down* so quantization can never
/// push a sum over budget.
double quantize_watts(double watts, double grid_w);

/// Step schedule for the fleet budget: ordered phases (optionally periodic,
/// modeling time-of-day), overlaid with absolute-time demand-response
/// events that override the schedule while active. Lookup is pure —
/// `at(t)` has no state — so every tick, jobs count, and memo knob sees
/// the identical budget trajectory.
class BudgetSchedule {
 public:
  BudgetSchedule() = default;
  explicit BudgetSchedule(double constant_w) : base_w_(constant_w) {}

  /// Phase starting at `start_s` within the period (or absolute time when
  /// no period is set). Phases must be appended in increasing start order.
  void add_phase(double start_s, double budget_w);

  /// Makes the phase table repeat every `period_s` (time-of-day shape).
  void set_period(double period_s) { period_s_ = period_s; }

  /// Demand-response override: budget forced to `budget_w` on absolute
  /// time [start_s, end_s). Later events win where they overlap.
  void add_event(double start_s, double end_s, double budget_w);

  double at(double t_s) const;

 private:
  struct Phase {
    double start_s;
    double budget_w;
  };
  struct Event {
    double start_s;
    double end_s;
    double budget_w;
  };
  double base_w_ = 0.0;  // used before the first phase starts
  double period_s_ = 0.0;
  std::vector<Phase> phases_;
  std::vector<Event> events_;
};

/// Divides `budget_w` across children: every child gets its floor, the
/// surplus splits in proportion to `weights`, each share clamps to the
/// child's ceiling, and the part above the floor rounds down onto the
/// `grid_w` grid (coarse grids keep the set of distinct child budgets — and
/// hence distinct chunk-memo keys — small at fleet scale). Returns one
/// budget per child with sum(result) <= budget_w, or an empty vector when
/// the division is infeasible (budget below the floor sum): infeasible
/// divisions are rejected whole, never partially applied.
std::vector<double> divide_budget(double budget_w,
                                  const std::vector<double>& floors,
                                  const std::vector<double>& weights,
                                  const std::vector<double>& ceilings,
                                  double grid_w = 0.0);

}  // namespace pcap::fleet
