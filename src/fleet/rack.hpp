// One rack of the fleet tree: a BudgetHolder over N VirtualNodes, each
// reached through its own IPMI link (LoopbackTransport, optionally wrapped
// in FaultyTransport) by a core::ManagedNode client — the same
// retry/backoff/health machinery the single-rack DCM uses, adapted into
// the rack's BudgetCoupler. Downward it divides its enforced budget across
// the nodes (two-tier by default: idle nodes parked at the floor, busy
// nodes splitting the surplus on a coarse watt grid that keeps the fleet
// chunk-memo key set small); upward it reports grant/committed/reserved
// per the budget-tree discipline and aggregates node telemetry for the
// Reducer fan-in.
//
// The rack's job plane (queue, placement, chunk bookkeeping) is in-process
// state driven by the DatacenterManager's tick: management partitions cut
// the *power* plane only — a rack or node that drops off IPMI keeps
// executing its placed work and enforcing its last budget, exactly like a
// real BMC (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bmc.hpp"
#include "core/dcm.hpp"
#include "fleet/coupler.hpp"
#include "fleet/endpoint.hpp"
#include "fleet/virtual_node.hpp"
#include "ipmi/transport.hpp"
#include "sched/chunk_cache.hpp"
#include "sched/job.hpp"
#include "telemetry/reducer.hpp"
#include "telemetry/sampler.hpp"

namespace pcap::fleet {

/// How a rack divides its enforced budget across its nodes.
enum class RackDivision {
  kTwoTier,  // idle nodes at the floor, busy nodes split the surplus
  kUniform,  // equal shares regardless of occupancy
  kDemand,   // proportional to current draw
};

struct RackConfig {
  std::string name = "rack";
  std::size_t node_count = 8;
  std::size_t lanes_per_node = 1;
  core::BmcConfig bmc;  // advertises each node's [min_cap, max_cap]
  double idle_node_w = 101.0;
  /// Busy-node budgets round down onto this grid (0 = exact 0.1 W wire
  /// grid). Coarse grids bound the set of distinct enforced caps — and so
  /// the set of distinct chunk-memo keys — fleet-wide.
  double cap_grid_w = 8.0;
  RackDivision division = RackDivision::kTwoTier;
  /// Faults injected on every node's management link (seeded per node).
  std::optional<ipmi::FaultSpec> node_faults;
  core::NodeCommsConfig comms;
  CouplerConfig coupler;
  telemetry::SamplerConfig sampler;  // per-node ring (keep capacity small)
  std::uint64_t seed = 1;
};

/// A job as the rack holds it (already admitted by the datacenter).
struct LaneJob {
  int job_id = -1;  // fleet-wide id; -1 = lane free
  int tenant = 0;
  sched::JobClass cls = sched::JobClass::kSireLike;
  std::uint64_t seed = 1;
  int chunks = 1;
  std::optional<double> deadline_s;
};

/// One chunk completion, reported up to the datacenter.
struct ChunkEvent {
  int job_id = -1;
  int tenant = 0;
  std::size_t node = 0;
  std::size_t lane = 0;
  sched::ChunkResult result;
  double finish_s = 0.0;
  int chunks_done = 0;
  bool job_done = false;
};

class RackManager : public BudgetHolder {
 public:
  struct Lane {
    LaneJob job;
    bool in_flight = false;
    double chunk_end_s = 0.0;
    int chunks_done = 0;
    sched::ChunkResult last_chunk;
    double placed_s = -1.0;

    bool busy() const { return job.job_id >= 0; }
  };

  explicit RackManager(const RackConfig& config);

  const std::string& name() const { return config_.name; }
  std::size_t node_count() const { return slots_.size(); }
  std::size_t lanes_per_node() const { return config_.lanes_per_node; }

  // --- BudgetHolder (served over IPMI by BudgetEndpointServer) ---
  /// Adopting a lower budget converges synchronously: node cap decreases
  /// are pushed (decreases-first, over the possibly-faulty node links)
  /// before the grant is computed, so a clean-link decrease lands whole
  /// within the parent's exchange.
  double set_budget_target(double watts) override;
  ipmi::RackStatus status() override;
  ipmi::RackTelemetry telemetry_summary() override;

  double target_w() const { return target_w_; }
  double enforced_w() const;
  double committed_w() const { return coupler_.committed_w(); }
  double reserved_w() const { return coupler_.reserved_w(); }
  double floor_w() const;
  double ceiling_w() const;

  // --- tick phases, driven by the DatacenterManager in a fixed order ---
  /// Processes chunk completions due at `t` and refreshes node draws.
  void begin_tick(double t, std::vector<ChunkEvent>& completions);
  void enqueue(const LaneJob& job) { queue_.push_back(job); }
  /// FIFO queue onto free lanes, lane-major. Returns lanes filled.
  std::size_t place(double t);
  /// One rack-level coupler round (poll nodes, divide, push).
  CouplerRound rebalance();
  /// Samples every node's operating point if its sampler is due.
  void sample(double t);

  // --- chunk-start material for the fleet-wide classify/fan-out/commit ---
  struct StartRef {
    std::size_t node = 0;
    std::size_t lane = 0;
  };
  void pending_starts(std::vector<StartRef>& out) const;
  const Lane& lane(std::size_t node, std::size_t l) const {
    return slots_[node]->lanes[l];
  }
  /// Client-side view of the node's enforced cap (last acked grant).
  double node_granted_w(std::size_t node) const {
    return coupler_.granted_w(node);
  }
  void begin_chunk(std::size_t node, std::size_t l,
                   const sched::ChunkResult& result, double t);

  // --- occupancy / queue ---
  std::size_t free_lanes() const;
  std::size_t busy_nodes() const;
  std::size_t queue_depth() const { return queue_.size(); }
  bool anything_in_flight() const;

  // --- telemetry & ground truth ---
  telemetry::GroupSeries series(const telemetry::Reducer& reducer) const;
  /// Sum of the caps the VirtualNodes are *actually* enforcing — read
  /// directly, bypassing the management plane. Tests assert this ground
  /// truth never exceeds the rack's enforced budget.
  double actual_cap_sum_w() const;
  double demand_w() const;
  std::size_t lost_nodes() const { return coupler_.lost_children(); }
  const BudgetCoupler& coupler() const { return coupler_; }
  /// Per-node busy-time union in seconds (for idle-energy accounting).
  double node_busy_s(std::size_t node) const {
    return slots_[node]->busy_union_s;
  }
  /// The node's fault injector, when configured (partition scripting).
  ipmi::FaultyTransport* node_fault_link(std::size_t node) {
    return slots_[node]->faulty ? slots_[node]->faulty.get() : nullptr;
  }
  std::uint64_t mgmt_retries() const;
  std::uint64_t mgmt_failed_exchanges() const;

 private:
  struct NodeSlot {
    explicit NodeSlot(const RackConfig& config);

    VirtualNode vnode;
    VirtualNodeIpmiServer server;
    ipmi::LoopbackTransport loopback;
    std::unique_ptr<ipmi::FaultyTransport> faulty;
    std::unique_ptr<core::ManagedNode> client;
    std::vector<Lane> lanes;
    telemetry::Sampler sampler;
    // Busy-time union across lanes (chunk start times are non-decreasing,
    // so the incremental merge in begin_chunk is exact).
    double busy_union_s = 0.0;
    double busy_until_s = 0.0;
  };

  /// ChildLink adapter: rack -> node pushes go through the ManagedNode
  /// client (retry/backoff over the faulty link).
  class NodeLink : public ChildLink {
   public:
    NodeLink(core::ManagedNode& client, const core::BmcConfig& bmc)
        : client_(&client), min_w_(bmc.min_cap_w), max_w_(bmc.max_cap_w) {}
    std::optional<double> push_budget(double watts) override {
      // A node grants exactly what its BMC acked: caps apply atomically.
      if (!client_->set_cap(watts)) return std::nullopt;
      return watts;
    }
    std::optional<double> poll_demand() override {
      const std::optional<ipmi::PowerReading> reading =
          client_->power_reading();
      if (!reading.has_value()) return std::nullopt;
      return reading->current_w;
    }
    double floor_w() const override { return min_w_; }
    double ceiling_w() const override { return max_w_; }

   private:
    core::ManagedNode* client_;
    double min_w_;
    double max_w_;
  };

  void refresh_draw(std::size_t node);
  std::vector<double> division_weights() const;

  RackConfig config_;
  std::vector<std::unique_ptr<NodeSlot>> slots_;
  std::vector<std::unique_ptr<NodeLink>> links_;
  BudgetCoupler coupler_;
  std::deque<LaneJob> queue_;
  double target_w_ = 0.0;
};

}  // namespace pcap::fleet
