#include "fleet/endpoint.hpp"

#include <algorithm>

namespace pcap::fleet {

ipmi::RackTelemetry BudgetHolder::telemetry_summary() {
  const ipmi::RackStatus s = status();
  ipmi::RackTelemetry t;
  t.nodes = s.nodes;
  t.sum_w = s.demand_w;
  t.mean_w = s.nodes > 0 ? s.demand_w / s.nodes : 0.0;
  t.min_w = t.mean_w;
  t.max_w = t.mean_w;
  return t;
}

ipmi::Response BudgetEndpointServer::handle(const ipmi::Request& request) {
  using ipmi::Command;
  using ipmi::CompletionCode;
  switch (static_cast<Command>(request.command)) {
    case Command::kSetRackBudget: {
      const std::optional<double> target = ipmi::decode_set_rack_budget(request);
      if (!target.has_value()) {
        return ipmi::make_error_response(CompletionCode::kRequestDataInvalid);
      }
      const ipmi::RackStatus s = holder_->status();
      if (*target + 1e-9 < s.floor_w || *target > s.ceiling_w + 1e-9) {
        return ipmi::make_error_response(CompletionCode::kOutOfRange);
      }
      return ipmi::encode_rack_budget_grant(holder_->set_budget_target(*target));
    }
    case Command::kGetRackStatus:
      if (!request.payload.empty()) {
        return ipmi::make_error_response(CompletionCode::kRequestDataInvalid);
      }
      return ipmi::encode_rack_status(holder_->status());
    case Command::kGetRackTelemetry:
      if (!request.payload.empty()) {
        return ipmi::make_error_response(CompletionCode::kRequestDataInvalid);
      }
      return ipmi::encode_rack_telemetry(holder_->telemetry_summary());
    default:
      return ipmi::make_error_response(CompletionCode::kInvalidCommand);
  }
}

std::vector<std::uint8_t> BudgetEndpointServer::handle_frame(
    std::span<const std::uint8_t> frame) {
  ipmi::Request request;
  if (!ipmi::decode_request(frame, request)) {
    ipmi::Response error =
        ipmi::make_error_response(ipmi::CompletionCode::kRequestDataInvalid);
    return ipmi::encode_response(error);
  }
  ipmi::Response response = handle(request);
  response.seq = request.seq;
  return ipmi::encode_response(response);
}

ipmi::Response BudgetClient::transact_with_retry(
    const ipmi::Request& request) {
  ipmi::Response response;
  for (std::uint32_t attempt = 0; attempt < backoff_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      backoff_delay_ms(backoff_, attempt - 1, rng_);
    }
    response = session_.transact(request);
    if (session_.last_error() == ipmi::Session::Error::kNone) return response;
  }
  ++failed_exchanges_;
  return response;
}

bool BudgetClient::attach() {
  const ipmi::Response r = transact_with_retry(ipmi::make_get_rack_status());
  const std::optional<ipmi::RackStatus> status = ipmi::decode_rack_status(r);
  if (!status.has_value()) return false;
  status_ = *status;
  return true;
}

std::optional<double> BudgetClient::push_budget(double watts) {
  const ipmi::Response r = transact_with_retry(ipmi::make_set_rack_budget(watts));
  return ipmi::decode_rack_budget_grant(r);
}

std::optional<double> BudgetClient::poll_demand() {
  const ipmi::Response r = transact_with_retry(ipmi::make_get_rack_status());
  const std::optional<ipmi::RackStatus> status = ipmi::decode_rack_status(r);
  if (!status.has_value()) return std::nullopt;
  status_ = *status;
  return status_.demand_w;
}

std::optional<ipmi::RackTelemetry> BudgetClient::fetch_telemetry() {
  const ipmi::Response r = transact_with_retry(ipmi::make_get_rack_telemetry());
  return ipmi::decode_rack_telemetry(r);
}

void BudgetGroup::add_child(BudgetClient* child) {
  children_.push_back(child);
  floor_w_ += child->floor_w();
  ceiling_w_ += child->ceiling_w();
  coupler_.add_child(child, child->floor_w());
  target_w_ = std::max(target_w_, floor_w_);
}

double BudgetGroup::enforced_w() const {
  return std::max(target_w_, coupler_.committed_w());
}

double BudgetGroup::set_budget_target(double watts) {
  target_w_ = watts;
  coupler_.converge_down(target_w_);
  return enforced_w();
}

ipmi::RackStatus BudgetGroup::status() {
  ipmi::RackStatus s;
  s.enforced_w = enforced_w();
  s.committed_w = coupler_.committed_w();
  s.reserved_w = coupler_.reserved_w();
  s.floor_w = floor_w_;
  s.ceiling_w = ceiling_w_;
  double demand = 0.0;
  std::uint16_t nodes = 0, lost_nodes = 0, busy = 0, free_lanes = 0, queued = 0;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    const ipmi::RackStatus& child = children_[i]->last_status();
    demand += coupler_.demand_w(i);
    nodes = static_cast<std::uint16_t>(nodes + child.nodes);
    busy = static_cast<std::uint16_t>(busy + child.busy_nodes);
    free_lanes = static_cast<std::uint16_t>(free_lanes + child.free_lanes);
    queued = static_cast<std::uint16_t>(queued + child.queued_jobs);
    if (coupler_.health(i) == LinkHealth::kLost) {
      lost_nodes = static_cast<std::uint16_t>(lost_nodes + child.nodes);
    } else {
      lost_nodes = static_cast<std::uint16_t>(lost_nodes + child.lost_nodes);
    }
  }
  s.demand_w = demand;
  s.nodes = nodes;
  s.lost_nodes = lost_nodes;
  s.busy_nodes = busy;
  s.free_lanes = free_lanes;
  s.queued_jobs = queued;
  return s;
}

}  // namespace pcap::fleet
