// Multi-tenant arrival streams for the fleet: each tenant owns a seeded
// sched::ArrivalConfig and a fairness weight. Streams are generated
// independently per tenant (so adding a tenant never perturbs another's
// stream) and merged into one arrival-ordered sequence; admission shares
// shrink-proportionally to the weights via deficit round-robin when the
// global budget tightens (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/arrivals.hpp"
#include "sched/job.hpp"

namespace pcap::fleet {

struct TenantSpec {
  std::string name = "tenant";
  double weight = 1.0;  // relative admission share under contention
  sched::ArrivalConfig arrivals;
};

/// One job of the merged fleet stream. `id` is the fleet-wide index in
/// arrival order; the tenant's own job id is preserved inside `spec`.
struct FleetJob {
  int id = 0;
  int tenant = 0;
  sched::JobSpec spec;
};

/// Per-tenant outcome aggregates, filled by the datacenter run.
struct TenantStats {
  std::string name;
  double weight = 1.0;
  int jobs = 0;
  int admitted = 0;
  int completed = 0;
  std::uint64_t chunks = 0;
  double mean_wait_s = 0.0;        // arrival -> admission
  double mean_turnaround_s = 0.0;  // arrival -> finish (completed jobs)
  double energy_j = 0.0;
  double admitted_share = 0.0;     // fraction of all admissions
};

/// Generates every tenant's stream and merges by arrival time (ties by
/// tenant index then per-tenant id), assigning fleet-wide ids in merge
/// order.
std::vector<FleetJob> generate_tenant_streams(
    const std::vector<TenantSpec>& tenants);

}  // namespace pcap::fleet
