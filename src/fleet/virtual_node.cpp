#include "fleet/virtual_node.hpp"

namespace pcap::fleet {

ipmi::Response VirtualNodeIpmiServer::handle(const ipmi::Request& request) {
  using ipmi::Command;
  using ipmi::CompletionCode;
  switch (static_cast<Command>(request.command)) {
    case Command::kGetDeviceId:
      return ipmi::encode_device_id(ipmi::DeviceId{});
    case Command::kGetPowerReading:
      return ipmi::encode_power_reading(node_->power_reading());
    case Command::kGetCapabilities:
      return ipmi::encode_capabilities(node_->capabilities());
    case Command::kGetPowerLimit: {
      const std::optional<double> cap = node_->cap_w();
      return ipmi::encode_power_limit(
          ipmi::PowerLimit{cap.has_value(), cap.value_or(0.0)});
    }
    case Command::kSetPowerLimit: {
      const std::optional<ipmi::PowerLimit> limit =
          ipmi::decode_set_power_limit(request);
      if (!limit.has_value()) {
        return ipmi::make_error_response(CompletionCode::kRequestDataInvalid);
      }
      const std::optional<double> cap =
          limit->enabled ? std::optional<double>(limit->limit_w) : std::nullopt;
      if (!node_->set_cap(cap)) {
        return ipmi::make_error_response(CompletionCode::kOutOfRange);
      }
      return ipmi::make_ok_response();
    }
    case Command::kGetThrottleStatus:
      return ipmi::encode_throttle_status(node_->throttle_status());
    default:
      return ipmi::make_error_response(CompletionCode::kInvalidCommand);
  }
}

std::vector<std::uint8_t> VirtualNodeIpmiServer::handle_frame(
    std::span<const std::uint8_t> frame) {
  ipmi::Request request;
  if (!ipmi::decode_request(frame, request)) {
    ipmi::Response error =
        ipmi::make_error_response(ipmi::CompletionCode::kRequestDataInvalid);
    return ipmi::encode_response(error);
  }
  ipmi::Response response = handle(request);
  response.seq = request.seq;
  return ipmi::encode_response(response);
}

}  // namespace pcap::fleet
