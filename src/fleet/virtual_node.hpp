// Fleet-scale node endpoint: the management-plane face of one simulated
// node without the full sim::Node + core::Bmc machinery, so 1k-10k of them
// stay cheap to construct and poll. Chunk *execution* still runs through
// the real simulator via the shared chunk/co-run memo (sched::ChunkCache);
// the VirtualNode only tracks what its BMC would report out-of-band: the
// enforced cap, the capability range, and the current draw (the running
// chunk's average package power, or the idle floor).
//
// A VirtualNode boots capped at its floor — the safe state a BMC powers up
// in — which is exactly the initial grant its rack books for it, so the
// budget-tree accounting is grounded from tick zero.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "ipmi/commands.hpp"

namespace pcap::fleet {

class VirtualNode {
 public:
  VirtualNode(double min_cap_w, double max_cap_w, double idle_w)
      : min_cap_w_(min_cap_w),
        max_cap_w_(max_cap_w),
        cap_w_(min_cap_w),
        draw_w_(idle_w),
        min_seen_w_(idle_w),
        max_seen_w_(idle_w) {}

  ipmi::Capabilities capabilities() const {
    return ipmi::Capabilities{min_cap_w_, max_cap_w_};
  }

  ipmi::PowerReading power_reading() const {
    return ipmi::PowerReading{draw_w_, draw_w_, min_seen_w_, max_seen_w_};
  }

  std::optional<double> cap_w() const { return cap_w_; }

  /// Range-checked like the real BMC: an enabled cap outside
  /// [min_cap, max_cap] is rejected. nullopt uncaps.
  bool set_cap(std::optional<double> watts) {
    if (watts.has_value() &&
        (*watts < min_cap_w_ - 1e-9 || *watts > max_cap_w_ + 1e-9)) {
      return false;
    }
    cap_w_ = watts;
    return true;
  }

  /// The rack updates the draw as chunks start and complete.
  void set_draw_w(double watts) {
    draw_w_ = watts;
    min_seen_w_ = std::min(min_seen_w_, watts);
    max_seen_w_ = std::max(max_seen_w_, watts);
  }
  double draw_w() const { return draw_w_; }

  ipmi::ThrottleStatus throttle_status() const {
    ipmi::ThrottleStatus t;
    t.capping_active =
        cap_w_.has_value() && draw_w_ >= *cap_w_ - 1e-9;
    return t;
  }

 private:
  double min_cap_w_;
  double max_cap_w_;
  std::optional<double> cap_w_;
  double draw_w_;
  double min_seen_w_;
  double max_seen_w_;
};

/// Answers the node-level power-management commands for one VirtualNode —
/// the same contract BmcIpmiServer keeps, minus the escalation ladder.
class VirtualNodeIpmiServer {
 public:
  explicit VirtualNodeIpmiServer(VirtualNode& node) : node_(&node) {}

  ipmi::Response handle(const ipmi::Request& request);
  std::vector<std::uint8_t> handle_frame(std::span<const std::uint8_t> frame);

 private:
  VirtualNode* node_;
};

}  // namespace pcap::fleet
