#include "fleet/coupler.hpp"

#include <algorithm>
#include <cmath>

namespace pcap::fleet {

void BudgetCoupler::add_child(ChildLink* link, double initial_granted_w) {
  Child c;
  c.link = link;
  c.granted_w = initial_granted_w;
  c.demand_w = initial_granted_w;
  children_.push_back(c);
}

void BudgetCoupler::note_exchange(Child& child, bool ok) {
  if (ok) {
    child.consecutive_failures = 0;
    child.health = child.health == LinkHealth::kLost ? LinkHealth::kRecovered
                                                     : LinkHealth::kHealthy;
    return;
  }
  ++child.consecutive_failures;
  if (child.consecutive_failures >= config_.lost_after_failures) {
    child.health = LinkHealth::kLost;
  } else if (child.consecutive_failures >= config_.degraded_after_failures &&
             child.health != LinkHealth::kLost) {
    child.health = LinkHealth::kDegraded;
  }
}

double BudgetCoupler::committed_w() const {
  double sum = 0.0;
  for (const Child& c : children_) sum += c.granted_w;
  return sum;
}

double BudgetCoupler::reserved_w() const {
  double sum = 0.0;
  for (const Child& c : children_) {
    if (c.health == LinkHealth::kLost) sum += c.granted_w;
  }
  return sum;
}

std::size_t BudgetCoupler::lost_children() const {
  std::size_t n = 0;
  for (const Child& c : children_) {
    if (c.health == LinkHealth::kLost) ++n;
  }
  return n;
}

CouplerRound BudgetCoupler::finish_round(double target_w, bool feasible,
                                         bool increases_withheld) {
  CouplerRound round;
  round.target_w = target_w;
  round.committed_w = committed_w();
  round.reserved_w = reserved_w();
  round.lost_children = lost_children();
  round.feasible = feasible;
  round.increases_withheld = increases_withheld;
  // Enforced snaps up to the target immediately (adopting headroom is
  // always safe) but comes down only as far as the children actually
  // converged — exactly the grant this level reports to its own parent.
  round.enforced_w = std::max(target_w, round.committed_w);
  round.converged = round.committed_w <= target_w + config_.tolerance_w;
  if (!feasible) ++infeasible_rounds_;
  if (increases_withheld) ++withheld_rounds_;
  last_round_ = round;
  return round;
}

CouplerRound BudgetCoupler::push_round(double target_w,
                                       const std::vector<double>* weights,
                                       double grid_w, bool allow_increases) {
  // Reachable children share target minus what lost children may still be
  // enforcing (their last grant stays reserved until they are heard from).
  std::vector<std::size_t> reachable;
  reachable.reserve(children_.size());
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (children_[i].health != LinkHealth::kLost) reachable.push_back(i);
  }
  const double available = target_w - reserved_w();

  std::vector<double> floors, wts, ceilings;
  floors.reserve(reachable.size());
  wts.reserve(reachable.size());
  ceilings.reserve(reachable.size());
  for (std::size_t i : reachable) {
    floors.push_back(children_[i].link->floor_w());
    wts.push_back(weights ? (*weights)[i] : children_[i].demand_w);
    ceilings.push_back(children_[i].link->ceiling_w());
  }

  const std::vector<double> division =
      divide_budget(available, floors, wts, ceilings, grid_w);
  if (division.empty() && !reachable.empty()) {
    // Infeasible: keep previous grants, apply nothing partially.
    return finish_round(target_w, false, false);
  }

  // Decreases first, in child order. A failed decrease is retried next
  // round (the child keeps enforcing its old grant meanwhile, so the
  // bookkeeping stays honest); any failure defers every increase.
  bool decreases_ok = true;
  for (std::size_t k = 0; k < reachable.size(); ++k) {
    Child& child = children_[reachable[k]];
    const double desired = division[k];
    if (desired >= child.granted_w - config_.push_epsilon_w) continue;
    ++pushes_;
    const std::optional<double> grant = child.link->push_budget(desired);
    note_exchange(child, grant.has_value());
    if (grant.has_value()) {
      child.granted_w = *grant;
      if (*grant > desired + config_.tolerance_w) decreases_ok = false;
    } else {
      ++push_failures_;
      decreases_ok = false;
    }
  }

  bool withheld = false;
  if (allow_increases) {
    for (std::size_t k = 0; k < reachable.size(); ++k) {
      Child& child = children_[reachable[k]];
      const double desired = division[k];
      if (desired <= child.granted_w + config_.push_epsilon_w) continue;
      if (!decreases_ok) {
        withheld = true;  // headroom not yet real: a decrease is pending
        continue;
      }
      ++pushes_;
      const std::optional<double> grant = child.link->push_budget(desired);
      note_exchange(child, grant.has_value());
      // Book the grant as-is: a child whose own subtree is mid-convergence
      // may guarantee more than asked, and understating that would break
      // the conservation bound.
      if (grant.has_value()) {
        child.granted_w = *grant;
      } else {
        ++push_failures_;
      }
    }
  }
  return finish_round(target_w, true, withheld);
}

CouplerRound BudgetCoupler::run_round(double target_w,
                                      const std::vector<double>* weights,
                                      double grid_w) {
  for (Child& child : children_) {
    ++polls_;
    const std::optional<double> demand = child.link->poll_demand();
    note_exchange(child, demand.has_value());
    if (demand.has_value()) child.demand_w = std::max(*demand, 0.0);
    if (!demand.has_value()) ++poll_failures_;
  }
  return push_round(target_w, weights, grid_w, /*allow_increases=*/true);
}

CouplerRound BudgetCoupler::converge_down(double target_w,
                                          const std::vector<double>* weights,
                                          double grid_w) {
  return push_round(target_w, weights, grid_w, /*allow_increases=*/false);
}

}  // namespace pcap::fleet
