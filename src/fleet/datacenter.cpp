#include "fleet/datacenter.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace pcap::fleet {

namespace {
constexpr double kTimeEps = 1e-12;
constexpr double kTolW = 1e-3;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

std::uint64_t fnv_mix(std::uint64_t h, double v) {
  return fnv_mix(h, std::bit_cast<std::uint64_t>(v));
}
}  // namespace

std::uint64_t FleetResult::schedule_digest() const {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const sched::JobRecord& r = jobs[i];
    h = fnv_mix(h, static_cast<std::uint64_t>(r.node));
    h = fnv_mix(h, static_cast<std::uint64_t>(r.lane));
    h = fnv_mix(h, static_cast<std::uint64_t>(job_rack[i]));
    h = fnv_mix(h, r.start_s);
    h = fnv_mix(h, r.finish_s);
    h = fnv_mix(h, r.energy_j);
    h = fnv_mix(h, static_cast<std::uint64_t>(r.chunks_done));
  }
  for (const LevelTick& tick : dc_ticks) {
    h = fnv_mix(h, tick.committed_w);
    h = fnv_mix(h, tick.enforced_w);
  }
  for (const std::vector<LevelTick>& ticks : rack_ticks) {
    for (const LevelTick& tick : ticks) {
      h = fnv_mix(h, tick.committed_w);
      h = fnv_mix(h, tick.actual_w);
    }
  }
  return h;
}

DatacenterManager::DatacenterManager(const FleetConfig& config)
    : config_(config), coupler_(config.coupler) {
  for (std::size_t i = 0; i < config_.rack_nodes.size(); ++i) {
    auto slot = std::make_unique<RackSlot>();
    RackConfig rack;
    rack.name = "r" + std::to_string(i);
    rack.node_count = config_.rack_nodes[i];
    rack.lanes_per_node = config_.lanes_per_node;
    rack.bmc = config_.bmc;
    rack.idle_node_w = config_.idle_node_w;
    rack.cap_grid_w = config_.cap_grid_w;
    rack.division = config_.division;
    rack.node_faults = config_.node_faults;
    rack.comms = config_.comms;
    rack.coupler = config_.coupler;
    rack.sampler = config_.sampler;
    rack.seed = config_.seed * 65599 + static_cast<std::uint64_t>(i) * 43 + 3;
    slot->manager = std::make_unique<RackManager>(rack);
    slot->server = std::make_unique<BudgetEndpointServer>(*slot->manager);
    slot->loopback = std::make_unique<ipmi::LoopbackTransport>(
        [srv = slot->server.get()](std::span<const std::uint8_t> frame) {
          return srv->handle_frame(frame);
        });
    if (config_.rack_faults) {
      slot->faulty = std::make_unique<ipmi::FaultyTransport>(
          *slot->loopback, *config_.rack_faults,
          config_.seed * 197 + static_cast<std::uint64_t>(i) * 29 + 11);
    }
    ipmi::Transport& link =
        slot->faulty ? static_cast<ipmi::Transport&>(*slot->faulty)
                     : static_cast<ipmi::Transport&>(*slot->loopback);
    slot->client = std::make_unique<BudgetClient>(
        link, config_.comms.backoff, config_.comms.request_timeout_ms,
        config_.seed * 313 + static_cast<std::uint64_t>(i) * 17 + 13);
    // Discovery: keep probing until the (possibly lossy) link answers.
    bool attached = false;
    for (int attempt = 0; attempt < 50 && !attached; ++attempt) {
      attached = slot->client->attach();
    }
    if (!attached) {
      throw std::runtime_error("fleet: rack " + rack.name +
                               " never answered discovery");
    }
    coupler_.add_child(slot->client.get(), slot->client->floor_w());
    racks_.push_back(std::move(slot));
  }

  stream_ = generate_tenant_streams(config_.tenants);
  tenant_queues_.resize(config_.tenants.size());
  tenant_deficit_.assign(config_.tenants.size(), 0.0);
  result_.jobs.resize(stream_.size());
  result_.job_tenant.resize(stream_.size());
  result_.job_rack.assign(stream_.size(), -1);
  job_admit_s_.assign(stream_.size(), -1.0);
  for (std::size_t i = 0; i < stream_.size(); ++i) {
    result_.jobs[i].spec = stream_[i].spec;
    result_.job_tenant[i] = stream_[i].tenant;
  }
  result_.rack_ticks.resize(racks_.size());
  // Keep scripted partitions in start order so step() applies them with
  // one cursor.
  std::stable_sort(config_.partitions.begin(), config_.partitions.end(),
                   [](const FleetConfig::PartitionEpisode& a,
                      const FleetConfig::PartitionEpisode& b) {
                     return a.start_s < b.start_s;
                   });
}

DatacenterManager::~DatacenterManager() = default;

std::size_t DatacenterManager::node_count() const {
  std::size_t n = 0;
  for (const auto& slot : racks_) n += slot->manager->node_count();
  return n;
}

bool DatacenterManager::done() const {
  if (completed_jobs_ >= stream_.size()) return true;
  return stalled_ticks_ > 16;  // stranded: nothing can make progress
}

void DatacenterManager::control_round(double t) {
  const double target = config_.schedule.at(t);
  const CouplerRound round = coupler_.run_round(target);
  for (auto& slot : racks_) slot->manager->rebalance();
  record_tick(t, round);
}

void DatacenterManager::admit(double t) {
  std::size_t queued = 0;
  for (const auto& queue : tenant_queues_) queued += queue.size();
  if (queued > 0) {
    // Power headroom: admit only while every busy node can still be granted
    // at least admission_min_node_w (idle nodes park at the floor, so the
    // busy-node surplus is what admission spends).
    const CouplerRound& round = coupler_.last_round();
    const double avail = std::max(0.0, round.enforced_w - round.reserved_w);
    const double idle_floor_w = config_.bmc.min_cap_w;
    std::size_t busy = 0;
    std::size_t total_nodes = 0;
    std::vector<std::size_t> free_lanes(racks_.size(), 0);
    for (std::size_t i = 0; i < racks_.size(); ++i) {
      // Management view: the cached status from the last successful poll.
      const ipmi::RackStatus& status = racks_[i]->client->last_status();
      busy += status.busy_nodes;
      total_nodes += status.nodes;
      if (coupler_.health(i) != LinkHealth::kLost) {
        free_lanes[i] = status.free_lanes;
      }
    }
    // Nodes the budget can hold at/above the knee once idle floors are
    // paid for: busy_max * knee + (total - busy_max) * floor <= avail.
    const double spread = config_.admission_min_node_w - idle_floor_w;
    std::size_t busy_max = total_nodes;
    if (spread > 0.0) {
      const double surplus =
          avail - static_cast<double>(total_nodes) * idle_floor_w;
      busy_max = surplus <= 0.0
                     ? 0
                     : static_cast<std::size_t>(surplus / spread);
    }
    std::size_t budget_slots = busy_max > busy ? busy_max - busy : 0;

    // Weighted deficit round-robin over the backlogged tenants.
    for (std::size_t ten = 0; ten < tenant_queues_.size(); ++ten) {
      if (tenant_queues_[ten].empty()) {
        tenant_deficit_[ten] = 0.0;  // no banking while idle
      } else {
        tenant_deficit_[ten] += config_.tenants[ten].weight;
      }
    }
    while (budget_slots > 0) {
      std::size_t best = tenant_queues_.size();
      for (std::size_t ten = 0; ten < tenant_queues_.size(); ++ten) {
        if (tenant_queues_[ten].empty() || tenant_deficit_[ten] < 1.0) {
          continue;
        }
        if (best == tenant_queues_.size() ||
            tenant_deficit_[ten] > tenant_deficit_[best]) {
          best = ten;
        }
      }
      if (best == tenant_queues_.size()) break;
      // Least-loaded reachable rack (most free lanes, ties to the lowest
      // index).
      std::size_t rack = racks_.size();
      for (std::size_t i = 0; i < racks_.size(); ++i) {
        if (free_lanes[i] == 0) continue;
        if (rack == racks_.size() || free_lanes[i] > free_lanes[rack]) {
          rack = i;
        }
      }
      if (rack == racks_.size()) break;  // no lane capacity anywhere
      const int job_id = tenant_queues_[best].front();
      tenant_queues_[best].pop_front();
      tenant_deficit_[best] -= 1.0;
      const FleetJob& job = stream_[static_cast<std::size_t>(job_id)];
      LaneJob lane;
      lane.job_id = job.id;
      lane.tenant = job.tenant;
      lane.cls = job.spec.cls;
      lane.seed = job.spec.seed;
      lane.chunks = job.spec.chunks;
      lane.deadline_s = job.spec.deadline_s;
      racks_[rack]->manager->enqueue(lane);
      result_.job_rack[static_cast<std::size_t>(job_id)] =
          static_cast<int>(rack);
      job_admit_s_[static_cast<std::size_t>(job_id)] = t;

      ++result_.admitted;
      --free_lanes[rack];
      --budget_slots;
    }
    std::size_t still_queued = 0;
    for (const auto& queue : tenant_queues_) still_queued += queue.size();
    result_.admission_deferrals += still_queued;
  }
}

void DatacenterManager::start_chunks(double t) {
  struct Starter {
    std::size_t rack = 0;
    std::size_t node = 0;
    std::size_t lane = 0;
    bool corun = false;
    sched::ChunkKey key;
    const sched::ChunkResult* hit = nullptr;
    std::size_t cell = 0;
    std::size_t member = 0;
    std::uint64_t seed = 0;
    int chunk_index = 0;
    int job_id = -1;
  };
  struct CellWork {
    sched::CoRunKey key;
    const std::vector<sched::ChunkResult>* hit = nullptr;
    std::vector<sched::ChunkResult> fresh;
  };
  std::vector<Starter> starters;
  std::vector<CellWork> cells;
  std::unordered_map<sched::CoRunKey, std::size_t, sched::CoRunKeyHash>
      cell_index;

  const auto member_of = [](const RackManager::Lane& lane) {
    sched::CoRunMember member;
    member.cls = lane.job.cls;
    member.identity =
        sched::chunk_identity(lane.job.cls, lane.job.seed, lane.chunks_done);
    member.seed = lane.job.seed;
    member.chunk_index = lane.chunks_done;
    return member;
  };

  // Serial classify in (rack, node, lane) order — the scheduler's proven
  // bit-identity pattern, one cache for the whole fleet.
  std::vector<RackManager::StartRef> refs;
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    RackManager& rack = *racks_[r]->manager;
    refs.clear();
    rack.pending_starts(refs);
    for (const RackManager::StartRef& ref : refs) {
      const RackManager::Lane& lane = rack.lane(ref.node, ref.lane);
      const std::optional<double> cap = rack.node_granted_w(ref.node);
      Starter starter;
      starter.rack = r;
      starter.node = ref.node;
      starter.lane = ref.lane;
      starter.seed = lane.job.seed;
      starter.chunk_index = lane.chunks_done;
      starter.job_id = lane.job.job_id;
      const sched::CoRunMember self = member_of(lane);
      std::vector<sched::CoRunMember> members{self};
      for (std::size_t o = 0; o < rack.lanes_per_node(); ++o) {
        if (o == ref.lane) continue;
        const RackManager::Lane& other = rack.lane(ref.node, o);
        if (!other.busy()) continue;
        members.push_back(member_of(other));
      }
      if (members.size() == 1) {
        starter.key.cls = self.cls;
        starter.key.identity = self.identity;
        starter.key.cap_bits = sched::ChunkKey::encode_cap(cap);
        if (config_.memo) starter.hit = chunk_cache_.find(starter.key);
        ++(starter.hit != nullptr ? result_.memo_hits : result_.memo_misses);
      } else {
        starter.corun = true;
        std::sort(members.begin(), members.end(),
                  [](const sched::CoRunMember& a, const sched::CoRunMember& b) {
                    return key_less(a, b);
                  });
        sched::CoRunKey key;
        key.cap_bits = sched::ChunkKey::encode_cap(cap);
        key.members = std::move(members);
        for (std::size_t m = 0; m < key.members.size(); ++m) {
          if (same_key(key.members[m], self)) {
            starter.member = m;
            break;
          }
        }
        const auto found = cell_index.find(key);
        if (found != cell_index.end()) {
          starter.cell = found->second;
        } else {
          starter.cell = cells.size();
          cell_index.emplace(key, cells.size());
          CellWork work;
          if (config_.memo) work.hit = chunk_cache_.find_cell(key);
          work.key = std::move(key);
          cells.push_back(std::move(work));
        }
        ++(cells[starter.cell].hit != nullptr ? result_.memo_hits
                                              : result_.memo_misses);
      }
      starters.push_back(std::move(starter));
    }
  }

  // Misses fan out over the worker pool; the cache is not touched here.
  std::vector<sched::ChunkResult> fresh(starters.size());
  util::parallel_for(starters.size(), config_.jobs, [&](std::size_t k) {
    const Starter& starter = starters[k];
    if (starter.corun || starter.hit != nullptr) return;
    fresh[k] = sched::simulate_chunk(config_.machine, config_.bmc, starter.key,
                                     starter.seed, starter.chunk_index,
                                     config_.seed);
  });
  util::parallel_for(cells.size(), config_.jobs, [&](std::size_t c) {
    if (cells[c].hit != nullptr) return;
    cells[c].fresh = sched::simulate_corun_cell(
        config_.machine, config_.bmc, cells[c].key, config_.seed,
        config_.corun_quantum);
  });
  result_.corun_cells += static_cast<std::uint64_t>(
      std::count_if(cells.begin(), cells.end(),
                    [](const CellWork& c) { return c.hit == nullptr; }));

  // Serial commit in the classify order.
  for (std::size_t k = 0; k < starters.size(); ++k) {
    const Starter& starter = starters[k];
    sched::ChunkResult result;
    if (!starter.corun) {
      result = starter.hit != nullptr ? *starter.hit : fresh[k];
      if (config_.memo && starter.hit == nullptr) {
        chunk_cache_.insert(starter.key, fresh[k]);
      }
    } else {
      const CellWork& cell = cells[starter.cell];
      const std::vector<sched::ChunkResult>& results =
          cell.hit != nullptr ? *cell.hit : cell.fresh;
      result = results[starter.member];
    }
    RackManager& rack = *racks_[starter.rack]->manager;
    rack.begin_chunk(starter.node, starter.lane, result, t);
    sched::JobRecord& record =
        result_.jobs[static_cast<std::size_t>(starter.job_id)];
    if (record.start_s < 0.0) {
      record.start_s = t;
      std::size_t flat = 0;
      for (std::size_t r = 0; r < starter.rack; ++r) {
        flat += racks_[r]->manager->node_count();
      }
      record.node = static_cast<int>(flat + starter.node);
      record.lane = static_cast<int>(starter.lane);
    }
    if (starter.corun) ++record.corun_chunks;
  }
  if (config_.memo) {
    for (CellWork& cell : cells) {
      if (cell.hit == nullptr) {
        chunk_cache_.insert_cell(cell.key, std::move(cell.fresh));
      }
    }
  }
  started_this_tick_ = !starters.empty();
}

void DatacenterManager::record_tick(double t, const CouplerRound& round) {
  LevelTick tick;
  tick.t_s = t;
  tick.target_w = round.target_w;
  tick.enforced_w = round.enforced_w;
  tick.committed_w = round.committed_w;
  tick.reserved_w = round.reserved_w;
  tick.feasible = round.feasible;
  tick.converged = round.converged;
  tick.lost_children = round.lost_children;
  double actual = 0.0;
  std::size_t busy = 0;
  std::size_t queued = 0;
  for (std::size_t i = 0; i < racks_.size(); ++i) {
    RackManager& rack = *racks_[i]->manager;
    busy += rack.busy_nodes();
    queued += rack.queue_depth();

    LevelTick rt;
    rt.t_s = t;
    rt.target_w = rack.target_w();
    rt.enforced_w = rack.enforced_w();
    rt.committed_w = rack.committed_w();
    rt.reserved_w = rack.reserved_w();
    rt.actual_w = rack.actual_cap_sum_w();
    actual += rt.actual_w;
    const CouplerRound& rack_round = rack.coupler().last_round();
    rt.feasible = rack_round.feasible;
    rt.converged = rt.committed_w <= rt.target_w + kTolW;
    rt.lost_children = rack.lost_nodes();
    rt.busy_nodes = rack.busy_nodes();
    rt.queued_jobs = rack.queue_depth();
    if (rt.committed_w > rt.enforced_w + kTolW) {
      ++result_.rack_over_enforced_ticks;
    }
    if (rt.actual_w > rt.enforced_w + kTolW) {
      ++result_.actual_over_enforced_ticks;
    }
    result_.rack_ticks[i].push_back(rt);
  }
  tick.actual_w = actual;
  tick.busy_nodes = busy;
  for (const auto& queue : tenant_queues_) queued += queue.size();
  tick.queued_jobs = queued;
  if (tick.committed_w > tick.enforced_w + kTolW) {
    ++result_.dc_over_enforced_ticks;
  }
  if (tick.committed_w > tick.target_w + kTolW) {
    ++result_.dc_over_target_ticks;
  }
  result_.dc_ticks.push_back(tick);
}

void DatacenterManager::step() {
  const double t = now_s();

  // Scripted partition episodes.
  while (next_partition_ < config_.partitions.size() &&
         config_.partitions[next_partition_].start_s <= t + kTimeEps) {
    const FleetConfig::PartitionEpisode& episode =
        config_.partitions[next_partition_];
    if (ipmi::FaultyTransport* link = rack_fault_link(episode.rack)) {
      link->partition_for(episode.transactions);
    }
    ++next_partition_;
  }

  // Arrivals into the tenant queues.
  while (next_arrival_ < stream_.size() &&
         stream_[next_arrival_].spec.arrival_s <= t + kTimeEps) {
    const FleetJob& job = stream_[next_arrival_];
    tenant_queues_[static_cast<std::size_t>(job.tenant)].push_back(job.id);
    ++next_arrival_;
  }

  // Completions.
  completions_.clear();
  for (std::size_t r = 0; r < racks_.size(); ++r) {
    const std::size_t before = completions_.size();
    racks_[r]->manager->begin_tick(t, completions_);
    for (std::size_t k = before; k < completions_.size(); ++k) {
      const ChunkEvent& event = completions_[k];
      sched::JobRecord& record =
          result_.jobs[static_cast<std::size_t>(event.job_id)];
      record.chunks_done = event.chunks_done;
      record.energy_j += event.result.energy_j;
      ++result_.chunks;
      if (event.job_done) {
        record.finish_s = event.finish_s;
        if (record.spec.deadline_s.has_value() &&
            record.finish_s > *record.spec.deadline_s) {
          record.missed_deadline = true;
        }
        ++completed_jobs_;
      }
    }
  }

  control_round(t);
  admit(t);
  for (auto& slot : racks_) slot->manager->place(t);
  start_chunks(t);
  for (auto& slot : racks_) slot->manager->sample(t);

  // Anti-livelock: an idle fleet with a backlog (admission gated below the
  // knee, or every rack management-lost) must trickle work — mirror the
  // scheduler's forced admission.
  const bool in_flight =
      started_this_tick_ ||
      std::any_of(racks_.begin(), racks_.end(), [](const auto& slot) {
        return slot->manager->anything_in_flight();
      });
  std::size_t backlog = 0;
  for (const auto& queue : tenant_queues_) backlog += queue.size();
  for (const auto& slot : racks_) backlog += slot->manager->queue_depth();
  if (!in_flight && next_arrival_ >= stream_.size() && backlog > 0) {
    for (std::size_t ten = 0; ten < tenant_queues_.size(); ++ten) {
      if (tenant_queues_[ten].empty()) continue;
      const int job_id = tenant_queues_[ten].front();
      tenant_queues_[ten].pop_front();
      const FleetJob& job = stream_[static_cast<std::size_t>(job_id)];
      LaneJob lane;
      lane.job_id = job.id;
      lane.tenant = job.tenant;
      lane.cls = job.spec.cls;
      lane.seed = job.spec.seed;
      lane.chunks = job.spec.chunks;
      lane.deadline_s = job.spec.deadline_s;
      racks_[0]->manager->enqueue(lane);
      result_.job_rack[static_cast<std::size_t>(job_id)] = 0;
      job_admit_s_[static_cast<std::size_t>(job_id)] = t;

      ++result_.admitted;
      ++result_.forced_admissions;
      break;
    }
  }
  if (!in_flight && next_arrival_ >= stream_.size()) {
    ++stalled_ticks_;
  } else {
    stalled_ticks_ = 0;
  }

  ++tick_count_;
}

FleetResult DatacenterManager::run() {
  while (!done() && tick_count_ < config_.max_ticks) step();
  return finish();
}

FleetResult DatacenterManager::finish() {
  result_.ticks = tick_count_;

  double makespan = 0.0;
  for (const sched::JobRecord& record : result_.jobs) {
    result_.busy_energy_j += record.energy_j;
    if (record.finish_s >= 0.0) makespan = std::max(makespan, record.finish_s);
  }
  result_.makespan_s = makespan;
  for (const auto& slot : racks_) {
    RackManager& rack = *slot->manager;
    for (std::size_t n = 0; n < rack.node_count(); ++n) {
      const double idle_s = std::max(0.0, makespan - rack.node_busy_s(n));
      result_.idle_energy_j += idle_s * config_.idle_node_w;
    }
    result_.mgmt_retries += rack.mgmt_retries();
    result_.mgmt_failed_exchanges += rack.mgmt_failed_exchanges();
    result_.cap_pushes += rack.coupler().pushes();
    result_.push_failures += rack.coupler().push_failures();
    result_.withheld_rounds += rack.coupler().withheld_rounds();
    result_.infeasible_rounds += rack.coupler().infeasible_rounds();
  }
  result_.total_energy_j = result_.busy_energy_j + result_.idle_energy_j;
  result_.cap_pushes += coupler_.pushes();
  result_.push_failures += coupler_.push_failures();
  result_.withheld_rounds += coupler_.withheld_rounds();
  result_.infeasible_rounds += coupler_.infeasible_rounds();
  for (const auto& slot : racks_) {
    result_.mgmt_retries += slot->client->retries();
    result_.mgmt_failed_exchanges += slot->client->failed_exchanges();
  }

  // Per-tenant fairness accounting.
  result_.tenants.clear();
  result_.tenants.resize(config_.tenants.size());
  std::vector<double> wait_sum(config_.tenants.size(), 0.0);
  std::vector<double> turnaround_sum(config_.tenants.size(), 0.0);
  for (std::size_t i = 0; i < result_.jobs.size(); ++i) {
    const sched::JobRecord& record = result_.jobs[i];
    const std::size_t ten = static_cast<std::size_t>(result_.job_tenant[i]);
    TenantStats& stats = result_.tenants[ten];
    ++stats.jobs;
    stats.chunks += static_cast<std::uint64_t>(record.chunks_done);
    stats.energy_j += record.energy_j;
    if (job_admit_s_[i] >= 0.0) {
      ++stats.admitted;
      wait_sum[ten] += job_admit_s_[i] - record.spec.arrival_s;
    }
    if (record.finish_s >= 0.0) {
      ++stats.completed;
      turnaround_sum[ten] += record.finish_s - record.spec.arrival_s;
    }
  }
  for (std::size_t ten = 0; ten < result_.tenants.size(); ++ten) {
    TenantStats& stats = result_.tenants[ten];
    stats.name = config_.tenants[ten].name;
    stats.weight = config_.tenants[ten].weight;
    if (stats.admitted > 0) wait_sum[ten] /= stats.admitted;
    if (stats.completed > 0) turnaround_sum[ten] /= stats.completed;
    stats.mean_wait_s = wait_sum[ten];
    stats.mean_turnaround_s = turnaround_sum[ten];
    stats.admitted_share =
        result_.admitted > 0
            ? static_cast<double>(stats.admitted) /
                  static_cast<double>(result_.admitted)
            : 0.0;
  }

  // Telemetry fan-in: node samplers -> rack series -> fleet series,
  // through the Reducer's pairwise merge at every level.
  const telemetry::Reducer reducer(config_.sampler.period);
  result_.rack_series.clear();
  for (const auto& slot : racks_) {
    result_.rack_series.push_back(slot->manager->series(reducer));
  }
  telemetry::GroupSeries fleet;
  fleet.name = "fleet";
  for (const telemetry::GroupSeries& series : result_.rack_series) {
    fleet = telemetry::Reducer::merge(fleet, series);
  }
  fleet.name = "fleet";
  result_.fleet_series = std::move(fleet);
  return result_;
}

void write_fleet_ticks_csv(const FleetResult& result,
                           const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("fleet: cannot open " + path);
  out << "t_s,target_w,enforced_w,committed_w,reserved_w,actual_w,"
         "busy_nodes,queued_jobs,lost_racks,feasible,converged\n";
  for (const LevelTick& tick : result.dc_ticks) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%.9f,%.1f,%.1f,%.1f,%.1f,%.1f,%zu,%zu,%zu,%d,%d\n",
                  tick.t_s, tick.target_w, tick.enforced_w, tick.committed_w,
                  tick.reserved_w, tick.actual_w, tick.busy_nodes,
                  tick.queued_jobs, tick.lost_children, tick.feasible ? 1 : 0,
                  tick.converged ? 1 : 0);
    out << buf;
  }
}

void write_tenant_stats_csv(const FleetResult& result,
                            const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("fleet: cannot open " + path);
  out << "tenant,weight,jobs,admitted,completed,chunks,admitted_share,"
         "mean_wait_s,mean_turnaround_s,energy_j\n";
  for (const TenantStats& stats : result.tenants) {
    char buf[256];
    std::snprintf(buf, sizeof buf, "%s,%.2f,%d,%d,%d,%llu,%.4f,%.6f,%.6f,%.3f\n",
                  stats.name.c_str(), stats.weight, stats.jobs, stats.admitted,
                  stats.completed,
                  static_cast<unsigned long long>(stats.chunks),
                  stats.admitted_share, stats.mean_wait_s,
                  stats.mean_turnaround_s, stats.energy_j);
    out << buf;
  }
}

}  // namespace pcap::fleet
