// The budget-tree wire endpoints. A BudgetHolder is anything that can
// adopt a budget target and report status (a RackManager, a mid-tree
// BudgetGroup, a synthetic leaf in tests); BudgetEndpointServer exposes a
// holder over the IPMI message layer (SetRackBudget / GetRackStatus /
// GetRackTelemetry frames), and BudgetClient is the parent-side ChildLink
// that speaks to it through any ipmi::Transport — so FaultyTransport's
// drop/dup/corrupt/partition applies to rack and datacenter hops exactly
// as it does to node BMC links.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fleet/coupler.hpp"
#include "ipmi/commands.hpp"
#include "ipmi/transport.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"

namespace pcap::fleet {

/// Anything that can sit below a budget-tree hop.
class BudgetHolder {
 public:
  virtual ~BudgetHolder() = default;

  /// Adopts a new budget target and returns the grant: the budget this
  /// holder guarantees after its synchronous decreases-first round —
  /// target for an increase, max(target, committed) for a decrease still
  /// converging.
  virtual double set_budget_target(double watts) = 0;

  virtual ipmi::RackStatus status() = 0;

  /// Windowed power summary for the telemetry command; default derives a
  /// degenerate summary from status().
  virtual ipmi::RackTelemetry telemetry_summary();
};

/// Serves one BudgetHolder over IPMI frames (the rack/pod analog of
/// BmcIpmiServer). Unknown commands get kInvalidCommand, malformed
/// payloads kRequestDataInvalid — same contract the BMC server keeps.
class BudgetEndpointServer {
 public:
  explicit BudgetEndpointServer(BudgetHolder& holder) : holder_(&holder) {}

  ipmi::Response handle(const ipmi::Request& request);
  std::vector<std::uint8_t> handle_frame(std::span<const std::uint8_t> frame);

 private:
  BudgetHolder* holder_;
};

/// Parent-side handle to a BudgetHolder across a (possibly faulty)
/// transport: a ChildLink whose exchanges retry with exponential backoff
/// and seeded jitter, mirroring core::ManagedNode.
class BudgetClient : public ChildLink {
 public:
  BudgetClient(ipmi::Transport& transport, util::BackoffPolicy backoff = {},
               double request_timeout_ms = 25.0, std::uint64_t seed = 0x5EED)
      : session_(transport, request_timeout_ms),
        backoff_(backoff),
        rng_(seed) {}

  /// Fetches status once (with retries) to learn floor/ceiling. Call
  /// before wiring into a coupler; returns false if the child never
  /// answered.
  bool attach();

  std::optional<double> push_budget(double watts) override;
  std::optional<double> poll_demand() override;
  double floor_w() const override { return status_.floor_w; }
  double ceiling_w() const override { return status_.ceiling_w; }

  /// Last successfully fetched status (poll_demand refreshes it).
  const ipmi::RackStatus& last_status() const { return status_; }
  std::optional<ipmi::RackTelemetry> fetch_telemetry();

  std::uint64_t retries() const { return retries_; }
  std::uint64_t failed_exchanges() const { return failed_exchanges_; }

 private:
  ipmi::Response transact_with_retry(const ipmi::Request& request);

  ipmi::Session session_;
  util::BackoffPolicy backoff_;
  util::Rng rng_;
  ipmi::RackStatus status_;
  std::uint64_t retries_ = 0;
  std::uint64_t failed_exchanges_ = 0;
};

/// A mid-tree aggregation level: holds a coupler over child BudgetClients
/// and is itself a BudgetHolder, so trees of any depth compose from the
/// same three pieces (holder <- server <- transport <- client <- coupler).
/// The datacenter root and the randomized-topology tests both build on it.
class BudgetGroup : public BudgetHolder {
 public:
  explicit BudgetGroup(CouplerConfig config = {}) : coupler_(config) {}

  /// The child must have been attach()ed (floor/ceiling known). The
  /// initial grant is the child's boot-state budget: its floor.
  void add_child(BudgetClient* child);

  /// One full control round against this group's current target.
  CouplerRound run_round() { return coupler_.run_round(target_w_); }

  // BudgetHolder: a pushed decrease converges synchronously as far as the
  // children allow; increases wait for the next run_round.
  double set_budget_target(double watts) override;
  ipmi::RackStatus status() override;

  void set_target(double watts) { target_w_ = watts; }
  double target_w() const { return target_w_; }
  double enforced_w() const;
  BudgetCoupler& coupler() { return coupler_; }

 private:
  BudgetCoupler coupler_;
  std::vector<BudgetClient*> children_;
  double target_w_ = 0.0;
  double floor_w_ = 0.0;
  double ceiling_w_ = 0.0;
};

}  // namespace pcap::fleet
