// The budget coupler: one level of the fleet tree. A parent holds a
// BudgetCoupler over its children (nodes for a rack, racks for the
// datacenter, groups for deeper trees) and runs one control round per
// tick: poll every child for health and demand, divide the target with
// floor+weighted-surplus, push decreases first, and withhold every
// increase until all decreases landed (DESIGN.md §14).
//
// Grant semantics make the tree compositional: a push returns the budget
// the child actually *guarantees* right now. For an increase the grant is
// the target (headroom is adopted immediately); for a decrease the child
// grants max(target, its current commitments) and converges over its own
// rounds, so the parent keeps pushing the same target until the grant
// matches. The parent's committed power — sum of grants plus reservations
// for unreachable children — is therefore an upper bound on what the
// subtree can draw, and the conservation invariant
//     committed <= enforced, with enforced == target once converged
// holds at every level at every tick, even mid-partition.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "fleet/budget.hpp"

namespace pcap::fleet {

/// One downstream child of a budget-tree level. Implementations wrap an
/// `ipmi::Transport` exchange (BudgetClient for aggregate children, the
/// rack's ManagedNode adapter for leaf nodes), so every hop inherits
/// FaultyTransport's drop/dup/corrupt/partition behavior.
class ChildLink {
 public:
  virtual ~ChildLink() = default;

  /// Pushes a budget target; returns the child's grant (see above) or
  /// nullopt when the exchange failed after retries.
  virtual std::optional<double> push_budget(double watts) = 0;

  /// Reachability probe + demand fetch: the child's current draw estimate
  /// in watts, or nullopt when unreachable.
  virtual std::optional<double> poll_demand() = 0;

  virtual double floor_w() const = 0;
  virtual double ceiling_w() const = 0;
};

/// Same shape as the DCM node-health FSM: consecutive failed exchanges
/// degrade then lose a child; the first success after kLost lands on
/// kRecovered before returning to kHealthy.
enum class LinkHealth { kHealthy, kDegraded, kLost, kRecovered };

struct CouplerConfig {
  std::uint32_t degraded_after_failures = 2;
  std::uint32_t lost_after_failures = 4;
  double push_epsilon_w = 0.05;  // skip pushes smaller than this
  double tolerance_w = 1e-3;     // conservation comparisons
};

/// Per-round accounting at one tree level.
struct CouplerRound {
  double target_w = 0.0;
  double enforced_w = 0.0;   // max(target, committed): budget guaranteed now
  double committed_w = 0.0;  // sum of child grants (lost children included)
  double reserved_w = 0.0;   // grants held for lost children
  bool feasible = true;      // division fit above the floor sum
  bool converged = true;     // committed <= target (+tolerance)
  bool increases_withheld = false;  // a decrease failed, increases deferred
  std::size_t lost_children = 0;
};

class BudgetCoupler {
 public:
  explicit BudgetCoupler(CouplerConfig config = {}) : config_(config) {}

  /// `initial_granted_w` is the budget the child enforces before any push
  /// lands — its boot state (a node boots capped at its floor).
  void add_child(ChildLink* link, double initial_granted_w);

  /// One full control round: poll, divide, push (decreases first,
  /// increases withheld until every decrease landed). `weights` overrides
  /// the division weights (nullptr → last polled demand); `grid_w`
  /// quantizes child budgets (0 → wire grid).
  CouplerRound run_round(double target_w,
                         const std::vector<double>* weights = nullptr,
                         double grid_w = 0.0);

  /// Push-only decrease round, no polls and no increases: used by a child
  /// level to converge synchronously inside a SetRackBudget handler while
  /// the parent's exchange is still in flight.
  CouplerRound converge_down(double target_w,
                             const std::vector<double>* weights = nullptr,
                             double grid_w = 0.0);

  double committed_w() const;
  double reserved_w() const;
  std::size_t size() const { return children_.size(); }
  std::size_t lost_children() const;
  LinkHealth health(std::size_t i) const { return children_[i].health; }
  double granted_w(std::size_t i) const { return children_[i].granted_w; }
  double demand_w(std::size_t i) const { return children_[i].demand_w; }
  const CouplerRound& last_round() const { return last_round_; }

  // Exchange accounting, for chaos studies and the management-cost story.
  std::uint64_t polls() const { return polls_; }
  std::uint64_t poll_failures() const { return poll_failures_; }
  std::uint64_t pushes() const { return pushes_; }
  std::uint64_t push_failures() const { return push_failures_; }
  std::uint64_t withheld_rounds() const { return withheld_rounds_; }
  std::uint64_t infeasible_rounds() const { return infeasible_rounds_; }

 private:
  struct Child {
    ChildLink* link = nullptr;
    double granted_w = 0.0;  // last acked grant; what the child enforces
    double demand_w = 0.0;   // last successful poll
    LinkHealth health = LinkHealth::kHealthy;
    std::uint32_t consecutive_failures = 0;
  };

  void note_exchange(Child& child, bool ok);
  CouplerRound push_round(double target_w, const std::vector<double>* weights,
                          double grid_w, bool allow_increases);
  CouplerRound finish_round(double target_w, bool feasible,
                            bool increases_withheld);

  CouplerConfig config_;
  std::vector<Child> children_;
  CouplerRound last_round_;
  std::uint64_t polls_ = 0;
  std::uint64_t poll_failures_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t push_failures_ = 0;
  std::uint64_t withheld_rounds_ = 0;
  std::uint64_t infeasible_rounds_ = 0;
};

}  // namespace pcap::fleet
