// The datacenter root of the budget tree: N RackManagers, each served
// over its own IPMI link (optionally faulty/partitionable) and driven by
// a tick-based event loop — budget schedule down, telemetry up, seeded
// multi-tenant admission in between (DESIGN.md §14).
//
// Per tick, in a fixed deterministic order:
//   1. completions  — racks retire chunks due at t
//   2. control      — the root coupler polls racks, divides the scheduled
//                     budget (decreases first, increases withheld), and
//                     each rack rebalances its nodes the same way
//   3. admission    — weighted deficit round-robin across tenant queues,
//                     bounded by the power headroom per busy node (keep
//                     admitted nodes at or above the amenability knee
//                     rather than throttling everyone to the floor)
//   4. placement    — racks place queued jobs onto free lanes
//   5. chunk starts — fleet-wide classify (serial, rack/node/lane order),
//                     memo misses fan out over `jobs`, serial commit: the
//                     scheduler's proven bit-identity pattern, with ONE
//                     shared ChunkCache across the whole fleet
//   6. telemetry    — per-node samplers record; Reducer fan-in at the end
//
// The invariant records written every tick at every level are what the
// property tests assert: committed <= enforced always, committed <= target
// once converged, even across FaultyTransport loss and partitions.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/bmc.hpp"
#include "core/dcm.hpp"
#include "fleet/budget.hpp"
#include "fleet/coupler.hpp"
#include "fleet/endpoint.hpp"
#include "fleet/rack.hpp"
#include "fleet/tenant.hpp"
#include "sched/chunk_cache.hpp"
#include "sim/machine_config.hpp"
#include "telemetry/reducer.hpp"

namespace pcap::fleet {

struct FleetConfig {
  /// Nodes per rack (uneven fan-out allowed); size = rack count.
  std::vector<std::size_t> rack_nodes = {8, 8};
  std::size_t lanes_per_node = 1;
  BudgetSchedule schedule;  // budget over time (time-of-day + DR events)
  std::vector<TenantSpec> tenants;
  double tick_s = 100e-6;
  std::size_t max_ticks = 200000;
  /// Admission headroom: only admit while every busy node can still be
  /// granted at least this much (default ~ the amenability knee).
  double admission_min_node_w = 135.0;
  std::uint64_t seed = 1;
  std::size_t jobs = 1;  // worker threads for memo-miss chunk simulations
  bool memo = true;
  sim::MachineConfig machine = sim::MachineConfig::romley();
  core::BmcConfig bmc;
  /// Faults on the datacenter->rack links / every rack->node link.
  std::optional<ipmi::FaultSpec> rack_faults;
  std::optional<ipmi::FaultSpec> node_faults;
  double idle_node_w = 101.0;
  double cap_grid_w = 8.0;
  RackDivision division = RackDivision::kTwoTier;
  CouplerConfig coupler;
  core::NodeCommsConfig comms;
  telemetry::SamplerConfig sampler;  // per-node rings (small capacity)
  util::Picoseconds corun_quantum = util::microseconds(5);

  /// Scripted management-plane partition: rack `rack`'s link swallows the
  /// next `transactions` exchanges starting at the first tick >= start_s.
  struct PartitionEpisode {
    std::size_t rack = 0;
    double start_s = 0.0;
    std::uint64_t transactions = 0;
  };
  std::vector<PartitionEpisode> partitions;
};

/// Budget accounting at one tree level for one tick.
struct LevelTick {
  double t_s = 0.0;
  double target_w = 0.0;
  double enforced_w = 0.0;
  double committed_w = 0.0;
  double reserved_w = 0.0;
  /// Ground truth: sum of caps the subtree's BMCs actually enforce, read
  /// directly past the management plane (racks only; 0 at the root).
  double actual_w = 0.0;
  bool feasible = true;
  bool converged = true;
  std::size_t lost_children = 0;
  std::size_t busy_nodes = 0;
  std::size_t queued_jobs = 0;
};

struct FleetResult {
  std::vector<LevelTick> dc_ticks;
  std::vector<std::vector<LevelTick>> rack_ticks;  // [rack][tick]
  std::vector<sched::JobRecord> jobs;              // fleet-id order
  std::vector<int> job_tenant;                     // parallel to jobs
  std::vector<int> job_rack;                       // rack each job ran on
  std::vector<TenantStats> tenants;

  // Conservation violations — must be zero; counted, not asserted, so
  // tests can report how they failed.
  std::uint64_t dc_over_enforced_ticks = 0;
  std::uint64_t rack_over_enforced_ticks = 0;
  /// Ticks where ground-truth node caps exceeded the rack's enforced
  /// budget (must be zero).
  std::uint64_t actual_over_enforced_ticks = 0;
  /// Transient ticks where committed exceeded target (decrease still
  /// converging or mid-partition): informational, bounded by tests.
  std::uint64_t dc_over_target_ticks = 0;

  std::uint64_t chunks = 0;
  std::uint64_t corun_cells = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t admitted = 0;
  std::uint64_t admission_deferrals = 0;  // admission-limited tick-jobs
  std::uint64_t forced_admissions = 0;    // anti-livelock trickle admissions
  std::uint64_t cap_pushes = 0;
  std::uint64_t push_failures = 0;
  std::uint64_t withheld_rounds = 0;
  std::uint64_t infeasible_rounds = 0;
  std::uint64_t mgmt_retries = 0;
  std::uint64_t mgmt_failed_exchanges = 0;

  double makespan_s = 0.0;
  double busy_energy_j = 0.0;
  double idle_energy_j = 0.0;
  double total_energy_j = 0.0;
  std::size_t ticks = 0;

  telemetry::GroupSeries fleet_series;
  std::vector<telemetry::GroupSeries> rack_series;

  /// Order-sensitive FNV-1a digest over every schedule-relevant output
  /// (job placement/timing/energy bits, per-tick committed budgets): equal
  /// digests mean bit-identical fleet schedules. The bit-identity tests
  /// compare it across `jobs` values and memo on/off.
  std::uint64_t schedule_digest() const;
};

class DatacenterManager {
 public:
  explicit DatacenterManager(const FleetConfig& config);
  ~DatacenterManager();

  std::size_t rack_count() const { return racks_.size(); }
  std::size_t node_count() const;
  RackManager& rack(std::size_t i) { return *racks_[i]->manager; }
  const BudgetCoupler& coupler() const { return coupler_; }
  /// The rack's uplink fault injector, when configured.
  ipmi::FaultyTransport* rack_fault_link(std::size_t i) {
    return racks_[i]->faulty ? racks_[i]->faulty.get() : nullptr;
  }

  /// Runs the whole fleet to completion (all tenant jobs done, or stalled
  /// with nothing in flight, or max_ticks) and returns the result.
  FleetResult run();

  /// Single-tick interface for benchmarks and incremental tests. `run()`
  /// is step() in a loop plus final accounting.
  void step();
  double now_s() const { return tick_count_ * config_.tick_s; }
  std::size_t completed_jobs() const { return completed_jobs_; }
  bool done() const;

  /// Final accounting: tenant stats, energy, telemetry fan-in. Called by
  /// run(); exposed for step()-driven uses.
  FleetResult finish();

 private:
  struct RackSlot {
    std::unique_ptr<RackManager> manager;
    std::unique_ptr<BudgetEndpointServer> server;
    std::unique_ptr<ipmi::LoopbackTransport> loopback;
    std::unique_ptr<ipmi::FaultyTransport> faulty;
    std::unique_ptr<BudgetClient> client;
  };

  void control_round(double t);
  void admit(double t);
  void start_chunks(double t);
  void record_tick(double t, const CouplerRound& round);

  FleetConfig config_;
  std::vector<std::unique_ptr<RackSlot>> racks_;
  BudgetCoupler coupler_;
  sched::ChunkCache chunk_cache_;

  std::vector<FleetJob> stream_;
  std::size_t next_arrival_ = 0;
  std::vector<std::deque<int>> tenant_queues_;  // fleet job ids
  std::vector<double> tenant_deficit_;
  std::vector<double> job_admit_s_;  // admission time per fleet job, -1 unset
  std::size_t next_partition_ = 0;
  bool started_this_tick_ = false;

  FleetResult result_;
  std::size_t tick_count_ = 0;
  std::size_t completed_jobs_ = 0;
  std::size_t stalled_ticks_ = 0;
  std::vector<ChunkEvent> completions_;  // scratch, reused per tick
};

/// CSV writers for the fleet sweep artifacts (CI uploads these).
void write_fleet_ticks_csv(const FleetResult& result, const std::string& path);
void write_tenant_stats_csv(const FleetResult& result,
                            const std::string& path);

}  // namespace pcap::fleet
