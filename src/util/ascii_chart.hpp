// ASCII line charts for rendering the paper's figures on a console.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace pcap::util {

/// One named series of y-values sampled at shared x positions.
struct ChartSeries {
  std::string name;
  std::vector<double> values;
};

/// Renders one or more series on a shared grid. X positions are categorical
/// labels (the paper's x axes are power caps / strides). Supports optional
/// log10 scaling of the y axis for the stride figures.
class AsciiChart {
 public:
  AsciiChart(std::vector<std::string> x_labels, int width = 72, int height = 20);

  void add_series(ChartSeries series);
  void set_log_y(bool log_y) { log_y_ = log_y; }
  void set_title(std::string title) { title_ = std::move(title); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  std::string render() const;

 private:
  std::vector<std::string> x_labels_;
  std::vector<ChartSeries> series_;
  std::string title_;
  std::string y_label_;
  int width_;
  int height_;
  bool log_y_ = false;
};

}  // namespace pcap::util
