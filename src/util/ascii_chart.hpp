// ASCII line charts for rendering the paper's figures on a console.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace pcap::util {

/// One named series of y-values sampled at shared x positions.
struct ChartSeries {
  std::string name;
  std::vector<double> values;
};

/// Renders one or more series on a shared grid. X positions are categorical
/// labels (the paper's x axes are power caps / strides). Supports optional
/// log10 scaling of the y axis for the stride figures.
class AsciiChart {
 public:
  AsciiChart(std::vector<std::string> x_labels, int width = 72, int height = 20);

  void add_series(ChartSeries series);
  void set_log_y(bool log_y) { log_y_ = log_y; }
  void set_title(std::string title) { title_ = std::move(title); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }

  std::string render() const;

 private:
  std::vector<std::string> x_labels_;
  std::vector<ChartSeries> series_;
  std::string title_;
  std::string y_label_;
  int width_;
  int height_;
  bool log_y_ = false;
};

/// One named series of (time, value) points on a continuous time axis.
/// Times are in seconds; series may have different lengths and cadences.
struct TimeSeries {
  std::string name;
  std::vector<double> times_s;
  std::vector<double> values;
};

/// Line chart over continuous x (simulated time): each point is placed by
/// its timestamp, so series sampled at different cadences (a 200 µs meter,
/// a 20 µs control loop) share one axis. Renders like AsciiChart but with
/// numeric time labels; used by examples/power_timeline to show the
/// cap-settling transient.
class TimeSeriesChart {
 public:
  explicit TimeSeriesChart(int width = 72, int height = 20);

  void add_series(TimeSeries series);
  void set_title(std::string title) { title_ = std::move(title); }
  void set_y_label(std::string label) { y_label_ = std::move(label); }
  /// Overrides the y range (default: fit to the data).
  void set_y_range(double lo, double hi);

  std::string render() const;

 private:
  std::vector<TimeSeries> series_;
  std::string title_;
  std::string y_label_;
  int width_;
  int height_;
  bool fixed_range_ = false;
  double y_lo_ = 0.0;
  double y_hi_ = 0.0;
};

}  // namespace pcap::util
