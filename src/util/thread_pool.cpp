#include "util/thread_pool.hpp"

#include <algorithm>

namespace pcap::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_ready_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, std::size_t threads,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool pool(std::min(threads, n));
  for (std::size_t i = 0; i < n; ++i) {
    pool.submit([i, &fn] { fn(i); });
  }
  pool.wait_idle();
}

}  // namespace pcap::util
