// Fixed-width text tables for paper-style console output.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pcap::util {

/// Accumulates rows of string cells and renders an aligned ASCII table.
/// Numeric-looking cells are right-aligned, text is left-aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Appends a horizontal separator line.
  void add_separator();

  std::size_t row_count() const { return rows_.size(); }

  void render(std::ostream& os) const;
  std::string str() const;

  /// Formatting helpers shared by the benches.
  static std::string num(double v, int decimals = 1);
  static std::string num(std::uint64_t v);
  /// Integer with thousands separators, paper-style ("1,664,150,370").
  static std::string grouped(std::uint64_t v);
  static std::string pct(double v);  // rounded to closest int, as the paper

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace pcap::util
