#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace pcap::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kOff};
std::once_flag g_env_once;
std::mutex g_emit_mutex;

void init_from_env() {
  if (const char* env = std::getenv("PCAP_LOG")) {
    g_level.store(parse_log_level(env), std::memory_order_relaxed);
  }
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel log_level() {
  std::call_once(g_env_once, init_from_env);
  return g_level.load(std::memory_order_relaxed);
}

void set_log_level(LogLevel level) {
  std::call_once(g_env_once, init_from_env);
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel parse_log_level(const std::string& s) {
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  return LogLevel::kOff;
}

namespace detail {

void emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[pcap %s] %s\n", level_name(level), message.c_str());
}

}  // namespace detail

}  // namespace pcap::util
