// Units and fixed-point simulated time for the pcap simulator.
//
// Simulated time is kept as an integer count of picoseconds so that cycle
// arithmetic at GHz frequencies stays exact; power and energy are doubles.
#pragma once

#include <cstdint>
#include <string>

namespace pcap::util {

/// Simulated time, in integer picoseconds. 2^64 ps ~= 213 days: plenty.
using Picoseconds = std::uint64_t;

/// Clock frequency in Hz.
using Hertz = std::uint64_t;

inline constexpr Picoseconds kPicosPerNano = 1000;
inline constexpr Picoseconds kPicosPerMicro = 1000 * kPicosPerNano;
inline constexpr Picoseconds kPicosPerMilli = 1000 * kPicosPerMicro;
inline constexpr Picoseconds kPicosPerSecond = 1000 * kPicosPerMilli;

inline constexpr Hertz kKiloHertz = 1000;
inline constexpr Hertz kMegaHertz = 1000 * kKiloHertz;
inline constexpr Hertz kGigaHertz = 1000 * kMegaHertz;

constexpr Picoseconds nanoseconds(double ns) {
  return static_cast<Picoseconds>(ns * static_cast<double>(kPicosPerNano));
}
constexpr Picoseconds microseconds(double us) {
  return static_cast<Picoseconds>(us * static_cast<double>(kPicosPerMicro));
}
constexpr Picoseconds milliseconds(double ms) {
  return static_cast<Picoseconds>(ms * static_cast<double>(kPicosPerMilli));
}
constexpr Picoseconds seconds(double s) {
  return static_cast<Picoseconds>(s * static_cast<double>(kPicosPerSecond));
}

constexpr double to_seconds(Picoseconds t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerSecond);
}
constexpr double to_nanoseconds(Picoseconds t) {
  return static_cast<double>(t) / static_cast<double>(kPicosPerNano);
}

/// Duration of one clock cycle at frequency `f`, rounded to nearest ps.
constexpr Picoseconds cycle_period(Hertz f) {
  return (kPicosPerSecond + f / 2) / f;
}

/// Number of whole cycles of frequency `f` that fit in `t`.
constexpr std::uint64_t cycles_in(Picoseconds t, Hertz f) {
  // cycles = t * f / 1e12, computed without overflow for f < ~18 GHz by
  // splitting t into seconds and sub-second remainder.
  const std::uint64_t whole_s = t / kPicosPerSecond;
  const std::uint64_t rem_ps = t % kPicosPerSecond;
  return whole_s * f + (rem_ps * (f / kMegaHertz)) / (kPicosPerSecond / kMegaHertz);
}

/// Elapsed time for `cycles` cycles at frequency `f`.
constexpr Picoseconds cycles_to_time(std::uint64_t cycles, Hertz f) {
  return cycles * cycle_period(f);
}

/// Pretty "h:mm:ss.mmm" rendering of a simulated duration.
std::string format_duration(Picoseconds t);

/// Pretty "2.70 GHz" / "1200 MHz" rendering.
std::string format_hertz(Hertz f);

/// Pretty byte-size rendering ("32K", "20M", "64B").
std::string format_bytes(std::uint64_t bytes);

}  // namespace pcap::util
