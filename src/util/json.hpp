// Minimal JSON parser + serializer — enough to validate and inspect the
// trace-event files the telemetry subsystem writes (tests parse the Chrome
// trace back and assert on its events) and to round-trip the scheduler's
// machine-readable amenability tables. Not a general-purpose JSON library:
// no streaming, no \u escapes beyond ASCII, numbers as double.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace pcap::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : type_(Type::kBool), bool_(b) {}
  explicit JsonValue(double n) : type_(Type::kNumber), number_(n) {}
  explicit JsonValue(std::string s)
      : type_(Type::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a)
      : type_(Type::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o)
      : type_(Type::kObject),
        object_(std::make_shared<JsonObject>(std::move(o))) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const JsonArray& as_array() const {
    static const JsonArray empty;
    return array_ ? *array_ : empty;
  }
  const JsonObject& as_object() const {
    static const JsonObject empty;
    return object_ ? *object_ : empty;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (!is_object()) return nullptr;
    const auto it = as_object().find(key);
    return it != as_object().end() ? &it->second : nullptr;
  }

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses a complete JSON document (trailing whitespace allowed). Returns
/// nullopt on any syntax error or trailing garbage.
std::optional<JsonValue> parse_json(const std::string& text);

/// Serializes a value back to JSON text. `indent` > 0 pretty-prints with
/// that many spaces per level; the default emits one compact line. Numbers
/// round-trip through parse_json (shortest representation that preserves
/// the double). Object members serialize in key order (JsonObject is a
/// std::map), so output is deterministic.
std::string json_to_string(const JsonValue& value, int indent = 0);

/// Writes `value` to `path` (creating parent directories), pretty-printed.
/// Throws std::runtime_error if the file cannot be opened.
void write_json_file(const std::string& path, const JsonValue& value);

/// Reads and parses a JSON file; nullopt if unreadable or malformed.
std::optional<JsonValue> read_json_file(const std::string& path);

}  // namespace pcap::util
